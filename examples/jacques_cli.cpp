// jacques_cli: a command-line descendant of "Jacques", the paper's §6
// interactive AMR explorer ("a GUI-based visualization tool which allows
// simultaneous interactive analysis of tens of thousands of grids ...
// navigation techniques had to be devised to simplify the identification of
// regions of interest ... Jacques has a 'zoom in by 10^10 button'!").
//
// This version explores a checkpoint (or a freshly-generated demo collapse)
// through stdin commands:
//
//   tree                 print the grid hierarchy
//   stats                hierarchy statistics (Fig. 5 numbers)
//   peak                 locate the densest point
//   zoom <factor>        shrink the view window about the current center
//   center <x> <y> <z>   move the view center
//   center peak          jump to the densest point ("region of interest")
//   slice [axis]         ASCII density slice of the current window
//   profile              radial profile about the current center
//   clumps <threshold>   find collapsed objects above the overdensity
//   quit
//
//   $ ./jacques_cli [checkpoint.bin]      (no argument: builds a demo run)

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/analysis.hpp"
#include "analysis/derived.hpp"
#include "core/setup.hpp"
#include "io/checkpoint.hpp"
#include "io/image.hpp"
#include "util/constants.hpp"

using namespace enzo;

namespace {

void print_slice(const analysis::Slice& s) {
  const char* shades = " .:-=+*#%@";
  for (int v = s.n - 1; v >= 0; v -= 2) {
    std::string row;
    for (int u = 0; u < s.n; ++u) {
      double f = (s.log10_density[static_cast<std::size_t>(v) * s.n + u] -
                  s.min_log) /
                 std::max(s.max_log - s.min_log, 1e-10);
      if (!std::isfinite(f)) f = 0;
      row += shades[static_cast<int>(std::clamp(f, 0.0, 1.0) * 9.999)];
    }
    std::printf("|%s|\n", row.c_str());
  }
  std::printf("log10(rho_code) in [%.2f, %.2f], finest level %d\n", s.min_log,
              s.max_log, s.finest_level_touched);
}

core::SimulationConfig demo_config() {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {16, 16, 16};
  cfg.hierarchy.max_level = 3;
  cfg.hierarchy.fields = mesh::chemistry_field_list();
  cfg.refinement.baryon_mass_threshold = 4.0 / (16.0 * 16 * 16);
  cfg.refinement.jeans_number = 4.0;
  cfg.enable_chemistry = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  core::SimulationConfig cfg = demo_config();
  core::Simulation sim(cfg);
  if (argc > 1) {
    std::printf("loading checkpoint %s ...\n", argv[1]);
    io::read_checkpoint(sim, argv[1]);
  } else {
    std::printf("no checkpoint given: running a short demo collapse ...\n");
    core::CollapseSetupOptions opt;
    opt.box_proper_cm = 4.0 * constants::kParsec;
    opt.mean_density_cgs = 1e-19;
    opt.overdensity = 10.0;
    opt.cloud_radius = 0.25;
    opt.temperature = 300.0;
    sim.initialize(core::collapse_cloud_setup(opt));
    for (int s = 0; s < 2; ++s) sim.advance_root_step();
  }
  auto& h = sim.hierarchy();
  std::printf("loaded: t = %g, %d levels, %zu grids, %lld cells\n",
              sim.time_d(), h.deepest_level() + 1, h.total_grids(),
              static_cast<long long>(h.total_cells()));

  ext::PosVec center{ext::pos_t(0.5), ext::pos_t(0.5), ext::pos_t(0.5)};
  double half = 0.5;
  int axis = 2;

  std::string line;
  std::printf("jacques> ");
  while (std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string cmd;
    ss >> cmd;
    if (cmd == "quit" || cmd == "q") break;
    if (cmd == "tree") {
      for (int l = 0; l <= h.deepest_level(); ++l)
        for (const mesh::Grid* g : h.grids(l))
          std::printf("%*sL%d #%llu %s (%lld cells, %zu particles)\n", 2 * l,
                      "", l, static_cast<unsigned long long>(g->id()),
                      g->box().str().c_str(),
                      static_cast<long long>(g->box().volume()),
                      g->particles().size());
    } else if (cmd == "stats") {
      const auto st = analysis::hierarchy_stats(h);
      std::printf("levels %d, grids %zu, cells %lld\n", st.max_level + 1,
                  st.total_grids, static_cast<long long>(st.total_cells));
      for (std::size_t l = 0; l < st.grids_per_level.size(); ++l)
        std::printf("  L%zu: %zu grids, relative work %.3f\n", l,
                    st.grids_per_level[l], st.work_per_level[l]);
    } else if (cmd == "peak") {
      const auto p = analysis::find_densest_point(h);
      std::printf("densest point: (%.6f, %.6f, %.6f), rho = %g (level %d)\n",
                  ext::pos_to_double(p.position[0]),
                  ext::pos_to_double(p.position[1]),
                  ext::pos_to_double(p.position[2]), p.density, p.level);
    } else if (cmd == "zoom") {
      double f = 10.0;
      ss >> f;
      half /= f;
      std::printf("window half-width now %.3g\n", half);
    } else if (cmd == "center") {
      std::string first;
      ss >> first;
      if (first == "peak") {
        center = analysis::find_densest_point(h).position;
      } else {
        center[0] = ext::pos_t(std::stod(first));
        double y, z;
        ss >> y >> z;
        center[1] = ext::pos_t(y);
        center[2] = ext::pos_t(z);
      }
      std::printf("center = (%.6f, %.6f, %.6f)\n",
                  ext::pos_to_double(center[0]), ext::pos_to_double(center[1]),
                  ext::pos_to_double(center[2]));
    } else if (cmd == "slice") {
      ss >> axis;
      const std::array<double, 2> c2d = {
          ext::pos_to_double(center[(axis + 1) % 3]),
          ext::pos_to_double(center[(axis + 2) % 3])};
      print_slice(analysis::density_slice(h, axis, center[axis], c2d, half,
                                          48));
    } else if (cmd == "profile") {
      analysis::ProfileOptions popt;
      popt.nbins = 14;
      popt.r_min = std::max(half * 2e-3, 1e-6);
      popt.r_max = half;
      auto prof = analysis::radial_profile(h, center, popt, sim.config().hydro,
                                           sim.chem_units());
      std::printf("%12s %14s %10s %10s\n", "r", "rho", "T [K]", "v_r");
      for (int b = 0; b < popt.nbins; ++b)
        if (prof.cell_count[b] > 0)
          std::printf("%12.5g %14.5g %10.4g %10.3f\n", prof.r[b],
                      prof.gas_density[b], prof.temperature[b],
                      prof.v_radial[b]);
    } else if (cmd == "save") {
      std::string path = "slice.pgm";
      ss >> path;
      const std::array<double, 2> c2d = {
          ext::pos_to_double(center[(axis + 1) % 3]),
          ext::pos_to_double(center[(axis + 2) % 3])};
      const auto s =
          analysis::density_slice(h, axis, center[axis], c2d, half, 256);
      io::write_slice_pgm(path, s);
      std::printf("wrote %s (256x256, log density in [%.2f, %.2f])\n",
                  path.c_str(), s.min_log, s.max_log);
    } else if (cmd == "project") {
      std::string path = "projection.pgm";
      ss >> path;
      const auto p = analysis::surface_density(h, axis, 256);
      io::write_projection_pgm(path, p);
      std::printf("wrote %s (surface density, axis %d)\n", path.c_str(), axis);
    } else if (cmd == "clumps") {
      double thr = 2.0;
      ss >> thr;
      const auto clumps = analysis::find_clumps(h, thr);
      std::printf("%zu clump(s) above rho = %g:\n", clumps.size(), thr);
      for (std::size_t c = 0; c < clumps.size() && c < 10; ++c)
        std::printf("  #%zu mass %.4g peak %.4g at (%.4f, %.4f, %.4f)\n", c,
                    clumps[c].mass, clumps[c].peak_density,
                    ext::pos_to_double(clumps[c].center[0]),
                    ext::pos_to_double(clumps[c].center[1]),
                    ext::pos_to_double(clumps[c].center[2]));
    } else if (!cmd.empty()) {
      std::printf("commands: tree stats peak zoom center slice profile "
                  "clumps save project quit\n");
    }
    std::printf("jacques> ");
  }
  std::printf("\n");
  return 0;
}
