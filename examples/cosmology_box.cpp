// Cosmological structure formation box: the paper's production configuration
// at laptop scale (§4).  A CDM Gaussian random field with Zel'dovich-
// displaced dark-matter particles and baryons, optionally with a nested
// static refinement level over the central region carrying mode-consistent
// extra small-scale power — exactly the paper's restart trick.
//
// The run reports the growth of structure (density extrema, particle
// clustering) and the state of the hierarchy as the first objects collapse.
//
//   $ ./cosmology_box [root_n] [steps]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/analysis.hpp"
#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "nbody/nbody.hpp"
#include "util/constants.hpp"

using namespace enzo;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;

  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {n, n, n};
  cfg.hierarchy.max_level = 2;
  cfg.comoving = true;
  cfg.frw.hubble = 0.5;          // "standard CDM" (§2.1, [16])
  cfg.frw.omega_matter = 1.0;
  cfg.frw.omega_baryon = 0.06;
  cfg.frw.sigma8 = 0.7;
  cfg.initial_redshift = 30.0;
  cfg.enable_gravity = true;
  cfg.enable_particles = true;
  cfg.refinement.dm_mass_threshold = 4.0 * (1.0 - 0.06) /
                                     (static_cast<double>(n) * n * n);
  cfg.refinement.baryon_mass_threshold =
      4.0 * 0.06 / (static_cast<double>(n) * n * n);

  core::Simulation sim(cfg);
  core::CosmologySetupOptions opt;
  opt.box_comoving_cm = 1.0 * constants::kMpc;  // small box: early collapse
  opt.seed = 2001;
  opt.nested_static_levels = 1;
  sim.initialize(core::cosmological_setup(opt));

  std::printf("CDM box: %.1f comoving Mpc, %d^3 root, z_i = %.0f, "
              "%zu particles, nested static level over the center\n\n",
              opt.box_comoving_cm / constants::kMpc, n, cfg.initial_redshift,
              nbody::total_particles(sim.hierarchy()));

  for (int s = 0; s < steps; ++s) {
    sim.advance_root_step();
    if (s % 2 != 0) continue;
    const auto st = analysis::hierarchy_stats(sim.hierarchy());
    const auto peak = analysis::find_densest_point(sim.hierarchy());
    std::printf("step %2d  z = %6.2f  gas overdensity max = %8.3f  "
                "levels = %d  grids = %zu\n",
                s, sim.redshift(), peak.density / 0.06 - 1.0, st.max_level + 1,
                st.total_grids);
  }

  // Profile of the most collapsed object.
  const auto peak = analysis::find_densest_point(sim.hierarchy());
  analysis::ProfileOptions popt;
  popt.nbins = 10;
  popt.r_min = 0.01;
  popt.r_max = 0.4;
  auto prof = analysis::radial_profile(sim.hierarchy(), peak.position, popt,
                                       sim.config().hydro, sim.chem_units());
  std::printf("\nfinal z = %.2f; densest object profile:\n", sim.redshift());
  std::printf("%10s %14s %14s\n", "r [code]", "gas rho", "DM rho");
  for (int b = 0; b < popt.nbins; ++b)
    if (prof.cell_count[b] > 0)
      std::printf("%10.4f %14.4g %14.4g\n", prof.r[b], prof.gas_density[b],
                  prof.dm_density[b]);
  std::printf("\ntotal DM mass: %.6f (should stay 1 - Omega_b/Omega_m = %.2f)\n",
              nbody::total_particle_mass(sim.hierarchy()), 1.0 - 0.06);
  return 0;
}
