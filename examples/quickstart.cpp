// Quickstart: the smallest complete enzo-mini program.
//
// Sets up a self-gravitating overdense cloud in a periodic box, lets the
// adaptive mesh refine where the Jeans criterion demands it, advances a few
// coarse-grid timesteps, and prints what the hierarchy did — the essential
// workflow every larger example follows.
//
//   $ ./quickstart

#include <cstdio>

#include "analysis/analysis.hpp"
#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "util/constants.hpp"

int main() {
  using namespace enzo;

  // 1. Configure: a 16³ root grid, up to 2 refined levels, refining on gas
  //    mass and on the Jeans-length criterion (§3.2.3).
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {16, 16, 16};
  cfg.hierarchy.max_level = 2;
  cfg.refinement.baryon_mass_threshold = 4.0 / (16.0 * 16 * 16);
  cfg.refinement.jeans_number = 4.0;

  // 2. Build the problem: a 10× overdense primordial cloud, 4 pc box
  //    (pure hydro+gravity here; see first_star_collapse for chemistry).
  core::Simulation sim(cfg);
  core::CollapseSetupOptions opt;
  opt.chemistry = false;
  opt.box_proper_cm = 4.0 * constants::kParsec;
  opt.mean_density_cgs = 1e-19;
  opt.overdensity = 10.0;
  opt.cloud_radius = 0.25;
  opt.temperature = 100.0;
  sim.initialize(core::collapse_cloud_setup(opt));

  std::printf("initial hierarchy: %d levels, %zu grids, %lld cells\n",
              sim.hierarchy().deepest_level() + 1,
              sim.hierarchy().total_grids(),
              static_cast<long long>(sim.hierarchy().total_cells()));

  // 3. Evolve a few root timesteps; the hierarchy rebuilds itself each step.
  for (int step = 0; step < 5; ++step) {
    const double dt = sim.advance_root_step();
    const auto peak = analysis::find_densest_point(sim.hierarchy());
    const auto st = analysis::hierarchy_stats(sim.hierarchy());
    std::printf(
        "step %d: dt=%.3f  t=%.3f  peak density=%.1f (level %d)  "
        "levels=%d grids=%zu\n",
        step, dt, sim.time_d(), peak.density, peak.level, st.max_level + 1,
        st.total_grids);
  }

  // 4. Ask a physics question: the radial density profile about the peak.
  const auto peak = analysis::find_densest_point(sim.hierarchy());
  analysis::ProfileOptions popt;
  popt.nbins = 12;
  popt.r_min = 0.01;
  popt.r_max = 0.45;
  hydro::HydroParams hp;
  auto prof = analysis::radial_profile(sim.hierarchy(), peak.position, popt,
                                       hp, sim.chem_units());
  std::printf("\nradial profile about the density peak:\n");
  std::printf("%12s %14s %14s\n", "r [code]", "density [code]", "v_r [code]");
  for (int b = 0; b < popt.nbins; ++b)
    if (prof.cell_count[b] > 0)
      std::printf("%12.4f %14.4f %14.4f\n", prof.r[b], prof.gas_density[b],
                  prof.v_radial[b]);
  return 0;
}
