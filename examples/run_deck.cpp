// run_deck: the production entry point — run any problem from a text
// parameter deck (see src/core/parameter_file.hpp for the key list and the
// decks/ directory for checked-in examples).
//
//   $ ./run_deck ../decks/first_star.enzo
//   $ ./run_deck ../decks/sod.enzo
//
// Telemetry flags (may appear anywhere on the command line):
//   --trace-out=FILE   write a Chrome trace_event JSON timeline of the run
//                      (load in chrome://tracing or Perfetto)
//   --diag-out=FILE    append one JSONL diagnostics record per root step
//                      (z, dt + limiter, grids/cells per level, conservation
//                      residuals, peak bytes, flops)
//   --audit            run the AMR invariant auditor after every root step
//                      (same as deck key AuditInvariants = 1); any violation
//                      makes the run exit non-zero
//
// Execution flags (override the deck's Threads/Executor keys):
//   --threads N        run level sweeps on N lanes (1 = serial backend,
//                      0 = all hardware threads); also --threads=N
//   --executor=NAME    force the backend: serial or threadpool
//
// Checkpoint / restart:
//   --restart          resume from the newest intact snapshot in the deck's
//                      CheckpointPath directory (corrupted or torn snapshots
//                      are skipped automatically)
//   --restart=PATH     resume from PATH (a snapshot file or a directory)
//   With CheckpointInterval = N in the deck, a snapshot is written to
//   CheckpointPath every N root steps (rolling retention CheckpointKeep,
//   default 3).  Without it, one snapshot is written at end of run.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "core/parameter_file.hpp"
#include "exec/exec_config.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_writer.hpp"
#include "perf/diagnostics.hpp"
#include "perf/trace.hpp"
#include "util/timer.hpp"

using namespace enzo;

int main(int argc, char** argv) {
  std::string trace_out, diag_out;
  bool audit = false;
  bool restart = false;
  std::string restart_path;  // empty: use the deck's CheckpointPath
  int threads_override = -1;  // -1: keep the deck's value
  std::string executor_override;
  std::vector<const char*> decks;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--trace-out=", 12) == 0)
      trace_out = argv[a] + 12;
    else if (std::strncmp(argv[a], "--diag-out=", 11) == 0)
      diag_out = argv[a] + 11;
    else if (std::strcmp(argv[a], "--audit") == 0)
      audit = true;
    else if (std::strcmp(argv[a], "--restart") == 0)
      restart = true;
    else if (std::strncmp(argv[a], "--restart=", 10) == 0) {
      restart = true;
      restart_path = argv[a] + 10;
    }
    else if (std::strncmp(argv[a], "--threads=", 10) == 0)
      threads_override = std::atoi(argv[a] + 10);
    else if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc)
      threads_override = std::atoi(argv[++a]);
    else if (std::strncmp(argv[a], "--executor=", 11) == 0)
      executor_override = argv[a] + 11;
    else
      decks.push_back(argv[a]);
  }
  if (decks.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--trace-out=FILE] [--diag-out=FILE] [--audit] "
                 "[--restart[=PATH]] "
                 "[--threads N] [--executor=serial|threadpool] "
                 "<parameter-deck> [more decks...]\n",
                 argv[0]);
    return 1;
  }

  perf::TraceRecorder& recorder = perf::TraceRecorder::global();
  if (!trace_out.empty()) recorder.enable_events(true);
  std::unique_ptr<perf::DiagnosticsSink> sink;
  if (!diag_out.empty()) {
    sink = std::make_unique<perf::DiagnosticsSink>(diag_out);
    if (!sink->ok()) {
      std::fprintf(stderr, "cannot open --diag-out file: %s\n",
                   diag_out.c_str());
      return 1;
    }
  }

  std::uint64_t audit_violations = 0;
  for (const char* deck_path : decks) {
    std::printf("==== deck: %s ====\n", deck_path);
    core::ParameterDeck deck = core::parse_parameter_file(deck_path);
    if (audit) deck.config.audit_invariants = true;
    if (threads_override >= 0) {
      deck.config.exec.threads = threads_override;
      if (executor_override.empty())
        deck.config.exec.backend = threads_override == 1
                                       ? exec::Backend::kSerial
                                       : exec::Backend::kThreadPool;
    }
    if (!executor_override.empty())
      deck.config.exec.backend = exec::backend_from_string(executor_override);
    std::printf("effective parameters:\n%s\n",
                core::render_deck(deck).c_str());
    core::Simulation sim(deck.config);
    // The sink must be attached before a restore: attaching resets the
    // conservation baselines that read_checkpoint then reinstates.
    if (sink) sim.set_diagnostics_sink(sink.get());
    if (restart) {
      const std::string from =
          !restart_path.empty() ? restart_path : deck.checkpoint_path;
      if (from.empty()) {
        std::fprintf(stderr,
                     "--restart needs a path: pass --restart=PATH or set "
                     "CheckpointPath in the deck\n");
        return 1;
      }
      core::configure_from_deck(sim, deck);
      const io::RestoreResult res = io::restore_latest_checkpoint(sim, from);
      std::printf("restarted from %s (step %ld, t = %.6g%s)\n",
                  res.path.c_str(), sim.root_steps_taken(), sim.time_d(),
                  res.skipped > 0
                      ? (", " + std::to_string(res.skipped) +
                         " corrupt snapshot(s) skipped")
                            .c_str()
                      : "");
    } else {
      core::setup_from_deck(sim, deck);
    }
    std::printf("initialized: %d levels, %zu grids, %lld cells\n",
                sim.hierarchy().deepest_level() + 1,
                sim.hierarchy().total_grids(),
                static_cast<long long>(sim.hierarchy().total_cells()));

    // Periodic auto-checkpointing: encode on the solver thread (per-grid
    // sections in parallel through the level executor), write + prune in the
    // background.  Declared after sim so it joins its worker first.
    std::unique_ptr<io::CheckpointWriter> ckpt_writer;
    if (deck.checkpoint_interval > 0 && !deck.checkpoint_path.empty()) {
      io::CheckpointWriter::Options copts;
      copts.dir = deck.checkpoint_path;
      copts.keep = deck.checkpoint_keep;
      copts.executor = &sim.executor();
      ckpt_writer = std::make_unique<io::CheckpointWriter>(copts);
      const int interval = deck.checkpoint_interval;
      sim.set_post_step_hook([&ckpt_writer, interval](core::Simulation& s) {
        if (s.root_steps_taken() % interval == 0)
          ckpt_writer->checkpoint(s);
      });
    }

    util::Stopwatch wall;
    for (long s = sim.root_steps_taken(); s < deck.stop_steps; ++s) {
      if (deck.stop_time > 0 && sim.time_d() >= deck.stop_time) break;
      if (deck.stop_time > 0)
        sim.evolve_until(deck.stop_time, 1);
      else
        sim.advance_root_step();
      const auto st = analysis::hierarchy_stats(sim.hierarchy());
      std::printf("step %3ld  t = %-10.4g levels %d  grids %-5zu cells %lld\n",
                  s, sim.time_d(), st.max_level + 1, st.total_grids,
                  static_cast<long long>(st.total_cells));
    }
    if (ckpt_writer) {
      sim.set_post_step_hook(nullptr);
      ckpt_writer->wait();
      if (!ckpt_writer->ok()) {
        std::fprintf(stderr, "checkpoint write failed: %s\n",
                     ckpt_writer->last_error().c_str());
        return 1;
      }
      std::printf("checkpoints: %llu written to %s (newest %ld kept)\n",
                  static_cast<unsigned long long>(
                      ckpt_writer->writes_completed()),
                  deck.checkpoint_path.c_str(),
                  static_cast<long>(deck.checkpoint_keep));
    }
    std::printf("done in %.1f s wall\n", wall.seconds());
    if (deck.config.audit_invariants) {
      std::printf("audit: %ld run(s), %llu violation(s); last: %s\n",
                  sim.audits_run(),
                  static_cast<unsigned long long>(
                      sim.audit_violations_total()),
                  sim.last_audit().summary().c_str());
      audit_violations += sim.audit_violations_total();
    }
    if (deck.checkpoint_interval <= 0 && !deck.checkpoint_path.empty()) {
      io::CheckpointWriteOptions wopts;
      wopts.executor = &sim.executor();
      io::write_checkpoint(sim, deck.checkpoint_path, wopts);
      std::printf("checkpoint written: %s (%.1f MB raw)\n",
                  deck.checkpoint_path.c_str(),
                  io::checkpoint_size_bytes(sim) / 1048576.0);
    }
  }

  if (!trace_out.empty()) {
    if (recorder.write_chrome_trace(trace_out)) {
      std::printf("trace written: %s (%lld events, %lld dropped)\n",
                  trace_out.c_str(),
                  static_cast<long long>(recorder.events_recorded()),
                  static_cast<long long>(recorder.events_dropped()));
    } else {
      std::fprintf(stderr, "cannot write --trace-out file: %s\n",
                   trace_out.c_str());
      return 1;
    }
  }
  if (sink)
    std::printf("diagnostics written: %s (%lld records)\n", diag_out.c_str(),
                static_cast<long long>(sink->records_written()));
  std::printf("%s", perf::TraceRecorder::global().component_report().c_str());
  if (audit_violations > 0) {
    std::fprintf(stderr, "FAILED: %llu AMR invariant violation(s)\n",
                 static_cast<unsigned long long>(audit_violations));
    return 2;
  }
  return 0;
}
