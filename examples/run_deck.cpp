// run_deck: the production entry point — run any problem from a text
// parameter deck (see src/core/parameter_file.hpp for the key list and the
// decks/ directory for checked-in examples).
//
//   $ ./run_deck ../decks/first_star.enzo
//   $ ./run_deck ../decks/sod.enzo

#include <cstdio>

#include "analysis/analysis.hpp"
#include "core/parameter_file.hpp"
#include "io/checkpoint.hpp"
#include "util/timer.hpp"

using namespace enzo;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <parameter-deck> [more decks...]\n",
                 argv[0]);
    return 1;
  }
  for (int a = 1; a < argc; ++a) {
    std::printf("==== deck: %s ====\n", argv[a]);
    core::ParameterDeck deck = core::parse_parameter_file(argv[a]);
    std::printf("effective parameters:\n%s\n",
                core::render_deck(deck).c_str());
    core::Simulation sim(deck.config);
    core::setup_from_deck(sim, deck);
    std::printf("initialized: %d levels, %zu grids, %lld cells\n",
                sim.hierarchy().deepest_level() + 1,
                sim.hierarchy().total_grids(),
                static_cast<long long>(sim.hierarchy().total_cells()));

    util::Stopwatch wall;
    for (int s = 0; s < deck.stop_steps; ++s) {
      if (deck.stop_time > 0 && sim.time_d() >= deck.stop_time) break;
      if (deck.stop_time > 0)
        sim.evolve_until(deck.stop_time, 1);
      else
        sim.advance_root_step();
      const auto st = analysis::hierarchy_stats(sim.hierarchy());
      std::printf("step %3d  t = %-10.4g levels %d  grids %-5zu cells %lld\n",
                  s, sim.time_d(), st.max_level + 1, st.total_grids,
                  static_cast<long long>(st.total_cells));
    }
    std::printf("done in %.1f s wall\n", wall.seconds());
    if (!deck.checkpoint_path.empty()) {
      io::write_checkpoint(sim, deck.checkpoint_path);
      std::printf("checkpoint written: %s (%.1f MB)\n",
                  deck.checkpoint_path.c_str(),
                  io::checkpoint_size_bytes(sim) / 1048576.0);
    }
  }
  return 0;
}
