// Sedov–Taylor point explosion on the adaptive mesh.
//
// The classic strong-shock verification problem with an exact similarity
// solution, r_shock(t) = β (E t² / ρ₀)^{1/5}: a delta-function energy
// deposit drives a spherical blast wave which the refinement criteria chase
// outward — the mirror image of the paper's inward-chasing collapse, and a
// direct test that dynamic refinement, flux correction and projection
// preserve a moving strong shock.
//
// The problem itself comes from the registry ("SedovBlast", the same deck
// text as decks/sedov.enzo), and the exact comparison uses the integrated
// similarity solution from analysis/reference.hpp instead of a hard-coded
// blast coefficient.
//
//   $ ./sedov_blast

#include <cmath>
#include <cstdio>
#include <sstream>

#include "analysis/analysis.hpp"
#include "analysis/reference.hpp"
#include "core/parameter_file.hpp"
#include "core/simulation.hpp"
#include "problems/registry.hpp"

using namespace enzo;

namespace {
/// Shock radius: maximum-density shell about the center.
double shock_radius(core::Simulation& sim) {
  analysis::ProfileOptions popt;
  popt.nbins = 64;
  popt.r_min = 0.01;
  popt.r_max = 0.5;
  ext::PosVec c{ext::pos_t(0.5), ext::pos_t(0.5), ext::pos_t(0.5)};
  auto prof = analysis::radial_profile(sim.hierarchy(), c, popt,
                                       sim.config().hydro, sim.chem_units());
  int bmax = 0;
  for (int b = 0; b < popt.nbins; ++b)
    if (prof.gas_density[b] > prof.gas_density[bmax]) bmax = b;
  return prof.r[bmax];
}
}  // namespace

int main() {
  std::istringstream in(
      "ProblemType = SedovBlast\n"
      "TopGridDimensions = 32 32 32\n"
      "MaximumRefinementLevel = 1\n"
      "RefineByOverdensity = 1.5\n"  // chase the shock shell
      "SedovDepositRadius = 0.078125\n");
  const auto deck = core::parse_parameter_deck(in);
  core::Simulation sim(deck.config);
  core::setup_from_deck(sim, deck);

  const double E = deck.sedov.energy;
  const analysis::SedovSolution exact(deck.config.hydro.gamma);
  std::printf("Sedov blast: E = %.1f in r < %.3f, gamma = %.3f, beta = %.4f\n\n",
              E, deck.sedov.radius, exact.gamma(), exact.beta());
  std::printf("%10s %12s %12s %8s %8s %7s\n", "t", "r_shock(sim)",
              "r_shock(exact)", "ratio", "levels", "grids");
  double next_t = 0.002;
  for (int s = 0; s < 400 && sim.time_d() < 0.05; ++s) {
    sim.advance_root_step();
    if (sim.time_d() < next_t) continue;
    next_t *= 1.8;
    const double r_sim = shock_radius(sim);
    const double r_exact = exact.shock_radius(sim.time_d(), E, 1.0);
    const auto st = analysis::hierarchy_stats(sim.hierarchy());
    std::printf("%10.4f %12.4f %12.4f %8.3f %8d %7zu\n", sim.time_d(), r_sim,
                r_exact, r_sim / r_exact, st.max_level + 1, st.total_grids);
  }
  std::printf("\nL1(density) vs similarity solution: %.3e\n",
              problems::Registry::global().at("SedovBlast").l1_density_error(
                  sim, deck));
  std::printf("the ratio should hold near 1 (±bin width) while the shell "
              "stays inside the box (r < 0.5)\n");
  return 0;
}
