// Sedov–Taylor point explosion on the adaptive mesh.
//
// The classic strong-shock verification problem with an exact similarity
// solution, r_shock(t) = β (E t² / ρ₀)^{1/5}: a delta-function energy
// deposit drives a spherical blast wave which the refinement criteria chase
// outward — the mirror image of the paper's inward-chasing collapse, and a
// direct test that dynamic refinement, flux correction and projection
// preserve a moving strong shock.
//
//   $ ./sedov_blast

#include <cmath>
#include <cstdio>

#include "analysis/analysis.hpp"
#include "core/setup.hpp"
#include "core/simulation.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;

namespace {
/// Shock radius: maximum-density shell about the center.
double shock_radius(core::Simulation& sim) {
  analysis::ProfileOptions popt;
  popt.nbins = 64;
  popt.r_min = 0.01;
  popt.r_max = 0.5;
  ext::PosVec c{ext::pos_t(0.5), ext::pos_t(0.5), ext::pos_t(0.5)};
  auto prof = analysis::radial_profile(sim.hierarchy(), c, popt,
                                       sim.config().hydro, sim.chem_units());
  int bmax = 0;
  for (int b = 0; b < popt.nbins; ++b)
    if (prof.gas_density[b] > prof.gas_density[bmax]) bmax = b;
  return prof.r[bmax];
}
}  // namespace

int main() {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {32, 32, 32};
  cfg.hierarchy.max_level = 1;
  cfg.hydro.gamma = 5.0 / 3.0;
  cfg.refinement.overdensity_threshold = 1.5;  // chase the shock shell
  core::Simulation sim(cfg);
  const double E = 1.0;
  const double r_dep = 2.5 / 32.0;
  // Uniform medium, then deposit the blast energy in a small central sphere
  // (after finalize: the refinement criteria first see the quiet medium and
  // chase the shock as it forms, like the original two-phase setup).
  core::ProblemSetup setup = core::uniform_setup(1.0, 1e-4);
  setup.refine([E, r_dep](core::Simulation& s) {
    Grid* g = s.hierarchy().grids(0)[0];
    double vol_sum = 0;
    for (int k = 0; k < 32; ++k)
      for (int j = 0; j < 32; ++j)
        for (int i = 0; i < 32; ++i) {
          const double x = (i + 0.5) / 32 - 0.5, y = (j + 0.5) / 32 - 0.5,
                       z = (k + 0.5) / 32 - 0.5;
          if (x * x + y * y + z * z < r_dep * r_dep) vol_sum += 1.0;
        }
    const double e_cell = E / (vol_sum / (32.0 * 32 * 32));
    for (int k = 0; k < 32; ++k)
      for (int j = 0; j < 32; ++j)
        for (int i = 0; i < 32; ++i) {
          const double x = (i + 0.5) / 32 - 0.5, y = (j + 0.5) / 32 - 0.5,
                       z = (k + 0.5) / 32 - 0.5;
          if (x * x + y * y + z * z < r_dep * r_dep) {
            g->field(Field::kInternalEnergy)(g->sx(i), g->sy(j), g->sz(k)) =
                e_cell;
            g->field(Field::kTotalEnergy)(g->sx(i), g->sy(j), g->sz(k)) =
                e_cell;
          }
        }
  });
  sim.initialize(setup);

  // β for γ = 5/3 (Sedov): r = β (E t²/ρ)^{1/5}, β ≈ 1.152.
  const double beta = 1.152;
  std::printf("Sedov blast: E = %.1f in r < %.3f, gamma = 5/3\n\n", E, r_dep);
  std::printf("%10s %12s %12s %8s %8s %7s\n", "t", "r_shock(sim)",
              "r_shock(exact)", "ratio", "levels", "grids");
  double next_t = 0.002;
  for (int s = 0; s < 400 && sim.time_d() < 0.05; ++s) {
    sim.advance_root_step();
    if (sim.time_d() < next_t) continue;
    next_t *= 1.8;
    const double r_sim = shock_radius(sim);
    const double r_exact =
        beta * std::pow(E * sim.time_d() * sim.time_d() / 1.0, 0.2);
    const auto st = analysis::hierarchy_stats(sim.hierarchy());
    std::printf("%10.4f %12.4f %12.4f %8.3f %8d %7zu\n", sim.time_d(), r_sim,
                r_exact, r_sim / r_exact, st.max_level + 1, st.total_grids);
  }
  std::printf("\nthe ratio should hold near 1 (±bin width) while the shell "
              "stays inside the box (r < 0.5)\n");
  return 0;
}
