// First-star collapse: the paper's science case at laptop scale (§4).
//
// A primordial (H/He + trace D) cloud collapses under self-gravity while the
// 12-species network tracks the H₂ that lets it cool — the adaptive mesh
// follows the collapse with mass- and Jeans-based refinement.  The run
// prints, at a sequence of output times triggered by the rising central
// density (like the paper's seven output times of Fig. 4):
//   * the density/temperature/H₂-fraction/velocity radial profiles,
//   * the hierarchy state (max level, grids per level).
//
//   $ ./first_star_collapse [max_level] [root_n]

#include <cstdio>
#include <cstdlib>

#include "analysis/analysis.hpp"
#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "util/constants.hpp"

using namespace enzo;

namespace {
void print_profile(core::Simulation& sim) {
  const auto peak = analysis::find_densest_point(sim.hierarchy());
  analysis::ProfileOptions popt;
  popt.nbins = 20;
  popt.r_min = 3e-4;
  popt.r_max = 0.5;
  auto prof = analysis::radial_profile(sim.hierarchy(), peak.position, popt,
                                       sim.config().hydro, sim.chem_units());
  const auto u = sim.chem_units();
  std::printf("%11s %11s %9s %9s %9s %11s\n", "r [pc]", "n [cm^-3]", "T [K]",
              "f_H2", "v_r", "M(<r) [Msun]");
  const double box_pc =
      sim.config().units.length_cm / constants::kParsec;
  const double mass_msun = sim.config().units.mass_g() / constants::kSolarMass;
  for (int b = 0; b < popt.nbins; ++b) {
    if (prof.cell_count[b] == 0) continue;
    const double n_cgs = prof.gas_density[b] * u.n_factor;
    std::printf("%11.4g %11.4g %9.3g %9.2e %9.3f %11.4g\n", prof.r[b] * box_pc,
                n_cgs, prof.temperature[b], prof.h2_fraction[b],
                prof.v_radial[b], prof.enclosed_gas_mass[b] * mass_msun);
  }
}
}  // namespace

int main(int argc, char** argv) {
  const int max_level = argc > 1 ? std::atoi(argv[1]) : 3;
  const int root_n = argc > 2 ? std::atoi(argv[2]) : 16;

  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {root_n, root_n, root_n};
  cfg.hierarchy.max_level = max_level;
  cfg.hierarchy.fields = mesh::chemistry_field_list();
  cfg.refinement.baryon_mass_threshold =
      4.0 / (static_cast<double>(root_n) * root_n * root_n);
  cfg.refinement.jeans_number = 4.0;
  cfg.enable_chemistry = true;

  core::Simulation sim(cfg);
  core::CollapseSetupOptions opt;
  opt.box_proper_cm = 4.0 * constants::kParsec;
  opt.mean_density_cgs = 1e-19;  // n ≈ 6×10⁴ cm⁻³ background
  opt.overdensity = 10.0;
  opt.cloud_radius = 0.25;
  opt.temperature = 300.0;
  opt.h2_fraction = 5e-4;  // the §4 "molecular cloud" fraction ~10⁻³
  sim.initialize(core::collapse_cloud_setup(opt));

  std::printf("box %.1f pc, background n = %.2g cm^-3, cloud 10x, T = %g K\n",
              opt.box_proper_cm / constants::kParsec,
              opt.mean_density_cgs / constants::kHydrogenMass,
              opt.temperature);

  double next_output_density = 2.0 * analysis::find_densest_point(
                                          sim.hierarchy()).density;
  const double t_unit_kyr = sim.config().units.time_s / constants::kYear / 1e3;
  int outputs = 0;
  for (int step = 0; step < 60 && outputs < 5; ++step) {
    sim.advance_root_step();
    const auto peak = analysis::find_densest_point(sim.hierarchy());
    const auto st = analysis::hierarchy_stats(sim.hierarchy());
    std::printf(
        "step %2d t=%7.1f kyr  peak n=%10.4g cm^-3  max level %d  grids %zu\n",
        step, sim.time_d() * t_unit_kyr,
        peak.density * sim.chem_units().n_factor, st.max_level,
        st.total_grids);
    if (peak.density >= next_output_density) {
      ++outputs;
      std::printf("\n=== output %d: central density %.3g cm^-3 ===\n", outputs,
                  peak.density * sim.chem_units().n_factor);
      print_profile(sim);
      std::printf("grids per level:");
      for (std::size_t l = 0; l < st.grids_per_level.size(); ++l)
        std::printf(" L%zu:%zu", l, st.grids_per_level[l]);
      std::printf("\n\n");
      next_output_density *= 4.0;
    }
  }
  std::printf("final: t = %.1f kyr, %ld root steps\n",
              sim.time_d() * t_unit_kyr, sim.root_steps_taken());
  return 0;
}
