// Zel'dovich pancake: the classic cosmological hydrodynamics verification
// problem, run through the comoving machinery (FRW background, comoving
// Euler equations with expansion sources, FFT self-gravity).
//
// A single sinusoidal perturbation grows per linear theory, then collapses
// into a caustic (a "pancake") with an accretion shock — the 1-d analogue of
// every structure in the paper's CDM box.  The example prints density,
// velocity and temperature profiles at several scale factors, plus the
// linear-theory comparison while the mode is still linear.
//
//   $ ./zeldovich_pancake

#include <cmath>
#include <cstdio>

#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "util/constants.hpp"

using namespace enzo;
using mesh::Field;

namespace {
void print_state(core::Simulation& sim, int n) {
  mesh::Grid* g = sim.hierarchy().grids(0)[0];
  std::printf("  a = %.4f (z = %.1f)\n", sim.scale_factor(), sim.redshift());
  std::printf("  %8s %10s %10s %12s\n", "x", "delta", "v_x", "e_int");
  for (int i = 0; i < n; i += n / 16) {
    std::printf("  %8.4f %10.4f %10.4f %12.4e\n", (i + 0.5) / n,
                g->field(Field::kDensity)(g->sx(i), 0, 0) - 1.0,
                g->field(Field::kVelocityX)(g->sx(i), 0, 0),
                g->field(Field::kInternalEnergy)(g->sx(i), 0, 0));
  }
  double dmax = 0, vmax = 0;
  for (int i = 0; i < n; ++i) {
    dmax = std::max(dmax, g->field(Field::kDensity)(g->sx(i), 0, 0) - 1.0);
    vmax = std::max(vmax, std::abs(g->field(Field::kVelocityX)(g->sx(i), 0, 0)));
  }
  std::printf("  peak delta = %.4f, max |v| = %.4f\n\n", dmax, vmax);
}
}  // namespace

int main() {
  const int n = 256;
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {n, 1, 1};
  cfg.hierarchy.max_level = 0;
  cfg.comoving = true;
  cfg.frw.hubble = 0.5;
  cfg.frw.omega_matter = 1.0;
  cfg.frw.omega_baryon = 1.0;  // gas-only pancake
  cfg.initial_redshift = 30.0;

  core::Simulation sim(cfg);
  core::PancakeOptions opt;
  opt.a_caustic_redshift = 3.0;
  opt.box_comoving_cm = 64.0 * constants::kMpc;
  sim.initialize(core::zeldovich_pancake_setup(opt));

  cosmology::Frw frw(cfg.frw);
  const double a_i = sim.scale_factor();
  std::printf("pancake: box %.0f Mpc, z_i = %.0f, caustic at z = %.0f\n\n",
              opt.box_comoving_cm / constants::kMpc, cfg.initial_redshift,
              opt.a_caustic_redshift);
  std::printf("initial state:\n");
  print_state(sim, n);

  // Output at a sequence of scale factors through caustic formation.
  for (double z_target : {15.0, 7.0, 4.0, 3.0, 2.5}) {
    const double a_target = 1.0 / (1.0 + z_target);
    if (a_target <= sim.scale_factor()) continue;
    const double t_target =
        frw.time_of_a(a_target) / sim.config().units.time_s;
    sim.evolve_until(t_target, 100000);
    std::printf("state at z = %.1f:\n", z_target);
    print_state(sim, n);
  }
  std::printf(
      "after caustic formation the central density spike and the outward-\n"
      "propagating accretion shock (heated e_int) are the pancake's\n"
      "signature structures.\n");
  (void)a_i;
  return 0;
}
