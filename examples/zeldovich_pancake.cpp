// Zel'dovich pancake: the classic cosmological hydrodynamics verification
// problem, run through the comoving machinery (FRW background, comoving
// Euler equations with expansion sources, FFT self-gravity).
//
// A single sinusoidal perturbation grows per linear theory, then collapses
// into a caustic (a "pancake") with an accretion shock — the 1-d analogue of
// every structure in the paper's CDM box.  The problem comes from the
// registry ("ZeldovichPancake", the same deck text as decks/zeldovich.enzo);
// while the mode is pre-caustic the registry's reference callback reports
// the L1 distance to the exact Zel'dovich solution.
//
//   $ ./zeldovich_pancake

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/parameter_file.hpp"
#include "core/simulation.hpp"
#include "cosmology/frw.hpp"
#include "problems/registry.hpp"
#include "util/constants.hpp"

using namespace enzo;
using mesh::Field;

namespace {
void print_state(core::Simulation& sim, int n) {
  mesh::Grid* g = sim.hierarchy().grids(0)[0];
  std::printf("  a = %.4f (z = %.1f)\n", sim.scale_factor(), sim.redshift());
  std::printf("  %8s %10s %10s %12s\n", "x", "delta", "v_x", "e_int");
  for (int i = 0; i < n; i += n / 16) {
    std::printf("  %8.4f %10.4f %10.4f %12.4e\n", (i + 0.5) / n,
                g->field(Field::kDensity)(g->sx(i), 0, 0) - 1.0,
                g->field(Field::kVelocityX)(g->sx(i), 0, 0),
                g->field(Field::kInternalEnergy)(g->sx(i), 0, 0));
  }
  double dmax = 0, vmax = 0;
  for (int i = 0; i < n; ++i) {
    dmax = std::max(dmax, g->field(Field::kDensity)(g->sx(i), 0, 0) - 1.0);
    vmax = std::max(vmax, std::abs(g->field(Field::kVelocityX)(g->sx(i), 0, 0)));
  }
  std::printf("  peak delta = %.4f, max |v| = %.4f\n\n", dmax, vmax);
}
}  // namespace

int main() {
  const int n = 256;
  std::istringstream in(
      "ProblemType = ZeldovichPancake\n"
      "TopGridDimensions = 256 1 1\n"
      "ComovingCoordinates = 1\n"
      "OmegaBaryonNow = 1.0\n"  // gas-only pancake
      "InitialRedshift = 30\n"
      "PancakeCausticRedshift = 3\n"
      "ComovingBoxSizeMpc = 64\n"
      "GravityEnabled = 1\n");
  const auto deck = core::parse_parameter_deck(in);
  core::Simulation sim(deck.config);
  core::setup_from_deck(sim, deck);

  cosmology::Frw frw(deck.config.frw);
  const auto& spec = problems::Registry::global().at("ZeldovichPancake");
  std::printf("pancake: box %.0f Mpc, z_i = %.0f, caustic at z = %.0f\n\n",
              deck.pancake.box_comoving_cm / constants::kMpc,
              deck.config.initial_redshift, deck.pancake.a_caustic_redshift);
  std::printf("initial state:\n");
  print_state(sim, n);

  // Output at a sequence of scale factors through caustic formation.
  for (double z_target : {15.0, 7.0, 4.0, 3.0, 2.5}) {
    const double a_target = 1.0 / (1.0 + z_target);
    if (a_target <= sim.scale_factor()) continue;
    const double t_target =
        frw.time_of_a(a_target) / sim.config().units.time_s;
    sim.evolve_until(t_target, 100000);
    std::printf("state at z = %.1f:\n", z_target);
    print_state(sim, n);
    if (z_target > 3.0)
      std::printf("  L1 vs exact Zel'dovich solution: %.3e\n\n",
                  spec.l1_density_error(sim, deck));
  }
  std::printf(
      "after caustic formation the central density spike and the outward-\n"
      "propagating accretion shock (heated e_int) are the pancake's\n"
      "signature structures.\n");
  return 0;
}
