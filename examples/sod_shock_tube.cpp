// Sod shock tube on an adaptive mesh: the standard hydro verification
// problem, run twice — unigrid and with a statically refined region over the
// diaphragm — demonstrating that flux correction and projection keep the
// AMR solution consistent with the unigrid one (§3.2.1).
//
// Both runs go through the problem registry: the same deck text a user
// would feed run_deck selects the problem, and the registry's analytic
// reference callback reports the distance to the exact Riemann solution.
//
//   $ ./sod_shock_tube

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "core/parameter_file.hpp"
#include "core/simulation.hpp"
#include "problems/registry.hpp"

using namespace enzo;
using mesh::Field;

namespace {
core::ParameterDeck make_deck(const std::string& problem, int n) {
  std::string text = "ProblemType = " + problem +
                     "\nTopGridDimensions = " + std::to_string(n) +
                     " 1 1\nGamma = 1.4\n";
  if (problem == "SodTubeSMR") text += "MaximumRefinementLevel = 1\n";
  std::istringstream in(text);
  return core::parse_parameter_deck(in);
}

core::Simulation run(const core::ParameterDeck& deck, double t_end) {
  core::Simulation sim(deck.config);
  core::setup_from_deck(sim, deck);
  sim.evolve_until(t_end, 10000);
  return sim;
}
}  // namespace

int main() {
  const int n = 128;
  const double t_end = 0.15;

  const auto deck_uni = make_deck("SodTube", n);
  const auto deck_amr = make_deck("SodTubeSMR", n);
  core::Simulation uni = run(deck_uni, t_end);
  core::Simulation amr = run(deck_amr, t_end);
  std::printf("AMR run: %d levels, %zu grids\n",
              amr.hierarchy().deepest_level() + 1,
              amr.hierarchy().total_grids());

  mesh::Grid* gu = uni.hierarchy().grids(0)[0];
  mesh::Grid* ga = amr.hierarchy().grids(0)[0];
  std::printf("\n%8s %12s %12s %12s\n", "x", "rho(unigrid)", "rho(AMR)",
              "diff");
  double l1 = 0;
  for (int i = 0; i < n; ++i) {
    const double ru = gu->field(Field::kDensity)(gu->sx(i), 0, 0);
    const double ra = ga->field(Field::kDensity)(ga->sx(i), 0, 0);
    l1 += std::abs(ru - ra);
    if (i % 8 == 0)
      std::printf("%8.4f %12.5f %12.5f %12.2e\n", (i + 0.5) / n, ru, ra,
                  ra - ru);
  }
  std::printf("\nL1(AMR - unigrid) = %.3e  (coarse-grid projection of the "
              "refined solution)\n",
              l1 / n);

  const auto& reg = problems::Registry::global();
  std::printf("L1 vs exact Riemann solution: unigrid %.3e, AMR %.3e\n",
              reg.at("SodTube").l1_density_error(uni, deck_uni),
              reg.at("SodTubeSMR").l1_density_error(amr, deck_amr));
  std::printf("expected structures at t=0.15: rarefaction to x~0.26, contact "
              "x~0.64, shock x~0.76\n");
  return 0;
}
