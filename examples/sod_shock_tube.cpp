// Sod shock tube on an adaptive mesh: the standard hydro verification
// problem, run twice — unigrid and with a statically refined region over the
// diaphragm — demonstrating that flux correction and projection keep the
// AMR solution consistent with the unigrid one (§3.2.1).
//
//   $ ./sod_shock_tube

#include <cmath>
#include <cstdio>

#include "core/setup.hpp"
#include "core/simulation.hpp"

using namespace enzo;
using mesh::Field;

namespace {
core::Simulation make_tube(int n, bool refined) {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {n, 1, 1};
  cfg.hierarchy.max_level = refined ? 1 : 0;
  cfg.hydro.gamma = 1.4;
  cfg.rebuild_interval = 1 << 20;  // static tree
  core::Simulation sim(cfg);
  core::ProblemSetup setup = core::sod_tube_setup();
  if (refined) {
    // Refine the middle half of the tube at 2×.
    setup.static_region(1, {{n / 2, 0, 0}, {3 * n / 2, 1, 1}});
  }
  sim.initialize(setup);
  return sim;
}
}  // namespace

int main() {
  const int n = 128;
  const double t_end = 0.15;

  core::Simulation uni = make_tube(n, false);
  uni.evolve_until(t_end, 10000);

  core::Simulation amr = make_tube(n, true);
  amr.evolve_until(t_end, 10000);
  std::printf("AMR run: %d levels, %zu grids\n",
              amr.hierarchy().deepest_level() + 1,
              amr.hierarchy().total_grids());

  mesh::Grid* gu = uni.hierarchy().grids(0)[0];
  mesh::Grid* ga = amr.hierarchy().grids(0)[0];
  std::printf("\n%8s %12s %12s %12s\n", "x", "rho(unigrid)", "rho(AMR)",
              "diff");
  double l1 = 0;
  for (int i = 0; i < n; ++i) {
    const double ru = gu->field(Field::kDensity)(gu->sx(i), 0, 0);
    const double ra = ga->field(Field::kDensity)(ga->sx(i), 0, 0);
    l1 += std::abs(ru - ra);
    if (i % 8 == 0)
      std::printf("%8.4f %12.5f %12.5f %12.2e\n", (i + 0.5) / n, ru, ra,
                  ra - ru);
  }
  std::printf("\nL1(AMR - unigrid) = %.3e  (coarse-grid projection of the "
              "refined solution)\n",
              l1 / n);
  std::printf("expected structures at t=0.15: rarefaction to x~0.26, contact "
              "x~0.64, shock x~0.76\n");
  return 0;
}
