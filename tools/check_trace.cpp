// check_trace: dependency-free (C++-only) self-check of the telemetry
// subsystem's end-to-end output.  Runs the scaled first-star collapse with
// event capture and a diagnostics sink, then validates what a user of
// --trace-out/--diag-out would consume:
//
//   * the Chrome trace JSON parses, every event is a complete "X" event,
//     timestamps are monotonic, and nested scopes appear for hydro, gravity,
//     chemistry, boundary conditions, and hierarchy rebuild on >= 2 levels;
//   * the component-table fractions sum to 1 within 1e-9;
//   * the JSONL diagnostics stream has one schema-valid record per root step
//     with per-level grid/cell counts and the active dt limiter.
//
//   $ ./check_trace [trace.json [diag.jsonl]]     (exit 0 = all checks pass)

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "perf/diagnostics.hpp"
#include "perf/json.hpp"
#include "perf/trace.hpp"
#include "util/constants.hpp"

using namespace enzo;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("%-64s %s\n", what.c_str(), ok ? "ok" : "FAIL");
  if (!ok) ++failures;
}

std::string read_file(const std::string& path) {
  std::string out;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "check_trace.json";
  const std::string diag_path = argc > 2 ? argv[2] : "check_trace_diag.jsonl";
  constexpr int kSteps = 3;

  // ---- run the instrumented collapse ---------------------------------------
  perf::TraceRecorder& recorder = perf::TraceRecorder::global();
  recorder.reset();
  recorder.enable_events(true);

  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {16, 16, 16};
  cfg.hierarchy.max_level = 3;
  cfg.hierarchy.fields = mesh::chemistry_field_list();
  cfg.refinement.baryon_mass_threshold = 4.0 / (16.0 * 16.0 * 16.0);
  cfg.refinement.jeans_number = 4.0;
  cfg.enable_chemistry = true;
  core::Simulation sim(cfg);
  core::CollapseSetupOptions opt;
  opt.chemistry = true;
  opt.box_proper_cm = 4.0 * constants::kParsec;
  opt.mean_density_cgs = 1e-19;
  opt.overdensity = 10.0;
  opt.cloud_radius = 0.25;
  opt.temperature = 300.0;
  opt.h2_fraction = 5e-4;
  sim.initialize(core::collapse_cloud_setup(opt));

  {
    perf::DiagnosticsSink sink(diag_path);
    if (!sink.ok()) {
      std::fprintf(stderr, "cannot open %s\n", diag_path.c_str());
      return 1;
    }
    sim.set_diagnostics_sink(&sink);
    for (int s = 0; s < kSteps; ++s) sim.advance_root_step();
    sim.set_diagnostics_sink(nullptr);
  }
  check(sim.hierarchy().deepest_level() >= 1,
        "collapse run refined beyond the root level");
  if (!recorder.write_chrome_trace(trace_path)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }

  // ---- Chrome trace validity -----------------------------------------------
  perf::JsonValue doc;
  std::string err;
  check(perf::json_parse(read_file(trace_path), &doc, &err),
        "trace file parses as JSON (" + err + ")");
  const perf::JsonValue* events = doc.find("traceEvents");
  check(events != nullptr && events->is_array() && !events->array().empty(),
        "traceEvents is a non-empty array");
  bool monotonic = true, complete = true, nested = true;
  std::set<std::string> cats;
  std::set<int> levels_seen;
  bool saw_l1_nesting = false;
  double last_ts = -1.0;
  if (events != nullptr && events->is_array()) {
    for (const perf::JsonValue& ev : events->array()) {
      const perf::JsonValue* ph = ev.find("ph");
      const perf::JsonValue* ts = ev.find("ts");
      const perf::JsonValue* dur = ev.find("dur");
      const perf::JsonValue* cat = ev.find("cat");
      const perf::JsonValue* args = ev.find("args");
      if (ph == nullptr || ph->str() != "X" || ts == nullptr ||
          dur == nullptr || cat == nullptr || ev.find("name") == nullptr ||
          ev.find("pid") == nullptr || ev.find("tid") == nullptr) {
        complete = false;
        continue;
      }
      if (ts->number() < last_ts) monotonic = false;
      last_ts = ts->number();
      cats.insert(cat->str());
      const perf::JsonValue* path =
          args != nullptr ? args->find("path") : nullptr;
      const perf::JsonValue* level =
          args != nullptr ? args->find("level") : nullptr;
      if (path == nullptr || level == nullptr) {
        nested = false;
        continue;
      }
      levels_seen.insert(static_cast<int>(level->number()));
      if (path->str().rfind("evolve_level/L0/evolve_level/L1/", 0) == 0)
        saw_l1_nesting = true;
    }
  }
  check(complete, "every event is a complete (ph=X) event with all keys");
  check(monotonic, "event timestamps are monotonic");
  check(nested, "every event carries args.path and args.level");
  for (const char* comp :
       {perf::component::kHydro, perf::component::kGravity,
        perf::component::kChemistry, perf::component::kBoundary,
        perf::component::kRebuild})
    check(cats.count(comp) == 1,
          std::string("trace has events for component: ") + comp);
  check(levels_seen.count(0) == 1 && levels_seen.count(1) == 1,
        "trace covers >= 2 refinement levels (0 and 1)");
  check(saw_l1_nesting,
        "scopes nest through evolve_level/L0/evolve_level/L1/...");
  check(recorder.path_calls("evolve_level/L0/step_grids/hydro") >=
            static_cast<std::uint64_t>(kSteps),
        "hydro scopes nest under evolve_level via the step_grids phase");

  // ---- component-table fractions -------------------------------------------
  double fraction_sum = 0.0;
  for (const auto& row : recorder.component_table())
    fraction_sum += row.fraction;
  check(std::abs(fraction_sum - 1.0) <= 1e-9,
        "component fractions sum to 1 (sum = " +
            perf::json_number(fraction_sum) + ")");

  // ---- JSONL diagnostics stream --------------------------------------------
  const std::string diag = read_file(diag_path);
  int records = 0;
  bool schema_ok = true, level_stats_ok = true, limiter_ok = true;
  std::size_t pos = 0;
  while (pos < diag.size()) {
    std::size_t nl = diag.find('\n', pos);
    if (nl == std::string::npos) nl = diag.size();
    const std::string line = diag.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    perf::StepRecord rec;
    if (!perf::parse_step_record(line, &rec)) {
      schema_ok = false;
      continue;
    }
    ++records;
    if (rec.step != records || rec.dt <= 0.0) schema_ok = false;
    if (rec.levels.empty() || rec.levels[0].grids == 0 ||
        rec.levels[0].cells == 0)
      level_stats_ok = false;
    for (std::size_t l = 0; l < rec.levels.size(); ++l)
      if (rec.levels[l].level != static_cast<int>(l)) level_stats_ok = false;
    if (rec.dt_limiter.empty() || rec.dt_limiter == "none") limiter_ok = false;
  }
  check(records == kSteps, "one JSONL record per root step");
  check(schema_ok, "every JSONL record round-trips through the schema");
  check(level_stats_ok, "records carry per-level grid/cell counts");
  check(limiter_ok, "records name the active dt limiter");

  std::remove(trace_path.c_str());
  std::remove(diag_path.c_str());
  if (failures > 0) {
    std::printf("\ncheck_trace: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\ncheck_trace: all checks passed\n");
  return 0;
}
