// ckpt_faultinject: the checkpoint fault-injection sweep.
//
// Proves the crash-safety contract of checkpoint format v2 end to end: a
// small collapse simulation writes a rolling series of snapshots, then the
// harness damages copies of the checkpoint directory every way a dying
// machine can —
//
//   * truncation at *every* section boundary (header starts, payload starts,
//     payload ends, mid-trailer) of the newest snapshot,
//   * a single flipped byte at a spread of offsets across the newest file,
//   * a write abandoned mid-stream via the inject_crash_after_bytes hook
//     (leaving only a torn `.tmp`),
//
// and asserts that restore_latest_checkpoint always lands on the newest
// *intact* snapshot, never on damaged bytes, and throws (rather than
// fabricating state) when nothing intact remains.  Exit 0 on full pass;
// non-zero with a per-case summary otherwise.  Registered with ctest under
// the `io` and `sanitize` labels, so the sweep also runs under asan-ubsan.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_writer.hpp"
#include "util/error.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;
namespace fs = std::filesystem;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

core::SimulationConfig collapse_cfg() {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {8, 8, 8};
  cfg.hierarchy.max_level = 1;
  cfg.refinement.overdensity_threshold = 3.0;
  return cfg;
}

void make_blob(core::Simulation& sim) {
  sim.build_root();
  Grid* g = sim.hierarchy().grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  const auto rho = g->field(Field::kDensity);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) {
        const double x = (i + 0.5) / 8 - 0.5, y = (j + 0.5) / 8 - 0.5,
                     z = (k + 0.5) / 8 - 0.5;
        rho(g->sx(i), g->sy(j), g->sz(k)) =
            1.0 + 8.0 * std::exp(-(x * x + y * y + z * z) / 0.02);
      }
  g->field(Field::kInternalEnergy).fill(1.0);
  g->field(Field::kTotalEnergy).fill(1.0);
  mesh::Particle p;
  p.x = {ext::pos_t(0.51), ext::pos_t(0.49), ext::pos_t(0.5)};
  p.v = {0.1, -0.2, 0.05};
  p.mass = 0.01;
  p.id = 77;
  g->particles().push_back(p);
  sim.finalize_setup();
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

/// Copy the pristine checkpoint dir into a scratch dir for one damage case.
fs::path fresh_copy(const fs::path& pristine, const fs::path& scratch) {
  fs::remove_all(scratch);
  fs::copy(pristine, scratch);
  return scratch;
}

/// restore_latest into a fresh sim; returns the restored root-step count, or
/// -1 when no intact snapshot was found (enzo::Error).
long restore_step(const std::string& dir, int* skipped = nullptr) {
  core::Simulation sim(collapse_cfg());
  try {
    const io::RestoreResult res = io::restore_latest_checkpoint(sim, dir);
    if (skipped != nullptr) *skipped = res.skipped;
    return sim.root_steps_taken();
  } catch (const enzo::Error&) {
    return -1;
  }
}

}  // namespace

int main() {
  const fs::path base = fs::temp_directory_path() / "enzo_ckpt_fault";
  const fs::path pristine = base / "pristine";
  const fs::path scratch = base / "case";
  fs::remove_all(base);
  fs::create_directories(pristine);

  // ---- build the snapshot series: steps 1, 2, 3 -----------------------------
  core::Simulation sim(collapse_cfg());
  make_blob(sim);
  io::CheckpointWriter::Options wopts;
  wopts.dir = pristine.string();
  wopts.keep = 10;
  io::CheckpointWriter writer(wopts);
  for (int s = 0; s < 3; ++s) {
    sim.advance_root_step();
    writer.checkpoint(sim);
  }
  writer.wait();
  if (!writer.ok()) {
    std::fprintf(stderr, "snapshot series failed: %s\n",
                 writer.last_error().c_str());
    return 2;
  }
  const auto files = io::list_checkpoints(pristine.string());
  if (files.size() != 3) {
    std::fprintf(stderr, "expected 3 snapshots, found %zu\n", files.size());
    return 2;
  }
  const std::string newest_name = fs::path(files[2]).filename().string();
  const std::vector<std::uint8_t> newest = slurp(files[2]);

  std::printf("== baseline ==\n");
  check(restore_step(pristine.string()) == 3, "pristine dir restores step 3");

  // ---- truncation at every section boundary of the newest snapshot ----------
  // Boundaries from the framing walk: file start, header end (16), each
  // section's header start / payload start / payload end, and inside the
  // trailer (size-4).  Every cut must be detected and recovery must fall
  // back to the step-2 snapshot.
  const auto sections = io::describe_checkpoint(files[2]);
  std::vector<std::size_t> cuts = {0, 16, newest.size() - 4};
  for (const auto& s : sections) {
    cuts.push_back(s.header_offset);
    cuts.push_back(s.payload_offset);
    cuts.push_back(s.payload_offset + s.stored_size);
  }
  std::printf("== truncation sweep: %zu boundaries over %zu sections ==\n",
              cuts.size(), sections.size());
  for (std::size_t cut : cuts) {
    fresh_copy(pristine, scratch);
    fs::resize_file(scratch / newest_name, cut);
    int skipped = 0;
    const long step = restore_step(scratch.string(), &skipped);
    check(step == 2 && skipped == 1,
          "truncate newest at byte " + std::to_string(cut) +
              " -> restores step 2");
  }

  // ---- random byte flips across the newest snapshot -------------------------
  // Deterministic spread (LCG) of 64 offsets; every flip must be caught by a
  // section or file CRC, never silently restored.
  std::printf("== byte-flip sweep: 64 offsets ==\n");
  std::uint64_t lcg = 0x2001;
  for (int i = 0; i < 64; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t off = static_cast<std::size_t>(lcg % newest.size());
    const auto bit = static_cast<std::uint8_t>(1u << ((lcg >> 32) % 8));
    fresh_copy(pristine, scratch);
    std::vector<std::uint8_t> bad = newest;
    bad[off] ^= bit;
    spit((scratch / newest_name).string(), bad);
    int skipped = 0;
    const long step = restore_step(scratch.string(), &skipped);
    check(step == 2 && skipped == 1,
          "flip bit at byte " + std::to_string(off) + " -> restores step 2");
  }

  // ---- crash mid-write: torn .tmp must be ignored ---------------------------
  std::printf("== torn-write cases ==\n");
  {
    fresh_copy(pristine, scratch);
    sim.advance_root_step();  // step 4
    io::CheckpointWriteOptions opts;
    const std::size_t image_size = io::encode_checkpoint(sim, opts).size();
    for (const std::size_t frac : {std::size_t{0}, image_size / 2,
                                   image_size - 1}) {
      opts.inject_crash_after_bytes = frac;
      const std::string target =
          (scratch / io::checkpoint_file_name(sim.root_steps_taken()))
              .string();
      io::write_checkpoint(sim, target, opts);
      check(!fs::exists(target) && fs::exists(target + ".tmp"),
            "crash after " + std::to_string(frac) +
                " B leaves only a .tmp behind");
      fs::remove(target + ".tmp");
    }
    // A torn .tmp in the directory is invisible to recovery.
    opts.inject_crash_after_bytes = image_size / 2;
    io::write_checkpoint(
        sim, (scratch / io::checkpoint_file_name(4)).string(), opts);
    check(restore_step(scratch.string()) == 3,
          "torn .tmp ignored; newest intact snapshot (step 3) restored");
  }

  // ---- nothing intact -> recovery must throw, not fabricate -----------------
  std::printf("== all-corrupt case ==\n");
  {
    fresh_copy(pristine, scratch);
    for (const auto& f : io::list_checkpoints(scratch.string()))
      fs::resize_file(f, 10);
    check(restore_step(scratch.string()) == -1,
          "all snapshots corrupt -> restore throws");
  }

  fs::remove_all(base);
  if (g_failures > 0) {
    std::printf("FAILED: %d fault case(s)\n", g_failures);
    return 1;
  }
  std::printf("all fault cases passed\n");
  return 0;
}
