#!/usr/bin/env bash
# ci.sh: the full correctness matrix, in the order a PR gate should run it.
#
#   1. werror      — -Wall -Wextra -Werror, full test suite (includes the
#                    `io` label: checkpoint round-trips, restart determinism,
#                    and the ckpt_faultinject corruption/torn-write sweep)
#   2. lint        — tools/run_lint --all: the project linter (enzo-lint)
#                    whole-repo gate against tools/enzo_lint/baseline.txt
#   3. clang-tidy  — tools/run_tidy diff gate (skips if clang-tidy missing)
#   4. asan-ubsan  — AddressSanitizer + UBSan + ENZO_BOUNDS_CHECK,
#                    `ctest -L sanitize` subset (the fault sweep carries the
#                    sanitize label too, so torn-file parsing runs under asan)
#   5. tsan        — ThreadSanitizer (OpenMP off), `ctest -L sanitize` subset
#
# Extra on-demand stages re-run targeted suites against an existing
# build-werror tree: `io` (CI_STAGES="io") covers the checkpoint suite, and
# `topology` (CI_STAGES="topology") covers the `mesh` label — the overlap-
# topology cache equivalence/invalidation tests and the rest of mesh_test —
# and `regrid` (CI_STAGES="regrid") the storage-arena / incremental-regrid
# tests plus the regrid-storm bench, and `kernels` (CI_STAGES="kernels") the
# SoA kernel gate — check_vec (the kernel TUs must autovectorize), the
# micro-kernel bench (BENCH_micro_kernels.json), and check_kernels (>40%
# cells/sec regression vs bench/micro_kernels_baseline.json fails), and
# `regression` (CI_STAGES="regression") the analytic regression harness —
# `ctest -L regression` (full-resolution L1 convergence sweeps over the
# problem registry) plus a check_kernels gate on the end-to-end driver
# throughput (BENCH_regression.json vs bench/regression_baseline.json).
#
# Each stage uses the corresponding CMakePresets.json preset, so a local
# repro of any failure is one command, e.g.:
#   cmake --preset tsan && cmake --build --preset tsan -j && \
#   ctest --preset tsan
#
# Environment:
#   CI_JOBS     parallel build/test jobs (default: nproc)
#   CI_STAGES   space-separated subset to run (default: "werror lint tidy
#               asan-ubsan tsan")

set -u -o pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root" || exit 2

jobs="${CI_JOBS:-$(nproc)}"
stages="${CI_STAGES:-werror lint tidy asan-ubsan tsan}"
failed=()

banner() { printf '\n==== %s ====\n' "$*"; }

run_preset() {
  local preset="$1"
  banner "stage: $preset"
  cmake --preset "$preset" || return 1
  cmake --build --preset "$preset" -j "$jobs" || return 1
  ctest --preset "$preset" -j "$jobs" --output-on-failure || return 1
}

for stage in $stages; do
  case "$stage" in
    lint)
      banner "stage: enzo-lint gate"
      # Whole-repo run of the project linter; new findings (anything not in
      # tools/enzo_lint/baseline.txt) fail the stage.  Uses build-werror's
      # compile database, configuring it if this stage runs first.
      if [ ! -f build-werror/compile_commands.json ]; then
        cmake --preset werror || { failed+=(lint); continue; }
      fi
      tools/run_lint -b build-werror --all || failed+=(lint)
      ;;
    tidy)
      banner "stage: clang-tidy gate"
      # Gate against the merge base when on a branch, else all of HEAD's
      # parent; run_tidy itself skips cleanly when clang-tidy is missing.
      tools/run_tidy -b build-werror || failed+=(tidy)
      ;;
    io)
      banner "stage: io checkpoint suite"
      # Targeted re-run of the checkpoint/restart tests and the fault sweep
      # against an existing werror build (configure+build it if missing).
      if [ ! -d build-werror ]; then
        cmake --preset werror && cmake --build --preset werror -j "$jobs" \
          || { failed+=(io); continue; }
      fi
      ctest --test-dir build-werror -L io -j "$jobs" --output-on-failure \
        || failed+=(io)
      ;;
    topology)
      banner "stage: overlap-topology suite"
      # Targeted re-run of the `mesh` label (topology cache equivalence,
      # invalidation, and the rest of mesh_test) against build-werror.
      if [ ! -d build-werror ]; then
        cmake --preset werror && cmake --build --preset werror -j "$jobs" \
          || { failed+=(topology); continue; }
      fi
      ctest --test-dir build-werror -L mesh -j "$jobs" --output-on-failure \
        || failed+=(topology)
      ;;
    regrid)
      banner "stage: regrid arena suite"
      # Targeted re-run of the storage-arena / incremental-regrid tests plus
      # the regrid-storm bench (BENCH_regrid.json) against build-werror.
      if [ ! -d build-werror ]; then
        cmake --preset werror && cmake --build --preset werror -j "$jobs" \
          || { failed+=(regrid); continue; }
      fi
      cmake --build --preset werror -j "$jobs" --target regrid_arena \
        || { failed+=(regrid); continue; }
      ctest --test-dir build-werror \
        -R '^(Arena|Buffer3|StorageArena|RegridStorm|ArenaCheckpoint)' \
        -j "$jobs" --output-on-failure || failed+=(regrid)
      build-werror/bench/regrid_arena || failed+=(regrid)
      ;;
    kernels)
      banner "stage: SoA kernel gate"
      # Vectorization report + micro-kernel throughput against the checked-in
      # baseline, all against build-werror (RelWithDebInfo, same flags the
      # baseline was recorded with).
      if [ ! -d build-werror ]; then
        cmake --preset werror && cmake --build --preset werror -j "$jobs" \
          || { failed+=(kernels); continue; }
      fi
      cmake --build --preset werror -j "$jobs" \
        --target micro_kernels --target check_kernels \
        || { failed+=(kernels); continue; }
      tools/check_vec build-werror || { failed+=(kernels); continue; }
      (cd build-werror/bench && ./micro_kernels) \
        || { failed+=(kernels); continue; }
      # 40% tolerance: back-to-back runs of the small per-kernel benches
      # swing ±25-30% on a shared host, so tighter gates flap without a
      # real regression.  The failures this gate exists to catch — a lane
      # loop falling back to scalar — show up as 2-3x drops.
      build-werror/tools/check_kernels \
        bench/micro_kernels_baseline.json \
        build-werror/bench/BENCH_micro_kernels.json 0.40 || failed+=(kernels)
      ;;
    regression)
      banner "stage: analytic regression harness"
      # Full-resolution convergence sweeps (Sod, Sedov, Zel'dovich; unigrid
      # and AMR) plus the end-to-end driver throughput gate.  The bench run
      # is repeated alone after the ctest pass so BENCH_regression.json is
      # recorded without contention from the convergence sweeps.
      if [ ! -d build-werror ]; then
        cmake --preset werror && cmake --build --preset werror -j "$jobs" \
          || { failed+=(regression); continue; }
      fi
      cmake --build --preset werror -j "$jobs" \
        --target regression_test --target check_kernels \
        || { failed+=(regression); continue; }
      ctest --test-dir build-werror -L regression -j "$jobs" \
        --output-on-failure || { failed+=(regression); continue; }
      (cd build-werror/tests && \
        ./regression_test --gtest_filter='RegressionBench.*') \
        || { failed+=(regression); continue; }
      # 50% tolerance: these are whole-driver runs (regrid, flux correction,
      # projection in the loop), noisier than the pinned micro-kernels; the
      # failures this catches — a hot path dropping out of the vector or
      # arena path — show up as 2x+ drops.
      build-werror/tools/check_kernels \
        bench/regression_baseline.json \
        build-werror/tests/BENCH_regression.json 0.50 || failed+=(regression)
      ;;
    werror|asan-ubsan|tsan)
      run_preset "$stage" || failed+=("$stage")
      ;;
    *)
      echo "ci.sh: unknown stage '$stage'" >&2
      failed+=("$stage")
      ;;
  esac
done

banner "summary"
if [ ${#failed[@]} -gt 0 ]; then
  echo "FAILED stages: ${failed[*]}"
  exit 1
fi
echo "all stages passed: $stages"
