// enzo-lint driver.
//
//   enzo-lint --compdb build/compile_commands.json [--root DIR]
//             [--baseline tools/enzo_lint/baseline.txt] [--write-baseline]
//             [--files rel1 rel2 ...] [--list-rules] [paths...]
//
// With --compdb the tool lints every src/** translation unit named by the
// compile database plus every header under src/.  Explicit paths (positional)
// lint just those files.  --files restricts the compdb set to the given
// repo-relative paths — tools/run_lint uses it for changed-files-only runs.
//
// Exit status: 0 clean (baselined debt allowed), 1 findings, 2 usage error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "enzo-lint: %s\n", msg);
  std::fprintf(stderr,
               "usage: enzo-lint [--compdb FILE] [--root DIR] "
               "[--baseline FILE] [--write-baseline] [--list-rules] "
               "[--files rel...] [paths...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace enzo::lint;
  namespace fs = std::filesystem;

  std::string compdb, root, baseline_path;
  bool write_baseline = false, list_rules = false;
  std::vector<std::string> restrict_files, explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        usage((std::string(flag) + " requires an argument").c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--compdb") {
      compdb = next("--compdb");
    } else if (a == "--root") {
      root = next("--root");
    } else if (a == "--baseline") {
      baseline_path = next("--baseline");
    } else if (a == "--write-baseline") {
      write_baseline = true;
    } else if (a == "--list-rules") {
      list_rules = true;
    } else if (a == "--files") {
      while (i + 1 < argc && argv[i + 1][0] != '-')
        restrict_files.push_back(argv[++i]);
    } else if (a == "--help" || a == "-h") {
      usage(nullptr);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      return usage(("unknown option " + a).c_str());
    } else {
      explicit_paths.push_back(a);
    }
  }

  if (list_rules) {
    for (const RuleInfo& r : rule_catalog())
      std::printf("%-36s %s\n", r.name, r.summary);
    return 0;
  }

  if (root.empty()) {
    // Default root: the repo containing the compile database's sources, or
    // the current directory for explicit-path runs.
    root = fs::current_path().string();
    if (!compdb.empty()) {
      // compile_commands.json lives in <root>/build*/; its parent's parent
      // is the repo when laid out that way, else fall back to cwd.
      const fs::path parent = fs::path(compdb).parent_path().parent_path();
      if (!parent.empty() && fs::exists(parent / "src")) root = parent.string();
    }
  }

  std::vector<std::string> paths;
  std::string err;
  if (!explicit_paths.empty()) {
    paths = explicit_paths;
  } else if (!compdb.empty()) {
    paths = collect_sources(compdb, root, &err);
    if (!err.empty()) return usage(err.c_str());
  } else {
    return usage("need --compdb or explicit paths");
  }

  if (!restrict_files.empty()) {
    const std::set<std::string> keep(restrict_files.begin(),
                                     restrict_files.end());
    std::vector<std::string> filtered;
    for (const std::string& p : paths)
      if (keep.count(relativize(p, root)) || keep.count(p))
        filtered.push_back(p);
    paths.swap(filtered);
  }

  std::vector<Finding> all;
  std::size_t nfiles = 0;
  for (const std::string& p : paths) {
    std::string rel = relativize(p, root);
    if (rel.empty()) rel = p;
    SourceFile f;
    if (!load_file(p, rel, &f)) {
      std::fprintf(stderr, "enzo-lint: cannot read %s\n", p.c_str());
      continue;
    }
    ++nfiles;
    for (Finding& fi : run_rules(f)) all.push_back(std::move(fi));
  }

  if (write_baseline) {
    const std::string text = to_baseline(all);
    if (baseline_path.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(baseline_path);
      if (!out) return usage(("cannot write " + baseline_path).c_str());
      out << text;
      std::printf("enzo-lint: wrote %zu baseline entr%s to %s\n", all.size(),
                  all.size() == 1 ? "y" : "ies", baseline_path.c_str());
    }
    return 0;
  }

  std::size_t suppressed = 0;
  std::vector<Finding> fresh = all;
  if (!baseline_path.empty()) {
    Baseline bl;
    if (!bl.load(baseline_path, &err)) return usage(err.c_str());
    fresh = bl.filter(all, &suppressed);
  }

  for (const Finding& fi : fresh)
    std::printf("%s:%d: [%s] %s\n", fi.rel.c_str(), fi.line, fi.rule.c_str(),
                fi.message.c_str());
  std::printf(
      "enzo-lint: %zu file(s), %zu finding(s), %zu baselined\n", nfiles,
      fresh.size(), suppressed);
  return fresh.empty() ? 0 : 1;
}
