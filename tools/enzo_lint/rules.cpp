// The enzo-lint rule set (DESIGN.md §11).  Every rule is a token-level
// scan; shared helpers below provide bracket matching, a heuristic function
// finder (name + body range + ENZO_* annotations), and member-access tests.

#include <algorithm>
#include <array>
#include <cstddef>
#include <sstream>

#include "lint.hpp"

namespace enzo::lint {

namespace {

using Toks = std::vector<Token>;

bool is_ident(const Toks& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokKind::kIdent && t[i].text == text;
}
bool is_punct(const Toks& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == text;
}
/// True when token i is reached through `.` or `->` (member access).
bool is_member(const Toks& t, std::size_t i) {
  return i > 0 && t[i - 1].kind == TokKind::kPunct &&
         (t[i - 1].text == "." || t[i - 1].text == "->");
}
bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// Index of the matching closer for the opener at i ('(' / '{' / '['),
/// or t.size() when unbalanced.
std::size_t match_bracket(const Toks& t, std::size_t i) {
  const std::string& open = t[i].text;
  const std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == open) ++depth;
    if (t[j].text == close && --depth == 0) return j;
  }
  return t.size();
}

/// Skip a template argument list: i indexes '<'.  Returns the index just
/// past the matching '>', or i+1 when this is not a template bracket
/// (hit ';' '{' or end first).  ">>" closes two levels.
std::size_t skip_template(const Toks& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      if (--depth == 0) return j + 1;
    }
    if (t[j].text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    }
    if (t[j].text == ";" || t[j].text == "{") break;
  }
  return i + 1;
}

// ---------------------------------------------------------------------------
// Function finder
// ---------------------------------------------------------------------------

struct FuncDef {
  std::string name;
  int line = 0;
  std::size_t body_begin = 0;  ///< index of '{'
  std::size_t body_end = 0;    ///< index of matching '}'
  std::set<std::string> annotations;  ///< ENZO_* idents in the signature
};

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",    "switch",   "catch",
      "return", "sizeof",   "alignof",  "decltype", "constexpr",
      "assert", "static_assert", "defined", "alignas", "noexcept"};
  return kw;
}

std::vector<FuncDef> find_functions(const SourceFile& f) {
  const Toks& t = f.tokens;
  std::vector<FuncDef> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_punct(t, i, "(")) continue;
    if (i == 0 || t[i - 1].kind != TokKind::kIdent) continue;
    if (control_keywords().count(t[i - 1].text)) continue;
    const std::size_t close = match_bracket(t, i);
    if (close >= t.size()) continue;
    // Skip trailing qualifiers; accept ctor init lists and trailing returns.
    std::size_t j = close + 1;
    bool plausible = true;
    while (j < t.size()) {
      if (t[j].kind == TokKind::kIdent &&
          (t[j].text == "const" || t[j].text == "noexcept" ||
           t[j].text == "override" || t[j].text == "final" ||
           t[j].text == "mutable")) {
        ++j;
      } else if (is_punct(t, j, "->") || is_punct(t, j, ":")) {
        // Trailing return type / ctor init list: scan to the body brace.
        int pd = 0;
        ++j;
        while (j < t.size()) {
          if (is_punct(t, j, "(")) ++pd;
          if (is_punct(t, j, ")")) --pd;
          if (is_punct(t, j, ";")) { plausible = false; break; }
          if (is_punct(t, j, "{") && pd == 0) break;
          ++j;
        }
        break;
      } else {
        break;
      }
    }
    if (!plausible || j >= t.size() || !is_punct(t, j, "{")) continue;
    FuncDef fd;
    fd.name = t[i - 1].text;
    fd.line = t[i - 1].line;
    fd.body_begin = j;
    fd.body_end = match_bracket(t, j);
    // Annotations: ENZO_* identifiers between the previous statement/brace
    // boundary and the function name.
    for (std::size_t k = i - 1; k-- > 0;) {
      if (t[k].kind == TokKind::kPunct &&
          (t[k].text == ";" || t[k].text == "{" || t[k].text == "}"))
        break;
      if (t[k].kind == TokKind::kIdent && starts_with(t[k].text, "ENZO_"))
        fd.annotations.insert(t[k].text);
    }
    out.push_back(std::move(fd));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Finding plumbing
// ---------------------------------------------------------------------------

std::string normalize(const std::string& line) {
  std::string out;
  bool ws = false;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      ws = !out.empty();
      continue;
    }
    if (ws) out += ' ';
    ws = false;
    out += c;
  }
  return out;
}

bool allowed(const SourceFile& f, int line, const std::string& rule) {
  for (int l : {line, line - 1}) {
    auto it = f.allows.find(l);
    if (it != f.allows.end() &&
        (it->second.count(rule) || it->second.count("all")))
      return true;
  }
  auto it = f.allows.find(0);  // file-wide allow-file(...)
  return it != f.allows.end() &&
         (it->second.count(rule) || it->second.count("all"));
}

void emit(const SourceFile& f, std::vector<Finding>* out, const char* rule,
          int line, std::string message) {
  if (allowed(f, line, rule)) return;
  Finding fi;
  fi.rule = rule;
  fi.rel = f.rel;
  fi.line = line;
  fi.message = std::move(message);
  if (line >= 1 && static_cast<std::size_t>(line) <= f.lines.size())
    fi.norm = normalize(f.lines[static_cast<std::size_t>(line) - 1]);
  out->push_back(std::move(fi));
}

// ---------------------------------------------------------------------------
// Rule: determinism-unordered-iteration
// ---------------------------------------------------------------------------
// Iterating a hash container observes bucket order — a function of pointer
// values and library version — so results that feed physics, serialization,
// or reductions are not reproducible.  Lookups are fine; iteration is not.

constexpr const char* kRuleUnordered = "determinism-unordered-iteration";

void rule_unordered_iteration(const SourceFile& f,
                              std::vector<Finding>* out) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const Toks& t = f.tokens;
  std::set<std::string> vars;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !kUnordered.count(t[i].text)) continue;
    if (!is_punct(t, i + 1, "<")) continue;
    std::size_t j = skip_template(t, i + 1);
    while (j < t.size() && (is_punct(t, j, "&") || is_punct(t, j, "*") ||
                            is_ident(t, j, "const")))
      ++j;
    if (j < t.size() && t[j].kind == TokKind::kIdent) vars.insert(t[j].text);
  }
  if (vars.empty()) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for whose range expression names an unordered container.
    if (is_ident(t, i, "for") && is_punct(t, i + 1, "(")) {
      const std::size_t close = match_bracket(t, i + 1);
      std::size_t colon = 0;
      for (std::size_t j = i + 2; j < close; ++j)
        if (is_punct(t, j, ":")) {
          colon = j;
          break;
        }
      if (colon == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j)
        if (t[j].kind == TokKind::kIdent && vars.count(t[j].text)) {
          emit(f, out, kRuleUnordered, t[i].line,
               "range-for over hash container '" + t[j].text +
                   "': bucket order is nondeterministic; iterate a sorted "
                   "key list or an ordinal index instead");
          break;
        }
    }
    // Explicit iteration: var.begin() / var.cbegin().
    if (t[i].kind == TokKind::kIdent && vars.count(t[i].text) &&
        is_punct(t, i + 1, ".") && i + 2 < t.size() &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" ||
         t[i + 2].text == "rbegin")) {
      emit(f, out, kRuleUnordered, t[i].line,
           "iterator over hash container '" + t[i].text +
               "': bucket order is nondeterministic");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism-grid-fp-accumulation
// ---------------------------------------------------------------------------
// Floating-point addition does not associate; accumulating across a grid
// loop bakes the iteration/schedule order into the result.  Parallel-phase
// reductions must go through exec::reduce_ordered; genuinely serial
// passes carry an allow-directive stating the contract.

constexpr const char* kRuleFpAccum = "determinism-grid-fp-accumulation";

void rule_grid_fp_accumulation(const SourceFile& f,
                               std::vector<Finding>* out) {
  const Toks& t = f.tokens;
  // Every declaration line per name, so shadowing declarations inside the
  // loop body are distinguishable from the outer accumulator.
  std::map<std::string, std::vector<int>> fp_decls;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t, i, "double") && !is_ident(t, i, "float")) continue;
    std::size_t j = i + 1;
    while (j < t.size() && (is_punct(t, j, "&") || is_punct(t, j, "*"))) ++j;
    if (j < t.size() && t[j].kind == TokKind::kIdent)
      fp_decls[t[j].text].push_back(t[j].line);
  }
  if (fp_decls.empty()) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "for") || !is_punct(t, i + 1, "(")) continue;
    const std::size_t close = match_bracket(t, i + 1);
    bool over_grids = false;
    for (std::size_t j = i + 2; j < close; ++j)
      if (is_ident(t, j, "grids") || is_ident(t, j, "level_grids"))
        over_grids = true;
    if (!over_grids || close + 1 >= t.size() ||
        !is_punct(t, close + 1, "{"))
      continue;
    const std::size_t body_end = match_bracket(t, close + 1);
    for (std::size_t j = close + 2; j < body_end; ++j) {
      if (t[j].kind != TokKind::kIdent) continue;
      auto it = fp_decls.find(t[j].text);
      if (it == fp_decls.end()) continue;
      // The declaration in effect here is the last one at or before this
      // use; only accumulators declared *before* the loop matter.
      int decl = -1;
      for (int dl : it->second)
        if (dl <= t[j].line) decl = dl;
      if (decl < 0 || decl >= t[i].line) continue;
      if (j + 1 < t.size() &&
          (is_punct(t, j + 1, "+=") || is_punct(t, j + 1, "-="))) {
        emit(f, out, kRuleFpAccum, t[j].line,
             "floating-point accumulation into '" + t[j].text +
                 "' across a grid loop: route through exec::reduce_ordered "
                 "or state the serial contract with an allow-directive");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism-nondeterministic-source
// ---------------------------------------------------------------------------
// Wall clocks, entropy sources, and pointer-value arithmetic leak run-to-run
// state into results.  Telemetry code (src/perf, src/util/timer) is the
// sanctioned home for clocks.

constexpr const char* kRuleNondet = "determinism-nondeterministic-source";

void rule_nondeterministic_source(const SourceFile& f,
                                  std::vector<Finding>* out) {
  if (starts_with(f.rel, "src/perf/") ||
      starts_with(f.rel, "src/util/timer."))
    return;
  static const std::set<std::string> kBanned = {
      "rand",          "srand",         "drand48",
      "lrand48",       "random_device", "system_clock",
      "high_resolution_clock",          "steady_clock",
      "uintptr_t",     "intptr_t"};
  const Toks& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || is_member(t, i)) continue;
    if (kBanned.count(t[i].text)) {
      emit(f, out, kRuleNondet, t[i].line,
           "'" + t[i].text +
               "' is a nondeterministic source (clock/entropy/pointer "
               "value); physics and serialization must be reproducible");
    } else if (t[i].text == "time" && is_punct(t, i + 1, "(") &&
               i + 2 < t.size() &&
               (t[i + 2].text == "nullptr" || t[i + 2].text == "NULL" ||
                t[i + 2].text == "0" || t[i + 2].text == "&")) {
      // `time(nullptr)`-style seeding only; `double time() const` members
      // and calls to them are fine.
      emit(f, out, kRuleNondet, t[i].line,
           "time() seeds results with wall-clock state");
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: hotpath-heap-alloc / hotpath-lock
// ---------------------------------------------------------------------------
// Inside ENZO_HOT bodies (per-cell / per-pencil kernel code) heap traffic
// and lock acquisition are forbidden: scratch must be preallocated and
// capacity-reusing (Pencil::reset, ppm scratch), and synchronization
// belongs to the executor layer, not kernels.

constexpr const char* kRuleHotAlloc = "hotpath-heap-alloc";
constexpr const char* kRuleHotLock = "hotpath-lock";

void rule_hotpath(const SourceFile& f, const std::vector<FuncDef>& funcs,
                  std::vector<Finding>* out) {
  static const std::set<std::string> kGrowth = {
      "push_back", "emplace_back", "emplace",   "resize",
      "reserve",   "insert",       "append",    "push_front"};
  static const std::set<std::string> kAllocTypes = {
      "vector", "string", "deque",  "list",         "map",
      "set",    "multimap", "multiset",
      "unordered_map",      "unordered_set",        "function",
      "Array3", "stringstream", "ostringstream",    "shared_ptr",
      "unique_ptr"};
  static const std::set<std::string> kAllocCalls = {
      "malloc", "calloc", "realloc", "strdup", "to_string", "make_unique",
      "make_shared"};
  static const std::set<std::string> kLockTypes = {
      "mutex",       "timed_mutex", "recursive_mutex",    "lock_guard",
      "unique_lock", "scoped_lock", "shared_lock",        "condition_variable",
      "condition_variable_any"};
  const Toks& t = f.tokens;
  for (const FuncDef& fd : funcs) {
    if (!fd.annotations.count("ENZO_HOT")) continue;
    for (std::size_t i = fd.body_begin + 1; i < fd.body_end; ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& s = t[i].text;
      if (s == "new" && !is_member(t, i)) {
        emit(f, out, kRuleHotAlloc, t[i].line,
             "heap allocation (new) inside ENZO_HOT '" + fd.name + "'");
      } else if (!is_member(t, i) && kAllocCalls.count(s)) {
        emit(f, out, kRuleHotAlloc, t[i].line,
             "allocating call '" + s + "' inside ENZO_HOT '" + fd.name + "'");
      } else if (is_member(t, i) && kGrowth.count(s) &&
                 is_punct(t, i + 1, "(")) {
        emit(f, out, kRuleHotAlloc, t[i].line,
             "container growth '." + s + "()' inside ENZO_HOT '" + fd.name +
                 "' — preallocate or reuse capacity (assign) outside the "
                 "hot region");
      } else if (!is_member(t, i) && kAllocTypes.count(s)) {
        // Allocating local/temporary: type< args > name | type< args > (
        std::size_t j = i + 1;
        if (is_punct(t, j, "<")) j = skip_template(t, j);
        else if (s == "vector" || s == "map" || s == "set") continue;
        if (j < t.size() && (is_punct(t, j, "&") || is_punct(t, j, "*") ||
                             is_punct(t, j, "::")))
          continue;  // reference/pointer/nested-name — no allocation here
        if (j < t.size() &&
            (t[j].kind == TokKind::kIdent || is_punct(t, j, "("))) {
          emit(f, out, kRuleHotAlloc, t[i].line,
               "allocating local of type '" + s + "' inside ENZO_HOT '" +
                   fd.name + "' — use preallocated scratch");
        }
      }
      if ((kLockTypes.count(s) && !is_member(t, i)) ||
          (is_member(t, i) && is_punct(t, i + 1, "(") &&
           (s == "lock" || s == "unlock" || s == "try_lock"))) {
        emit(f, out, kRuleHotLock, t[i].line,
             "lock use '" + s + "' inside ENZO_HOT '" + fd.name +
                 "' — synchronization belongs to the executor layer");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: hotpath-transcendental
// ---------------------------------------------------------------------------
// A libm transcendental (`pow`, `exp`, `log`, …) inside a loop in an
// ENZO_HOT body is the per-cell struct-fill pattern the batched kernel layer
// replaced: it serializes the loop on a scalar libm call and blocks
// autovectorization of everything around it.  Rate/cooling evaluations hoist
// these into dense lane loops (chemistry::RateBatch); such deliberately
// batched loops carry an allow-directive on the loop header, which exempts
// the whole loop body.

constexpr const char* kRuleHotTrans = "hotpath-transcendental";

void rule_hotpath_transcendental(const SourceFile& f,
                                 const std::vector<FuncDef>& funcs,
                                 std::vector<Finding>* out) {
  static const std::set<std::string> kTrans = {"pow", "exp",  "expm1",
                                               "log", "log10", "log2",
                                               "log1p"};
  const Toks& t = f.tokens;
  for (const FuncDef& fd : funcs) {
    if (!fd.annotations.count("ENZO_HOT")) continue;
    for (std::size_t i = fd.body_begin + 1; i < fd.body_end; ++i) {
      if ((!is_ident(t, i, "for") && !is_ident(t, i, "while")) ||
          !is_punct(t, i + 1, "("))
        continue;
      const std::size_t close = match_bracket(t, i + 1);
      if (close >= fd.body_end) continue;
      // Loop body extent: braced block, or single statement to ';' (a
      // nested braced `for` chain counts as the statement).
      std::size_t begin, end;
      if (close + 1 < t.size() && is_punct(t, close + 1, "{")) {
        begin = close + 2;
        end = match_bracket(t, close + 1);
      } else {
        begin = close + 1;
        end = begin;
        while (end < fd.body_end && !is_punct(t, end, ";")) {
          if (is_punct(t, end, "{")) {
            end = match_bracket(t, end);
            break;
          }
          ++end;
        }
      }
      // An allow-directive on the loop header marks a deliberately batched
      // lane loop and covers every call in its body (the per-finding check
      // cannot reach continuation lines of multi-line expressions).
      if (allowed(f, t[i].line, kRuleHotTrans)) {
        i = end;
        continue;
      }
      for (std::size_t j = begin; j < end && j < t.size(); ++j) {
        if (t[j].kind != TokKind::kIdent || is_member(t, j)) continue;
        if (!kTrans.count(t[j].text) || !is_punct(t, j + 1, "(")) continue;
        emit(f, out, kRuleHotTrans, t[j].line,
             "per-cell '" + t[j].text + "' inside a loop in ENZO_HOT '" +
                 fd.name +
                 "' — hoist into a batched lane evaluation (see "
                 "chemistry::RateBatch) or annotate the batched loop header");
      }
      i = end;  // inner loops were just scanned; don't re-report them
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: topology-allpairs
// ---------------------------------------------------------------------------
// Overlap queries go through mesh::OverlapTopology (PR 5): an inner scan of
// a level's grid list nested inside another grid sweep is the O(grids²)
// pattern the cache replaced.  The reference implementations live in
// src/mesh/topology.cpp / hierarchy.cpp and behind per-hierarchy
// Hierarchy::set_use_topology(false) allow-directives.

constexpr const char* kRuleAllPairs = "topology-allpairs";

void rule_topology_allpairs(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel == "src/mesh/topology.cpp" || f.rel == "src/mesh/hierarchy.cpp")
    return;
  const Toks& t = f.tokens;
  struct Sweep {
    std::size_t begin, end;  ///< token extent that encloses nested scans
  };
  std::vector<Sweep> sweeps;        // grid for-loops + executor phases
  std::vector<std::size_t> loops;   // indices of grid for-loop `for` tokens
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t, i, "for") && is_punct(t, i + 1, "(")) {
      const std::size_t close = match_bracket(t, i + 1);
      bool over_grids = false;
      for (std::size_t j = i + 2; j < close; ++j)
        if (is_ident(t, j, "grids") || is_ident(t, j, "level_grids"))
          over_grids = true;
      if (!over_grids) continue;
      std::size_t end = close;
      if (close + 1 < t.size() && is_punct(t, close + 1, "{")) {
        end = match_bracket(t, close + 1);
      } else {
        // Single-statement body: runs to ';' or to the close of the first
        // balanced brace block (a nested `for (...) { ... }` chain has no
        // trailing semicolon).
        std::size_t j = close + 1;
        while (j < t.size() && !is_punct(t, j, ";")) {
          if (is_punct(t, j, "{")) {
            j = match_bracket(t, j);
            break;
          }
          ++j;
        }
        end = j;
      }
      loops.push_back(i);
      sweeps.push_back({i, end});
    } else if ((is_ident(t, i, "for_each") ||
                is_ident(t, i, "reduce_ordered")) &&
               is_punct(t, i + 1, "(")) {
      // Executor phase over a level's grids: its lambda argument is a
      // per-grid body, so a grid scan inside is all-pairs.
      sweeps.push_back({i, match_bracket(t, i + 1)});
    }
  }
  for (std::size_t li : loops) {
    for (const Sweep& s : sweeps) {
      if (li > s.begin && li < s.end) {
        emit(f, out, kRuleAllPairs, t[li].line,
             "grid-list scan nested inside another grid sweep (O(grids²)): "
             "query mesh::OverlapTopology instead");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: units-untagged-boundary
// ---------------------------------------------------------------------------

constexpr const char* kRuleUnits = "units-untagged-boundary";

void rule_units_boundary(const SourceFile& f,
                         const std::vector<FuncDef>& funcs,
                         std::vector<Finding>* out) {
  static const std::set<std::string> kConversions = {
      "proper_density", "velocity_cgs", "temperature_factor", "mass_g",
      "comoving_matter_density"};
  const Toks& t = f.tokens;
  for (const FuncDef& fd : funcs) {
    std::string conv;
    for (std::size_t i = fd.body_begin + 1; i < fd.body_end; ++i)
      if (t[i].kind == TokKind::kIdent && kConversions.count(t[i].text)) {
        conv = t[i].text;
        break;
      }
    if (conv.empty()) continue;
    const bool tagged_boundary = fd.annotations.count("ENZO_UNITS_BOUNDARY") ||
                                 fd.annotations.count("ENZO_UNITS_PROPER");
    const bool tagged_comoving = fd.annotations.count("ENZO_UNITS_COMOVING");
    if (tagged_comoving) {
      emit(f, out, kRuleUnits, fd.line,
           "'" + fd.name + "' is tagged ENZO_UNITS_COMOVING but calls the "
               "comoving→proper conversion '" + conv + "'");
    } else if (!tagged_boundary) {
      emit(f, out, kRuleUnits, fd.line,
           "'" + fd.name + "' crosses the comoving/proper unit boundary ('" +
               conv + "') without an ENZO_UNITS_BOUNDARY/_PROPER tag");
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: banned APIs
// ---------------------------------------------------------------------------

constexpr const char* kRulePrintf = "banned-printf";
constexpr const char* kRuleAssert = "banned-assert";
constexpr const char* kRulePi = "banned-pi-literal";

void rule_banned_apis(const SourceFile& f, std::vector<Finding>* out) {
  static const std::set<std::string> kIo = {"printf", "fprintf", "vprintf",
                                            "vfprintf", "puts", "fputs",
                                            "cout", "cerr", "clog"};
  const bool log_impl = starts_with(f.rel, "src/perf/log.");
  const Toks& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& s = t[i].text;
    if (!log_impl && kIo.count(s) && !is_member(t, i)) {
      emit(f, out, kRulePrintf, t[i].line,
           "raw output via '" + s +
               "': route diagnostics through perf::StructuredLog");
    }
    if (s == "assert" && is_punct(t, i + 1, "(") && !is_member(t, i)) {
      emit(f, out, kRuleAssert, t[i].line,
           "raw assert() aborts the process: use ENZO_REQUIRE (throws "
           "enzo::Error, testable)");
    }
    if (s == "M_PI" && f.rel != "src/util/constants.hpp") {
      emit(f, out, kRulePi, t[i].line,
           "M_PI is a POSIX extension (not portable C++): use "
           "constants::kPi / kTwoPi / kFourPi");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      {kRuleUnordered,
       "no iteration over unordered containers where order can feed results"},
      {kRuleFpAccum,
       "per-grid floating-point reductions go through exec::reduce_ordered"},
      {kRuleNondet,
       "no clocks, entropy, or pointer-value arithmetic outside telemetry"},
      {kRuleHotAlloc, "no heap allocation inside ENZO_HOT kernel bodies"},
      {kRuleHotLock, "no locking inside ENZO_HOT kernel bodies"},
      {kRuleHotTrans,
       "per-cell libm transcendentals in ENZO_HOT loops are hoisted into "
       "batched lanes"},
      {kRuleAllPairs,
       "overlap queries use mesh::OverlapTopology, not nested grid scans"},
      {kRuleUnits,
       "comoving/proper unit-frame crossings carry ENZO_UNITS_* tags"},
      {kRulePrintf, "diagnostics go through perf::StructuredLog"},
      {kRuleAssert, "library code uses ENZO_REQUIRE, not assert()"},
      {kRulePi, "pi comes from util/constants, not M_PI"},
  };
  return kRules;
}

std::vector<Finding> run_rules(const SourceFile& f) {
  std::vector<Finding> out;
  const std::vector<FuncDef> funcs = find_functions(f);
  rule_unordered_iteration(f, &out);
  rule_grid_fp_accumulation(f, &out);
  rule_nondeterministic_source(f, &out);
  rule_hotpath(f, funcs, &out);
  rule_hotpath_transcendental(f, funcs, &out);
  rule_topology_allpairs(f, &out);
  rule_units_boundary(f, funcs, &out);
  rule_banned_apis(f, &out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.rel != b.rel) return a.rel < b.rel;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace enzo::lint
