// Token-level C++ lexer for enzo-lint.  Good enough for rule matching:
// identifiers, numbers, string/char literals (bodies dropped), the two- and
// three-character operators the rules care about, comment-borne directives.

#include "lint.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace enzo::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse `enzo-lint: allow(rule-a, rule-b)` / `allow-file(...)` from a
/// comment's text; record under `line` (0 for file-wide).
void parse_directive(const std::string& comment, int line, SourceFile* f) {
  const auto tag = comment.find("enzo-lint:");
  if (tag == std::string::npos) return;
  std::size_t p = tag + 10;
  while (p < comment.size() && comment[p] == ' ') ++p;
  bool file_wide = false;
  if (comment.compare(p, 10, "allow-file") == 0) {
    file_wide = true;
    p += 10;
  } else if (comment.compare(p, 5, "allow") == 0) {
    p += 5;
  } else {
    return;
  }
  const auto open = comment.find('(', p);
  if (open == std::string::npos) return;
  const auto close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string rules = comment.substr(open + 1, close - open - 1);
  std::stringstream ss(rules);
  std::string r;
  while (std::getline(ss, r, ',')) {
    std::size_t b = r.find_first_not_of(" \t");
    std::size_t e = r.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    (*f).allows[file_wide ? 0 : line].insert(r.substr(b, e - b + 1));
  }
}

const char* kTwoCharOps[] = {"->", "::", "+=", "-=", "*=", "/=", "==", "!=",
                             "<=", ">=", "&&", "||", "<<", ">>", "++", "--"};

}  // namespace

void lex(const std::string& text, SourceFile* f) {
  // Split lines (for normalized baseline keys and directive anchoring).
  f->lines.clear();
  {
    std::string cur;
    for (char c : text) {
      if (c == '\n') {
        f->lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) f->lines.push_back(cur);
  }

  std::size_t i = 0;
  const std::size_t n = text.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto push = [&](TokKind k, std::string t) {
    f->tokens.push_back(Token{k, std::move(t), line});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Preprocessor directive: drop the whole (continued) line.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments (with directive extraction).
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t e = i + 2;
      while (e < n && text[e] != '\n') ++e;
      parse_directive(text.substr(i + 2, e - i - 2), line, f);
      i = e;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t e = i + 2;
      int start_line = line;
      while (e + 1 < n && !(text[e] == '*' && text[e + 1] == '/')) {
        if (text[e] == '\n') ++line;
        ++e;
      }
      parse_directive(text.substr(i + 2, e - i - 2), start_line, f);
      i = (e + 1 < n) ? e + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && text[d] != '(') ++d;
      const std::string delim = ")" + text.substr(i + 2, d - i - 2) + "\"";
      std::size_t e = text.find(delim, d);
      e = (e == std::string::npos) ? n : e + delim.size();
      for (std::size_t k = i; k < e && k < n; ++k)
        if (text[k] == '\n') ++line;
      push(TokKind::kString, "\"\"");
      i = e;
      continue;
    }
    // String / char literals (bodies dropped; escapes honoured).
    if (c == '"' || c == '\'') {
      std::size_t e = i + 1;
      while (e < n && text[e] != c) {
        if (text[e] == '\\' && e + 1 < n) ++e;
        if (text[e] == '\n') ++line;  // unterminated; keep line count sane
        ++e;
      }
      push(c == '"' ? TokKind::kString : TokKind::kChar,
           c == '"' ? "\"\"" : "''");
      i = (e < n) ? e + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t e = i + 1;
      while (e < n && ident_char(text[e])) ++e;
      push(TokKind::kIdent, text.substr(i, e - i));
      i = e;
      continue;
    }
    // Number (incl. 1.0e-3, hex, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t e = i + 1;
      while (e < n && (ident_char(text[e]) || text[e] == '.' || text[e] == '\'' ||
                       ((text[e] == '+' || text[e] == '-') &&
                        (text[e - 1] == 'e' || text[e - 1] == 'E' ||
                         text[e - 1] == 'p' || text[e - 1] == 'P'))))
        ++e;
      push(TokKind::kNumber, text.substr(i, e - i));
      i = e;
      continue;
    }
    // Operators / punctuation.
    if (i + 1 < n) {
      const std::string two = text.substr(i, 2);
      bool matched = false;
      for (const char* op : kTwoCharOps) {
        if (two == op) {
          push(TokKind::kPunct, two);
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
}

bool load_file(const std::string& path, const std::string& rel,
               SourceFile* f) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  f->path = path;
  f->rel = rel;
  f->tokens.clear();
  f->allows.clear();
  lex(ss.str(), f);
  return true;
}

}  // namespace enzo::lint
