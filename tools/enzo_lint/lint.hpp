#pragma once
// enzo-lint: project-specific static analysis enforcing the determinism,
// hot-path, topology-routing, unit-frame, and banned-API contracts
// (DESIGN.md §11).
//
// Deliberately NOT built on LibTooling: a hand-rolled C++ lexer plus a
// lightweight function/loop scanner is enough for every contract we check,
// and it builds everywhere the project does (this container ships gcc
// only).  The rules are token-level heuristics — sound for the project's
// own style, escaped per-site with `// enzo-lint: allow(rule)` directives
// and per-repo with the findings baseline (pre-existing debt is tracked,
// not silenced).

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace enzo::lint {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct SourceFile {
  std::string path;  ///< path as opened (diagnostics)
  std::string rel;   ///< repo-relative, forward slashes (allowlists, baseline)
  std::vector<std::string> lines;  ///< raw text, lines[0] is line 1
  std::vector<Token> tokens;       ///< comments/preprocessor lines stripped
  /// `// enzo-lint: allow(rule, ...)` directives: line → rule names.
  /// Line 0 holds file-wide `allow-file(...)` directives.
  std::map<int, std::set<std::string>> allows;
};

/// Tokenize `text` into f (fills lines/tokens/allows).  Comments, string
/// bodies, and preprocessor directive lines produce no tokens; enzo-lint
/// directives inside comments are parsed into f.allows.
void lex(const std::string& text, SourceFile* f);

/// Read + lex a file; false when unreadable.
bool load_file(const std::string& path, const std::string& rel, SourceFile* f);

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;
  std::string rel;
  int line = 0;
  std::string message;
  std::string norm;  ///< whitespace-normalized source line (baseline key)
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

/// The shipped rule catalog, in report order.
const std::vector<RuleInfo>& rule_catalog();

/// Run every rule over one file.  `f.rel` drives the built-in allowlists
/// (e.g. src/perf/log.cpp may call vfprintf; src/mesh/topology.cpp may run
/// all-pairs scans).  Findings on allow-directive lines are dropped here.
std::vector<Finding> run_rules(const SourceFile& f);

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------
//
// One line per tolerated finding: `rule|path|normalized-line-text`.
// Keys use the normalized text of the offending line, not its number, so
// unrelated edits do not invalidate the baseline.  Duplicate keys tolerate
// that many occurrences; extra occurrences are fresh findings.

std::string baseline_key(const Finding& fi);

struct Baseline {
  std::multiset<std::string> entries;

  bool load(const std::string& path, std::string* error);
  /// Partition: returns the findings NOT covered by the baseline; covered
  /// ones are counted into *suppressed.
  std::vector<Finding> filter(const std::vector<Finding>& all,
                              std::size_t* suppressed) const;
};

/// Serialize findings as baseline lines (sorted, stable).
std::string to_baseline(const std::vector<Finding>& all);

// ---------------------------------------------------------------------------
// Driver helpers
// ---------------------------------------------------------------------------

/// Parse compile_commands.json and return the referenced source files,
/// deduplicated, restricted to `root`/src (library code is what the
/// contracts govern).  Headers under root/src are appended by scanning the
/// tree, since a compile database only lists translation units.
std::vector<std::string> collect_sources(const std::string& compdb_path,
                                         const std::string& root,
                                         std::string* error);

/// `path` relative to `root` with forward slashes ("" when outside root).
std::string relativize(const std::string& path, const std::string& root);

}  // namespace enzo::lint
