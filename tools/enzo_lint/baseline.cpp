// Baseline machinery and compile-database source collection for enzo-lint.
//
// The baseline keys findings by (rule, file, normalized line text) — not
// line numbers — so unrelated edits never invalidate it.  Each line in the
// baseline tolerates exactly one occurrence; debt is visible (reported as a
// suppressed count) but never fails the gate until new instances appear.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "lint.hpp"
#include "perf/json.hpp"

namespace enzo::lint {

std::string baseline_key(const Finding& fi) {
  return fi.rule + "|" + fi.rel + "|" + fi.norm;
}

bool Baseline::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open baseline " + path;
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    entries.insert(line);
  }
  return true;
}

std::vector<Finding> Baseline::filter(const std::vector<Finding>& all,
                                      std::size_t* suppressed) const {
  std::multiset<std::string> budget = entries;
  std::vector<Finding> fresh;
  if (suppressed) *suppressed = 0;
  for (const Finding& fi : all) {
    auto it = budget.find(baseline_key(fi));
    if (it != budget.end()) {
      budget.erase(it);
      if (suppressed) ++*suppressed;
    } else {
      fresh.push_back(fi);
    }
  }
  return fresh;
}

std::string to_baseline(const std::vector<Finding>& all) {
  std::vector<std::string> keys;
  keys.reserve(all.size());
  for (const Finding& fi : all) keys.push_back(baseline_key(fi));
  std::sort(keys.begin(), keys.end());
  std::ostringstream out;
  out << "# enzo-lint findings baseline: tolerated pre-existing debt.\n"
      << "# One line per occurrence: rule|path|normalized-line-text.\n"
      << "# Regenerate with: enzo-lint --compdb <db> --write-baseline\n";
  for (const std::string& k : keys) out << k << "\n";
  return out.str();
}

std::string relativize(const std::string& path, const std::string& root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path p = fs::weakly_canonical(fs::path(path), ec);
  const fs::path r = fs::weakly_canonical(fs::path(root), ec);
  const fs::path rel = p.lexically_relative(r);
  std::string s = rel.generic_string();
  if (s.empty() || s == "." || s.compare(0, 2, "..") == 0) return "";
  return s;
}

std::vector<std::string> collect_sources(const std::string& compdb_path,
                                         const std::string& root,
                                         std::string* error) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  std::ifstream in(compdb_path);
  if (!in) {
    if (error) *error = "cannot open compile database " + compdb_path;
    return out;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  perf::JsonValue db;
  std::string jerr;
  if (!perf::json_parse(ss.str(), &db, &jerr) || !db.is_array()) {
    if (error) *error = "malformed compile database: " + jerr;
    return out;
  }
  std::set<std::string> seen;
  for (const perf::JsonValue& entry : db.array()) {
    const perf::JsonValue* file = entry.find("file");
    if (file == nullptr || !file->is_string()) continue;
    fs::path p(file->str());
    if (p.is_relative()) {
      const perf::JsonValue* dir = entry.find("directory");
      if (dir != nullptr && dir->is_string()) p = fs::path(dir->str()) / p;
    }
    const std::string rel = relativize(p.string(), root);
    // The contracts govern library code: lint src/** only (tests, benches,
    // and examples are exercised by their own suites and may e.g. printf).
    if (rel.compare(0, 4, "src/") != 0) continue;
    if (seen.insert(rel).second) out.push_back(p.string());
  }
  // Headers never appear in a compile database; walk src/ for them.
  std::error_code ec;
  for (fs::recursive_directory_iterator it(fs::path(root) / "src", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() != ".hpp" && p.extension() != ".h") continue;
    const std::string rel = relativize(p.string(), root);
    if (!rel.empty() && seen.insert(rel).second) out.push_back(p.string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace enzo::lint
