// check_kernels: compare a fresh BENCH_micro_kernels.json against the
// checked-in baseline (bench/micro_kernels_baseline.json) and fail on any
// per-kernel cells/sec regression beyond the tolerance (default 10%).
//
//   check_kernels <baseline.json> <current.json> [tolerance]
//
// The parser is deliberately minimal: it understands exactly the flat format
// micro_kernels writes ("<name>": {"cells_per_second": X, ...}) — no JSON
// library in the loop, consistent with the other C++-only validators.
// Kernels present in only one file produce a warning, not a failure, so
// adding or retiring benchmarks does not break CI before the baseline is
// refreshed.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

std::map<std::string, double> read_kernels(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "check_kernels: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::map<std::string, double> out;
  const std::string key = "\"cells_per_second\":";
  std::size_t pos = 0;
  while (true) {
    const std::size_t kpos = text.find(key, pos);
    if (kpos == std::string::npos) break;
    // The kernel name is the last quoted string before this key that is
    // followed by ": {" — i.e. the object key one level up.
    std::size_t name_end = text.rfind("\": {", kpos);
    if (name_end == std::string::npos) break;
    std::size_t name_begin = text.rfind('"', name_end - 1);
    if (name_begin == std::string::npos) break;
    const std::string name =
        text.substr(name_begin + 1, name_end - name_begin - 1);
    out[name] = std::strtod(text.c_str() + kpos + key.size(), nullptr);
    pos = kpos + key.size();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: check_kernels <baseline.json> <current.json> "
                 "[tolerance]\n");
    return 2;
  }
  const double tol = argc > 3 ? std::atof(argv[3]) : 0.10;
  const auto baseline = read_kernels(argv[1]);
  const auto current = read_kernels(argv[2]);
  if (baseline.empty() || current.empty()) {
    std::fprintf(stderr, "check_kernels: no kernels parsed (baseline=%zu, "
                 "current=%zu)\n", baseline.size(), current.size());
    return 2;
  }

  int failures = 0;
  for (const auto& [name, base] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      std::printf("WARN  %-24s missing from current run\n", name.c_str());
      continue;
    }
    const double cur = it->second;
    const double ratio = base > 0.0 ? cur / base : 1.0;
    const bool fail = ratio < 1.0 - tol;
    std::printf("%s  %-24s %12.4g -> %12.4g cells/s  (%+.1f%%)\n",
                fail ? "FAIL" : "ok  ", name.c_str(), base, cur,
                100.0 * (ratio - 1.0));
    if (fail) ++failures;
  }
  for (const auto& [name, cur] : current) {
    (void)cur;
    if (baseline.find(name) == baseline.end())
      std::printf("WARN  %-24s not in baseline (refresh "
                  "bench/micro_kernels_baseline.json)\n", name.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr,
                 "check_kernels: %d kernel(s) regressed by more than %.0f%%\n",
                 failures, 100.0 * tol);
    return 1;
  }
  std::printf("check_kernels: all kernels within %.0f%% of baseline\n",
              100.0 * tol);
  return 0;
}
