#pragma once
// Collisionless dark matter on the adaptive hierarchy (§3.3).
//
// "The dark matter is pressureless and collisionless, only interacting via
// gravity ... we solve for the individual trajectories of a representative
// sample of particles ... using particle-mesh techniques specially tailored
// to adaptive mesh hierarchies."
//
// Each particle is owned by the finest grid containing it (mesh::Grid keeps
// the storage; rebuild migrates them).  Per grid timestep the particles are
// cloud-in-cell (CIC) deposited into the grid's gravitating mass, kicked
// with the CIC-interpolated acceleration (plus Hubble drag), and drifted
// with dx/dt = v/a.  Positions are extended precision (§3.5: "absolute
// position" quantities), so CIC cell location stays exact at depth.

#include "cosmology/units.hpp"
#include "mesh/hierarchy.hpp"

namespace enzo::nbody {

/// CIC-deposit the grid's own particles into its gravitating_mass (the
/// one-ghost layer absorbs edge clouds; for domain-covering periodic grids
/// the ghost contributions are wrapped back into the active region).
void deposit_particles_cic(mesh::Grid& g);

/// Kick: v ← v·decay(ȧ/a, dt) + g_cic·dt using the grid's acceleration
/// fields (clamped CIC at grid edges).
void kick_particles(mesh::Grid& g, double dt, double adot_over_a);

/// Drift: x ← x + v·dt/a (extended-precision accumulate), wrapped
/// periodically into [0,1).
void drift_particles(mesh::Grid& g, double dt, double a);

/// Courant-like constraint: particles must not cross more than cfl cells.
double particle_timestep(const mesh::Grid& g, double a, double cfl = 0.4);

/// Re-home particles that drifted off their owning grid: each goes to the
/// finest grid containing its position.  Call after drifting a level.
void redistribute_particles(mesh::Hierarchy& h);

/// Total particle count / mass over the whole hierarchy (diagnostics).
std::size_t total_particles(const mesh::Hierarchy& h);
double total_particle_mass(const mesh::Hierarchy& h);

/// Lay down an n³ lattice of equal-mass particles with Zel'dovich
/// displacements ψ and velocity factor vfac (cosmology::zeldovich_velocity_
/// factor), total mass = omega_dm_fraction (code units).  Appends to the
/// root grid (redistribute afterwards if refined levels exist).
void create_lattice_particles(mesh::Grid& root, int n,
                              const std::array<util::Array3<double>, 3>& psi,
                              double growth, double vfac, double total_mass);

}  // namespace enzo::nbody
