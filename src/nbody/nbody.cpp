#include "nbody/nbody.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "mesh/topology.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace enzo::nbody {

using mesh::Grid;
using mesh::Particle;

namespace {

int gm_ghost(const Grid& g, int d) {
  return g.spec().level_dims[d] > 1 ? 1 : 0;
}

/// CIC geometry for one particle on one grid: base cell (local, may be -1)
/// and the weight of the base cell per axis.
struct Cic {
  int base[3];
  double w0[3];
};

Cic cic_of(const Grid& g, const Particle& p) {
  Cic c;
  for (int d = 0; d < 3; ++d) {
    if (g.spec().level_dims[d] == 1) {
      c.base[d] = 0;
      c.w0[d] = 1.0;
      continue;
    }
    // Cell-center coordinate: xi = x/dx − 1/2 (extended precision, then the
    // residual fraction is safely double).
    const ext::pos_t xi =
        p.x[d] * ext::pos_t(static_cast<double>(g.spec().level_dims[d])) -
        ext::pos_t(0.5);
#ifdef ENZO_POSITION_DOUBLE
    const double fl = std::floor(xi);
    const std::int64_t gbase = static_cast<std::int64_t>(fl);
    const double frac = xi - fl;
#else
    const ext::pos_t fl = ext::floor(xi);
    const std::int64_t gbase = static_cast<std::int64_t>(fl.to_double());
    const double frac = (xi - fl).to_double();
#endif
    c.base[d] = static_cast<int>(gbase - g.box().lo[d]);
    c.w0[d] = 1.0 - frac;
  }
  return c;
}

}  // namespace

void deposit_particles_cic(Grid& g) {
  if (g.particles().empty()) return;
  ENZO_REQUIRE(g.has_gravity(), "deposit requires allocated gravity arrays");
  static perf::Counter& deposits =
      perf::Registry::global().counter("nbody.cic_deposits");
  deposits.add(g.particles().size());
  const mesh::FieldView gm = g.gravitating_mass();
  double cellvol = 1.0;
  for (int d = 0; d < 3; ++d)
    cellvol *= 1.0 / static_cast<double>(g.spec().level_dims[d]);
  const double inv_vol = 1.0 / cellvol;
  const int gx = gm_ghost(g, 0), gy = gm_ghost(g, 1), gz = gm_ghost(g, 2);

  for (const Particle& p : g.particles()) {
    const Cic c = cic_of(g, p);
    const double dens = p.mass * inv_vol;
    for (int bz = 0; bz < (gz ? 2 : 1); ++bz)
      for (int by = 0; by < (gy ? 2 : 1); ++by)
        for (int bx = 0; bx < (gx ? 2 : 1); ++bx) {
          const double w = (bx ? 1.0 - c.w0[0] : c.w0[0]) *
                           (by ? 1.0 - c.w0[1] : c.w0[1]) *
                           (bz ? 1.0 - c.w0[2] : c.w0[2]);
          const int i = c.base[0] + bx + gx;
          const int j = c.base[1] + by + gy;
          const int k = c.base[2] + bz + gz;
          ENZO_REQUIRE(gm.contains(i, j, k),
                       "CIC deposit escaped the ghost layer");
          gm(i, j, k) += w * dens;
        }
  }
  // A grid covering the whole periodic domain wraps its ghost deposits back
  // into the active region so no mass is lost.
  if (g.covers_periodic_domain()) {
    const int nx = g.nx(0), ny = g.nx(1), nz = g.nx(2);
    for (int k = -gz; k < nz + gz; ++k)
      for (int j = -gy; j < ny + gy; ++j)
        for (int i = -gx; i < nx + gx; ++i) {
          const bool ghost_cell = i < 0 || i >= nx || j < 0 || j >= ny ||
                                  k < 0 || k >= nz;
          if (!ghost_cell) continue;
          const int wi = ((i % nx) + nx) % nx;
          const int wj = ((j % ny) + ny) % ny;
          const int wk = ((k % nz) + nz) % nz;
          gm(wi + gx, wj + gy, wk + gz) += gm(i + gx, j + gy, k + gz);
          gm(i + gx, j + gy, k + gz) = 0.0;
        }
  }
  util::FlopCounter::global().add(
      "nbody", util::flop_cost::kCicPerParticle * g.particles().size());
}

void kick_particles(Grid& g, double dt, double adot_over_a) {
  if (g.particles().empty()) return;
  ENZO_REQUIRE(g.has_gravity(), "kick requires acceleration fields");
  const double x = 0.5 * adot_over_a * dt;
  const double decay = (1.0 - x) / (1.0 + x);
  for (Particle& p : g.particles()) {
    Cic c = cic_of(g, p);
    // Acceleration arrays cover active cells only: clamp the cloud.
    for (int d = 0; d < 3; ++d) {
      const int nmax = g.nx(d) - (g.spec().level_dims[d] > 1 ? 2 : 1);
      if (c.base[d] < 0) {
        c.base[d] = 0;
        c.w0[d] = 1.0;
      } else if (c.base[d] > nmax) {
        c.base[d] = nmax;
        c.w0[d] = 0.0;
      }
    }
    for (int d = 0; d < 3; ++d) {
      if (g.spec().level_dims[d] == 1) continue;
      const auto& acc = g.acceleration(d);
      double a_p = 0.0;
      for (int bz = 0; bz < (g.spec().level_dims[2] > 1 ? 2 : 1); ++bz)
        for (int by = 0; by < (g.spec().level_dims[1] > 1 ? 2 : 1); ++by)
          for (int bx = 0; bx < (g.spec().level_dims[0] > 1 ? 2 : 1); ++bx) {
            const double w = (bx ? 1.0 - c.w0[0] : c.w0[0]) *
                             (by ? 1.0 - c.w0[1] : c.w0[1]) *
                             (bz ? 1.0 - c.w0[2] : c.w0[2]);
            a_p += w * acc(c.base[0] + bx, c.base[1] + by, c.base[2] + bz);
          }
      p.v[d] = p.v[d] * decay + dt * a_p;
    }
    // Degenerate axes still feel the drag.
    for (int d = 0; d < 3; ++d)
      if (g.spec().level_dims[d] == 1) p.v[d] *= decay;
  }
  util::FlopCounter::global().add(
      "nbody", util::flop_cost::kCicPerParticle * g.particles().size());
}

void drift_particles(Grid& g, double dt, double a) {
  const ext::pos_t one(1.0);
  for (Particle& p : g.particles()) {
    for (int d = 0; d < 3; ++d) {
      p.x[d] += ext::pos_t(p.v[d] * dt / a);
      if (g.spec().periodic) p.x[d] = ext::fmod_pos(p.x[d], one);
    }
  }
}

double particle_timestep(const Grid& g, double a, double cfl) {
  double dt = std::numeric_limits<double>::max();
  for (const Particle& p : g.particles())
    for (int d = 0; d < 3; ++d) {
      if (g.spec().level_dims[d] == 1) continue;
      const double v = std::abs(p.v[d]);
      if (v > 0.0) dt = std::min(dt, cfl * a * g.cell_width_d(d) / v);
    }
  return dt;
}

void redistribute_particles(mesh::Hierarchy& h) {
  perf::TraceScope scope("redistribute_particles", perf::component::kNbody);
  // Re-home any particle that escaped its grid or for which a finer grid
  // now contains its position (the ownership invariant is finest-owner).
  // The topology point index answers finest-owner in O(1) per particle
  // instead of scanning every grid of every deeper level; its candidate
  // lists preserve grid order, so the owner it returns is exactly the grid
  // the linear deepest-first scan would have found.
  const mesh::OverlapTopology* topo =
      h.use_topology() ? &h.topology() : nullptr;
  std::vector<std::pair<Particle, Grid*>> homeless;
  for (int l = h.deepest_level(); l >= 0; --l)
    for (Grid* g : h.grids(l)) {
      const mesh::ParticleView pp = g->particles();
      std::vector<Particle> keep;
      keep.reserve(pp.size());
      for (Particle& p : pp) {
        if (topo != nullptr) {
          Grid* owner = topo->finest_owner(p.x);
          if (owner == g)
            keep.push_back(p);
          else
            homeless.emplace_back(p, owner);
          continue;
        }
        bool stays = g->contains_position(p.x);
        if (stays) {
          for (int fl = l + 1; fl <= h.deepest_level() && stays; ++fl)
            // enzo-lint: allow(topology-allpairs) reference finest-owner scan
            for (Grid* fg : h.grids(fl))
              if (fg->contains_position(p.x)) {
                stays = false;
                break;
              }
        }
        if (stays)
          keep.push_back(p);
        else
          homeless.emplace_back(p, nullptr);
      }
      pp.swap(keep);
    }
  for (auto& [p, owner] : homeless) {
    Grid* dest = owner;
    if (dest == nullptr && topo == nullptr) {
      for (int l = h.deepest_level(); l >= 0 && !dest; --l)
        for (Grid* g : h.grids(l))
          if (g->contains_position(p.x)) {
            dest = g;
            break;
          }
    }
    ENZO_REQUIRE(dest != nullptr,
                 "particle left the domain at (" +
                     std::to_string(ext::pos_to_double(p.x[0])) + ", " +
                     std::to_string(ext::pos_to_double(p.x[1])) + ", " +
                     std::to_string(ext::pos_to_double(p.x[2])) + ") v=(" +
                     std::to_string(p.v[0]) + ", " + std::to_string(p.v[1]) +
                     ", " + std::to_string(p.v[2]) + ")");
    dest->particles().push_back(p);
  }
}

std::size_t total_particles(const mesh::Hierarchy& h) {
  std::size_t n = 0;
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const Grid* g : h.grids(l)) n += g->particles().size();
  return n;
}

double total_particle_mass(const mesh::Hierarchy& h) {
  double m = 0;
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const Grid* g : h.grids(l))
      for (const Particle& p : g->particles()) m += p.mass;
  return m;
}

void create_lattice_particles(Grid& root, int n,
                              const std::array<util::Array3<double>, 3>& psi,
                              double growth, double vfac, double total_mass) {
  ENZO_REQUIRE(psi[0].nx() == n && psi[0].ny() == n && psi[0].nz() == n,
               "displacement field resolution mismatch");
  const double mass = total_mass / (static_cast<double>(n) * n * n);
  const mesh::ParticleView pp = root.particles();
  pp.reserve(pp.size() + static_cast<std::size_t>(n) * n * n);
  std::uint64_t id = pp.size();
  const ext::pos_t one(1.0);
  const ext::pos_t inv_n(1.0 / n);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) {
        Particle p;
        const int idx[3] = {i, j, k};
        for (int d = 0; d < 3; ++d) {
          const double disp = growth * psi[d](i, j, k);
          p.x[d] = ext::fmod_pos(
              (ext::pos_t(static_cast<double>(idx[d])) + ext::pos_t(0.5)) *
                      inv_n +
                  ext::pos_t(disp),
              one);
          p.v[d] = vfac * psi[d](i, j, k);
        }
        p.mass = mass;
        p.id = id++;
        pp.push_back(p);
      }
}

}  // namespace enzo::nbody
