#pragma once
// Checkpoint codec primitives: CRC32 integrity checksums and the
// lightweight block compressor used for field-array payloads.
//
// The compressor is a byte-shuffle (transpose the 8 byte planes of the
// 64-bit words, the classic HDF5/Blosc "shuffle" filter) followed by a
// PackBits-style run-length encoding.  Field arrays are smooth and often
// zero-padded, so after shuffling the high-order byte planes are long
// constant runs — typical checkpoints shrink 2–5×, and the worst case adds
// less than 1 % framing overhead (the writer falls back to storing raw when
// compression does not help).  Everything here is a pure function of its
// input, so compressed checkpoints are byte-identical at any thread count.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace enzo::io {

/// CRC-32 (IEEE 802.3, reflected).  Incremental: crc32(b, n2, crc32(a, n1))
/// equals the CRC of the concatenation a‖b; pass 0 to start a new stream.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0);

/// Byte-shuffle with stride 8: out[p*n/8 + w] = in[w*8 + p].  `n` must be a
/// multiple of 8 (payloads are sequences of 64-bit words).
void shuffle8(const std::uint8_t* in, std::size_t n, std::uint8_t* out);
void unshuffle8(const std::uint8_t* in, std::size_t n, std::uint8_t* out);

/// PackBits-style RLE.  Control byte 0x00–0x7F: copy c+1 literal bytes;
/// 0x80–0xFF: repeat the next byte c-0x80+3 times (runs shorter than 3 ride
/// in literal blocks).
[[nodiscard]] std::vector<std::uint8_t> rle_encode(const std::uint8_t* in,
                                                    std::size_t n);
/// Decode exactly `expect_n` bytes; throws enzo::Error on malformed input
/// (never reads or writes out of bounds, even on corrupted data).
[[nodiscard]] std::vector<std::uint8_t> rle_decode(const std::uint8_t* in,
                                                    std::size_t n,
                                                    std::size_t expect_n);

/// shuffle8 + rle_encode.  `n` must be a multiple of 8.
[[nodiscard]] std::vector<std::uint8_t> compress_block(
    const std::uint8_t* in, std::size_t n);
/// Inverse of compress_block; `raw_n` is the expected decompressed size.
[[nodiscard]] std::vector<std::uint8_t> decompress_block(
    const std::uint8_t* in, std::size_t n, std::size_t raw_n);

}  // namespace enzo::io
