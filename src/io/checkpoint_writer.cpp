#include "io/checkpoint_writer.hpp"

#include <filesystem>
#include <utility>

#include "io/checkpoint.hpp"
#include "perf/log.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace enzo::io {

CheckpointWriter::CheckpointWriter(Options opts) : opts_(std::move(opts)) {
  ENZO_REQUIRE(!opts_.dir.empty(), "CheckpointWriter needs a directory");
  ENZO_REQUIRE(opts_.keep >= 1, "CheckpointKeep must be at least 1");
  std::filesystem::create_directories(opts_.dir);
}

CheckpointWriter::~CheckpointWriter() { wait(); }

void CheckpointWriter::wait() {
  if (worker_.joinable()) worker_.join();
}

std::string CheckpointWriter::last_error() const {
  std::lock_guard<std::mutex> lock(err_mu_);
  return last_error_;
}

std::string CheckpointWriter::checkpoint(const core::Simulation& sim) {
  // Backpressure: at most one write in flight.  Joining here means a slow
  // disk stalls the *solver* rather than accumulating whole-state images.
  wait();

  CheckpointWriteOptions wopts;
  wopts.compress = opts_.compress;
  wopts.executor = opts_.executor;

  perf::TraceScope scope("checkpoint/encode", perf::component::kIo);
  util::Stopwatch encode_watch;
  std::vector<std::uint8_t> image = encode_checkpoint(sim, wopts);
  perf::Registry::global()
      .gauge("io.checkpoint.encode_seconds")
      .set(encode_watch.seconds());

  const std::string path =
      (std::filesystem::path(opts_.dir) /
       checkpoint_file_name(sim.root_steps_taken()))
          .string();
  const std::size_t raw_bytes = checkpoint_size_bytes(sim);
  worker_ = std::thread([this, path, raw_bytes,
                         image = std::move(image)]() mutable {
    try {
      perf::TraceScope wscope("checkpoint/write", perf::component::kIo);
      util::Stopwatch write_watch;
      atomic_write_file(path, image);
      auto& reg = perf::Registry::global();
      reg.gauge("io.checkpoint.write_seconds").set(write_watch.seconds());
      reg.counter("io.checkpoint.writes").add(1);
      reg.counter("io.checkpoint.bytes_raw").add(raw_bytes);
      reg.counter("io.checkpoint.bytes_written").add(image.size());
      bytes_written_.fetch_add(image.size(), std::memory_order_relaxed);
      prune_checkpoints(opts_.dir, opts_.keep);
      writes_completed_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(err_mu_);
        last_error_ = e.what();
      }
      ok_.store(false, std::memory_order_release);
      perf::StructuredLog::global().logf(perf::LogLevel::kError, "checkpoint",
                                         "background write of %s failed: %s",
                                         path.c_str(), e.what());
    }
  });
  return path;
}

}  // namespace enzo::io
