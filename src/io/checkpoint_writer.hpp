#pragma once
// Periodic auto-checkpointing driver.
//
// CheckpointWriter turns write_checkpoint into a pipeline: the hierarchy is
// snapshotted and encoded on the calling thread (the solver must not step
// while the state is being serialized — per-grid encoding is parallelized
// through the LevelExecutor instead), then the atomic file write and the
// retention prune run on a background thread, overlapping the next
// simulation steps.  At most one write is in flight: the next checkpoint
// joins the previous write first, so a slow filesystem applies backpressure
// instead of piling up images in memory.
//
// Files land in `dir/ckpt_<rootstep>.ckpt`; after each write the oldest
// snapshots are pruned down to `keep` (the CheckpointKeep deck key).  Errors
// on the background thread are captured and rethrown into ok()/last_error()
// rather than terminating the process mid-run.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "exec/executor.hpp"

namespace enzo::io {

class CheckpointWriter {
 public:
  struct Options {
    std::string dir;                          ///< checkpoint directory
    int keep = 3;                             ///< rolling retention (>= 1)
    bool compress = true;
    exec::LevelExecutor* executor = nullptr;  ///< parallel section encoding
  };

  explicit CheckpointWriter(Options opts);
  /// Joins any in-flight write.
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Snapshot + encode now (blocking), then write + prune in the background.
  /// Returns the path the snapshot will land at.
  std::string checkpoint(const core::Simulation& sim);

  /// Block until the in-flight write (if any) has completed.
  void wait();

  /// False once a background write has failed; the message is kept.
  bool ok() const { return ok_.load(std::memory_order_acquire); }
  std::string last_error() const;

  std::uint64_t writes_completed() const {
    return writes_completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  Options opts_;
  std::thread worker_;  ///< at most one in-flight write
  std::atomic<bool> ok_{true};
  mutable std::mutex err_mu_;
  std::string last_error_;
  std::atomic<std::uint64_t> writes_completed_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace enzo::io
