#include "io/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_map>

#include "io/codec.hpp"
#include "perf/log.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace enzo::io {

using mesh::Field;
using mesh::Grid;

namespace {

// ---- fixed framing sizes ----------------------------------------------------

constexpr std::size_t kFileHeaderBytes = 16;   // magic u64 + version + endian
constexpr std::size_t kSectionHeaderBytes =    // tag + flags[4] + sizes + crc
    4 + 4 + 8 + 8 + 4;
constexpr std::size_t kTrailerBytes = 8;       // end magic + file crc
constexpr std::uint8_t kFlagCompressed = 1;

/// 8-byte words one particle occupies: 3 × (hi, lo) position, 3 velocity,
/// mass, id — 11 words = 88 bytes (the v1 size estimate assumed 80, which is
/// the bug the exact accounting below replaces).
constexpr std::uint64_t kParticleWords = 11;

// ---- little byte buffer / reader -------------------------------------------

struct ByteBuf {
  std::vector<std::uint8_t> b;

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t off = b.size();
    b.resize(off + sizeof(T));
    std::memcpy(b.data() + off, &v, sizeof(T));
  }
  void put_pos(ext::pos_t p) {
#ifdef ENZO_POSITION_DOUBLE
    put<double>(p);
    put<double>(0.0);
#else
    put<double>(p.hi);
    put<double>(p.lo);
#endif
  }
};

struct ByteReader {
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  std::size_t off = 0;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    ENZO_REQUIRE(off + sizeof(T) <= n, "checkpoint: truncated stream");
    T v;
    std::memcpy(&v, p + off, sizeof(T));
    off += sizeof(T);
    return v;
  }
  ext::pos_t get_pos() {
    const double hi = get<double>();
    const double lo = get<double>();
#ifdef ENZO_POSITION_DOUBLE
    (void)lo;
    return hi;
#else
    return ext::pos_t(hi, lo);
#endif
  }
  bool exhausted() const { return off == n; }
};

// ---- metrics ----------------------------------------------------------------

struct CkptMetrics {
  perf::Counter& writes;
  perf::Counter& bytes_raw;
  perf::Counter& bytes_written;
  perf::Counter& restores;
  perf::Counter& skipped_corrupt;
  perf::Counter& pruned;
  perf::Gauge& encode_seconds;
  perf::Gauge& write_seconds;

  static CkptMetrics& get() {
    auto& r = perf::Registry::global();
    static CkptMetrics m{r.counter("io.checkpoint.writes"),
                         r.counter("io.checkpoint.bytes_raw"),
                         r.counter("io.checkpoint.bytes_written"),
                         r.counter("io.checkpoint.restores"),
                         r.counter("io.checkpoint.skipped_corrupt"),
                         r.counter("io.checkpoint.pruned"),
                         r.gauge("io.checkpoint.encode_seconds"),
                         r.gauge("io.checkpoint.write_seconds")};
    return m;
  }
};

// ---- per-grid payload -------------------------------------------------------

std::uint64_t grid_data_words(const Grid& g) {
  std::uint64_t words = 0;
  const std::uint64_t copies = g.has_old_fields() ? 2 : 1;
  for (Field f : g.field_list())
    words += copies * static_cast<std::uint64_t>(g.field(f).size());
  words += kParticleWords * static_cast<std::uint64_t>(g.particles().size());
  return words;
}

void encode_grid_payload(const Grid& g, ByteBuf& out) {
  const auto put_array = [&](mesh::ConstFieldView a) {
    const std::size_t off = out.b.size();
    const std::size_t bytes = a.size() * sizeof(double);
    out.b.resize(off + bytes);
    std::memcpy(out.b.data() + off, a.data(), bytes);
  };
  for (Field f : g.field_list()) put_array(g.field(f));
  if (g.has_old_fields())
    for (Field f : g.field_list()) put_array(g.old_field(f));
  for (const mesh::Particle& p : g.particles()) {
    for (int d = 0; d < 3; ++d) out.put_pos(p.x[d]);
    for (int d = 0; d < 3; ++d) out.put<double>(p.v[d]);
    out.put<double>(p.mass);
    out.put<std::uint64_t>(p.id);
  }
}

void decode_grid_payload(ByteReader& r, Grid& g, std::uint64_t npart) {
  const auto get_array = [&](mesh::FieldView a) {
    const std::size_t bytes = a.size() * sizeof(double);
    ENZO_REQUIRE(r.off + bytes <= r.n, "checkpoint: truncated field data");
    std::memcpy(a.data(), r.p + r.off, bytes);
    r.off += bytes;
  };
  for (Field f : g.field_list()) get_array(g.field(f));
  const bool has_old = g.has_old_fields();
  if (has_old)
    for (Field f : g.field_list()) get_array(g.old_field(f));
  g.particles().resize(npart);
  for (mesh::Particle& p : g.particles()) {
    for (int d = 0; d < 3; ++d) p.x[d] = r.get_pos();
    for (int d = 0; d < 3; ++d) p.v[d] = r.get<double>();
    p.mass = r.get<double>();
    p.id = r.get<std::uint64_t>();
  }
  ENZO_REQUIRE(r.exhausted(), "checkpoint: grid payload size mismatch");
}

// ---- META payload -----------------------------------------------------------

std::size_t meta_payload_bytes(const core::Simulation& sim) {
  const auto& h = sim.hierarchy();
  const auto& hp = sim.config().hierarchy;
  std::size_t bytes = 3 * 8 + 3 * 4 + 1          // dims, refine/ghost/max, per
                      + 4 + 4 * hp.fields.size() // field list
                      + 16 + 8 + 8               // time, a, root_steps
                      + 4 + 8 * (static_cast<std::size_t>(hp.max_level) + 2)
                      + 4 + 52 * sim.static_regions().size()
                      + (1 + 16) + (1 + 16)      // diag + audit baselines
                      + 4;                       // deepest level
  for (int l = 0; l <= h.deepest_level(); ++l) {
    bytes += 4;  // grid count
    bytes += h.grids(l).size() * (48 + 4 + 16 + 16 + 1 + 8 + 8);
  }
  return bytes;
}

void encode_meta(const core::Simulation& sim, ByteBuf& out) {
  const auto& h = sim.hierarchy();
  const auto& hp = sim.config().hierarchy;
  for (int d = 0; d < 3; ++d) out.put<std::int64_t>(hp.root_dims[d]);
  out.put<std::int32_t>(hp.refine_factor);
  out.put<std::int32_t>(hp.nghost);
  out.put<std::int32_t>(hp.max_level);
  out.put<std::uint8_t>(hp.periodic ? 1 : 0);
  out.put<std::int32_t>(static_cast<std::int32_t>(hp.fields.size()));
  for (Field f : hp.fields) out.put<std::int32_t>(mesh::field_index(f));

  const core::Simulation::ClockState cs = sim.clock_state();
  out.put_pos(cs.time);
  out.put<double>(sim.scale_factor());
  out.put<std::int64_t>(cs.root_steps);
  // level_steps_ is sized max_level + 2 by construction; serialize that
  // exact span so the accounting stays closed-form.
  const std::size_t nls = static_cast<std::size_t>(hp.max_level) + 2;
  ENZO_REQUIRE(cs.level_steps.size() == nls,
               "checkpoint: level step counter size drift");
  out.put<std::int32_t>(static_cast<std::int32_t>(nls));
  for (long v : cs.level_steps) out.put<std::int64_t>(v);
  out.put<std::int32_t>(static_cast<std::int32_t>(cs.static_regions.size()));
  for (const auto& [lvl, box] : cs.static_regions) {
    out.put<std::int32_t>(lvl);
    for (int d = 0; d < 3; ++d) out.put<std::int64_t>(box.lo[d]);
    for (int d = 0; d < 3; ++d) out.put<std::int64_t>(box.hi[d]);
  }
  out.put<std::uint8_t>(cs.diag_baseline_set ? 1 : 0);
  out.put<double>(cs.diag_mass0);
  out.put<double>(cs.diag_energy0);
  out.put<std::uint8_t>(cs.audit_baseline_set ? 1 : 0);
  out.put<double>(cs.audit_mass0);
  out.put<double>(cs.audit_energy0);

  out.put<std::int32_t>(h.deepest_level());
  for (int l = 0; l <= h.deepest_level(); ++l) {
    const auto grids = h.grids(l);
    out.put<std::int32_t>(static_cast<std::int32_t>(grids.size()));
    // Grid* → ordinal map built once per parent level: the v1 writer ran a
    // linear scan over grids(l-1) for every child, O(grids²) per level.
    std::unordered_map<const Grid*, std::int32_t> parent_ord;
    if (l > 0) {
      const auto parents = h.grids(l - 1);
      parent_ord.reserve(parents.size());
      for (std::size_t p = 0; p < parents.size(); ++p)
        parent_ord.emplace(parents[p], static_cast<std::int32_t>(p));
    }
    for (const Grid* g : grids) {
      for (int d = 0; d < 3; ++d) out.put<std::int64_t>(g->box().lo[d]);
      for (int d = 0; d < 3; ++d) out.put<std::int64_t>(g->box().hi[d]);
      std::int32_t ord = -1;
      if (l > 0) {
        const auto it = parent_ord.find(g->parent());
        ENZO_REQUIRE(it != parent_ord.end(), "checkpoint: orphan grid");
        ord = it->second;
      }
      out.put<std::int32_t>(ord);
      out.put_pos(g->time());
      out.put_pos(g->old_time());
      out.put<std::uint8_t>(g->has_old_fields() ? 1 : 0);
      out.put<std::uint64_t>(g->particles().size());
      out.put<std::uint64_t>(grid_data_words(*g));
    }
  }
}

struct GridMeta {
  mesh::IndexBox box;
  std::int32_t parent_ord = -1;
  ext::pos_t time{0.0};
  ext::pos_t old_time{0.0};
  bool has_old = false;
  std::uint64_t npart = 0;
  std::uint64_t data_words = 0;
};

struct Meta {
  core::Simulation::ClockState clock;
  int deepest = -1;
  std::vector<std::vector<GridMeta>> levels;
  std::size_t total_grids() const {
    std::size_t n = 0;
    for (const auto& l : levels) n += l.size();
    return n;
  }
};

/// Parse + validate the META payload against the target simulation's config
/// (pure: does not touch `sim`).
Meta decode_meta(const core::Simulation& sim, const std::uint8_t* p,
                 std::size_t n) {
  const auto& hp = sim.config().hierarchy;
  ByteReader r{p, n, 0};
  for (int d = 0; d < 3; ++d)
    ENZO_REQUIRE(r.get<std::int64_t>() == hp.root_dims[d],
                 "checkpoint root dims mismatch");
  ENZO_REQUIRE(r.get<std::int32_t>() == hp.refine_factor,
               "checkpoint refine factor mismatch");
  ENZO_REQUIRE(r.get<std::int32_t>() == hp.nghost,
               "checkpoint ghost count mismatch");
  (void)r.get<std::int32_t>();  // max_level is advisory (deepen-on-restart)
  ENZO_REQUIRE((r.get<std::uint8_t>() != 0) == hp.periodic,
               "checkpoint periodicity mismatch");
  const int nfields = r.get<std::int32_t>();
  ENZO_REQUIRE(nfields == static_cast<int>(hp.fields.size()),
               "checkpoint field count mismatch");
  for (Field f : hp.fields)
    ENZO_REQUIRE(r.get<std::int32_t>() == mesh::field_index(f),
                 "checkpoint field list mismatch");

  Meta m;
  m.clock.time = r.get_pos();
  (void)r.get<double>();  // scale factor is re-derived from the time
  m.clock.root_steps = static_cast<long>(r.get<std::int64_t>());
  const int nls = r.get<std::int32_t>();
  ENZO_REQUIRE(nls >= 0 && nls < 1 << 20, "checkpoint: bad level step count");
  m.clock.level_steps.resize(static_cast<std::size_t>(nls));
  for (long& v : m.clock.level_steps)
    v = static_cast<long>(r.get<std::int64_t>());
  const int nregions = r.get<std::int32_t>();
  ENZO_REQUIRE(nregions >= 0 && nregions < 1 << 16,
               "checkpoint: bad static region count");
  m.clock.static_regions.resize(static_cast<std::size_t>(nregions));
  for (auto& [lvl, box] : m.clock.static_regions) {
    lvl = r.get<std::int32_t>();
    for (int d = 0; d < 3; ++d) box.lo[d] = r.get<std::int64_t>();
    for (int d = 0; d < 3; ++d) box.hi[d] = r.get<std::int64_t>();
  }
  m.clock.diag_baseline_set = r.get<std::uint8_t>() != 0;
  m.clock.diag_mass0 = r.get<double>();
  m.clock.diag_energy0 = r.get<double>();
  m.clock.audit_baseline_set = r.get<std::uint8_t>() != 0;
  m.clock.audit_mass0 = r.get<double>();
  m.clock.audit_energy0 = r.get<double>();

  m.deepest = r.get<std::int32_t>();
  ENZO_REQUIRE(m.deepest >= 0 && m.deepest < 1 << 10,
               "checkpoint: bad level count");
  m.levels.resize(static_cast<std::size_t>(m.deepest) + 1);
  for (int l = 0; l <= m.deepest; ++l) {
    const int ngrids = r.get<std::int32_t>();
    ENZO_REQUIRE(ngrids > 0 && ngrids < 1 << 24,
                 "checkpoint: bad grid count");
    auto& lvl = m.levels[static_cast<std::size_t>(l)];
    lvl.resize(static_cast<std::size_t>(ngrids));
    for (GridMeta& gm : lvl) {
      for (int d = 0; d < 3; ++d) gm.box.lo[d] = r.get<std::int64_t>();
      for (int d = 0; d < 3; ++d) gm.box.hi[d] = r.get<std::int64_t>();
      gm.parent_ord = r.get<std::int32_t>();
      gm.time = r.get_pos();
      gm.old_time = r.get_pos();
      gm.has_old = r.get<std::uint8_t>() != 0;
      gm.npart = r.get<std::uint64_t>();
      gm.data_words = r.get<std::uint64_t>();
    }
  }
  ENZO_REQUIRE(r.exhausted(), "checkpoint: META payload size mismatch");
  return m;
}

// ---- section assembly -------------------------------------------------------

struct EncodedSection {
  std::uint32_t tag = 0;
  std::uint8_t flags = 0;
  std::uint64_t raw_size = 0;
  std::vector<std::uint8_t> stored;
};

EncodedSection seal_section(std::uint32_t tag, std::vector<std::uint8_t> raw,
                            bool compress) {
  EncodedSection s;
  s.tag = tag;
  s.raw_size = raw.size();
  if (compress && !raw.empty() && raw.size() % 8 == 0) {
    std::vector<std::uint8_t> packed = compress_block(raw.data(), raw.size());
    if (packed.size() < raw.size()) {
      s.flags = kFlagCompressed;
      s.stored = std::move(packed);
      return s;
    }
  }
  s.stored = std::move(raw);
  return s;
}

void append_section(std::vector<std::uint8_t>& image,
                    const EncodedSection& s) {
  ByteBuf h;
  h.put<std::uint32_t>(s.tag);
  h.put<std::uint8_t>(s.flags);
  h.put<std::uint8_t>(0);
  h.put<std::uint8_t>(0);
  h.put<std::uint8_t>(0);
  h.put<std::uint64_t>(s.raw_size);
  h.put<std::uint64_t>(s.stored.size());
  h.put<std::uint32_t>(crc32(s.stored.data(), s.stored.size()));
  image.insert(image.end(), h.b.begin(), h.b.end());
  image.insert(image.end(), s.stored.begin(), s.stored.end());
}

}  // namespace

// ---- encode -----------------------------------------------------------------

std::vector<std::uint8_t> encode_checkpoint(const core::Simulation& sim,
                                            const CheckpointWriteOptions& opts) {
  perf::TraceScope scope("checkpoint/encode", perf::component::kIo);
  const auto& h = sim.hierarchy();

  // Snapshot the grid list (level-major, ordinal order — the order the META
  // section describes and the reader rebuilds).
  std::vector<const Grid*> grids;
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const Grid* g : h.grids(l)) grids.push_back(g);

  ByteBuf meta;
  meta.b.reserve(meta_payload_bytes(sim));
  encode_meta(sim, meta);
  ENZO_REQUIRE(meta.b.size() == meta_payload_bytes(sim),
               "checkpoint: META accounting drift");

  // Per-grid section encode (serialize + compress + checksum) is
  // embarrassingly parallel; offload it through the level executor when one
  // is provided.  Results land in ordinal slots, so the assembled image is
  // byte-identical at any thread count.
  std::vector<EncodedSection> sections(grids.size());
  const auto encode_one = [&](std::size_t n) {
    ByteBuf raw;
    raw.b.reserve(grid_data_words(*grids[n]) * 8);
    encode_grid_payload(*grids[n], raw);
    ENZO_REQUIRE(raw.b.size() == grid_data_words(*grids[n]) * 8,
                 "checkpoint: grid accounting drift");
    sections[n] = seal_section(kSectionGrid, std::move(raw.b), opts.compress);
  };
  if (opts.executor != nullptr && grids.size() > 1) {
    opts.executor->for_each({"checkpoint_encode", perf::component::kIo},
                            grids.size(), encode_one, [&](std::size_t n) {
                              return grid_data_words(*grids[n]);
                            });
  } else {
    for (std::size_t n = 0; n < grids.size(); ++n) encode_one(n);
  }

  std::vector<std::uint8_t> image;
  std::size_t stored_total = kFileHeaderBytes + kTrailerBytes +
                             kSectionHeaderBytes + meta.b.size();
  for (const auto& s : sections)
    stored_total += kSectionHeaderBytes + s.stored.size();
  image.reserve(stored_total);

  ByteBuf head;
  head.put<std::uint64_t>(kCheckpointMagic);
  head.put<std::uint32_t>(kCheckpointVersion);
  head.put<std::uint32_t>(kCheckpointEndianMarker);
  image = std::move(head.b);
  append_section(image, seal_section(kSectionMeta, std::move(meta.b),
                                     /*compress=*/false));
  for (const auto& s : sections) append_section(image, s);

  ByteBuf tail;
  tail.put<std::uint32_t>(kCheckpointEndMagic);
  image.insert(image.end(), tail.b.begin(), tail.b.end());
  const std::uint32_t file_crc = crc32(image.data(), image.size());
  ByteBuf crc_buf;
  crc_buf.put<std::uint32_t>(file_crc);
  image.insert(image.end(), crc_buf.b.begin(), crc_buf.b.end());
  return image;
}

std::size_t checkpoint_size_bytes(const core::Simulation& sim) {
  const auto& h = sim.hierarchy();
  std::size_t bytes = kFileHeaderBytes + kTrailerBytes;
  bytes += kSectionHeaderBytes + meta_payload_bytes(sim);
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const Grid* g : h.grids(l))
      bytes += kSectionHeaderBytes +
               static_cast<std::size_t>(grid_data_words(*g)) * 8;
  return bytes;
}

// ---- atomic write -----------------------------------------------------------

bool atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes,
                       std::size_t inject_crash_after_bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  ENZO_REQUIRE(f != nullptr, "cannot open checkpoint for writing: " + tmp);
  const std::size_t to_write =
      std::min(bytes.size(), inject_crash_after_bytes);
  const std::size_t written =
      to_write == 0 ? 0 : std::fwrite(bytes.data(), 1, to_write, f);
  if (to_write < bytes.size()) {
    // Injected crash: abandon the torn temp file, never touch `path`.
    std::fclose(f);
    return false;
  }
  bool ok = written == bytes.size() && std::fflush(f) == 0;
  // fsync before rename: the rename must never be durable before the data.
  ok = ok && ::fsync(::fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  ENZO_REQUIRE(ok, "checkpoint write failed: " + tmp);
  ENZO_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot rename checkpoint into place: " + path);
  // Best-effort directory fsync so the rename itself is durable.
  const std::filesystem::path dir =
      std::filesystem::path(path).has_parent_path()
          ? std::filesystem::path(path).parent_path()
          : std::filesystem::path(".");
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

void write_checkpoint(const core::Simulation& sim, const std::string& path,
                      const CheckpointWriteOptions& opts) {
  CkptMetrics& m = CkptMetrics::get();
  util::Stopwatch encode_watch;
  const std::vector<std::uint8_t> image = encode_checkpoint(sim, opts);
  m.encode_seconds.set(encode_watch.seconds());

  perf::TraceScope scope("checkpoint/write", perf::component::kIo);
  util::Stopwatch write_watch;
  if (!atomic_write_file(path, image, opts.inject_crash_after_bytes)) return;
  m.write_seconds.set(write_watch.seconds());
  m.writes.add(1);
  m.bytes_raw.add(checkpoint_size_bytes(sim));
  m.bytes_written.add(image.size());
}

// ---- framing inspection -----------------------------------------------------

std::vector<SectionInfo> describe_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ENZO_REQUIRE(is.good(), "cannot open checkpoint: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  ENZO_REQUIRE(bytes.size() >= kFileHeaderBytes + kTrailerBytes,
               "not an enzo-mini checkpoint: " + path);
  ByteReader r{bytes.data(), bytes.size() - kTrailerBytes, 0};
  ENZO_REQUIRE(r.get<std::uint64_t>() == kCheckpointMagic,
               "not an enzo-mini checkpoint: " + path);
  ENZO_REQUIRE(r.get<std::uint32_t>() == kCheckpointVersion,
               "unsupported checkpoint version");
  ENZO_REQUIRE(r.get<std::uint32_t>() == kCheckpointEndianMarker,
               "checkpoint endianness mismatch");
  std::vector<SectionInfo> out;
  while (!r.exhausted()) {
    SectionInfo s;
    s.header_offset = r.off;
    s.tag = r.get<std::uint32_t>();
    const std::uint8_t flags = r.get<std::uint8_t>();
    (void)r.get<std::uint8_t>();
    (void)r.get<std::uint8_t>();
    (void)r.get<std::uint8_t>();
    s.raw_size = r.get<std::uint64_t>();
    s.stored_size = r.get<std::uint64_t>();
    (void)r.get<std::uint32_t>();  // crc
    s.compressed = (flags & kFlagCompressed) != 0;
    s.payload_offset = r.off;
    ENZO_REQUIRE(s.stored_size <= r.n - r.off,
                 "checkpoint: section overruns file");
    r.off += s.stored_size;
    out.push_back(s);
  }
  return out;
}

// ---- read -------------------------------------------------------------------

void read_checkpoint(core::Simulation& sim, const std::string& path) {
  perf::TraceScope scope("checkpoint/read", perf::component::kIo);
  std::ifstream is(path, std::ios::binary);
  ENZO_REQUIRE(is.good(), "cannot open checkpoint: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  ENZO_REQUIRE(bytes.size() >= kFileHeaderBytes + kTrailerBytes,
               "not an enzo-mini checkpoint: " + path);

  // Header.
  ByteReader r{bytes.data(), bytes.size(), 0};
  ENZO_REQUIRE(r.get<std::uint64_t>() == kCheckpointMagic,
               "not an enzo-mini checkpoint: " + path);
  ENZO_REQUIRE(r.get<std::uint32_t>() == kCheckpointVersion,
               "unsupported checkpoint version");
  ENZO_REQUIRE(r.get<std::uint32_t>() == kCheckpointEndianMarker,
               "checkpoint endianness mismatch");

  // Whole-file integrity first: the trailing CRC32 covers every byte up to
  // itself, so truncation, padding, concatenation, or any bit flip anywhere
  // is rejected before the state is even parsed.
  {
    ByteReader t{bytes.data(), bytes.size(), bytes.size() - kTrailerBytes};
    ENZO_REQUIRE(t.get<std::uint32_t>() == kCheckpointEndMagic,
                 "checkpoint: missing end-of-file marker (truncated?)");
    const std::uint32_t want = t.get<std::uint32_t>();
    const std::uint32_t got = crc32(bytes.data(), bytes.size() - 4);
    ENZO_REQUIRE(want == got,
                 "checkpoint: file checksum mismatch (torn or corrupt file)");
  }

  // Section walk: verify per-section checksums, decompress, and require the
  // stream to be exhausted exactly at the trailer (a v1-style reader that
  // stops at "enough grids" would silently accept padded files).
  struct RawSection {
    std::uint32_t tag;
    std::vector<std::uint8_t> payload;
  };
  std::vector<RawSection> sections;
  r.n = bytes.size() - kTrailerBytes;
  while (!r.exhausted()) {
    const std::uint32_t tag = r.get<std::uint32_t>();
    const std::uint8_t flags = r.get<std::uint8_t>();
    (void)r.get<std::uint8_t>();
    (void)r.get<std::uint8_t>();
    (void)r.get<std::uint8_t>();
    const std::uint64_t raw_size = r.get<std::uint64_t>();
    const std::uint64_t stored_size = r.get<std::uint64_t>();
    const std::uint32_t want_crc = r.get<std::uint32_t>();
    ENZO_REQUIRE(stored_size <= r.n - r.off,
                 "checkpoint: section overruns file");
    const std::uint8_t* payload = r.p + r.off;
    r.off += stored_size;
    ENZO_REQUIRE(crc32(payload, stored_size) == want_crc,
                 "checkpoint: section checksum mismatch");
    RawSection s;
    s.tag = tag;
    if (flags & kFlagCompressed)
      s.payload = decompress_block(payload, stored_size, raw_size);
    else
      s.payload.assign(payload, payload + stored_size);
    ENZO_REQUIRE(s.payload.size() == raw_size,
                 "checkpoint: section size mismatch");
    sections.push_back(std::move(s));
  }
  ENZO_REQUIRE(!sections.empty() && sections.front().tag == kSectionMeta,
               "checkpoint: missing META section");

  const Meta meta =
      decode_meta(sim, sections[0].payload.data(), sections[0].payload.size());
  ENZO_REQUIRE(sections.size() == meta.total_grids() + 1,
               "checkpoint: grid section count mismatch");

  // All validation that can fail on a well-formed-but-mismatched file is
  // done; rebuild the hierarchy from the parsed state.
  ENZO_REQUIRE(sim.hierarchy().grids(0).empty(),
               "read_checkpoint needs an unbuilt root");
  sim.hierarchy() = mesh::Hierarchy(sim.config().hierarchy);
  auto& h = sim.hierarchy();

  std::size_t sec = 1;
  std::vector<Grid*> prev_level;
  for (int l = 0; l <= meta.deepest; ++l) {
    std::vector<Grid*> this_level;
    for (const GridMeta& gm : meta.levels[static_cast<std::size_t>(l)]) {
      auto g = h.make_grid(l, gm.box);
      if (l > 0) {
        ENZO_REQUIRE(gm.parent_ord >= 0 &&
                         gm.parent_ord <
                             static_cast<std::int32_t>(prev_level.size()),
                     "checkpoint: bad parent ordinal");
        g->set_parent(prev_level[static_cast<std::size_t>(gm.parent_ord)]);
      }
      g->set_time(gm.time);
      g->set_old_time(gm.old_time);
      if (gm.has_old) {
        // store_old_fields snapshots current data and sets old_time = time;
        // the payload then overwrites both old arrays and old_time below.
        g->store_old_fields();
        g->set_old_time(gm.old_time);
      }
      ENZO_REQUIRE(grid_data_words(*g) + kParticleWords * gm.npart -
                           kParticleWords * g->particles().size() ==
                       gm.data_words,
                   "checkpoint: grid payload accounting mismatch");
      const auto& payload = sections[sec].payload;
      ENZO_REQUIRE(sections[sec].tag == kSectionGrid,
                   "checkpoint: unexpected section tag");
      ENZO_REQUIRE(payload.size() == gm.data_words * 8,
                   "checkpoint: grid payload size mismatch");
      ByteReader gr{payload.data(), payload.size(), 0};
      decode_grid_payload(gr, *g, gm.npart);
      ++sec;
      this_level.push_back(h.insert_grid(std::move(g)));
    }
    prev_level = std::move(this_level);
  }
  sim.restore_clock_state(meta.clock);
  h.check_invariants();
  CkptMetrics::get().restores.add(1);
}

// ---- directories: naming, retention, recovery -------------------------------

std::string checkpoint_file_name(long step) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%08ld%s", kCheckpointPrefix, step,
                kCheckpointSuffix);
  return buf;
}

std::vector<std::string> list_checkpoints(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (name.rfind(kCheckpointPrefix, 0) == 0 &&
        name.size() > std::strlen(kCheckpointSuffix) &&
        name.compare(name.size() - std::strlen(kCheckpointSuffix),
                     std::string::npos, kCheckpointSuffix) == 0)
      out.push_back(e.path().string());
  }
  // Zero-padded step numbers: lexicographic order is chronological order.
  std::sort(out.begin(), out.end());
  return out;
}

int prune_checkpoints(const std::string& dir, int keep) {
  ENZO_REQUIRE(keep >= 1, "checkpoint retention must keep at least one");
  const std::vector<std::string> files = list_checkpoints(dir);
  int removed = 0;
  for (std::size_t i = 0;
       i + static_cast<std::size_t>(keep) < files.size(); ++i) {
    std::error_code ec;
    if (std::filesystem::remove(files[i], ec)) ++removed;
  }
  if (removed > 0) CkptMetrics::get().pruned.add(static_cast<unsigned>(removed));
  return removed;
}

RestoreResult restore_latest_checkpoint(core::Simulation& sim,
                                        const std::string& dir_or_file) {
  namespace fs = std::filesystem;
  RestoreResult res;
  if (fs::is_regular_file(dir_or_file)) {
    read_checkpoint(sim, dir_or_file);
    res.path = dir_or_file;
    return res;
  }
  ENZO_REQUIRE(fs::is_directory(dir_or_file),
               "no checkpoint file or directory at: " + dir_or_file);
  std::vector<std::string> files = list_checkpoints(dir_or_file);
  ENZO_REQUIRE(!files.empty(),
               "no checkpoints found in directory: " + dir_or_file);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    try {
      // A failed attempt may have partially rebuilt the hierarchy; reset it
      // so the next candidate starts from the required unbuilt state.  The
      // clock is only restored after full validation, so it never tears.
      sim.hierarchy() = mesh::Hierarchy(sim.config().hierarchy);
      read_checkpoint(sim, *it);
      res.path = *it;
      return res;
    } catch (const enzo::Error& e) {
      ++res.skipped;
      CkptMetrics::get().skipped_corrupt.add(1);
      perf::StructuredLog::global().logf(
          perf::LogLevel::kWarn, "checkpoint",
          "skipping corrupt snapshot %s: %s", it->c_str(), e.what());
    }
  }
  throw enzo::Error("no intact checkpoint in " + dir_or_file + " (" +
                    std::to_string(res.skipped) + " corrupt candidate(s))");
}

}  // namespace enzo::io
