#include "io/checkpoint.hpp"

#include <cstdint>
#include <fstream>

#include "util/error.hpp"

namespace enzo::io {

using mesh::Field;
using mesh::Grid;

namespace {

// ---- primitive writers/readers ------------------------------------------------

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  ENZO_REQUIRE(static_cast<bool>(is), "checkpoint: truncated stream");
  return v;
}

void put_pos(std::ostream& os, ext::pos_t p) {
#ifdef ENZO_POSITION_DOUBLE
  put<double>(os, p);
  put<double>(os, 0.0);
#else
  put<double>(os, p.hi);
  put<double>(os, p.lo);
#endif
}
ext::pos_t get_pos(std::istream& is) {
  const double hi = get<double>(is);
  const double lo = get<double>(is);
#ifdef ENZO_POSITION_DOUBLE
  (void)lo;
  return hi;
#else
  return ext::pos_t(hi, lo);
#endif
}

void put_array(std::ostream& os, const util::Array3<double>& a) {
  put<std::int32_t>(os, a.nx());
  put<std::int32_t>(os, a.ny());
  put<std::int32_t>(os, a.nz());
  os.write(reinterpret_cast<const char*>(a.data()),
           static_cast<std::streamsize>(a.size() * sizeof(double)));
}
void get_array(std::istream& is, util::Array3<double>& a) {
  const int nx = get<std::int32_t>(is);
  const int ny = get<std::int32_t>(is);
  const int nz = get<std::int32_t>(is);
  ENZO_REQUIRE(nx == a.nx() && ny == a.ny() && nz == a.nz(),
               "checkpoint: field shape mismatch");
  is.read(reinterpret_cast<char*>(a.data()),
          static_cast<std::streamsize>(a.size() * sizeof(double)));
  ENZO_REQUIRE(static_cast<bool>(is), "checkpoint: truncated field data");
}

}  // namespace

void write_checkpoint(const core::Simulation& sim, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ENZO_REQUIRE(os.good(), "cannot open checkpoint for writing: " + path);
  const auto& h = sim.hierarchy();
  const auto& hp = sim.config().hierarchy;

  put(os, kCheckpointMagic);
  put(os, kCheckpointVersion);
  for (int d = 0; d < 3; ++d) put<std::int64_t>(os, hp.root_dims[d]);
  put<std::int32_t>(os, hp.refine_factor);
  put<std::int32_t>(os, hp.nghost);
  put<std::int32_t>(os, hp.max_level);
  put<std::uint8_t>(os, hp.periodic ? 1 : 0);
  put<std::int32_t>(os, static_cast<std::int32_t>(hp.fields.size()));
  for (Field f : hp.fields) put<std::int32_t>(os, mesh::field_index(f));
  put_pos(os, sim.time());
  put<double>(os, sim.scale_factor());

  put<std::int32_t>(os, h.deepest_level());
  for (int l = 0; l <= h.deepest_level(); ++l) {
    const auto grids = h.grids(l);
    put<std::int32_t>(os, static_cast<std::int32_t>(grids.size()));
    for (const Grid* g : grids) {
      for (int d = 0; d < 3; ++d) put<std::int64_t>(os, g->box().lo[d]);
      for (int d = 0; d < 3; ++d) put<std::int64_t>(os, g->box().hi[d]);
      // Parent ordinal within level l-1.
      std::int32_t parent_ord = -1;
      if (l > 0) {
        const auto parents = h.grids(l - 1);
        for (std::size_t p = 0; p < parents.size(); ++p)
          if (parents[p] == g->parent())
            parent_ord = static_cast<std::int32_t>(p);
        ENZO_REQUIRE(parent_ord >= 0, "checkpoint: orphan grid");
      }
      put(os, parent_ord);
      put_pos(os, g->time());
      put_pos(os, g->old_time());
      for (Field f : g->field_list()) put_array(os, g->field(f));
      put<std::uint8_t>(os, g->has_old_fields() ? 1 : 0);
      if (g->has_old_fields())
        for (Field f : g->field_list()) put_array(os, g->old_field(f));
      put<std::uint64_t>(os, g->particles().size());
      for (const mesh::Particle& p : g->particles()) {
        for (int d = 0; d < 3; ++d) put_pos(os, p.x[d]);
        for (int d = 0; d < 3; ++d) put<double>(os, p.v[d]);
        put<double>(os, p.mass);
        put<std::uint64_t>(os, p.id);
      }
    }
  }
  ENZO_REQUIRE(os.good(), "checkpoint write failed: " + path);
}

void read_checkpoint(core::Simulation& sim, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ENZO_REQUIRE(is.good(), "cannot open checkpoint: " + path);
  ENZO_REQUIRE(sim.hierarchy().grids(0).empty(),
               "read_checkpoint needs an unbuilt root");
  // Re-derive the (still-empty) hierarchy from the deck-loaded config — the
  // checkpoint's grid structure is rebuilt below from the file itself.
  sim.hierarchy() = mesh::Hierarchy(sim.config().hierarchy);
  auto& h = sim.hierarchy();
  const auto& hp = sim.config().hierarchy;

  ENZO_REQUIRE(get<std::uint64_t>(is) == kCheckpointMagic,
               "not an enzo-mini checkpoint: " + path);
  ENZO_REQUIRE(get<std::uint32_t>(is) == kCheckpointVersion,
               "unsupported checkpoint version");
  for (int d = 0; d < 3; ++d)
    ENZO_REQUIRE(get<std::int64_t>(is) == hp.root_dims[d],
                 "checkpoint root dims mismatch");
  ENZO_REQUIRE(get<std::int32_t>(is) == hp.refine_factor,
               "checkpoint refine factor mismatch");
  ENZO_REQUIRE(get<std::int32_t>(is) == hp.nghost,
               "checkpoint ghost count mismatch");
  (void)get<std::int32_t>(is);  // max_level is advisory
  ENZO_REQUIRE((get<std::uint8_t>(is) != 0) == hp.periodic,
               "checkpoint periodicity mismatch");
  const int nfields = get<std::int32_t>(is);
  ENZO_REQUIRE(nfields == static_cast<int>(hp.fields.size()),
               "checkpoint field count mismatch");
  for (Field f : hp.fields)
    ENZO_REQUIRE(get<std::int32_t>(is) == mesh::field_index(f),
                 "checkpoint field list mismatch");
  const ext::pos_t t = get_pos(is);
  (void)get<double>(is);  // scale factor is re-derived from the time

  const int deepest = get<std::int32_t>(is);
  std::vector<Grid*> prev_level;
  for (int l = 0; l <= deepest; ++l) {
    const int ngrids = get<std::int32_t>(is);
    std::vector<Grid*> this_level;
    for (int n = 0; n < ngrids; ++n) {
      mesh::IndexBox box;
      for (int d = 0; d < 3; ++d) box.lo[d] = get<std::int64_t>(is);
      for (int d = 0; d < 3; ++d) box.hi[d] = get<std::int64_t>(is);
      const int parent_ord = get<std::int32_t>(is);
      auto g = std::make_unique<Grid>(h.make_spec(l, box), hp.fields);
      if (l > 0) {
        ENZO_REQUIRE(parent_ord >= 0 &&
                         parent_ord < static_cast<int>(prev_level.size()),
                     "checkpoint: bad parent ordinal");
        g->set_parent(prev_level[static_cast<std::size_t>(parent_ord)]);
      }
      g->set_time(get_pos(is));
      g->set_old_time(get_pos(is));
      const ext::pos_t old_time = g->old_time();
      for (Field f : g->field_list()) get_array(is, g->field(f));
      const bool has_old = get<std::uint8_t>(is) != 0;
      if (has_old) {
        // store_old_fields snapshots current data and old_time = time; then
        // overwrite the old arrays with the checkpointed ones.
        g->store_old_fields();
        g->set_old_time(old_time);
        for (Field f : g->field_list()) get_array(is, g->old_field(f));
      }
      const std::uint64_t npart = get<std::uint64_t>(is);
      g->particles().resize(npart);
      for (mesh::Particle& p : g->particles()) {
        for (int d = 0; d < 3; ++d) p.x[d] = get_pos(is);
        for (int d = 0; d < 3; ++d) p.v[d] = get<double>(is);
        p.mass = get<double>(is);
        p.id = get<std::uint64_t>(is);
      }
      this_level.push_back(h.insert_grid(std::move(g)));
    }
    prev_level = std::move(this_level);
  }
  sim.restore_clock(t);
  h.check_invariants();
}

std::size_t checkpoint_size_bytes(const core::Simulation& sim) {
  const auto& h = sim.hierarchy();
  std::size_t bytes = 128;  // header
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const Grid* g : h.grids(l)) {
      std::size_t cells = 1;
      for (int d = 0; d < 3; ++d) cells *= static_cast<std::size_t>(g->nt(d));
      const std::size_t copies = g->has_old_fields() ? 2 : 1;
      bytes += 64 + copies * cells * g->field_list().size() * sizeof(double);
      bytes += g->particles().size() * (6 * sizeof(double) + 2 * sizeof(double) +
                                        2 * sizeof(std::uint64_t));
    }
  return bytes;
}

}  // namespace enzo::io
