#include "io/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/error.hpp"

namespace enzo::io {

namespace {

/// Normalize data into [0,1] under the options.
std::vector<double> normalize(const std::vector<double>& data,
                              const ImageOptions& opt) {
  std::vector<double> v = data;
  if (opt.log_scale)
    for (double& x : v) x = std::log10(std::max(x, 1e-300));
  double lo = opt.lo, hi = opt.hi;
  if (!(lo < hi)) {
    lo = 1e300;
    hi = -1e300;
    for (double x : v)
      if (std::isfinite(x)) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    if (!(lo < hi)) {
      lo = 0;
      hi = 1;
    }
  } else if (opt.log_scale) {
    lo = std::log10(std::max(lo, 1e-300));
    hi = std::log10(std::max(hi, 1e-300));
  }
  for (double& x : v) {
    double f = (x - lo) / (hi - lo);
    if (!std::isfinite(f)) f = 0.0;
    x = std::clamp(f, 0.0, 1.0);
  }
  return v;
}

}  // namespace

void write_pgm(const std::string& path, const std::vector<double>& data,
               int nx, int ny, const ImageOptions& opt) {
  ENZO_REQUIRE(static_cast<std::size_t>(nx) * ny == data.size(),
               "write_pgm: dimensions do not match data size");
  const auto v = normalize(data, opt);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ENZO_REQUIRE(os.good(), "cannot open image for writing: " + path);
  os << "P5\n" << nx << " " << ny << "\n255\n";
  // Image rows top-to-bottom = data rows last-to-first (y up in data).
  for (int j = ny - 1; j >= 0; --j)
    for (int i = 0; i < nx; ++i) {
      const unsigned char b = static_cast<unsigned char>(
          v[static_cast<std::size_t>(j) * nx + i] * 255.0 + 0.5);
      os.put(static_cast<char>(b));
    }
  ENZO_REQUIRE(os.good(), "image write failed: " + path);
}

void write_ppm(const std::string& path, const std::vector<double>& data,
               int nx, int ny, const ImageOptions& opt) {
  ENZO_REQUIRE(static_cast<std::size_t>(nx) * ny == data.size(),
               "write_ppm: dimensions do not match data size");
  const auto v = normalize(data, opt);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ENZO_REQUIRE(os.good(), "cannot open image for writing: " + path);
  os << "P6\n" << nx << " " << ny << "\n255\n";
  for (int j = ny - 1; j >= 0; --j)
    for (int i = 0; i < nx; ++i) {
      const double f = v[static_cast<std::size_t>(j) * nx + i];
      // Blue → cyan → yellow → red heat map.
      const double r = std::clamp(1.5 * f - 0.25, 0.0, 1.0);
      const double g = std::clamp(1.5 - std::abs(2.0 * f - 1.0) * 1.5, 0.0, 1.0);
      const double b = std::clamp(1.25 - 1.5 * f, 0.0, 1.0);
      os.put(static_cast<char>(r * 255 + 0.5));
      os.put(static_cast<char>(g * 255 + 0.5));
      os.put(static_cast<char>(b * 255 + 0.5));
    }
  ENZO_REQUIRE(os.good(), "image write failed: " + path);
}

void write_slice_pgm(const std::string& path, const analysis::Slice& s,
                     const ImageOptions& opt) {
  // Slice data is already log10: disable double-logging.
  ImageOptions o = opt;
  o.log_scale = false;
  write_pgm(path, s.log10_density, s.n, s.n, o);
}

void write_projection_pgm(const std::string& path,
                          const analysis::Projection& p,
                          const ImageOptions& opt) {
  write_pgm(path, p.sigma, p.n, p.n, opt);
}

PgmImage read_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ENZO_REQUIRE(is.good(), "cannot open image: " + path);
  std::string magic;
  is >> magic;
  ENZO_REQUIRE(magic == "P5", "not a binary PGM: " + path);
  PgmImage img;
  int maxval = 0;
  is >> img.nx >> img.ny >> maxval;
  ENZO_REQUIRE(maxval == 255, "unsupported PGM depth");
  is.get();  // single whitespace after header
  img.pixels.resize(static_cast<std::size_t>(img.nx) * img.ny);
  is.read(reinterpret_cast<char*>(img.pixels.data()),
          static_cast<std::streamsize>(img.pixels.size()));
  ENZO_REQUIRE(static_cast<bool>(is), "truncated PGM: " + path);
  return img;
}

}  // namespace enzo::io
