#pragma once
// Image output for slices and projections (§6: the visualization pipeline
// around Jacques produced "slices and projections", "velocity fields,
// isosurfaces, and a preliminary volume renderer").  We write portable
// graymap (PGM) images — dependency-free, viewable everywhere — with
// optional logarithmic scaling, plus a small colormapped PPM variant.

#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/derived.hpp"

namespace enzo::io {

struct ImageOptions {
  bool log_scale = true;
  /// Fixed data range; when lo >= hi the range is taken from the data.
  double lo = 0.0, hi = 0.0;
};

/// Row-major nx×ny scalar map → 8-bit binary PGM (P5).
void write_pgm(const std::string& path, const std::vector<double>& data,
               int nx, int ny, const ImageOptions& opt = {});

/// Same map through a blue→red heat colormap → binary PPM (P6).
void write_ppm(const std::string& path, const std::vector<double>& data,
               int nx, int ny, const ImageOptions& opt = {});

/// Convenience wrappers for the analysis products.
void write_slice_pgm(const std::string& path, const analysis::Slice& s,
                     const ImageOptions& opt = {});
void write_projection_pgm(const std::string& path,
                          const analysis::Projection& p,
                          const ImageOptions& opt = {});

/// Minimal PGM reader (test/round-trip support): returns 8-bit values.
struct PgmImage {
  int nx = 0, ny = 0;
  std::vector<unsigned char> pixels;
};
PgmImage read_pgm(const std::string& path);

}  // namespace enzo::io
