#pragma once
// Checkpoint / restart.
//
// The paper's §4 workflow *requires* restart: "We first run a low-resolution
// (64³) simulation to determine where the first star will form and then
// restart the calculation including three additional levels of static
// meshes"; §5 notes outputs of 2–4 GB and 50–100 GB of disk.  This module
// serializes the complete simulation state — hierarchy structure, every
// grid's fields (with extended-precision times), and the particles — to a
// portable binary stream and restores it bit-for-bit.

#include <string>

#include "core/simulation.hpp"

namespace enzo::io {

inline constexpr std::uint64_t kCheckpointMagic = 0x454E5A4F4D494E49ull;
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Serialize the full state (hierarchy + clock) to `path`.
void write_checkpoint(const core::Simulation& sim, const std::string& path);

/// Restore into a Simulation whose config matches the checkpoint's
/// structural parameters (root dims, refinement factor, ghost count, field
/// list); throws enzo::Error on mismatch or corruption.  The simulation's
/// root must not have been built yet.
void read_checkpoint(core::Simulation& sim, const std::string& path);

/// Byte size the checkpoint of this simulation will occupy (diagnostics —
/// the §5 "outputs in the 2–4 GB range" accounting at our scale).
std::size_t checkpoint_size_bytes(const core::Simulation& sim);

}  // namespace enzo::io
