#pragma once
// Crash-safe checkpoint / restart.
//
// The paper's §4 workflow *requires* restart: "We first run a low-resolution
// (64³) simulation to determine where the first star will form and then
// restart the calculation including three additional levels of static
// meshes"; §5 budgets 50–100 GB of checkpoint traffic.  At that scale a
// checkpoint must survive the machine dying mid-write, so format v2 is built
// for it (see DESIGN.md §9 for the byte-level layout):
//
//   * versioned header with an endianness marker;
//   * sectioned body — one META section (config, clock, hierarchy shape)
//     plus one GRID section per grid — each framed with raw/stored sizes and
//     a CRC32 of its stored bytes;
//   * field arrays block-compressed (shuffle + RLE, io/codec.hpp) when that
//     wins, stored raw when it does not;
//   * a whole-file CRC32 trailer, so truncated, torn, padded, or
//     concatenated files are always rejected;
//   * atomic replacement: writes go to `path.tmp`, are fsync'ed, and only
//     then renamed over `path` — a crash never destroys the previous good
//     snapshot.
//
// Recovery (`restore_latest_checkpoint`) scans a checkpoint directory
// newest-first and restores the first snapshot whose checksums all pass,
// skipping torn or corrupted files.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "exec/executor.hpp"

namespace enzo::io {

inline constexpr std::uint64_t kCheckpointMagic = 0x454E5A4F4D494E49ull;
inline constexpr std::uint32_t kCheckpointVersion = 2;
/// Written as a native u32; a reader on an opposite-endian machine sees the
/// byte-swapped value and rejects the file instead of mis-decoding it.
inline constexpr std::uint32_t kCheckpointEndianMarker = 0x01020304u;
inline constexpr std::uint32_t kCheckpointEndMagic = 0x454E5A45u;  // "ENZE"

/// Section tags ("META" / "GRID" as ASCII).
inline constexpr std::uint32_t kSectionMeta = 0x4D455441u;
inline constexpr std::uint32_t kSectionGrid = 0x47524944u;

struct CheckpointWriteOptions {
  /// Shuffle+RLE-compress GRID sections (falls back to raw per section when
  /// compression does not shrink it).  Off: every section stored raw and the
  /// file size equals checkpoint_size_bytes() exactly.
  bool compress = true;
  /// Parallelize per-grid section encoding (nullptr: encode serially).
  exec::LevelExecutor* executor = nullptr;
  /// Fault-injection hook: abandon the write after this many bytes of the
  /// temp file, without fsync or rename — simulating a crash mid-checkpoint.
  /// The destination file is left untouched; a stale `.tmp` remains.
  std::size_t inject_crash_after_bytes = static_cast<std::size_t>(-1);
};

/// Serialize the full state (hierarchy + clock + step counters) into an
/// in-memory format-v2 image (exposed for tests and the fault harness;
/// write_checkpoint is encode + atomic_write_file).
std::vector<std::uint8_t> encode_checkpoint(
    const core::Simulation& sim, const CheckpointWriteOptions& opts = {});

/// Write `bytes` to `path` atomically: temp file, fsync, rename.  Returns
/// false (leaving any previous `path` intact) when the crash-injection hook
/// truncated the write; throws enzo::Error on real I/O failure.
bool atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes,
                       std::size_t inject_crash_after_bytes =
                           static_cast<std::size_t>(-1));

/// encode_checkpoint + atomic_write_file, with io.checkpoint.* metrics and
/// trace scopes.
void write_checkpoint(const core::Simulation& sim, const std::string& path,
                      const CheckpointWriteOptions& opts = {});

/// Restore into a Simulation whose config matches the checkpoint's
/// structural parameters (root dims, refinement factor, ghost count, field
/// list); throws enzo::Error on mismatch or any integrity failure.  The
/// simulation's root must not have been built yet.  Restores the clock, the
/// root-step counter, and the diagnostics/audit conservation baselines — so
/// attach any diagnostics sink *before* calling this (attaching resets the
/// baselines).
void read_checkpoint(core::Simulation& sim, const std::string& path);

/// Exact byte size of this simulation's *uncompressed* v2 checkpoint (the
/// §5 "outputs in the 2–4 GB range" accounting at our scale); a compressed
/// write is never larger.  Asserted equal to the actual file size in the
/// round-trip tests.
std::size_t checkpoint_size_bytes(const core::Simulation& sim);

// ---- framing inspection (fault harness / tooling) ---------------------------

struct SectionInfo {
  std::uint32_t tag = 0;
  std::uint64_t header_offset = 0;   ///< file offset of the section header
  std::uint64_t payload_offset = 0;  ///< file offset of the stored payload
  std::uint64_t raw_size = 0;
  std::uint64_t stored_size = 0;
  bool compressed = false;
};

/// Walk the section framing of a checkpoint file without validating
/// checksums (stops with enzo::Error on malformed framing).  The returned
/// offsets are the natural truncation points for fault injection.
std::vector<SectionInfo> describe_checkpoint(const std::string& path);

// ---- checkpoint directories (retention + recovery) --------------------------

inline constexpr const char* kCheckpointPrefix = "ckpt_";
inline constexpr const char* kCheckpointSuffix = ".ckpt";

/// Canonical file name for the snapshot taken after root step `step`
/// (zero-padded so lexicographic order is chronological order).
std::string checkpoint_file_name(long step);

/// The `ckpt_*.ckpt` files in `dir`, oldest first.  Temp (`.tmp`) files from
/// interrupted writes are never listed.  Empty when dir does not exist.
std::vector<std::string> list_checkpoints(const std::string& dir);

/// Delete the oldest checkpoints until at most `keep` remain; returns the
/// number removed.
int prune_checkpoints(const std::string& dir, int keep);

struct RestoreResult {
  std::string path;  ///< the snapshot actually restored
  int skipped = 0;   ///< corrupted / torn candidates rejected before it
};

/// Restore the newest *intact* snapshot.  `dir_or_file` may be a single
/// checkpoint file (restored directly) or a directory (scanned newest-first;
/// corrupted candidates are logged, counted in io.checkpoint.skipped_corrupt,
/// and skipped).  Throws enzo::Error when no intact snapshot exists.
RestoreResult restore_latest_checkpoint(core::Simulation& sim,
                                        const std::string& dir_or_file);

}  // namespace enzo::io
