#include "io/codec.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"

namespace enzo::io {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

void shuffle8(const std::uint8_t* in, std::size_t n, std::uint8_t* out) {
  ENZO_REQUIRE(n % 8 == 0, "shuffle8 payload not a multiple of 8 bytes");
  const std::size_t words = n / 8;
  for (std::size_t p = 0; p < 8; ++p)
    for (std::size_t w = 0; w < words; ++w) out[p * words + w] = in[w * 8 + p];
}

void unshuffle8(const std::uint8_t* in, std::size_t n, std::uint8_t* out) {
  ENZO_REQUIRE(n % 8 == 0, "unshuffle8 payload not a multiple of 8 bytes");
  const std::size_t words = n / 8;
  for (std::size_t p = 0; p < 8; ++p)
    for (std::size_t w = 0; w < words; ++w) out[w * 8 + p] = in[p * words + w];
}

std::vector<std::uint8_t> rle_encode(const std::uint8_t* in, std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n / 4 + 16);
  std::size_t lit_start = 0, i = 0;
  const auto flush_literals = [&](std::size_t end) {
    while (lit_start < end) {
      const std::size_t len = std::min<std::size_t>(128, end - lit_start);
      out.push_back(static_cast<std::uint8_t>(len - 1));
      out.insert(out.end(), in + lit_start, in + lit_start + len);
      lit_start += len;
    }
  };
  while (i < n) {
    std::size_t run = 1;
    while (i + run < n && in[i + run] == in[i] && run < 130) ++run;
    if (run >= 3) {
      flush_literals(i);
      out.push_back(static_cast<std::uint8_t>(0x80 + (run - 3)));
      out.push_back(in[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(n);
  return out;
}

std::vector<std::uint8_t> rle_decode(const std::uint8_t* in, std::size_t n,
                                     std::size_t expect_n) {
  std::vector<std::uint8_t> out;
  out.reserve(expect_n);
  std::size_t pos = 0;
  while (pos < n) {
    const std::uint8_t c = in[pos++];
    if (c < 0x80) {
      const std::size_t len = static_cast<std::size_t>(c) + 1;
      ENZO_REQUIRE(pos + len <= n && out.size() + len <= expect_n,
                   "checkpoint: malformed RLE literal block");
      out.insert(out.end(), in + pos, in + pos + len);
      pos += len;
    } else {
      const std::size_t len = static_cast<std::size_t>(c - 0x80) + 3;
      ENZO_REQUIRE(pos < n && out.size() + len <= expect_n,
                   "checkpoint: malformed RLE run block");
      out.insert(out.end(), len, in[pos++]);
    }
  }
  ENZO_REQUIRE(out.size() == expect_n, "checkpoint: RLE payload short");
  return out;
}

std::vector<std::uint8_t> compress_block(const std::uint8_t* in,
                                         std::size_t n) {
  std::vector<std::uint8_t> shuffled(n);
  shuffle8(in, n, shuffled.data());
  return rle_encode(shuffled.data(), n);
}

std::vector<std::uint8_t> decompress_block(const std::uint8_t* in,
                                           std::size_t n, std::size_t raw_n) {
  const std::vector<std::uint8_t> shuffled = rle_decode(in, n, raw_n);
  std::vector<std::uint8_t> out(raw_n);
  unshuffle8(shuffled.data(), raw_n, out.data());
  return out;
}

}  // namespace enzo::io
