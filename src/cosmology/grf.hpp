#pragma once
// Gaussian random field + Zel'dovich initial conditions.
//
// §4: initial conditions are an inflation-inspired Gaussian random field,
// first realized at low resolution (64³) and then re-realized with
// additional nested static refinement levels (equivalent to 512³) covering
// the proto-star region.  The generator here produces: the linear
// overdensity field δ(x), the Zel'dovich displacement field ψ(x)
// (δ = −∇·ψ at D = 1), and the corresponding velocity field, on any
// (sub)lattice of the root domain, from a single deterministic seed — so a
// refined region re-realizes *the same* large-scale modes plus additional
// small-scale power, exactly the restart trick the paper describes.

#include <array>
#include <cstdint>

#include "cosmology/frw.hpp"
#include "cosmology/power_spectrum.hpp"
#include "cosmology/units.hpp"
#include "util/array3.hpp"

namespace enzo::cosmology {

struct GrfOutput {
  util::Array3<double> delta;                ///< linear overdensity at D=1
  std::array<util::Array3<double>, 3> psi;   ///< displacement field (code length)
};

class InitialConditionsGenerator {
 public:
  /// box_comoving_cm: root-domain size; fields are in code units of that box.
  InitialConditionsGenerator(const Frw& frw, const PowerSpectrum& ps,
                             double box_comoving_cm, std::uint64_t seed);

  /// Realize δ and ψ on an n³-equivalent lattice covering the sub-box
  /// [lo, lo+width) of the unit domain (lo/width per dimension, width equal
  /// in all dimensions; the lattice is n per dimension).  The same seed and
  /// the same (physical) mode k always receives the same random amplitude,
  /// implemented by hashing the integer mode vector in root-box units — this
  /// is what makes nested static subgrids consistent with the parent field.
  GrfOutput realize(int n, const std::array<double, 3>& lo,
                    double width) const;

  /// Linear theory rms of δ on the n-per-root-box lattice (for tests).
  double expected_sigma(int n) const;

 private:
  const Frw& frw_;
  const PowerSpectrum& ps_;
  double box_cm_;
  std::uint64_t seed_;
};

/// Scale δ and ψ from D=1 to scale factor a; returns the multiplier applied
/// to ψ to obtain the *peculiar velocity* in code units:
///   v_code = velocity_factor * ψ_code.
double zeldovich_velocity_factor(const Frw& frw, const CodeUnits& units,
                                 double a);

}  // namespace enzo::cosmology
