#include "cosmology/grf.hpp"

#include <cmath>

#include "fft/fft.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

namespace enzo::cosmology {

namespace {

/// SplitMix64 hash step.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Deterministic per-mode unit-variance complex Gaussian from the integer
/// mode vector (root-box fundamental units) and the run seed.  Hashing the
/// *physical* mode — not the lattice index — is what keeps realizations at
/// different effective resolutions mode-consistent (§4's nested-IC restart).
void mode_gaussians(std::uint64_t seed, int mx, int my, int mz, double& g1,
                    double& g2) {
  std::uint64_t h = seed;
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(mx)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(my)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(mz)));
  const std::uint64_t u1 = mix(h);
  const std::uint64_t u2 = mix(u1);
  double x1 = static_cast<double>(u1 >> 11) * 0x1.0p-53;
  const double x2 = static_cast<double>(u2 >> 11) * 0x1.0p-53;
  if (x1 <= 1e-300) x1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(x1));
  g1 = r * std::cos(constants::kTwoPi * x2);
  g2 = r * std::sin(constants::kTwoPi * x2);
}

}  // namespace

InitialConditionsGenerator::InitialConditionsGenerator(
    const Frw& frw, const PowerSpectrum& ps, double box_comoving_cm,
    std::uint64_t seed)
    : frw_(frw), ps_(ps), box_cm_(box_comoving_cm), seed_(seed) {
  ENZO_REQUIRE(box_cm_ > 0, "IC generator: box size must be positive");
}

GrfOutput InitialConditionsGenerator::realize(int n,
                                              const std::array<double, 3>& lo,
                                              double width) const {
  ENZO_REQUIRE(fft::is_pow2(n), "IC lattice must be a power of two");
  ENZO_REQUIRE(width > 0 && width <= 1.0, "IC sub-box width out of range");
  // The realization is periodic over the requested sub-box; modes are hashed
  // by their index in *root-box fundamental units* so overlapping mode sets
  // between realizations at different n (or full-box width=1 vs nested
  // regions with power-of-two width) agree exactly.
  const double inv_w = 1.0 / width;
  const double box_mpc = box_cm_ / constants::kMpc;
  const double sub_mpc = box_mpc * width;
  const double v_sub = sub_mpc * sub_mpc * sub_mpc;
  const double kfund = constants::kTwoPi / sub_mpc;  // Mpc^-1

  util::Array3<fft::cplx> dk(n, n, n);
  std::array<util::Array3<fft::cplx>, 3> pk;
  for (auto& a : pk) a.resize(n, n, n);

  for (int kz = 0; kz < n; ++kz) {
    const int fz = fft::freq_index(kz, n);
    for (int ky = 0; ky < n; ++ky) {
      const int fy = fft::freq_index(ky, n);
      for (int kx = 0; kx < n; ++kx) {
        const int fx = fft::freq_index(kx, n);
        if (fx == 0 && fy == 0 && fz == 0) continue;  // no DC power
        // Physical mode index in root-box units.
        const int mx = static_cast<int>(std::lround(fx * inv_w));
        const int my = static_cast<int>(std::lround(fy * inv_w));
        const int mz = static_cast<int>(std::lround(fz * inv_w));
        // Canonical representative for Hermitian symmetry: lexicographically
        // positive mode carries the random numbers; its mirror conjugates.
        bool flip = (mz < 0) || (mz == 0 && my < 0) ||
                    (mz == 0 && my == 0 && mx < 0);
        double g1, g2;
        mode_gaussians(seed_, flip ? -mx : mx, flip ? -my : my,
                       flip ? -mz : mz, g1, g2);
        // Self-conjugate lattice modes (Nyquist planes and the origin) must
        // be real for a real field.
        const bool self_conj = (fx == 0 || fx == -n / 2) &&
                               (fy == 0 || fy == -n / 2) &&
                               (fz == 0 || fz == -n / 2);
        fft::cplx g = self_conj ? fft::cplx(g1, 0.0)
                                : fft::cplx(g1, flip ? -g2 : g2) *
                                      (1.0 / std::sqrt(2.0));
        const double kxp = fx * kfund, kyp = fy * kfund, kzp = fz * kfund;
        const double kmag = std::sqrt(kxp * kxp + kyp * kyp + kzp * kzp);
        const fft::cplx delta_k = g * std::sqrt(ps_(kmag) / v_sub);
        dk(kx, ky, kz) = delta_k;
        // Zel'dovich displacement: ψ_k = i k / k² δ_k (comoving Mpc),
        // converted to code (root-box) length units.
        const fft::cplx ik_over_k2 = fft::cplx(0.0, 1.0) / (kmag * kmag);
        const double to_code = 1.0 / box_mpc;
        pk[0](kx, ky, kz) = ik_over_k2 * kxp * delta_k * to_code;
        pk[1](kx, ky, kz) = ik_over_k2 * kyp * delta_k * to_code;
        pk[2](kx, ky, kz) = ik_over_k2 * kzp * delta_k * to_code;
      }
    }
  }
  // δ(x) = Σ_k δ_k e^{ikx}: the unnormalized inverse transform.
  GrfOutput out;
  fft::fft3(dk, /*inverse=*/true);
  const double nn = static_cast<double>(n) * n * n;
  out.delta.resize(n, n, n);
  for (std::size_t i = 0; i < dk.size(); ++i)
    out.delta.data()[i] = dk.data()[i].real() * nn;
  for (int c = 0; c < 3; ++c) {
    fft::fft3(pk[c], /*inverse=*/true);
    out.psi[c].resize(n, n, n);
    for (std::size_t i = 0; i < pk[c].size(); ++i)
      out.psi[c].data()[i] = pk[c].data()[i].real() * nn;
  }
  (void)lo;  // lo selects the region label only; periodicity note in header.
  return out;
}

double InitialConditionsGenerator::expected_sigma(int n) const {
  // σ²_cell = Σ_{k≠0} P(k)/V over the lattice mode set (width = 1).
  const double box_mpc = box_cm_ / constants::kMpc;
  const double v = box_mpc * box_mpc * box_mpc;
  const double kfund = constants::kTwoPi / box_mpc;
  double sum = 0.0;
  for (int kz = 0; kz < n; ++kz) {
    const int fz = fft::freq_index(kz, n);
    for (int ky = 0; ky < n; ++ky) {
      const int fy = fft::freq_index(ky, n);
      for (int kx = 0; kx < n; ++kx) {
        const int fx = fft::freq_index(kx, n);
        if (fx == 0 && fy == 0 && fz == 0) continue;
        const double kmag =
            kfund * std::sqrt(double(fx) * fx + double(fy) * fy + double(fz) * fz);
        sum += ps_(kmag) / v;
      }
    }
  }
  return std::sqrt(sum);
}

double zeldovich_velocity_factor(const Frw& frw, const CodeUnits& units,
                                 double a) {
  // x(q,a) = q + D(a) ψ;  v_pec = a dx/dt · L = a ψ dD/dt (code length/s)
  //        = a ψ D(a) f(a) H(a).  In code velocity units (length_cm/time_s):
  const double d = frw.growth_factor(a);
  const double f = frw.growth_rate(a);
  const double h = frw.hubble(a);  // s^-1
  return a * d * f * h * units.time_s;
}

}  // namespace enzo::cosmology
