#pragma once
// Friedmann–Robertson–Walker background cosmology.
//
// The simulation is "carried out in a proper expanding cosmological
// background spacetime" (§1): all solvers take the scale factor a(t) and the
// expansion rate ȧ/a from this class.  We integrate the Friedmann equation
//
//     (ȧ/a)² = H0² [ Ω_m a⁻³ + Ω_k a⁻² + Ω_Λ ]
//
// for a matter + curvature + Λ universe ("standard CDM" in the paper is
// Ω_m = 1, Ω_Λ = 0, h ≈ 0.5, σ8 ≈ 0.7 [16]).  a(t) is tabulated once over
// the run's range and interpolated, since EvolveLevel queries it every
// subgrid timestep.

#include <vector>

#include "util/constants.hpp"

namespace enzo::cosmology {

struct FrwParameters {
  double hubble = 0.5;        ///< h  (H0 = 100 h km/s/Mpc)
  double omega_matter = 1.0;  ///< Ω_m (CDM + baryons)
  double omega_baryon = 0.06; ///< Ω_b ⊂ Ω_m
  double omega_lambda = 0.0;  ///< Ω_Λ
  double sigma8 = 0.7;        ///< power-spectrum normalization
  double spectral_index = 1.0;  ///< primordial n_s
};

class Frw {
 public:
  explicit Frw(FrwParameters p = {});

  const FrwParameters& params() const { return p_; }

  /// H0 in s^-1.
  double hubble0() const { return p_.hubble * constants::kHubble100; }
  double omega_curvature() const {
    return 1.0 - p_.omega_matter - p_.omega_lambda;
  }

  /// Dimensionless expansion rate E(a) = H(a)/H0.
  double big_e(double a) const;
  /// H(a) in s^-1.
  double hubble(double a) const { return hubble0() * big_e(a); }

  /// Cosmic time since the big bang at scale factor a, in seconds.
  double time_of_a(double a) const;
  /// Inverse of time_of_a via the precomputed table + Newton polish.
  double a_of_time(double t_seconds) const;

  static double a_of_z(double z) { return 1.0 / (1.0 + z); }
  static double z_of_a(double a) { return 1.0 / a - 1.0; }

  /// Proper mean matter density at scale factor a (g/cm^3).
  double mean_matter_density(double a) const;
  /// Comoving mean matter density (g/cm^3, constant).
  double comoving_matter_density() const;

  /// CMB temperature at scale factor a (K).
  static double cmb_temperature(double a) {
    return constants::kTcmb0 / a;
  }

  /// Linear growth factor, normalized D(a=1)=1.
  double growth_factor(double a) const;
  /// Logarithmic growth rate f = dlnD/dlna.
  double growth_rate(double a) const;

 private:
  void build_table();
  FrwParameters p_;
  // Table of (a, t) pairs for fast inversion.
  std::vector<double> tab_a_, tab_t_;
};

}  // namespace enzo::cosmology
