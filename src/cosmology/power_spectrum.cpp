#include "cosmology/power_spectrum.hpp"

#include <cmath>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace enzo::cosmology {

PowerSpectrum::PowerSpectrum(const Frw& frw) : p_(frw.params()) {
  gamma_ = p_.omega_matter * p_.hubble;
  ENZO_REQUIRE(gamma_ > 0, "power spectrum: bad shape parameter");
  amplitude_ = 1.0;
  const double r8 = 8.0 / p_.hubble;  // 8 h^-1 Mpc in Mpc
  const double s = sigma(r8);
  amplitude_ = p_.sigma8 * p_.sigma8 / (s * s);
}

double PowerSpectrum::transfer(double k) const {
  // BBKS fit.  q = k / (Γ h) with k in h Mpc^-1, equivalently
  // q = k_Mpc / (Ω_m h²) with k in Mpc^-1.
  const double q = k / (gamma_ * p_.hubble);
  if (q < 1e-12) return 1.0;
  const double poly = 1.0 + 3.89 * q + std::pow(16.1 * q, 2) +
                      std::pow(5.46 * q, 3) + std::pow(6.71 * q, 4);
  return std::log(1.0 + 2.34 * q) / (2.34 * q) * std::pow(poly, -0.25);
}

double PowerSpectrum::unnormalized(double k) const {
  const double t = transfer(k);
  return std::pow(k, p_.spectral_index) * t * t;
}

double PowerSpectrum::operator()(double k) const {
  if (k <= 0) return 0.0;
  return amplitude_ * unnormalized(k);
}

double PowerSpectrum::sigma(double r) const {
  // σ²(R) = 1/(2π²) ∫ k² P(k) W²(kR) dk, W the spherical top hat.
  // Integrate in ln k over a generous range with Simpson's rule.
  auto window = [](double x) {
    if (x < 1e-4) return 1.0 - x * x / 10.0;
    return 3.0 * (std::sin(x) - x * std::cos(x)) / (x * x * x);
  };
  const double lk_min = std::log(1e-5), lk_max = std::log(1e4 / r);
  const int n = 4096;  // even
  const double h = (lk_max - lk_min) / n;
  double sum = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double k = std::exp(lk_min + i * h);
    const double w = window(k * r);
    const double f = k * k * k * amplitude_ * unnormalized(k) * w * w;
    const double coef = (i == 0 || i == n) ? 1.0 : (i % 2 ? 4.0 : 2.0);
    sum += coef * f;
  }
  sum *= h / 3.0;
  return std::sqrt(sum / (2.0 * constants::kPi * constants::kPi));
}

}  // namespace enzo::cosmology
