#pragma once
// Code unit system (comoving, Enzo-style).
//
// Code coordinates x ∈ [0,1)³ are comoving across the root domain; code
// density is comoving density in units of the mean matter density; peculiar
// velocity carries the unit length_cm/time_s independent of a.  The code
// time unit is chosen so that the comoving Poisson equation reads
//
//     ∇²_x φ = (G_code / a) (ρ_code − ρ̄_code),   G_code = 4πG ρ_unit t_unit²,
//
// and for cosmological units (t_unit = 1/sqrt(4πG ρ̄_comoving)) G_code = 1.
// Non-cosmological test problems use CodeUnits::simple(), which sets a = 1
// and an arbitrary G_code.

#include <cmath>

#include "cosmology/frw.hpp"
#include "util/constants.hpp"
#include "util/annotations.hpp"

namespace enzo::cosmology {

struct CodeUnits {
  double length_cm = 1.0;    ///< comoving cm per code length (the box size)
  double density_cgs = 1.0;  ///< comoving g/cm³ per code density
  double time_s = 1.0;       ///< seconds per code time
  double grav_const_code = 1.0;  ///< 4πG in code units (see above)
  bool comoving = false;     ///< true when built from a cosmology

  /// Cosmological units for a comoving box of size box_cm.
  ENZO_UNITS_BOUNDARY static CodeUnits cosmological(const Frw& frw, double box_comoving_cm) {
    CodeUnits u;
    u.length_cm = box_comoving_cm;
    u.density_cgs = frw.comoving_matter_density();
    u.time_s = 1.0 / std::sqrt(constants::kFourPi * constants::kGravity *
                               u.density_cgs);
    u.grav_const_code = 1.0;
    u.comoving = true;
    return u;
  }

  /// Plain (static-space) units; G_code = 4πG in the chosen unit system.
  static CodeUnits simple(double grav_const_code = 1.0) {
    CodeUnits u;
    u.grav_const_code = grav_const_code;
    u.comoving = false;
    return u;
  }

  double velocity_cgs() const { return length_cm / time_s; }

  /// Proper mass density in g/cm³ from code density at scale factor a.
  double proper_density(double rho_code, double a) const {
    return rho_code * density_cgs / (a * a * a);
  }

  /// Kelvin per unit of (specific internal energy × μ) in code units:
  /// T = temperature_factor() * (γ-1) * μ * e_code.
  ENZO_UNITS_BOUNDARY double temperature_factor() const {
    const double v2 = velocity_cgs() * velocity_cgs();
    return constants::kHydrogenMass * v2 / constants::kBoltzmann;
  }

  /// Code mass unit in grams (density × volume).
  double mass_g() const {
    return density_cgs * length_cm * length_cm * length_cm;
  }
};

/// Expansion state handed to the solvers each (sub)step.  For static
/// problems a = 1, adot/a = 0 and every solver reduces to standard Euler.
struct Expansion {
  double a = 1.0;            ///< scale factor at the half-time of the step
  double adot_over_a = 0.0;  ///< ȧ/a in code-time units
  static Expansion statics() { return {}; }
};

}  // namespace enzo::cosmology
