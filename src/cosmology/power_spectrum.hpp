#pragma once
// CDM linear power spectrum.
//
// §2.1: the "standard CDM" model's mean density and power spectrum P(k) are
// the calculable inputs; the rms fluctuations diverge logarithmically toward
// small scales, driving bottom-up hierarchical collapse.  We implement the
// classic BBKS (Bardeen, Bond, Kaiser & Szalay 1986) transfer function with
// primordial slope n_s and top-hat σ8 normalization — the standard choice for
// 2001-era "standard CDM" initial conditions.

#include "cosmology/frw.hpp"

namespace enzo::cosmology {

class PowerSpectrum {
 public:
  /// Builds and normalizes to frw.params().sigma8 at R = 8/h Mpc.
  explicit PowerSpectrum(const Frw& frw);

  /// BBKS transfer function; k in comoving Mpc^-1 (not h/Mpc).
  double transfer(double k_invmpc) const;

  /// Linear power spectrum today, P(k) in comoving Mpc³; k in Mpc^-1.
  double operator()(double k_invmpc) const;

  /// rms of top-hat-filtered density field at radius R (comoving Mpc).
  double sigma(double r_mpc) const;

  double amplitude() const { return amplitude_; }

 private:
  double unnormalized(double k) const;
  FrwParameters p_;
  double gamma_;      ///< shape parameter Ω_m h
  double amplitude_;  ///< normalization A in P = A k^n T²
};

}  // namespace enzo::cosmology
