#include "cosmology/frw.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/annotations.hpp"

namespace enzo::cosmology {

Frw::Frw(FrwParameters p) : p_(p) {
  ENZO_REQUIRE(p_.hubble > 0 && p_.omega_matter > 0, "bad FRW parameters");
  build_table();
}

double Frw::big_e(double a) const {
  ENZO_REQUIRE(a > 0, "big_e: a must be positive");
  const double ok = omega_curvature();
  return std::sqrt(p_.omega_matter / (a * a * a) + ok / (a * a) +
                   p_.omega_lambda);
}

namespace {
/// Adaptive Simpson quadrature, absolute tolerance.
template <typename F>
double simpson(F f, double a, double b, double fa, double fm, double fb,
               double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m), rm = 0.5 * (m + b);
  const double flm = f(lm), frm = f(rm);
  const double whole = (b - a) / 6.0 * (fa + 4 * fm + fb);
  const double left = (m - a) / 6.0 * (fa + 4 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4 * frm + fb);
  if (depth <= 0 || std::abs(left + right - whole) < 15 * tol)
    return left + right + (left + right - whole) / 15.0;
  return simpson(f, a, m, fa, flm, fm, tol / 2, depth - 1) +
         simpson(f, m, b, fm, frm, fb, tol / 2, depth - 1);
}

template <typename F>
double integrate(F f, double a, double b, double tol = 1e-12) {
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  return simpson(f, a, b, f(a), f(m), f(b), tol, 40);
}
}  // namespace

double Frw::time_of_a(double a) const {
  // t(a) = ∫_0^a da' / (a' H(a')).  Near a'→0 the integrand ~ a'^{1/2} for a
  // matter-dominated era, so substitute a' = u² to regularize.
  const double h0 = hubble0();
  auto integrand = [&](double u) {
    const double aa = u * u;
    if (aa <= 0) return 0.0;
    return 2.0 * u / (aa * h0 * big_e(aa));
  };
  return integrate(integrand, 0.0, std::sqrt(a), 1e-10 / h0);
}

void Frw::build_table() {
  // Log-spaced in a from deep in the matter era to a bit past today.
  const int n = 2048;
  const double a_min = 1e-5, a_max = 2.0;
  tab_a_.resize(n);
  tab_t_.resize(n);
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / (n - 1);
    tab_a_[i] = a_min * std::pow(a_max / a_min, x);
    tab_t_[i] = time_of_a(tab_a_[i]);
  }
}

double Frw::a_of_time(double t) const {
  ENZO_REQUIRE(t > 0, "a_of_time: t must be positive");
  // Bracket in the table, then Newton with da/dt = a H(a).
  auto it = std::lower_bound(tab_t_.begin(), tab_t_.end(), t);
  double a;
  if (it == tab_t_.begin()) {
    // Early matter era: a ∝ t^{2/3}.
    a = tab_a_.front() * std::pow(t / tab_t_.front(), 2.0 / 3.0);
  } else if (it == tab_t_.end()) {
    a = tab_a_.back();
  } else {
    const std::size_t i = static_cast<std::size_t>(it - tab_t_.begin());
    const double w = (t - tab_t_[i - 1]) / (tab_t_[i] - tab_t_[i - 1]);
    a = tab_a_[i - 1] * std::pow(tab_a_[i] / tab_a_[i - 1], w);
  }
  for (int iter = 0; iter < 8; ++iter) {
    const double f = time_of_a(a) - t;
    const double dfda = 1.0 / (a * hubble(a));
    const double da = -f / dfda;
    a += da;
    if (std::abs(da) < 1e-14 * a) break;
  }
  return a;
}

ENZO_UNITS_PROPER double Frw::mean_matter_density(double a) const {
  return comoving_matter_density() / (a * a * a);
}

double Frw::comoving_matter_density() const {
  return p_.omega_matter * constants::kRhoCrit0 * p_.hubble * p_.hubble;
}

double Frw::growth_factor(double a) const {
  // D(a) ∝ H(a) ∫_0^a da' / (a' H(a'))³, normalized to D(1) = 1.
  const double h0 = hubble0();
  auto integrand = [&](double u) {
    // substitute a' = u² again for the a'→0 end.
    const double aa = u * u;
    if (aa <= 0) return 0.0;
    const double ahe = aa * h0 * big_e(aa);
    return 2.0 * u * std::pow(h0, 3) / (ahe * ahe * ahe);
  };
  auto unnormalized = [&](double aa) {
    return big_e(aa) * integrate(integrand, 0.0, std::sqrt(aa), 1e-12);
  };
  return unnormalized(a) / unnormalized(1.0);
}

double Frw::growth_rate(double a) const {
  const double eps = 1e-4;
  const double d1 = growth_factor(a * (1 - eps));
  const double d2 = growth_factor(a * (1 + eps));
  return (std::log(d2) - std::log(d1)) / (2 * eps);
}

}  // namespace enzo::cosmology
