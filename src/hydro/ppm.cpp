// Piecewise parabolic method sweep (Woodward & Colella 1984, as used in the
// cosmology-adapted solver of Bryan et al. 1995).
//
// Per primitive variable: monotonized parabola reconstruction; per face:
// domain-of-dependence averages of the parabolas over the fastest
// characteristic reaching the face, then a two-shock Riemann solution whose
// sampled state provides the upwind fluxes.  Optional shock flattening blends
// the parabola toward the cell average in strong compressions.

#include <algorithm>
#include <cmath>

#include "hydro/pencil.hpp"
#include "hydro/riemann.hpp"
#include "util/annotations.hpp"

namespace enzo::hydro {

namespace {

/// Monotonized central (van Leer) slope.
ENZO_HOT double mc_slope(double qm, double q, double qp) {
  const double dc = 0.5 * (qp - qm);
  const double dl = q - qm, dr = qp - q;
  if (dl * dr <= 0.0) return 0.0;
  const double lim = 2.0 * std::min(std::abs(dl), std::abs(dr));
  return std::copysign(std::min(std::abs(dc), lim), dc);
}

struct Parabola {
  std::vector<double> ql, qr, dq, q6;
  std::vector<double> slope, face;  ///< reconstruction scratch
};

/// Build the monotonized parabola for variable q; valid for i in
/// [2, n-3] (the callers only consume faces inside that window).
ENZO_HOT void build_parabola(const std::vector<double>& q,
                             const std::vector<double>& flat, Parabola& par) {
  const int n = static_cast<int>(q.size());
  par.ql.assign(n, 0.0);
  par.qr.assign(n, 0.0);
  par.dq.assign(n, 0.0);
  par.q6.assign(n, 0.0);
  std::vector<double>& slope = par.slope;
  std::vector<double>& face = par.face;
  slope.assign(n, 0.0);
  face.assign(n, 0.0);
  for (int i = 1; i + 1 < n; ++i) slope[i] = mc_slope(q[i - 1], q[i], q[i + 1]);
  // face[i] = value at interface i+1/2.
  for (int i = 1; i + 2 < n; ++i)
    face[i] = 0.5 * (q[i] + q[i + 1]) - (slope[i + 1] - slope[i]) / 6.0;
  for (int i = 2; i + 2 < n; ++i) {
    double ql = face[i - 1], qr = face[i];
    // Flattening: blend toward the cell average in strong shocks.
    const double f = flat[i];
    if (f > 0.0) {
      ql = f * q[i] + (1.0 - f) * ql;
      qr = f * q[i] + (1.0 - f) * qr;
    }
    // CW84 monotonization.
    if ((qr - q[i]) * (q[i] - ql) <= 0.0) {
      ql = q[i];
      qr = q[i];
    } else {
      const double dq = qr - ql;
      const double q6 = 6.0 * (q[i] - 0.5 * (ql + qr));
      if (dq * q6 > dq * dq)
        ql = 3.0 * q[i] - 2.0 * qr;
      else if (-dq * dq > dq * q6)
        qr = 3.0 * q[i] - 2.0 * ql;
    }
    par.ql[i] = ql;
    par.qr[i] = qr;
    par.dq[i] = qr - ql;
    par.q6[i] = 6.0 * (q[i] - 0.5 * (ql + qr));
  }
}

/// Average of the parabola in cell i over the rightmost fraction σ
/// (left input state of face i+1/2).
ENZO_HOT double avg_right(const Parabola& p, int i, double sigma) {
  return p.qr[i] - 0.5 * sigma * (p.dq[i] - (1.0 - 2.0 * sigma / 3.0) * p.q6[i]);
}
/// Average over the leftmost fraction σ (right input state of face i-1/2).
ENZO_HOT double avg_left(const Parabola& p, int i, double sigma) {
  return p.ql[i] + 0.5 * sigma * (p.dq[i] + (1.0 - 2.0 * sigma / 3.0) * p.q6[i]);
}

/// Reusable per-thread workspace for ppm_sweep: flattening buffers plus one
/// parabola per primitive variable.  Like hydro::pencil_scratch, every array
/// is fully assigned before use, so recycling is observationally identical
/// to fresh construction.
struct PpmScratch {
  std::vector<double> flat, f0;
  Parabola rho, u, p, vt1, vt2, ei;
  std::vector<Parabola> scal;
};

PpmScratch& ppm_scratch() {
  thread_local PpmScratch ws;
  return ws;
}

}  // namespace

ENZO_HOT void ppm_sweep(Pencil& pc, double dt, double dx,
                        const SweepParams& sp) {
  const int n = pc.n;
  const double gamma = sp.gamma;
  const int nscal = static_cast<int>(pc.scal.size());
  PpmScratch& ws = ppm_scratch();

  // ---- flattening coefficient ------------------------------------------------
  std::vector<double>& flat = ws.flat;
  flat.assign(n, 0.0);
  if (sp.flattening) {
    std::vector<double>& f0 = ws.f0;
    f0.assign(n, 0.0);
    for (int i = 2; i + 2 < n; ++i) {
      const double dp = pc.p[i + 1] - pc.p[i - 1];
      const double dp2 = pc.p[i + 2] - pc.p[i - 2];
      const double pmin = std::min(pc.p[i + 1], pc.p[i - 1]);
      const bool shock = std::abs(dp) > 0.33 * pmin &&
                         (pc.u[i - 1] - pc.u[i + 1]) > 0.0;
      if (shock && dp2 != 0.0) {
        const double ratio = dp / dp2;
        f0[i] = std::clamp(10.0 * (ratio - 0.75), 0.0, 1.0);
      } else if (shock) {
        f0[i] = 1.0;
      }
    }
    for (int i = 1; i + 1 < n; ++i)
      flat[i] = std::max({f0[i - 1], f0[i], f0[i + 1]});
  }

  // ---- parabolas ----------------------------------------------------------------
  Parabola &P_rho = ws.rho, &P_u = ws.u, &P_p = ws.p;
  Parabola &P_vt1 = ws.vt1, &P_vt2 = ws.vt2, &P_ei = ws.ei;
  build_parabola(pc.rho, flat, P_rho);
  build_parabola(pc.u, flat, P_u);
  build_parabola(pc.p, flat, P_p);
  build_parabola(pc.vt1, flat, P_vt1);
  build_parabola(pc.vt2, flat, P_vt2);
  build_parabola(pc.eint, flat, P_ei);
  std::vector<Parabola>& P_s = ws.scal;
  if (static_cast<int>(P_s.size()) < nscal)
    // enzo-lint: allow(hotpath-heap-alloc) amortized scratch growth
    P_s.resize(static_cast<std::size_t>(nscal));
  for (int s = 0; s < nscal; ++s) build_parabola(pc.scal[s], flat, P_s[s]);

  // ---- faces ----------------------------------------------------------------------
  const double dtdx = dt / dx;
  const int f_lo = pc.ng, f_hi = n - pc.ng;  // faces of active cells
  for (int f = f_lo; f <= f_hi; ++f) {
    const int il = f - 1, ir = f;  // cells left/right of face f
    const double cl = std::sqrt(gamma * pc.p[il] / pc.rho[il]);
    const double cr = std::sqrt(gamma * pc.p[ir] / pc.rho[ir]);
    const double sig_l = std::clamp((std::max(pc.u[il] + cl, 0.0)) * dtdx, 0.0, 1.0);
    const double sig_r = std::clamp((std::max(-(pc.u[ir] - cr), 0.0)) * dtdx, 0.0, 1.0);

    RiemannInput rin;
    rin.rho_l = std::max(avg_right(P_rho, il, sig_l), 1e-12 * pc.rho[il]);
    rin.u_l = avg_right(P_u, il, sig_l);
    rin.p_l = std::max(avg_right(P_p, il, sig_l), 1e-12 * pc.p[il]);
    rin.rho_r = std::max(avg_left(P_rho, ir, sig_r), 1e-12 * pc.rho[ir]);
    rin.u_r = avg_left(P_u, ir, sig_r);
    rin.p_r = std::max(avg_left(P_p, ir, sig_r), 1e-12 * pc.p[ir]);

    const RiemannState st = riemann_two_shock(rin, gamma);
    // Upwind transverse velocities / scalars by the contact side.
    const bool from_left = st.u >= 0.0;
    const int up = from_left ? il : ir;
    const double sig_up = from_left ? sig_l : sig_r;
    auto upwind = [&](const Parabola& P) {
      return from_left ? avg_right(P, up, sig_up) : avg_left(P, up, sig_up);
    };
    const double vt1 = upwind(P_vt1);
    const double vt2 = upwind(P_vt2);
    const double ei = std::max(upwind(P_ei), 0.0);

    const double fm = st.rho * st.u;
    pc.f_rho[f] = fm;
    pc.f_mu[f] = fm * st.u + st.p;
    pc.f_mvt1[f] = fm * vt1;
    pc.f_mvt2[f] = fm * vt2;
    const double etot = st.p / (gamma - 1.0) +
                        0.5 * st.rho * (st.u * st.u + vt1 * vt1 + vt2 * vt2);
    pc.f_etot[f] = st.u * (etot + st.p);
    pc.f_eint[f] = fm * ei;
    pc.ustar[f] = st.ustar;
    for (int s = 0; s < nscal; ++s) {
      const double frac = std::clamp(upwind(P_s[s]), 0.0, 1.0);
      pc.f_scal[s][f] = fm * frac;
    }
  }
}

}  // namespace enzo::hydro
