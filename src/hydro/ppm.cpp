// Piecewise parabolic method sweep (Woodward & Colella 1984, as used in the
// cosmology-adapted solver of Bryan et al. 1995).
//
// Per primitive variable: monotonized parabola reconstruction; per face:
// domain-of-dependence averages of the parabolas over the fastest
// characteristic reaching the face, then a two-shock Riemann solution whose
// sampled state provides the upwind fluxes.  Optional shock flattening blends
// the parabola toward the cell average in strong compressions.
//
// All scratch is structure-of-arrays carved from one arena block, and every
// inner loop is written branch-free (ternary selects, unconditional blends)
// over dense lanes so the compiler autovectorizes the reconstruction, the
// characteristic windows, the Riemann batch (fixed-sweep Newton), and the
// flux assembly.

#include <algorithm>
#include <cmath>

#include "hydro/pencil.hpp"
#include "hydro/riemann.hpp"
#include "mesh/field_storage.hpp"
#include "util/annotations.hpp"
#include "util/arena.hpp"

namespace enzo::hydro {

namespace {

constexpr int kLanePad = 8;

int padded(int len) { return (len + kLanePad - 1) / kLanePad * kLanePad; }

/// Dense lanes of one variable's monotonized parabola.
struct ParabolaView {
  double *ql, *qr, *dq, *q6;
  double *slope, *face;  ///< reconstruction scratch
};

/// Average of the parabola in cell i over the rightmost fraction σ
/// (left input state of face i+1/2).
ENZO_HOT inline double avg_right(const ParabolaView& p, int i, double sigma) {
  return p.qr[i] -
         0.5 * sigma * (p.dq[i] - (1.0 - 2.0 * sigma / 3.0) * p.q6[i]);
}
/// Average over the leftmost fraction σ (right input state of face i-1/2).
ENZO_HOT inline double avg_left(const ParabolaView& p, int i, double sigma) {
  return p.ql[i] +
         0.5 * sigma * (p.dq[i] + (1.0 - 2.0 * sigma / 3.0) * p.q6[i]);
}

/// Build the monotonized parabola for variable q; valid for i in
/// [2, n-3] (the callers only consume faces inside that window).  Each loop
/// is select-based: the limiter, the flattening blend, and the CW84
/// monotonization all compute both arms and choose, so there is no
/// data-dependent control flow for the vectorizer to trip on.
ENZO_HOT void build_parabola(int n, const double* __restrict q,
                             const double* __restrict flat,
                             const ParabolaView& par) {
  double* __restrict slope = par.slope;
  double* __restrict face = par.face;
  // Monotonized central (van Leer) slopes.
  for (int i = 1; i + 1 < n; ++i) {
    const double dc = 0.5 * (q[i + 1] - q[i - 1]);
    const double dl = q[i] - q[i - 1], dr = q[i + 1] - q[i];
    const double lim = 2.0 * std::min(std::abs(dl), std::abs(dr));
    const double s = std::copysign(std::min(std::abs(dc), lim), dc);
    slope[i] = dl * dr <= 0.0 ? 0.0 : s;
  }
  // face[i] = value at interface i+1/2.
  for (int i = 1; i + 2 < n; ++i)
    face[i] = 0.5 * (q[i] + q[i + 1]) - (slope[i + 1] - slope[i]) / 6.0;
  double* __restrict pql = par.ql;
  double* __restrict pqr = par.qr;
  double* __restrict pdq = par.dq;
  double* __restrict pq6 = par.q6;
  for (int i = 2; i + 2 < n; ++i) {
    // Flattening: blend toward the cell average in strong shocks (the blend
    // is exact identity at f = 0, so it is applied unconditionally).
    const double f = flat[i];
    const double ql0 = f * q[i] + (1.0 - f) * face[i - 1];
    const double qr0 = f * q[i] + (1.0 - f) * face[i];
    // CW84 monotonization: the two overshoot caps are mutually exclusive,
    // so the if/else-if cascade reduces to independent selects.
    const bool extremum = (qr0 - q[i]) * (q[i] - ql0) <= 0.0;
    const double dq0 = qr0 - ql0;
    const double q60 = 6.0 * (q[i] - 0.5 * (ql0 + qr0));
    const bool cap_l = dq0 * q60 > dq0 * dq0;
    const bool cap_r = -dq0 * dq0 > dq0 * q60;
    const double qlm = cap_l ? 3.0 * q[i] - 2.0 * qr0 : ql0;
    const double qrm = cap_r ? 3.0 * q[i] - 2.0 * ql0 : qr0;
    const double ql = extremum ? q[i] : qlm;
    const double qr = extremum ? q[i] : qrm;
    pql[i] = ql;
    pqr[i] = qr;
    pdq[i] = qr - ql;
    pq6[i] = 6.0 * (q[i] - 0.5 * (ql + qr));
  }
}

/// Reusable per-thread workspace for ppm_sweep: flattening lanes, one
/// parabola per primitive variable, and the Riemann face lanes — all carved
/// out of a single arena block.  reshape() zero-fills only when the block is
/// (re)acquired or the shape changes: every slot a same-shape sweep reads is
/// written earlier in that sweep (parabola lanes cover [2, n-3] ⊇ the
/// [ng-1, n-ng] window reads at ng = 3; face lanes cover the full
/// [f_lo, f_hi] batch; ppm_sweep writes the flat/f0 edge slots explicitly),
/// so recycling is observationally identical to fresh construction — at any
/// executor chunking, which keeps the determinism contract.
struct PpmScratch {
  mesh::Buffer3 buf;
  std::vector<ParabolaView> scal;  // nscal parabola views (pointers only)
  double* flat = nullptr;
  double* f0 = nullptr;
  ParabolaView rho{}, u{}, p{}, vt1{}, vt2{}, ei{};
  // Face lanes: Riemann inputs, characteristic windows, outputs, workspace.
  double *rl = nullptr, *ul = nullptr, *pl = nullptr;
  double *rr = nullptr, *ur = nullptr, *pr = nullptr;
  double *sig_l = nullptr, *sig_r = nullptr;
  double *q_rho = nullptr, *q_u = nullptr, *q_p = nullptr;
  double *pstar = nullptr, *ustar = nullptr;
  double *cl = nullptr, *cr = nullptr, *wl = nullptr, *wr = nullptr;

  PpmScratch() { buf.set_arena(&util::Arena::scratch()); }

  void reshape(int n, int nscal) {
    const int cs = padded(n), fsz = padded(n + 1);
    const std::size_t need =
        static_cast<std::size_t>(2 + 6 * (6 + nscal)) *
            static_cast<std::size_t>(cs) +
        static_cast<std::size_t>(17) * static_cast<std::size_t>(fsz);
    // Same-shape fast path: the per-pencil whole-workspace fill was ~35% of
    // a small-grid PPM step (see the class comment for the write-before-read
    // audit that makes skipping it sound).
    if (buf.size() != need) buf.resize(static_cast<int>(need), 1, 1, 0.0);
    double* b = buf.data();
    auto cell_lane = [&]() {
      double* lane = b;
      b += cs;
      return lane;
    };
    auto parabola = [&]() {
      ParabolaView v;
      v.ql = cell_lane();
      v.qr = cell_lane();
      v.dq = cell_lane();
      v.q6 = cell_lane();
      v.slope = cell_lane();
      v.face = cell_lane();
      return v;
    };
    flat = cell_lane();
    f0 = cell_lane();
    rho = parabola();
    u = parabola();
    p = parabola();
    vt1 = parabola();
    vt2 = parabola();
    ei = parabola();
    if (static_cast<int>(scal.size()) != nscal)
      // enzo-lint: allow(hotpath-heap-alloc) amortized scratch growth
      scal.resize(static_cast<std::size_t>(nscal));
    for (int s = 0; s < nscal; ++s) scal[static_cast<std::size_t>(s)] =
        parabola();
    auto face_lane = [&]() {
      double* lane = b;
      b += fsz;
      return lane;
    };
    rl = face_lane();
    ul = face_lane();
    pl = face_lane();
    rr = face_lane();
    ur = face_lane();
    pr = face_lane();
    sig_l = face_lane();
    sig_r = face_lane();
    q_rho = face_lane();
    q_u = face_lane();
    q_p = face_lane();
    pstar = face_lane();
    ustar = face_lane();
    cl = face_lane();
    cr = face_lane();
    wl = face_lane();
    wr = face_lane();
  }
};

PpmScratch& ppm_scratch() {
  thread_local PpmScratch ws;
  return ws;
}

}  // namespace

ENZO_HOT void ppm_sweep(Pencil& pc, double dt, double dx,
                        const SweepParams& sp) {
  const int n = pc.n;
  const double gamma = sp.gamma;
  const int nscal = pc.nscal;
  PpmScratch& ws = ppm_scratch();
  ws.reshape(n, nscal);

  // ---- flattening coefficient --------------------------------------------
  // With the same-shape reshape skip, the lanes may hold a previous pencil's
  // values, so the slots the loops below read but never write need explicit
  // initialization: the f0 edge cells feeding the three-point max, and the
  // whole flat window when flattening is disabled.
  double* __restrict flat = ws.flat;
  if (sp.flattening) {
    double* __restrict f0 = ws.f0;
    const double* __restrict prs = pc.p;
    const double* __restrict vel = pc.u;
    f0[0] = f0[1] = f0[n - 2] = f0[n - 1] = 0.0;
    for (int i = 2; i + 2 < n; ++i) {
      const double dp = prs[i + 1] - prs[i - 1];
      const double dp2 = prs[i + 2] - prs[i - 2];
      const double pmin = std::min(prs[i + 1], prs[i - 1]);
      const bool shock =
          std::abs(dp) > 0.33 * pmin && (vel[i - 1] - vel[i + 1]) > 0.0;
      // Select-on-denominator keeps the division well defined when the
      // two-cell jump vanishes (the shock ratio is then forced to 1).
      const double den = dp2 != 0.0 ? dp2 : 1.0;
      const double ramp =
          std::clamp(10.0 * (dp / den - 0.75), 0.0, 1.0);
      const double f_shock = dp2 != 0.0 ? ramp : 1.0;
      f0[i] = shock ? f_shock : 0.0;
    }
    for (int i = 1; i + 1 < n; ++i)
      flat[i] = std::max({f0[i - 1], f0[i], f0[i + 1]});
  } else {
    std::fill(flat + 1, flat + (n - 1), 0.0);
  }

  // ---- parabolas ---------------------------------------------------------
  build_parabola(n, pc.rho, flat, ws.rho);
  build_parabola(n, pc.u, flat, ws.u);
  build_parabola(n, pc.p, flat, ws.p);
  build_parabola(n, pc.vt1, flat, ws.vt1);
  build_parabola(n, pc.vt2, flat, ws.vt2);
  build_parabola(n, pc.eint, flat, ws.ei);
  for (int s = 0; s < nscal; ++s)
    build_parabola(n, pc.scal(s), flat, ws.scal[static_cast<std::size_t>(s)]);

  // ---- characteristic windows and Riemann inputs -------------------------
  const double dtdx = dt / dx;
  const int f_lo = pc.ng, f_hi = n - pc.ng;  // faces of active cells
  {
    const double* __restrict prs = pc.p;
    const double* __restrict den = pc.rho;
    const double* __restrict vel = pc.u;
    for (int f = f_lo; f <= f_hi; ++f) {
      const int il = f - 1, ir = f;
      const double cl = std::sqrt(gamma * prs[il] / den[il]);
      const double cr = std::sqrt(gamma * prs[ir] / den[ir]);
      const double sig_l =
          std::clamp(std::max(vel[il] + cl, 0.0) * dtdx, 0.0, 1.0);
      const double sig_r =
          std::clamp(std::max(-(vel[ir] - cr), 0.0) * dtdx, 0.0, 1.0);
      ws.sig_l[f] = sig_l;
      ws.sig_r[f] = sig_r;
      ws.rl[f] = std::max(avg_right(ws.rho, il, sig_l), 1e-12 * den[il]);
      ws.ul[f] = avg_right(ws.u, il, sig_l);
      ws.pl[f] = std::max(avg_right(ws.p, il, sig_l), 1e-12 * prs[il]);
      ws.rr[f] = std::max(avg_left(ws.rho, ir, sig_r), 1e-12 * den[ir]);
      ws.ur[f] = avg_left(ws.u, ir, sig_r);
      ws.pr[f] = std::max(avg_left(ws.p, ir, sig_r), 1e-12 * prs[ir]);
    }
  }

  // ---- two-shock Riemann solve over the face batch -----------------------
  const RiemannBatch rb{ws.rl,    ws.ul, ws.pl, ws.rr, ws.ur, ws.pr,
                        ws.q_rho, ws.q_u, ws.q_p, ws.pstar, ws.ustar,
                        ws.cl,    ws.cr, ws.wl, ws.wr};
  riemann_two_shock_batch(f_lo, f_hi, rb, gamma);

  // ---- flux assembly -----------------------------------------------------
  // Upwind transverse velocities / scalars by the contact side: both window
  // averages are computed and selected, keeping the loop branch-free.
  {
    double* __restrict f_rho = pc.f_rho;
    double* __restrict f_mu = pc.f_mu;
    double* __restrict f_mvt1 = pc.f_mvt1;
    double* __restrict f_mvt2 = pc.f_mvt2;
    double* __restrict f_etot = pc.f_etot;
    double* __restrict f_eint = pc.f_eint;
    double* __restrict ustar_out = pc.ustar;
    for (int f = f_lo; f <= f_hi; ++f) {
      const int il = f - 1, ir = f;
      const double st_rho = ws.q_rho[f], st_u = ws.q_u[f], st_p = ws.q_p[f];
      const bool from_left = st_u >= 0.0;
      const double sl = ws.sig_l[f], sr = ws.sig_r[f];
      const double vt1 = from_left ? avg_right(ws.vt1, il, sl)
                                   : avg_left(ws.vt1, ir, sr);
      const double vt2 = from_left ? avg_right(ws.vt2, il, sl)
                                   : avg_left(ws.vt2, ir, sr);
      const double ei = std::max(from_left ? avg_right(ws.ei, il, sl)
                                           : avg_left(ws.ei, ir, sr),
                                 0.0);
      const double fm = st_rho * st_u;
      f_rho[f] = fm;
      f_mu[f] = fm * st_u + st_p;
      f_mvt1[f] = fm * vt1;
      f_mvt2[f] = fm * vt2;
      const double etot = st_p / (gamma - 1.0) +
                          0.5 * st_rho * (st_u * st_u + vt1 * vt1 + vt2 * vt2);
      f_etot[f] = st_u * (etot + st_p);
      f_eint[f] = fm * ei;
      ustar_out[f] = ws.ustar[f];
    }
  }
  for (int s = 0; s < nscal; ++s) {
    const ParabolaView& Ps = ws.scal[static_cast<std::size_t>(s)];
    double* __restrict fsc = pc.f_scal(s);
    for (int f = f_lo; f <= f_hi; ++f) {
      const int il = f - 1, ir = f;
      const bool from_left = ws.q_u[f] >= 0.0;
      const double win = from_left ? avg_right(Ps, il, ws.sig_l[f])
                                   : avg_left(Ps, ir, ws.sig_r[f]);
      const double frac = std::clamp(win, 0.0, 1.0);
      fsc[f] = ws.q_rho[f] * ws.q_u[f] * frac;
    }
  }
}

}  // namespace enzo::hydro
