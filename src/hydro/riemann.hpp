#pragma once
// Two-shock approximate Riemann solver (Colella & Woodward 1984), the flux
// engine under the PPM scheme.  Star-region pressure/velocity are found by
// Newton iteration on the Lagrangian wave-speed relations; the state at the
// interface (ξ = x/t = 0) is then sampled with correct shock/rarefaction
// structure on each side.
//
// The batch entry point operates on SoA face lanes so the setup and sampling
// phases autovectorize; the scalar API is a thin n=1 wrapper kept for tests
// and diagnostics.

namespace enzo::hydro {

struct RiemannInput {
  double rho_l, u_l, p_l;
  double rho_r, u_r, p_r;
};

struct RiemannState {
  double rho, u, p;
  bool left_of_contact;  ///< the sampled state came from the left family
  double pstar, ustar;   ///< converged star-region values
};

/// SoA lanes for a batch of face Riemann problems.  Input/output/workspace
/// lanes are indexed by the face index f in [lo, hi] passed to the solver
/// (same indexing as the pencil face arrays).  The caller owns all storage;
/// the workspace lanes are scratch the solver fully overwrites.
struct RiemannBatch {
  // Inputs (floored internally against vacuum; see riemann_two_shock_batch).
  const double *rho_l, *u_l, *p_l;
  const double *rho_r, *u_r, *p_r;
  // Outputs: the sampled ξ=0 state and the star velocity.
  double *rho, *u, *p;
  double *pstar, *ustar;
  // Workspace: sound speeds and Lagrangian wave speeds.
  double *cl, *cr, *wl, *wr;
};

/// Solve faces [lo, hi] (inclusive) and sample at ξ = 0.  Inputs are floored
/// at 1e-300 so near-vacuum states (strong expansion fans) cannot divide by
/// zero or NaN-poison the Newton iteration; outputs satisfy rho, p >= 1e-300
/// and finite u, consistent with the solver's eint >= 0 flooring.
void riemann_two_shock_batch(int lo, int hi, const RiemannBatch& b,
                             double gamma);

/// Scalar convenience wrapper over the batch solver (n = 1).
RiemannState riemann_two_shock(const RiemannInput& in, double gamma);

}  // namespace enzo::hydro
