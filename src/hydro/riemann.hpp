#pragma once
// Two-shock approximate Riemann solver (Colella & Woodward 1984), the flux
// engine under the PPM scheme.  Star-region pressure/velocity are found by
// Newton iteration on the Lagrangian wave-speed relations; the state at the
// interface (ξ = x/t = 0) is then sampled with correct shock/rarefaction
// structure on each side.

namespace enzo::hydro {

struct RiemannInput {
  double rho_l, u_l, p_l;
  double rho_r, u_r, p_r;
};

struct RiemannState {
  double rho, u, p;
  bool left_of_contact;  ///< the sampled state came from the left family
  double pstar, ustar;   ///< converged star-region values
};

/// Solve and sample at ξ = 0.  Inputs must have positive densities and
/// pressures (callers floor them).
RiemannState riemann_two_shock(const RiemannInput& in, double gamma);

}  // namespace enzo::hydro
