#include "hydro/riemann.hpp"

#include <algorithm>
#include <cmath>

#include "util/annotations.hpp"

namespace enzo::hydro {

namespace {

// Absolute positivity floor for the inputs: near-vacuum states from strong
// expansion fans reach the solver with p, ρ ~ 1e-300 (the caller's relative
// floors scale with the vanishing cell values), and γpρ then underflows to
// zero — making the relative wave-speed floor underflow too, the Lagrangian
// speeds exactly zero, and the Newton update 0/0 = NaN.  Flooring the inputs
// keeps every product in the normal range, consistent with the conservative
// update's eint >= 0 handling (a vacuum face simply carries ~zero flux).
constexpr double kTiny = 1e-300;

}  // namespace

namespace {

// ---- phase A: sound speeds and the linearized (acoustic) star guess ------
// A standalone helper so the lanes arrive as __restrict *parameters*: GCC
// tracks restrict reliably on parameters but not on locals initialized from
// struct members, and without it the loop needs 21 runtime alias checks —
// over the vectorizer's versioning cap — so it stays scalar.  Loads also go
// through locals before the max: std::max over an array element directly
// selects between *addresses*, which defeats the vectorizer; over loaded
// values it is a plain maxsd.
ENZO_HOT void acoustic_guess(int lo, int hi, const double* __restrict rho_l,
                             const double* __restrict rho_r,
                             const double* __restrict u_l,
                             const double* __restrict u_r,
                             const double* __restrict p_l,
                             const double* __restrict p_r,
                             double* __restrict cl_out,
                             double* __restrict cr_out,
                             double* __restrict pstar_out, double gamma) {
  for (int f = lo; f <= hi; ++f) {
    const double rl0 = rho_l[f], rr0 = rho_r[f];
    const double pl0 = p_l[f], pr0 = p_r[f];
    const double rl = std::max(rl0, kTiny);
    const double rr = std::max(rr0, kTiny);
    const double pl = std::max(pl0, kTiny);
    const double pr = std::max(pr0, kTiny);
    const double cl = std::sqrt(gamma * pl / rl);
    const double cr = std::sqrt(gamma * pr / rr);
    cl_out[f] = cl;
    cr_out[f] = cr;
    const double wl0 = rl * cl, wr0 = rr * cr;
    const double pstar =
        (wr0 * pl + wl0 * pr - wl0 * wr0 * (u_r[f] - u_l[f])) / (wl0 + wr0);
    pstar_out[f] = std::max(pstar, 1e-12 * std::min(pl, pr));
  }
}

// ---- phase B: one Newton sweep over all faces ----------------------------
// Newton step on f(p) = ul*(p) - ur*(p); df/dp ≈ -(1/wl + 1/wr) with the
// CW84 secant-like correction using the current wave speeds.
//
// The two-shock Lagrangian wave speed W(p*), with the (γ+1)/(2γ)(p*/p − 1)
// bracket multiplied through:  W² = γpρ + ½(γ+1)ρ(p* − p).  The expanded
// form needs no division, so each sweep is branch-free and element-wise and
// the whole iteration vectorizes.  W² is floored for strong rarefactions;
// the absolute 1e-250 term keeps W normal (and wl·wr/(wl+wr) well defined)
// even when γpρ is denormal near vacuum.
//
// Stored wl/wr/ustar are the wave speeds and star velocity evaluated at the
// sweep's *incoming* p* — the same pairing the per-face early-break loop
// left behind.
ENZO_HOT void newton_sweep(int lo, int hi, const double* __restrict rho_l,
                           const double* __restrict rho_r,
                           const double* __restrict u_l,
                           const double* __restrict u_r,
                           const double* __restrict p_l,
                           const double* __restrict p_r,
                           double* __restrict pstar, double* __restrict ustar,
                           double* __restrict wl_out,
                           double* __restrict wr_out, double gamma) {
  const double half_gp1 = 0.5 * (gamma + 1.0);
  for (int f = lo; f <= hi; ++f) {
    const double rl0 = rho_l[f], rr0 = rho_r[f];
    const double pl0 = p_l[f], pr0 = p_r[f];
    const double rl = std::max(rl0, kTiny), rr = std::max(rr0, kTiny);
    const double pl = std::max(pl0, kTiny), pr = std::max(pr0, kTiny);
    const double gpr_l = gamma * pl * rl, gpr_r = gamma * pr * rr;
    double ps = pstar[f];
    const double wl = std::sqrt(std::max(gpr_l + half_gp1 * rl * (ps - pl),
                                         std::max(1e-16 * gpr_l, 1e-250)));
    const double wr = std::sqrt(std::max(gpr_r + half_gp1 * rr * (ps - pr),
                                         std::max(1e-16 * gpr_r, 1e-250)));
    const double ul_star = u_l[f] - (ps - pl) / wl;
    const double ur_star = u_r[f] + (ps - pr) / wr;
    const double dp = (ul_star - ur_star) * (wl * wr) / (wl + wr);
    ps = std::max(ps + dp, 1e-12 * std::min(pl, pr));
    pstar[f] = ps;
    ustar[f] = 0.5 * (ul_star + ur_star);
    wl_out[f] = wl;
    wr_out[f] = wr;
  }
}

// Fixed sweep count instead of a per-face early break: the break fired once
// |dp| < 1e-10·p*, past which further Newton steps are fixed-point no-ops to
// roundoff, so running every face to the old iteration cap is at least as
// converged everywhere — and the break's data-dependent control flow is what
// kept this loop scalar.  At 8 lanes/vector the wasted post-convergence
// sweeps cost less than the serial per-face chains they replace.
constexpr int kNewtonSweeps = 12;

}  // namespace

ENZO_HOT void riemann_two_shock_batch(int lo, int hi, const RiemannBatch& b,
                                      double gamma) {
  const double gp1 = gamma + 1.0, gm1 = gamma - 1.0;

  acoustic_guess(lo, hi, b.rho_l, b.rho_r, b.u_l, b.u_r, b.p_l, b.p_r, b.cl,
                 b.cr, b.pstar, gamma);

  for (int iter = 0; iter < kNewtonSweeps; ++iter)
    newton_sweep(lo, hi, b.rho_l, b.rho_r, b.u_l, b.u_r, b.p_l, b.p_r,
                 b.pstar, b.ustar, b.wl, b.wr, gamma);

  // ---- phase C: sample at ξ = 0 (the cell face) --------------------------
  // One mirrored code path: the ustar < 0 (right-family) case is the exact
  // reflection u → −u of the left-family one, so the sampled side is loaded
  // with sgn-mirrored velocities and the result mirrored back.  Negation is
  // exact in IEEE arithmetic, so this is identical to writing both sides
  // out, at half the code and with select-friendly loads.
  // enzo-lint: allow(hotpath-transcendental) rarefaction branch only; data-dependent, cannot batch
  for (int f = lo; f <= hi; ++f) {
    const double ps = b.pstar[f], us = b.ustar[f];
    const bool left = us >= 0.0;
    const double sgn = left ? 1.0 : -1.0;
    const double rho0 = std::max(left ? b.rho_l[f] : b.rho_r[f], kTiny);
    const double p0 = std::max(left ? b.p_l[f] : b.p_r[f], kTiny);
    const double u0 = sgn * (left ? b.u_l[f] : b.u_r[f]);
    const double c0 = left ? b.cl[f] : b.cr[f];
    const double w0 = left ? b.wl[f] : b.wr[f];
    const double usm = sgn * us;
    double orho, ou, op;
    if (ps > p0) {
      // Shock on the sampled side, speed S = u0 - W0/ρ0 (mirrored frame).
      const double s = u0 - w0 / rho0;
      if (s >= 0.0) {
        orho = rho0;
        ou = u0;
        op = p0;
      } else {
        const double rho_star = 1.0 / (1.0 / rho0 - (ps - p0) / (w0 * w0));
        orho = std::max(rho_star, 1e-12 * rho0);
        ou = usm;
        op = ps;
      }
    } else {
      // Rarefaction: head u0 - c0, tail u* - c*.
      const double rho_star = rho0 * std::pow(ps / p0, 1.0 / gamma);
      const double c_star = std::sqrt(gamma * ps / rho_star);
      const double head = u0 - c0;
      const double tail = usm - c_star;
      if (head >= 0.0) {
        orho = rho0;
        ou = u0;
        op = p0;
      } else if (tail <= 0.0) {
        orho = rho_star;
        ou = usm;
        op = ps;
      } else {
        // Inside the fan: at ξ=0, u = c; guard against slightly negative
        // values from the approximate star state (near-vacuum inputs).
        const double uf = 2.0 / gp1 * (c0 + 0.5 * gm1 * u0);
        const double cf = std::max(uf, 1e-8 * c0);
        orho = rho0 * std::pow(cf / c0, 2.0 / gm1);
        ou = std::max(uf, 0.0);
        op = p0 * std::pow(cf / c0, 2.0 * gamma / gm1);
      }
    }
    b.rho[f] = std::max(orho, kTiny);
    b.u[f] = sgn * ou;
    b.p[f] = std::max(op, kTiny);
  }
}

RiemannState riemann_two_shock(const RiemannInput& in, double gamma) {
  double rho = 0, u = 0, p = 0, pstar = 0, ustar = 0;
  double cl = 0, cr = 0, wl = 0, wr = 0;
  const RiemannBatch b{&in.rho_l, &in.u_l, &in.p_l, &in.rho_r, &in.u_r,
                       &in.p_r,   &rho,    &u,      &p,        &pstar,
                       &ustar,    &cl,     &cr,     &wl,       &wr};
  riemann_two_shock_batch(0, 0, b, gamma);
  return {rho, u, p, ustar >= 0.0, pstar, ustar};
}

}  // namespace enzo::hydro
