#include "hydro/riemann.hpp"

#include <algorithm>
#include <cmath>

#include "util/annotations.hpp"
namespace enzo::hydro {

namespace {

/// Lagrangian wave speed W(p*) for one side (two-shock approximation):
/// W² = γ p ρ [1 + (γ+1)/(2γ) (p*/p − 1)], floored for strong rarefactions.
ENZO_HOT double wave_speed(double rho, double p, double pstar,
                           double gamma) {
  const double w2 =
      gamma * p * rho * (1.0 + (gamma + 1.0) / (2.0 * gamma) * (pstar / p - 1.0));
  const double w2_min = 1e-16 * gamma * p * rho;
  return std::sqrt(std::max(w2, w2_min));
}

}  // namespace

ENZO_HOT RiemannState riemann_two_shock(const RiemannInput& in,
                                        double gamma) {
  const double cl = std::sqrt(gamma * in.p_l / in.rho_l);
  const double cr = std::sqrt(gamma * in.p_r / in.rho_r);

  // Initial guess: linearized (acoustic) star pressure.
  const double wl0 = in.rho_l * cl, wr0 = in.rho_r * cr;
  double pstar = (wr0 * in.p_l + wl0 * in.p_r - wl0 * wr0 * (in.u_r - in.u_l)) /
                 (wl0 + wr0);
  pstar = std::max(pstar, 1e-12 * std::min(in.p_l, in.p_r));

  double wl = wl0, wr = wr0, ustar = 0.0;
  for (int iter = 0; iter < 12; ++iter) {
    wl = wave_speed(in.rho_l, in.p_l, pstar, gamma);
    wr = wave_speed(in.rho_r, in.p_r, pstar, gamma);
    const double ul_star = in.u_l - (pstar - in.p_l) / wl;
    const double ur_star = in.u_r + (pstar - in.p_r) / wr;
    // Newton step on f(p) = ul*(p) - ur*(p); df/dp ≈ -(1/wl + 1/wr) with the
    // CW84 secant-like correction using the current wave speeds.
    const double dp = (ul_star - ur_star) * (wl * wr) / (wl + wr);
    pstar += dp;
    pstar = std::max(pstar, 1e-12 * std::min(in.p_l, in.p_r));
    ustar = 0.5 * (ul_star + ur_star);
    if (std::abs(dp) < 1e-10 * pstar) break;
  }

  RiemannState out{};
  out.pstar = pstar;
  out.ustar = ustar;

  // Sample at ξ = 0 (the cell face).
  const double gp1 = gamma + 1.0, gm1 = gamma - 1.0;
  if (ustar >= 0.0) {
    // Interface lies on the left-family side.
    out.left_of_contact = true;
    if (pstar > in.p_l) {
      // Left shock with speed S = u_l - W_l/ρ_l.
      const double s = in.u_l - wl / in.rho_l;
      if (s >= 0.0) {
        out.rho = in.rho_l;
        out.u = in.u_l;
        out.p = in.p_l;
      } else {
        const double rho_star =
            1.0 / (1.0 / in.rho_l - (pstar - in.p_l) / (wl * wl));
        out.rho = std::max(rho_star, 1e-12 * in.rho_l);
        out.u = ustar;
        out.p = pstar;
      }
    } else {
      // Left rarefaction: head u_l - c_l, tail u* - c*_l.
      const double rho_star = in.rho_l * std::pow(pstar / in.p_l, 1.0 / gamma);
      const double c_star = std::sqrt(gamma * pstar / rho_star);
      const double head = in.u_l - cl;
      const double tail = ustar - c_star;
      if (head >= 0.0) {
        out.rho = in.rho_l;
        out.u = in.u_l;
        out.p = in.p_l;
      } else if (tail <= 0.0) {
        out.rho = rho_star;
        out.u = ustar;
        out.p = pstar;
      } else {
        // Inside the fan: at ξ=0, u = c; guard against slightly negative
        // values from the approximate star state (near-vacuum inputs).
        const double u = 2.0 / gp1 * (cl + 0.5 * gm1 * in.u_l);
        const double c = std::max(u, 1e-8 * cl);
        out.rho = in.rho_l * std::pow(c / cl, 2.0 / gm1);
        out.u = std::max(u, 0.0);
        out.p = in.p_l * std::pow(c / cl, 2.0 * gamma / gm1);
      }
    }
  } else {
    out.left_of_contact = false;
    if (pstar > in.p_r) {
      const double s = in.u_r + wr / in.rho_r;
      if (s <= 0.0) {
        out.rho = in.rho_r;
        out.u = in.u_r;
        out.p = in.p_r;
      } else {
        const double rho_star =
            1.0 / (1.0 / in.rho_r - (pstar - in.p_r) / (wr * wr));
        out.rho = std::max(rho_star, 1e-12 * in.rho_r);
        out.u = ustar;
        out.p = pstar;
      }
    } else {
      const double rho_star = in.rho_r * std::pow(pstar / in.p_r, 1.0 / gamma);
      const double c_star = std::sqrt(gamma * pstar / rho_star);
      const double head = in.u_r + cr;
      const double tail = ustar + c_star;
      if (head <= 0.0) {
        out.rho = in.rho_r;
        out.u = in.u_r;
        out.p = in.p_r;
      } else if (tail >= 0.0) {
        out.rho = rho_star;
        out.u = ustar;
        out.p = pstar;
      } else {
        const double u = -2.0 / gp1 * (cr - 0.5 * gm1 * in.u_r);
        const double c = std::max(-u, 1e-8 * cr);
        out.rho = in.rho_r * std::pow(c / cr, 2.0 / gm1);
        out.u = std::min(u, 0.0);
        out.p = in.p_r * std::pow(c / cr, 2.0 * gamma / gm1);
      }
    }
  }
  out.p = std::max(out.p, 1e-300);
  out.rho = std::max(out.rho, 1e-300);
  return out;
}

}  // namespace enzo::hydro
