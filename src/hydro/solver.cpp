// Hydro driver for one grid: dimensional splitting, flux-register
// accumulation, expansion and gravity source terms, dual-energy
// synchronization, and the CFL timestep (§3.2.1).

#include <algorithm>
#include <cmath>

#include "exec/executor.hpp"
#include "hydro/hydro.hpp"
#include "hydro/pencil.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/annotations.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace enzo::hydro {

using mesh::ConstFieldView;
using mesh::Field;
using mesh::FieldView;
using mesh::Grid;

namespace {

constexpr Field kVel[3] = {Field::kVelocityX, Field::kVelocityY,
                           Field::kVelocityZ};

std::vector<Field> species_fields(const Grid& g) {
  std::vector<Field> out;
  for (Field f : g.field_list())
    if (mesh::is_species(f)) out.push_back(f);
  return out;
}

/// Thread-local, arena-backed scratch for the ZEUS source step: the viscous
/// pressures q[3] and the gas pressure p.  Blocks come from the process-wide
/// solver scratch arena, so repeated calls on same-shaped grids are
/// allocation-free and differently-shaped grids recycle each other's blocks.
struct ZeusScratch {
  mesh::Buffer3 q[3];
  mesh::Buffer3 p;
};

struct ZeusViews {
  FieldView q[3];
  FieldView p;
};

/// Reshape the scratch for this grid and hand out views, zero-filled like
/// the freshly-constructed arrays the source step used to allocate.
/// Deliberately not ENZO_HOT: any (re)acquisition happens here, outside the
/// stencil loops.
ZeusViews zeus_scratch_views(const Grid& g) {
  thread_local ZeusScratch s = [] {
    ZeusScratch z;
    for (auto& b : z.q) b.set_arena(&util::Arena::scratch());
    z.p.set_arena(&util::Arena::scratch());
    return z;
  }();
  ZeusViews v;
  for (int d = 0; d < 3; ++d) {
    s.q[d].resize(g.nt(0), g.nt(1), g.nt(2), 0.0);
    v.q[d] = s.q[d].view();
  }
  s.p.resize(g.nt(0), g.nt(1), g.nt(2), 0.0);
  v.p = s.p.view();
  return v;
}

/// ZEUS grid-wide source step: pressure gradient, artificial viscosity and
/// compression heating, using ghost data for the one-cell stencils.
ENZO_HOT void zeus_source_step(Grid& g, double dt, const HydroParams& hp,
                               const cosmology::Expansion& exp) {
  const double gamma = hp.gamma;
  const ConstFieldView rho = g.field(Field::kDensity);
  const FieldView eint = g.field(Field::kInternalEnergy);
  // Per-axis viscous pressures on active+1 cells (arena-backed scratch).
  const ZeusViews zs = zeus_scratch_views(g);
  const FieldView p = zs.p;
  const FieldView* q = zs.q;
  for (int k = 0; k < g.nt(2); ++k)
    for (int j = 0; j < g.nt(1); ++j)
      for (int i = 0; i < g.nt(0); ++i)
        p(i, j, k) = std::max((gamma - 1.0) * rho(i, j, k) * eint(i, j, k),
                              hp.pressure_floor);
  for (int d = 0; d < 3; ++d) {
    if (g.spec().level_dims[d] == 1) continue;
    const ConstFieldView v = g.field(kVel[d]);
    const int off[3] = {d == 0 ? 1 : 0, d == 1 ? 1 : 0, d == 2 ? 1 : 0};
    for (int k = off[2]; k < g.nt(2) - off[2]; ++k)
      for (int j = off[1]; j < g.nt(1) - off[1]; ++j)
        for (int i = off[0]; i < g.nt(0) - off[0]; ++i) {
          const double du = 0.5 * (v(i + off[0], j + off[1], k + off[2]) -
                                   v(i - off[0], j - off[1], k - off[2]));
          if (du < 0.0)
            q[d](i, j, k) = hp.zeus_viscosity * hp.zeus_viscosity *
                            rho(i, j, k) * du * du;
        }
  }
  // Velocity kick and heating on active cells.
  for (int k = g.sz(0); k < g.sz(g.nx(2)); ++k)
    for (int j = g.sy(0); j < g.sy(g.nx(1)); ++j)
      for (int i = g.sx(0); i < g.sx(g.nx(0)); ++i) {
        double divv = 0.0;
        for (int d = 0; d < 3; ++d) {
          if (g.spec().level_dims[d] == 1) continue;
          const double dx_eff = exp.a * g.cell_width_d(d);
          const int off[3] = {d == 0 ? 1 : 0, d == 1 ? 1 : 0, d == 2 ? 1 : 0};
          const FieldView v = g.field(kVel[d]);
          const double grad =
              (p(i + off[0], j + off[1], k + off[2]) +
               q[d](i + off[0], j + off[1], k + off[2]) -
               p(i - off[0], j - off[1], k - off[2]) -
               q[d](i - off[0], j - off[1], k - off[2])) /
              (2.0 * dx_eff);
          v(i, j, k) -= dt * grad / rho(i, j, k);
          divv += 0.5 *
                  (v(i + off[0], j + off[1], k + off[2]) -
                   v(i - off[0], j - off[1], k - off[2])) /
                  dx_eff;
        }
        const double qtot = q[0](i, j, k) + q[1](i, j, k) + q[2](i, j, k);
        eint(i, j, k) = std::max(
            eint(i, j, k) -
                dt * (p(i, j, k) + qtot) / rho(i, j, k) * divv,
            0.0);
      }
}

/// Run the directional sweeps and apply the conservative updates.
ENZO_HOT void sweep_all_axes(Grid& g, double dt, const HydroParams& hp,
                             const cosmology::Expansion& exp,
                             exec::LevelExecutor* ex) {
  // enzo-lint: allow(hotpath-heap-alloc) once per grid call, not per pencil
  const std::vector<Field> species = species_fields(g);
  const int nscal = static_cast<int>(species.size());
  const SweepParams sp{hp.gamma, hp.flattening, hp.zeus_viscosity};

  const char* sweep_names[2][3] = {{"ppm_sweep_x", "ppm_sweep_y",
                                    "ppm_sweep_z"},
                                   {"zeus_sweep_x", "zeus_sweep_y",
                                    "zeus_sweep_z"}};
  bool first_sweep = true;
  for (int d = 0; d < 3; ++d) {
    if (g.spec().level_dims[d] == 1) continue;
    perf::TraceScope sweep_scope(
        sweep_names[hp.solver == Solver::kPpm ? 0 : 1][d],
        perf::component::kHydro, g.level());
    // Split sweeps consume ghost data; for a grid covering the whole
    // periodic domain the wrap can be refreshed exactly between sweeps,
    // keeping the conservative update exact at the external boundary.
    if (!first_sweep && g.covers_periodic_domain()) g.wrap_own_ghosts();
    first_sweep = false;
    const int t1 = (d + 1) % 3, t2 = (d + 2) % 3;
    const double dx_eff = exp.a * g.cell_width_d(d);
    const int np = g.nt(d);
    const int lo = g.ng(d), hi = g.ng(d) + g.nx(d);

    const FieldView rho = g.field(Field::kDensity);
    const FieldView vu = g.field(kVel[d]);
    const FieldView v1 = g.field(kVel[t1]);
    const FieldView v2 = g.field(kVel[t2]);
    const FieldView etot = g.field(Field::kTotalEnergy);
    const FieldView eint = g.field(Field::kInternalEnergy);

    // Raw base pointers for the bulk gather/scatter (hoisted once per axis,
    // like the views above).
    // enzo-lint: allow(hotpath-heap-alloc) once per axis, not per pencil
    std::vector<double*> species_base(static_cast<std::size_t>(nscal));
    for (int sc = 0; sc < nscal; ++sc)
      species_base[static_cast<std::size_t>(sc)] =
          g.field(species[static_cast<std::size_t>(sc)]).data();
    const PencilFields pf{rho.data(),  vu.data(),   v1.data(),
                          v2.data(),   etot.data(), eint.data(),
                          species_base.data()};

    // Pencils are independent — each (j1, j2) pair reads its own pre-sweep
    // line and writes its own cells, flux-register line, and boundary-flux
    // entries — so the executor may chunk them freely.  (This replaces the
    // old OpenMP pragma: loop parallelism now lives only in the
    // LevelExecutor layer, so grid tasks and pencil chunks cannot
    // oversubscribe each other.)
    const int n1 = g.nt(t1), n2 = g.nt(t2);
    exec::maybe_parallel_for(
        ex, static_cast<std::size_t>(n1) * static_cast<std::size_t>(n2), 1,
        [&](std::size_t pencil_begin, std::size_t pencil_end) {
      for (std::size_t pidx = pencil_begin; pidx < pencil_end; ++pidx) {
        const int j2 = static_cast<int>(pidx / static_cast<std::size_t>(n1));
        const int j1 = static_cast<int>(pidx % static_cast<std::size_t>(n1));
        Pencil& pc = pencil_scratch();
        pc.reset(np, g.ng(d), nscal);
        const PencilMap pm = pencil_map(d, g.nt(0), g.nt(1), g.nt(2), j1, j2);
        gather_pencil(pc, pf, pm, hp.gamma, hp.pressure_floor);
        if (hp.solver == Solver::kPpm)
          ppm_sweep(pc, dt, dx_eff, sp);
        else
          zeus_sweep(pc, dt, dx_eff, sp);
        // Conservative update over the SoA lanes, then bulk scatter of the
        // active cells back to the grid.
        apply_conservative_update(pc, dt, dx_eff, hp.density_floor);
        scatter_pencil(pc, pf, pm);

        // Accumulate time-integrated fluxes for the flux correction step.
        // Registers store ∫ F dt/a, with a at each subcycle's half-time: the
        // cell update divides by the *proper* width a·Δx, so the correction
        // (which divides by the comoving parent width only) closes exactly
        // even when a changes between a child's subcycles.  a = 1 in
        // non-comoving runs.
        const double dt_w = dt / exp.a;
        auto accumulate = [&](Field fld, const double* ff) {
          const FieldView reg = g.flux(fld, d);
          const PencilMap fm =
              pencil_map(d, reg.nx(), reg.ny(), reg.nz(), j1, j2);
          double* r = reg.data() + fm.base;
          for (int f = lo; f <= hi; ++f)
            r[static_cast<std::ptrdiff_t>(f) * fm.stride] += dt_w * ff[f];
          // Window-accumulated boundary registers (for the parent's flux
          // correction); plane arrays have extent 1 along d.
          const FieldView bl = g.boundary_flux(fld, d, 0);
          const FieldView bh = g.boundary_flux(fld, d, 1);
          const PencilMap bm = pencil_map(d, bl.nx(), bl.ny(), bl.nz(), j1, j2);
          bl.data()[bm.base] += dt_w * ff[lo];
          bh.data()[bm.base] += dt_w * ff[hi];
        };
        accumulate(Field::kDensity, pc.f_rho);
        accumulate(kVel[d], pc.f_mu);
        accumulate(kVel[t1], pc.f_mvt1);
        accumulate(kVel[t2], pc.f_mvt2);
        accumulate(Field::kTotalEnergy, pc.f_etot);
        accumulate(Field::kInternalEnergy, pc.f_eint);
        for (int sc = 0; sc < nscal; ++sc)
          accumulate(species[static_cast<std::size_t>(sc)], pc.f_scal(sc));
      }
    });
    // kPpmPerCellPerSweep already covers the full variable set; passive
    // scalars add roughly reconstruction + upwinding each.
    const std::uint64_t cost =
        (hp.solver == Solver::kPpm ? util::flop_cost::kPpmPerCellPerSweep
                                   : util::flop_cost::kZeusPerCellPerSweep) +
        12 * static_cast<std::uint64_t>(nscal);
    util::FlopCounter::global().add(
        "hydro",
        cost * static_cast<std::uint64_t>(g.nt(t1)) * g.nt(t2) * np);
  }
}

/// Crank–Nicolson decay factor for dq/dt = -k q over dt.
double cn_decay(double k, double dt) {
  const double x = 0.5 * k * dt;
  return (1.0 - x) / (1.0 + x);
}

ENZO_HOT void apply_expansion_sources(Grid& g, double dt,
                                      const HydroParams& hp,
                                      const cosmology::Expansion& exp) {
  if (exp.adot_over_a == 0.0) return;
  const double fv = cn_decay(exp.adot_over_a, dt);
  const double fe = cn_decay(3.0 * (hp.gamma - 1.0) * exp.adot_over_a, dt);
  const FieldView vx = g.field(Field::kVelocityX);
  const FieldView vy = g.field(Field::kVelocityY);
  const FieldView vz = g.field(Field::kVelocityZ);
  const FieldView etot = g.field(Field::kTotalEnergy);
  const FieldView eint = g.field(Field::kInternalEnergy);
  for (int k = g.sz(0); k < g.sz(g.nx(2)); ++k)
    for (int j = g.sy(0); j < g.sy(g.nx(1)); ++j)
      for (int i = g.sx(0); i < g.sx(g.nx(0)); ++i) {
        const double v2_old = vx(i, j, k) * vx(i, j, k) +
                              vy(i, j, k) * vy(i, j, k) +
                              vz(i, j, k) * vz(i, j, k);
        vx(i, j, k) *= fv;
        vy(i, j, k) *= fv;
        vz(i, j, k) *= fv;
        const double ei_old = eint(i, j, k);
        eint(i, j, k) *= fe;
        // Keep total energy consistent via deltas (preserves the shock
        // heating information it carries).
        etot(i, j, k) += 0.5 * v2_old * (fv * fv - 1.0) +
                         (eint(i, j, k) - ei_old);
      }
}

ENZO_HOT void dual_energy_sync(Grid& g, const HydroParams& hp) {
  const FieldView vx = g.field(Field::kVelocityX);
  const FieldView vy = g.field(Field::kVelocityY);
  const FieldView vz = g.field(Field::kVelocityZ);
  const FieldView etot = g.field(Field::kTotalEnergy);
  const FieldView eint = g.field(Field::kInternalEnergy);
  const ConstFieldView rho = g.field(Field::kDensity);
  for (int k = g.sz(0); k < g.sz(g.nx(2)); ++k)
    for (int j = g.sy(0); j < g.sy(g.nx(1)); ++j)
      for (int i = g.sx(0); i < g.sx(g.nx(0)); ++i) {
        const double v2 = vx(i, j, k) * vx(i, j, k) +
                          vy(i, j, k) * vy(i, j, k) +
                          vz(i, j, k) * vz(i, j, k);
        const double ei_tot = etot(i, j, k) - 0.5 * v2;
        if (ei_tot > hp.dual_energy_eta1 * etot(i, j, k) && ei_tot > 0.0) {
          eint(i, j, k) = ei_tot;
        } else if (etot(i, j, k) <= 0.0 || ei_tot <= 0.0) {
          // Repair a kinetically-dominated or corrupted total energy.
          etot(i, j, k) = eint(i, j, k) + 0.5 * v2;
        }
        const double ei_floor =
            hp.pressure_floor / ((hp.gamma - 1.0) * rho(i, j, k));
        if (eint(i, j, k) < ei_floor) eint(i, j, k) = ei_floor;
      }
}

}  // namespace

double cell_pressure(const Grid& g, int si, int sj, int sk,
                     const HydroParams& params) {
  const double rho = g.field(Field::kDensity)(si, sj, sk);
  const double ei = g.field(Field::kInternalEnergy)(si, sj, sk);
  return std::max((params.gamma - 1.0) * rho * ei, params.pressure_floor);
}

const char* dt_limiter_name(DtLimiter lim) {
  switch (lim) {
    case DtLimiter::kNone: return "none";
    case DtLimiter::kCfl: return "cfl";
    case DtLimiter::kExpansion: return "expansion";
    case DtLimiter::kAcceleration: return "acceleration";
    case DtLimiter::kParticle: return "particle";
    case DtLimiter::kStopTime: return "stop_time";
    case DtLimiter::kParentWindow: return "parent_window";
  }
  return "none";
}

ENZO_HOT TimestepInfo compute_timestep_info(const Grid& g,
                                            const HydroParams& params,
                                            const cosmology::Expansion& exp) {
  TimestepInfo info;
  double dt = std::numeric_limits<double>::max();
  const ConstFieldView rho = g.field(Field::kDensity);
  const ConstFieldView eint = g.field(Field::kInternalEnergy);
  const ConstFieldView vel[3] = {g.field(Field::kVelocityX),
                                 g.field(Field::kVelocityY),
                                 g.field(Field::kVelocityZ)};
  for (int k = g.sz(0); k < g.sz(g.nx(2)); ++k)
    for (int j = g.sy(0); j < g.sy(g.nx(1)); ++j)
      for (int i = g.sx(0); i < g.sx(g.nx(0)); ++i) {
        const double p = std::max(
            (params.gamma - 1.0) * rho(i, j, k) * eint(i, j, k),
            params.pressure_floor);
        const double c = std::sqrt(params.gamma * p / rho(i, j, k));
        for (int d = 0; d < 3; ++d) {
          if (g.spec().level_dims[d] == 1) continue;
          const double dx_eff = exp.a * g.cell_width_d(d);
          const double v = std::abs(vel[d](i, j, k));
          dt = std::min(dt, params.cfl * dx_eff / (v + c + 1e-300));
        }
      }
  if (dt < std::numeric_limits<double>::max()) info.limiter = DtLimiter::kCfl;
  // Expansion limiter.
  if (exp.adot_over_a > 0.0) {
    const double dt_exp = params.max_expansion / exp.adot_over_a;
    if (dt_exp < dt) {
      dt = dt_exp;
      info.limiter = DtLimiter::kExpansion;
    }
  }
  // Acceleration limiter.
  if (g.has_gravity()) {
    for (int d = 0; d < 3; ++d) {
      if (g.spec().level_dims[d] == 1) continue;
      const double gmax = std::max(std::abs(g.acceleration(d).min()),
                                   std::abs(g.acceleration(d).max()));
      if (gmax > 0.0) {
        const double dx_eff = exp.a * g.cell_width_d(d);
        const double dt_acc = params.cfl * std::sqrt(2.0 * dx_eff / gmax);
        if (dt_acc < dt) {
          dt = dt_acc;
          info.limiter = DtLimiter::kAcceleration;
        }
      }
    }
  }
  info.dt = dt;
  return info;
}

void solve_hydro_step(Grid& g, double dt, const HydroParams& params,
                      const cosmology::Expansion& exp,
                      exec::LevelExecutor* ex) {
  ENZO_REQUIRE(dt > 0.0, "hydro step requires dt > 0");
  // Per-step flux arrays are reset every solve (they describe *this* step,
  // the window the grid's own children must match).  The boundary registers
  // accumulate across subcycles — they describe the window of the *parent's*
  // step and are reset by the driver when that window opens.
  g.reset_fluxes();
  if (!g.has_boundary_fluxes()) g.reset_boundary_fluxes();
  if (params.solver == Solver::kZeus) zeus_source_step(g, dt, params, exp);
  sweep_all_axes(g, dt, params, exp, ex);
  apply_expansion_sources(g, dt, params, exp);
  dual_energy_sync(g, params);
  static perf::Counter& cells_updated =
      perf::Registry::global().counter("hydro.cells_updated");
  cells_updated.add(static_cast<std::uint64_t>(g.nx(0)) * g.nx(1) * g.nx(2));
}

ENZO_HOT void apply_gravity_sources(Grid& g, double dt,
                                    const HydroParams& params) {
  if (!g.has_gravity()) return;
  const FieldView etot = g.field(Field::kTotalEnergy);
  const FieldView v[3] = {g.field(Field::kVelocityX),
                          g.field(Field::kVelocityY),
                          g.field(Field::kVelocityZ)};
  for (int k = 0; k < g.nx(2); ++k)
    for (int j = 0; j < g.nx(1); ++j)
      for (int i = 0; i < g.nx(0); ++i) {
        const int si = g.sx(i), sj = g.sy(j), sk = g.sz(k);
        double v2_old = 0.0, v2_new = 0.0;
        for (int d = 0; d < 3; ++d) {
          const double vd = v[d](si, sj, sk);
          v2_old += vd * vd;
          const double vn = vd + dt * g.acceleration(d)(i, j, k);
          v[d](si, sj, sk) = vn;
          v2_new += vn * vn;
        }
        etot(si, sj, sk) += 0.5 * (v2_new - v2_old);
      }
  dual_energy_sync(g, params);
}

}  // namespace enzo::hydro
