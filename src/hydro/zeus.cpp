// ZEUS-style finite-difference transport sweep (after Stone & Norman 1992).
//
// The paper's second solver is "a robust finite difference technique [17]"
// used to double-check PPM.  We implement its cell-centered adaptation: the
// grid-wide source step (pressure gradient + von Neumann–Richtmyer
// artificial viscosity + compression heating) is applied by the caller; this
// sweep performs first-order donor-cell (upwind) transport with face
// velocities averaged from the adjacent cells.  The scheme is diffusive but
// extremely robust — exactly its role in the paper.
//
// The donor-cell choice is expressed as ternary selects over the dense SoA
// lanes (no data-dependent branches), so the whole sweep autovectorizes.

#include <algorithm>
#include <cmath>

#include "hydro/pencil.hpp"
#include "util/annotations.hpp"

namespace enzo::hydro {

ENZO_HOT void zeus_sweep(Pencil& pc, double /*dt*/, double /*dx*/,
                         const SweepParams& sp) {
  const int n = pc.n;
  const int nscal = pc.nscal;
  const double gamma = sp.gamma;
  const int f_lo = pc.ng, f_hi = n - pc.ng;

  const double* __restrict rho = pc.rho;
  const double* __restrict u = pc.u;
  const double* __restrict vt1 = pc.vt1;
  const double* __restrict vt2 = pc.vt2;
  const double* __restrict eint = pc.eint;
  double* __restrict f_rho = pc.f_rho;
  double* __restrict f_mu = pc.f_mu;
  double* __restrict f_mvt1 = pc.f_mvt1;
  double* __restrict f_mvt2 = pc.f_mvt2;
  double* __restrict f_etot = pc.f_etot;
  double* __restrict f_eint = pc.f_eint;
  double* __restrict ustar = pc.ustar;

  // Both candidate loads happen unconditionally and the select runs over the
  // loaded *values*: a ternary over array elements directly selects between
  // addresses, which GCC refuses to if-convert ("control flow in loop").
  for (int f = f_lo; f <= f_hi; ++f) {
    const int il = f - 1, ir = f;
    const double ul = u[il], ur = u[ir];
    const double rho_l = rho[il], rho_r = rho[ir];
    const double vt1_l = vt1[il], vt1_r = vt1[ir];
    const double vt2_l = vt2[il], vt2_r = vt2[ir];
    const double ei_l = eint[il], ei_r = eint[ir];
    const double ubar = 0.5 * (ul + ur);
    const bool upl = ubar > 0.0;
    const double rho_up = upl ? rho_l : rho_r;
    const double u_up = upl ? ul : ur;
    const double vt1_up = upl ? vt1_l : vt1_r;
    const double vt2_up = upl ? vt2_l : vt2_r;
    const double ei_up = upl ? ei_l : ei_r;
    const double fm = ubar * rho_up;
    f_rho[f] = fm;
    // Momentum transport only: the pressure force lives in the source step
    // (ZEUS is non-conservative by construction; the flux registers receive
    // the transport fluxes, which is what its coarse-fine correction can
    // meaningfully exchange).
    f_mu[f] = fm * u_up;
    f_mvt1[f] = fm * vt1_up;
    f_mvt2[f] = fm * vt2_up;
    f_eint[f] = fm * ei_up;
    const double v2 = u_up * u_up + vt1_up * vt1_up + vt2_up * vt2_up;
    // Advected total energy plus the pressure-work flux so coarse cells see
    // an energetically sensible boundary exchange.
    f_etot[f] = fm * (ei_up + 0.5 * v2) + ubar * (gamma - 1.0) * rho_up * ei_up;
    ustar[f] = ubar;
  }
  for (int s = 0; s < nscal; ++s) {
    const double* __restrict sc = pc.scal(s);
    double* __restrict fsc = pc.f_scal(s);
    for (int f = f_lo; f <= f_hi; ++f) {
      const double sc_l = sc[f - 1], sc_r = sc[f];
      const double rho_l = rho[f - 1], rho_r = rho[f];
      const double ubar = 0.5 * (u[f - 1] + u[f]);
      const bool upl = ubar > 0.0;
      const double sc_up = upl ? sc_l : sc_r;
      const double sc_cl = std::min(std::max(sc_up, 0.0), 1.0);
      fsc[f] = ubar * (upl ? rho_l : rho_r) * sc_cl;
    }
  }
}

}  // namespace enzo::hydro
