// ZEUS-style finite-difference transport sweep (after Stone & Norman 1992).
//
// The paper's second solver is "a robust finite difference technique [17]"
// used to double-check PPM.  We implement its cell-centered adaptation: the
// grid-wide source step (pressure gradient + von Neumann–Richtmyer
// artificial viscosity + compression heating) is applied by the caller; this
// sweep performs first-order donor-cell (upwind) transport with face
// velocities averaged from the adjacent cells.  The scheme is diffusive but
// extremely robust — exactly its role in the paper.

#include <algorithm>
#include <cmath>

#include "hydro/pencil.hpp"
#include "util/annotations.hpp"

namespace enzo::hydro {

ENZO_HOT void zeus_sweep(Pencil& pc, double /*dt*/, double /*dx*/,
                         const SweepParams& sp) {
  const int n = pc.n;
  const int nscal = static_cast<int>(pc.scal.size());
  const double gamma = sp.gamma;
  const int f_lo = pc.ng, f_hi = n - pc.ng;

  for (int f = f_lo; f <= f_hi; ++f) {
    const int il = f - 1, ir = f;
    const double ubar = 0.5 * (pc.u[il] + pc.u[ir]);
    const int up = ubar > 0.0 ? il : ir;
    const double fm = ubar * pc.rho[up];
    pc.f_rho[f] = fm;
    // Momentum transport only: the pressure force lives in the source step
    // (ZEUS is non-conservative by construction; the flux registers receive
    // the transport fluxes, which is what its coarse-fine correction can
    // meaningfully exchange).
    pc.f_mu[f] = fm * pc.u[up];
    pc.f_mvt1[f] = fm * pc.vt1[up];
    pc.f_mvt2[f] = fm * pc.vt2[up];
    pc.f_eint[f] = fm * pc.eint[up];
    const double v2 = pc.u[up] * pc.u[up] + pc.vt1[up] * pc.vt1[up] +
                      pc.vt2[up] * pc.vt2[up];
    // Advected total energy plus the pressure-work flux so coarse cells see
    // an energetically sensible boundary exchange.
    pc.f_etot[f] = fm * (pc.eint[up] + 0.5 * v2) +
                   ubar * (gamma - 1.0) * pc.rho[up] * pc.eint[up];
    pc.ustar[f] = ubar;
    for (int s = 0; s < nscal; ++s)
      pc.f_scal[s][f] = fm * std::clamp(pc.scal[s][up], 0.0, 1.0);
  }
}

}  // namespace enzo::hydro
