#pragma once
// Internal 1-d pencil workspace shared by the PPM and ZEUS sweeps.
//
// Dimensional splitting: for each sweep axis the grid is decomposed into
// stride-friendly 1-d pencils of primitive variables (ρ, normal velocity u,
// transverse velocities, energies, pressure, passive-scalar mass fractions).
// The sweep kernels fill face-flux arrays (face i = lower face of cell i);
// the caller applies the conservative update and accumulates the fluxes into
// the grid's flux registers for later flux correction.

#include <vector>

namespace enzo::hydro {

struct Pencil {
  int n = 0;   ///< total cells including ghosts along the sweep axis
  int ng = 0;  ///< ghost cells on each end

  std::vector<double> rho, u, vt1, vt2, etot, eint, p;
  std::vector<std::vector<double>> scal;  ///< passive scalar fractions

  // Face-centered outputs, size n+1 (only faces [ng, n-ng] are filled).
  std::vector<double> f_rho, f_mu, f_mvt1, f_mvt2, f_etot, f_eint;
  std::vector<std::vector<double>> f_scal;
  std::vector<double> ustar;  ///< face normal velocity from the Riemann solve

  /// Zero-fill to the given shape, reusing capacity.  Everything is assigned
  /// (not merely sized), so a recycled pencil is byte-identical to a freshly
  /// constructed one — reuse cannot perturb the determinism contract.
  void reset(int n_cells, int nghost, int nscal) {
    n = n_cells;
    ng = nghost;
    for (auto* v : {&rho, &u, &vt1, &vt2, &etot, &eint, &p})
      v->assign(static_cast<std::size_t>(n), 0.0);
    scal.resize(static_cast<std::size_t>(nscal));
    for (auto& s : scal) s.assign(static_cast<std::size_t>(n), 0.0);
    for (auto* v : {&f_rho, &f_mu, &f_mvt1, &f_mvt2, &f_etot, &f_eint, &ustar})
      v->assign(static_cast<std::size_t>(n) + 1, 0.0);
    f_scal.resize(static_cast<std::size_t>(nscal));
    for (auto& s : f_scal) s.assign(static_cast<std::size_t>(n) + 1, 0.0);
  }
};

/// Per-thread reusable pencil.  The sweep driver processes one pencil at a
/// time per thread, so a single thread-local workspace removes ~14 vector
/// allocations per pencil from the hottest loop in the code (hydro is ~2/3
/// of wall time) while keeping pencils private to their executor thread.
inline Pencil& pencil_scratch() {
  thread_local Pencil pc;
  return pc;
}

struct SweepParams {
  double gamma = 5.0 / 3.0;
  bool flattening = true;
  double zeus_viscosity = 2.0;
};

/// PPM: reconstruct, characteristic-window average, two-shock Riemann,
/// fluxes.  Requires ng >= 3.
void ppm_sweep(Pencil& pc, double dt, double dx, const SweepParams& sp);

/// ZEUS-style donor-cell transport fluxes (the source step is applied by the
/// caller grid-wide before the sweeps).  Requires ng >= 2.
void zeus_sweep(Pencil& pc, double dt, double dx, const SweepParams& sp);

}  // namespace enzo::hydro
