#pragma once
// Internal 1-d pencil workspace shared by the PPM and ZEUS sweeps.
//
// Dimensional splitting: for each sweep axis the grid is decomposed into
// stride-friendly 1-d pencils of primitive variables (ρ, normal velocity u,
// transverse velocities, energies, pressure, passive-scalar mass fractions).
// The sweep kernels fill face-flux arrays (face i = lower face of cell i);
// the caller applies the conservative update and scatters the pencil back.
//
// Storage is structure-of-arrays: every lane is a contiguous run carved out
// of one arena block (util::Arena::scratch, 64-byte aligned), with lane
// lengths padded to a multiple of 8 doubles so each lane starts on its own
// cache line.  Bulk gather/scatter through PencilMap replaces per-cell
// strided indexing, and the kernels see plain dense arrays the compiler can
// autovectorize.  reset() zero-fills every lane, so a recycled pencil is
// byte-identical to a freshly constructed one — reuse cannot perturb the
// determinism contract.

#include <cstddef>

#include "mesh/field_storage.hpp"

namespace enzo::hydro {

/// Strided addressing of one 1-d pencil inside an x-fastest 3-d array of
/// shape (nx, ny, nz): element i of the pencil lives at flat index
/// base + i*stride.  j1 is the (axis+1)%3 coordinate and j2 the (axis+2)%3
/// one, matching the sweep driver's pencil enumeration.
struct PencilMap {
  std::ptrdiff_t base = 0;
  std::ptrdiff_t stride = 1;
};

[[nodiscard]] PencilMap pencil_map(int axis, int nx, int ny, int nz, int j1,
                                   int j2);

struct Pencil {
  int n = 0;      ///< total cells including ghosts along the sweep axis
  int ng = 0;     ///< ghost cells on each end
  int nscal = 0;  ///< passive scalar count

  // Cell-centered lanes, length n (padded).  `scal(s)` holds the mass
  // fraction used for reconstruction, `scal_mass(s)` the raw species field
  // value the conservative update advances.
  double *rho = nullptr, *u = nullptr, *vt1 = nullptr, *vt2 = nullptr;
  double *etot = nullptr, *eint = nullptr, *p = nullptr;

  // Face-centered outputs, length n+1 (only faces [ng, n-ng] are filled).
  double *f_rho = nullptr, *f_mu = nullptr, *f_mvt1 = nullptr,
         *f_mvt2 = nullptr, *f_etot = nullptr, *f_eint = nullptr;
  double* ustar = nullptr;  ///< face normal velocity from the Riemann solve

  Pencil();

  [[nodiscard]] double* scal(int s) {
    return scal0_ + static_cast<std::ptrdiff_t>(s) * cs_;
  }
  [[nodiscard]] const double* scal(int s) const {
    return scal0_ + static_cast<std::ptrdiff_t>(s) * cs_;
  }
  [[nodiscard]] double* scal_mass(int s) {
    return smass0_ + static_cast<std::ptrdiff_t>(s) * cs_;
  }
  [[nodiscard]] const double* scal_mass(int s) const {
    return smass0_ + static_cast<std::ptrdiff_t>(s) * cs_;
  }
  [[nodiscard]] double* f_scal(int s) {
    return fscal0_ + static_cast<std::ptrdiff_t>(s) * fs_;
  }
  [[nodiscard]] const double* f_scal(int s) const {
    return fscal0_ + static_cast<std::ptrdiff_t>(s) * fs_;
  }

  /// Zero-fill to the given shape, reusing the block when its size class
  /// still matches and releasing it back to the arena when the shape
  /// shrinks across size classes (so a deck with many scalars followed by
  /// one with none does not pin the larger block in thread-local scratch
  /// for the rest of the process).  Throws for a degenerate active extent
  /// (n_cells - 2*nghost < 1): minimum-size regrid boxes must be rejected
  /// explicitly rather than producing an empty face range that silently
  /// skips the update.
  void reset(int n_cells, int nghost, int nscal);

  /// Rounded capacity of the backing arena block, for the shrink-release
  /// invariant checks in tests.
  [[nodiscard]] std::size_t capacity_doubles() const {
    return buf_.capacity();
  }

  [[nodiscard]] int cell_stride() const { return cs_; }
  [[nodiscard]] int face_stride() const { return fs_; }

 private:
  int cs_ = 0, fs_ = 0;  // padded cell/face lane lengths
  double *scal0_ = nullptr, *smass0_ = nullptr, *fscal0_ = nullptr;
  mesh::Buffer3 buf_;
};

/// Raw x-fastest base pointers of the grid fields one sweep touches, hoisted
/// once per axis by the driver (species points at nscal base pointers).
struct PencilFields {
  double* rho;
  double* vu;  ///< velocity along the sweep axis
  double* v1;  ///< first transverse velocity
  double* v2;  ///< second transverse velocity
  double* etot;
  double* eint;
  double* const* species;
};

/// Bulk gather of one pencil line: copies the conserved lanes, floors eint
/// at zero, derives the pressure lane, and fills both the raw species lane
/// and its mass-fraction companion.  Ghost cells included.
void gather_pencil(Pencil& pc, const PencilFields& f, const PencilMap& m,
                   double gamma, double pressure_floor);

/// Scatter the active cells [ng, n-ng) back to the grid: the updated
/// primitive lanes plus the raw species lanes.  gather→scatter with no
/// sweep/update in between is byte-identical to the original fields
/// wherever eint >= 0 (gather floors the eint lane).
void scatter_pencil(const Pencil& pc, const PencilFields& f,
                    const PencilMap& m);

/// Conservative update of the active cells from the face fluxes, in place on
/// the SoA lanes (the dense-lane twin of the old per-cell grid update):
/// flux-difference the conserved quantities, apply the vacuum guard, add the
/// internal-energy pdV work with the Riemann face velocities, and convert
/// back to primitives.  Species mass lanes are advanced and floored at zero.
void apply_conservative_update(Pencil& pc, double dt, double dx,
                               double density_floor);

/// Per-thread reusable pencil.  The sweep driver processes one pencil at a
/// time per thread, so a single thread-local workspace keeps the hottest
/// loop in the code allocation-free while keeping pencils private to their
/// executor thread.
inline Pencil& pencil_scratch() {
  thread_local Pencil pc;
  return pc;
}

struct SweepParams {
  double gamma = 5.0 / 3.0;
  bool flattening = true;
  double zeus_viscosity = 2.0;
};

/// PPM: reconstruct, characteristic-window average, two-shock Riemann,
/// fluxes.  Requires ng >= 3.
void ppm_sweep(Pencil& pc, double dt, double dx, const SweepParams& sp);

/// ZEUS-style donor-cell transport fluxes (the source step is applied by the
/// caller grid-wide before the sweeps).  Requires ng >= 2.
void zeus_sweep(Pencil& pc, double dt, double dx, const SweepParams& sp);

}  // namespace enzo::hydro
