// SoA pencil workspace: arena-backed lane storage, bulk strided
// gather/scatter between grid fields and the dense lanes, and the
// conservative update over the lanes.  Kernel-facing loops here are written
// branch-free over contiguous arrays so the compiler can autovectorize them
// (tools/check_vec pins that this stays true).

#include "hydro/pencil.hpp"

#include <algorithm>
#include <cmath>

#include "util/annotations.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace enzo::hydro {

namespace {

// Lane lengths are padded to 8 doubles (one cache line) so every lane of the
// 64-byte-aligned arena block starts on its own aligned boundary.
constexpr int kLanePad = 8;

int padded(int len) { return (len + kLanePad - 1) / kLanePad * kLanePad; }

/// Copy n elements from a strided grid line into a dense lane.  The unit
/// stride case (x sweeps) degenerates to memcpy.
ENZO_HOT inline void gather_lane(double* dst, const double* src, int n,
                                 std::ptrdiff_t stride) {
  if (stride == 1) {
    std::copy_n(src, static_cast<std::size_t>(n), dst);
    return;
  }
  for (std::ptrdiff_t i = 0; i < n; ++i) dst[i] = src[i * stride];
}

/// Copy lane elements [lo, hi) back onto the strided grid line.
ENZO_HOT inline void scatter_lane(double* dst, const double* src, int lo,
                                  int hi, std::ptrdiff_t stride) {
  if (stride == 1) {
    std::copy(src + lo, src + hi, dst + lo);
    return;
  }
  for (std::ptrdiff_t i = lo; i < hi; ++i) dst[i * stride] = src[i];
}

}  // namespace

Pencil::Pencil() { buf_.set_arena(&util::Arena::scratch()); }

PencilMap pencil_map(int axis, int nx, int ny, int nz, int j1, int j2) {
  (void)nz;
  const int t1 = (axis + 1) % 3, t2 = (axis + 2) % 3;
  int s[3] = {0, 0, 0};
  s[t1] = j1;
  s[t2] = j2;
  const std::ptrdiff_t strides[3] = {1, nx,
                                     static_cast<std::ptrdiff_t>(nx) * ny};
  PencilMap m;
  m.base = s[0] * strides[0] + s[1] * strides[1] + s[2] * strides[2];
  m.stride = strides[axis];
  return m;
}

void Pencil::reset(int n_cells, int nghost, int ns) {
  ENZO_REQUIRE(nghost >= 0 && ns >= 0, "negative pencil shape");
  ENZO_REQUIRE(n_cells - 2 * nghost >= 1,
               "pencil active extent < 1 cell — the sweep stencil does not "
               "fit this grid axis");
  n = n_cells;
  ng = nghost;
  nscal = ns;
  cs_ = padded(n);
  fs_ = padded(n + 1);
  const std::size_t need =
      static_cast<std::size_t>(7 + 2 * nscal) * static_cast<std::size_t>(cs_) +
      static_cast<std::size_t>(7 + nscal) * static_cast<std::size_t>(fs_);
  // If the new shape's size class is strictly smaller than the held block,
  // release first: Buffer3::resize alone never shrinks, and thread-local
  // scratch would otherwise pin the largest block ever used (e.g. a
  // 12-scalar chemistry deck followed by a pure-hydro one in one process).
  const auto gran = static_cast<std::size_t>(
      util::Arena::scratch().config().granularity);
  const std::size_t rounded = (need + gran - 1) / gran * gran;
  if (buf_.capacity() > rounded) buf_.release();
  // Same-shape fast path: skip the whole-workspace zero fill.  Every lane
  // slot the sweep reads is written earlier in the same pencil iteration
  // (gather fills all cell lanes over [0,n); the sweeps write fluxes/ustar
  // over the full [ng, n-ng] face range the update and accumulation read;
  // padding is never read), so reuse is value-identical to a fresh fill —
  // including across executor chunkings, which keeps the determinism
  // contract.  Profiling showed the per-pencil fill at ~19% of a PPM step.
  if (buf_.size() != need) buf_.resize(static_cast<int>(need), 1, 1, 0.0);

  double* b = buf_.data();
  const auto cs = static_cast<std::ptrdiff_t>(cs_);
  const auto fs = static_cast<std::ptrdiff_t>(fs_);
  rho = b + 0 * cs;
  u = b + 1 * cs;
  vt1 = b + 2 * cs;
  vt2 = b + 3 * cs;
  etot = b + 4 * cs;
  eint = b + 5 * cs;
  p = b + 6 * cs;
  scal0_ = b + 7 * cs;
  smass0_ = scal0_ + nscal * cs;
  double* fb = smass0_ + nscal * cs;
  f_rho = fb + 0 * fs;
  f_mu = fb + 1 * fs;
  f_mvt1 = fb + 2 * fs;
  f_mvt2 = fb + 3 * fs;
  f_etot = fb + 4 * fs;
  f_eint = fb + 5 * fs;
  ustar = fb + 6 * fs;
  fscal0_ = fb + 7 * fs;
}

ENZO_HOT void gather_pencil(Pencil& pc, const PencilFields& f,
                            const PencilMap& m, double gamma,
                            double pressure_floor) {
  const int n = pc.n;
  const std::ptrdiff_t st = m.stride;
  gather_lane(pc.rho, f.rho + m.base, n, st);
  gather_lane(pc.u, f.vu + m.base, n, st);
  gather_lane(pc.vt1, f.v1 + m.base, n, st);
  gather_lane(pc.vt2, f.v2 + m.base, n, st);
  gather_lane(pc.etot, f.etot + m.base, n, st);
  gather_lane(pc.eint, f.eint + m.base, n, st);
  // Derived lanes over dense data: floor eint, equation-of-state pressure.
  double* __restrict ei = pc.eint;
  double* __restrict p = pc.p;
  const double* __restrict rho = pc.rho;
  const double gm1 = gamma - 1.0;
  for (int i = 0; i < n; ++i) {
    const double e = std::max(ei[i], 0.0);
    ei[i] = e;
    p[i] = std::max(gm1 * rho[i] * e, pressure_floor);
  }
  for (int s = 0; s < pc.nscal; ++s) {
    double* __restrict sm = pc.scal_mass(s);
    double* __restrict fr = pc.scal(s);
    gather_lane(sm, f.species[s] + m.base, n, st);
    for (int i = 0; i < n; ++i) fr[i] = sm[i] / rho[i];
  }
}

ENZO_HOT void scatter_pencil(const Pencil& pc, const PencilFields& f,
                             const PencilMap& m) {
  const int lo = pc.ng, hi = pc.n - pc.ng;
  const std::ptrdiff_t st = m.stride;
  scatter_lane(f.rho + m.base, pc.rho, lo, hi, st);
  scatter_lane(f.vu + m.base, pc.u, lo, hi, st);
  scatter_lane(f.v1 + m.base, pc.vt1, lo, hi, st);
  scatter_lane(f.v2 + m.base, pc.vt2, lo, hi, st);
  scatter_lane(f.etot + m.base, pc.etot, lo, hi, st);
  scatter_lane(f.eint + m.base, pc.eint, lo, hi, st);
  for (int s = 0; s < pc.nscal; ++s)
    scatter_lane(f.species[s] + m.base, pc.scal_mass(s), lo, hi, st);
}

ENZO_HOT void apply_conservative_update(Pencil& pc, double dt, double dx,
                                        double density_floor) {
  const double dtdx = dt / dx;
  const int lo = pc.ng, hi = pc.n - pc.ng;
  double* __restrict rho = pc.rho;
  double* __restrict u = pc.u;
  double* __restrict vt1 = pc.vt1;
  double* __restrict vt2 = pc.vt2;
  double* __restrict etot = pc.etot;
  double* __restrict eint = pc.eint;
  const double* __restrict p = pc.p;
  const double* __restrict f_rho = pc.f_rho;
  const double* __restrict f_mu = pc.f_mu;
  const double* __restrict f_mvt1 = pc.f_mvt1;
  const double* __restrict f_mvt2 = pc.f_mvt2;
  const double* __restrict f_etot = pc.f_etot;
  const double* __restrict f_eint = pc.f_eint;
  const double* __restrict ustar = pc.ustar;
  for (int i = lo; i < hi; ++i) {
    const double m0 = rho[i];
    double m = m0 + dtdx * (f_rho[i] - f_rho[i + 1]);
    // Vacuum guard: a cell emptied below a tiny fraction of its prior
    // density would turn the specific-variable divisions into velocity
    // blow-ups; clamp relative to the pre-step value.
    m = std::max(m, std::max(density_floor, 1e-8 * m0));
    const double mu = m0 * u[i] + dtdx * (f_mu[i] - f_mu[i + 1]);
    const double m1 = m0 * vt1[i] + dtdx * (f_mvt1[i] - f_mvt1[i + 1]);
    const double m2 = m0 * vt2[i] + dtdx * (f_mvt2[i] - f_mvt2[i + 1]);
    const double me = m0 * etot[i] + dtdx * (f_etot[i] - f_etot[i + 1]);
    double mei = m0 * eint[i] + dtdx * (f_eint[i] - f_eint[i + 1]);
    // Internal-energy pdV work with the Riemann face velocities.
    mei -= dt * p[i] * (ustar[i + 1] - ustar[i]) / dx;
    mei = std::max(mei, 0.0);
    rho[i] = m;
    u[i] = mu / m;
    vt1[i] = m1 / m;
    vt2[i] = m2 / m;
    etot[i] = me / m;
    eint[i] = mei / m;
  }
  for (int s = 0; s < pc.nscal; ++s) {
    double* __restrict sm = pc.scal_mass(s);
    const double* __restrict fs = pc.f_scal(s);
    for (int i = lo; i < hi; ++i)
      sm[i] = std::max(sm[i] + dtdx * (fs[i] - fs[i + 1]), 0.0);
  }
}

}  // namespace enzo::hydro
