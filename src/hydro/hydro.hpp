#pragma once
// Hydrodynamics on one grid (§3.2.1).
//
// Two solvers, as in the paper: the piecewise parabolic method (PPM,
// Woodward & Colella 1984) adapted for comoving cosmological coordinates
// (Bryan et al. 1995), and a robust ZEUS-style finite-difference scheme
// (Stone & Norman 1992) as an independent cross-check ("This allows us a
// double check on any result").
//
// Formulation: comoving positions x, comoving density ρ_c = ρ a³, peculiar
// velocity v.  The flux-divergence terms acquire a 1/a factor — implemented
// by handing the solvers the *proper* cell width a·Δx — and the expansion
// contributes operator-split source terms: Hubble drag dv/dt = −(ȧ/a)v and
// adiabatic loss de/dt = −3(γ−1)(ȧ/a)e.  With a = 1, ȧ = 0 everything
// reduces to the standard Euler equations for the test problems.
//
// The dual energy formalism tracks specific internal energy alongside total
// energy so that pressure remains accurate in strongly kinetic flows
// (Mach >> 1 infall, exactly the §4 accretion regime).

#include "cosmology/units.hpp"
#include "mesh/grid.hpp"

namespace enzo::exec {
class LevelExecutor;
}

namespace enzo::hydro {

enum class Solver { kPpm, kZeus };

struct HydroParams {
  Solver solver = Solver::kPpm;
  double gamma = 5.0 / 3.0;
  double cfl = 0.4;
  /// Dual-energy selection: use (E − v²/2) when it exceeds eta1 × E.
  double dual_energy_eta1 = 1e-3;
  double density_floor = 1e-30;
  double pressure_floor = 1e-30;
  /// PPM shock flattening on/off.
  bool flattening = true;
  /// ZEUS quadratic artificial viscosity coefficient (in cells).
  double zeus_viscosity = 2.0;
  /// Maximum fractional expansion per step: dt ≤ max_expansion / (ȧ/a).
  double max_expansion = 0.02;
};

/// Which constraint set a timestep — recorded in the per-step diagnostics
/// (the driver adds the non-hydro limiters: particles, stop time, and the
/// catch-up clamp onto the parent's window).
enum class DtLimiter {
  kNone,
  kCfl,           ///< sound-crossing / bulk-velocity CFL condition
  kExpansion,     ///< max fractional expansion per step
  kAcceleration,  ///< gravitational free-fall across a cell
  kParticle,      ///< N-body particle CFL
  kStopTime,      ///< clamped to land on the requested stop time
  kParentWindow,  ///< clamped to land on the parent level's time
};
const char* dt_limiter_name(DtLimiter lim);

struct TimestepInfo {
  double dt = 0.0;
  DtLimiter limiter = DtLimiter::kNone;
};

/// CFL-limited timestep for this grid (code time units), including the
/// expansion and acceleration constraints, with the binding limiter
/// identified.  Uses ghost-free active cells.
TimestepInfo compute_timestep_info(const mesh::Grid& g,
                                   const HydroParams& params,
                                   const cosmology::Expansion& exp);

inline double compute_timestep(const mesh::Grid& g, const HydroParams& params,
                               const cosmology::Expansion& exp) {
  return compute_timestep_info(g, params, exp).dt;
}

/// Advance the grid's baryon fields by dt: directional sweeps (recording
/// time-integrated conserved face fluxes into the grid's flux registers),
/// then expansion sources, then dual-energy synchronization and floors.
/// Ghost zones must be current (SetBoundaryValues).  Gravity sources are
/// applied separately by apply_gravity_sources after the gravity solve.
/// `ex` (optional) chunks the independent pencil sweeps via the executor's
/// nested parallel_for; nullptr runs them inline.
void solve_hydro_step(mesh::Grid& g, double dt, const HydroParams& params,
                      const cosmology::Expansion& exp,
                      exec::LevelExecutor* ex = nullptr);

/// Kick velocities with the grid's acceleration field and re-sync total
/// energy; call after the Poisson solve each step.
void apply_gravity_sources(mesh::Grid& g, double dt,
                           const HydroParams& params);

/// Gas pressure of the active+ghost cells from the dual-energy-selected
/// internal energy (utility for chemistry/analysis/timestep).
double cell_pressure(const mesh::Grid& g, int si, int sj, int sk,
                     const HydroParams& params);

}  // namespace enzo::hydro
