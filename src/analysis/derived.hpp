#pragma once
// Derived quantities and object finding (§6).
//
// "Our analysis routines ... range from computing direct hydrodynamical
// quantities, such as temperatures and densities, to derived quantities like
// cooling times, two-body relaxation times, X-ray luminosities and inertial
// tensors.  To study flattened objects such as galactic or proto stellar
// disks versatile routines to find such objects and derive projections,
// surface densities and other useful diagnostic quantities were created."
//
// Every routine masks coarse cells covered by finer grids so each physical
// location contributes exactly once.

#include <array>
#include <vector>

#include "chemistry/chemistry.hpp"
#include "hydro/hydro.hpp"
#include "mesh/hierarchy.hpp"

namespace enzo::analysis {

/// Cooling time field statistics over a spherical region: t_cool = ρe/Λ per
/// cell (code-time units); returns {min, mass-weighted mean}.
struct CoolingTimeStats {
  double min = 0;
  double mass_weighted_mean = 0;
  std::int64_t cells = 0;
};
CoolingTimeStats cooling_time_in_sphere(const mesh::Hierarchy& h,
                                        const ext::PosVec& center,
                                        double radius,
                                        const chemistry::ChemistryParams& cp,
                                        const chemistry::ChemUnits& units);

/// Two-body relaxation time of the N-body particles inside a sphere
/// (Binney & Tremaine: t_relax ≈ N/(8 lnN) · t_cross), in code time.
/// Quantifies whether collisionless dynamics are numerically collisional —
/// the §6 diagnostic for trustworthy DM structure.
double two_body_relaxation_time(const mesh::Hierarchy& h,
                                const ext::PosVec& center, double radius);

/// Thermal bremsstrahlung X-ray luminosity of a spherical region (erg/s):
/// L_X = ∫ 1.42e-27 √T g_ff n_e (n_HII + n_HeII + 4 n_HeIII) dV.
double xray_luminosity(const mesh::Hierarchy& h, const ext::PosVec& center,
                       double radius, const chemistry::ChemistryParams& cp,
                       const chemistry::ChemUnits& units,
                       double length_cm_per_code);

/// Gas inertia tensor about a center within a sphere (code units); the
/// eigen-structure distinguishes spheres from pancakes/filaments/disks.
struct InertiaTensor {
  std::array<std::array<double, 3>, 3> I{};
  double mass = 0;
  /// Eigenvalues ascending (principal moments), from the cyclic Jacobi
  /// method — axis ratios follow from sqrt ratios.
  std::array<double, 3> eigenvalues() const;
  /// Sphericity proxy: smallest/largest principal moment (1 = sphere).
  double sphericity() const;
};
InertiaTensor gas_inertia_tensor(const mesh::Hierarchy& h,
                                 const ext::PosVec& center, double radius);

/// Surface density projection along an axis: an n×n map of ∫ρ dl through
/// the whole domain at the finest available resolution (§6 "projections,
/// surface densities").
struct Projection {
  int n = 0;
  std::vector<double> sigma;  ///< row-major n×n, code units (ρ × length)
  double min = 0, max = 0;
};
Projection surface_density(const mesh::Hierarchy& h, int axis, int n);

/// Connected collapsed objects ("finding collapsed objects and other
/// regions of interest"): cells above an overdensity threshold are grouped
/// by 6-connectivity on the finest-coverage map at the given level's
/// resolution.
struct Clump {
  ext::PosVec center{};
  double mass = 0;
  double peak_density = 0;
  std::int64_t cells = 0;
};
std::vector<Clump> find_clumps(const mesh::Hierarchy& h,
                               double density_threshold, int map_level = 0);

}  // namespace enzo::analysis
