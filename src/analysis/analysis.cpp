#include "analysis/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace enzo::analysis {

using mesh::Field;
using mesh::Grid;

namespace {

/// Boxes of a grid's children in the grid's own index space (coarsened).
std::vector<mesh::IndexBox> child_footprints(const mesh::Hierarchy& h,
                                             const Grid& g) {
  std::vector<mesh::IndexBox> out;
  for (const Grid* c : h.grids(g.level() + 1)) {
    if (c->parent() != &g) continue;
    int rd[3];
    mesh::IndexBox foot;
    for (int d = 0; d < 3; ++d) {
      rd[d] = static_cast<int>(c->spec().level_dims[d] /
                               g.spec().level_dims[d]);
      foot.lo[d] = c->box().lo[d] / rd[d];
      foot.hi[d] = c->box().hi[d] / rd[d];
    }
    out.push_back(foot);
  }
  return out;
}

bool covered(const std::vector<mesh::IndexBox>& foots, std::int64_t gi,
             std::int64_t gj, std::int64_t gk) {
  for (const auto& b : foots)
    if (b.contains(mesh::Index3{gi, gj, gk})) return true;
  return false;
}

/// Minimum-image separation along one axis (code units).
double sep(ext::pos_t x, ext::pos_t c, bool periodic) {
  double d = ext::pos_to_double(x - c);
  if (periodic) {
    if (d > 0.5) d -= 1.0;
    if (d < -0.5) d += 1.0;
  }
  return d;
}

}  // namespace

Peak find_densest_point(const mesh::Hierarchy& h) {
  Peak best;
  best.density = -1.0;
  for (int l = 0; l <= h.deepest_level(); ++l) {
    for (const Grid* g : h.grids(l)) {
      const auto foots = child_footprints(h, *g);
      const auto& rho = g->field(Field::kDensity);
      for (int k = 0; k < g->nx(2); ++k)
        for (int j = 0; j < g->nx(1); ++j)
          for (int i = 0; i < g->nx(0); ++i) {
            if (covered(foots, g->box().lo[0] + i, g->box().lo[1] + j,
                        g->box().lo[2] + k))
              continue;
            const double v = rho(g->sx(i), g->sy(j), g->sz(k));
            if (v > best.density) {
              best.density = v;
              best.position = g->cell_center(i, j, k);
              best.level = l;
            }
          }
    }
  }
  ENZO_REQUIRE(best.density >= 0, "empty hierarchy in find_densest_point");
  return best;
}

RadialProfile radial_profile(const mesh::Hierarchy& h, const ext::PosVec& c,
                             const ProfileOptions& opt,
                             const hydro::HydroParams& hp,
                             const chemistry::ChemUnits& units) {
  RadialProfile p;
  const int nb = opt.nbins;
  p.r.resize(nb);
  const double lmin = std::log10(opt.r_min), lmax = std::log10(opt.r_max);
  const double dl = (lmax - lmin) / nb;
  for (int b = 0; b < nb; ++b) p.r[b] = std::pow(10.0, lmin + (b + 0.5) * dl);
  std::vector<double> mass(nb, 0), volume(nb, 0), m_T(nb, 0), m_vr(nb, 0),
      m_cs(nb, 0), m_h2(nb, 0), m_hi(nb, 0), dm_mass(nb, 0), count(nb, 0);

  auto bin_of = [&](double r) -> int {
    if (r <= 0) return -1;
    const int b = static_cast<int>((std::log10(r) - lmin) / dl);
    return (b >= 0 && b < nb) ? b : -1;
  };

  const bool chem = !h.grids(0).empty() &&
                    h.grids(0)[0]->has_field(Field::kH2I);
  chemistry::ChemistryParams cp;
  cp.gamma = hp.gamma;

  for (int l = 0; l <= h.deepest_level(); ++l) {
    for (const Grid* g : h.grids(l)) {
      const auto foots = child_footprints(h, *g);
      double vol = 1.0;
      for (int d = 0; d < 3; ++d)
        vol *= 1.0 / static_cast<double>(g->spec().level_dims[d]);
      const auto& rho = g->field(Field::kDensity);
      for (int k = 0; k < g->nx(2); ++k)
        for (int j = 0; j < g->nx(1); ++j)
          for (int i = 0; i < g->nx(0); ++i) {
            if (covered(foots, g->box().lo[0] + i, g->box().lo[1] + j,
                        g->box().lo[2] + k))
              continue;
            const auto x = g->cell_center(i, j, k);
            const double dx0 = sep(x[0], c[0], opt.periodic);
            const double dx1 = sep(x[1], c[1], opt.periodic);
            const double dx2 = sep(x[2], c[2], opt.periodic);
            const double r =
                std::sqrt(dx0 * dx0 + dx1 * dx1 + dx2 * dx2);
            const int b = bin_of(r);
            if (b < 0) continue;
            const int si = g->sx(i), sj = g->sy(j), sk = g->sz(k);
            const double m = rho(si, sj, sk) * vol;
            mass[b] += m;
            volume[b] += vol;
            count[b] += 1;
            // Radial velocity.
            const double vr =
                r > 0 ? (g->field(Field::kVelocityX)(si, sj, sk) * dx0 +
                         g->field(Field::kVelocityY)(si, sj, sk) * dx1 +
                         g->field(Field::kVelocityZ)(si, sj, sk) * dx2) /
                            r
                      : 0.0;
            m_vr[b] += m * vr;
            const double ei =
                std::max(g->field(Field::kInternalEnergy)(si, sj, sk), 0.0);
            const double cs = std::sqrt(hp.gamma * (hp.gamma - 1.0) * ei);
            m_cs[b] += m * cs;
            double T;
            if (chem) {
              T = chemistry::cell_temperature(*g, si, sj, sk, cp, units);
              const double rH = cp.hydrogen_fraction * rho(si, sj, sk);
              m_h2[b] += m * g->field(Field::kH2I)(si, sj, sk) / rH;
              m_hi[b] += m * g->field(Field::kHI)(si, sj, sk) / rH;
            } else {
              T = (hp.gamma - 1.0) * ei * units.e_cgs * opt.mu_fallback *
                  constants::kHydrogenMass / constants::kBoltzmann;
            }
            m_T[b] += m * T;
          }
      // Dark matter.
      for (const mesh::Particle& part : g->particles()) {
        const double dx0 = sep(part.x[0], c[0], opt.periodic);
        const double dx1 = sep(part.x[1], c[1], opt.periodic);
        const double dx2 = sep(part.x[2], c[2], opt.periodic);
        const int b =
            bin_of(std::sqrt(dx0 * dx0 + dx1 * dx1 + dx2 * dx2));
        if (b >= 0) dm_mass[b] += part.mass;
      }
    }
  }

  p.gas_density.resize(nb);
  p.dm_density.resize(nb);
  p.temperature.resize(nb);
  p.v_radial.resize(nb);
  p.sound_speed.resize(nb);
  p.h2_fraction.resize(nb);
  p.hi_fraction.resize(nb);
  p.enclosed_gas_mass.resize(nb);
  p.cell_count = count;
  double cum = 0;
  for (int b = 0; b < nb; ++b) {
    const double m = mass[b];
    p.gas_density[b] = volume[b] > 0 ? m / volume[b] : 0.0;
    p.temperature[b] = m > 0 ? m_T[b] / m : 0.0;
    p.v_radial[b] = m > 0 ? m_vr[b] / m : 0.0;
    p.sound_speed[b] = m > 0 ? m_cs[b] / m : 0.0;
    p.h2_fraction[b] = m > 0 ? m_h2[b] / m : 0.0;
    p.hi_fraction[b] = m > 0 ? m_hi[b] / m : 0.0;
    // Shell volume for DM density.
    const double r_lo = std::pow(10.0, lmin + b * dl);
    const double r_hi = std::pow(10.0, lmin + (b + 1) * dl);
    const double shell =
        4.0 / 3.0 * constants::kPi * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    p.dm_density[b] = dm_mass[b] / shell;
    cum += m;
    p.enclosed_gas_mass[b] = cum;
  }
  return p;
}

Slice density_slice(const mesh::Hierarchy& h, int axis, ext::pos_t coord,
                    const std::array<double, 2>& center2d, double half,
                    int n) {
  Slice s;
  s.n = n;
  s.log10_density.assign(static_cast<std::size_t>(n) * n, 0.0);
  s.min_log = 1e300;
  s.max_log = -1e300;
  const int a1 = (axis + 1) % 3, a2 = (axis + 2) % 3;

  for (int v = 0; v < n; ++v) {
    for (int u = 0; u < n; ++u) {
      ext::PosVec x;
      x[axis] = ext::fmod_pos(coord, ext::pos_t(1.0));
      const double xu = center2d[0] - half + (u + 0.5) * (2 * half / n);
      const double xv = center2d[1] - half + (v + 0.5) * (2 * half / n);
      x[a1] = ext::fmod_pos(ext::pos_t(xu), ext::pos_t(1.0));
      x[a2] = ext::fmod_pos(ext::pos_t(xv), ext::pos_t(1.0));
      // Finest grid containing the point.
      const Grid* best = nullptr;
      for (int l = h.deepest_level(); l >= 0 && !best; --l)
        for (const Grid* g : h.grids(l))
          if (g->contains_position(x)) {
            best = g;
            break;
          }
      ENZO_REQUIRE(best != nullptr, "slice point outside hierarchy");
      s.finest_level_touched = std::max(s.finest_level_touched, best->level());
      int idx[3];
      for (int d = 0; d < 3; ++d) {
        idx[d] = static_cast<int>(best->local_index_of(x[d], d));
        idx[d] = std::clamp(idx[d], 0, best->nx(d) - 1);
      }
      const double rho = best->field(Field::kDensity)(
          best->sx(idx[0]), best->sy(idx[1]), best->sz(idx[2]));
      const double lg = std::log10(std::max(rho, 1e-300));
      s.log10_density[static_cast<std::size_t>(v) * n + u] = lg;
      s.min_log = std::min(s.min_log, lg);
      s.max_log = std::max(s.max_log, lg);
    }
  }
  return s;
}

HierarchyStats hierarchy_stats(const mesh::Hierarchy& h) {
  HierarchyStats s;
  s.max_level = h.deepest_level();
  s.total_grids = h.total_grids();
  s.total_cells = h.total_cells();
  s.grids_per_level = h.grids_per_level();
  s.work_per_level = h.work_per_level();
  const double wmax =
      s.work_per_level.empty()
          ? 1.0
          : *std::max_element(s.work_per_level.begin(), s.work_per_level.end());
  if (wmax > 0)
    for (double& w : s.work_per_level) w /= wmax;
  return s;
}

}  // namespace enzo::analysis
