#include "analysis/reference.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"
#include "util/error.hpp"

namespace enzo::analysis {

namespace cn = constants;

// ---- exact Riemann solution -----------------------------------------------

namespace {

/// Toro's f_K(p): velocity change across the left/right wave for a trial
/// star pressure, plus its derivative.
void pressure_function(double p, double rho_k, double p_k, double gamma,
                       double* f, double* df) {
  if (p > p_k) {  // shock
    const double a_k = 2.0 / ((gamma + 1.0) * rho_k);
    const double b_k = (gamma - 1.0) / (gamma + 1.0) * p_k;
    const double q = std::sqrt(a_k / (p + b_k));
    *f = (p - p_k) * q;
    *df = q * (1.0 - 0.5 * (p - p_k) / (p + b_k));
  } else {  // rarefaction
    const double c_k = std::sqrt(gamma * p_k / rho_k);
    const double pr = p / p_k;
    *f = 2.0 * c_k / (gamma - 1.0) *
         (std::pow(pr, (gamma - 1.0) / (2.0 * gamma)) - 1.0);
    *df = 1.0 / (rho_k * c_k) * std::pow(pr, -(gamma + 1.0) / (2.0 * gamma));
  }
}

}  // namespace

RiemannStar solve_riemann_star(const RiemannStates& s) {
  const double g = s.gamma;
  const double c_l = std::sqrt(g * s.p_l / s.rho_l);
  const double c_r = std::sqrt(g * s.p_r / s.rho_r);
  ENZO_REQUIRE(2.0 * (c_l + c_r) / (g - 1.0) > s.u_r - s.u_l,
               "Riemann input generates vacuum");
  // Two-rarefaction initial guess (exact when both waves are fans).
  const double z = (g - 1.0) / (2.0 * g);
  double p = std::pow((c_l + c_r - 0.5 * (g - 1.0) * (s.u_r - s.u_l)) /
                          (c_l / std::pow(s.p_l, z) + c_r / std::pow(s.p_r, z)),
                      1.0 / z);
  p = std::max(p, 1e-14 * std::min(s.p_l, s.p_r));
  for (int it = 0; it < 64; ++it) {
    double f_l, df_l, f_r, df_r;
    pressure_function(p, s.rho_l, s.p_l, g, &f_l, &df_l);
    pressure_function(p, s.rho_r, s.p_r, g, &f_r, &df_r);
    const double f = f_l + f_r + (s.u_r - s.u_l);
    const double step = f / (df_l + df_r);
    const double p_new = std::max(p - step, 1e-14 * p);
    const bool done = std::abs(p_new - p) < 1e-14 * (p_new + p);
    p = p_new;
    if (done) break;
  }
  double f_l, df_l, f_r, df_r;
  pressure_function(p, s.rho_l, s.p_l, g, &f_l, &df_l);
  pressure_function(p, s.rho_r, s.p_r, g, &f_r, &df_r);
  return {p, 0.5 * (s.u_l + s.u_r) + 0.5 * (f_r - f_l)};
}

RiemannPoint sample_riemann(const RiemannStates& s, double xi) {
  const double g = s.gamma;
  const RiemannStar star = solve_riemann_star(s);
  const double gm = g - 1.0, gp = g + 1.0;

  if (xi <= star.u) {
    // Left of the contact.
    const double c_l = std::sqrt(g * s.p_l / s.rho_l);
    if (star.p > s.p_l) {  // left shock
      const double pr = star.p / s.p_l;
      const double sh = s.u_l - c_l * std::sqrt((gp * pr + gm) / (2.0 * g));
      if (xi <= sh) return {s.rho_l, s.u_l, s.p_l};
      return {s.rho_l * (pr + gm / gp) / (gm / gp * pr + 1.0), star.u, star.p};
    }
    // Left rarefaction.
    const double c_star = c_l * std::pow(star.p / s.p_l, gm / (2.0 * g));
    const double head = s.u_l - c_l;
    const double tail = star.u - c_star;
    if (xi <= head) return {s.rho_l, s.u_l, s.p_l};
    if (xi >= tail)
      return {s.rho_l * std::pow(star.p / s.p_l, 1.0 / g), star.u, star.p};
    const double c = (2.0 * c_l + gm * (s.u_l - xi)) / gp;  // inside the fan
    const double u = xi + c;
    const double rho = s.rho_l * std::pow(c / c_l, 2.0 / gm);
    return {rho, u, rho * c * c / g};
  }

  // Right of the contact (mirror).
  const double c_r = std::sqrt(g * s.p_r / s.rho_r);
  if (star.p > s.p_r) {  // right shock
    const double pr = star.p / s.p_r;
    const double sh = s.u_r + c_r * std::sqrt((gp * pr + gm) / (2.0 * g));
    if (xi >= sh) return {s.rho_r, s.u_r, s.p_r};
    return {s.rho_r * (pr + gm / gp) / (gm / gp * pr + 1.0), star.u, star.p};
  }
  // Right rarefaction.
  const double c_star = c_r * std::pow(star.p / s.p_r, gm / (2.0 * g));
  const double head = s.u_r + c_r;
  const double tail = star.u + c_star;
  if (xi >= head) return {s.rho_r, s.u_r, s.p_r};
  if (xi <= tail)
    return {s.rho_r * std::pow(star.p / s.p_r, 1.0 / g), star.u, star.p};
  const double c = (2.0 * c_r - gm * (s.u_r - xi)) / gp;
  const double u = xi - c;
  const double rho = s.rho_r * std::pow(c / c_r, 2.0 / gm);
  return {rho, u, rho * c * c / g};
}

// ---- Sedov–Taylor similarity solution -------------------------------------
//
// Ansatz (spherical, uniform cold ambient rho0, R(t) ~ t^{2/5}):
//   u = (2 r / 5 t) V(xi),  c^2 = (4 r^2 / 25 t^2) C(xi),  rho = rho0 G(xi)
// with xi = r/R.  Substituting into the Euler equations gives, with
// s = ln xi, a linear system for (dV/ds, d lnG/ds, d lnC/ds):
//
//   (1) dV/ds + (V-1) dlnG/ds                    = -3V
//   (2) (V-1) dV/ds + (C/gamma)(dlnG + dlnC)/ds = -V(V-5/2) - 2C/gamma
//   (3) (1-gamma) dlnG/ds + dlnC/ds             = (5-2V)/(V-1)
//
// integrated from the strong-shock jump at xi = 1 (V = 2/(gamma+1),
// G = (gamma+1)/(gamma-1), C = 2 gamma (gamma-1)/(gamma+1)^2) inward.  The
// blast coefficient follows from energy conservation,
//   E = 4 pi rho0 (4/25)(R^5/t^2) I,   I = int_0^1 G xi^4 [V^2/2
//        + C/(gamma(gamma-1))] dxi,
// so beta = (25 / (16 pi I))^{1/5}.

SedovSolution::SedovSolution(double gamma, int table_points) : gamma_(gamma) {
  ENZO_REQUIRE(gamma > 1.0 && gamma < 3.0, "SedovSolution: gamma out of range");
  ENZO_REQUIRE(table_points >= 16, "SedovSolution: table too small");
  const double gm = gamma - 1.0, gp = gamma + 1.0;

  double v = 2.0 / gp;
  double ln_g = std::log(gp / gm);
  double ln_c = std::log(2.0 * gamma * gm / (gp * gp));

  // RK4 derivative of (V, lnG, lnC) with respect to s = ln xi.
  auto deriv = [&](const double y[3], double dy[3]) {
    const double V = y[0], C = std::exp(y[2]);
    const double vm1 = V - 1.0;
    // Eliminate dlnC via (3), then dV via (1):
    //   dlnG [C - (V-1)^2] = RHS2' + 3V(V-1)
    const double rhs2 = -V * (V - 2.5) - 2.0 * C / gamma -
                        (C / gamma) * (5.0 - 2.0 * V) / vm1;
    const double b = (rhs2 + 3.0 * V * vm1) / (C - vm1 * vm1);
    dy[1] = b;
    dy[0] = -3.0 * V - vm1 * b;
    dy[2] = (5.0 - 2.0 * V) / vm1 - (1.0 - gamma) * b;
  };

  const double s_min = std::log(1e-4);
  const int steps = 8192;
  const double ds = s_min / steps;  // negative: integrate inward

  xi_.resize(table_points);
  g_.resize(table_points);
  // Table rows at geometrically spaced xi; row table_points-1 is the shock.
  auto table_s = [&](int row) {
    return s_min * (1.0 - static_cast<double>(row) / (table_points - 1));
  };

  double y[3] = {v, ln_g, ln_c};
  int row = table_points - 1;
  xi_[row] = 1.0;
  g_[row] = std::exp(ln_g);
  --row;
  // Energy integral accumulated alongside (trapezoid in xi).
  auto integrand = [&](double s, const double yy[3]) {
    const double xi = std::exp(s);
    const double G = std::exp(yy[1]), C = std::exp(yy[2]);
    return G * std::pow(xi, 4) *
           (0.5 * yy[0] * yy[0] + C / (gamma * gm));
  };
  double I = 0.0;
  double s = 0.0;
  double prev_xi = 1.0, prev_f = integrand(0.0, y);
  for (int n = 0; n < steps; ++n) {
    double k1[3], k2[3], k3[3], k4[3], yt[3];
    deriv(y, k1);
    for (int i = 0; i < 3; ++i) yt[i] = y[i] + 0.5 * ds * k1[i];
    deriv(yt, k2);
    for (int i = 0; i < 3; ++i) yt[i] = y[i] + 0.5 * ds * k2[i];
    deriv(yt, k3);
    for (int i = 0; i < 3; ++i) yt[i] = y[i] + ds * k3[i];
    deriv(yt, k4);
    for (int i = 0; i < 3; ++i)
      y[i] += ds / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    s += ds;
    const double xi = std::exp(s);
    const double f = integrand(s, y);
    I += 0.5 * (prev_f + f) * (prev_xi - xi);
    prev_xi = xi;
    prev_f = f;
    while (row >= 0 && s <= table_s(row)) {
      xi_[row] = xi;
      g_[row] = std::exp(y[1]);
      --row;
    }
  }
  while (row >= 0) {  // deepest rows: density is ~0 there
    xi_[row] = std::exp(table_s(row));
    g_[row] = std::exp(y[1]);
    --row;
  }
  beta_ = std::pow(25.0 / (16.0 * cn::kPi * I), 0.2);
}

double SedovSolution::shock_radius(double t, double energy, double rho0) const {
  return beta_ * std::pow(energy * t * t / rho0, 0.2);
}

double SedovSolution::density_ratio(double xi) const {
  if (xi > 1.0) return 1.0;
  if (xi <= xi_.front()) return g_.front();
  const auto it = std::lower_bound(xi_.begin(), xi_.end(), xi);
  const std::size_t hi = static_cast<std::size_t>(it - xi_.begin());
  const std::size_t lo = hi - 1;
  const double w = (xi - xi_[lo]) / (xi_[hi] - xi_[lo]);
  return g_[lo] + w * (g_[hi] - g_[lo]);
}

double SedovSolution::density(double r, double t, double energy,
                              double rho0) const {
  const double rs = shock_radius(t, energy, rho0);
  return rho0 * density_ratio(r / rs);
}

// ---- Zel'dovich pancake ---------------------------------------------------

namespace {
double psi_of_q(double amp, double q) { return -amp * std::sin(cn::kTwoPi * q); }
}  // namespace

double zeldovich_lagrangian_q(const ZeldovichMode& m, double x) {
  x -= std::floor(x);
  ENZO_REQUIRE(m.growth * cn::kTwoPi * m.amplitude < 1.0,
               "zeldovich_lagrangian_q: past the caustic");
  double q = x;
  for (int it = 0; it < 64; ++it) {
    const double f = q + m.growth * psi_of_q(m.amplitude, q) - x;
    const double df =
        1.0 - m.growth * m.amplitude * cn::kTwoPi * std::cos(cn::kTwoPi * q);
    const double step = f / df;
    q -= step;
    if (std::abs(step) < 1e-15) break;
  }
  return q;
}

double zeldovich_delta(const ZeldovichMode& m, double x) {
  const double q = zeldovich_lagrangian_q(m, x);
  const double jac =
      1.0 - m.growth * m.amplitude * cn::kTwoPi * std::cos(cn::kTwoPi * q);
  return 1.0 / jac - 1.0;
}

double zeldovich_psi(const ZeldovichMode& m, double x) {
  return psi_of_q(m.amplitude, zeldovich_lagrangian_q(m, x));
}

}  // namespace enzo::analysis
