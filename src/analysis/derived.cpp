#include "analysis/derived.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "chemistry/rates.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

namespace enzo::analysis {

using mesh::Field;
using mesh::Grid;

namespace {

/// Child footprints in the grid's own index space (duplicated from
/// analysis.cpp's internals to keep both translation units self-contained).
std::vector<mesh::IndexBox> child_feet(const mesh::Hierarchy& h,
                                       const Grid& g) {
  std::vector<mesh::IndexBox> out;
  for (const Grid* c : h.grids(g.level() + 1)) {
    if (c->parent() != &g) continue;
    mesh::IndexBox foot;
    for (int d = 0; d < 3; ++d) {
      const auto rd = c->spec().level_dims[d] / g.spec().level_dims[d];
      foot.lo[d] = c->box().lo[d] / rd;
      foot.hi[d] = c->box().hi[d] / rd;
    }
    out.push_back(foot);
  }
  return out;
}

bool in_feet(const std::vector<mesh::IndexBox>& feet, std::int64_t i,
             std::int64_t j, std::int64_t k) {
  for (const auto& b : feet)
    if (b.contains(mesh::Index3{i, j, k})) return true;
  return false;
}

double sep(ext::pos_t x, ext::pos_t c, bool periodic) {
  double d = ext::pos_to_double(x - c);
  if (periodic) {
    if (d > 0.5) d -= 1.0;
    if (d < -0.5) d += 1.0;
  }
  return d;
}

/// Visit every uncovered active cell once: fn(grid, i, j, k, cellvol).
template <typename F>
void for_each_unique_cell(const mesh::Hierarchy& h, F&& fn) {
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const Grid* g : h.grids(l)) {
      const auto feet = child_feet(h, *g);
      double vol = 1.0;
      for (int d = 0; d < 3; ++d)
        vol *= 1.0 / static_cast<double>(g->spec().level_dims[d]);
      for (int k = 0; k < g->nx(2); ++k)
        for (int j = 0; j < g->nx(1); ++j)
          for (int i = 0; i < g->nx(0); ++i) {
            if (in_feet(feet, g->box().lo[0] + i, g->box().lo[1] + j,
                        g->box().lo[2] + k))
              continue;
            fn(*g, i, j, k, vol);
          }
    }
}

}  // namespace

CoolingTimeStats cooling_time_in_sphere(const mesh::Hierarchy& h,
                                        const ext::PosVec& center,
                                        double radius,
                                        const chemistry::ChemistryParams& cp,
                                        const chemistry::ChemUnits& units) {
  CoolingTimeStats out;
  out.min = std::numeric_limits<double>::max();
  double msum = 0, mtsum = 0;
  const bool periodic = true;
  for_each_unique_cell(h, [&](const Grid& g, int i, int j, int k, double vol) {
    const auto x = g.cell_center(i, j, k);
    const double dx0 = sep(x[0], center[0], periodic);
    const double dx1 = sep(x[1], center[1], periodic);
    const double dx2 = sep(x[2], center[2], periodic);
    if (dx0 * dx0 + dx1 * dx1 + dx2 * dx2 > radius * radius) return;
    const int si = g.sx(i), sj = g.sy(j), sk = g.sz(k);
    const double T = chemistry::cell_temperature(g, si, sj, sk, cp, units);
    const double nfac = units.n_factor;
    chemistry::CoolingInput ci{
        T,
        units.t_cmb,
        g.field(Field::kHI)(si, sj, sk) * nfac,
        g.field(Field::kHII)(si, sj, sk) * nfac,
        g.field(Field::kHeI)(si, sj, sk) * nfac / 4.0,
        g.field(Field::kHeII)(si, sj, sk) * nfac / 4.0,
        g.field(Field::kHeIII)(si, sj, sk) * nfac / 4.0,
        g.field(Field::kElectron)(si, sj, sk) * nfac,
        g.field(Field::kH2I)(si, sj, sk) * nfac / 2.0,
        g.field(Field::kHDI)(si, sj, sk) * nfac / 3.0};
    const double lambda = chemistry::cooling_rate(ci);
    if (lambda <= 0) return;
    const double rho_cgs = g.field(Field::kDensity)(si, sj, sk) * units.rho_cgs;
    const double e_cgs =
        std::max(g.field(Field::kInternalEnergy)(si, sj, sk), 0.0) *
        units.e_cgs;
    const double tc = rho_cgs * e_cgs / lambda / units.time_s;  // code time
    const double m = g.field(Field::kDensity)(si, sj, sk) * vol;
    out.min = std::min(out.min, tc);
    msum += m;
    mtsum += m * tc;
    ++out.cells;
  });
  out.mass_weighted_mean = msum > 0 ? mtsum / msum : 0.0;
  if (out.cells == 0) out.min = 0.0;
  return out;
}

double two_body_relaxation_time(const mesh::Hierarchy& h,
                                const ext::PosVec& center, double radius) {
  // Gather member particles.
  std::size_t n = 0;
  double msum = 0, v2sum = 0;
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const Grid* g : h.grids(l))
      for (const mesh::Particle& p : g->particles()) {
        const double dx0 = sep(p.x[0], center[0], true);
        const double dx1 = sep(p.x[1], center[1], true);
        const double dx2 = sep(p.x[2], center[2], true);
        if (dx0 * dx0 + dx1 * dx1 + dx2 * dx2 > radius * radius) continue;
        ++n;
        msum += p.mass;
        v2sum += p.v[0] * p.v[0] + p.v[1] * p.v[1] + p.v[2] * p.v[2];
      }
  if (n < 2) return std::numeric_limits<double>::infinity();
  const double v_rms = std::sqrt(v2sum / static_cast<double>(n));
  if (v_rms <= 0) return std::numeric_limits<double>::infinity();
  const double t_cross = 2.0 * radius / v_rms;
  const double nn = static_cast<double>(n);
  return nn / (8.0 * std::log(std::max(nn, 2.0))) * t_cross;
}

double xray_luminosity(const mesh::Hierarchy& h, const ext::PosVec& center,
                       double radius, const chemistry::ChemistryParams& cp,
                       const chemistry::ChemUnits& units,
                       double length_cm_per_code) {
  double lum = 0;
  for_each_unique_cell(h, [&](const Grid& g, int i, int j, int k, double vol) {
    const auto x = g.cell_center(i, j, k);
    const double dx0 = sep(x[0], center[0], true);
    const double dx1 = sep(x[1], center[1], true);
    const double dx2 = sep(x[2], center[2], true);
    if (dx0 * dx0 + dx1 * dx1 + dx2 * dx2 > radius * radius) return;
    const int si = g.sx(i), sj = g.sy(j), sk = g.sz(k);
    const double T = chemistry::cell_temperature(g, si, sj, sk, cp, units);
    const double nfac = units.n_factor;
    const double n_e = g.field(Field::kElectron)(si, sj, sk) * nfac;
    const double n_ion = g.field(Field::kHII)(si, sj, sk) * nfac +
                         g.field(Field::kHeII)(si, sj, sk) * nfac / 4.0 +
                         4.0 * g.field(Field::kHeIII)(si, sj, sk) * nfac / 4.0;
    const double emissivity = 1.42e-27 * 1.3 * std::sqrt(T) * n_e * n_ion;
    const double cell_cm3 = vol * std::pow(length_cm_per_code, 3);
    lum += emissivity * cell_cm3;
  });
  return lum;
}

std::array<double, 3> InertiaTensor::eigenvalues() const {
  // Cyclic Jacobi on the symmetric 3×3.
  std::array<std::array<double, 3>, 3> a = I;
  for (int sweep = 0; sweep < 50; ++sweep) {
    double off = 0;
    for (int p = 0; p < 3; ++p)
      for (int q = p + 1; q < 3; ++q) off += a[p][q] * a[p][q];
    if (off < 1e-24) break;
    for (int p = 0; p < 3; ++p)
      for (int q = p + 1; q < 3; ++q) {
        if (std::abs(a[p][q]) < 1e-300) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int r = 0; r < 3; ++r) {
          const double arp = a[r][p], arq = a[r][q];
          a[r][p] = c * arp - s * arq;
          a[r][q] = s * arp + c * arq;
        }
        for (int r = 0; r < 3; ++r) {
          const double apr = a[p][r], aqr = a[q][r];
          a[p][r] = c * apr - s * aqr;
          a[q][r] = s * apr + c * aqr;
        }
      }
  }
  std::array<double, 3> ev{a[0][0], a[1][1], a[2][2]};
  std::sort(ev.begin(), ev.end());
  return ev;
}

double InertiaTensor::sphericity() const {
  const auto ev = eigenvalues();
  return ev[2] > 0 ? ev[0] / ev[2] : 0.0;
}

InertiaTensor gas_inertia_tensor(const mesh::Hierarchy& h,
                                 const ext::PosVec& center, double radius) {
  InertiaTensor out;
  for_each_unique_cell(h, [&](const Grid& g, int i, int j, int k, double vol) {
    const auto x = g.cell_center(i, j, k);
    const double d[3] = {sep(x[0], center[0], true), sep(x[1], center[1], true),
                         sep(x[2], center[2], true)};
    if (d[0] * d[0] + d[1] * d[1] + d[2] * d[2] > radius * radius) return;
    const double m =
        g.field(Field::kDensity)(g.sx(i), g.sy(j), g.sz(k)) * vol;
    out.mass += m;
    const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    for (int p = 0; p < 3; ++p)
      for (int q = 0; q < 3; ++q)
        out.I[p][q] += m * ((p == q ? r2 : 0.0) - d[p] * d[q]);
  });
  return out;
}

Projection surface_density(const mesh::Hierarchy& h, int axis, int n) {
  Projection out;
  out.n = n;
  out.sigma.assign(static_cast<std::size_t>(n) * n, 0.0);
  const int a1 = (axis + 1) % 3, a2 = (axis + 2) % 3;
  for_each_unique_cell(h, [&](const Grid& g, int i, int j, int k, double vol) {
    const int idx[3] = {i, j, k};
    (void)idx;
    const auto x = g.cell_center(i, j, k);
    // Column length through the cell: its own width along the axis.
    const double dl = g.cell_width_d(axis);
    const double rho =
        g.field(Field::kDensity)(g.sx(i), g.sy(j), g.sz(k));
    // The cell's transverse footprint may span several map pixels (coarse
    // cells) or a fraction of one (fine cells): accumulate by overlap.
    const double w = g.cell_width_d(a1);
    const double u0 = ext::pos_to_double(x[a1]) - 0.5 * w;
    const double v0 = ext::pos_to_double(x[a2]) - 0.5 * g.cell_width_d(a2);
    const double px = 1.0 / n;
    const int ulo = std::clamp(static_cast<int>(u0 / px), 0, n - 1);
    const int uhi = std::clamp(static_cast<int>((u0 + w) / px - 1e-12), 0, n - 1);
    const int vlo = std::clamp(static_cast<int>(v0 / px), 0, n - 1);
    const int vhi = std::clamp(
        static_cast<int>((v0 + g.cell_width_d(a2)) / px - 1e-12), 0, n - 1);
    for (int vv = vlo; vv <= vhi; ++vv)
      for (int uu = ulo; uu <= uhi; ++uu) {
        // Overlap fractions along each transverse axis.
        const double ou = std::max(
            0.0, std::min(u0 + w, (uu + 1) * px) - std::max(u0, uu * px));
        const double ov = std::max(
            0.0, std::min(v0 + g.cell_width_d(a2), (vv + 1) * px) -
                     std::max(v0, vv * px));
        out.sigma[static_cast<std::size_t>(vv) * n + uu] +=
            rho * dl * (ou / px) * (ov / px);
      }
    (void)vol;
  });
  out.min = *std::min_element(out.sigma.begin(), out.sigma.end());
  out.max = *std::max_element(out.sigma.begin(), out.sigma.end());
  return out;
}

std::vector<Clump> find_clumps(const mesh::Hierarchy& h,
                               double density_threshold, int map_level) {
  // Build the finest-coverage density map at map_level resolution.
  const mesh::Index3 dims = h.level_dims(map_level);
  const int nx = static_cast<int>(dims[0]);
  const int ny = static_cast<int>(dims[1]);
  const int nz = static_cast<int>(dims[2]);
  util::Array3<double> map(nx, ny, nz, 0.0);
  // Coarse levels first; finer levels overwrite (volume-averaged upward by
  // construction of the hierarchy's projection, so level-l data are the
  // best available on their footprint).
  for (int l = 0; l <= std::min(map_level, h.deepest_level()); ++l)
    for (const Grid* g : h.grids(l)) {
      const std::int64_t r = dims[0] / g->spec().level_dims[0];
      for (int k = 0; k < g->nx(2); ++k)
        for (int j = 0; j < g->nx(1); ++j)
          for (int i = 0; i < g->nx(0); ++i) {
            const double rho =
                g->field(Field::kDensity)(g->sx(i), g->sy(j), g->sz(k));
            for (std::int64_t ck = 0; ck < (nz > 1 ? r : 1); ++ck)
              for (std::int64_t cj = 0; cj < (ny > 1 ? r : 1); ++cj)
                for (std::int64_t ci = 0; ci < (nx > 1 ? r : 1); ++ci)
                  map(static_cast<int>((g->box().lo[0] + i) * (nx > 1 ? r : 1) + ci),
                      static_cast<int>((g->box().lo[1] + j) * (ny > 1 ? r : 1) + cj),
                      static_cast<int>((g->box().lo[2] + k) * (nz > 1 ? r : 1) + ck)) =
                      rho;
          }
    }

  // 6-connected flood fill above threshold (periodic).
  util::Array3<int> label(nx, ny, nz, -1);
  std::vector<Clump> clumps;
  const double cellvol = 1.0 / (static_cast<double>(nx) * ny * nz);
  for (int k0 = 0; k0 < nz; ++k0)
    for (int j0 = 0; j0 < ny; ++j0)
      for (int i0 = 0; i0 < nx; ++i0) {
        if (map(i0, j0, k0) < density_threshold || label(i0, j0, k0) >= 0)
          continue;
        const int id = static_cast<int>(clumps.size());
        Clump c;
        double wx = 0, wy = 0, wz = 0;
        std::deque<std::array<int, 3>> queue{{i0, j0, k0}};
        label(i0, j0, k0) = id;
        while (!queue.empty()) {
          auto [i, j, k] = queue.front();
          queue.pop_front();
          const double rho = map(i, j, k);
          const double m = rho * cellvol;
          c.mass += m;
          c.cells += 1;
          c.peak_density = std::max(c.peak_density, rho);
          // Mass-weighted center with minimum-image relative to the seed.
          auto rel = [](int a, int a0, int nn) {
            int d = a - a0;
            if (d > nn / 2) d -= nn;
            if (d < -nn / 2) d += nn;
            return d;
          };
          wx += m * rel(i, i0, nx);
          wy += m * rel(j, j0, ny);
          wz += m * rel(k, k0, nz);
          const int di[6] = {1, -1, 0, 0, 0, 0};
          const int dj[6] = {0, 0, 1, -1, 0, 0};
          const int dk[6] = {0, 0, 0, 0, 1, -1};
          for (int nb = 0; nb < 6; ++nb) {
            const int ii = ((i + di[nb]) % nx + nx) % nx;
            const int jj = ((j + dj[nb]) % ny + ny) % ny;
            const int kk = ((k + dk[nb]) % nz + nz) % nz;
            if (map(ii, jj, kk) >= density_threshold && label(ii, jj, kk) < 0) {
              label(ii, jj, kk) = id;
              queue.push_back({ii, jj, kk});
            }
          }
        }
        auto wrap01 = [](double v) { return v - std::floor(v); };
        c.center[0] = ext::pos_t(wrap01((i0 + 0.5 + wx / c.mass) / nx));
        c.center[1] = ext::pos_t(wrap01((j0 + 0.5 + wy / c.mass) / ny));
        c.center[2] = ext::pos_t(wrap01((k0 + 0.5 + wz / c.mass) / nz));
        clumps.push_back(c);
      }
  std::sort(clumps.begin(), clumps.end(),
            [](const Clump& a, const Clump& b) { return a.mass > b.mass; });
  return clumps;
}

}  // namespace enzo::analysis
