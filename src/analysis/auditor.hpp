#pragma once
// Runtime AMR invariant auditor: the correctness companion to the telemetry
// subsystem.  Walks a hierarchy and verifies the Berger–Colella SAMR
// invariants the extreme-resolution machinery depends on (§3.1–3.2.1):
//
//   * structure  — proper nesting: grids inside the domain, aligned to and
//                  contained in a single live parent, siblings non-overlapping;
//   * projection — fine→coarse consistency: every parent cell covered by a
//                  child equals the conservative average of the child's cells
//                  (mass and species closure; optionally the conserved ρ·q
//                  products of the specific fields);
//   * ghosts     — ghost zones that overlap a same-level sibling's active
//                  region (including periodic images) agree with the sibling
//                  data, i.e. SetBoundaryValues step 2 actually holds;
//   * flux       — at fine/coarse interfaces the parent's time-integrated
//                  face flux equals the area-averaged child boundary
//                  register (what flux correction leaves behind, §3.2.1);
//   * particles  — every particle lies inside its owning grid;
//   * finite     — all field data is finite and active densities positive;
//   * conservation — root-level mass/energy totals against caller baselines;
//   * topology   — the regrid-cached overlap topology (mesh/topology.hpp) was
//                  built for the current structure generation (a stale cache
//                  means consumers may hold dead neighbor lists).
//
// A silent nesting or ghost bug shows up as wrong physics, not a crash; the
// auditor turns it into a structured report.  Violations are *collected*,
// not thrown, so a corrupted hierarchy yields a complete diagnosis; results
// are published through the PR-1 StructuredLog / metrics registry via
// audit_and_report.
//
// The ghost check assumes boundary values are current (the Simulation hook
// refreshes them before auditing); a freshly rebuilt, never-filled grid has
// zeroed ghosts and would report spurious mismatches.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mesh/hierarchy.hpp"

namespace enzo::analysis {

struct AuditOptions {
  /// Verify the overlap-topology cache is not stale: a cache built for an
  /// older structure generation means some consumer could be holding dead
  /// neighbor lists.  Runs before every other check (the other checks may
  /// query — and thereby silently refresh — the cache).
  bool check_topology = true;
  bool check_structure = true;
  bool check_projection = true;
  /// Also require the conserved products ρ·q of specific fields (velocity,
  /// energy) to project consistently.  Exact right after projection, but a
  /// hierarchy rebuild refills new grids with limited linear interpolation
  /// whose mass-weighted averages need not reproduce the parent, so this is
  /// off by default for end-of-step audits and on in controlled tests.
  bool check_projection_products = false;
  bool check_ghosts = true;
  bool check_flux_registers = true;
  bool check_particles = true;
  bool check_finite = true;
  /// Relative tolerance for value comparisons (roundoff headroom; the
  /// quantities compared are bitwise-reproducible sums in exact arithmetic).
  double rel_tol = 1e-10;
  /// Magnitude floor below which absolute differences are ignored.
  double abs_tol = 1e-12;
  /// Root-level conservation baselines; unset disables the check.
  std::optional<double> mass_baseline;
  std::optional<double> energy_baseline;
  /// The AMR machinery (flux correction + projection) is conservative to
  /// roundoff, but the solver's positivity floors (vacuum guard on density,
  /// species clamps) legitimately inject mass at the ~1e-6 level in strong
  /// collapse runs; the tolerance sits above that, and well below the
  /// per-step growth a genuine closure leak produces.
  double conservation_rel_tol = 1e-5;
  /// At most this many violations keep their detail string (all are counted).
  std::size_t max_recorded = 64;
};

struct AuditViolation {
  std::string check;       ///< "structure" | "projection" | "ghosts" | ...
  int level = 0;
  std::uint64_t grid_id = 0;
  std::string detail;
};

struct AuditReport {
  std::vector<AuditViolation> violations;  ///< first max_recorded, in order
  std::size_t total_violations = 0;
  int levels = 0;
  std::size_t grids = 0;
  std::int64_t cells_checked = 0;     ///< parent cells compared by projection
  std::int64_t ghosts_checked = 0;    ///< ghost cells compared against siblings
  std::int64_t faces_checked = 0;     ///< coarse faces compared by flux check
  double max_rel_error = 0.0;         ///< worst relative mismatch observed
  double mass_total = 0.0;            ///< root-level totals (always computed)
  double energy_total = 0.0;
  bool passed() const { return total_violations == 0; }
  /// One-line human-readable result.
  std::string summary() const;
};

/// Run every enabled check; never throws on violations (only on malformed
/// input such as a negative-extent hierarchy).
AuditReport audit_hierarchy(const mesh::Hierarchy& h,
                            const AuditOptions& opts = {});

/// audit_hierarchy plus reporting: violations and the summary go to
/// StructuredLog (error level when failing, info when clean) and the
/// `audit.*` counters/gauges of the global metrics Registry.
AuditReport audit_and_report(const mesh::Hierarchy& h,
                             const AuditOptions& opts = {});

}  // namespace enzo::analysis
