#pragma once
// Analytic reference solutions for the regression harness (ROADMAP item 3).
//
// Three classic verification problems with known solutions, in the spirit of
// Athena++'s tst/regression/ checkers:
//
//   - exact Riemann solution of the ideal-gas shock-tube problem (Toro ch.4:
//     Newton iteration on the star-region pressure, then self-similar
//     sampling in xi = x/t) — the Sod L1 reference,
//   - the Sedov–Taylor point-blast similarity solution (the Landau–Lifshitz
//     §106 ODE system integrated from the strong-shock jump inward, with the
//     blast coefficient beta fixed by the energy integral),
//   - the Zel'dovich pancake pre-caustic profile (Newton inversion of the
//     Lagrangian map x = q + D psi(q); exact for 1-d Omega=1 pressureless
//     collapse).
//
// The problem registry (src/problems/) wires these into per-problem
// l1_density_error callbacks; tests/regression_test.cpp sweeps resolutions
// and gates the measured convergence order.

#include <vector>

namespace enzo::analysis {

// ---- exact Riemann solution (ideal gas) -----------------------------------

struct RiemannStates {
  double rho_l = 1.0, u_l = 0.0, p_l = 1.0;
  double rho_r = 0.125, u_r = 0.0, p_r = 0.1;  ///< defaults: the Sod tube
  double gamma = 1.4;
};

struct RiemannStar {
  double p = 0.0;  ///< star-region pressure
  double u = 0.0;  ///< star-region (contact) velocity
};

struct RiemannPoint {
  double rho = 0.0;
  double u = 0.0;
  double p = 0.0;
};

/// Star-region state via Newton iteration on the pressure function
/// (two-rarefaction initial guess; converges for any non-vacuum input).
RiemannStar solve_riemann_star(const RiemannStates& s);

/// Sample the self-similar solution at xi = x/t (x measured from the initial
/// discontinuity).  Handles both shock and rarefaction branches on each side,
/// including points inside a fan.
RiemannPoint sample_riemann(const RiemannStates& s, double xi);

// ---- Sedov–Taylor similarity solution -------------------------------------

/// The spherical point-blast similarity profile for one gamma, tabulated in
/// xi = r / r_shock(t) with r_shock = beta (E t^2 / rho0)^{1/5}.
class SedovSolution {
 public:
  /// Integrate the similarity ODEs (RK4 in ln xi from the strong-shock jump
  /// at xi = 1 down to xi_min) and normalize beta from the energy integral.
  explicit SedovSolution(double gamma, int table_points = 512);

  double gamma() const { return gamma_; }
  /// Blast coefficient: r_shock = beta (E t^2 / rho0)^{1/5}.
  /// beta(1.4) ~= 1.033, beta(5/3) ~= 1.152.
  double beta() const { return beta_; }

  double shock_radius(double t, double energy, double rho0) const;
  /// rho(r, t); returns rho0 ahead of the shock.
  double density(double r, double t, double energy, double rho0) const;
  /// rho/rho0 as a function of xi = r/r_shock (1 -> (gamma+1)/(gamma-1)).
  double density_ratio(double xi) const;

 private:
  double gamma_;
  double beta_;
  std::vector<double> xi_;  ///< ascending, xi_.back() == 1
  std::vector<double> g_;   ///< rho/rho0 at xi_
};

// ---- Zel'dovich pancake (pre-caustic) -------------------------------------

/// Single-mode Zel'dovich collapse: Lagrangian displacement
/// psi(q) = -A sin(2 pi q) on the unit box, Eulerian map x = q + D psi(q).
/// Exact for 1-d Omega=1 pressureless collapse while D * 2 pi A < 1
/// (pre-caustic).
struct ZeldovichMode {
  double amplitude = 0.0;  ///< A; caustic forms when D * 2 pi A = 1
  double growth = 0.0;     ///< D(a)
};

/// Invert the Lagrangian map: the q with x = q + D psi(q) (Newton; the map
/// is monotone pre-caustic).  x is taken periodic on [0, 1).
double zeldovich_lagrangian_q(const ZeldovichMode& m, double x);

/// Density contrast delta(x) = 1/|d x/d q| - 1 at Eulerian position x.
double zeldovich_delta(const ZeldovichMode& m, double x);

/// Displacement psi evaluated at the Lagrangian preimage of x; the peculiar
/// velocity is vfac * psi with the caller's velocity factor convention.
double zeldovich_psi(const ZeldovichMode& m, double x);

}  // namespace enzo::analysis
