#include "analysis/auditor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "mesh/topology.hpp"
#include "perf/log.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"

namespace enzo::analysis {

using mesh::Field;
using mesh::Grid;
using mesh::Index3;
using mesh::IndexBox;

namespace {

struct AuditContext {
  const AuditOptions& opts;
  AuditReport& report;

  void record(const char* check, int level, std::uint64_t grid_id,
              std::string detail) {
    if (report.violations.size() < opts.max_recorded)
      report.violations.push_back({check, level, grid_id, std::move(detail)});
    ++report.total_violations;
  }

  /// Relative mismatch of two values that should agree to roundoff;
  /// returns 0 when both sit below the absolute floor.
  double mismatch(double a, double b) {
    const double scale = std::max({std::abs(a), std::abs(b), opts.abs_tol});
    const double m = std::abs(a - b) / scale;
    report.max_rel_error = std::max(report.max_rel_error, m);
    return m;
  }
};

std::string cell_str(std::int64_t i, std::int64_t j, std::int64_t k) {
  return "(" + std::to_string(i) + "," + std::to_string(j) + "," +
         std::to_string(k) + ")";
}

/// Per-axis refinement ratio between a level and its parent level
/// (degenerate axes have ratio 1).
void axis_ratios(const mesh::Hierarchy& h, int level, std::int64_t rd[3]) {
  const Index3 cd = h.level_dims(level);
  const Index3 pd = h.level_dims(level - 1);
  for (int d = 0; d < 3; ++d) rd[d] = cd[d] / pd[d];
}

// ---- topology: the overlap cache matches the current structure -------------

// Must run before any check that calls h.topology(): that accessor lazily
// rebuilds a stale cache, which would hide exactly the condition we are
// trying to flag.
void check_topology(const mesh::Hierarchy& h, AuditContext& ctx) {
  const auto cached = h.topology_cache_generation();
  if (cached.has_value() && *cached != h.generation())
    ctx.record("topology", 0, 0,
               "overlap-topology cache is stale: built for generation " +
                   std::to_string(*cached) + " but hierarchy is at " +
                   std::to_string(h.generation()));
}

// ---- structure: nesting, alignment, containment, non-overlap ---------------

void check_structure(const mesh::Hierarchy& h, AuditContext& ctx) {
  for (int l = 0; l <= h.deepest_level(); ++l) {
    const Index3 dims = h.level_dims(l);
    const auto lv = h.grids(l);
    const auto parents = l > 0 ? h.grids(l - 1) : std::vector<const Grid*>{};
    if (l > 0 && !lv.empty() && parents.empty())
      ctx.record("structure", l, 0, "level has grids but parent level is empty");
    for (std::size_t a = 0; a < lv.size(); ++a) {
      const Grid& g = *lv[a];
      if (g.level() != l)
        ctx.record("structure", l, g.id(),
                   "grid level field says " + std::to_string(g.level()));
      for (int d = 0; d < 3; ++d)
        if (g.box().lo[d] < 0 || g.box().hi[d] > dims[d]) {
          ctx.record("structure", l, g.id(),
                     "grid outside domain: " + g.box().str());
          break;
        }
      if (l > 0) {
        const Grid* parent = g.parent();
        if (parent == nullptr) {
          ctx.record("structure", l, g.id(), "refined grid without parent");
          continue;
        }
        std::int64_t rd[3];
        axis_ratios(h, l, rd);
        IndexBox in_parent;
        bool aligned = true;
        for (int d = 0; d < 3; ++d) {
          if (g.box().lo[d] % rd[d] != 0 || g.box().hi[d] % rd[d] != 0)
            aligned = false;
          in_parent.lo[d] = g.box().lo[d] / rd[d];
          in_parent.hi[d] = g.box().hi[d] / rd[d];
        }
        if (!aligned)
          ctx.record("structure", l, g.id(),
                     "grid not aligned to parent cells: " + g.box().str());
        if (!parent->box().contains(in_parent))
          ctx.record("structure", l, g.id(),
                     "grid " + g.box().str() + " not contained in parent " +
                         parent->box().str());
        if (std::find(parents.begin(), parents.end(), parent) == parents.end())
          ctx.record("structure", l, g.id(), "stale parent pointer");
      }
      for (std::size_t b = a + 1; b < lv.size(); ++b)
        if (!g.box().intersect(lv[b]->box()).empty())
          ctx.record("structure", l, g.id(),
                     "overlaps sibling " + lv[b]->box().str());
    }
  }
}

// ---- projection: parent cells equal conservative child averages ------------

void check_projection(const mesh::Hierarchy& h, AuditContext& ctx) {
  for (int l = 1; l <= h.deepest_level(); ++l) {
    std::int64_t rd[3];
    axis_ratios(h, l, rd);
    const double inv_nf = 1.0 / (static_cast<double>(rd[0]) * rd[1] * rd[2]);
    for (const Grid* child : h.grids(l)) {
      const Grid* parent = child->parent();
      if (parent == nullptr) continue;  // reported by check_structure
      IndexBox cover;
      for (int d = 0; d < 3; ++d) {
        cover.lo[d] = child->box().lo[d] / rd[d];
        cover.hi[d] = (child->box().hi[d] + rd[d] - 1) / rd[d];
      }
      cover = cover.intersect(parent->box());
      if (!child->has_field(Field::kDensity)) continue;
      const auto& crho = child->field(Field::kDensity);
      for (std::int64_t pk = cover.lo[2]; pk < cover.hi[2]; ++pk)
        for (std::int64_t pj = cover.lo[1]; pj < cover.hi[1]; ++pj)
          for (std::int64_t pi = cover.lo[0]; pi < cover.hi[0]; ++pi) {
            const int ci0 = static_cast<int>(pi * rd[0] - child->box().lo[0]) +
                            child->ng(0);
            const int cj0 = static_cast<int>(pj * rd[1] - child->box().lo[1]) +
                            child->ng(1);
            const int ck0 = static_cast<int>(pk * rd[2] - child->box().lo[2]) +
                            child->ng(2);
            const int psi =
                static_cast<int>(pi - parent->box().lo[0]) + parent->ng(0);
            const int psj =
                static_cast<int>(pj - parent->box().lo[1]) + parent->ng(1);
            const int psk =
                static_cast<int>(pk - parent->box().lo[2]) + parent->ng(2);
            ++ctx.report.cells_checked;

            double rho_sum = 0.0;
            for (int ck = 0; ck < rd[2]; ++ck)
              for (int cj = 0; cj < rd[1]; ++cj)
                for (int ci = 0; ci < rd[0]; ++ci)
                  rho_sum += crho(ci0 + ci, cj0 + cj, ck0 + ck);

            for (Field f : parent->field_list()) {
              if (!child->has_field(f)) continue;
              const bool density_like = mesh::is_density_like(f);
              if (!density_like && !ctx.opts.check_projection_products)
                continue;
              const auto& ca = child->field(f);
              const auto& pa = parent->field(f);
              double fine, coarse;
              if (density_like) {
                double sum = 0.0;
                for (int ck = 0; ck < rd[2]; ++ck)
                  for (int cj = 0; cj < rd[1]; ++cj)
                    for (int ci = 0; ci < rd[0]; ++ci)
                      sum += ca(ci0 + ci, cj0 + cj, ck0 + ck);
                fine = sum * inv_nf;
                coarse = pa(psi, psj, psk);
              } else {
                // Specific field: compare the conserved product ρ·q, the
                // quantity projection actually preserves.
                double sum = 0.0;
                for (int ck = 0; ck < rd[2]; ++ck)
                  for (int cj = 0; cj < rd[1]; ++cj)
                    for (int ci = 0; ci < rd[0]; ++ci)
                      sum += crho(ci0 + ci, cj0 + cj, ck0 + ck) *
                             ca(ci0 + ci, cj0 + cj, ck0 + ck);
                fine = sum * inv_nf;
                coarse = pa(psi, psj, psk) *
                         parent->field(Field::kDensity)(psi, psj, psk);
              }
              if (ctx.mismatch(fine, coarse) > ctx.opts.rel_tol)
                ctx.record(
                    "projection", l, child->id(),
                    std::string(mesh::field_name(f)) + " parent cell " +
                        cell_str(pi, pj, pk) + ": coarse " +
                        std::to_string(coarse) + " vs child average " +
                        std::to_string(fine));
            }
          }
    }
  }
}

// ---- ghosts: sibling-covered ghost zones agree with sibling data -----------

void check_ghosts(const mesh::Hierarchy& h, AuditContext& ctx) {
  const bool periodic = h.params().periodic;
  // The point index answers the per-cell owner search; its bin candidate
  // lists preserve grid order, so it returns the same first-containing grid
  // as the linear scan (check_topology already ran, so refreshing here is
  // safe).
  const mesh::OverlapTopology* topo =
      h.use_topology() ? &h.topology() : nullptr;
  for (int l = 0; l <= h.deepest_level(); ++l) {
    const Index3 dims = h.level_dims(l);
    const auto lv = h.grids(l);
    for (const Grid* g : lv) {
      bool reported = false;  // one violation per grid keeps reports readable
      for (int sk = 0; sk < g->nt(2) && !reported; ++sk)
        for (int sj = 0; sj < g->nt(1) && !reported; ++sj)
          for (int si = 0; si < g->nt(0) && !reported; ++si) {
            const int s[3] = {si, sj, sk};
            Index3 p;
            bool ghost = false, outside = false;
            for (int d = 0; d < 3; ++d) {
              const std::int64_t local = s[d] - g->ng(d);
              if (local < 0 || local >= g->nx(d)) ghost = true;
              p[d] = g->box().lo[d] + local;
              if (dims[d] == 1) {
                p[d] = 0;
              } else if (periodic) {
                p[d] = ((p[d] % dims[d]) + dims[d]) % dims[d];
              } else if (p[d] < 0 || p[d] >= dims[d]) {
                outside = true;
              }
            }
            if (!ghost || outside) continue;
            const Grid* owner = nullptr;
            if (topo != nullptr) {
              owner = topo->grid_at(l, p);
            } else {
              for (const Grid* o : lv)
                if (o->box().contains(p)) {
                  owner = o;
                  break;
                }
            }
            if (owner == nullptr) continue;  // parent-interpolated ghost
            ++ctx.report.ghosts_checked;
            const int oi =
                static_cast<int>(p[0] - owner->box().lo[0]) + owner->ng(0);
            const int oj =
                static_cast<int>(p[1] - owner->box().lo[1]) + owner->ng(1);
            const int ok =
                static_cast<int>(p[2] - owner->box().lo[2]) + owner->ng(2);
            for (Field f : g->field_list()) {
              if (!owner->has_field(f)) continue;
              const double mine = g->field(f)(si, sj, sk);
              const double theirs = owner->field(f)(oi, oj, ok);
              if (ctx.mismatch(mine, theirs) > ctx.opts.rel_tol) {
                ctx.record("ghosts", l, g->id(),
                           std::string(mesh::field_name(f)) + " ghost " +
                               cell_str(p[0], p[1], p[2]) + ": " +
                               std::to_string(mine) + " vs sibling " +
                               std::to_string(theirs));
                reported = true;
                break;
              }
            }
          }
    }
  }
}

// ---- flux registers: parent face fluxes match child boundary registers -----

void check_flux_registers(const mesh::Hierarchy& h, AuditContext& ctx) {
  for (int l = 1; l <= h.deepest_level(); ++l) {
    std::int64_t rd[3];
    axis_ratios(h, l, rd);
    const auto siblings = h.grids(l);
    for (const Grid* child : siblings) {
      const Grid* parent = child->parent();
      if (parent == nullptr || !child->has_boundary_fluxes() ||
          !parent->has_fluxes())
        continue;
      // Coarse footprint of the child.
      IndexBox ccover;
      for (int d = 0; d < 3; ++d) {
        ccover.lo[d] = child->box().lo[d] / rd[d];
        ccover.hi[d] = (child->box().hi[d] + rd[d] - 1) / rd[d];
      }
      for (int d = 0; d < 3; ++d) {
        if (child->spec().level_dims[d] == 1) continue;
        const int e1 = (d + 1) % 3, e2 = (d + 2) % 3;
        const double inv_area =
            1.0 / (static_cast<double>(rd[e1]) * rd[e2]);
        for (int side = 0; side < 2; ++side) {
          const std::int64_t face_c = side == 0 ? ccover.lo[d] : ccover.hi[d];
          const std::int64_t out_c = side == 0 ? face_c - 1 : face_c;
          // Mirror flux correction's applicability: the outside coarse cell
          // must lie inside this parent (a sibling's cell is that sibling
          // parent's business) …
          if (out_c < parent->box().lo[d] || out_c >= parent->box().hi[d])
            continue;
          for (std::int64_t p2 = ccover.lo[e2]; p2 < ccover.hi[e2]; ++p2)
            for (std::int64_t p1 = ccover.lo[e1]; p1 < ccover.hi[e1]; ++p1) {
              std::int64_t pc[3];
              pc[d] = out_c;
              pc[e1] = p1;
              pc[e2] = p2;
              int ps[3];
              bool in_parent = true;
              for (int e = 0; e < 3; ++e) {
                const std::int64_t off = pc[e] - parent->box().lo[e];
                if (off < 0 || off >= parent->nx(e)) in_parent = false;
                ps[e] = static_cast<int>(off) + parent->ng(e);
              }
              if (!in_parent) continue;
              // … and must not itself be refined: a fine/fine interface is
              // corrected by whichever child wrote last, so the register
              // comparison is only meaningful at true fine/coarse faces.
              bool refined = false;
              for (const Grid* s : siblings) {
                if (s == child) continue;
                IndexBox sc;
                for (int e = 0; e < 3; ++e) {
                  sc.lo[e] = s->box().lo[e] / rd[e];
                  sc.hi[e] = (s->box().hi[e] + rd[e] - 1) / rd[e];
                }
                if (sc.contains(Index3{pc[0], pc[1], pc[2]})) {
                  refined = true;
                  break;
                }
              }
              if (refined) continue;
              int pf[3] = {ps[0], ps[1], ps[2]};
              if (side == 0) pf[d] += 1;
              const int c1_0 =
                  static_cast<int>(p1 * rd[e1] - child->box().lo[e1]) +
                  child->ng(e1);
              const int c2_0 =
                  static_cast<int>(p2 * rd[e2] - child->box().lo[e2]) +
                  child->ng(e2);
              ++ctx.report.faces_checked;
              for (Field f : parent->field_list()) {
                if (!child->has_field(f)) continue;
                const auto& cbf = child->boundary_flux(f, d, side);
                double fine = 0.0;
                for (int c2 = 0; c2 < rd[e2]; ++c2)
                  for (int c1 = 0; c1 < rd[e1]; ++c1) {
                    int ci[3];
                    ci[d] = 0;
                    ci[e1] = c1_0 + c1;
                    ci[e2] = c2_0 + c2;
                    fine += cbf(ci[0], ci[1], ci[2]);
                  }
                fine *= inv_area;
                const double coarse = parent->flux(f, d)(pf[0], pf[1], pf[2]);
                if (ctx.mismatch(fine, coarse) > ctx.opts.rel_tol)
                  ctx.record("flux", l, child->id(),
                             std::string(mesh::field_name(f)) + " axis " +
                                 std::to_string(d) + " side " +
                                 std::to_string(side) + " face at " +
                                 cell_str(pc[0], pc[1], pc[2]) +
                                 ": parent flux " + std::to_string(coarse) +
                                 " vs child register " + std::to_string(fine));
              }
            }
        }
      }
    }
  }
}

// ---- particles, finiteness, conservation -----------------------------------

void check_particles(const mesh::Hierarchy& h, AuditContext& ctx) {
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const Grid* g : h.grids(l))
      for (const mesh::Particle& p : g->particles()) {
        if (!g->contains_position(p.x))
          ctx.record("particles", l, g->id(),
                     "particle " + std::to_string(p.id) +
                         " outside its owning grid " + g->box().str());
        if (!(p.mass > 0.0) || !std::isfinite(p.mass))
          ctx.record("particles", l, g->id(),
                     "particle " + std::to_string(p.id) +
                         " has non-positive mass " + std::to_string(p.mass));
      }
}

void check_finite(const mesh::Hierarchy& h, AuditContext& ctx) {
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const Grid* g : h.grids(l))
      for (Field f : g->field_list()) {
        const auto& a = g->field(f);
        bool bad = false;
        for (const double v : a)
          if (!std::isfinite(v)) {
            bad = true;
            break;
          }
        if (bad)
          ctx.record("finite", l, g->id(),
                     std::string(mesh::field_name(f)) +
                         " contains non-finite values");
        if (f == Field::kDensity) {
          // Positivity is only required on active cells (fresh grids carry
          // zero-initialized ghosts until the next boundary fill).
          bool nonpos = false;
          for (int k = 0; k < g->nx(2) && !nonpos; ++k)
            for (int j = 0; j < g->nx(1) && !nonpos; ++j)
              for (int i = 0; i < g->nx(0); ++i)
                if (!(a(g->sx(i), g->sy(j), g->sz(k)) > 0.0)) {
                  nonpos = true;
                  break;
                }
          if (nonpos)
            ctx.record("finite", l, g->id(), "non-positive active density");
        }
      }
}

void root_totals(const mesh::Hierarchy& h, AuditReport& report) {
  double mass = 0.0, energy = 0.0;
  for (const Grid* g : h.grids(0)) {
    if (!g->has_field(Field::kDensity)) continue;
    double vol = 1.0;
    for (int d = 0; d < 3; ++d) vol *= g->cell_width_d(d);
    const auto& rho = g->field(Field::kDensity);
    const bool has_e = g->has_field(Field::kTotalEnergy);
    for (int k = 0; k < g->nx(2); ++k)
      for (int j = 0; j < g->nx(1); ++j)
        for (int i = 0; i < g->nx(0); ++i) {
          const int si = g->sx(i), sj = g->sy(j), sk = g->sz(k);
          const double m = rho(si, sj, sk) * vol;
          // enzo-lint: allow(determinism-grid-fp-accumulation) serial audit pass
          mass += m;
          if (has_e) energy += m * g->field(Field::kTotalEnergy)(si, sj, sk);
        }
  }
  report.mass_total = mass;
  report.energy_total = energy;
}

void check_conservation(AuditContext& ctx) {
  const AuditOptions& o = ctx.opts;
  AuditReport& r = ctx.report;
  auto drift = [&](const char* what, double now, double baseline) {
    const double scale = std::max(std::abs(baseline), o.abs_tol);
    const double rel = std::abs(now - baseline) / scale;
    if (rel > o.conservation_rel_tol)
      ctx.record("conservation", 0, 0,
                 std::string(what) + " drifted by " + std::to_string(rel) +
                     " relative (now " + std::to_string(now) + ", baseline " +
                     std::to_string(baseline) + ")");
  };
  if (o.mass_baseline) drift("mass", r.mass_total, *o.mass_baseline);
  if (o.energy_baseline) drift("energy", r.energy_total, *o.energy_baseline);
}

}  // namespace

std::string AuditReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s: %zu violation(s) over %d level(s), %zu grid(s); "
                "%lld projected cells, %lld ghosts, %lld faces checked; "
                "max rel err %.3e",
                passed() ? "audit OK" : "AUDIT FAILED", total_violations,
                levels, grids, static_cast<long long>(cells_checked),
                static_cast<long long>(ghosts_checked),
                static_cast<long long>(faces_checked), max_rel_error);
  return buf;
}

AuditReport audit_hierarchy(const mesh::Hierarchy& h,
                            const AuditOptions& opts) {
  perf::TraceScope scope("audit", perf::component::kOther, 0);
  AuditReport report;
  report.levels = h.deepest_level() + 1;
  report.grids = h.total_grids();
  AuditContext ctx{opts, report};
  if (opts.check_topology) check_topology(h, ctx);
  if (opts.check_structure) check_structure(h, ctx);
  if (opts.check_projection) check_projection(h, ctx);
  if (opts.check_ghosts) check_ghosts(h, ctx);
  if (opts.check_flux_registers) check_flux_registers(h, ctx);
  if (opts.check_particles) check_particles(h, ctx);
  if (opts.check_finite) check_finite(h, ctx);
  root_totals(h, report);
  check_conservation(ctx);
  return report;
}

AuditReport audit_and_report(const mesh::Hierarchy& h,
                             const AuditOptions& opts) {
  AuditReport report = audit_hierarchy(h, opts);
  perf::Registry& reg = perf::Registry::global();
  reg.counter("audit.runs").add(1);
  reg.counter("audit.violations").add(report.total_violations);
  reg.gauge("audit.last_violations")
      .set(static_cast<double>(report.total_violations));
  reg.gauge("audit.max_rel_error").set(report.max_rel_error);
  for (const AuditViolation& v : report.violations)
    reg.counter("audit.violations." + v.check).add(1);

  perf::StructuredLog& log = perf::StructuredLog::global();
  if (report.passed()) {
    log.log(perf::LogLevel::kInfo, "audit", report.summary());
  } else {
    for (const AuditViolation& v : report.violations)
      log.logf(perf::LogLevel::kError, "audit",
               "[%s] level %d grid %llu: %s", v.check.c_str(), v.level,
               static_cast<unsigned long long>(v.grid_id), v.detail.c_str());
    if (report.total_violations > report.violations.size())
      log.logf(perf::LogLevel::kError, "audit",
               "… and %zu more violation(s) not recorded",
               report.total_violations - report.violations.size());
    log.log(perf::LogLevel::kError, "audit", report.summary());
  }
  return report;
}

}  // namespace enzo::analysis
