#pragma once
// Analysis of AMR data (§6): routines that "understand the structure of the
// hierarchy" — finding the collapsed object, mass-weighted spherical radial
// profiles about the densest point (Fig. 4), zoomable slices through the
// finest available data (Fig. 3), and hierarchy statistics (Fig. 5).
//
// All routines visit each physical location exactly once by masking coarse
// cells covered by finer grids.

#include <optional>
#include <vector>

#include "chemistry/chemistry.hpp"
#include "hydro/hydro.hpp"
#include "mesh/hierarchy.hpp"

namespace enzo::analysis {

/// Location and value of the densest gas cell at the finest resolution.
struct Peak {
  ext::PosVec position{};
  double density = 0.0;
  int level = 0;
};
Peak find_densest_point(const mesh::Hierarchy& h);

/// Mass-weighted spherical averages in logarithmic radial bins about a
/// center — the Fig. 4 panels.
struct RadialProfile {
  std::vector<double> r;              ///< bin centers (code length, comoving)
  std::vector<double> gas_density;    ///< mass-weighted mean (code units)
  std::vector<double> dm_density;     ///< dark matter (CIC onto bins)
  std::vector<double> temperature;    ///< K (needs chemistry fields + units)
  std::vector<double> v_radial;       ///< mass-weighted (code velocity)
  std::vector<double> sound_speed;    ///< mass-weighted (code velocity)
  std::vector<double> h2_fraction;    ///< mass fraction relative to total H
  std::vector<double> hi_fraction;
  std::vector<double> enclosed_gas_mass;  ///< cumulative (code mass)
  std::vector<double> cell_count;
};

struct ProfileOptions {
  int nbins = 48;
  double r_min = 1e-6;  ///< code units
  double r_max = 0.5;
  bool periodic = true;
  /// When chemistry fields are absent, temperature assumes this μ.
  double mu_fallback = 1.22;
};

RadialProfile radial_profile(const mesh::Hierarchy& h, const ext::PosVec& c,
                             const ProfileOptions& opt,
                             const hydro::HydroParams& hydro_params,
                             const chemistry::ChemUnits& units);

/// Square slice of log10(gas density) perpendicular to `axis` through
/// absolute coordinate `coord`, covering a half-width `half` around
/// (cx, cy): sampled at n×n points from the finest grid containing each
/// point (the Fig. 3 zoom frames).
struct Slice {
  int n = 0;
  std::vector<double> log10_density;  ///< row-major n×n
  double min_log = 0, max_log = 0;
  int finest_level_touched = 0;
};
Slice density_slice(const mesh::Hierarchy& h, int axis, ext::pos_t coord,
                    const std::array<double, 2>& center2d, double half, int n);

/// Fig. 5 statistics snapshot.
struct HierarchyStats {
  int max_level = 0;
  std::size_t total_grids = 0;
  std::int64_t total_cells = 0;
  std::vector<std::size_t> grids_per_level;
  std::vector<double> work_per_level;  ///< normalized to max = 1
};
HierarchyStats hierarchy_stats(const mesh::Hierarchy& h);

}  // namespace enzo::analysis
