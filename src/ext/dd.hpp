#pragma once
// Double–double extended precision arithmetic (EPA).
//
// §3.5 of the paper: at SDR ~ 1e12 the code must distinguish positions x and
// x + Δx with Δx/x ~ 1e-12, and in practice needs ~100× more precision than
// that because of intermediate arithmetic — i.e. ≥ 1e-14, beyond IEEE double.
// Native 128-bit floating point was patchy in 2001 (30× slower on the
// Origin2000; a special compiler flag on the SP2); the paper points to
// Bailey-style software multiprecision built from 64-bit hardware ops as the
// portable alternative.  This is that alternative: an unevaluated sum of two
// doubles (hi + lo with |lo| <= ulp(hi)/2) giving a ~106-bit mantissa
// (~32 decimal digits), built on the classical error-free transforms
// (Knuth TwoSum, FMA-based TwoProd).
//
// Usage discipline mirrors the paper: only *absolute* positions and times are
// dd; everything O(Δx) (field data, fluxes, relative offsets) stays double.
// That keeps the high-precision share of the op count at the few-percent
// level the paper reports.
//
// IMPORTANT: these algorithms require strict IEEE semantics — targets linking
// enzo_ext inherit -fno-fast-math from the build system.

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace enzo::ext {

struct dd;
constexpr dd operator+(dd a, dd b);
constexpr dd operator-(dd a, dd b);
constexpr dd operator*(dd a, dd b);
dd operator/(dd a, dd b);

namespace eft {
/// Error-free: a + b = s + err exactly, assuming |a| >= |b|.
constexpr void quick_two_sum(double a, double b, double& s, double& err) {
  s = a + b;
  err = b - (s - a);
}
/// Error-free: a + b = s + err exactly (Knuth; no magnitude assumption).
constexpr void two_sum(double a, double b, double& s, double& err) {
  s = a + b;
  const double bb = s - a;
  err = (a - (s - bb)) + (b - bb);
}
/// Error-free: a * b = p + err exactly (requires FMA or is emulated by it).
inline void two_prod(double a, double b, double& p, double& err) {
  p = a * b;
  err = std::fma(a, b, -p);
}
}  // namespace eft

/// Double–double number: value is hi + lo, non-overlapping.
struct dd {
  double hi = 0.0;
  double lo = 0.0;

  constexpr dd() = default;
  constexpr dd(double h) : hi(h), lo(0.0) {}  // NOLINT: implicit by design
  constexpr dd(double h, double l) : hi(h), lo(l) {}

  /// Construct from an exact integer (all int64 are representable).
  static constexpr dd from_int(std::int64_t n) {
    // Split into two halves so that each is exactly representable.
    const double hi = static_cast<double>(n);
    const double lo = static_cast<double>(n - static_cast<std::int64_t>(hi));
    return dd(hi, lo);
  }

  constexpr explicit operator double() const { return hi; }
  constexpr double to_double() const { return hi + lo; }

  constexpr dd operator-() const { return dd(-hi, -lo); }

  constexpr dd& operator+=(dd b) { return *this = *this + b; }
  constexpr dd& operator-=(dd b) { return *this = *this - b; }
  constexpr dd& operator*=(dd b) { return *this = *this * b; }
  dd& operator/=(dd b) { return *this = *this / b; }

  bool is_finite() const { return std::isfinite(hi) && std::isfinite(lo); }

  /// Machine epsilon of the format: 2^-104.
  static constexpr double epsilon() { return 4.93038065763132e-32; }
};

// ---- addition / subtraction -------------------------------------------------

constexpr dd operator+(dd a, dd b) {
  double s1, s2, t1, t2;
  eft::two_sum(a.hi, b.hi, s1, s2);
  eft::two_sum(a.lo, b.lo, t1, t2);
  s2 += t1;
  eft::quick_two_sum(s1, s2, s1, s2);
  s2 += t2;
  eft::quick_two_sum(s1, s2, s1, s2);
  return dd(s1, s2);
}

constexpr dd operator-(dd a, dd b) { return a + (-b); }

// ---- multiplication ---------------------------------------------------------

inline dd mul(dd a, dd b) {
  double p1, p2;
  eft::two_prod(a.hi, b.hi, p1, p2);
  p2 += a.hi * b.lo + a.lo * b.hi;
  double s1, s2;
  eft::quick_two_sum(p1, p2, s1, s2);
  return dd(s1, s2);
}

// constexpr-friendly wrapper: std::fma is not constexpr pre-C++23, so the
// constant-evaluated branch multiplies exactly via Dekker splitting.
namespace eft {
constexpr void two_prod_dekker(double a, double b, double& p, double& err) {
  constexpr double split = 134217729.0;  // 2^27 + 1
  p = a * b;
  const double ca = split * a;
  const double ahi = ca - (ca - a);
  const double alo = a - ahi;
  const double cb = split * b;
  const double bhi = cb - (cb - b);
  const double blo = b - bhi;
  err = ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo;
}
}  // namespace eft

constexpr dd operator*(dd a, dd b) {
  double p1, p2;
  eft::two_prod_dekker(a.hi, b.hi, p1, p2);
  p2 += a.hi * b.lo + a.lo * b.hi;
  double s1, s2;
  eft::quick_two_sum(p1, p2, s1, s2);
  return dd(s1, s2);
}

// ---- division ---------------------------------------------------------------

inline dd operator/(dd a, dd b) {
  // Long division with two Newton-style correction terms.
  const double q1 = a.hi / b.hi;
  dd r = a - mul(dd(q1), b);
  const double q2 = r.hi / b.hi;
  r = r - mul(dd(q2), b);
  const double q3 = r.hi / b.hi;
  double s1, s2;
  eft::quick_two_sum(q1, q2, s1, s2);
  dd q(s1, s2);
  return q + dd(q3);
}

// ---- comparisons ------------------------------------------------------------

constexpr bool operator==(dd a, dd b) { return a.hi == b.hi && a.lo == b.lo; }
constexpr bool operator!=(dd a, dd b) { return !(a == b); }
constexpr bool operator<(dd a, dd b) {
  return a.hi < b.hi || (a.hi == b.hi && a.lo < b.lo);
}
constexpr bool operator>(dd a, dd b) { return b < a; }
constexpr bool operator<=(dd a, dd b) { return !(b < a); }
constexpr bool operator>=(dd a, dd b) { return !(a < b); }

// ---- functions ---------------------------------------------------------------

inline dd abs(dd a) { return a.hi < 0.0 || (a.hi == 0.0 && a.lo < 0.0) ? -a : a; }

inline dd sqrt(dd a) {
  // Karp & Markstein: one Newton step on the double-precision estimate.
  if (a.hi == 0.0 && a.lo == 0.0) return dd(0.0);
  const double x = 1.0 / std::sqrt(a.hi);
  const double ax = a.hi * x;
  const dd axdd(ax);
  const dd err = a - axdd * axdd;
  return axdd + dd(err.hi * (x * 0.5));
}

/// Largest integer <= a, exact.
inline dd floor(dd a) {
  const double fh = std::floor(a.hi);
  if (fh != a.hi) return dd(fh);
  // hi already integral: floor acts on lo.
  double s, e;
  eft::quick_two_sum(fh, std::floor(a.lo), s, e);
  return dd(s, e);
}

/// a - floor(a/b)*b, for periodic wrapping of positions into [0, b).
inline dd fmod_pos(dd a, dd b) {
  dd r = a - floor(a / b) * b;
  // Guard against boundary rounding.
  if (r < dd(0.0)) r += b;
  if (r >= b) r -= b;
  return r;
}

inline dd fma(dd a, dd b, dd c) { return a * b + c; }

/// Power with integer exponent (exact repeated squaring).
inline dd powi(dd a, int n) {
  if (n < 0) return dd(1.0) / powi(a, -n);
  dd result(1.0), base = a;
  while (n > 0) {
    if (n & 1) result = result * base;
    base = base * base;
    n >>= 1;
  }
  return result;
}

/// ~32 significant digit decimal rendering (sufficient for round-tripping).
std::string to_string(dd a, int digits = 32);

/// Parse a decimal string exactly into dd (digit-by-digit accumulation).
dd dd_from_string(const std::string& s);

std::ostream& operator<<(std::ostream& os, dd a);

}  // namespace enzo::ext
