#pragma once
// Position/time precision policy.
//
// Per §3.5 of the paper, only quantities involving *absolute* position and
// time use extended precision; everything O(Δx) stays in 64-bit.  `pos_t` is
// the type of grid edges, particle positions and simulation time, and a
// small vector type is provided for convenience.  The policy can be flipped
// to plain double (ENZO_POSITION_DOUBLE) to reproduce the precision-failure
// bench (epa_precision), demonstrating why the paper needed 128 bits.

#include <array>

#include "ext/dd.hpp"

namespace enzo::ext {

#ifdef ENZO_POSITION_DOUBLE
using pos_t = double;
inline double pos_to_double(double p) { return p; }
inline double pos_abs(double p) { return p < 0 ? -p : p; }
#else
using pos_t = dd;
inline double pos_to_double(dd p) { return p.to_double(); }
inline dd pos_abs(dd p) { return abs(p); }
#endif

using PosVec = std::array<pos_t, 3>;

inline std::array<double, 3> to_double(const PosVec& p) {
  return {pos_to_double(p[0]), pos_to_double(p[1]), pos_to_double(p[2])};
}

}  // namespace enzo::ext
