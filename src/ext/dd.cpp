#include "ext/dd.hpp"

#include <cctype>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace enzo::ext {

std::string to_string(dd a, int digits) {
  if (a.hi == 0.0 && a.lo == 0.0) return "0";
  if (!a.is_finite()) return "nan";
  std::string out;
  dd v = a;
  if (v < dd(0.0)) {
    out += '-';
    v = -v;
  }
  // Scale into [1, 10).
  int exp10 = 0;
  const dd ten(10.0);
  while (v >= ten) {
    v /= ten;
    ++exp10;
  }
  while (v < dd(1.0)) {
    v *= ten;
    --exp10;
  }
  std::string mant;
  for (int i = 0; i < digits; ++i) {
    int digit = static_cast<int>(std::floor(v.hi));
    if (digit < 0) digit = 0;
    if (digit > 9) digit = 9;
    mant += static_cast<char>('0' + digit);
    v = (v - dd(static_cast<double>(digit))) * ten;
  }
  out += mant.substr(0, 1);
  out += '.';
  out += mant.substr(1);
  out += 'e';
  out += std::to_string(exp10);
  return out;
}

dd dd_from_string(const std::string& s) {
  std::size_t i = 0;
  auto peek = [&]() -> int { return i < s.size() ? s[i] : -1; };
  bool neg = false;
  if (peek() == '+' || peek() == '-') neg = (s[i++] == '-');
  dd value(0.0);
  const dd ten(10.0);
  bool any = false;
  while (std::isdigit(peek())) {
    value = value * ten + dd(static_cast<double>(s[i++] - '0'));
    any = true;
  }
  int frac_digits = 0;
  if (peek() == '.') {
    ++i;
    while (std::isdigit(peek())) {
      value = value * ten + dd(static_cast<double>(s[i++] - '0'));
      ++frac_digits;
      any = true;
    }
  }
  ENZO_REQUIRE(any, "dd_from_string: no digits in '" + s + "'");
  int exp10 = -frac_digits;
  if (peek() == 'e' || peek() == 'E') {
    ++i;
    bool eneg = false;
    if (peek() == '+' || peek() == '-') eneg = (s[i++] == '-');
    int e = 0;
    ENZO_REQUIRE(std::isdigit(peek()), "dd_from_string: bad exponent in '" + s + "'");
    while (std::isdigit(peek())) e = e * 10 + (s[i++] - '0');
    exp10 += eneg ? -e : e;
  }
  if (exp10 > 0) value = value * powi(ten, exp10);
  if (exp10 < 0) value = value / powi(ten, -exp10);
  return neg ? -value : value;
}

std::ostream& operator<<(std::ostream& os, dd a) { return os << to_string(a); }

}  // namespace enzo::ext
