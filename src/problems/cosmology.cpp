// Problem "Cosmology": the paper's production configuration — a
// standard-CDM box with Gaussian-random-field baryons + Zel'dovich-displaced
// dark matter, optionally with nested static refinement levels (§4).  No
// closed-form reference exists, so this problem ships no l1 callback; it is
// verified by the invariant auditor and the linear-growth checks in
// tests/cosmology_test.cpp.

#include "core/setup.hpp"
#include "problems/registry.hpp"

namespace enzo::problems {

void register_cosmology(Registry& r) {
  ProblemSpec s;
  s.name = "Cosmology";
  s.description =
      "CDM box: GRF baryons + Zel'dovich dark matter, optional nested "
      "static levels (requires ComovingCoordinates = 1)";
  s.make = [](const core::ParameterDeck& d) {
    return core::cosmological_setup(d.cosmology);
  };
  s.smoke_deck =
      "TopGridDimensions = 8 8 8\n"
      "ComovingCoordinates = 1\n"
      "HubbleConstantNow = 0.5\n"
      "OmegaMatterNow = 1.0\n"
      "OmegaBaryonNow = 0.06\n"
      "OmegaLambdaNow = 0.0\n"
      "InitialRedshift = 30\n"
      "ComovingBoxSizeMpc = 1.0\n"
      "GravityEnabled = 1\n"
      "ParticlesEnabled = 1\n"
      "StopSteps = 1\n";
  r.add(std::move(s));
}

}  // namespace enzo::problems
