#pragma once
// Problem-generator registry (ROADMAP item 3), modeled on Athena++'s
// src/pgen/ + tst/regression/ split: every runnable problem is a named
// ProblemSpec — a factory from a parsed parameter deck to a composable
// core::ProblemSetup, plus the problem-specific metadata the verification
// harness needs (an analytic L1-error callback where an exact solution
// exists, and a minimal smoke deck for the initialize-and-step test).
//
// The deck parser resolves `ProblemType = <name>` against this registry, so
// the set of deck-selectable problems and the "unknown ProblemType" error
// text are *derived from* the actual generators and can never drift from
// them (the bug this PR removes: a hard-coded name map in
// core/parameter_file.cpp).
//
// Built-ins live in the per-problem TUs of this directory and are installed
// by Registry::global() itself (explicit register_* calls — registration via
// unreferenced file-level statics is not static-library-safe).  Out-of-tree
// problems (tests, experiments) self-register at load time:
//
//   static problems::Registrar reg({
//       .name = "MyBlob",
//       .description = "pressure blob in a periodic box",
//       .make = [](const core::ParameterDeck& d) { ... },
//   });

#include <functional>
#include <string>
#include <vector>

#include "core/parameter_file.hpp"
#include "core/problem_setup.hpp"

namespace enzo::problems {

/// A registered problem: everything the deck front end and the regression
/// harness need to know about one generator.
struct ProblemSpec {
  /// Deck-facing name (`ProblemType = <name>`); unique, case-sensitive.
  std::string name;
  /// One-line human description (listed by run_deck and the docs).
  std::string description;
  /// Deck → composable setup; the only required callback.
  std::function<core::ProblemSetup(const core::ParameterDeck&)> make;
  /// Analytic checker: mean |rho - rho_exact| over the root grid at the
  /// simulation's current time, in the problem's own density normalization.
  /// Null when no exact solution exists (collapse, cosmology).
  std::function<double(const core::Simulation&, const core::ParameterDeck&)>
      l1_density_error;
  /// Minimal deck text (without the ProblemType line) that initializes the
  /// problem at smoke-test scale; the registry unit test appends
  /// `ProblemType = <name>`, initializes, and takes one audited root step.
  std::string smoke_deck;
};

class Registry {
 public:
  /// The process-wide registry, with all built-in problems installed.
  static Registry& global();

  /// Register a spec; duplicate names are an error.
  void add(ProblemSpec spec);

  /// Lookup by name; nullptr when absent.
  const ProblemSpec* find(const std::string& name) const;
  /// Lookup by name; throws enzo::Error listing the registered names.
  const ProblemSpec& at(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;
  /// The names joined for error/help text: "A, B, C".
  std::string names_joined() const;

 private:
  Registry();
  std::vector<ProblemSpec> specs_;  ///< sorted by name
};

/// Self-registration helper for out-of-tree problems: construct one at
/// namespace scope in a TU that is linked into the binary *and referenced*
/// (in a test file, the TEST functions themselves are the reference).
struct Registrar {
  explicit Registrar(ProblemSpec spec);
};

}  // namespace enzo::problems
