// Problems "CollapseCloud" and "IsothermalCollapse": the controlled
// primordial-cloud collapse (the paper's §4 science problem at laptop
// scale).  CollapseCloud honors the deck's chemistry toggle; the
// IsothermalCollapse variant is the classic chemistry-free control — a
// near-isothermal EOS (gamma → 1.001 unless the deck chose another gamma)
// stands in for the H₂ cooling that keeps the real cloud isothermal, so
// hierarchy-depth and profile comparisons isolate the chemistry's effect.

#include "core/setup.hpp"
#include "problems/registry.hpp"

namespace enzo::problems {

void register_collapse_cloud(Registry& r) {
  {
    ProblemSpec s;
    s.name = "CollapseCloud";
    s.description =
        "isolated primordial-cloud collapse (gravity + optional chemistry)";
    s.make = [](const core::ParameterDeck& d) {
      core::CollapseSetupOptions opt = d.collapse;
      opt.chemistry = d.config.enable_chemistry;
      return core::collapse_cloud_setup(opt);
    };
    s.smoke_deck =
        "TopGridDimensions = 8 8 8\n"
        "GravityEnabled = 1\n"
        "StopSteps = 1\n";
    r.add(std::move(s));
  }
  {
    ProblemSpec s;
    s.name = "IsothermalCollapse";
    s.description =
        "chemistry-free collapse control with a near-isothermal EOS "
        "(gamma = 1.001 unless the deck sets another gamma)";
    s.make = [](const core::ParameterDeck& d) {
      core::CollapseSetupOptions opt = d.collapse;
      opt.chemistry = false;
      core::ProblemSetup setup = core::collapse_cloud_setup(opt);
      setup.configure([](core::SimulationConfig& cfg) {
        cfg.enable_chemistry = false;
        // Only override the stock adiabatic default; an explicit deck Gamma
        // (anything below 1.6) is the user's choice of effective EOS.
        if (cfg.hydro.gamma > 1.6) cfg.hydro.gamma = 1.001;
      });
      return setup;
    };
    s.smoke_deck =
        "TopGridDimensions = 8 8 8\n"
        "GravityEnabled = 1\n"
        "StopSteps = 1\n";
    r.add(std::move(s));
  }
}

}  // namespace enzo::problems
