// Problems "SodTube" and "SodTubeSMR": the standard 1-d shock-tube
// verification problem (§3.2.1), unigrid or with a statically refined
// region over the diaphragm.  The l1 callback compares the root-level
// density against the exact Riemann solution sampled at cell centers, so
// the regression harness can gate both the error magnitude and the
// convergence order (≈1 for shock-dominated flow).

#include <cmath>

#include "analysis/reference.hpp"
#include "core/setup.hpp"
#include "problems/detail.hpp"
#include "problems/registry.hpp"

namespace enzo::problems {

namespace {

double sod_l1(const core::Simulation& sim, const core::ParameterDeck&) {
  analysis::RiemannStates st;  // defaults are the Sod tube
  st.gamma = sim.config().hydro.gamma;
  const double t = sim.time_d();
  double l1 = 0.0;
  std::int64_t n = 0;
  detail::for_each_root_density(sim, [&](double x, double, double,
                                         double rho) {
    // xi = (x - x_diaphragm) / t; at t = 0 every cell is in an outer state.
    const double xi = t > 0 ? (x - 0.5) / t : (x < 0.5 ? -1e30 : 1e30);
    l1 += std::abs(rho - analysis::sample_riemann(st, xi).rho);
    ++n;
  });
  return l1 / static_cast<double>(n);
}

}  // namespace

void register_sod_tube(Registry& r) {
  {
    ProblemSpec s;
    s.name = "SodTube";
    s.description = "Sod shock tube along x (exact Riemann reference)";
    s.make = [](const core::ParameterDeck&) { return core::sod_tube_setup(); };
    s.l1_density_error = sod_l1;
    s.smoke_deck =
        "TopGridDimensions = 16 1 1\n"
        "Gamma = 1.4\n"
        "StopSteps = 2\n";
    r.add(std::move(s));
  }
  {
    ProblemSpec s;
    s.name = "SodTubeSMR";
    s.description =
        "Sod tube with a static refined region over the middle half of the "
        "tube (flux-correction/projection consistency check)";
    s.make = [](const core::ParameterDeck& d) {
      core::ProblemSetup setup = core::sod_tube_setup();
      setup.configure([](core::SimulationConfig& cfg) {
        if (cfg.hierarchy.max_level < 1) cfg.hierarchy.max_level = 1;
        cfg.rebuild_interval = 1 << 20;  // static tree
      });
      // Middle half of the tube at level 1 (level-1 index space).
      const auto& dims = d.config.hierarchy.root_dims;
      const int rf = d.config.hierarchy.refine_factor;
      const std::int64_t n1 = static_cast<std::int64_t>(dims[0]) * rf;
      setup.static_region(1, {{n1 / 4, 0, 0}, {3 * n1 / 4, 1, 1}});
      return setup;
    };
    s.l1_density_error = sod_l1;
    s.smoke_deck =
        "TopGridDimensions = 16 1 1\n"
        "MaximumRefinementLevel = 1\n"
        "Gamma = 1.4\n"
        "StopSteps = 2\n";
    r.add(std::move(s));
  }
}

}  // namespace enzo::problems
