#pragma once
// Shared helpers for the per-problem registration TUs.

#include <cstdint>

#include "core/simulation.hpp"
#include "mesh/grid.hpp"

namespace enzo::problems::detail {

/// Visit every interior root-level cell: fn(x, y, z, rho) with unit-box
/// cell-center coordinates.  The root level is the right place to measure
/// L1 errors for unigrid and AMR runs alike — children project their
/// conserved averages into their parents after every step, so the root
/// holds the (conservatively averaged) refined solution.
template <class Fn>
void for_each_root_density(const core::Simulation& sim, Fn&& fn) {
  for (const mesh::Grid* g : sim.hierarchy().grids(0)) {
    const auto rho = g->field(mesh::Field::kDensity);
    const auto& ld = g->spec().level_dims;
    for (int k = 0; k < g->nx(2); ++k)
      for (int j = 0; j < g->nx(1); ++j)
        for (int i = 0; i < g->nx(0); ++i) {
          const double x =
              (static_cast<double>(g->box().lo[0] + i) + 0.5) / ld[0];
          const double y =
              (static_cast<double>(g->box().lo[1] + j) + 0.5) / ld[1];
          const double z =
              (static_cast<double>(g->box().lo[2] + k) + 0.5) / ld[2];
          fn(x, y, z, rho(g->sx(i), g->sy(j), g->sz(k)));
        }
  }
}

}  // namespace enzo::problems::detail
