// Problem "Uniform": a uniform periodic medium.  The trivial smoke-test
// problem — and a real regression check: on a periodic uniform state every
// term in the update vanishes, so any drift of the density field away from
// exactly uniform is a solver bug, which is what the l1 callback measures.

#include <cmath>

#include "core/setup.hpp"
#include "problems/detail.hpp"
#include "problems/registry.hpp"

namespace enzo::problems {

void register_uniform(Registry& r) {
  ProblemSpec s;
  s.name = "Uniform";
  s.description = "uniform periodic medium (smoke tests / trivial steady state)";
  s.make = [](const core::ParameterDeck& d) {
    return core::uniform_setup(d.uniform_density, d.uniform_eint);
  };
  s.l1_density_error = [](const core::Simulation& sim,
                          const core::ParameterDeck& d) {
    double l1 = 0.0;
    std::int64_t n = 0;
    detail::for_each_root_density(
        sim, [&](double, double, double, double rho) {
          l1 += std::abs(rho - d.uniform_density);
          ++n;
        });
    return l1 / static_cast<double>(n);
  };
  s.smoke_deck =
      "TopGridDimensions = 8 8 8\n"
      "StopSteps = 2\n";
  r.add(std::move(s));
}

}  // namespace enzo::problems
