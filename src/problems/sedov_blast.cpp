// Problems "SedovBlast" and "SedovBlastSMR": the Sedov–Taylor point blast,
// r_shock(t) = beta (E t^2 / rho0)^{1/5}.  Thermal energy SedovEnergy is
// deposited in a sphere of radius SedovDepositRadius about the box center
// in an ambient medium with rho = 1, eint = 1e-4; the deposit happens in a
// fill hook so static/dynamic refinement of the initial state stays
// consistent across levels (children interpolate the deposited profile).
// The l1 callback compares root-level density against the similarity
// solution, giving the harness a genuinely 3-d, shock-dominated AMR
// convergence gate.

#include <cmath>

#include "analysis/reference.hpp"
#include "core/setup.hpp"
#include "problems/detail.hpp"
#include "problems/registry.hpp"
#include "util/error.hpp"

namespace enzo::problems {

namespace {

constexpr double kAmbientDensity = 1.0;
constexpr double kAmbientEint = 1e-4;

/// Uniform cold medium + central thermal-energy deposit.  The cell count is
/// taken first so the discrete deposit integrates to exactly SedovEnergy on
/// the root lattice regardless of tiling.
core::ProblemSetup sedov_setup(const core::ParameterDeck& d) {
  const double energy = d.sedov.energy;
  const double r_dep = d.sedov.radius;
  core::ProblemSetup setup =
      core::uniform_setup(kAmbientDensity, kAmbientEint);
  setup.configure([](core::SimulationConfig& cfg) {
    cfg.enable_gravity = false;
    cfg.enable_chemistry = false;
    cfg.enable_particles = false;
  });
  setup.fill([energy, r_dep](core::Simulation& sim) {
    auto grids = sim.hierarchy().grids(0);
    const auto& ld = grids[0]->spec().level_dims;
    const double cell_vol = 1.0 / (static_cast<double>(ld[0]) * ld[1] * ld[2]);
    auto in_sphere = [&](const mesh::Grid* g, int i, int j, int k) {
      const double x = (static_cast<double>(g->box().lo[0] + i) + 0.5) / ld[0];
      const double y = (static_cast<double>(g->box().lo[1] + j) + 0.5) / ld[1];
      const double z = (static_cast<double>(g->box().lo[2] + k) + 0.5) / ld[2];
      const double dx = x - 0.5, dy = y - 0.5, dz = z - 0.5;
      return dx * dx + dy * dy + dz * dz < r_dep * r_dep;
    };
    std::int64_t count = 0;
    for (const mesh::Grid* g : grids)
      for (int k = 0; k < g->nx(2); ++k)
        for (int j = 0; j < g->nx(1); ++j)
          for (int i = 0; i < g->nx(0); ++i)
            if (in_sphere(g, i, j, k)) ++count;
    ENZO_REQUIRE(count > 0,
                 "SedovDepositRadius smaller than a root cell — raise it or "
                 "the resolution");
    // E = sum rho e V over the deposit; rho = 1 in the ambient medium.
    const double e_cell =
        energy / (static_cast<double>(count) * cell_vol * kAmbientDensity);
    for (mesh::Grid* g : grids) {
      const mesh::FieldView ei = g->field(mesh::Field::kInternalEnergy);
      const mesh::FieldView et = g->field(mesh::Field::kTotalEnergy);
      for (int k = 0; k < g->nx(2); ++k)
        for (int j = 0; j < g->nx(1); ++j)
          for (int i = 0; i < g->nx(0); ++i)
            if (in_sphere(g, i, j, k)) {
              ei(g->sx(i), g->sy(j), g->sz(k)) = e_cell;
              et(g->sx(i), g->sy(j), g->sz(k)) = e_cell;
            }
    }
  });
  return setup;
}

double sedov_l1(const core::Simulation& sim, const core::ParameterDeck& d) {
  const analysis::SedovSolution sol(sim.config().hydro.gamma);
  const double t = sim.time_d();
  const double energy = d.sedov.energy;
  double l1 = 0.0;
  std::int64_t n = 0;
  detail::for_each_root_density(
      sim, [&](double x, double y, double z, double rho) {
        const double dx = x - 0.5, dy = y - 0.5, dz = z - 0.5;
        const double rad = std::sqrt(dx * dx + dy * dy + dz * dz);
        l1 += std::abs(rho - sol.density(rad, t, energy, kAmbientDensity));
        ++n;
      });
  return l1 / static_cast<double>(n);
}

}  // namespace

void register_sedov_blast(Registry& r) {
  {
    ProblemSpec s;
    s.name = "SedovBlast";
    s.description =
        "Sedov–Taylor point blast (similarity-solution reference); dynamic "
        "AMR chases the shock when MaximumRefinementLevel > 0";
    s.make = sedov_setup;
    s.l1_density_error = sedov_l1;
    s.smoke_deck =
        "TopGridDimensions = 12 12 12\n"
        "StopSteps = 2\n";
    r.add(std::move(s));
  }
  {
    ProblemSpec s;
    s.name = "SedovBlastSMR";
    s.description =
        "Sedov blast with a static refined region over the central 3/4 box "
        "(the shock stays inside it through t ~ 0.05)";
    s.make = [](const core::ParameterDeck& d) {
      core::ProblemSetup setup = sedov_setup(d);
      setup.configure([](core::SimulationConfig& cfg) {
        if (cfg.hierarchy.max_level < 1) cfg.hierarchy.max_level = 1;
        cfg.rebuild_interval = 1 << 20;  // static tree
      });
      const auto& dims = d.config.hierarchy.root_dims;
      const int rf = d.config.hierarchy.refine_factor;
      mesh::IndexBox box;
      for (int a = 0; a < 3; ++a) {
        const std::int64_t n1 = static_cast<std::int64_t>(dims[a]) * rf;
        box.lo[a] = n1 / 8;
        box.hi[a] = 7 * n1 / 8;
      }
      setup.static_region(1, box);
      return setup;
    };
    s.l1_density_error = sedov_l1;
    s.smoke_deck =
        "TopGridDimensions = 12 12 12\n"
        "MaximumRefinementLevel = 1\n"
        "StopSteps = 2\n";
    r.add(std::move(s));
  }
}

}  // namespace enzo::problems
