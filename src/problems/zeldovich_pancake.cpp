// Problem "ZeldovichPancake": single-mode cosmological collapse through the
// comoving machinery (§3.2's cosmology-hydro verification test).  While the
// mode is pre-caustic the flow is exactly the Zel'dovich solution — the l1
// callback inverts the Lagrangian map at the current growth factor and
// compares the root-level density against 1 + delta(x), so the regression
// harness gates the comoving Euler + expansion-source path against an exact
// cosmological solution, not just linear theory.

#include <cmath>

#include "analysis/reference.hpp"
#include "core/setup.hpp"
#include "problems/detail.hpp"
#include "problems/registry.hpp"
#include "util/constants.hpp"

namespace enzo::problems {

void register_zeldovich_pancake(Registry& r) {
  ProblemSpec s;
  s.name = "ZeldovichPancake";
  s.description =
      "Zel'dovich pancake: sinusoidal mode collapsing to a caustic "
      "(requires ComovingCoordinates = 1; exact pre-caustic reference)";
  s.make = [](const core::ParameterDeck& d) {
    return core::zeldovich_pancake_setup(d.pancake);
  };
  s.l1_density_error = [](const core::Simulation& sim,
                          const core::ParameterDeck& d) {
    const auto& cfg = sim.config();
    cosmology::Frw frw(cfg.frw);
    // The setup normalizes the mode so the caustic forms at a_caustic:
    // A = 1 / (2 pi D(a_c)).
    const double a_c = cosmology::Frw::a_of_z(d.pancake.a_caustic_redshift);
    analysis::ZeldovichMode m;
    m.amplitude = 1.0 / (constants::kTwoPi * frw.growth_factor(a_c));
    m.growth = frw.growth_factor(sim.scale_factor());
    double l1 = 0.0;
    std::int64_t n = 0;
    detail::for_each_root_density(
        sim, [&](double x, double, double, double rho) {
          l1 += std::abs(rho - (1.0 + analysis::zeldovich_delta(m, x)));
          ++n;
        });
    return l1 / static_cast<double>(n);
  };
  s.smoke_deck =
      "TopGridDimensions = 32 1 1\n"
      "ComovingCoordinates = 1\n"
      "HubbleConstantNow = 0.5\n"
      "OmegaMatterNow = 1.0\n"
      "OmegaBaryonNow = 1.0\n"
      "InitialRedshift = 30\n"
      "PancakeCausticRedshift = 3\n"
      "StopSteps = 1\n";
  r.add(std::move(s));
}

}  // namespace enzo::problems
