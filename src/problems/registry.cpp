#include "problems/registry.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace enzo::problems {

// Built-in problem installers, one per TU in this directory.  Called
// explicitly from the Registry constructor: a plain function call is the
// only registration mechanism that survives static-library linking (an
// unreferenced TU's file-level registrar objects are silently dropped).
void register_uniform(Registry& r);
void register_sod_tube(Registry& r);
void register_sedov_blast(Registry& r);
void register_collapse_cloud(Registry& r);
void register_cosmology(Registry& r);
void register_zeldovich_pancake(Registry& r);

Registry::Registry() {
  register_uniform(*this);
  register_sod_tube(*this);
  register_sedov_blast(*this);
  register_collapse_cloud(*this);
  register_cosmology(*this);
  register_zeldovich_pancake(*this);
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

void Registry::add(ProblemSpec spec) {
  ENZO_REQUIRE(!spec.name.empty(), "problem spec needs a name");
  ENZO_REQUIRE(static_cast<bool>(spec.make),
               "problem '" + spec.name + "' needs a make callback");
  ENZO_REQUIRE(find(spec.name) == nullptr,
               "problem '" + spec.name + "' registered twice");
  auto pos = std::lower_bound(
      specs_.begin(), specs_.end(), spec.name,
      [](const ProblemSpec& s, const std::string& n) { return s.name < n; });
  specs_.insert(pos, std::move(spec));
}

const ProblemSpec* Registry::find(const std::string& name) const {
  auto pos = std::lower_bound(
      specs_.begin(), specs_.end(), name,
      [](const ProblemSpec& s, const std::string& n) { return s.name < n; });
  if (pos == specs_.end() || pos->name != name) return nullptr;
  return &*pos;
}

const ProblemSpec& Registry::at(const std::string& name) const {
  const ProblemSpec* s = find(name);
  if (s == nullptr)
    throw enzo::Error("unknown problem '" + name +
                      "' (registered: " + names_joined() + ")");
  return *s;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const ProblemSpec& s : specs_) out.push_back(s.name);
  return out;
}

std::string Registry::names_joined() const {
  std::string out;
  for (const ProblemSpec& s : specs_) {
    if (!out.empty()) out += ", ";
    out += s.name;
  }
  return out;
}

Registrar::Registrar(ProblemSpec spec) {
  Registry::global().add(std::move(spec));
}

}  // namespace enzo::problems
