#pragma once
// Floating-point operation estimation.
//
// The paper measures a hardware op count on an R10000 for a representative
// run segment and combines it with SP2 wall-clock to quote ~13 Gflop/s
// sustained, then computes a "virtual flop rate" of ~1e44 flop/s versus a
// hypothetical static 1e12^3 grid.  We instrument each solver with an
// analytic per-cell operation estimate (the future project mentioned in §5)
// and accumulate them here; the table_flops bench divides by measured wall
// time to produce the same two numbers.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace enzo::util {

class FlopCounter {
 public:
  void add(const std::string& component, std::uint64_t flops);
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t component(const std::string& name) const;
  std::vector<std::pair<std::string, std::uint64_t>> rows() const;
  void reset();

  static FlopCounter& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counts_;
};

/// Analytic per-cell-update flop estimates for each solver, used consistently
/// across the code.  These are deliberately conservative (counts of the
/// arithmetic in the inner loops, treating transcendental calls as one op,
/// exactly as the paper's hardware counter treats a 128-bit op as one).
namespace flop_cost {
inline constexpr std::uint64_t kPpmPerCellPerSweep = 220;
inline constexpr std::uint64_t kZeusPerCellPerSweep = 70;
inline constexpr std::uint64_t kFftPerPointLog2 = 5;       // per point per log2(N)
inline constexpr std::uint64_t kMultigridPerCellPerSweep = 9;
inline constexpr std::uint64_t kChemistryPerCellPerSubcycle = 400;
inline constexpr std::uint64_t kCicPerParticle = 60;
inline constexpr std::uint64_t kInterpolationPerCell = 25;
inline constexpr std::uint64_t kProjectionPerCell = 4;
}  // namespace flop_cost

}  // namespace enzo::util
