#pragma once
// Arena: pooled, 64-byte-aligned block storage for grid field data.
//
// §5 of the paper calls out that the hierarchy is rebuilt thousands of times
// per run, producing "an extremely large number of memory allocations and
// frees".  Rebuilds destroy and recreate whole levels whose grids are the
// same handful of shapes over and over, so freed blocks are recycled through
// size-class free lists instead of returned to the heap (Athena++'s
// fixed-size MeshBlock pools are the exemplar).  Capacities are rounded up
// to a configurable granularity so near-miss shapes share a size class, and
// every block is 64-byte aligned so field arrays are SIMD/cache-line clean.
//
// Accounting contract: util::AllocStats records *heap* events only — a pool
// hit is invisible to it (that is the point: the regrid-storm stress test
// asserts steady-state heap allocations per rebuild drop to ~0).  Pool
// traffic is published separately through the perf registry as `arena.*`
// metrics (pool_hits / pool_misses / recycled blocks, bytes live / pooled).
//
// Blocks are doubles because every consumer (fields, fluxes, gravity,
// solver scratch) stores doubles; particle-vector recycling is layered on
// top in mesh::StorageArena, which owns one Arena per hierarchy level.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace enzo::util {

struct ArenaConfig {
  /// Recycle released blocks through the free lists.  Off = every acquire
  /// is a heap allocation and every release a heap free (the pre-arena
  /// behaviour, kept selectable for the determinism/benchmark comparisons).
  bool pool = true;
  /// Capacity quantum in doubles: requested sizes are rounded up to a
  /// multiple of this, so grids whose shapes differ slightly still hit the
  /// same size class (deck key BlockGranularity).
  std::int64_t granularity = 2048;
};

/// One storage block on loan from an Arena (or from the heap via the
/// static fallback).  `capacity` is the rounded size in doubles; contents
/// are unspecified on acquire — owners always overwrite (Buffer3 fills).
struct ArenaBlock {
  double* ptr = nullptr;
  std::size_t capacity = 0;
};

class Arena {
 public:
  explicit Arena(ArenaConfig cfg = {});
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A block with capacity >= `doubles` (rounded up to the granularity),
  /// from the matching free list when possible, else freshly heap-allocated
  /// (reported to AllocStats).  Contents are unspecified.
  [[nodiscard]] ArenaBlock acquire(std::size_t doubles);

  /// Return a block.  Pooling on: it joins its size-class free list for the
  /// next regrid.  Pooling off: freed immediately (reported to AllocStats).
  void release(ArenaBlock&& b);

  /// Free every pooled block back to the heap.
  void trim();

  [[nodiscard]] const ArenaConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t bytes_pooled() const;

  // Heap fallback used by buffers not attached to any arena (directly
  // constructed grids in tests, etc.): same alignment and AllocStats
  // reporting, never pooled.
  [[nodiscard]] static ArenaBlock heap_acquire(std::size_t doubles);
  static void heap_release(ArenaBlock&& b);

  /// Process-wide arena for solver scratch (ZEUS viscous-pressure arrays);
  /// thread-local buffers attach here so scratch blocks recycle across
  /// grids and threads instead of churning the heap.
  static Arena& scratch();

 private:
  [[nodiscard]] std::size_t round_up(std::size_t doubles) const;

  ArenaConfig cfg_;
  mutable std::mutex mu_;
  // Size-class free lists keyed by rounded capacity.  Lookup/insert only —
  // never iterated — so pool order cannot leak into observable behaviour.
  std::unordered_map<std::size_t, std::vector<double*>> pool_;
  std::size_t bytes_pooled_ = 0;
};

}  // namespace enzo::util
