#include "util/flops.hpp"

#include "perf/metrics.hpp"

namespace enzo::util {

void FlopCounter::add(const std::string& component, std::uint64_t flops) {
  std::lock_guard<std::mutex> lock(mu_);
  counts_[component] += flops;
}

std::uint64_t FlopCounter::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t t = 0;
  for (auto& [k, v] : counts_) t += v;
  return t;
}

std::uint64_t FlopCounter::component(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> FlopCounter::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counts_.begin(), counts_.end()};
}

void FlopCounter::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
}

FlopCounter& FlopCounter::global() {
  static FlopCounter instance;
  // Publish per-component flop totals into the metrics registry snapshot on
  // first use ("flops.<component>" rows plus the grand total).
  static const bool registered = [] {
    perf::Registry::global().register_source("flops", [] {
      using Sample = perf::Registry::Sample;
      std::vector<Sample> out;
      std::uint64_t total = 0;
      for (const auto& [name, count] : instance.rows()) {
        out.push_back(
            {"flops." + name, "source", static_cast<double>(count)});
        total += count;
      }
      out.push_back({"flops.total", "source", static_cast<double>(total)});
      return out;
    });
    return true;
  }();
  (void)registered;
  return instance;
}

}  // namespace enzo::util
