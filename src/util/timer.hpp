#pragma once
// Per-component wall-clock accounting.
//
// The SC2001 paper reports the fraction of compute time spent in each science
// component (hydro 36 %, Poisson 17 %, chemistry 11 %, N-body 1 %, hierarchy
// rebuild 9 %, boundary conditions 15 %, other 11 %).  ComponentTimers is the
// instrumentation that regenerates that table: every solver phase wraps its
// work in a ScopedTimer keyed by component name, and report() emits the
// fraction-of-total table.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace enzo::util {

/// Named accumulating wall-clock timers.  Not thread-safe by design: the
/// per-rank driver owns one instance; OpenMP-parallel kernels are timed from
/// the serial caller.
class ComponentTimers {
 public:
  /// Canonical component names used by the driver, matching the paper table.
  static constexpr const char* kHydro = "hydrodynamics";
  static constexpr const char* kGravity = "Poisson solver";
  static constexpr const char* kChemistry = "chemistry & cooling";
  static constexpr const char* kNbody = "N-body";
  static constexpr const char* kRebuild = "hierarchy rebuild";
  static constexpr const char* kBoundary = "boundary conditions";
  static constexpr const char* kOther = "other overhead";

  void add(const std::string& name, double seconds) { acc_[name] += seconds; }
  double seconds(const std::string& name) const {
    auto it = acc_.find(name);
    return it == acc_.end() ? 0.0 : it->second;
  }
  double total() const {
    double t = 0;
    for (auto& [k, v] : acc_) t += v;
    return t;
  }

  void reset() { acc_.clear(); }

  /// Rows of (component, seconds, fraction-of-total), descending by time.
  struct Row {
    std::string name;
    double seconds;
    double fraction;
  };
  std::vector<Row> rows() const;

  /// Render the paper-style "component | usage" table.
  std::string report() const;

  /// Process-wide instance used by the Simulation driver.
  static ComponentTimers& global();

 private:
  std::map<std::string, double> acc_;
};

/// RAII scope that accumulates elapsed wall time into a ComponentTimers slot.
class ScopedTimer {
 public:
  ScopedTimer(ComponentTimers& timers, std::string name)
      : timers_(timers), name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto end = std::chrono::steady_clock::now();
    timers_.add(name_, std::chrono::duration<double>(end - start_).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ComponentTimers& timers_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Simple stopwatch for benches.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_).count();
  }
  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace enzo::util
