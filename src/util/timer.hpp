#pragma once
// Per-component wall-clock accounting (compatibility shim).
//
// The SC2001 paper reports the fraction of compute time spent in each science
// component (hydro 36 %, Poisson 17 %, chemistry 11 %, N-body 1 %, hierarchy
// rebuild 9 %, boundary conditions 15 %, other 11 %).  The measurement layer
// behind that table now lives in perf::TraceRecorder (hierarchical scopes,
// per-level accounting, Chrome trace export); ComponentTimers remains as a
// thin shim over it so existing call sites and tests keep working.
// Thread-safe: adds route into the recorder's mutex-protected aggregation,
// so timers may be driven from inside OpenMP regions.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "perf/trace.hpp"

namespace enzo::util {

/// Named accumulating wall-clock timers over a perf::TraceRecorder.  The
/// global() instance shares perf::TraceRecorder::global(), so seconds added
/// here and self time measured by TraceScopes land in one component table.
class ComponentTimers {
 public:
  /// Canonical component names used by the driver, matching the paper table
  /// (aliases of the perf::component constants).
  static constexpr const char* kHydro = perf::component::kHydro;
  static constexpr const char* kGravity = perf::component::kGravity;
  static constexpr const char* kChemistry = perf::component::kChemistry;
  static constexpr const char* kNbody = perf::component::kNbody;
  static constexpr const char* kRebuild = perf::component::kRebuild;
  static constexpr const char* kBoundary = perf::component::kBoundary;
  static constexpr const char* kOther = perf::component::kOther;

  /// A standalone timer set backed by its own private recorder.
  ComponentTimers() : owned_(std::make_unique<perf::TraceRecorder>()),
                      rec_(owned_.get()) {}

  void add(const std::string& name, double seconds) {
    rec_->accumulate(name, name, -1, seconds, seconds, 1);
  }
  [[nodiscard]] double seconds(const std::string& name) const {
    return rec_->component_seconds(name);
  }
  [[nodiscard]] double total() const { return rec_->total_seconds(); }

  void reset() { rec_->reset(); }

  /// The recorder this shim accumulates into.
  perf::TraceRecorder& recorder() { return *rec_; }

  /// Rows of (component, seconds, fraction-of-total), descending by time.
  struct Row {
    std::string name;
    double seconds;
    double fraction;
  };
  std::vector<Row> rows() const;

  /// Render the paper-style "component | usage" table.
  std::string report() const { return rec_->component_report(); }

  /// Process-wide instance used by the Simulation driver (a view over
  /// perf::TraceRecorder::global()).
  static ComponentTimers& global();

 private:
  explicit ComponentTimers(perf::TraceRecorder* shared) : rec_(shared) {}
  std::unique_ptr<perf::TraceRecorder> owned_;
  perf::TraceRecorder* rec_;
};

/// RAII scope that accumulates elapsed wall time into a ComponentTimers slot.
class ScopedTimer {
 public:
  ScopedTimer(ComponentTimers& timers, std::string name)
      : timers_(timers), name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto end = std::chrono::steady_clock::now();
    timers_.add(name_, std::chrono::duration<double>(end - start_).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ComponentTimers& timers_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Simple stopwatch for benches.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_).count();
  }
  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace enzo::util
