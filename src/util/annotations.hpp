#pragma once
// Contract annotations checked by tools/enzo_lint (see DESIGN.md §11).
//
// These macros carry no runtime semantics beyond an optimizer hint; their
// value is that the lint rules key off the tokens, turning the project's
// implicit contracts into machine-checked ones:
//
//   ENZO_HOT
//     Marks a function as hot-path kernel code (hydro/chemistry/gravity
//     inner loops, executor phase bodies).  Inside an ENZO_HOT function
//     body enzo-lint flags heap allocation (`new`, allocating locals,
//     container growth) and locking — per-cell work must run on
//     preallocated, capacity-reusing scratch (see hydro::pencil_scratch).
//     Expands to the GCC/Clang `hot` attribute so the annotation also
//     steers block placement.
//
//   ENZO_UNITS_COMOVING / ENZO_UNITS_PROPER / ENZO_UNITS_BOUNDARY
//     Unit-frame tags for cosmology::CodeUnits consumers.  Code units are
//     comoving (Bryan, Abel & Norman 2001); conversions to the proper/CGS
//     frame (CodeUnits::proper_density, velocity_cgs, temperature_factor,
//     mass_g, comoving_matter_density) are the boundary where the missing-
//     1/a class of bug lives (the PR-2 auditor caught exactly such a mass
//     leak in the flux registers).  enzo-lint requires every function that
//     crosses the boundary to carry ENZO_UNITS_BOUNDARY (or _PROPER when
//     its results live entirely in the proper frame), and flags a function
//     tagged ENZO_UNITS_COMOVING that calls a conversion API.
//
// Suppressions: a finding can be waived with a trailing or preceding
// comment `// enzo-lint: allow(rule-name) reason`, or file-wide with
// `// enzo-lint: allow-file(rule-name) reason`.  Pre-existing debt is
// tracked (not silenced) in tools/enzo_lint/baseline.txt.

#if defined(__GNUC__) || defined(__clang__)
#define ENZO_HOT __attribute__((hot))
#else
#define ENZO_HOT
#endif

#define ENZO_UNITS_COMOVING
#define ENZO_UNITS_PROPER
#define ENZO_UNITS_BOUNDARY
