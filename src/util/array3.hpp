#pragma once
// Array3<T>: an owning, contiguous 3-d array used for all per-grid fields.
//
// Layout is Fortran-ish x-fastest (i + nx*(j + ny*k)) so that 1-d hydro
// sweeps along x are stride-1 and the x-pencil extraction in the PPM/ZEUS
// solvers is a memcpy.  2-d and 1-d problems simply use nz==1 (and ny==1).
//
// The class intentionally has no ghost-zone notion of its own: grids decide
// how many ghost cells a field carries and index accordingly.

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace enzo::util {

/// ArrayView3<T>: a non-owning span over a contiguous 3-d array with the
/// same x-fastest layout, indexing and bounds-check behaviour as Array3.
/// Views are shallow-const handles (a `const ArrayView3<double>` still
/// yields mutable elements, like a span); use ArrayView3<const T> for a
/// read-only view.  Grid storage hands these out so callers never observe
/// where the bytes live (heap, arena block, scratch pool).
template <typename T>
class ArrayView3 {
 public:
  using value_type = std::remove_const_t<T>;

  ArrayView3() = default;
  ArrayView3(T* data, int nx, int ny, int nz)
      : data_(data), nx_(nx), ny_(ny), nz_(nz) {}
  /// Mutable view -> const view conversion.
  template <typename U,
            std::enable_if_t<std::is_same_v<T, const U>, int> = 0>
  ArrayView3(const ArrayView3<U>& o)  // NOLINT(google-explicit-constructor)
      : data_(o.data()), nx_(o.nx()), ny_(o.ny()), nz_(o.nz()) {}

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Signed-64 flattening, identical to Array3::index.
  [[nodiscard]] std::size_t index(int i, int j, int k) const {
    const std::int64_t off =
        static_cast<std::int64_t>(i) +
        static_cast<std::int64_t>(nx_) *
            (static_cast<std::int64_t>(j) +
             static_cast<std::int64_t>(ny_) * static_cast<std::int64_t>(k));
    return static_cast<std::size_t>(off);
  }

#ifdef ENZO_BOUNDS_CHECK
  T& operator()(int i, int j, int k) const { return at(i, j, k); }
#else
  T& operator()(int i, int j, int k) const { return data_[index(i, j, k)]; }
#endif

  T& at(int i, int j, int k) const {
    ENZO_REQUIRE(contains(i, j, k), "ArrayView3::at out of range");
    return data_[index(i, j, k)];
  }

  [[nodiscard]] bool contains(int i, int j, int k) const {
    return i >= 0 && i < nx_ && j >= 0 && j < ny_ && k >= 0 && k < nz_;
  }

  T* data() const { return data_; }

  void fill(value_type v) const {
    static_assert(!std::is_const_v<T>, "fill on a const view");
    std::fill(data_, data_ + size(), v);
  }

  /// Element-wise accumulate (same shape required).
  void add(ArrayView3<const value_type> other,
           value_type scale = value_type{1}) const {
    static_assert(!std::is_const_v<T>, "add on a const view");
    ENZO_REQUIRE(same_shape(other), "ArrayView3::add shape mismatch");
    const value_type* src = other.data();
    for (std::size_t n = 0; n < size(); ++n) data_[n] += scale * src[n];
  }

  template <typename U>
  [[nodiscard]] bool same_shape(const ArrayView3<U>& o) const {
    return nx_ == o.nx() && ny_ == o.ny() && nz_ == o.nz();
  }

  // min/max/sum walk the data in storage order, matching Array3 exactly.
  value_type min() const {
    return empty() ? value_type{} : *std::min_element(data_, data_ + size());
  }
  value_type max() const {
    return empty() ? value_type{} : *std::max_element(data_, data_ + size());
  }
  value_type sum() const {
    value_type s{};
    for (std::size_t n = 0; n < size(); ++n) s += data_[n];
    return s;
  }

  T* begin() const { return data_; }
  T* end() const { return data_ + size(); }

 private:
  T* data_ = nullptr;
  int nx_ = 0, ny_ = 0, nz_ = 0;
};

template <typename T>
class Array3 {
 public:
  Array3() = default;
  Array3(int nx, int ny, int nz, T fill = T{}) { resize(nx, ny, nz, fill); }

  void resize(int nx, int ny, int nz, T fill = T{}) {
    ENZO_REQUIRE(nx >= 0 && ny >= 0 && nz >= 0, "negative Array3 extent");
    nx_ = nx;
    ny_ = ny;
    nz_ = nz;
    data_.assign(static_cast<std::size_t>(nx) * ny * nz, fill);
  }

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Computed in signed 64-bit so a negative index yields a negative offset
  /// (caught by at()/ENZO_BOUNDS_CHECK) instead of silently wrapping through
  /// size_t into a huge in-range-looking value.
  [[nodiscard]] std::size_t index(int i, int j, int k) const {
    const std::int64_t off =
        static_cast<std::int64_t>(i) +
        static_cast<std::int64_t>(nx_) *
            (static_cast<std::int64_t>(j) +
             static_cast<std::int64_t>(ny_) * static_cast<std::int64_t>(k));
    return static_cast<std::size_t>(off);
  }

#ifdef ENZO_BOUNDS_CHECK
  // Debug mode: every field access goes through the checked accessor, so an
  // out-of-range (i,j,k) — including one whose flattened offset happens to
  // land inside the allocation — fails loudly at the call site.
  T& operator()(int i, int j, int k) { return at(i, j, k); }
  const T& operator()(int i, int j, int k) const { return at(i, j, k); }
#else
  T& operator()(int i, int j, int k) { return data_[index(i, j, k)]; }
  const T& operator()(int i, int j, int k) const { return data_[index(i, j, k)]; }
#endif

  T& at(int i, int j, int k) {
    ENZO_REQUIRE(contains(i, j, k), "Array3::at out of range");
    return data_[index(i, j, k)];
  }
  const T& at(int i, int j, int k) const {
    ENZO_REQUIRE(contains(i, j, k), "Array3::at out of range");
    return data_[index(i, j, k)];
  }

  [[nodiscard]] bool contains(int i, int j, int k) const {
    return i >= 0 && i < nx_ && j >= 0 && j < ny_ && k >= 0 && k < nz_;
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Element-wise accumulate (same shape required).
  void add(const Array3& other, T scale = T{1}) {
    ENZO_REQUIRE(same_shape(other), "Array3::add shape mismatch");
    for (std::size_t n = 0; n < data_.size(); ++n) data_[n] += scale * other.data_[n];
  }

  [[nodiscard]] bool same_shape(const Array3& o) const {
    return nx_ == o.nx_ && ny_ == o.ny_ && nz_ == o.nz_;
  }

  T min() const { return data_.empty() ? T{} : *std::min_element(data_.begin(), data_.end()); }
  T max() const { return data_.empty() ? T{} : *std::max_element(data_.begin(), data_.end()); }
  T sum() const {
    T s{};
    for (const T& v : data_) s += v;
    return s;
  }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// Non-owning views for interop with the FieldView-based grid APIs.
  [[nodiscard]] ArrayView3<T> view() { return {data_.data(), nx_, ny_, nz_}; }
  [[nodiscard]] ArrayView3<const T> view() const {
    return {data_.data(), nx_, ny_, nz_};
  }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<T> data_;
};

}  // namespace enzo::util
