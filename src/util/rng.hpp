#pragma once
// Deterministic random number generation for initial conditions and tests.
//
// xoshiro256** (Blackman & Vigna) — fast, high quality, and fully
// reproducible across platforms, which matters because cosmological initial
// conditions must be regenerable bit-for-bit when a run is restarted with
// additional static refinement levels (§4 of the paper).

#include <cmath>
#include <cstdint>

#include "util/constants.hpp"

namespace enzo::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    auto splitmix = [&seed]() {
      std::uint64_t z = (seed += 0x9E3779B97F4A7C15ull);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = splitmix();
    have_gauss_ = false;
  }

  [[nodiscard]] std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (cached pair).
  [[nodiscard]] double gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    cached_ = r * std::sin(constants::kTwoPi * u2);
    have_gauss_ = true;
    return r * std::cos(constants::kTwoPi * u2);
  }

 private:
  std::uint64_t s_[4] = {};
  bool have_gauss_ = false;
  double cached_ = 0.0;
};

}  // namespace enzo::util
