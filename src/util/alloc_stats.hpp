#pragma once
// Grid-memory allocation statistics.
//
// §5 of the paper highlights that the entire grid hierarchy is rebuilt
// thousands of times, producing "an extremely large number of memory
// allocations and frees" — a stress signature of SAMR codes.  Grid field
// allocation/deallocation reports here so the fig5/table benches can emit the
// same statistics (total allocations, frees, live bytes, peak bytes).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace enzo::util {

class AllocStats {
 public:
  void on_alloc(std::size_t bytes) {
    allocations_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t live =
        live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    // Monotonic fetch-max on the post-add live value: the CAS loop retries
    // until `live` is published or another thread has already published a
    // larger peak, so concurrent allocations can never shrink the peak or
    // record a pre-add snapshot.
    std::uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (peak < live &&
           !peak_bytes_.compare_exchange_weak(peak, live,
                                              std::memory_order_relaxed)) {
    }
  }
  void on_free(std::size_t bytes) {
    frees_.fetch_add(1, std::memory_order_relaxed);
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t allocations() const { return allocations_.load(); }
  [[nodiscard]] std::uint64_t frees() const { return frees_.load(); }
  [[nodiscard]] std::uint64_t live_bytes() const { return live_bytes_.load(); }
  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_bytes_.load(); }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_.load(); }

  void reset() {
    allocations_ = 0;
    frees_ = 0;
    live_bytes_ = 0;
    peak_bytes_ = 0;
    total_bytes_ = 0;
  }

  std::string report() const;

  static AllocStats& global();

 private:
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> frees_{0};
  std::atomic<std::uint64_t> live_bytes_{0};
  std::atomic<std::uint64_t> peak_bytes_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
};

}  // namespace enzo::util
