#pragma once
// Physical constants in CGS, plus a few astronomical unit conversions.
// Values follow CODATA / standard astrophysical usage; the chemistry and
// cooling modules consume these directly.

namespace enzo::constants {

// pi and friends, so code never reaches for the POSIX M_PI extension
// (enzo-lint: banned-pi-literal enforces this outside this header).
inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kFourPi = 4.0 * kPi;

inline constexpr double kBoltzmann = 1.380649e-16;       ///< erg / K
inline constexpr double kGravity = 6.67430e-8;           ///< cm^3 g^-1 s^-2
inline constexpr double kProtonMass = 1.67262192e-24;    ///< g
inline constexpr double kElectronMass = 9.1093837e-28;   ///< g
inline constexpr double kHydrogenMass = 1.6735575e-24;   ///< g (H atom)
inline constexpr double kSpeedOfLight = 2.99792458e10;   ///< cm / s
inline constexpr double kThomsonCrossSection = 6.6524587e-25;  ///< cm^2
inline constexpr double kRadiationConstant = 7.5657e-15;       ///< erg cm^-3 K^-4
inline constexpr double kElectronVolt = 1.602176634e-12;       ///< erg

inline constexpr double kMpc = 3.0856775814913673e24;  ///< cm
inline constexpr double kKpc = 3.0856775814913673e21;  ///< cm
inline constexpr double kParsec = 3.0856775814913673e18;  ///< cm
inline constexpr double kAu = 1.495978707e13;             ///< cm
inline constexpr double kSolarMass = 1.98892e33;          ///< g
inline constexpr double kYear = 3.15576e7;                ///< s
inline constexpr double kMegaYear = 3.15576e13;           ///< s

/// Present-day CMB temperature (K); T_cmb(z) = kTcmb0 * (1+z).
inline constexpr double kTcmb0 = 2.725;

/// Hubble constant for h = 1, in s^-1 (100 km/s/Mpc).
inline constexpr double kHubble100 = 3.2407792894443648e-18;

/// Critical density today for h = 1 (g/cm^3): 3 H100^2 / (8 pi G).
inline constexpr double kRhoCrit0 =
    3.0 * kHubble100 * kHubble100 / (8.0 * kPi * kGravity);

/// Primordial hydrogen mass fraction used throughout (paper: ~76 % H, 24 % He).
inline constexpr double kHydrogenFraction = 0.76;

}  // namespace enzo::constants
