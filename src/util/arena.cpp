#include "util/arena.hpp"

#include <atomic>
#include <new>

#include "perf/metrics.hpp"
#include "util/alloc_stats.hpp"
#include "util/error.hpp"

namespace enzo::util {

namespace {

constexpr std::size_t kAlign = 64;  // SIMD / cache-line alignment

// Aggregates across every Arena instance (per-level arenas + scratch), so
// the arena.* gauges describe the whole process.
std::atomic<std::int64_t> g_bytes_live{0};
std::atomic<std::int64_t> g_bytes_pooled{0};

perf::Counter& hits_counter() {
  static perf::Counter& c = perf::Registry::global().counter("arena.pool_hits");
  return c;
}
perf::Counter& misses_counter() {
  static perf::Counter& c =
      perf::Registry::global().counter("arena.pool_misses");
  return c;
}
perf::Counter& recycle_counter() {
  static perf::Counter& c =
      perf::Registry::global().counter("arena.recycled_blocks");
  return c;
}
void publish_gauges() {
  static perf::Gauge& live = perf::Registry::global().gauge("arena.bytes_live");
  static perf::Gauge& pooled =
      perf::Registry::global().gauge("arena.bytes_pooled");
  live.set(static_cast<double>(g_bytes_live.load(std::memory_order_relaxed)));
  pooled.set(
      static_cast<double>(g_bytes_pooled.load(std::memory_order_relaxed)));
}

double* aligned_new(std::size_t doubles) {
  return static_cast<double*>(::operator new(
      doubles * sizeof(double), std::align_val_t{kAlign}));
}
void aligned_delete(double* p) {
  ::operator delete(p, std::align_val_t{kAlign});
}

}  // namespace

Arena::Arena(ArenaConfig cfg) : cfg_(cfg) {
  ENZO_REQUIRE(cfg_.granularity >= 1, "arena granularity must be >= 1");
}

Arena::~Arena() { trim(); }

std::size_t Arena::round_up(std::size_t doubles) const {
  const std::size_t g = static_cast<std::size_t>(cfg_.granularity);
  if (doubles == 0) return g;
  return ((doubles + g - 1) / g) * g;
}

ArenaBlock Arena::acquire(std::size_t doubles) {
  const std::size_t cap = round_up(doubles);
  if (cfg_.pool) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pool_.find(cap);
    if (it != pool_.end() && !it->second.empty()) {
      double* p = it->second.back();
      it->second.pop_back();
      bytes_pooled_ -= cap * sizeof(double);
      g_bytes_pooled.fetch_sub(
          static_cast<std::int64_t>(cap * sizeof(double)),
          std::memory_order_relaxed);
      g_bytes_live.fetch_add(static_cast<std::int64_t>(cap * sizeof(double)),
                             std::memory_order_relaxed);
      hits_counter().add(1);
      publish_gauges();
      return {p, cap};
    }
  }
  misses_counter().add(1);
  ArenaBlock b{aligned_new(cap), cap};
  AllocStats::global().on_alloc(cap * sizeof(double));
  g_bytes_live.fetch_add(static_cast<std::int64_t>(cap * sizeof(double)),
                         std::memory_order_relaxed);
  publish_gauges();
  return b;
}

void Arena::release(ArenaBlock&& b) {
  if (b.ptr == nullptr) return;
  const std::size_t bytes = b.capacity * sizeof(double);
  g_bytes_live.fetch_sub(static_cast<std::int64_t>(bytes),
                         std::memory_order_relaxed);
  if (cfg_.pool) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pool_[b.capacity].push_back(b.ptr);
      bytes_pooled_ += bytes;
    }
    g_bytes_pooled.fetch_add(static_cast<std::int64_t>(bytes),
                             std::memory_order_relaxed);
    recycle_counter().add(1);
  } else {
    aligned_delete(b.ptr);
    AllocStats::global().on_free(bytes);
  }
  publish_gauges();
  b.ptr = nullptr;
  b.capacity = 0;
}

void Arena::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  // enzo-lint: allow(determinism-unordered-iteration) frees only; order unobservable
  for (auto& [cap, blocks] : pool_) {
    for (double* p : blocks) {
      aligned_delete(p);
      AllocStats::global().on_free(cap * sizeof(double));
    }
    g_bytes_pooled.fetch_sub(
        static_cast<std::int64_t>(blocks.size() * cap * sizeof(double)),
        std::memory_order_relaxed);
    blocks.clear();
  }
  pool_.clear();
  bytes_pooled_ = 0;
  publish_gauges();
}

std::size_t Arena::bytes_pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_pooled_;
}

ArenaBlock Arena::heap_acquire(std::size_t doubles) {
  const std::size_t cap = doubles == 0 ? 1 : doubles;
  ArenaBlock b{aligned_new(cap), cap};
  AllocStats::global().on_alloc(cap * sizeof(double));
  return b;
}

void Arena::heap_release(ArenaBlock&& b) {
  if (b.ptr == nullptr) return;
  aligned_delete(b.ptr);
  AllocStats::global().on_free(b.capacity * sizeof(double));
  b.ptr = nullptr;
  b.capacity = 0;
}

Arena& Arena::scratch() {
  static Arena a{ArenaConfig{/*pool=*/true, /*granularity=*/2048}};
  return a;
}

}  // namespace enzo::util
