#include "util/timer.hpp"

namespace enzo::util {

std::vector<ComponentTimers::Row> ComponentTimers::rows() const {
  std::vector<Row> out;
  const auto table = rec_->component_table();
  out.reserve(table.size());
  for (const auto& r : table) out.push_back({r.name, r.seconds, r.fraction});
  return out;
}

ComponentTimers& ComponentTimers::global() {
  static ComponentTimers instance(&perf::TraceRecorder::global());
  return instance;
}

}  // namespace enzo::util
