#include "util/timer.hpp"

#include <algorithm>
#include <cstdio>

namespace enzo::util {

std::vector<ComponentTimers::Row> ComponentTimers::rows() const {
  std::vector<Row> out;
  const double tot = total();
  out.reserve(acc_.size());
  for (auto& [name, sec] : acc_)
    out.push_back({name, sec, tot > 0 ? sec / tot : 0.0});
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return a.seconds > b.seconds; });
  return out;
}

std::string ComponentTimers::report() const {
  std::string s;
  s += "component                     usage      seconds\n";
  s += "-------------------------------------------------\n";
  char buf[128];
  for (const Row& r : rows()) {
    std::snprintf(buf, sizeof(buf), "%-28s %5.1f %%   %9.3f\n", r.name.c_str(),
                  100.0 * r.fraction, r.seconds);
    s += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-28s           %9.3f\n", "total", total());
  s += buf;
  return s;
}

ComponentTimers& ComponentTimers::global() {
  static ComponentTimers instance;
  return instance;
}

}  // namespace enzo::util
