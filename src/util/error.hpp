#pragma once
// Error handling for enzo-mini.
//
// ENZO_REQUIRE is used for checking preconditions and invariants that are
// cheap relative to the work they guard (hierarchy containment, alignment,
// field presence).  Violations throw enzo::Error so tests can assert on
// failure injection rather than aborting the process.

#include <stdexcept>
#include <string>

namespace enzo {

/// Exception thrown on violated invariants and unrecoverable input errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": requirement failed: " + expr + (msg.empty() ? "" : " — ") +
              msg);
}
}  // namespace detail

}  // namespace enzo

#define ENZO_REQUIRE(cond, msg)                                     \
  do {                                                              \
    if (!(cond)) ::enzo::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define ENZO_UNREACHABLE(msg) \
  ::enzo::detail::fail("unreachable", __FILE__, __LINE__, (msg))
