#include "util/alloc_stats.hpp"

#include <cstdio>

#include "perf/metrics.hpp"

namespace enzo::util {

std::string AllocStats::report() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "grid-field allocations: %llu, frees: %llu\n"
                "live bytes: %llu, peak bytes: %llu, cumulative bytes: %llu\n",
                static_cast<unsigned long long>(allocations()),
                static_cast<unsigned long long>(frees()),
                static_cast<unsigned long long>(live_bytes()),
                static_cast<unsigned long long>(peak_bytes()),
                static_cast<unsigned long long>(total_bytes()));
  return buf;
}

AllocStats& AllocStats::global() {
  static AllocStats instance;
  // Publish the process-wide stats into the metrics registry snapshot on
  // first use ("alloc.*" rows).
  static const bool registered = [] {
    perf::Registry::global().register_source("alloc", [] {
      const AllocStats& s = instance;
      using Sample = perf::Registry::Sample;
      return std::vector<Sample>{
          {"alloc.allocations", "source", static_cast<double>(s.allocations())},
          {"alloc.frees", "source", static_cast<double>(s.frees())},
          {"alloc.live_bytes", "source", static_cast<double>(s.live_bytes())},
          {"alloc.peak_bytes", "source", static_cast<double>(s.peak_bytes())},
          {"alloc.total_bytes", "source",
           static_cast<double>(s.total_bytes())}};
    });
    return true;
  }();
  (void)registered;
  return instance;
}

}  // namespace enzo::util
