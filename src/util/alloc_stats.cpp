#include "util/alloc_stats.hpp"

#include <cstdio>

namespace enzo::util {

std::string AllocStats::report() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "grid-field allocations: %llu, frees: %llu\n"
                "live bytes: %llu, peak bytes: %llu, cumulative bytes: %llu\n",
                static_cast<unsigned long long>(allocations()),
                static_cast<unsigned long long>(frees()),
                static_cast<unsigned long long>(live_bytes()),
                static_cast<unsigned long long>(peak_bytes()),
                static_cast<unsigned long long>(total_bytes()));
  return buf;
}

AllocStats& AllocStats::global() {
  static AllocStats instance;
  return instance;
}

}  // namespace enzo::util
