#pragma once
// The level-execution engine (§3.4): grids are the unit of work.
//
// Every per-level sweep in the driver — hydro/chemistry/N-body grid steps,
// boundary sibling fills, the multigrid solve/exchange passes, CIC deposits,
// flux-register scatter and projection — is expressed as a *phase*: a named
// batch of independent tasks submitted through LevelExecutor::for_each.
// Two backends implement the API:
//
//   * SerialExecutor     — runs tasks inline in index order; bit-identical
//                          to the historical serial loops.
//   * ThreadPoolExecutor — a persistent work-stealing pool.  Tasks are
//                          seeded round-robin in descending cost order (the
//                          cost model rides on the PR-1 metrics registry) so
//                          big grids schedule first; idle lanes steal.
//
// Determinism policy: a task may write only state it owns (its grid, or its
// own parent-group for scatter phases), so results are independent of
// execution order.  Reductions that are sensitive to combining order
// (timestep min with limiter attribution) go through reduce_ordered: the
// per-item map runs in parallel, the fold runs serially left-to-right on the
// calling thread — bit-identical to a serial loop at any thread count.
//
// Invalidation contract: the grid list a phase iterates is snapshotted by
// the caller *before* the phase; the hierarchy must not be rebuilt while a
// phase is in flight.  exec::in_phase() is true for the duration of every
// for_each/parallel_for, and mesh::Hierarchy::rebuild asserts against it.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/exec_config.hpp"

namespace enzo::exec {

/// Phase tag: a name for the trace path, a perf-component attribution for
/// the §5-style tables, and the refinement level being swept.
struct Phase {
  const char* name;
  const char* component = nullptr;  ///< perf::component::*; nullptr inherits
  int level = -1;
};

/// True while any executor phase (for_each or a nested parallel_for) is
/// executing in this process.  Hierarchy mutation is forbidden inside.
bool in_phase();

class LevelExecutor {
 public:
  virtual ~LevelExecutor() = default;

  virtual Backend backend() const = 0;
  /// Execution lanes (persistent workers + the participating caller).
  virtual int threads() const = 0;

  using TaskFn = std::function<void(std::size_t)>;
  using CostFn = std::function<std::uint64_t(std::size_t)>;

  /// Run fn(0..n-1) as independent tasks and block until all complete.
  /// `cost`, when given, seeds the scheduling order (most expensive first);
  /// it never affects results.  The first exception thrown by a task is
  /// rethrown here after the remaining tasks of the phase are cancelled.
  void for_each(const Phase& phase, std::size_t n, const TaskFn& fn,
                const CostFn& cost = {});

  /// Nested data-parallel loop over [0, n), callable from inside a task
  /// (the two demoted OpenMP kernels: hydro pencils, chemistry cells).
  /// fn(begin, end) receives contiguous chunks of at least `grain` items.
  virtual void parallel_for(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn) = 0;

  /// Deterministic ordered reduction: map(i) runs as a parallel phase into
  /// per-index slots, then the fold walks the slots serially in index order
  /// on the calling thread.  Bit-identical to the serial loop
  /// `for (i) acc = fold(acc, map(i))` at any thread count.
  template <class T, class MapFn, class FoldFn>
  T reduce_ordered(const Phase& phase, std::size_t n, T init,
                   const MapFn& map, const FoldFn& fold) {
    std::vector<T> slots(n, init);
    for_each(phase, n, [&](std::size_t i) { slots[i] = map(i); });
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) acc = fold(acc, slots[i]);
    return acc;
  }

 protected:
  /// Backend hook: run the tasks of one phase (phase accounting, tracing
  /// and the in-phase guard are handled by for_each).
  virtual void run_tasks(std::size_t n, const TaskFn& fn,
                         const CostFn& cost) = 0;
};

/// Inline backend: index order, calling thread, zero overhead.
class SerialExecutor final : public LevelExecutor {
 public:
  Backend backend() const override { return Backend::kSerial; }
  int threads() const override { return 1; }
  void parallel_for(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn) override;

 protected:
  void run_tasks(std::size_t n, const TaskFn& fn, const CostFn& cost) override;
};

/// Persistent work-stealing pool.  One mutex/condvar protects all queues
/// (task granularity is whole grids, so queue traffic is cheap); each lane
/// owns a deque, pops its own front (biggest seeded first) and steals from
/// other lanes' backs.  The caller participates as lane 0 while a phase is
/// in flight, so `threads == 1` degenerates to inline execution.
class ThreadPoolExecutor final : public LevelExecutor {
 public:
  /// threads: total lanes (0 → hardware concurrency); pin: pthread affinity.
  explicit ThreadPoolExecutor(int threads, bool pin = false);
  ~ThreadPoolExecutor() override;

  Backend backend() const override { return Backend::kThreadPool; }
  int threads() const override { return lanes_; }
  void parallel_for(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn) override;

  /// Tasks executed from a queue other than the running lane's own.
  std::uint64_t steals() const;
  std::uint64_t tasks_run() const;

 protected:
  void run_tasks(std::size_t n, const TaskFn& fn, const CostFn& cost) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int lanes_ = 1;
};

/// Build the backend the config asks for.
std::unique_ptr<LevelExecutor> make_executor(const ExecConfig& cfg);

/// The process-wide serial fallback used when callers pass no executor.
SerialExecutor& serial_executor();

/// Null-tolerant helpers for optional executor parameters.
inline LevelExecutor& fallback(LevelExecutor* ex) {
  return ex != nullptr ? *ex : serial_executor();
}
inline void maybe_parallel_for(
    LevelExecutor* ex, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (ex != nullptr)
    ex->parallel_for(n, grain, fn);
  else
    fn(0, n);
}

}  // namespace enzo::exec
