#include "exec/executor.hpp"

#include "util/annotations.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/error.hpp"

namespace enzo::exec {

namespace {

std::atomic<int> g_phase_depth{0};

struct PhaseDepthGuard {
  PhaseDepthGuard() { g_phase_depth.fetch_add(1, std::memory_order_relaxed); }
  ~PhaseDepthGuard() { g_phase_depth.fetch_sub(1, std::memory_order_relaxed); }
};

/// Lane of the current thread inside a ThreadPoolExecutor: workers get their
/// slot at startup, every external thread (the driver) is lane 0.
thread_local int t_slot = 0;

}  // namespace

bool in_phase() { return g_phase_depth.load(std::memory_order_relaxed) > 0; }

Backend backend_from_string(const std::string& s) {
  if (s == "serial") return Backend::kSerial;
  if (s == "threadpool") return Backend::kThreadPool;
  throw Error("unknown executor backend \"" + s +
              "\" (expected serial | threadpool)");
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSerial:
      return "serial";
    case Backend::kThreadPool:
      return "threadpool";
  }
  return "?";
}

void LevelExecutor::for_each(const Phase& phase, std::size_t n,
                             const TaskFn& fn, const CostFn& cost) {
  perf::TraceScope scope(phase.name, phase.component, phase.level);
  static perf::Counter& phases = perf::Registry::global().counter("exec.phases");
  static perf::Counter& tasks = perf::Registry::global().counter("exec.tasks");
  phases.add(1);
  tasks.add(n);
  if (n == 0) return;
  PhaseDepthGuard depth;
  run_tasks(n, fn, cost);
}

// ---------------------------------------------------------------------------
// SerialExecutor

ENZO_HOT void SerialExecutor::run_tasks(std::size_t n, const TaskFn& fn,
                                        const CostFn& /*cost*/) {
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

void SerialExecutor::parallel_for(
    std::size_t n, std::size_t /*grain*/,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  PhaseDepthGuard depth;
  fn(0, n);
}

// ---------------------------------------------------------------------------
// ThreadPoolExecutor

struct ThreadPoolExecutor::Impl {
  /// One in-flight for_each/parallel_for batch.  Tasks of a cancelled group
  /// are still popped and retired (so queues drain) but their body is
  /// skipped; the first exception wins.
  struct Group {
    std::size_t remaining = 0;
    std::exception_ptr error;
    bool cancelled = false;
  };
  struct Task {
    Group* group;
    std::function<void()> body;
  };

  // One mutex/condvar guards every queue and group.  Tasks are whole grids
  // (or large cell chunks), so queue traffic is orders of magnitude cheaper
  // than the work it dispatches; coarse locking keeps the pool trivially
  // TSan-clean.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::deque<Task>> queues;
  std::vector<std::thread> workers;
  bool stop = false;
  std::uint64_t steals = 0;
  std::uint64_t tasks_run = 0;
  int lanes = 1;

  /// Pop-and-run one task visible to `slot` — own queue from the front
  /// (biggest seeded work first), other queues from the back (classic
  /// steal).  When `only` is set (a drain waiting on its own group), tasks
  /// of other groups are left alone so nested batches stay leaf-only.
  /// Called and returns with `lk` held; unlocks around the task body.
  bool try_run_one(std::unique_lock<std::mutex>& lk, int slot, Group* only) {
    Task t;
    int src = -1;
    auto take_from = [&](int q) {
      auto& dq = queues[static_cast<std::size_t>(q)];
      if (q == slot) {
        for (auto it = dq.begin(); it != dq.end(); ++it)
          if (only == nullptr || it->group == only) {
            t = std::move(*it);
            dq.erase(it);
            src = q;
            return;
          }
      } else {
        for (auto it = dq.rbegin(); it != dq.rend(); ++it)
          if (only == nullptr || it->group == only) {
            t = std::move(*it);
            dq.erase(std::next(it).base());
            src = q;
            return;
          }
      }
    };
    take_from(slot);
    for (int q = 0; src < 0 && q < lanes; ++q)
      if (q != slot) take_from(q);
    if (src < 0) return false;

    Group* g = t.group;
    const bool skip = g->cancelled;
    std::exception_ptr err;
    if (!skip) {
      lk.unlock();
      try {
        t.body();
      } catch (...) {
        err = std::current_exception();
      }
      lk.lock();
      ++tasks_run;
      if (src != slot) {
        ++steals;
        static perf::Counter& c = perf::Registry::global().counter("exec.steals");
        c.add(1);
      }
    }
    if (err) {
      if (!g->error) g->error = err;
      g->cancelled = true;
    }
    if (--g->remaining == 0) cv.notify_all();
    return true;
  }

  void worker_main(int slot) {
    t_slot = slot;
    std::unique_lock<std::mutex> lk(mu);
    while (true) {
      if (try_run_one(lk, slot, nullptr)) continue;
      if (stop) return;
      cv.wait(lk);
    }
  }

  /// Block until every task of `g` has retired, helping with this group's
  /// queued tasks while waiting.  Rethrows the group's first exception.
  void drain(std::unique_lock<std::mutex>& lk, Group& g) {
    while (g.remaining != 0) {
      if (!try_run_one(lk, t_slot, &g)) cv.wait(lk);
    }
    if (g.error) {
      std::exception_ptr err = g.error;
      lk.unlock();
      std::rethrow_exception(err);
    }
  }
};

ThreadPoolExecutor::ThreadPoolExecutor(int threads, bool pin)
    : impl_(std::make_unique<Impl>()) {
  int lanes = threads;
  if (lanes <= 0) lanes = static_cast<int>(std::thread::hardware_concurrency());
  if (lanes < 1) lanes = 1;
  lanes_ = lanes;
  impl_->lanes = lanes;
  impl_->queues.resize(static_cast<std::size_t>(lanes));
  impl_->workers.reserve(static_cast<std::size_t>(lanes - 1));
  for (int s = 1; s < lanes; ++s)
    impl_->workers.emplace_back([this, s] { impl_->worker_main(s); });
#ifdef __linux__
  if (pin) {
    const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
    for (int s = 1; s < lanes; ++s) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(s) % ncpu, &set);
      pthread_setaffinity_np(impl_->workers[static_cast<std::size_t>(s - 1)]
                                 .native_handle(),
                             sizeof(set), &set);
    }
  }
#else
  (void)pin;
#endif
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

std::uint64_t ThreadPoolExecutor::steals() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->steals;
}

std::uint64_t ThreadPoolExecutor::tasks_run() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->tasks_run;
}

void ThreadPoolExecutor::run_tasks(std::size_t n, const TaskFn& fn,
                                   const CostFn& cost) {
  Impl& im = *impl_;
  // Seed in descending cost order, round-robin across lanes, so the biggest
  // grids start first on distinct lanes and the tail load-balances by
  // stealing.  Scheduling order never affects results (tasks are
  // independent), so the sort needs no determinism guarantees beyond
  // stability for reproducible traces.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (cost) {
    std::vector<std::uint64_t> c(n);
    for (std::size_t i = 0; i < n; ++i) c[i] = cost(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return c[a] > c[b]; });
  }
  Impl::Group g;
  g.remaining = n;
  std::unique_lock<std::mutex> lk(im.mu);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    const auto q = static_cast<std::size_t>(
        (static_cast<std::size_t>(t_slot) + k) % static_cast<std::size_t>(im.lanes));
    im.queues[q].push_back(Impl::Task{&g, [&fn, i] { fn(i); }});
  }
  im.cv.notify_all();
  im.drain(lk, g);
}

void ThreadPoolExecutor::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  PhaseDepthGuard depth;
  Impl& im = *impl_;
  if (grain == 0) grain = 1;
  // Cap chunk count at a small multiple of the lane count: enough slack for
  // stealing to balance, little enough that per-chunk overhead stays noise.
  const auto max_chunks = static_cast<std::size_t>(im.lanes) * 4;
  const std::size_t chunk =
      std::max(grain, (n + max_chunks - 1) / max_chunks);
  const std::size_t nchunks = (n + chunk - 1) / chunk;
  if (im.lanes == 1 || nchunks <= 1) {
    fn(0, n);
    return;
  }
  Impl::Group g;
  g.remaining = nchunks;
  std::unique_lock<std::mutex> lk(im.mu);
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t b = c * chunk;
    const std::size_t e = std::min(n, b + chunk);
    const auto q = static_cast<std::size_t>(
        (static_cast<std::size_t>(t_slot) + c) % static_cast<std::size_t>(im.lanes));
    im.queues[q].push_back(Impl::Task{&g, [&fn, b, e] { fn(b, e); }});
  }
  im.cv.notify_all();
  im.drain(lk, g);
}

// ---------------------------------------------------------------------------

std::unique_ptr<LevelExecutor> make_executor(const ExecConfig& cfg) {
  std::unique_ptr<LevelExecutor> ex;
  switch (cfg.backend) {
    case Backend::kSerial:
      ex = std::make_unique<SerialExecutor>();
      break;
    case Backend::kThreadPool:
      ex = std::make_unique<ThreadPoolExecutor>(cfg.threads, cfg.pin);
      break;
  }
  ENZO_REQUIRE(ex != nullptr, "unknown executor backend");
  perf::Registry::global().gauge("exec.threads").set(ex->threads());
  return ex;
}

SerialExecutor& serial_executor() {
  static SerialExecutor ex;
  return ex;
}

}  // namespace enzo::exec
