#pragma once
// Execution-backend selection: one struct threaded from the parameter deck
// (`Threads = 8`, `Executor = threadpool`) or `run_deck --threads N` through
// SimulationConfig to the LevelExecutor factory, replacing the old
// env-var-only OMP_NUM_THREADS control.

#include <string>

namespace enzo::exec {

enum class Backend {
  kSerial,      ///< today's ordering, inline on the calling thread
  kThreadPool,  ///< persistent work-stealing pool, per-grid tasks
};

struct ExecConfig {
  Backend backend = Backend::kSerial;
  /// Total execution lanes (workers + participating caller); 0 means all
  /// hardware threads.
  int threads = 0;
  /// Pin workers to cores (Linux only; ignored elsewhere).
  bool pin = false;
};

/// "serial" | "threadpool" (case-sensitive, like deck keys).  Throws
/// enzo::Error on anything else.
Backend backend_from_string(const std::string& s);
const char* backend_name(Backend b);

}  // namespace enzo::exec
