#pragma once
// Distributed SAMR boundary exchange (§3.4, over the in-process transport).
//
// The paper distributes whole grids over ranks; the per-level sibling
// boundary exchange then becomes message traffic.  This module runs that
// exact protocol against a real mesh::Hierarchy:
//
//   1. grids of a level are assigned to ranks (the caller typically uses
//      balance_lpt on cells × timestep weights);
//   2. every rank holds the full *sterile* metadata (descriptors + owners),
//      so each rank computes, locally and without probing, both the overlap
//      blocks it must send and the ones it will receive;
//   3. phase one posts all sends (need-ordering is trivial here since the
//      receive loop consumes deterministically); phase two receives and
//      writes ghost zones.
//
// The result must be bit-identical to the serial
// mesh::set_boundary_values sibling pass — asserted by the tests — while
// the transport's statistics expose the §3.4 claims (no probes, message
// and byte counts).

#include "mesh/hierarchy.hpp"
#include "parallel/comm.hpp"
#include "parallel/sterile.hpp"

namespace enzo::parallel {

/// One overlap transfer: source grid region → destination grid ghosts.
struct ExchangeBlock {
  std::uint64_t src_id = 0, dst_id = 0;
  mesh::IndexBox region;    ///< global (unshifted) destination-side box
  mesh::Index3 shift{};     ///< periodic image shift applied to the source
};

/// Compute the full sibling-exchange plan for a level from sterile metadata
/// only (no grid data): every (ghost-region ∩ shifted sibling) overlap.
std::vector<ExchangeBlock> plan_sibling_exchange(const mesh::Hierarchy& h,
                                                 int level);

/// Execute the sibling ghost exchange for `level` with grids distributed by
/// `owner` (rank per grid, in h.grids(level) order) over `nranks` ranks.
/// Each rank only reads grids it owns and only writes ghosts of grids it
/// owns; all cross-rank data moves through the transport.  Returns the
/// transport statistics.
CommStats distributed_sibling_exchange(mesh::Hierarchy& h, int level,
                                       const std::vector<int>& owner,
                                       int nranks);

}  // namespace enzo::parallel
