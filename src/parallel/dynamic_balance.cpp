#include "parallel/dynamic_balance.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace enzo::parallel {

RebalanceResult DynamicBalancer::rebalance(const std::vector<GridLoad>& grids) {
  ENZO_REQUIRE(nranks_ >= 1, "balancer needs at least one rank");
  RebalanceResult out;
  std::vector<double> load(static_cast<std::size_t>(nranks_), 0.0);

  // 1. Surviving grids keep their rank; collect newcomers.
  std::vector<const GridLoad*> fresh;
  for (const GridLoad& g : grids) {
    auto it = previous_.find(g.id);
    if (it != previous_.end()) {
      out.owner[g.id] = it->second;
      load[static_cast<std::size_t>(it->second)] += g.weight;
    } else {
      fresh.push_back(&g);
    }
  }
  // 2. Place newcomers heaviest-first on the least-loaded rank (LPT step).
  std::sort(fresh.begin(), fresh.end(),
            [](const GridLoad* a, const GridLoad* b) {
              return a->weight > b->weight;
            });
  for (const GridLoad* g : fresh) {
    const int r = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    out.owner[g->id] = r;
    load[static_cast<std::size_t>(r)] += g->weight;
  }

  auto imbalance = [&] {
    const double mx = *std::max_element(load.begin(), load.end());
    const double avg =
        std::accumulate(load.begin(), load.end(), 0.0) / nranks_;
    return avg > 0 ? mx / avg - 1.0 : 0.0;
  };

  // 3. Migrate while over threshold: repeatedly move the grid from the
  // most-loaded rank whose transfer best improves balance per byte moved.
  int guard = static_cast<int>(grids.size()) + 8;
  while (imbalance() > threshold_ && guard-- > 0) {
    const int src = static_cast<int>(
        std::max_element(load.begin(), load.end()) - load.begin());
    const int dst = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    if (src == dst) break;
    const double gap = load[static_cast<std::size_t>(src)] -
                       load[static_cast<std::size_t>(dst)];
    // Candidate: grid on src with the largest weight not exceeding half the
    // gap (so the move strictly shrinks it), cheapest bytes on ties.
    const GridLoad* best = nullptr;
    for (const GridLoad& g : grids) {
      if (out.owner[g.id] != src) continue;
      if (g.weight >= gap) continue;  // would overshoot or just swap roles
      if (!best || g.weight > best->weight ||
          (g.weight == best->weight && g.bytes < best->bytes))
        best = &g;
    }
    if (!best) break;  // only monolithic grids remain: imbalance floor
    out.owner[best->id] = dst;
    load[static_cast<std::size_t>(src)] -= best->weight;
    load[static_cast<std::size_t>(dst)] += best->weight;
    // Migration cost counts only if the grid existed before (new grids have
    // no data resident anywhere yet).
    if (previous_.count(best->id)) {
      out.migrated_bytes += best->bytes;
      ++out.migrations;
    }
  }

  out.imbalance = imbalance();
  total_migrated_ += out.migrated_bytes;
  previous_ = out.owner;
  return out;
}

}  // namespace enzo::parallel
