#pragma once
// Pipelined two-phase communication (§3.4).
//
// "We optimize this by dividing each stage into two steps.  First, all of
// the data are processed and sent.  Since all processors have the location
// of all other grids locally (thanks to the sterile objects), we can order
// these sends such that the data that are required first are sent first.
// Then, in the receive stage, the data needed immediately have had a chance
// to propagate across the network while the rest of the sends were
// initiated ... resulted in a large decrease in wait times."
//
// pipeline_order produces that need-first ordering; simulated_wait models a
// sender emitting messages back-to-back over a finite-bandwidth link while
// the receiver consumes them in need order, returning the total stall time —
// the quantity the paper reports as reduced.

#include <cstdint>
#include <vector>

namespace enzo::parallel {

struct SendTask {
  int dst = 0;          ///< destination rank (informational)
  double bytes = 0;     ///< message size
  int need_order = 0;   ///< position in the receiver's consumption sequence
};

/// Indices of tasks ordered so the earliest-needed data is sent first.
std::vector<int> pipeline_order(const std::vector<SendTask>& tasks);

/// Creation-order baseline.
std::vector<int> naive_order(std::size_t n);

/// Total receiver stall time: the sender emits in `order` back-to-back at
/// `bandwidth` bytes/s with per-message `latency`; the receiver consumes in
/// need order, spending `proc_time` on each message after it arrives.
double simulated_wait(const std::vector<SendTask>& tasks,
                      const std::vector<int>& order, double bandwidth,
                      double latency, double proc_time);

}  // namespace enzo::parallel
