#include "parallel/load_balance.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace enzo::parallel {

namespace {
LoadBalanceResult finish(std::vector<int> owner,
                         const std::vector<double>& weights, int nranks) {
  LoadBalanceResult r;
  r.owner = std::move(owner);
  std::vector<double> load(nranks, 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i)
    load[static_cast<std::size_t>(r.owner[i])] += weights[i];
  r.max_load = *std::max_element(load.begin(), load.end());
  r.avg_load = std::accumulate(load.begin(), load.end(), 0.0) / nranks;
  return r;
}
}  // namespace

LoadBalanceResult balance_lpt(const std::vector<double>& weights, int nranks) {
  ENZO_REQUIRE(nranks >= 1, "need at least one rank");
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });
  std::vector<double> load(nranks, 0.0);
  std::vector<int> owner(weights.size(), 0);
  for (std::size_t idx : order) {
    const int r = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    owner[idx] = r;
    load[static_cast<std::size_t>(r)] += weights[idx];
  }
  return finish(std::move(owner), weights, nranks);
}

LoadBalanceResult balance_round_robin(const std::vector<double>& weights,
                                      int nranks) {
  ENZO_REQUIRE(nranks >= 1, "need at least one rank");
  std::vector<int> owner(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i)
    owner[i] = static_cast<int>(i % static_cast<std::size_t>(nranks));
  return finish(std::move(owner), weights, nranks);
}

}  // namespace enzo::parallel
