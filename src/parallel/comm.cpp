#include "parallel/comm.hpp"

#include "perf/metrics.hpp"
#include "util/error.hpp"

namespace enzo::parallel {

Transport::Transport(int nranks) {
  ENZO_REQUIRE(nranks >= 1, "transport needs at least one rank");
  boxes_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) boxes_.push_back(std::make_unique<Mailbox>());
}

void Transport::send(Message m) {
  ENZO_REQUIRE(m.dst >= 0 && m.dst < nranks(), "send to invalid rank");
  const std::uint64_t nbytes = m.payload.size() * sizeof(double);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sends;
    stats_.bytes += nbytes;
  }
  // Process-wide transport totals, aggregated across Transport instances.
  static perf::Counter& sends = perf::Registry::global().counter("comm.sends");
  static perf::Counter& bytes = perf::Registry::global().counter("comm.bytes");
  sends.add(1);
  bytes.add(nbytes);
  Mailbox& box = *boxes_[m.dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(m));
  }
  box.cv.notify_all();
}

std::optional<Message> Transport::match_locked(Mailbox& box, int src, int tag,
                                               std::uint64_t object_id) {
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if ((src < 0 || it->src == src) && it->tag == tag &&
        it->object_id == object_id) {
      Message m = std::move(*it);
      box.queue.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Transport::receive(int rank, int src, int tag,
                           std::uint64_t object_id) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.receives;
    if (src < 0) ++stats_.probes;
  }
  Mailbox& box = *boxes_[rank];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    if (auto m = match_locked(box, src, tag, object_id)) return std::move(*m);
    box.cv.wait(lock);
  }
}

std::optional<Message> Transport::try_receive(int rank, int src, int tag,
                                              std::uint64_t object_id) {
  Mailbox& box = *boxes_[rank];
  std::lock_guard<std::mutex> lock(box.mu);
  auto m = match_locked(box, src, tag, object_id);
  if (m) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.receives;
    if (src < 0) ++stats_.probes;
  }
  return m;
}

void Transport::barrier() {
  std::unique_lock<std::mutex> lock(bar_mu_);
  const int gen = bar_generation_;
  if (++bar_count_ == nranks()) {
    bar_count_ = 0;
    ++bar_generation_;
    bar_cv_.notify_all();
  } else {
    bar_cv_.wait(lock, [&] { return bar_generation_ != gen; });
  }
}

CommStats Transport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void run_ranks(Transport& t, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(t.nranks());
  threads.reserve(t.nranks());
  for (int r = 0; r < t.nranks(); ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace enzo::parallel
