#pragma once
// Grid-granularity load balancing (§3.4).
//
// "We leveraged the object-oriented design by distributing the objects over
// the processors, rather than attempting to distribute an individual grid.
// This makes sense because the grids are generally small (~20³) and numerous
// (sometimes in excess of 50,000)."  Load balancing assigns whole grids to
// ranks; the classic longest-processing-time (LPT) greedy heuristic keeps
// the maximum rank load within ~4/3 of optimal, which is ample at tens of
// grids per rank.

#include <cstdint>
#include <vector>

namespace enzo::parallel {

struct LoadBalanceResult {
  std::vector<int> owner;  ///< rank per input weight
  double max_load = 0;
  double avg_load = 0;
  /// max/avg − 1; 0 = perfect balance.
  double imbalance() const { return avg_load > 0 ? max_load / avg_load - 1.0 : 0.0; }
};

/// LPT: sort by descending weight, place each on the least-loaded rank.
LoadBalanceResult balance_lpt(const std::vector<double>& weights, int nranks);

/// Naive round-robin baseline (what distributing *in creation order* does).
LoadBalanceResult balance_round_robin(const std::vector<double>& weights,
                                      int nranks);

}  // namespace enzo::parallel
