#include "parallel/distributed_hierarchy.hpp"

#include <map>

#include "mesh/topology.hpp"
#include "util/error.hpp"

namespace enzo::parallel {

using mesh::Grid;

std::vector<ExchangeBlock> plan_sibling_exchange(const mesh::Hierarchy& h,
                                                 int level) {
  // Mirrors the serial sibling pass of mesh::set_boundary_values exactly —
  // same grid order, same shift order — so that applying blocks in plan
  // order reproduces its overwrite semantics bit for bit.
  std::vector<ExchangeBlock> plan;
  const auto grids = h.grids(level);
  if (h.use_topology() && !grids.empty()) {
    // The cached overlap *is* the ghost-grown intersection computed below,
    // and the link order replays the all-pairs scan order, so both branches
    // emit identical plans.
    const mesh::OverlapTopology& topo = h.topology();
    for (std::size_t n = 0; n < grids.size(); ++n) {
      for (const mesh::SiblingLink& ln : topo.siblings(level, n)) {
        if (ln.overlap.empty()) continue;
        plan.push_back({grids[ln.src]->id(), grids[n]->id(), ln.overlap,
                        ln.shift});
      }
    }
    return plan;
  }
  const mesh::Index3 dims = h.level_dims(level);
  const bool periodic = h.params().periodic;
  const auto shifts = mesh::periodic_image_shifts(dims, periodic);
  for (const Grid* g : grids) {
    mesh::IndexBox total = g->box();
    for (int d = 0; d < 3; ++d) {
      total.lo[d] -= g->ng(d);
      total.hi[d] += g->ng(d);
    }
    // enzo-lint: allow(topology-allpairs) reference exchange-plan builder
    for (const Grid* s : grids) {
      for (std::int64_t kz : shifts[2])
        for (std::int64_t ky : shifts[1])
          for (std::int64_t kx : shifts[0]) {
            if (s == g && kx == 0 && ky == 0 && kz == 0) continue;
            const mesh::IndexBox ov =
                total.intersect(s->box().shifted({kx, ky, kz}));
            if (ov.empty()) continue;
            plan.push_back({s->id(), g->id(), ov, {kx, ky, kz}});
          }
    }
  }
  return plan;
}

namespace {

/// Pack the (global, unshifted-destination) region from the source grid.
std::vector<double> pack_block(const Grid& src, const ExchangeBlock& b) {
  std::vector<double> out;
  const auto& ov = b.region;
  out.reserve(static_cast<std::size_t>(ov.volume()) *
              src.field_list().size());
  for (mesh::Field f : src.field_list()) {
    const auto& a = src.field(f);
    for (std::int64_t gk = ov.lo[2]; gk < ov.hi[2]; ++gk)
      for (std::int64_t gj = ov.lo[1]; gj < ov.hi[1]; ++gj)
        for (std::int64_t gi = ov.lo[0]; gi < ov.hi[0]; ++gi) {
          const int si =
              static_cast<int>(gi - b.shift[0] - src.box().lo[0]) + src.ng(0);
          const int sj =
              static_cast<int>(gj - b.shift[1] - src.box().lo[1]) + src.ng(1);
          const int sk =
              static_cast<int>(gk - b.shift[2] - src.box().lo[2]) + src.ng(2);
          out.push_back(a(si, sj, sk));
        }
  }
  return out;
}

void unpack_block(Grid& dst, const ExchangeBlock& b,
                  const std::vector<double>& payload) {
  const auto& ov = b.region;
  std::size_t c = 0;
  for (mesh::Field f : dst.field_list()) {
    const mesh::FieldView a = dst.field(f);
    for (std::int64_t gk = ov.lo[2]; gk < ov.hi[2]; ++gk)
      for (std::int64_t gj = ov.lo[1]; gj < ov.hi[1]; ++gj)
        for (std::int64_t gi = ov.lo[0]; gi < ov.hi[0]; ++gi) {
          const int di = static_cast<int>(gi - dst.box().lo[0]) + dst.ng(0);
          const int dj = static_cast<int>(gj - dst.box().lo[1]) + dst.ng(1);
          const int dk = static_cast<int>(gk - dst.box().lo[2]) + dst.ng(2);
          a(di, dj, dk) = payload[c++];
        }
  }
  ENZO_REQUIRE(c == payload.size(), "exchange payload size mismatch");
}

}  // namespace

CommStats distributed_sibling_exchange(mesh::Hierarchy& h, int level,
                                       const std::vector<int>& owner,
                                       int nranks) {
  auto grids = h.grids(level);
  ENZO_REQUIRE(owner.size() == grids.size(),
               "owner list does not match grid count");
  std::map<std::uint64_t, Grid*> by_id;
  std::map<std::uint64_t, int> owner_of;
  for (std::size_t i = 0; i < grids.size(); ++i) {
    by_id[grids[i]->id()] = grids[i];
    ENZO_REQUIRE(owner[i] >= 0 && owner[i] < nranks, "owner rank out of range");
    owner_of[grids[i]->id()] = owner[i];
  }
  const auto plan = plan_sibling_exchange(h, level);
  Transport transport(nranks);

  run_ranks(transport, [&](int rank) {
    // Phase 1: post every send for blocks whose source this rank owns.
    for (std::size_t bi = 0; bi < plan.size(); ++bi) {
      const ExchangeBlock& b = plan[bi];
      if (owner_of.at(b.src_id) != rank) continue;
      Message m;
      m.src = rank;
      m.dst = owner_of.at(b.dst_id);
      m.tag = static_cast<int>(bi);
      m.object_id = b.dst_id;
      m.payload = pack_block(*by_id.at(b.src_id), b);
      transport.send(std::move(m));
    }
    // Phase 2: receive and apply, in plan order, for destinations this rank
    // owns (direct source-addressed receives: the sterile metadata told us
    // exactly who sends what — no probes).
    for (std::size_t bi = 0; bi < plan.size(); ++bi) {
      const ExchangeBlock& b = plan[bi];
      if (owner_of.at(b.dst_id) != rank) continue;
      Message m = transport.receive(rank, owner_of.at(b.src_id),
                                    static_cast<int>(bi), b.dst_id);
      unpack_block(*by_id.at(b.dst_id), b, m.payload);
    }
    transport.barrier();
  });
  return transport.stats();
}

}  // namespace enzo::parallel
