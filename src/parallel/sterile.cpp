#include "parallel/sterile.hpp"

#include "mesh/topology.hpp"

namespace enzo::parallel {

void SterileStore::mirror(const mesh::Hierarchy& h,
                          const std::vector<int>& owner_by_index) {
  all_.clear();
  std::size_t idx = 0;
  for (int l = 0; l <= h.deepest_level(); ++l)
    for (const mesh::GridDescriptor& d : h.descriptors(l)) {
      mesh::GridDescriptor copy = d;
      if (idx < owner_by_index.size()) copy.owner_rank = owner_by_index[idx];
      all_.push_back(copy);
      ++idx;
    }
}

int SterileStore::owner_of(std::uint64_t id) const {
  ++lookups_;
  for (const auto& d : all_)
    if (d.id == id) return d.owner_rank;
  return -1;
}

std::vector<mesh::GridDescriptor> SterileStore::find_overlaps(
    int level, const mesh::IndexBox& target, const mesh::Index3& dims,
    bool periodic) const {
  ++lookups_;
  std::vector<mesh::GridDescriptor> out;
  // Arbitrary-target queries stay a scan over the (metadata-only)
  // descriptors; only the shift enumeration goes through the shared helper.
  const auto shifts = mesh::periodic_image_shifts(dims, periodic);
  for (const auto& desc : all_) {
    if (desc.level != level) continue;
    bool hit = false;
    for (std::int64_t kz : shifts[2]) {
      for (std::int64_t ky : shifts[1]) {
        for (std::int64_t kx : shifts[0]) {
          if (!target.intersect(desc.box.shifted({kx, ky, kz})).empty()) {
            hit = true;
            break;
          }
        }
        if (hit) break;
      }
      if (hit) break;
    }
    if (hit) out.push_back(desc);
  }
  return out;
}

}  // namespace enzo::parallel
