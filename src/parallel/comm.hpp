#pragma once
// In-process message-passing transport (§3.4 substitution).
//
// The paper's MPI strategy is reproduced over an in-process transport: each
// "rank" is a std::thread with a mailbox; sends are asynchronous
// (fire-and-forget, like MPI_Isend with buffering), receives match on
// (source, tag) — or any source when a *probe* would have been required.
// The transport counts sends, receives and probes so the sterile-object
// optimization ("very few probes are required") is measurable, exactly the
// claim of §3.4.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace enzo::parallel {

struct Message {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::uint64_t object_id = 0;  ///< grid id the payload belongs to
  std::vector<double> payload;
};

struct CommStats {
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t probes = 0;
  std::uint64_t bytes = 0;
};

/// The shared "network": one mailbox per rank.
class Transport {
 public:
  explicit Transport(int nranks);
  int nranks() const { return static_cast<int>(boxes_.size()); }

  /// Asynchronous buffered send.
  void send(Message m);

  /// Blocking receive matching (src, tag, object_id); src = -1 matches any
  /// source *and counts as a probe* (the expensive pattern sterile objects
  /// eliminate).
  Message receive(int rank, int src, int tag, std::uint64_t object_id);

  /// Non-blocking variant; returns nullopt if nothing matches.
  std::optional<Message> try_receive(int rank, int src, int tag,
                                     std::uint64_t object_id);

  /// Rendezvous for all ranks.
  void barrier();

  CommStats stats() const;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  std::optional<Message> match_locked(Mailbox& box, int src, int tag,
                                      std::uint64_t object_id);
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  mutable std::mutex stats_mu_;
  CommStats stats_;
  // Barrier state.
  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_count_ = 0;
  int bar_generation_ = 0;
};

/// Run fn(rank) on nranks threads sharing a Transport; joins all.
void run_ranks(Transport& t, const std::function<void(int)>& fn);

}  // namespace enzo::parallel
