#pragma once
// Distributed-objects demonstration (§3.4): a periodic field partitioned
// tile-per-rank, advanced by 7-point Jacobi smoothing with halo exchange
// over the in-process Transport.  This is the end-to-end exercise of the
// machinery: distributed objects (tiles), direct source-addressed sends
// (enabled by sterile metadata) versus any-source probes, and a two-phase
// post-all-sends-then-receive schedule.  Tests verify bit-identical results
// against the serial computation and measure the probe elimination.

#include "parallel/comm.hpp"
#include "util/array3.hpp"

namespace enzo::parallel {

struct DistributedRunInfo {
  CommStats stats;
  int nranks = 0;
};

/// Smooth `input` (n×n×n, periodic) `iters` times with the 7-point average,
/// distributed over tiles_per_axis³ ranks.  use_sterile=true posts direct
/// (source, tag)-matched receives; false uses any-source receives, each of
/// which the transport counts as a probe.  Returns the reassembled field.
util::Array3<double> distributed_jacobi(const util::Array3<double>& input,
                                        int tiles_per_axis, int iters,
                                        bool use_sterile,
                                        DistributedRunInfo* info = nullptr);

/// Serial reference for the same operation.
util::Array3<double> serial_jacobi(const util::Array3<double>& input,
                                   int iters);

}  // namespace enzo::parallel
