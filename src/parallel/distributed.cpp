#include "parallel/distributed.hpp"

#include <cmath>

#include "util/error.hpp"

namespace enzo::parallel {

namespace {

struct TileGeom {
  int tpa;   // tiles per axis
  int w;     // tile width (cells)
  int n;     // domain width
  int rank_of(int ti, int tj, int tk) const {
    auto wrap = [&](int t) { return ((t % tpa) + tpa) % tpa; };
    return wrap(ti) + tpa * (wrap(tj) + tpa * wrap(tk));
  }
};

}  // namespace

util::Array3<double> serial_jacobi(const util::Array3<double>& input,
                                   int iters) {
  const int n = input.nx();
  util::Array3<double> a = input, b(n, n, n, 0.0);
  auto P = [&](const util::Array3<double>& f, int i, int j, int k) {
    return f(((i % n) + n) % n, ((j % n) + n) % n, ((k % n) + n) % n);
  };
  for (int it = 0; it < iters; ++it) {
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
          b(i, j, k) = (P(a, i - 1, j, k) + P(a, i + 1, j, k) +
                        P(a, i, j - 1, k) + P(a, i, j + 1, k) +
                        P(a, i, j, k - 1) + P(a, i, j, k + 1) + a(i, j, k)) /
                       7.0;
    std::swap(a, b);
  }
  return a;
}

util::Array3<double> distributed_jacobi(const util::Array3<double>& input,
                                        int tiles_per_axis, int iters,
                                        bool use_sterile,
                                        DistributedRunInfo* info) {
  const int n = input.nx();
  ENZO_REQUIRE(input.ny() == n && input.nz() == n, "domain must be cubic");
  ENZO_REQUIRE(n % tiles_per_axis == 0, "tiles must divide the domain");
  TileGeom geo{tiles_per_axis, n / tiles_per_axis, n, };
  const int nranks = tiles_per_axis * tiles_per_axis * tiles_per_axis;
  Transport transport(nranks);

  util::Array3<double> result(n, n, n, 0.0);
  std::mutex result_mu;

  run_ranks(transport, [&](int rank) {
    const int ti = rank % geo.tpa;
    const int tj = (rank / geo.tpa) % geo.tpa;
    const int tk = rank / (geo.tpa * geo.tpa);
    const int w = geo.w;
    // Local tile with one ghost layer.
    util::Array3<double> tile(w + 2, w + 2, w + 2, 0.0);
    util::Array3<double> next(w + 2, w + 2, w + 2, 0.0);
    for (int k = 0; k < w; ++k)
      for (int j = 0; j < w; ++j)
        for (int i = 0; i < w; ++i)
          tile(i + 1, j + 1, k + 1) =
              input(ti * w + i, tj * w + j, tk * w + k);

    // Face index helpers: face f = (axis d, side s).
    auto neighbor_rank = [&](int d, int s) {
      int t[3] = {ti, tj, tk};
      t[d] += s == 0 ? -1 : 1;
      return geo.rank_of(t[0], t[1], t[2]);
    };

    for (int it = 0; it < iters; ++it) {
      // Phase 1: post all sends (§3.4 two-phase; ordering is trivial here
      // since all six faces are needed "at once").
      for (int d = 0; d < 3; ++d)
        for (int s = 0; s < 2; ++s) {
          Message m;
          m.src = rank;
          m.dst = neighbor_rank(d, s);
          // Tag encodes (iteration, axis, receiving side).
          m.tag = it * 6 + d * 2 + (1 - s);
          m.object_id = static_cast<std::uint64_t>(m.dst);
          m.payload.reserve(static_cast<std::size_t>(w) * w);
          const int plane = s == 0 ? 1 : w;  // boundary layer to export
          for (int b = 0; b < w; ++b)
            for (int a = 0; a < w; ++a) {
              int idx[3];
              idx[d] = plane;
              idx[(d + 1) % 3] = a + 1;
              idx[(d + 2) % 3] = b + 1;
              m.payload.push_back(tile(idx[0], idx[1], idx[2]));
            }
          transport.send(std::move(m));
        }
      // Phase 2: receive the six halos.
      for (int d = 0; d < 3; ++d)
        for (int s = 0; s < 2; ++s) {
          const int src = use_sterile ? neighbor_rank(d, s) : -1;
          Message m = transport.receive(rank, src, it * 6 + d * 2 + s,
                                        static_cast<std::uint64_t>(rank));
          const int plane = s == 0 ? 0 : w + 1;
          std::size_t c = 0;
          for (int b = 0; b < w; ++b)
            for (int a = 0; a < w; ++a) {
              int idx[3];
              idx[d] = plane;
              idx[(d + 1) % 3] = a + 1;
              idx[(d + 2) % 3] = b + 1;
              tile(idx[0], idx[1], idx[2]) = m.payload[c++];
            }
        }
      // Smooth (edges/corners of the 7-point stencil only need faces).
      for (int k = 1; k <= w; ++k)
        for (int j = 1; j <= w; ++j)
          for (int i = 1; i <= w; ++i)
            next(i, j, k) =
                (tile(i - 1, j, k) + tile(i + 1, j, k) + tile(i, j - 1, k) +
                 tile(i, j + 1, k) + tile(i, j, k - 1) + tile(i, j, k + 1) +
                 tile(i, j, k)) /
                7.0;
      std::swap(tile, next);
      transport.barrier();
    }

    std::lock_guard<std::mutex> lock(result_mu);
    for (int k = 0; k < w; ++k)
      for (int j = 0; j < w; ++j)
        for (int i = 0; i < w; ++i)
          result(ti * w + i, tj * w + j, tk * w + k) =
              tile(i + 1, j + 1, k + 1);
  });

  if (info) {
    info->stats = transport.stats();
    info->nranks = nranks;
  }
  return result;
}

}  // namespace enzo::parallel
