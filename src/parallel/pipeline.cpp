#include "parallel/pipeline.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace enzo::parallel {

std::vector<int> pipeline_order(const std::vector<SendTask>& tasks) {
  std::vector<int> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return tasks[static_cast<std::size_t>(a)].need_order <
           tasks[static_cast<std::size_t>(b)].need_order;
  });
  return order;
}

std::vector<int> naive_order(std::size_t n) {
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

double simulated_wait(const std::vector<SendTask>& tasks,
                      const std::vector<int>& order, double bandwidth,
                      double latency, double proc_time) {
  ENZO_REQUIRE(order.size() == tasks.size(), "order/tasks size mismatch");
  ENZO_REQUIRE(bandwidth > 0, "bandwidth must be positive");
  // Arrival time of each task under the given send ordering.
  std::vector<double> arrival(tasks.size(), 0.0);
  double emit_end = 0.0;
  for (int idx : order) {
    const SendTask& t = tasks[static_cast<std::size_t>(idx)];
    emit_end += t.bytes / bandwidth;
    arrival[static_cast<std::size_t>(idx)] = emit_end + latency;
  }
  // Receiver consumes in need order.
  std::vector<int> consume(tasks.size());
  std::iota(consume.begin(), consume.end(), 0);
  std::stable_sort(consume.begin(), consume.end(), [&](int a, int b) {
    return tasks[static_cast<std::size_t>(a)].need_order <
           tasks[static_cast<std::size_t>(b)].need_order;
  });
  double clock = 0.0, wait = 0.0;
  for (int idx : consume) {
    const double a = arrival[static_cast<std::size_t>(idx)];
    if (a > clock) {
      wait += a - clock;
      clock = a;
    }
    clock += proc_time;
  }
  return wait;
}

}  // namespace enzo::parallel
