#pragma once
// Sterile objects (§3.4): metadata-only grid replicas.
//
// "We solved this problem by creating a type of object which contained
// information about the location and size of a grid, but did not contain the
// actual solution.  These sterile objects are small and so each processor
// can hold the entire hierarchy.  Only those grids which are local to that
// processor are non-sterile.  This means that almost all messages are direct
// data sends; very few probes are required."
//
// SterileStore is that replica: every rank holds the full descriptor list
// and answers neighbour/owner queries locally, so boundary exchanges can be
// posted as source-addressed sends instead of any-source probes.

#include <cstdint>
#include <vector>

#include "mesh/hierarchy.hpp"

namespace enzo::parallel {

class SterileStore {
 public:
  void clear() { all_.clear(); }
  void add(const mesh::GridDescriptor& d) { all_.push_back(d); }
  /// Mirror a whole hierarchy's descriptor registry with owners assigned.
  void mirror(const mesh::Hierarchy& h, const std::vector<int>& owner_by_index);

  std::size_t size() const { return all_.size(); }
  const std::vector<mesh::GridDescriptor>& descriptors() const { return all_; }

  /// Owner rank of a grid id (-1 if unknown).
  int owner_of(std::uint64_t id) const;

  /// Descriptors on `level` whose box (under periodic shifts of `dims` when
  /// periodic) overlaps `target`.  Purely local — no communication.
  std::vector<mesh::GridDescriptor> find_overlaps(int level,
                                                  const mesh::IndexBox& target,
                                                  const mesh::Index3& dims,
                                                  bool periodic) const;

  /// Number of local lookups served (each one would otherwise have been a
  /// remote probe).
  std::uint64_t lookups() const { return lookups_; }

 private:
  std::vector<mesh::GridDescriptor> all_;
  mutable std::uint64_t lookups_ = 0;
};

}  // namespace enzo::parallel
