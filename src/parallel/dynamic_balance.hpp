#pragma once
// Dynamic load balancing across hierarchy rebuilds (§3.4 / ref [22], Lan,
// Taylor & Bryan, "Dynamic Load Balancing for Structured Adaptive Mesh
// Refinement Applications").
//
// A static assignment decays as the hierarchy evolves — "grids have a
// relatively short life" — but reassigning everything from scratch each
// rebuild would move nearly all grid data across ranks.  The dynamic
// balancer keeps surviving grids where they are, places new grids on the
// least-loaded ranks, and only when the imbalance exceeds a threshold
// migrates the cheapest set of grids that restores it.  Both the residual
// imbalance and the migrated bytes are first-class outputs: the trade-off
// they parameterize is the point of ref [22].

#include <cstdint>
#include <map>
#include <vector>

namespace enzo::parallel {

struct GridLoad {
  std::uint64_t id = 0;
  double weight = 0;  ///< e.g. cells × timestep ratio
  double bytes = 0;   ///< migration cost if moved
};

struct RebalanceResult {
  std::map<std::uint64_t, int> owner;
  double imbalance = 0;       ///< max/avg − 1 after rebalancing
  double migrated_bytes = 0;  ///< data moved relative to the prior owners
  int migrations = 0;
};

class DynamicBalancer {
 public:
  explicit DynamicBalancer(int nranks, double imbalance_threshold = 0.15)
      : nranks_(nranks), threshold_(imbalance_threshold) {}

  /// Called after every rebuild with the surviving+new grid set.  Grids
  /// whose id was seen before keep their rank unless migration is required.
  RebalanceResult rebalance(const std::vector<GridLoad>& grids);

  /// Cumulative migration traffic since construction.
  double total_migrated_bytes() const { return total_migrated_; }

 private:
  int nranks_;
  double threshold_;
  std::map<std::uint64_t, int> previous_;
  double total_migrated_ = 0;
};

}  // namespace enzo::parallel
