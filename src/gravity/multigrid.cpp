// Geometric multigrid for the subgrid Poisson problem (§3.3): cell-centered
// V-cycles with red-black Gauss–Seidel smoothing, full-weighting restriction
// and piecewise-constant prolongation.  The finest level carries fixed
// Dirichlet values in its one-cell ghost layer (interpolated from the parent
// grid / exchanged with siblings by the caller); coarse levels solve the
// error equation with homogeneous Dirichlet ghosts.
//
// Subgrid extents are always even along refined axes (child boxes are
// parent cells × the integer refinement factor), so at least one coarsening
// is always available; coarsening stops at odd or minimal extents.

#include <algorithm>
#include <cmath>

#include <vector>

#include "gravity/gravity.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace enzo::gravity {

namespace {

struct MgLevel {
  util::Array3<double> phi;  // with 1 ghost on active axes
  util::Array3<double> rhs;  // same shape; ghosts ignored
  int n[3];                  // active extents
  bool active[3];
  double dx;
};

int ghost(const MgLevel& lv, int d) { return lv.active[d] ? 1 : 0; }

ENZO_HOT void smooth(MgLevel& lv, int sweeps) {
  const double dx2 = lv.dx * lv.dx;
  int nterms = 0;
  for (int d = 0; d < 3; ++d)
    if (lv.active[d]) nterms += 2;
  if (nterms == 0) return;
  const int gx = ghost(lv, 0), gy = ghost(lv, 1), gz = ghost(lv, 2);
  for (int s = 0; s < sweeps; ++s) {
    for (int color = 0; color < 2; ++color) {
      for (int k = 0; k < lv.n[2]; ++k)
        for (int j = 0; j < lv.n[1]; ++j)
          for (int i = 0; i < lv.n[0]; ++i) {
            if (((i + j + k) & 1) != color) continue;
            const int si = i + gx, sj = j + gy, sk = k + gz;
            double sum = 0.0;
            if (lv.active[0])
              sum += lv.phi(si + 1, sj, sk) + lv.phi(si - 1, sj, sk);
            if (lv.active[1])
              sum += lv.phi(si, sj + 1, sk) + lv.phi(si, sj - 1, sk);
            if (lv.active[2])
              sum += lv.phi(si, sj, sk + 1) + lv.phi(si, sj, sk - 1);
            lv.phi(si, sj, sk) = (sum - dx2 * lv.rhs(si, sj, sk)) / nterms;
          }
    }
  }
  util::FlopCounter::global().add(
      "gravity", util::flop_cost::kMultigridPerCellPerSweep *
                     static_cast<std::uint64_t>(lv.n[0]) * lv.n[1] * lv.n[2] *
                     2 * sweeps);
}

ENZO_HOT void residual(const MgLevel& lv, util::Array3<double>& res) {
  const double inv_dx2 = 1.0 / (lv.dx * lv.dx);
  const int gx = ghost(lv, 0), gy = ghost(lv, 1), gz = ghost(lv, 2);
  for (int k = 0; k < lv.n[2]; ++k)
    for (int j = 0; j < lv.n[1]; ++j)
      for (int i = 0; i < lv.n[0]; ++i) {
        const int si = i + gx, sj = j + gy, sk = k + gz;
        double lap = 0.0;
        const double c = lv.phi(si, sj, sk);
        if (lv.active[0])
          lap += lv.phi(si + 1, sj, sk) - 2 * c + lv.phi(si - 1, sj, sk);
        if (lv.active[1])
          lap += lv.phi(si, sj + 1, sk) - 2 * c + lv.phi(si, sj - 1, sk);
        if (lv.active[2])
          lap += lv.phi(si, sj, sk + 1) - 2 * c + lv.phi(si, sj, sk - 1);
        res(si, sj, sk) = lv.rhs(si, sj, sk) - lap * inv_dx2;
      }
}

bool can_coarsen(const MgLevel& lv) {
  for (int d = 0; d < 3; ++d)
    if (lv.active[d] && (lv.n[d] % 2 != 0 || lv.n[d] <= 2)) return false;
  return true;
}

void vcycle(std::vector<MgLevel>& levels, std::size_t l,
            const GravityParams& p) {
  MgLevel& lv = levels[l];
  if (l + 1 == levels.size()) {
    // Coarsest: smooth hard.
    smooth(lv, 20);
    return;
  }
  smooth(lv, p.mg_pre_smooth);
  // Restrict residual (full weighting = 2³ average for cell-centered r=2).
  MgLevel& cv = levels[l + 1];
  util::Array3<double> res(lv.phi.nx(), lv.phi.ny(), lv.phi.nz(), 0.0);
  residual(lv, res);
  const int gx = ghost(lv, 0), gy = ghost(lv, 1), gz = ghost(lv, 2);
  const int cgx = ghost(cv, 0), cgy = ghost(cv, 1), cgz = ghost(cv, 2);
  cv.phi.fill(0.0);
  for (int k = 0; k < cv.n[2]; ++k)
    for (int j = 0; j < cv.n[1]; ++j)
      for (int i = 0; i < cv.n[0]; ++i) {
        double sum = 0.0;
        int cnt = 0;
        for (int dk = 0; dk < (lv.active[2] ? 2 : 1); ++dk)
          for (int dj = 0; dj < (lv.active[1] ? 2 : 1); ++dj)
            for (int di = 0; di < (lv.active[0] ? 2 : 1); ++di) {
              sum += res((lv.active[0] ? 2 * i + di : i) + gx,
                         (lv.active[1] ? 2 * j + dj : j) + gy,
                         (lv.active[2] ? 2 * k + dk : k) + gz);
              ++cnt;
            }
        cv.rhs(i + cgx, j + cgy, k + cgz) = sum / cnt;
      }
  vcycle(levels, l + 1, p);
  // Prolong the coarse error correction: trilinear for cell-centered r=2
  // (weights 3/4, 1/4 toward the nearer coarse neighbour; the homogeneous
  // Dirichlet ghosts supply the boundary values).
  for (int k = 0; k < lv.n[2]; ++k)
    for (int j = 0; j < lv.n[1]; ++j)
      for (int i = 0; i < lv.n[0]; ++i) {
        const int f[3] = {i, j, k};
        int c0[3], c1[3];
        double w0[3];
        for (int d = 0; d < 3; ++d) {
          if (!lv.active[d]) {
            c0[d] = c1[d] = f[d];
            w0[d] = 1.0;
            continue;
          }
          const int cc = f[d] / 2;
          const int nb = (f[d] % 2 == 0) ? cc - 1 : cc + 1;
          c0[d] = cc;
          c1[d] = nb;  // ghost indices fall into the zero Dirichlet layer
          w0[d] = 0.75;
        }
        double corr = 0.0;
        for (int bz = 0; bz < (lv.active[2] ? 2 : 1); ++bz)
          for (int by = 0; by < (lv.active[1] ? 2 : 1); ++by)
            for (int bx = 0; bx < (lv.active[0] ? 2 : 1); ++bx) {
              const double w = (bx ? 1.0 - w0[0] : w0[0]) *
                               (by ? 1.0 - w0[1] : w0[1]) *
                               (bz ? 1.0 - w0[2] : w0[2]);
              corr += w * cv.phi((bx ? c1[0] : c0[0]) + cgx,
                                 (by ? c1[1] : c0[1]) + cgy,
                                 (bz ? c1[2] : c0[2]) + cgz);
            }
        lv.phi(i + gx, j + gy, k + gz) += corr;
      }
  smooth(lv, p.mg_post_smooth);
}

double norm2(const MgLevel& lv, const util::Array3<double>& a) {
  const int gx = ghost(lv, 0), gy = ghost(lv, 1), gz = ghost(lv, 2);
  double s = 0;
  for (int k = 0; k < lv.n[2]; ++k)
    for (int j = 0; j < lv.n[1]; ++j)
      for (int i = 0; i < lv.n[0]; ++i) {
        const double v = a(i + gx, j + gy, k + gz);
        s += v * v;
      }
  return std::sqrt(s);
}

}  // namespace

double multigrid_solve(mesh::FieldView phi, mesh::ConstFieldView rhs,
                       double dx, const GravityParams& p) {
  ENZO_REQUIRE(phi.same_shape(rhs), "multigrid: phi/rhs shape mismatch");
  // Build the level stack (the fine level works on private copies; the
  // caller's view is written back once the cycles converge).
  std::vector<MgLevel> levels;
  MgLevel fine;
  fine.dx = dx;
  for (int d = 0; d < 3; ++d) {
    const int tot = d == 0 ? phi.nx() : d == 1 ? phi.ny() : phi.nz();
    fine.active[d] = tot > 1;
    fine.n[d] = fine.active[d] ? tot - 2 : 1;
    ENZO_REQUIRE(fine.n[d] >= 1, "multigrid: degenerate extent");
  }
  fine.phi.resize(phi.nx(), phi.ny(), phi.nz());
  std::copy(phi.begin(), phi.end(), fine.phi.begin());
  fine.rhs.resize(rhs.nx(), rhs.ny(), rhs.nz());
  std::copy(rhs.begin(), rhs.end(), fine.rhs.begin());
  levels.push_back(std::move(fine));
  while (can_coarsen(levels.back()) &&
         levels.size() < 12) {
    const MgLevel& f = levels.back();
    MgLevel c;
    c.dx = f.dx * 2.0;
    for (int d = 0; d < 3; ++d) {
      c.active[d] = f.active[d];
      c.n[d] = f.active[d] ? f.n[d] / 2 : 1;
    }
    c.phi.resize(c.n[0] + 2 * (c.active[0] ? 1 : 0),
                 c.n[1] + 2 * (c.active[1] ? 1 : 0),
                 c.n[2] + 2 * (c.active[2] ? 1 : 0), 0.0);
    c.rhs = c.phi;
    levels.push_back(std::move(c));
  }

  util::Array3<double> res(phi.nx(), phi.ny(), phi.nz(), 0.0);
  const double rhs_norm = norm2(levels[0], levels[0].rhs);
  double rel = 1.0;
  for (int cycle = 0; cycle < p.mg_max_vcycles; ++cycle) {
    vcycle(levels, 0, p);
    residual(levels[0], res);
    const double rn = norm2(levels[0], res);
    rel = rhs_norm > 0 ? rn / rhs_norm : rn;
    if (rel < p.mg_tolerance) break;
  }
  std::copy(levels[0].phi.begin(), levels[0].phi.end(), phi.begin());
  return rel;
}

}  // namespace enzo::gravity
