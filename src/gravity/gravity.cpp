// Gravitating-mass assembly, subgrid Poisson orchestration (parent BC
// interpolation + multigrid + sibling iteration), and force differencing.

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/executor.hpp"
#include "gravity/gravity.hpp"
#include "mesh/topology.hpp"
#include "perf/trace.hpp"
#include "util/error.hpp"

namespace enzo::gravity {

using mesh::Grid;

namespace {

int pot_ghost(const Grid& g, int d) {
  return g.spec().level_dims[d] > 1 ? 1 : 0;
}

std::uint64_t cells_of(const Grid& g) {
  return static_cast<std::uint64_t>(g.nx(0)) *
         static_cast<std::uint64_t>(g.nx(1)) *
         static_cast<std::uint64_t>(g.nx(2));
}

/// Trilinear interpolation of the parent's potential at the center of the
/// child's cell with global (child-level) index gi (wrapped periodically).
double parent_potential_at(const Grid& child, const Grid& parent,
                           std::int64_t gi, std::int64_t gj, std::int64_t gk) {
  double w[3][2];
  int base[3];
  const std::int64_t gidx[3] = {gi, gj, gk};
  for (int d = 0; d < 3; ++d) {
    const std::int64_t cd = child.spec().level_dims[d];
    const std::int64_t pd = parent.spec().level_dims[d];
    if (pd == 1) {
      base[d] = 0;
      w[d][0] = 1.0;
      w[d][1] = 0.0;
      continue;
    }
    const int rd = static_cast<int>(cd / pd);
    std::int64_t g0 = gidx[d];
    if (child.spec().periodic) g0 = ((g0 % cd) + cd) % cd;
    // Parent-index coordinate of the child cell center.
    const double x = (static_cast<double>(g0) + 0.5) / rd - 0.5;
    const double fl = std::floor(x);
    std::int64_t p0 = static_cast<std::int64_t>(fl);
    double f = x - fl;
    // Parent storage index (1 ghost).
    std::int64_t s0 = p0 - parent.box().lo[d] + 1;
    // Clamp into the available [0, nx+1] window (only needed when the child
    // touches the parent's edge and the domain is not periodic).
    const std::int64_t smax = parent.nx(d);  // s0 and s0+1 must be <= nx+1-1
    if (s0 < 0) {
      s0 = 0;
      f = 0.0;
    }
    if (s0 > smax) {
      s0 = smax;
      f = 1.0;
    }
    base[d] = static_cast<int>(s0);
    w[d][0] = 1.0 - f;
    w[d][1] = f;
  }
  const auto& pot = parent.potential();
  double v = 0.0;
  for (int dk = 0; dk < 2; ++dk)
    for (int dj = 0; dj < 2; ++dj)
      for (int di = 0; di < 2; ++di) {
        const double ww = w[0][di] * w[1][dj] * w[2][dk];
        if (ww == 0.0) continue;
        v += ww * pot(base[0] + di, base[1] + dj, base[2] + dk);
      }
  return v;
}

/// Fill a subgrid's potential ghost layer from its parent.
void fill_potential_bc_from_parent(Grid& g, const Grid& parent) {
  const mesh::FieldView pot = g.potential();
  const int gx = pot_ghost(g, 0), gy = pot_ghost(g, 1), gz = pot_ghost(g, 2);
  for (int k = -gz; k < g.nx(2) + gz; ++k)
    for (int j = -gy; j < g.nx(1) + gy; ++j)
      for (int i = -gx; i < g.nx(0) + gx; ++i) {
        const bool interior = i >= 0 && i < g.nx(0) && j >= 0 &&
                              j < g.nx(1) && k >= 0 && k < g.nx(2);
        if (interior) continue;
        pot(i + gx, j + gy, k + gz) =
            parent_potential_at(g, parent, g.box().lo[0] + i,
                                g.box().lo[1] + j, g.box().lo[2] + k);
      }
}

/// Copy one sibling's interior potential into g's ghost layer over the
/// (already nonempty-tested) overlap `ov` at periodic shift (kx,ky,kz).
void copy_potential_overlap(Grid& g, const Grid& s, const mesh::IndexBox& ov,
                            std::int64_t kx, std::int64_t ky,
                            std::int64_t kz) {
  const mesh::FieldView pot = g.potential();
  const mesh::ConstFieldView spot = s.potential();
  const int gx = pot_ghost(g, 0), gy = pot_ghost(g, 1), gz = pot_ghost(g, 2);
  const int sgx = pot_ghost(s, 0), sgy = pot_ghost(s, 1),
            sgz = pot_ghost(s, 2);
  for (std::int64_t zk = ov.lo[2]; zk < ov.hi[2]; ++zk)
    for (std::int64_t zj = ov.lo[1]; zj < ov.hi[1]; ++zj)
      for (std::int64_t zi = ov.lo[0]; zi < ov.hi[0]; ++zi) {
        const int di = static_cast<int>(zi - g.box().lo[0]) + gx;
        const int dj = static_cast<int>(zj - g.box().lo[1]) + gy;
        const int dk = static_cast<int>(zk - g.box().lo[2]) + gz;
        const int si = static_cast<int>(zi - kx - s.box().lo[0]) + sgx;
        const int sj = static_cast<int>(zj - ky - s.box().lo[1]) + sgy;
        const int sk = static_cast<int>(zk - kz - s.box().lo[2]) + sgz;
        pot(di, dj, dk) = spot(si, sj, sk);
      }
}

/// Copy sibling interior potential into g's ghost layer where they overlap
/// (with periodic images).  When a topology cache is supplied only the
/// cached neighbor links are visited — this runs every multigrid sweep, so
/// it was the hottest all-pairs consumer.  The potential's one-cell ghost
/// box is a subset of the cache's "wide" candidate box, so every sibling
/// with a nonempty potential overlap is guaranteed to appear in the link
/// list (the exact 1-ghost intersection is recomputed per link).
void exchange_potential_with_siblings(Grid& g,
                                      const std::vector<Grid*>& level_grids,
                                      const mesh::OverlapTopology* topo,
                                      int level, std::size_t ordinal) {
  const int gx = pot_ghost(g, 0), gy = pot_ghost(g, 1), gz = pot_ghost(g, 2);
  mesh::IndexBox ghost_box = g.box();
  ghost_box.lo[0] -= gx;
  ghost_box.lo[1] -= gy;
  ghost_box.lo[2] -= gz;
  ghost_box.hi[0] += gx;
  ghost_box.hi[1] += gy;
  ghost_box.hi[2] += gz;
  if (topo != nullptr) {
    for (const mesh::SiblingLink& ln : topo->siblings(level, ordinal)) {
      const Grid* s = level_grids[ln.src];
      const mesh::IndexBox ov =
          ghost_box.intersect(s->box().shifted(ln.shift));
      if (ov.empty()) continue;
      copy_potential_overlap(g, *s, ov, ln.shift[0], ln.shift[1],
                             ln.shift[2]);
    }
    return;
  }
  const auto shifts = mesh::periodic_image_shifts(g.spec().level_dims,
                                                  g.spec().periodic);
  for (Grid* s : level_grids) {
    for (std::int64_t kz : shifts[2])
      for (std::int64_t ky : shifts[1])
        for (std::int64_t kx : shifts[0]) {
          if (s == &g && kx == 0 && ky == 0 && kz == 0) continue;
          const mesh::IndexBox ov =
              ghost_box.intersect(s->box().shifted({kx, ky, kz}));
          if (ov.empty()) continue;
          copy_potential_overlap(g, *s, ov, kx, ky, kz);
        }
  }
}

/// Volume-average one child's gravitating mass into the parent cells under
/// its box (child boxes are aligned to parent cells, so siblings touch
/// disjoint parent cells).
void restrict_child_mass(const Grid& g, Grid& parent) {
  if (!parent.has_gravity() || !g.has_gravity()) return;
  int rd[3];
  for (int d = 0; d < 3; ++d)
    rd[d] = static_cast<int>(g.spec().level_dims[d] /
                             parent.spec().level_dims[d]);
  const int gx = pot_ghost(g, 0), gy = pot_ghost(g, 1), gz = pot_ghost(g, 2);
  const int pgx = pot_ghost(parent, 0), pgy = pot_ghost(parent, 1),
            pgz = pot_ghost(parent, 2);
  const mesh::FieldView pgm = parent.gravitating_mass();
  const mesh::ConstFieldView cgm = g.gravitating_mass();
  const double inv_nf = 1.0 / (static_cast<double>(rd[0]) * rd[1] * rd[2]);
  for (std::int64_t pk = g.box().lo[2] / rd[2]; pk < g.box().hi[2] / rd[2];
       ++pk)
    for (std::int64_t pj = g.box().lo[1] / rd[1]; pj < g.box().hi[1] / rd[1];
         ++pj)
      for (std::int64_t pi = g.box().lo[0] / rd[0]; pi < g.box().hi[0] / rd[0];
           ++pi) {
        double sum = 0.0;
        for (int ck = 0; ck < rd[2]; ++ck)
          for (int cj = 0; cj < rd[1]; ++cj)
            for (int ci = 0; ci < rd[0]; ++ci)
              sum += cgm(
                  static_cast<int>(pi * rd[0] - g.box().lo[0]) + ci + gx,
                  static_cast<int>(pj * rd[1] - g.box().lo[1]) + cj + gy,
                  static_cast<int>(pk * rd[2] - g.box().lo[2]) + ck + gz);
        pgm(static_cast<int>(pi - parent.box().lo[0]) + pgx,
            static_cast<int>(pj - parent.box().lo[1]) + pgy,
            static_cast<int>(pk - parent.box().lo[2]) + pgz) = sum * inv_nf;
      }
}

}  // namespace

void begin_gravitating_mass(mesh::Hierarchy& h, int level,
                            exec::LevelExecutor* ex) {
  const auto grids = h.grids(level);
  exec::fallback(ex).for_each(
      {"begin_gravitating_mass", perf::component::kGravity, level},
      grids.size(),
      [&](std::size_t n) {
        Grid* g = grids[n];
        g->allocate_gravity();
        const mesh::FieldView gm = g->gravitating_mass();
        gm.fill(0.0);
        const mesh::ConstFieldView rho = g->field(mesh::Field::kDensity);
        const int gx = pot_ghost(*g, 0), gy = pot_ghost(*g, 1),
                  gz = pot_ghost(*g, 2);
        for (int k = 0; k < g->nx(2); ++k)
          for (int j = 0; j < g->nx(1); ++j)
            for (int i = 0; i < g->nx(0); ++i)
              gm(i + gx, j + gy, k + gz) = rho(g->sx(i), g->sy(j), g->sz(k));
      },
      [&](std::size_t n) { return cells_of(*grids[n]); });
}

void restrict_gravitating_mass(mesh::Hierarchy& h, exec::LevelExecutor* ex) {
  for (int l = h.deepest_level(); l >= 1; --l) {
    const auto children = h.grids(l);
    // Children write into their (possibly shared) parent's mass array:
    // group by parent so each parent is touched by exactly one task, which
    // preserves the serial per-parent write order exactly.  The topology
    // cache holds the same first-seen-order grouping precomputed.
    std::vector<mesh::ParentGroup> local;
    const std::vector<mesh::ParentGroup>* groups = &local;
    if (h.use_topology() && !children.empty()) {
      groups = &h.topology().children_by_parent(l);
      for (const mesh::ParentGroup& gp : *groups)
        ENZO_REQUIRE(gp.first != nullptr,
                     "gravity restriction without parent");
    } else {
      for (Grid* c : children) {
        Grid* parent = c->parent();
        ENZO_REQUIRE(parent != nullptr, "gravity restriction without parent");
        auto it = std::find_if(
            local.begin(), local.end(),
            [&](const auto& gp) { return gp.first == parent; });
        if (it == local.end())
          local.emplace_back(parent, std::vector<Grid*>{c});
        else
          it->second.push_back(c);
      }
    }
    exec::fallback(ex).for_each(
        {"restrict_gravitating_mass", perf::component::kGravity, l},
        groups->size(),
        [&](std::size_t n) {
          Grid* parent = (*groups)[n].first;
          for (Grid* g : (*groups)[n].second)
            restrict_child_mass(*g, *parent);
        },
        [&](std::size_t n) {
          std::uint64_t c = 0;
          for (const Grid* g : (*groups)[n].second) c += cells_of(*g);
          return c;
        });
  }
}

void solve_subgrid_gravity(mesh::Hierarchy& h, int level,
                           const GravityParams& p, double a,
                           exec::LevelExecutor* ex) {
  ENZO_REQUIRE(level >= 1, "solve_subgrid_gravity on the root level");
  auto level_grids = h.grids(level);
  if (level_grids.empty()) return;
  perf::TraceScope scope("subgrid_multigrid", perf::component::kGravity,
                         level);
  exec::LevelExecutor& e = exec::fallback(ex);
  const auto grid_cost = [&](std::size_t n) {
    return cells_of(*level_grids[n]);
  };
  const double coef = p.grav_const_code / a;
  // Fetch the cached neighbor lists before the first phase (the hierarchy is
  // frozen inside phases, so the reference stays valid for all of them).
  const mesh::OverlapTopology* topo = h.use_topology() ? &h.topology()
                                                       : nullptr;

  // Per-grid RHS and initial guess (interpolated parent potential
  // everywhere, which also sets the Dirichlet ghosts).  Each task writes
  // only its own potential/RHS and reads its parent's solved potential,
  // which this phase never writes.
  std::vector<util::Array3<double>> rhs(level_grids.size());
  e.for_each(
      {"subgrid_rhs", perf::component::kGravity, level}, level_grids.size(),
      [&](std::size_t n) {
        Grid* g = level_grids[n];
        g->allocate_gravity();
        Grid* parent = g->parent();
        ENZO_REQUIRE(parent && parent->has_gravity(),
                     "parent potential missing for subgrid gravity");
        const mesh::FieldView pot = g->potential();
        const int gx = pot_ghost(*g, 0), gy = pot_ghost(*g, 1),
                  gz = pot_ghost(*g, 2);
        for (int k = -gz; k < g->nx(2) + gz; ++k)
          for (int j = -gy; j < g->nx(1) + gy; ++j)
            for (int i = -gx; i < g->nx(0) + gx; ++i)
              pot(i + gx, j + gy, k + gz) =
                  parent_potential_at(*g, *parent, g->box().lo[0] + i,
                                      g->box().lo[1] + j, g->box().lo[2] + k);
        rhs[n].resize(pot.nx(), pot.ny(), pot.nz(), 0.0);
        const mesh::ConstFieldView gm = g->gravitating_mass();
        for (int k = 0; k < g->nx(2); ++k)
          for (int j = 0; j < g->nx(1); ++j)
            for (int i = 0; i < g->nx(0); ++i)
              rhs[n](i + gx, j + gy, k + gz) =
                  coef * (gm(i + gx, j + gy, k + gz) - p.mean_density);
      },
      grid_cost);

  // Solve, exchange boundaries with siblings, and solve again (§3.3).  The
  // two half-steps are separate phases: solving touches only the grid's own
  // arrays; exchanging writes only the grid's own ghost layer while reading
  // sibling interiors, which no exchange task writes.
  for (int pass = 0; pass <= p.sibling_iterations; ++pass) {
    e.for_each(
        {"multigrid_solve", perf::component::kGravity, level},
        level_grids.size(),
        [&](std::size_t n) {
          Grid* g = level_grids[n];
          multigrid_solve(g->potential(), rhs[n].view(), g->cell_width_d(0),
                          p);
        },
        grid_cost);
    if (pass < p.sibling_iterations) {
      e.for_each(
          {"sibling_exchange", perf::component::kGravity, level},
          level_grids.size(),
          [&](std::size_t n) {
            Grid* g = level_grids[n];
            fill_potential_bc_from_parent(*g, *g->parent());
            exchange_potential_with_siblings(*g, level_grids, topo, level, n);
          },
          grid_cost);
    }
  }
}

void compute_accelerations(Grid& g, double a) {
  ENZO_REQUIRE(g.has_gravity(), "accelerations require a solved potential");
  const mesh::ConstFieldView pot = g.potential();
  const int gx = pot_ghost(g, 0), gy = pot_ghost(g, 1), gz = pot_ghost(g, 2);
  for (int d = 0; d < 3; ++d) {
    const mesh::FieldView acc = g.acceleration(d);
    if (g.spec().level_dims[d] == 1) {
      acc.fill(0.0);
      continue;
    }
    const double inv = -1.0 / (2.0 * a * g.cell_width_d(d));
    const int off[3] = {d == 0 ? 1 : 0, d == 1 ? 1 : 0, d == 2 ? 1 : 0};
    for (int k = 0; k < g.nx(2); ++k)
      for (int j = 0; j < g.nx(1); ++j)
        for (int i = 0; i < g.nx(0); ++i)
          acc(i, j, k) = inv * (pot(i + gx + off[0], j + gy + off[1],
                                    k + gz + off[2]) -
                                pot(i + gx - off[0], j + gy - off[1],
                                    k + gz - off[2]));
  }
}

}  // namespace enzo::gravity
