// Root-grid Poisson solve (§3.3): assemble the level-0 gravitating mass into
// a single periodic array, FFT, multiply by the Green function of the
// 7-point discrete Laplacian (so root and multigrid levels share the same
// operator), inverse FFT, and scatter the potential back to the root tiles
// with a periodic ghost layer.

#include <cmath>

#include "fft/fft.hpp"
#include "gravity/gravity.hpp"
#include "perf/trace.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

namespace enzo::gravity {

void solve_root_gravity(mesh::Hierarchy& h, const GravityParams& p,
                        double a) {
  auto roots = h.grids(0);
  ENZO_REQUIRE(!roots.empty(), "no root grids");
  ENZO_REQUIRE(h.params().periodic, "FFT root solve requires a periodic box");
  perf::TraceScope scope("root_fft", perf::component::kGravity, 0);
  const mesh::Index3 dims = h.level_dims(0);
  const int nx = static_cast<int>(dims[0]);
  const int ny = static_cast<int>(dims[1]);
  const int nz = static_cast<int>(dims[2]);

  // ---- assemble the global gravitating mass --------------------------------
  util::Array3<double> rho(nx, ny, nz, 0.0);
  for (mesh::Grid* g : roots) {
    auto glo = [&](int d) { return g->spec().level_dims[d] > 1 ? 1 : 0; };
    const auto& gm = g->gravitating_mass();
    for (int k = 0; k < g->nx(2); ++k)
      for (int j = 0; j < g->nx(1); ++j)
        for (int i = 0; i < g->nx(0); ++i)
          rho(static_cast<int>(g->box().lo[0]) + i,
              static_cast<int>(g->box().lo[1]) + j,
              static_cast<int>(g->box().lo[2]) + k) =
              gm(i + glo(0), j + glo(1), k + glo(2));
  }

  // ---- FFT solve: ∇²φ = (G/a)(ρ − ρ̄) ---------------------------------------
  const double mean = rho.sum() / static_cast<double>(rho.size());
  const double coef = p.grav_const_code / a;
  util::Array3<fft::cplx> spec = fft::fft3_real(rho);
  const double dx[3] = {1.0 / nx, 1.0 / ny, 1.0 / nz};
  for (int kz = 0; kz < nz; ++kz)
    for (int ky = 0; ky < ny; ++ky)
      for (int kx = 0; kx < nx; ++kx) {
        if (kx == 0 && ky == 0 && kz == 0) {
          spec(kx, ky, kz) = 0.0;  // zero mean (removes ρ̄ exactly)
          continue;
        }
        // Eigenvalue of the 7-point Laplacian: Σ_d (2cos(2π f_d/n_d) − 2)/dx_d².
        double lam = 0.0;
        const int f[3] = {kx, ky, kz};
        const int n[3] = {nx, ny, nz};
        for (int d = 0; d < 3; ++d) {
          if (n[d] == 1) continue;
          const double ang = constants::kTwoPi * f[d] / n[d];
          lam += (2.0 * std::cos(ang) - 2.0) / (dx[d] * dx[d]);
        }
        spec(kx, ky, kz) *= coef / lam;
      }
  (void)mean;  // mean removal is the k=0 projection above
  util::Array3<double> phi = fft::ifft3_real(spec);

  // ---- scatter back with periodic ghosts ------------------------------------
  for (mesh::Grid* g : roots) {
    auto glo = [&](int d) { return g->spec().level_dims[d] > 1 ? 1 : 0; };
    const mesh::FieldView pot = g->potential();
    for (int k = -glo(2); k < g->nx(2) + glo(2); ++k)
      for (int j = -glo(1); j < g->nx(1) + glo(1); ++j)
        for (int i = -glo(0); i < g->nx(0) + glo(0); ++i) {
          const int gi =
              static_cast<int>(((g->box().lo[0] + i) % nx + nx) % nx);
          const int gj =
              static_cast<int>(((g->box().lo[1] + j) % ny + ny) % ny);
          const int gk =
              static_cast<int>(((g->box().lo[2] + k) % nz + nz) % nz);
          pot(i + glo(0), j + glo(1), k + glo(2)) = phi(gi, gj, gk);
        }
  }
}

}  // namespace enzo::gravity
