#pragma once
// Self-gravity on the hierarchy (§3.3).
//
// "On the root grid, this is done with an FFT which naturally provides the
// periodic boundary conditions required.  On subgrids, we interpolate the
// gravitational potential field and then solve the Poisson equation using a
// traditional multi-grid relaxation technique.  In order to produce a
// solution that is consistent across the boundaries of sibling grids, we use
// an iterative method: first solving each grid separately, exchanging
// boundary conditions, and then solving again."
//
// Equation solved (comoving code units; see cosmology/units.hpp):
//     ∇²_x φ = (G_code / a) (ρ_gm − ρ̄)
// where ρ_gm is each grid's gravitating mass (gas + deposited dark matter)
// and ρ̄ the global mean.  The acceleration entering the momentum equation
// is g = −(1/a) ∇_x φ.

#include "mesh/hierarchy.hpp"

namespace enzo::exec {
class LevelExecutor;
}

namespace enzo::gravity {

struct GravityParams {
  double grav_const_code = 1.0;  ///< "4πG" in code units
  double mean_density = 1.0;     ///< ρ̄ in code units (1 for cosmology)
  int mg_max_vcycles = 25;
  double mg_tolerance = 1e-9;    ///< relative residual target
  int mg_pre_smooth = 3;
  int mg_post_smooth = 3;
  int sibling_iterations = 2;    ///< exchange-and-resolve passes per level
};

/// Fill every grid's gravitating_mass with its gas density, add the grid's
/// own CIC-deposited particles (done by the caller through nbody), then
/// propagate fine-level mass down so each coarse grid sees the full matter
/// distribution under its children.  Call after nbody deposition.
/// `ex` (optional, here and below) runs the per-grid work as executor
/// phases; children sharing a parent are grouped onto one task.
void restrict_gravitating_mass(mesh::Hierarchy& h,
                               exec::LevelExecutor* ex = nullptr);

/// Copy the gas density into gravitating_mass (active cells) for every grid
/// on the level, zeroing the ghost layer (particles are added afterwards).
void begin_gravitating_mass(mesh::Hierarchy& h, int level,
                            exec::LevelExecutor* ex = nullptr);

/// Solve on the (periodic) root level via FFT; root may be tiled.
void solve_root_gravity(mesh::Hierarchy& h, const GravityParams& p, double a);

/// Solve on a refined level: Dirichlet boundary interpolated from parent
/// potentials, multigrid V-cycles, sibling-exchange iteration.  The solve
/// and exchange passes are separate executor phases: a solve task touches
/// only its own potential/RHS, an exchange task writes only its own ghost
/// layer while reading sibling *interiors* (which no exchange task writes),
/// so both phases are order-independent.
void solve_subgrid_gravity(mesh::Hierarchy& h, int level,
                           const GravityParams& p, double a,
                           exec::LevelExecutor* ex = nullptr);

/// Cell-centered accelerations g = −(1/a)∇φ by central differences (the
/// potential ghost layer must be set, which both solvers guarantee).
void compute_accelerations(mesh::Grid& g, double a);

/// Multigrid building block, exposed for testing: solve ∇²φ = rhs on the
/// active region of `phi` (views over arrays with one ghost layer holding
/// fixed Dirichlet values; rhs same shape, ghosts ignored) with cell width
/// dx.  Returns the final relative residual.
double multigrid_solve(mesh::FieldView phi, mesh::ConstFieldView rhs,
                       double dx, const GravityParams& p);

}  // namespace enzo::gravity
