#pragma once
// Problem initializers.
//
// setup_cosmological builds the paper's production configuration at
// configurable scale: a CDM box with Gaussian-random-field baryon fields +
// Zel'dovich-displaced dark-matter particles, optionally with nested static
// refinement levels over a target region (§4's "restart with three
// additional levels of static meshes, equivalent to 512³ initial
// conditions").
//
// setup_collapse_cloud builds the controlled primordial-cloud collapse used
// by the Fig. 3/4 benches: an overdense isothermal sphere of primordial
// composition in a periodic box, which collapses, cools through H₂ and runs
// the hierarchy deep — minutes of laptop time instead of 10⁶ SP2-seconds.
//
// The remaining setups are standard verification problems.
//
// Each problem is a *_setup(...) factory returning a ProblemSetup,
// composable with extra hooks and run via Simulation::initialize().  (The
// legacy setup_*(Simulation&) shims that wrapped these factories are gone.)

#include "core/problem_setup.hpp"
#include "core/simulation.hpp"

namespace enzo::core {

struct CosmologySetupOptions {
  double box_comoving_cm = 128.0 * 3.0857e21;  ///< 128 comoving kpc default
  std::uint64_t seed = 2001;
  int particles_per_axis = 0;  ///< 0 → same as root dims
  /// Nested static levels covering the central half-box (each level halves
  /// the covered region, like the paper's zoom-in region).
  int nested_static_levels = 0;
  double initial_ionization = 2e-4;  ///< residual x_e from recombination
  double initial_h2_fraction = 2e-6;
};

/// Comoving CDM simulation; cfg.hierarchy.root_dims, frw and
/// initial_redshift must be set.  Fills cfg.units, builds the root grid,
/// fields and particles, and (if requested) the nested static levels with
/// mode-consistent small-scale power.
ProblemSetup cosmological_setup(const CosmologySetupOptions& opt);

struct CollapseSetupOptions {
  double box_proper_cm = 2.0 * 3.0857e18;  ///< 2 pc box
  double cloud_radius = 0.2;               ///< code units
  double overdensity = 8.0;                ///< ρ_cloud / ρ_background
  double mean_density_cgs = 1e-20;         ///< ~6×10³ H/cm³ background
  double temperature = 400.0;              ///< K
  double ionization = 1e-4;
  double h2_fraction = 5e-4;
  bool chemistry = true;
};

/// Isolated primordial-cloud collapse (static space, full gravity +
/// chemistry).  Sets cfg.units to a self-consistent simple system in which
/// G_code = 4πG·ρ_unit·t_unit² with t_unit the background free-fall scale.
ProblemSetup collapse_cloud_setup(const CollapseSetupOptions& opt);

/// Sod shock tube along x (n×1×1, outflow boundaries).
ProblemSetup sod_tube_setup();

/// Zel'dovich pancake: single sinusoidal perturbation collapsing to a
/// caustic at a_caustic (1-d comoving problem, the classic cosmology-hydro
/// verification test).
struct PancakeOptions {
  double a_caustic_redshift = 1.0;  ///< caustic forms at z = 1
  double box_comoving_cm = 64.0 * 3.0857e24;  ///< 64 Mpc
  double initial_temperature = 100.0;         ///< K
};
ProblemSetup zeldovich_pancake_setup(const PancakeOptions& opt);

/// Uniform medium (smoke tests).
ProblemSetup uniform_setup(double rho, double eint);

}  // namespace enzo::core
