#include "core/parameter_file.hpp"

#include <charconv>
#include <fstream>
#include <functional>
#include <sstream>

#include "exec/exec_config.hpp"
#include "problems/registry.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

namespace enzo::core {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

struct Parser {
  ParameterDeck deck;
  int line_no = 0;
  /// Whether an explicit `Executor =` key was seen (a later `Threads = 1`
  /// must not silently demote an explicitly requested threadpool, nor must
  /// `Threads = 8` override an explicit `Executor = serial`).
  bool executor_set = false;

  [[noreturn]] void fail(const std::string& msg) const {
    throw enzo::Error("parameter deck line " + std::to_string(line_no) + ": " +
                      msg);
  }

  double num(const std::string& v) const {
    try {
      std::size_t pos = 0;
      const double x = std::stod(v, &pos);
      if (trim(v.substr(pos)).empty()) return x;
    } catch (...) {
    }
    fail("expected a number, got '" + v + "'");
  }
  int integer(const std::string& v) const {
    const double x = num(v);
    const int i = static_cast<int>(x);
    if (static_cast<double>(i) != x) fail("expected an integer, got '" + v + "'");
    return i;
  }
  bool boolean(const std::string& v) const {
    if (v == "1" || v == "true" || v == "yes") return true;
    if (v == "0" || v == "false" || v == "no") return false;
    fail("expected a boolean (0/1/true/false), got '" + v + "'");
  }
  mesh::Index3 dims(const std::string& v) const {
    std::istringstream ss(v);
    mesh::Index3 d{1, 1, 1};
    if (!(ss >> d[0])) fail("expected up to three integers, got '" + v + "'");
    ss >> d[1] >> d[2];
    std::string rest;
    if (ss.clear(), std::getline(ss, rest); !trim(rest).empty())
      fail("trailing text after dimensions: '" + rest + "'");
    return d;
  }

  void apply(const std::string& key, const std::string& value) {
    auto& cfg = deck.config;
    // --- problem selection -----------------------------------------------
    if (key == "ProblemType") {
      // Validated against the problem registry, so the accepted names and
      // this error's listing can never drift from the actual generators.
      const auto& reg = problems::Registry::global();
      if (reg.find(value) == nullptr)
        fail("unknown ProblemType '" + value +
             "' (registered: " + reg.names_joined() + ")");
      deck.problem = value;
      return;
    }
    // --- hierarchy ----------------------------------------------------------
    if (key == "TopGridDimensions") { cfg.hierarchy.root_dims = dims(value); return; }
    if (key == "RefineBy") { cfg.hierarchy.refine_factor = integer(value); return; }
    if (key == "MaximumRefinementLevel") { cfg.hierarchy.max_level = integer(value); return; }
    if (key == "PeriodicBoundary") { cfg.hierarchy.periodic = boolean(value); return; }
    if (key == "GhostZones") { cfg.hierarchy.nghost = integer(value); return; }
    if (key == "FlagBufferCells") { cfg.hierarchy.flag_buffer = integer(value); return; }
    if (key == "ClusterEfficiency") { cfg.hierarchy.cluster.min_efficiency = num(value); return; }
    // --- storage -------------------------------------------------------------
    if (key == "ArenaMode") {
      const bool on = boolean(value);
      cfg.hierarchy.arena.pool = on;
      cfg.hierarchy.arena.incremental = on;
      return;
    }
    if (key == "BlockGranularity") {
      cfg.hierarchy.arena.granularity = integer(value);
      if (cfg.hierarchy.arena.granularity < 1)
        fail("BlockGranularity must be >= 1");
      return;
    }
    if (key == "UseOverlapTopology") { cfg.hierarchy.use_overlap_topology = boolean(value); return; }
    // --- refinement criteria -----------------------------------------------
    if (key == "RefineByBaryonMass") { cfg.refinement.baryon_mass_threshold = num(value); return; }
    if (key == "RefineByDarkMatterMass") { cfg.refinement.dm_mass_threshold = num(value); return; }
    if (key == "RefineByJeansLength") { cfg.refinement.jeans_number = num(value); return; }
    if (key == "RefineByOverdensity") { cfg.refinement.overdensity_threshold = num(value); return; }
    // --- physics toggles -----------------------------------------------------
    if (key == "HydroEnabled") { cfg.enable_hydro = boolean(value); return; }
    if (key == "GravityEnabled") { cfg.enable_gravity = boolean(value); return; }
    if (key == "ChemistryEnabled") {
      cfg.enable_chemistry = boolean(value);
      if (cfg.enable_chemistry) cfg.hierarchy.fields = mesh::chemistry_field_list();
      return;
    }
    if (key == "ParticlesEnabled") { cfg.enable_particles = boolean(value); return; }
    // --- hydro ---------------------------------------------------------------
    if (key == "Gamma") { cfg.hydro.gamma = num(value); return; }
    if (key == "CourantSafetyNumber") { cfg.hydro.cfl = num(value); return; }
    if (key == "HydroMethod") {
      if (value == "PPM") cfg.hydro.solver = hydro::Solver::kPpm;
      else if (value == "Zeus") cfg.hydro.solver = hydro::Solver::kZeus;
      else fail("unknown HydroMethod '" + value + "' (PPM or Zeus)");
      return;
    }
    if (key == "PPMFlattening") { cfg.hydro.flattening = boolean(value); return; }
    if (key == "DualEnergyEta") { cfg.hydro.dual_energy_eta1 = num(value); return; }
    // --- cosmology -------------------------------------------------------------
    if (key == "ComovingCoordinates") { cfg.comoving = boolean(value); return; }
    if (key == "HubbleConstantNow") { cfg.frw.hubble = num(value); return; }
    if (key == "OmegaMatterNow") { cfg.frw.omega_matter = num(value); return; }
    if (key == "OmegaBaryonNow") { cfg.frw.omega_baryon = num(value); return; }
    if (key == "OmegaLambdaNow") { cfg.frw.omega_lambda = num(value); return; }
    if (key == "Sigma8") { cfg.frw.sigma8 = num(value); return; }
    if (key == "InitialRedshift") { cfg.initial_redshift = num(value); return; }
    if (key == "ComovingBoxSizeMpc") {
      // Shared by the two comoving problems (cosmology box and pancake).
      deck.cosmology.box_comoving_cm = num(value) * constants::kMpc;
      deck.pancake.box_comoving_cm = deck.cosmology.box_comoving_cm;
      return;
    }
    if (key == "RandomSeed") { deck.cosmology.seed = static_cast<std::uint64_t>(num(value)); return; }
    if (key == "NestedStaticLevels") { deck.cosmology.nested_static_levels = integer(value); return; }
    if (key == "ParticlesPerAxis") { deck.cosmology.particles_per_axis = integer(value); return; }
    // --- collapse problem --------------------------------------------------------
    if (key == "BoxSizeParsec") {
      deck.collapse.box_proper_cm = num(value) * constants::kParsec;
      return;
    }
    if (key == "CloudRadius") { deck.collapse.cloud_radius = num(value); return; }
    if (key == "CloudOverdensity") { deck.collapse.overdensity = num(value); return; }
    if (key == "BackgroundDensityCGS") { deck.collapse.mean_density_cgs = num(value); return; }
    if (key == "InitialTemperature") {
      deck.collapse.temperature = num(value);
      deck.pancake.initial_temperature = num(value);
      return;
    }
    if (key == "InitialIonizationFraction") {
      deck.collapse.ionization = num(value);
      deck.cosmology.initial_ionization = num(value);
      return;
    }
    if (key == "InitialH2Fraction") {
      deck.collapse.h2_fraction = num(value);
      deck.cosmology.initial_h2_fraction = num(value);
      return;
    }
    // --- pancake -------------------------------------------------------------------
    if (key == "PancakeCausticRedshift") { deck.pancake.a_caustic_redshift = num(value); return; }
    // --- uniform -------------------------------------------------------------------
    if (key == "UniformDensity") { deck.uniform_density = num(value); return; }
    if (key == "UniformInternalEnergy") { deck.uniform_eint = num(value); return; }
    // --- sedov blast ---------------------------------------------------------------
    if (key == "SedovEnergy") { deck.sedov.energy = num(value); return; }
    if (key == "SedovDepositRadius") { deck.sedov.radius = num(value); return; }
    // --- execution ------------------------------------------------------------------
    if (key == "Threads") {
      cfg.exec.threads = integer(value);
      if (cfg.exec.threads < 0) fail("Threads must be >= 0 (0 = all cores)");
      // N != 1 implies the caller wants parallelism: auto-select the
      // threadpool backend unless an explicit Executor key said otherwise.
      if (!executor_set)
        cfg.exec.backend = cfg.exec.threads == 1 ? exec::Backend::kSerial
                                                 : exec::Backend::kThreadPool;
      return;
    }
    if (key == "Executor") {
      try {
        cfg.exec.backend = exec::backend_from_string(value);
      } catch (const enzo::Error&) {
        fail("unknown Executor '" + value + "' (serial or threadpool)");
      }
      executor_set = true;
      return;
    }
    if (key == "PinThreads") { cfg.exec.pin = boolean(value); return; }
    // --- run control ----------------------------------------------------------------
    if (key == "StopTime") { deck.stop_time = num(value); return; }
    if (key == "StopSteps") { deck.stop_steps = integer(value); return; }
    if (key == "RebuildInterval") { cfg.rebuild_interval = integer(value); return; }
    if (key == "AuditInvariants") { cfg.audit_invariants = boolean(value); return; }
    if (key == "AuditInterval") { cfg.audit_interval = integer(value); return; }
    if (key == "CheckpointPath") { deck.checkpoint_path = value; return; }
    if (key == "CheckpointInterval") {
      deck.checkpoint_interval = integer(value);
      return;
    }
    if (key == "CheckpointKeep") { deck.checkpoint_keep = integer(value); return; }
    fail("unknown parameter '" + key + "'");
  }
};

}  // namespace

ParameterDeck parse_parameter_deck(std::istream& in) {
  Parser p;
  std::string line;
  while (std::getline(in, line)) {
    ++p.line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) p.fail("expected 'Key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) p.fail("empty key");
    if (value.empty()) p.fail("empty value for '" + key + "'");
    p.apply(key, value);
  }
  return std::move(p.deck);
}

ParameterDeck parse_parameter_file(const std::string& path) {
  std::ifstream in(path);
  ENZO_REQUIRE(in.good(), "cannot open parameter file: " + path);
  return parse_parameter_deck(in);
}

ProblemSetup deck_problem_setup(const ParameterDeck& deck) {
  // Registry dispatch: throws (listing the registered names) for a problem
  // name set programmatically without going through the parser.
  return problems::Registry::global().at(deck.problem).make(deck);
}

void setup_from_deck(Simulation& sim, const ParameterDeck& deck) {
  sim.initialize(deck_problem_setup(deck));
}

void configure_from_deck(Simulation& sim, const ParameterDeck& deck) {
  sim.configure_for_restart(deck_problem_setup(deck));
}

namespace {

/// Shortest round-trip rendering of a double (std::to_chars): re-parsing
/// the text recovers the bit-identical value, so render/parse cycles are
/// lossless — the old 6-significant-digit rendering turned 5/3 into
/// "1.66667" and silently perturbed every re-parsed config.
std::string fmt(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::string render_deck(const ParameterDeck& deck) {
  std::ostringstream os;
  const auto& cfg = deck.config;
  // Compare against the parser's starting state, so render emits exactly
  // the keys a deck would need to reproduce this configuration.
  const ParameterDeck d0;
  const auto& c0 = d0.config;

  os << "ProblemType = " << deck.problem << "\n";
  os << "TopGridDimensions = " << cfg.hierarchy.root_dims[0] << " "
     << cfg.hierarchy.root_dims[1] << " " << cfg.hierarchy.root_dims[2]
     << "\n";
  os << "RefineBy = " << cfg.hierarchy.refine_factor << "\n";
  os << "MaximumRefinementLevel = " << cfg.hierarchy.max_level << "\n";
  os << "PeriodicBoundary = " << (cfg.hierarchy.periodic ? 1 : 0) << "\n";
  if (cfg.hierarchy.nghost != c0.hierarchy.nghost)
    os << "GhostZones = " << cfg.hierarchy.nghost << "\n";
  if (cfg.hierarchy.flag_buffer != c0.hierarchy.flag_buffer)
    os << "FlagBufferCells = " << cfg.hierarchy.flag_buffer << "\n";
  if (cfg.hierarchy.cluster.min_efficiency !=
      c0.hierarchy.cluster.min_efficiency)
    os << "ClusterEfficiency = " << fmt(cfg.hierarchy.cluster.min_efficiency)
       << "\n";
  // ArenaMode collapses {pool, incremental}; dump the pair only when they
  // disagree (only reachable programmatically) so a re-parse reproduces it.
  if (cfg.hierarchy.arena.pool == cfg.hierarchy.arena.incremental) {
    if (!cfg.hierarchy.arena.pool) os << "ArenaMode = 0\n";
  } else {
    os << "ArenaMode = " << (cfg.hierarchy.arena.pool ? 1 : 0) << "\n";
  }
  if (cfg.hierarchy.arena.granularity != mesh::ArenaOptions{}.granularity)
    os << "BlockGranularity = " << cfg.hierarchy.arena.granularity << "\n";
  if (!cfg.hierarchy.use_overlap_topology) os << "UseOverlapTopology = 0\n";
  os << "HydroEnabled = " << (cfg.enable_hydro ? 1 : 0) << "\n";
  os << "GravityEnabled = " << (cfg.enable_gravity ? 1 : 0) << "\n";
  os << "ChemistryEnabled = " << (cfg.enable_chemistry ? 1 : 0) << "\n";
  os << "ParticlesEnabled = " << (cfg.enable_particles ? 1 : 0) << "\n";
  os << "Gamma = " << fmt(cfg.hydro.gamma) << "\n";
  os << "CourantSafetyNumber = " << fmt(cfg.hydro.cfl) << "\n";
  os << "HydroMethod = "
     << (cfg.hydro.solver == hydro::Solver::kPpm ? "PPM" : "Zeus") << "\n";
  if (cfg.hydro.flattening != c0.hydro.flattening)
    os << "PPMFlattening = " << (cfg.hydro.flattening ? 1 : 0) << "\n";
  if (cfg.hydro.dual_energy_eta1 != c0.hydro.dual_energy_eta1)
    os << "DualEnergyEta = " << fmt(cfg.hydro.dual_energy_eta1) << "\n";
  if (cfg.refinement.baryon_mass_threshold > 0)
    os << "RefineByBaryonMass = " << fmt(cfg.refinement.baryon_mass_threshold)
       << "\n";
  if (cfg.refinement.dm_mass_threshold > 0)
    os << "RefineByDarkMatterMass = " << fmt(cfg.refinement.dm_mass_threshold)
       << "\n";
  if (cfg.refinement.jeans_number > 0)
    os << "RefineByJeansLength = " << fmt(cfg.refinement.jeans_number) << "\n";
  if (cfg.refinement.overdensity_threshold > 0)
    os << "RefineByOverdensity = " << fmt(cfg.refinement.overdensity_threshold)
       << "\n";
  if (cfg.comoving) os << "ComovingCoordinates = 1\n";
  if (cfg.frw.hubble != c0.frw.hubble)
    os << "HubbleConstantNow = " << fmt(cfg.frw.hubble) << "\n";
  if (cfg.frw.omega_matter != c0.frw.omega_matter)
    os << "OmegaMatterNow = " << fmt(cfg.frw.omega_matter) << "\n";
  if (cfg.frw.omega_baryon != c0.frw.omega_baryon)
    os << "OmegaBaryonNow = " << fmt(cfg.frw.omega_baryon) << "\n";
  if (cfg.frw.omega_lambda != c0.frw.omega_lambda)
    os << "OmegaLambdaNow = " << fmt(cfg.frw.omega_lambda) << "\n";
  if (cfg.frw.sigma8 != c0.frw.sigma8)
    os << "Sigma8 = " << fmt(cfg.frw.sigma8) << "\n";
  if (cfg.initial_redshift != c0.initial_redshift)
    os << "InitialRedshift = " << fmt(cfg.initial_redshift) << "\n";
  // ComovingBoxSizeMpc feeds both comoving problems; emit whichever differs
  // from its default (a deck key always sets the two together).
  if (deck.cosmology.box_comoving_cm != d0.cosmology.box_comoving_cm)
    os << "ComovingBoxSizeMpc = "
       << fmt(deck.cosmology.box_comoving_cm / constants::kMpc) << "\n";
  else if (deck.pancake.box_comoving_cm != d0.pancake.box_comoving_cm)
    os << "ComovingBoxSizeMpc = "
       << fmt(deck.pancake.box_comoving_cm / constants::kMpc) << "\n";
  if (deck.cosmology.seed != d0.cosmology.seed)
    os << "RandomSeed = " << deck.cosmology.seed << "\n";
  if (deck.cosmology.nested_static_levels != d0.cosmology.nested_static_levels)
    os << "NestedStaticLevels = " << deck.cosmology.nested_static_levels
       << "\n";
  if (deck.cosmology.particles_per_axis != d0.cosmology.particles_per_axis)
    os << "ParticlesPerAxis = " << deck.cosmology.particles_per_axis << "\n";
  // --- collapse problem ---
  if (deck.collapse.box_proper_cm != d0.collapse.box_proper_cm)
    os << "BoxSizeParsec = "
       << fmt(deck.collapse.box_proper_cm / constants::kParsec) << "\n";
  if (deck.collapse.cloud_radius != d0.collapse.cloud_radius)
    os << "CloudRadius = " << fmt(deck.collapse.cloud_radius) << "\n";
  if (deck.collapse.overdensity != d0.collapse.overdensity)
    os << "CloudOverdensity = " << fmt(deck.collapse.overdensity) << "\n";
  if (deck.collapse.mean_density_cgs != d0.collapse.mean_density_cgs)
    os << "BackgroundDensityCGS = " << fmt(deck.collapse.mean_density_cgs)
       << "\n";
  // The Initial* keys each feed two problems' options; emit whichever copy
  // differs from its own default (a deck key always sets both together).
  if (deck.collapse.temperature != d0.collapse.temperature)
    os << "InitialTemperature = " << fmt(deck.collapse.temperature) << "\n";
  else if (deck.pancake.initial_temperature != d0.pancake.initial_temperature)
    os << "InitialTemperature = " << fmt(deck.pancake.initial_temperature)
       << "\n";
  if (deck.collapse.ionization != d0.collapse.ionization)
    os << "InitialIonizationFraction = " << fmt(deck.collapse.ionization)
       << "\n";
  else if (deck.cosmology.initial_ionization !=
           d0.cosmology.initial_ionization)
    os << "InitialIonizationFraction = "
       << fmt(deck.cosmology.initial_ionization) << "\n";
  if (deck.collapse.h2_fraction != d0.collapse.h2_fraction)
    os << "InitialH2Fraction = " << fmt(deck.collapse.h2_fraction) << "\n";
  else if (deck.cosmology.initial_h2_fraction !=
           d0.cosmology.initial_h2_fraction)
    os << "InitialH2Fraction = " << fmt(deck.cosmology.initial_h2_fraction)
       << "\n";
  // --- pancake / uniform / sedov ---
  if (deck.pancake.a_caustic_redshift != d0.pancake.a_caustic_redshift)
    os << "PancakeCausticRedshift = " << fmt(deck.pancake.a_caustic_redshift)
       << "\n";
  if (deck.uniform_density != d0.uniform_density)
    os << "UniformDensity = " << fmt(deck.uniform_density) << "\n";
  if (deck.uniform_eint != d0.uniform_eint)
    os << "UniformInternalEnergy = " << fmt(deck.uniform_eint) << "\n";
  if (deck.sedov.energy != d0.sedov.energy)
    os << "SedovEnergy = " << fmt(deck.sedov.energy) << "\n";
  if (deck.sedov.radius != d0.sedov.radius)
    os << "SedovDepositRadius = " << fmt(deck.sedov.radius) << "\n";
  if (cfg.audit_invariants) {
    os << "AuditInvariants = 1\n";
    if (cfg.audit_interval != 1)
      os << "AuditInterval = " << cfg.audit_interval << "\n";
  }
  if (cfg.exec.backend != exec::Backend::kSerial || cfg.exec.threads != 0) {
    // Executor before Threads so a re-parse sees the explicit backend and
    // never re-applies the Threads auto-selection.
    os << "Executor = " << exec::backend_name(cfg.exec.backend) << "\n";
    if (cfg.exec.threads != 0) os << "Threads = " << cfg.exec.threads << "\n";
  }
  if (cfg.exec.pin) os << "PinThreads = 1\n";
  if (cfg.rebuild_interval != c0.rebuild_interval)
    os << "RebuildInterval = " << cfg.rebuild_interval << "\n";
  os << "StopSteps = " << deck.stop_steps << "\n";
  if (deck.stop_time != d0.stop_time)
    os << "StopTime = " << fmt(deck.stop_time) << "\n";
  if (!deck.checkpoint_path.empty())
    os << "CheckpointPath = " << deck.checkpoint_path << "\n";
  if (deck.checkpoint_interval != d0.checkpoint_interval)
    os << "CheckpointInterval = " << deck.checkpoint_interval << "\n";
  if (deck.checkpoint_keep != d0.checkpoint_keep)
    os << "CheckpointKeep = " << deck.checkpoint_keep << "\n";
  return os.str();
}

}  // namespace enzo::core
