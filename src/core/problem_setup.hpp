#pragma once
// ProblemSetup: declarative initialization for a Simulation.
//
// Historically a problem was wired up through a four-call dance —
// build_root(), caller fills the fields, finalize_setup(), with
// sync_hierarchy_params() sprinkled in when the setup had adjusted hierarchy
// parameters after construction.  Each setup repeated the sequence and each
// new call site could get the order wrong.  A ProblemSetup captures the same
// stages as hooks and Simulation::initialize(setup) runs them in the one
// correct order:
//
//   1. configure hooks   — mutate SimulationConfig (units, physics toggles);
//                          the hierarchy is then re-derived from the result
//   2. build_root(tiles)
//   3. declared static regions are registered
//   4. fill hooks        — write root fields/particles; may still register
//                          static regions and set config values that
//                          finalize reads (e.g. gravity.mean_density)
//   5. finalize_setup    — snapshot old states, set times, initial rebuild
//   6. refine hooks      — post-finalize passes over the refined hierarchy
//                          (e.g. overwriting nested levels with finer
//                          realizations)
//
// The factories in setup.hpp (cosmological_setup(...) etc.) return
// ready-made ProblemSetups; examples compose or extend them.

#include <functional>
#include <utility>
#include <vector>

#include "core/config.hpp"

namespace enzo::core {

class Simulation;

class ProblemSetup {
 public:
  using ConfigHook = std::function<void(SimulationConfig&)>;
  using SimHook = std::function<void(Simulation&)>;

  /// Mutate the configuration before the hierarchy is built.
  ProblemSetup& configure(ConfigHook fn) {
    configure_.push_back(std::move(fn));
    return *this;
  }

  /// Tile the root level tiles³ (default: one root grid).
  ProblemSetup& root_tiles(int tiles) {
    tiles_ = tiles;
    return *this;
  }

  /// Pin a permanently refined region (registered before the fill hooks).
  ProblemSetup& static_region(int level, const mesh::IndexBox& box) {
    static_regions_.emplace_back(level, box);
    return *this;
  }

  /// Write initial fields/particles on the freshly built root level.
  ProblemSetup& fill(SimHook fn) {
    fill_.push_back(std::move(fn));
    return *this;
  }

  /// Post-finalize pass over the refined hierarchy.
  ProblemSetup& refine(SimHook fn) {
    refine_.push_back(std::move(fn));
    return *this;
  }

 private:
  friend class Simulation;
  std::vector<ConfigHook> configure_;
  int tiles_ = 1;
  std::vector<std::pair<int, mesh::IndexBox>> static_regions_;
  std::vector<SimHook> fill_;
  std::vector<SimHook> refine_;
};

}  // namespace enzo::core
