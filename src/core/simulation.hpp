#pragma once
// The Enzo-style driver (§3.2): the recursive EvolveLevel routine.
//
//   EvolveLevel(level, ParentTime):
//     SetBoundaryValues(all grids)
//     while (Time < ParentTime):
//       dt = ComputeTimeStep(all grids)
//       SolveHydroEquations(all grids, dt)      [+ gravity, chemistry, N-body]
//       Time += dt
//       SetBoundaryValues(all grids)
//       EvolveLevel(level+1, Time)
//       FluxCorrection
//       Projection
//       RebuildHierarchy(level+1)
//
// producing the multigrid-W-cycle ordering of timesteps (Fig. 2).  Times are
// extended precision so a child level always lands on its parent's time
// exactly, no matter how deep the hierarchy (§3.5).

#include <functional>
#include <memory>
#include <vector>

#include "analysis/auditor.hpp"
#include "core/config.hpp"
#include "core/problem_setup.hpp"
#include "exec/executor.hpp"
#include "ext/position.hpp"
#include "perf/diagnostics.hpp"

namespace enzo::core {

class Simulation {
 public:
  explicit Simulation(SimulationConfig cfg);

  SimulationConfig& config() { return cfg_; }
  const SimulationConfig& config() const { return cfg_; }
  mesh::Hierarchy& hierarchy() { return hierarchy_; }
  const mesh::Hierarchy& hierarchy() const { return hierarchy_; }

  /// Run a declarative problem setup end to end: configure hooks, root
  /// build, static regions, fill hooks, finalize, refine hooks — in that
  /// order (see problem_setup.hpp).  This is the preferred way to
  /// initialize a Simulation.
  void initialize(const ProblemSetup& setup);

  /// Deprecated shim: build the root level (tiles_per_axis per side).  The
  /// caller then fills the root fields/particles and calls finalize_setup().
  /// New code should describe the problem as a ProblemSetup and call
  /// initialize() instead.
  void build_root(int tiles_per_axis = 1);

  /// Deprecated shim: snapshot old states, set times, and run the initial
  /// rebuild cascade (initialize() does this between the fill and refine
  /// hooks).
  void finalize_setup();

  /// Pin a region (box in that level's index space) as permanently refined —
  /// the §4 "additional levels of static meshes" for nested initial
  /// conditions.
  void add_static_region(int level, const mesh::IndexBox& box);
  const std::vector<std::pair<int, mesh::IndexBox>>& static_regions() const {
    return static_regions_;
  }

  /// Restart path: run only a setup's *configure* hooks (units, physics
  /// toggles, field list) and re-derive the still-empty hierarchy from the
  /// result.  The state itself — root build, fills, static regions — then
  /// comes from io::read_checkpoint instead of the setup's fill hooks.
  void configure_for_restart(const ProblemSetup& setup);

  /// Advance by exactly one root-grid timestep (the whole W-cycle beneath).
  double advance_root_step();

  /// Advance until code time t_stop (or max_steps root steps).
  void evolve_until(double t_stop, int max_steps = 1 << 20);

  // ---- state ---------------------------------------------------------------
  ext::pos_t time() const { return time_; }
  double time_d() const { return ext::pos_to_double(time_); }
  double scale_factor() const { return a_; }
  double redshift() const { return 1.0 / a_ - 1.0; }
  long root_steps_taken() const { return root_steps_; }

  /// Restore the clock after loading a checkpoint (code-time units); also
  /// re-derives the scale factor and resets per-level step counters.
  void restore_clock(ext::pos_t t);

  /// Everything beyond the hierarchy that a checkpoint must persist for a
  /// restarted run to continue the uninterrupted one bit-for-bit: the clock,
  /// the root/per-level step counters (step numbering and rebuild cadence),
  /// and the diagnostics/audit conservation baselines (residuals stay
  /// relative to the original run's t=0 state, not the restart point).
  struct ClockState {
    ext::pos_t time{0.0};
    long root_steps = 0;
    std::vector<long> level_steps;
    std::vector<std::pair<int, mesh::IndexBox>> static_regions;
    bool diag_baseline_set = false;
    double diag_mass0 = 0.0;
    double diag_energy0 = 0.0;
    bool audit_baseline_set = false;
    double audit_mass0 = 0.0;
    double audit_energy0 = 0.0;
  };
  ClockState clock_state() const;
  /// Checkpoint-restore counterpart of restore_clock.  Attach a diagnostics
  /// sink *before* restoring: set_diagnostics_sink resets the baselines this
  /// call reinstates.
  void restore_clock_state(const ClockState& s);

  /// Invoked after each completed root step (diagnostics record written and
  /// audit run, if configured).  run_deck's periodic auto-checkpointing
  /// hangs off this; pass nullptr to detach.
  using PostStepHook = std::function<void(Simulation&)>;
  void set_post_step_hook(PostStepHook hook) {
    post_step_hook_ = std::move(hook);
  }

  /// Expansion state at a given code time.
  cosmology::Expansion expansion_at(double t_code) const;
  /// Chemistry unit conversions at the current scale factor.
  chemistry::ChemUnits chem_units() const;

  /// Fig. 2 trace: the order in which (level, t → t+dt) steps were taken.
  struct WcycleEvent {
    int level;
    double t0;
    double dt;
  };
  const std::vector<WcycleEvent>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  /// The refinement-criteria flagger (exposed for tests/benches).
  mesh::Hierarchy::FlagFn flagger();

  // ---- execution -----------------------------------------------------------
  /// The level-execution engine used for every per-level grid sweep
  /// (boundary fill, timestep reduction, gravity, step_grids, flux
  /// projection).  Built lazily from config().exec and rebuilt when the
  /// backend or thread count changes between steps.
  exec::LevelExecutor& executor();
  /// Scheduling cost estimate for a grid: cell count, inflated by the
  /// metrics-registry chemistry subcycle rate when chemistry is enabled and
  /// by particle count when particles are enabled.  Seeds the work-stealing
  /// queues so expensive grids are picked up first.
  std::uint64_t grid_cost(const mesh::Grid& g) const;

  // ---- telemetry -----------------------------------------------------------
  /// Attach a per-step JSONL diagnostics sink (non-owning; pass nullptr to
  /// detach).  One StepRecord is written after every root-level step; the
  /// mass/energy conservation baselines reset when a sink is attached.
  void set_diagnostics_sink(perf::DiagnosticsSink* sink);
  /// The limiter that set the most recent root-level timestep.
  hydro::DtLimiter root_dt_limiter() const { return root_dt_limiter_; }
  /// Assemble the diagnostics record for the current state (exposed for
  /// tests; advance_root_step calls this when a sink is attached).
  perf::StepRecord make_step_record(double dt, hydro::DtLimiter limiter,
                                    double wall_seconds);

  // ---- invariant auditing ---------------------------------------------------
  /// When SimulationConfig::audit_invariants is set, advance_root_step
  /// refreshes boundary values and runs the AMR invariant auditor after
  /// every audit_interval-th root step.  Conservation baselines are taken
  /// from the first audited step.
  const analysis::AuditReport& last_audit() const { return last_audit_; }
  long audits_run() const { return audits_run_; }
  std::uint64_t audit_violations_total() const {
    return audit_violations_total_;
  }
  /// Run one audit now (also used internally); returns the report.
  const analysis::AuditReport& run_audit();

 private:
  /// Re-derive the (still-empty) hierarchy from the current config — needed
  /// when a problem setup adjusted hierarchy parameters after construction
  /// (build_root and checkpoint loading go through this).
  void sync_hierarchy_params();
  void evolve_level(int level, ext::pos_t parent_time);
  void step_root(double dt);
  /// step_root landing on an exact extended-precision target time (the
  /// final evolve_until step: every resolution ends at bit-identical
  /// dd(t_stop)); dt is the double-precision step for diagnostics.
  void step_root_to(ext::pos_t target, double dt);
  double compute_level_timestep(int level);
  void solve_gravity_level(int level);
  void step_grids(int level, double dt, const cosmology::Expansion& exp);
  void update_scale_factor();

  SimulationConfig cfg_;
  mesh::Hierarchy hierarchy_;
  std::unique_ptr<exec::LevelExecutor> exec_;
  exec::ExecConfig exec_built_;  ///< config exec_ was built from
  cosmology::Frw frw_;
  ext::pos_t time_{0.0};
  double a_ = 1.0;
  long root_steps_ = 0;
  std::vector<std::pair<int, mesh::IndexBox>> static_regions_;
  std::vector<long> level_steps_;  ///< per-level step counters (rebuild cadence)
  std::vector<WcycleEvent> trace_;
  perf::DiagnosticsSink* diag_sink_ = nullptr;
  PostStepHook post_step_hook_;
  hydro::DtLimiter root_dt_limiter_ = hydro::DtLimiter::kNone;
  bool diag_baseline_set_ = false;
  double diag_mass0_ = 0.0;
  double diag_energy0_ = 0.0;
  analysis::AuditReport last_audit_;
  long audits_run_ = 0;
  std::uint64_t audit_violations_total_ = 0;
  bool audit_baseline_set_ = false;
  double audit_mass0_ = 0.0;
  double audit_energy0_ = 0.0;
};

}  // namespace enzo::core
