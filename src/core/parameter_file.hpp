#pragma once
// Parameter-file front end.
//
// Production cosmology codes are driven by plain-text parameter files
// (Enzo's `ProblemType = 30`-style decks); this module parses that format
// into a SimulationConfig + problem selection so runs are reproducible from
// a checked-in text file rather than recompiled C++.
//
// Format: one `Key = value` per line; `#` starts a comment; keys are
// case-sensitive; unknown keys are an error (catching typos is the whole
// point of a deck parser).  Example:
//
//     # first-star collapse at laptop scale
//     ProblemType            = CollapseCloud
//     TopGridDimensions      = 16 16 16
//     MaximumRefinementLevel = 4
//     RefineByJeansLength    = 4
//     ChemistryEnabled       = 1
//     CloudOverdensity       = 10.0
//
// The problem is selected *by name* from the problem-generator registry
// (src/problems/registry.hpp): any registered problem — built-in or added
// via problems::Registrar — is deck-selectable, and the "unknown
// ProblemType" error lists exactly the registered names, so the accepted
// set can never drift from the actual generators.
//
// See `parse_parameter_file` for the full key list; render_deck() is the
// exact inverse of the parser (every non-default value is emitted with
// round-trip float precision), pinned by the deck round-trip suite in
// tests/deck_test.cpp.

#include <iosfwd>
#include <string>

#include "core/setup.hpp"
#include "core/simulation.hpp"

namespace enzo::core {

/// Sedov–Taylor blast options (problem `SedovBlast` / `SedovBlastSMR`):
/// energy deposited as thermal energy in a central sphere of the given
/// radius (code units) in an ambient medium with rho = 1, eint = 1e-4.
struct SedovOptions {
  double energy = 1.0;    ///< deck key SedovEnergy
  double radius = 0.08;   ///< deck key SedovDepositRadius
};

/// Everything a deck specifies: the simulation config, the problem, and the
/// per-problem options.
struct ParameterDeck {
  /// Problem-registry name (deck key ProblemType), e.g. "SodTube".
  std::string problem = "Uniform";
  SimulationConfig config;
  CollapseSetupOptions collapse;
  CosmologySetupOptions cosmology;
  PancakeOptions pancake;
  SedovOptions sedov;
  double uniform_density = 1.0;
  double uniform_eint = 1.0;
  // Run control.
  double stop_time = -1.0;      ///< code units; <0 → use stop_steps only
  int stop_steps = 10;
  /// Checkpoint directory (periodic mode) or file path (end-of-run mode).
  std::string checkpoint_path;
  /// Root steps between automatic checkpoints; 0 → only one at end of run.
  int checkpoint_interval = 0;
  /// Rolling retention: keep the newest N snapshots in checkpoint_path.
  int checkpoint_keep = 3;
};

/// Parse a deck from a stream; throws enzo::Error with line numbers on
/// malformed input, unknown keys, or a ProblemType that is not registered.
ParameterDeck parse_parameter_deck(std::istream& in);

/// Convenience: parse from a file path.
ParameterDeck parse_parameter_file(const std::string& path);

/// The deck's problem as a composable ProblemSetup (problem-registry
/// dispatch on deck.problem).
ProblemSetup deck_problem_setup(const ParameterDeck& deck);

/// Apply the deck's problem setup to a simulation constructed from
/// deck.config (build_root + fields + finalize).
void setup_from_deck(Simulation& sim, const ParameterDeck& deck);

/// Restart path: apply only the deck setup's configure hooks (units, physics
/// toggles, field list) so the config matches the original run; the state
/// itself then comes from io::read_checkpoint / restore_latest_checkpoint.
void configure_from_deck(Simulation& sim, const ParameterDeck& deck);

/// Render the effective deck back to text.  Exact inverse of the parser:
/// re-parsing the result reproduces the deck (round-trip float formatting;
/// values equal to the deck defaults are omitted, a fixed always-emitted
/// core set excepted).
std::string render_deck(const ParameterDeck& deck);

}  // namespace enzo::core
