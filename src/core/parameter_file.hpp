#pragma once
// Parameter-file front end.
//
// Production cosmology codes are driven by plain-text parameter files
// (Enzo's `ProblemType = 30`-style decks); this module parses that format
// into a SimulationConfig + problem selection so runs are reproducible from
// a checked-in text file rather than recompiled C++.
//
// Format: one `Key = value` per line; `#` starts a comment; keys are
// case-sensitive; unknown keys are an error (catching typos is the whole
// point of a deck parser).  Example:
//
//     # first-star collapse at laptop scale
//     ProblemType            = CollapseCloud
//     TopGridDimensions      = 16 16 16
//     MaximumRefinementLevel = 4
//     RefineByJeansLength    = 4
//     ChemistryEnabled       = 1
//     CloudOverdensity       = 10.0
//
// See `parse_parameter_file` for the full key list.

#include <iosfwd>
#include <string>

#include "core/setup.hpp"
#include "core/simulation.hpp"

namespace enzo::core {

enum class ProblemType {
  kUniform,
  kSodTube,
  kCollapseCloud,
  kCosmology,
  kZeldovichPancake,
};

/// Everything a deck specifies: the simulation config, the problem, and the
/// per-problem options.
struct ParameterDeck {
  ProblemType problem = ProblemType::kUniform;
  SimulationConfig config;
  CollapseSetupOptions collapse;
  CosmologySetupOptions cosmology;
  PancakeOptions pancake;
  double uniform_density = 1.0;
  double uniform_eint = 1.0;
  // Run control.
  double stop_time = -1.0;      ///< code units; <0 → use stop_steps only
  int stop_steps = 10;
  /// Checkpoint directory (periodic mode) or file path (end-of-run mode).
  std::string checkpoint_path;
  /// Root steps between automatic checkpoints; 0 → only one at end of run.
  int checkpoint_interval = 0;
  /// Rolling retention: keep the newest N snapshots in checkpoint_path.
  int checkpoint_keep = 3;
};

/// Parse a deck from a stream; throws enzo::Error with line numbers on
/// malformed input or unknown keys.
ParameterDeck parse_parameter_deck(std::istream& in);

/// Convenience: parse from a file path.
ParameterDeck parse_parameter_file(const std::string& path);

/// The deck's problem as a composable ProblemSetup.
ProblemSetup deck_problem_setup(const ParameterDeck& deck);

/// Apply the deck's problem setup to a simulation constructed from
/// deck.config (build_root + fields + finalize).
void setup_from_deck(Simulation& sim, const ParameterDeck& deck);

/// Restart path: apply only the deck setup's configure hooks (units, physics
/// toggles, field list) so the config matches the original run; the state
/// itself then comes from io::read_checkpoint / restore_latest_checkpoint.
void configure_from_deck(Simulation& sim, const ParameterDeck& deck);

/// Render the effective deck back to text (round-trip/debugging).
std::string render_deck(const ParameterDeck& deck);

}  // namespace enzo::core
