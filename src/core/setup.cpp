#include "core/setup.hpp"

#include <cmath>

#include "chemistry/chemistry.hpp"
#include "cosmology/grf.hpp"
#include "cosmology/power_spectrum.hpp"
#include "mesh/boundary.hpp"
#include "nbody/nbody.hpp"
#include "util/annotations.hpp"
#include "util/constants.hpp"
#include "util/error.hpp"

namespace enzo::core {

using mesh::Field;
using mesh::Grid;
namespace cn = constants;

namespace {

/// Specific internal energy (code units) for temperature T and mean
/// molecular weight mu.
ENZO_UNITS_BOUNDARY double eint_code(double T, double mu, double gamma,
                                     const cosmology::CodeUnits& u) {
  const double e_cgs =
      T * cn::kBoltzmann / ((gamma - 1.0) * mu * cn::kHydrogenMass);
  return e_cgs / (u.velocity_cgs() * u.velocity_cgs());
}

/// Write gas fields on a grid from full-box δ/ψ lattices realized at the
/// grid's own level resolution.
void fill_gas_from_realization(Grid& g, const cosmology::GrfOutput& real,
                               double growth, double vfac, double rho_mean,
                               double eint) {
  const mesh::FieldView rho = g.field(Field::kDensity);
  const mesh::FieldView et = g.field(Field::kTotalEnergy);
  const mesh::FieldView ei = g.field(Field::kInternalEnergy);
  const mesh::FieldView vel[3] = {g.field(Field::kVelocityX),
                                  g.field(Field::kVelocityY),
                                  g.field(Field::kVelocityZ)};
  const int n = real.delta.nx();
  for (int k = 0; k < g.nt(2); ++k)
    for (int j = 0; j < g.nt(1); ++j)
      for (int i = 0; i < g.nt(0); ++i) {
        // Global lattice index with periodic wrap (ghosts included so the
        // first boundary exchange starts consistent).
        auto wrap = [&](std::int64_t v, std::int64_t dims) {
          return static_cast<int>(((v % dims) + dims) % dims);
        };
        const int gi = wrap(g.box().lo[0] + (i - g.ng(0)),
                            g.spec().level_dims[0]) % n;
        const int gj = wrap(g.box().lo[1] + (j - g.ng(1)),
                            g.spec().level_dims[1]) % n;
        const int gk = wrap(g.box().lo[2] + (k - g.ng(2)),
                            g.spec().level_dims[2]) % n;
        const double d = growth * real.delta(gi, gj, gk);
        rho(i, j, k) = rho_mean * std::max(1.0 + d, 0.05);
        for (int c = 0; c < 3; ++c)
          vel[c](i, j, k) = vfac * real.psi[c](gi, gj, gk);
        double v2 = 0;
        for (int c = 0; c < 3; ++c)
          v2 += vel[c](i, j, k) * vel[c](i, j, k);
        ei(i, j, k) = eint;
        et(i, j, k) = eint + 0.5 * v2;
      }
}

}  // namespace

ProblemSetup uniform_setup(double rho, double eint) {
  ProblemSetup setup;
  setup.fill([rho, eint](Simulation& sim) {
    for (Grid* g : sim.hierarchy().grids(0)) {
      g->field(Field::kDensity).fill(rho);
      g->field(Field::kVelocityX).fill(0.0);
      g->field(Field::kVelocityY).fill(0.0);
      g->field(Field::kVelocityZ).fill(0.0);
      g->field(Field::kInternalEnergy).fill(eint);
      g->field(Field::kTotalEnergy).fill(eint);
      if (sim.config().enable_chemistry)
        chemistry::initialize_primordial_composition(
            *g, sim.config().chemistry, 1e-4, 1e-6);
    }
  });
  return setup;
}

ProblemSetup sod_tube_setup() {
  ProblemSetup setup;
  setup.configure([](SimulationConfig& cfg) {
    cfg.hierarchy.periodic = false;
    cfg.enable_gravity = false;
    cfg.enable_chemistry = false;
    cfg.enable_particles = false;
    ENZO_REQUIRE(cfg.hierarchy.root_dims[1] == 1 &&
                     cfg.hierarchy.root_dims[2] == 1,
                 "Sod tube is one-dimensional");
  });
  setup.fill([](Simulation& sim) {
    const double gamma = sim.config().hydro.gamma;
    for (Grid* g : sim.hierarchy().grids(0)) {
      const mesh::FieldView rho = g->field(Field::kDensity);
      const mesh::FieldView vx = g->field(Field::kVelocityX);
      const mesh::FieldView et = g->field(Field::kTotalEnergy);
      const mesh::FieldView ei = g->field(Field::kInternalEnergy);
      g->field(Field::kVelocityY).fill(0.0);
      g->field(Field::kVelocityZ).fill(0.0);
      for (int i = 0; i < g->nx(0); ++i) {
        const double x =
            (static_cast<double>(g->box().lo[0] + i) + 0.5) /
            g->spec().level_dims[0];
        const double r = x < 0.5 ? 1.0 : 0.125;
        const double p = x < 0.5 ? 1.0 : 0.1;
        rho(g->sx(i), 0, 0) = r;
        vx(g->sx(i), 0, 0) = 0.0;
        ei(g->sx(i), 0, 0) = p / ((gamma - 1.0) * r);
        et(g->sx(i), 0, 0) = ei(g->sx(i), 0, 0);
      }
    }
  });
  return setup;
}

ProblemSetup cosmological_setup(const CosmologySetupOptions& opt) {
  ProblemSetup setup;
  setup.configure([opt](SimulationConfig& cfg) {
    ENZO_REQUIRE(cfg.comoving, "cosmological_setup requires cfg.comoving");
    cosmology::Frw frw(cfg.frw);
    cfg.units = cosmology::CodeUnits::cosmological(frw, opt.box_comoving_cm);
    cfg.gravity.grav_const_code = cfg.units.grav_const_code;
    cfg.gravity.mean_density = 1.0;
  });
  setup.fill([opt](Simulation& sim) {
    auto& cfg = sim.config();
    cosmology::Frw frw(cfg.frw);
    const double a_i = cosmology::Frw::a_of_z(cfg.initial_redshift);
    cosmology::PowerSpectrum ps(frw);
    cosmology::InitialConditionsGenerator gen(frw, ps, opt.box_comoving_cm,
                                              opt.seed);
    const double growth = frw.growth_factor(a_i);
    // Note: the velocity factor already contains D(a_i) (v = a D f H ψ).
    const double vfac =
        cosmology::zeldovich_velocity_factor(frw, cfg.units, a_i);

    // Gas temperature: CMB-coupled until z ≈ 100, adiabatic (∝ a⁻²) after.
    const double z_i = cfg.initial_redshift;
    const double T_i = z_i >= 100.0
                           ? cn::kTcmb0 * (1.0 + z_i)
                           : cn::kTcmb0 * 101.0 *
                                 std::pow((1.0 + z_i) / 101.0, 2.0);
    const double fb = cfg.frw.omega_baryon / cfg.frw.omega_matter;

    const int n_root = static_cast<int>(cfg.hierarchy.root_dims[0]);
    auto real0 = gen.realize(n_root, {0, 0, 0}, 1.0);
    const double e0 = eint_code(T_i, 1.22, cfg.hydro.gamma, cfg.units);
    for (Grid* g : sim.hierarchy().grids(0)) {
      fill_gas_from_realization(*g, real0, growth, vfac, fb, e0);
      if (cfg.enable_chemistry)
        chemistry::initialize_primordial_composition(
            *g, cfg.chemistry, opt.initial_ionization,
            opt.initial_h2_fraction);
    }

    // Dark matter lattice with the same displacement field.
    if (cfg.enable_particles) {
      const int n_p =
          opt.particles_per_axis > 0 ? opt.particles_per_axis : n_root;
      const auto real_p =
          n_p == n_root ? real0 : gen.realize(n_p, {0, 0, 0}, 1.0);
      nbody::create_lattice_particles(*sim.hierarchy().grids(0)[0], n_p,
                                      real_p.psi, growth, vfac, 1.0 - fb);
    }

    // Nested static levels over a shrinking central region (§4).
    const int r = cfg.hierarchy.refine_factor;
    for (int l = 1; l <= opt.nested_static_levels; ++l) {
      const std::int64_t dims =
          n_root * static_cast<std::int64_t>(std::pow(r, l));
      const std::int64_t width = dims >> l;  // half per level
      const std::int64_t lo = dims / 2 - width / 2;
      sim.add_static_region(
          l, {{lo, lo, lo}, {lo + width, lo + width, lo + width}});
    }
  });
  // Overwrite static-level data with mode-consistent finer realizations
  // ("capture as many small-wavelength modes ... as possible").
  setup.refine([opt](Simulation& sim) {
    auto& cfg = sim.config();
    cosmology::Frw frw(cfg.frw);
    const double a_i = cosmology::Frw::a_of_z(cfg.initial_redshift);
    cosmology::PowerSpectrum ps(frw);
    cosmology::InitialConditionsGenerator gen(frw, ps, opt.box_comoving_cm,
                                              opt.seed);
    const double growth = frw.growth_factor(a_i);
    const double vfac =
        cosmology::zeldovich_velocity_factor(frw, cfg.units, a_i);
    const double z_i = cfg.initial_redshift;
    const double T_i = z_i >= 100.0
                           ? cn::kTcmb0 * (1.0 + z_i)
                           : cn::kTcmb0 * 101.0 *
                                 std::pow((1.0 + z_i) / 101.0, 2.0);
    const double fb = cfg.frw.omega_baryon / cfg.frw.omega_matter;
    const double e0 = eint_code(T_i, 1.22, cfg.hydro.gamma, cfg.units);
    for (int l = 1; l <= std::min(opt.nested_static_levels,
                                  sim.hierarchy().deepest_level());
         ++l) {
      const int n_eff = static_cast<int>(sim.hierarchy().level_dims(l)[0]);
      auto real_l = gen.realize(n_eff, {0, 0, 0}, 1.0);
      for (Grid* g : sim.hierarchy().grids(l)) {
        fill_gas_from_realization(*g, real_l, growth, vfac, fb, e0);
        if (cfg.enable_chemistry)
          chemistry::initialize_primordial_composition(
              *g, cfg.chemistry, opt.initial_ionization,
              opt.initial_h2_fraction);
        g->store_old_fields();
      }
    }
  });
  return setup;
}

ProblemSetup collapse_cloud_setup(const CollapseSetupOptions& opt) {
  ProblemSetup setup;
  setup.configure([opt](SimulationConfig& cfg) {
    cfg.comoving = false;
    cfg.enable_gravity = true;
    cfg.enable_chemistry = opt.chemistry;
    // Units: code density 1 = background; t_unit = 1/sqrt(4πG ρ_unit) so
    // G_code = 1.
    cosmology::CodeUnits u;
    u.length_cm = opt.box_proper_cm;
    u.density_cgs = opt.mean_density_cgs;
    u.time_s = 1.0 / std::sqrt(cn::kFourPi * cn::kGravity * u.density_cgs);
    u.grav_const_code = 1.0;
    u.comoving = false;
    cfg.units = u;
    cfg.gravity.grav_const_code = 1.0;
    if (opt.chemistry) {
      ENZO_REQUIRE(cfg.hierarchy.fields.size() >=
                       mesh::chemistry_field_list().size(),
                   "collapse cloud with chemistry needs the full field list");
    }
  });
  setup.fill([opt](Simulation& sim) {
    auto& cfg = sim.config();
    const cosmology::CodeUnits& u = cfg.units;
    double mean = 0.0;
    std::int64_t count = 0;
    for (Grid* g : sim.hierarchy().grids(0)) {
      const mesh::FieldView rho = g->field(Field::kDensity);
      for (int k = 0; k < g->nt(2); ++k)
        for (int j = 0; j < g->nt(1); ++j)
          for (int i = 0; i < g->nt(0); ++i) {
            // Distance from box center (including ghosts via global index).
            double r2 = 0;
            const std::int64_t gidx[3] = {g->box().lo[0] + (i - g->ng(0)),
                                          g->box().lo[1] + (j - g->ng(1)),
                                          g->box().lo[2] + (k - g->ng(2))};
            for (int d = 0; d < 3; ++d) {
              double x = (static_cast<double>(gidx[d]) + 0.5) /
                             g->spec().level_dims[d] -
                         0.5;
              if (x > 0.5) x -= 1.0;
              if (x < -0.5) x += 1.0;
              r2 += x * x;
            }
            const double q = r2 / (opt.cloud_radius * opt.cloud_radius);
            // Parabolic cloud with a smooth edge.
            const double d =
                q < 1.0 ? (opt.overdensity - 1.0) * (1.0 - q) : 0.0;
            rho(i, j, k) = 1.0 + d;
          }
      g->field(Field::kVelocityX).fill(0.0);
      g->field(Field::kVelocityY).fill(0.0);
      g->field(Field::kVelocityZ).fill(0.0);
      if (opt.chemistry)
        chemistry::initialize_primordial_composition(*g, cfg.chemistry,
                                                     opt.ionization,
                                                     opt.h2_fraction);
      // Isothermal start.
      for (int k = 0; k < g->nt(2); ++k)
        for (int j = 0; j < g->nt(1); ++j)
          for (int i = 0; i < g->nt(0); ++i) {
            const double mu =
                opt.chemistry ? chemistry::cell_mu(*g, i, j, k) : 1.22;
            const double e =
                eint_code(opt.temperature, mu, cfg.hydro.gamma, u);
            g->field(Field::kInternalEnergy)(i, j, k) = e;
            g->field(Field::kTotalEnergy)(i, j, k) = e;
          }
      for (int k = 0; k < g->nx(2); ++k)
        for (int j = 0; j < g->nx(1); ++j)
          for (int i = 0; i < g->nx(0); ++i) {
            // enzo-lint: allow(determinism-grid-fp-accumulation) serial setup pass
            mean += rho(g->sx(i), g->sy(j), g->sz(k));
            ++count;
          }
    }
    cfg.gravity.mean_density = mean / static_cast<double>(count);
  });
  return setup;
}

ProblemSetup zeldovich_pancake_setup(const PancakeOptions& opt) {
  ProblemSetup setup;
  setup.configure([opt](SimulationConfig& cfg) {
    cfg.comoving = true;
    cfg.enable_gravity = true;
    cfg.enable_chemistry = false;
    cosmology::Frw frw(cfg.frw);
    cfg.units = cosmology::CodeUnits::cosmological(frw, opt.box_comoving_cm);
    cfg.gravity.grav_const_code = 1.0;
    cfg.gravity.mean_density = 1.0;
    ENZO_REQUIRE(cfg.hierarchy.root_dims[1] == 1 &&
                     cfg.hierarchy.root_dims[2] == 1,
                 "pancake is one-dimensional");
  });
  setup.fill([opt](Simulation& sim) {
    auto& cfg = sim.config();
    cosmology::Frw frw(cfg.frw);
    const double a_i = cosmology::Frw::a_of_z(cfg.initial_redshift);
    const double a_c = cosmology::Frw::a_of_z(opt.a_caustic_redshift);
    const double d_i = frw.growth_factor(a_i);
    const double d_c = frw.growth_factor(a_c);
    // ψ(q) = −A sin(2πq); caustic when D·A·2π = 1.
    const double amp = 1.0 / (cn::kTwoPi * d_c);
    const double vfac =
        cosmology::zeldovich_velocity_factor(frw, cfg.units, a_i);
    for (Grid* g : sim.hierarchy().grids(0)) {
      const mesh::FieldView rho = g->field(Field::kDensity);
      const mesh::FieldView vx = g->field(Field::kVelocityX);
      const mesh::FieldView ei = g->field(Field::kInternalEnergy);
      const mesh::FieldView et = g->field(Field::kTotalEnergy);
      g->field(Field::kVelocityY).fill(0.0);
      g->field(Field::kVelocityZ).fill(0.0);
      for (int i = 0; i < g->nt(0); ++i) {
        const std::int64_t gi = g->box().lo[0] + (i - g->ng(0));
        const std::int64_t n = g->spec().level_dims[0];
        const double q = (static_cast<double>(((gi % n) + n) % n) + 0.5) /
                         static_cast<double>(n);
        const double psi = -amp * std::sin(cn::kTwoPi * q);
        // Linear-theory Eulerian density: δ = −D dψ/dq.
        const double delta =
            d_i * amp * cn::kTwoPi * std::cos(cn::kTwoPi * q);
        rho(i, 0, 0) = std::max(1.0 + delta, 0.05);
        // vfac already contains D(a_i).
        vx(i, 0, 0) = vfac * psi;
        const double e =
            eint_code(opt.initial_temperature, 1.22, cfg.hydro.gamma,
                      cfg.units);
        ei(i, 0, 0) = e;
        et(i, 0, 0) = e + 0.5 * vx(i, 0, 0) * vx(i, 0, 0);
      }
    }
  });
  return setup;
}

}  // namespace enzo::core
