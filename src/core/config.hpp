#pragma once
// Simulation configuration: the knobs of §3 plus problem selection.

#include "chemistry/chemistry.hpp"
#include "cosmology/frw.hpp"
#include "cosmology/units.hpp"
#include "exec/exec_config.hpp"
#include "gravity/gravity.hpp"
#include "hydro/hydro.hpp"
#include "mesh/hierarchy.hpp"

namespace enzo::core {

/// §3.2.3: the three refinement criteria.  Negative values disable a
/// criterion.
struct RefinementCriteria {
  /// Flag a cell when its gas mass (code units) exceeds this (Lagrangian
  /// refinement: "whenever a cell accumulates at least this much mass").
  double baryon_mass_threshold = -1.0;
  /// Same for the dark-matter mass in a cell (NGP-binned particles).
  double dm_mass_threshold = -1.0;
  /// Resolve the local Jeans length by at least this many cells
  /// (Δx < L_J/N_J; the paper varied N_J from 4 to 64).
  double jeans_number = -1.0;
  /// Simple overdensity flag (used by test problems).
  double overdensity_threshold = -1.0;
};

struct SimulationConfig {
  mesh::HierarchyParams hierarchy;
  hydro::HydroParams hydro;
  chemistry::ChemistryParams chemistry;
  gravity::GravityParams gravity;
  RefinementCriteria refinement;

  bool enable_hydro = true;
  bool enable_gravity = false;
  bool enable_chemistry = false;
  bool enable_particles = false;

  /// Comoving (cosmological) run: a(t) integrated from frw; otherwise a = 1.
  bool comoving = false;
  cosmology::FrwParameters frw;
  double initial_redshift = 99.0;
  cosmology::CodeUnits units = cosmology::CodeUnits::simple();

  /// Rebuild the hierarchy every N steps of each level (1 = every step,
  /// §3.2.2: rebuilt "thousands of times").
  int rebuild_interval = 1;
  /// Run the AMR invariant auditor (analysis/auditor.hpp) after every
  /// audit_interval-th root step, reporting through StructuredLog and the
  /// `audit.*` metrics.  Deck key: AuditInvariants / AuditInterval.
  bool audit_invariants = false;
  int audit_interval = 1;
  /// Record the (level, t, dt) order of timesteps (Fig. 2).
  bool trace_wcycle = false;
  /// Safety valve on subcycles per level step.
  int max_substeps_per_level = 64;
  /// Execution backend for the per-level grid sweeps (deck keys: Threads,
  /// Executor; run_deck flag: --threads N).
  exec::ExecConfig exec;
};

}  // namespace enzo::core
