#include "core/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "chemistry/chemistry.hpp"
#include "gravity/gravity.hpp"
#include "hydro/hydro.hpp"
#include "util/constants.hpp"
#include "mesh/boundary.hpp"
#include "mesh/project.hpp"
#include "mesh/topology.hpp"
#include "nbody/nbody.hpp"
#include "perf/log.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/alloc_stats.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace enzo::core {

using mesh::Field;
using mesh::Grid;

namespace {
constexpr Field kVelField[3] = {Field::kVelocityX, Field::kVelocityY,
                                Field::kVelocityZ};
}  // namespace

Simulation::Simulation(SimulationConfig cfg)
    : cfg_(std::move(cfg)), hierarchy_(cfg_.hierarchy), frw_(cfg_.frw) {
  if (cfg_.comoving) {
    a_ = cosmology::Frw::a_of_z(cfg_.initial_redshift);
    time_ = ext::pos_t(frw_.time_of_a(a_) / cfg_.units.time_s);
  }
}

void Simulation::sync_hierarchy_params() {
  ENZO_REQUIRE(hierarchy_.grids(0).empty(),
               "cannot re-parameterize a built hierarchy");
  hierarchy_ = mesh::Hierarchy(cfg_.hierarchy);
}

void Simulation::build_root(int tiles_per_axis) {
  // Problem setups may adjust hierarchy parameters (boundary type, field
  // list) between construction and here: rebuild the (still-empty)
  // hierarchy from the current configuration.
  sync_hierarchy_params();
  hierarchy_.build_root(tiles_per_axis);
}

void Simulation::configure_for_restart(const ProblemSetup& setup) {
  for (const auto& fn : setup.configure_) fn(cfg_);
  sync_hierarchy_params();
}

void Simulation::initialize(const ProblemSetup& setup) {
  for (const auto& fn : setup.configure_) fn(cfg_);
  build_root(setup.tiles_);
  for (const auto& [lvl, box] : setup.static_regions_)
    add_static_region(lvl, box);
  for (const auto& fn : setup.fill_) fn(*this);
  finalize_setup();
  for (const auto& fn : setup.refine_) fn(*this);
}

exec::LevelExecutor& Simulation::executor() {
  const exec::ExecConfig& want = cfg_.exec;
  if (!exec_ || exec_built_.backend != want.backend ||
      exec_built_.threads != want.threads || exec_built_.pin != want.pin) {
    exec_ = exec::make_executor(want);
    exec_built_ = want;
  }
  return *exec_;
}

std::uint64_t Simulation::grid_cost(const mesh::Grid& g) const {
  const std::uint64_t cells = static_cast<std::uint64_t>(g.nx(0)) *
                              static_cast<std::uint64_t>(g.nx(1)) *
                              static_cast<std::uint64_t>(g.nx(2));
  std::uint64_t cost = cells;
  if (cfg_.enable_chemistry) {
    // Historical subcycles-per-hydro-cell ratio from the metrics registry:
    // a cheap global proxy for how collapsed (and therefore chemically
    // stiff) the gas is.  Capped so one hot grid cannot starve the rest.
    static perf::Counter& subcycles =
        perf::Registry::global().counter("chemistry.subcycles");
    static perf::Counter& hydro_cells =
        perf::Registry::global().counter("hydro.cells_updated");
    const std::uint64_t rate = std::min<std::uint64_t>(
        64, subcycles.value() / std::max<std::uint64_t>(1, hydro_cells.value()));
    cost += cells * rate;
  }
  if (cfg_.enable_particles)
    cost += 4 * static_cast<std::uint64_t>(g.particles().size());
  return cost;
}

void Simulation::add_static_region(int level, const mesh::IndexBox& box) {
  ENZO_REQUIRE(level >= 1 && level <= cfg_.hierarchy.max_level,
               "static region level out of range");
  static_regions_.emplace_back(level, box);
}

mesh::Hierarchy::FlagFn Simulation::flagger() {
  return [this](const Grid& g, std::vector<mesh::Index3>& flags) {
    const int child_level = g.level() + 1;
    const RefinementCriteria& rc = cfg_.refinement;
    double vol = 1.0;
    for (int d = 0; d < 3; ++d)
      vol *= 1.0 / static_cast<double>(g.spec().level_dims[d]);
    const auto& rho = g.field(Field::kDensity);
    const auto& eint = g.field(Field::kInternalEnergy);
    const double gamma = cfg_.hydro.gamma;
    const double gc = cfg_.units.grav_const_code;
    const double dx = g.cell_width_d(0);

    // NGP dark-matter mass per cell (for the DM mass criterion).
    util::Array3<double> dm;
    if (rc.dm_mass_threshold > 0 && !g.particles().empty()) {
      dm.resize(g.nx(0), g.nx(1), g.nx(2), 0.0);
      for (const mesh::Particle& p : g.particles()) {
        int idx[3];
        bool ok = true;
        for (int d = 0; d < 3; ++d) {
          idx[d] = static_cast<int>(g.local_index_of(p.x[d], d));
          if (idx[d] < 0 || idx[d] >= g.nx(d)) ok = false;
        }
        if (ok) dm(idx[0], idx[1], idx[2]) += p.mass;
      }
    }

    for (int k = 0; k < g.nx(2); ++k)
      for (int j = 0; j < g.nx(1); ++j)
        for (int i = 0; i < g.nx(0); ++i) {
          const int si = g.sx(i), sj = g.sy(j), sk = g.sz(k);
          bool flag = false;
          const double r = rho(si, sj, sk);
          if (rc.baryon_mass_threshold > 0 &&
              r * vol > rc.baryon_mass_threshold)
            flag = true;
          if (!flag && rc.overdensity_threshold > 0 &&
              r > rc.overdensity_threshold)
            flag = true;
          if (!flag && !dm.empty() && dm(i, j, k) > rc.dm_mass_threshold)
            flag = true;
          if (!flag && rc.jeans_number > 0) {
            // Comoving Jeans length: λ_J = 2π c_s sqrt(a) / sqrt(G_code ρ_c)
            // (see hydro.hpp unit conventions).
            const double cs2 =
                gamma * (gamma - 1.0) * std::max(eint(si, sj, sk), 0.0);
            const double lj =
                constants::kTwoPi * std::sqrt(cs2 * a_ / (gc * std::max(r, 1e-300)));
            if (dx > lj / rc.jeans_number) flag = true;
          }
          if (flag)
            flags.push_back({g.box().lo[0] + i, g.box().lo[1] + j,
                             g.box().lo[2] + k});
        }

    // Static regions pinned at child_level (§4 nested initial conditions):
    // flag the parent cells under them.
    for (const auto& [lvl, box] : static_regions_) {
      if (lvl != child_level) continue;
      const int r = cfg_.hierarchy.refine_factor;
      mesh::IndexBox foot = box.coarsened(r).intersect(g.box());
      for (std::int64_t k = foot.lo[2]; k < foot.hi[2]; ++k)
        for (std::int64_t j = foot.lo[1]; j < foot.hi[1]; ++j)
          for (std::int64_t i = foot.lo[0]; i < foot.hi[0]; ++i)
            flags.push_back({i, j, k});
    }
  };
}

void Simulation::finalize_setup() {
  ENZO_REQUIRE(!hierarchy_.grids(0).empty(), "root level not built");
  // The unit system is typically filled in by the problem setup after
  // construction: (re)base the cosmic clock on the final units.
  if (cfg_.comoving) {
    a_ = cosmology::Frw::a_of_z(cfg_.initial_redshift);
    time_ = ext::pos_t(frw_.time_of_a(a_) / cfg_.units.time_s);
  }
  for (Grid* g : hierarchy_.grids(0)) {
    g->set_time(time_);
    g->set_old_time(time_);
    g->store_old_fields();
  }
  if (cfg_.hierarchy.max_level >= 1) hierarchy_.rebuild(1, flagger());
  for (int l = 1; l <= hierarchy_.deepest_level(); ++l)
    for (Grid* g : hierarchy_.grids(l)) {
      g->set_time(time_);
      g->set_old_time(time_);
    }
  level_steps_.assign(static_cast<std::size_t>(cfg_.hierarchy.max_level) + 2,
                      0);
}

void Simulation::restore_clock(ext::pos_t t) {
  time_ = t;
  update_scale_factor();
  level_steps_.assign(static_cast<std::size_t>(cfg_.hierarchy.max_level) + 2,
                      0);
}

Simulation::ClockState Simulation::clock_state() const {
  ClockState s;
  s.time = time_;
  s.root_steps = root_steps_;
  s.level_steps = level_steps_;
  s.static_regions = static_regions_;
  s.diag_baseline_set = diag_baseline_set_;
  s.diag_mass0 = diag_mass0_;
  s.diag_energy0 = diag_energy0_;
  s.audit_baseline_set = audit_baseline_set_;
  s.audit_mass0 = audit_mass0_;
  s.audit_energy0 = audit_energy0_;
  return s;
}

void Simulation::restore_clock_state(const ClockState& s) {
  time_ = s.time;
  update_scale_factor();
  root_steps_ = s.root_steps;
  // The restart config may raise max_level (the §4 deepen-on-restart trick):
  // keep the saved cadence counters and zero-extend for the new levels.
  level_steps_.assign(static_cast<std::size_t>(cfg_.hierarchy.max_level) + 2,
                      0);
  for (std::size_t l = 0;
       l < std::min(level_steps_.size(), s.level_steps.size()); ++l)
    level_steps_[l] = s.level_steps[l];
  static_regions_.clear();
  for (const auto& [lvl, box] : s.static_regions) add_static_region(lvl, box);
  diag_baseline_set_ = s.diag_baseline_set;
  diag_mass0_ = s.diag_mass0;
  diag_energy0_ = s.diag_energy0;
  audit_baseline_set_ = s.audit_baseline_set;
  audit_mass0_ = s.audit_mass0;
  audit_energy0_ = s.audit_energy0;
}

cosmology::Expansion Simulation::expansion_at(double t_code) const {
  if (!cfg_.comoving) return cosmology::Expansion::statics();
  const double a = frw_.a_of_time(t_code * cfg_.units.time_s);
  return {a, frw_.hubble(a) * cfg_.units.time_s};
}

chemistry::ChemUnits Simulation::chem_units() const {
  return chemistry::ChemUnits::from(cfg_.units, a_);
}

void Simulation::update_scale_factor() {
  if (cfg_.comoving)
    a_ = frw_.a_of_time(ext::pos_to_double(time_) * cfg_.units.time_s);
}

double Simulation::compute_level_timestep(int level) {
  auto grids = hierarchy_.grids(level);
  const cosmology::Expansion exp =
      expansion_at(ext::pos_to_double(grids[0]->time()));
  // Ordered reduction: the per-grid minima are computed in parallel but
  // folded left-to-right with the same strict-< tie-breaks as the old
  // serial loop (hydro before particles within a grid, earlier grids win
  // ties), so the chosen limiter is identical at any thread count.
  struct DtInfo {
    double dt;
    hydro::DtLimiter limiter;
  };
  const DtInfo init{std::numeric_limits<double>::max(),
                    hydro::DtLimiter::kNone};
  const DtInfo best = executor().reduce_ordered(
      {"compute_timestep", perf::component::kOther, level}, grids.size(), init,
      [&](std::size_t n) {
        const Grid& g = *grids[n];
        DtInfo local = init;
        if (cfg_.enable_hydro) {
          const hydro::TimestepInfo info =
              hydro::compute_timestep_info(g, cfg_.hydro, exp);
          if (info.dt < local.dt) local = {info.dt, info.limiter};
        }
        if (cfg_.enable_particles) {
          const double dtp = nbody::particle_timestep(g, exp.a, cfg_.hydro.cfl);
          if (dtp < local.dt) local = {dtp, hydro::DtLimiter::kParticle};
        }
        return local;
      },
      [](const DtInfo& acc, const DtInfo& v) {
        return v.dt < acc.dt ? v : acc;
      });
  ENZO_REQUIRE(best.dt > 0 && std::isfinite(best.dt),
               "non-positive timestep at level " + std::to_string(level));
  if (level == 0) root_dt_limiter_ = best.limiter;
  return best.dt;
}

void Simulation::solve_gravity_level(int level) {
  perf::TraceScope scope("gravity", perf::component::kGravity, level);
  exec::LevelExecutor& ex = executor();
  // Assemble gravitating mass everywhere at/below this level, deposit
  // particles, and push child mass down into parents.
  for (int l = hierarchy_.deepest_level(); l >= 0; --l) {
    gravity::begin_gravitating_mass(hierarchy_, l, &ex);
    if (cfg_.enable_particles) {
      auto grids = hierarchy_.grids(l);
      // CIC deposits scatter only into the owning grid's gravitating-mass
      // field (particles live on the grid they deposit into).
      ex.for_each(
          {"cic_deposit", perf::component::kNbody, l}, grids.size(),
          [&](std::size_t n) { nbody::deposit_particles_cic(*grids[n]); },
          [&](std::size_t n) {
            return static_cast<std::uint64_t>(grids[n]->particles().size());
          });
    }
  }
  gravity::restrict_gravitating_mass(hierarchy_, &ex);
  if (level == 0)
    gravity::solve_root_gravity(hierarchy_, cfg_.gravity, a_);
  else
    gravity::solve_subgrid_gravity(hierarchy_, level, cfg_.gravity, a_, &ex);
  auto grids = hierarchy_.grids(level);
  ex.for_each(
      {"accelerations", perf::component::kGravity, level}, grids.size(),
      [&](std::size_t n) { gravity::compute_accelerations(*grids[n], a_); },
      [&](std::size_t n) { return grid_cost(*grids[n]); });
}

void Simulation::step_grids(int level, double dt,
                            const cosmology::Expansion& exp) {
  auto grids = hierarchy_.grids(level);
  const std::uint64_t gen = hierarchy_.generation();
  const chemistry::ChemUnits cu = chem_units();
  exec::LevelExecutor& ex = executor();
  // Each task advances exactly one grid: all writes (fields, fluxes,
  // particles) stay inside that grid; ghost values were filled before the
  // phase and are read-only here.  Physics kernels receive the executor for
  // their *intra*-grid parallel_for loops; nested work shares the one pool
  // (a nested drain runs only its own leaf group), so parallelism never
  // oversubscribes the lane count.
  ex.for_each(
      {"step_grids", perf::component::kOther, level}, grids.size(),
      [&](std::size_t n) {
        Grid* g = grids[n];
        g->store_old_fields();
        if (cfg_.enable_hydro) {
          perf::TraceScope scope("hydro", perf::component::kHydro, level);
          hydro::solve_hydro_step(*g, dt, cfg_.hydro, exp, &ex);
        }
        if (cfg_.enable_gravity) {
          perf::TraceScope scope("gravity_sources", perf::component::kGravity,
                                 level);
          hydro::apply_gravity_sources(*g, dt, cfg_.hydro);
        }
        if (cfg_.enable_chemistry) {
          perf::TraceScope scope("chemistry", perf::component::kChemistry,
                                 level);
          chemistry::solve_chemistry_step(*g, dt, cfg_.chemistry, cu, &ex);
        }
        if (cfg_.enable_particles) {
          perf::TraceScope scope("nbody", perf::component::kNbody, level);
          nbody::kick_particles(*g, dt, exp.adot_over_a);
          nbody::drift_particles(*g, dt, exp.a);
        }
      },
      [&](std::size_t n) { return grid_cost(*grids[n]); });
  ENZO_REQUIRE(gen == hierarchy_.generation(),
               "hierarchy rebuilt during step_grids");
  // Zone-cycles (cell-updates across every level and substep): the
  // regression harness's throughput denominator.
  static perf::Counter& zones =
      perf::Registry::global().counter("driver.zone_cycles");
  std::uint64_t cells = 0;
  for (const Grid* g : grids)
    cells += static_cast<std::uint64_t>(g->nx(0)) * g->nx(1) * g->nx(2);
  zones.add(cells);
}

void Simulation::evolve_level(int level, ext::pos_t parent_time) {
  auto level_grids = hierarchy_.grids(level);
  if (level_grids.empty()) return;
  perf::TraceScope level_scope("evolve_level/L" + std::to_string(level),
                               perf::component::kOther, level);
  exec::LevelExecutor& ex = executor();
  // A new parent window opens: zero the boundary flux registers that the
  // parent's flux correction will read after this level catches up.
  if (cfg_.enable_hydro)
    ex.for_each({"reset_boundary_fluxes", perf::component::kHydro, level},
                level_grids.size(),
                [&](std::size_t n) { level_grids[n]->reset_boundary_fluxes(); });
  mesh::set_boundary_values(hierarchy_, level, &ex);

  int substeps = 0;
  while (level_grids[0]->time() < parent_time) {
    ENZO_REQUIRE(++substeps <= cfg_.max_substeps_per_level,
                 "too many substeps at level " + std::to_string(level));
    level_grids = hierarchy_.grids(level);
    const ext::pos_t t_now = level_grids[0]->time();
    double dt = compute_level_timestep(level);
    const double remaining = ext::pos_to_double(parent_time - t_now);
    bool last = false;
    // Clamp to the window end — and also stretch when the leftover after an
    // unclamped step would be fp residue (≲1e-10 of the window): a
    // denormal-tiny cleanup substep buys nothing, and at level 0 it let
    // different resolutions land at slightly different stop times.
    if (remaining - dt <= 1e-10 * remaining) {
      dt = remaining;
      last = true;
    }
    if (cfg_.trace_wcycle)
      trace_.push_back({level, ext::pos_to_double(t_now), dt});
    perf::StructuredLog& slog = perf::StructuredLog::global();
    if (slog.enabled(perf::LogLevel::kDebug)) {
      double vmax = 0, emin = 1e300, rmax = 0;
      for (Grid* g : level_grids) {
        for (int d = 0; d < 3; ++d) {
          vmax = std::max(vmax, std::abs(g->field(kVelField[d]).min()));
          vmax = std::max(vmax, std::abs(g->field(kVelField[d]).max()));
        }
        emin = std::min(emin, g->field(Field::kInternalEnergy).min());
        rmax = std::max(rmax, g->field(Field::kDensity).max());
      }
      slog.logf(perf::LogLevel::kDebug, "evolve",
                "lvl %d sub %d t=%.5f dt=%.3e vmax=%.3e emin=%.3e "
                "rmax=%.3e grids=%zu",
                level, substeps, ext::pos_to_double(t_now), dt, vmax, emin,
                rmax, level_grids.size());
    }

    const cosmology::Expansion exp =
        expansion_at(ext::pos_to_double(t_now) + 0.5 * dt);

    if (cfg_.enable_gravity) solve_gravity_level(level);
    step_grids(level, dt, exp);

    // Advance the level clock in extended precision; the final substep lands
    // on the parent time *exactly*.
    const ext::pos_t t_new = last ? parent_time : t_now + ext::pos_t(dt);
    for (Grid* g : level_grids) g->set_time(t_new);
    if (level == 0) {
      time_ = t_new;
      update_scale_factor();
    }

    mesh::set_boundary_values(hierarchy_, level, &ex);
    evolve_level(level + 1, t_new);

    // Flux correction + projection (§3.2.1 two-way coupling).
    {
      // All corrections before any projection: a correction may land on a
      // coarse cell covered by a *sibling* of the correcting child, and the
      // sibling's projected average must win there (interleaving the two
      // passes let a later child's correction clobber an earlier sibling's
      // projection, leaving parent ≠ child average on those cells).
      //
      // Both operations write only the child's *parent*, so tasks are
      // grouped by parent: one task runs all of a parent's children — the
      // corrections in child order, then the projections in child order —
      // which is exactly the serial ordering restricted to that parent
      // (cross-parent writes touch disjoint cells).
      auto children = hierarchy_.grids(level + 1);
      std::vector<mesh::ParentGroup> local;
      const std::vector<mesh::ParentGroup>* groups = &local;
      if (hierarchy_.use_topology() && !children.empty()) {
        // Same first-seen-order grouping, precomputed at rebuild time.
        groups = &hierarchy_.topology().children_by_parent(level + 1);
      } else {
        for (Grid* child : children) {
          auto it = std::find_if(local.begin(), local.end(), [&](auto& pr) {
            return pr.first == child->parent();
          });
          if (it == local.end())
            local.emplace_back(child->parent(), std::vector<Grid*>{child});
          else
            it->second.push_back(child);
        }
      }
      ex.for_each(
          {"flux_projection", perf::component::kOther, level}, groups->size(),
          [&](std::size_t n) {
            const auto& [parent, kids] = (*groups)[n];
            for (Grid* child : kids)
              mesh::flux_correct_from_child(*child, *parent);
            for (Grid* child : kids) mesh::project_to_parent(*child, *parent);
          },
          [&](std::size_t n) {
            std::uint64_t c = 0;
            for (const Grid* child : (*groups)[n].second)
              c += static_cast<std::uint64_t>(child->nx(0)) * child->nx(1) *
                   child->nx(2);
            return c;
          });
    }
    if (cfg_.enable_particles) {
      perf::TraceScope scope("particle_redistribute",
                             perf::component::kNbody, level);
      nbody::redistribute_particles(hierarchy_);
    }

    // RebuildHierarchy(level+1).
    ++level_steps_[static_cast<std::size_t>(level)];
    if (level + 1 <= cfg_.hierarchy.max_level &&
        level_steps_[static_cast<std::size_t>(level)] %
                cfg_.rebuild_interval ==
            0) {
      hierarchy_.rebuild(level + 1, flagger());
      for (int l = level + 1; l <= hierarchy_.deepest_level(); ++l)
        for (Grid* g : hierarchy_.grids(l))
          if (!(g->time() == t_new)) g->set_time(t_new);
    }
    level_grids = hierarchy_.grids(level);
  }
}

void Simulation::step_root(double dt) { step_root_to(time_ + ext::pos_t(dt), dt); }

void Simulation::step_root_to(ext::pos_t target, double dt) {
  // The limiter was recorded by the compute_level_timestep(0) call (or
  // overridden by a stop-time clamp) just before this; capture it now because
  // evolve_level recomputes level-0 timesteps internally.
  const hydro::DtLimiter limiter = root_dt_limiter_;
  // enzo-lint: allow(determinism-nondeterministic-source) wall-clock telemetry
  const auto wall0 = std::chrono::steady_clock::now();
  evolve_level(0, target);
  ++root_steps_;
  root_dt_limiter_ = limiter;
  if (diag_sink_ != nullptr) {
    const double wall =
        // enzo-lint: allow(determinism-nondeterministic-source) telemetry
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
    diag_sink_->write(make_step_record(dt, limiter, wall));
  }
  if (cfg_.audit_invariants &&
      root_steps_ % std::max(1, cfg_.audit_interval) == 0)
    run_audit();
  if (post_step_hook_) post_step_hook_(*this);
}

double Simulation::advance_root_step() {
  ENZO_REQUIRE(!hierarchy_.grids(0).empty(), "run finalize_setup() first");
  const double dt0 = compute_level_timestep(0);
  step_root(dt0);
  return dt0;
}

const analysis::AuditReport& Simulation::run_audit() {
  // The ghost-agreement check compares against the sibling copies that
  // SetBoundaryValues installs; the last fill of a step predates the final
  // projection pass, so refresh boundaries from the current (consistent)
  // state first — exactly what the next step would do anyway.
  for (int l = 0; l <= hierarchy_.deepest_level(); ++l)
    mesh::set_boundary_values(hierarchy_, l, &executor());

  analysis::AuditOptions opts;
  // Mass/energy leave through the boundary on outflow domains, and energy is
  // not conserved under gravity sources, expansion, or chemistry heating:
  // only arm the conservation baselines where closure is expected.
  const bool mass_closed = cfg_.hierarchy.periodic && cfg_.enable_hydro;
  const bool energy_closed = mass_closed && !cfg_.enable_gravity &&
                             !cfg_.enable_chemistry && !cfg_.comoving;
  if (audit_baseline_set_) {
    if (mass_closed) opts.mass_baseline = audit_mass0_;
    if (energy_closed) opts.energy_baseline = audit_energy0_;
  }
  last_audit_ = analysis::audit_and_report(hierarchy_, opts);
  if (!audit_baseline_set_) {
    audit_mass0_ = last_audit_.mass_total;
    audit_energy0_ = last_audit_.energy_total;
    audit_baseline_set_ = true;
  }
  ++audits_run_;
  audit_violations_total_ += last_audit_.total_violations;
  return last_audit_;
}

void Simulation::evolve_until(double t_stop, int max_steps) {
  const ext::pos_t target(t_stop);
  // Arrival tolerance, relative to t_stop: anything closer than a few ulps
  // counts as arrived, so fp residue never schedules a denormal-tiny step.
  const double tol =
      8.0 * std::numeric_limits<double>::epsilon() * std::abs(t_stop);
  for (int s = 0; s < max_steps; ++s) {
    const double remaining = ext::pos_to_double(target - time_);
    if (remaining <= tol) break;
    const double dt0 = compute_level_timestep(0);
    if (dt0 >= remaining * (1.0 - 1e-12) || remaining - dt0 <= tol) {
      // Final step: clamp (or stretch, by at most tol) onto the *exact*
      // extended-precision target, so every resolution ends at bit-identical
      // dd(t_stop) instead of t_stop minus resolution-dependent fp residue.
      root_dt_limiter_ = hydro::DtLimiter::kStopTime;
      step_root_to(target, remaining);
      continue;  // the arrival check above terminates the loop
    }
    step_root(dt0);
  }
}

void Simulation::set_diagnostics_sink(perf::DiagnosticsSink* sink) {
  diag_sink_ = sink;
  diag_baseline_set_ = false;
}

perf::StepRecord Simulation::make_step_record(double dt,
                                              hydro::DtLimiter limiter,
                                              double wall_seconds) {
  perf::StepRecord rec;
  rec.step = root_steps_;
  rec.t = time_d();
  rec.dt = dt;
  rec.dt_limiter = hydro::dt_limiter_name(limiter);
  rec.a = a_;
  rec.z = cfg_.comoving ? 1.0 / a_ - 1.0 : 0.0;
  for (int l = 0; l <= hierarchy_.deepest_level(); ++l) {
    perf::LevelStat ls;
    ls.level = l;
    for (const Grid* g : hierarchy_.grids(l)) {
      ++ls.grids;
      ls.cells += static_cast<std::uint64_t>(g->nx(0)) *
                  static_cast<std::uint64_t>(g->nx(1)) *
                  static_cast<std::uint64_t>(g->nx(2));
    }
    rec.levels.push_back(ls);
  }
  // Conservation diagnostics from the root level (children are projected
  // into their parents after every W-cycle, so the root view is complete).
  double mass = 0.0, energy = 0.0;
  for (const Grid* g : hierarchy_.grids(0)) {
    if (!g->has_field(Field::kDensity)) continue;
    double vol = 1.0;
    for (int d = 0; d < 3; ++d) vol *= g->cell_width_d(d);
    const auto& rho = g->field(Field::kDensity);
    const bool has_e = g->has_field(Field::kTotalEnergy);
    const auto& etot = g->field(has_e ? Field::kTotalEnergy : Field::kDensity);
    for (int k = 0; k < g->nx(2); ++k)
      for (int j = 0; j < g->nx(1); ++j)
        for (int i = 0; i < g->nx(0); ++i) {
          const int si = g->sx(i), sj = g->sy(j), sk = g->sz(k);
          const double m = rho(si, sj, sk) * vol;
          // enzo-lint: allow(determinism-grid-fp-accumulation) serial diagnostic
          mass += m;
          if (has_e) energy += m * etot(si, sj, sk);
        }
  }
  if (!diag_baseline_set_) {
    diag_mass0_ = mass;
    diag_energy0_ = energy;
    diag_baseline_set_ = true;
  }
  rec.mass_total = mass;
  rec.mass_residual =
      diag_mass0_ != 0.0 ? (mass - diag_mass0_) / diag_mass0_ : 0.0;
  rec.energy_total = energy;
  rec.energy_residual = diag_energy0_ != 0.0
                            ? (energy - diag_energy0_) / std::abs(diag_energy0_)
                            : 0.0;
  rec.peak_bytes = static_cast<std::uint64_t>(
      util::AllocStats::global().peak_bytes());
  rec.flops = static_cast<std::uint64_t>(util::FlopCounter::global().total());
  rec.wall_seconds = wall_seconds;
  return rec;
}

}  // namespace enzo::core
