#include "mesh/berger_rigoutsos.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace enzo::mesh {

namespace {

IndexBox bounding_box(const std::vector<Index3>& pts) {
  IndexBox b;
  b.lo = {INT64_MAX, INT64_MAX, INT64_MAX};
  b.hi = {INT64_MIN, INT64_MIN, INT64_MIN};
  for (const Index3& p : pts)
    for (int d = 0; d < 3; ++d) {
      b.lo[d] = std::min(b.lo[d], p[d]);
      b.hi[d] = std::max(b.hi[d], p[d] + 1);
    }
  return b;
}

/// Find the best cut plane along axis d in [lo+min, hi-min); returns the
/// global index of the plane or -1.  quality: 2 = hole, 1 = inflection.
struct Cut {
  int axis = -1;
  std::int64_t plane = 0;
  int quality = 0;
  std::int64_t strength = 0;  // |ΔLaplacian| for inflection cuts
};

Cut best_cut(const std::vector<Index3>& pts, const IndexBox& box,
             std::int64_t min_extent) {
  Cut best;
  for (int d = 0; d < 3; ++d) {
    const std::int64_t n = box.extent(d);
    if (n < 2 * min_extent) continue;
    // Signature: number of flags per plane.
    std::vector<std::int64_t> sig(static_cast<std::size_t>(n), 0);
    for (const Index3& p : pts) ++sig[static_cast<std::size_t>(p[d] - box.lo[d])];
    // 1) Hole: a zero plane (prefer the one closest to the center).
    std::int64_t hole = -1, hole_dist = INT64_MAX;
    for (std::int64_t i = min_extent; i <= n - min_extent; ++i) {
      // A cut at plane i separates [0,i) and [i,n); look for zero planes
      // adjacent to i to guarantee one side loses dead weight.
      if (i < n && sig[static_cast<std::size_t>(i)] == 0) {
        const std::int64_t dist = std::llabs(2 * i - n);
        if (dist < hole_dist) {
          hole_dist = dist;
          hole = i;
        }
      }
    }
    if (hole >= 0) {
      if (best.quality < 2 ||
          (best.quality == 2 && hole_dist < best.strength)) {
        best = {d, box.lo[d] + hole, 2, hole_dist};
      }
      continue;
    }
    // 2) Inflection: strongest sign change of Δ²σ.
    if (n >= 4) {
      std::vector<std::int64_t> lap(static_cast<std::size_t>(n), 0);
      for (std::int64_t i = 1; i + 1 < n; ++i)
        lap[static_cast<std::size_t>(i)] =
            sig[static_cast<std::size_t>(i + 1)] -
            2 * sig[static_cast<std::size_t>(i)] +
            sig[static_cast<std::size_t>(i - 1)];
      for (std::int64_t i = std::max<std::int64_t>(1, min_extent);
           i + 1 < n && i <= n - min_extent; ++i) {
        const std::int64_t a = lap[static_cast<std::size_t>(i)];
        const std::int64_t b = lap[static_cast<std::size_t>(i + 1)];
        if ((a < 0 && b > 0) || (a > 0 && b < 0)) {
          const std::int64_t strength = std::llabs(a - b);
          if (best.quality < 1 ||
              (best.quality == 1 && strength > best.strength)) {
            best = {d, box.lo[d] + i + 1, 1, strength};
          }
        }
      }
    }
  }
  return best;
}

void cluster_recursive(std::vector<Index3>& pts, const ClusterParams& params,
                       std::vector<IndexBox>& out, int depth) {
  if (pts.empty()) return;
  ENZO_REQUIRE(static_cast<int>(out.size()) < params.max_boxes,
               "Berger-Rigoutsos produced too many boxes");
  const IndexBox box = bounding_box(pts);
  const double eff =
      static_cast<double>(pts.size()) / static_cast<double>(box.volume());
  bool splittable = false;
  for (int d = 0; d < 3; ++d)
    if (box.extent(d) >= 2 * params.min_extent) splittable = true;
  if (eff >= params.min_efficiency || !splittable || depth > 64) {
    out.push_back(box);
    return;
  }
  Cut cut = best_cut(pts, box, params.min_extent);
  if (cut.axis < 0) {
    // No hole or inflection: bisect the longest splittable axis.
    int axis = -1;
    std::int64_t len = 0;
    for (int d = 0; d < 3; ++d)
      if (box.extent(d) >= 2 * params.min_extent && box.extent(d) > len) {
        len = box.extent(d);
        axis = d;
      }
    ENZO_REQUIRE(axis >= 0, "unsplittable box in cluster_recursive");
    cut = {axis, box.lo[axis] + box.extent(axis) / 2, 0, 0};
  }
  std::vector<Index3> lo_pts, hi_pts;
  lo_pts.reserve(pts.size());
  hi_pts.reserve(pts.size());
  for (const Index3& p : pts)
    (p[cut.axis] < cut.plane ? lo_pts : hi_pts).push_back(p);
  pts.clear();
  pts.shrink_to_fit();
  cluster_recursive(lo_pts, params, out, depth + 1);
  cluster_recursive(hi_pts, params, out, depth + 1);
}

}  // namespace

std::vector<IndexBox> cluster_flags(const std::vector<Index3>& flags,
                                    const ClusterParams& params) {
  std::vector<IndexBox> out;
  std::vector<Index3> pts = flags;
  cluster_recursive(pts, params, out, 0);
  return out;
}

}  // namespace enzo::mesh
