#pragma once
// Grid storage layer: arena-backed buffers and the view/handle API.
//
// Grids no longer expose util::Array3 members — every accessor returns a
// FieldView / ParticleView handle, so callers never observe where the bytes
// live (heap, per-level arena block, scratch pool).  Buffer3 is the owning
// side: a shaped block on loan from a util::Arena (or the aligned heap
// fallback when unattached), released back to the pool on destruction so
// regrids recycle storage instead of churning the allocator (§5).
//
// StorageArena bundles the per-level double arena with a particle-vector
// pool; Hierarchy owns one per level (shared_ptr — grids keep a reference
// so teardown order is never a hazard).

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ext/position.hpp"
#include "util/arena.hpp"
#include "util/array3.hpp"

namespace enzo::mesh {

/// Dark-matter particle (kept in mesh to avoid a module cycle; the nbody
/// module provides the solvers that act on these).
struct Particle {
  ext::PosVec x{};                 ///< absolute position, code units [0,1)
  std::array<double, 3> v{};       ///< peculiar velocity, code units
  double mass = 0.0;               ///< code mass (density × root-cell volume)
  std::uint64_t id = 0;
};

/// Span-like handles over grid field storage (see util::ArrayView3 for the
/// shallow-const semantics).
using FieldView = util::ArrayView3<double>;
using ConstFieldView = util::ArrayView3<const double>;

/// Storage + regrid strategy for a hierarchy (deck keys ArenaMode /
/// BlockGranularity).
struct ArenaOptions {
  /// Recycle field blocks through per-level free lists across regrids.
  bool pool = true;
  /// Diff rebuilt Berger–Rigoutsos boxes against the previous generation
  /// and keep unchanged grids (and their storage) alive.  Byte-identical to
  /// a full rebuild by contract (grid ids are the sole, unobservable
  /// exception: kept grids keep theirs).
  bool incremental = true;
  /// Capacity quantum in doubles for the size-class free lists.
  std::int64_t granularity = 2048;
};

/// An owning, shaped 3-d double buffer whose storage is on loan from a
/// util::Arena (or the aligned heap fallback when no arena is attached).
/// Move-only; resize always writes every element (matching Array3::resize's
/// assign semantics) so recycled blocks are bitwise indistinguishable from
/// fresh ones.
class Buffer3 {
 public:
  Buffer3() = default;
  ~Buffer3() { release(); }
  Buffer3(Buffer3&& o) noexcept { move_from(o); }
  Buffer3& operator=(Buffer3&& o) noexcept {
    if (this != &o) {
      release();
      move_from(o);
    }
    return *this;
  }
  Buffer3(const Buffer3&) = delete;
  Buffer3& operator=(const Buffer3&) = delete;

  /// Attach to an arena; must be called while empty (before first resize).
  void set_arena(util::Arena* a);

  /// Shape to (nx,ny,nz) and set every element to `fill`, acquiring a
  /// (possibly recycled) block when capacity is insufficient.
  void resize(int nx, int ny, int nz, double fill = 0.0);

  /// Return the block to its arena/heap and go empty (0×0×0).
  void release();

  void fill(double v) { view().fill(v); }

  /// Become a same-shaped copy of `o` (contents included).
  void copy_from(const Buffer3& o);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Rounded capacity of the held block in doubles (0 when empty).  Lets
  /// owners of long-lived scratch decide when a shrinking shape should
  /// release the block back to its size class instead of squatting on it.
  [[nodiscard]] std::size_t capacity() const { return block_.capacity; }

  [[nodiscard]] FieldView view() { return {block_.ptr, nx_, ny_, nz_}; }
  [[nodiscard]] ConstFieldView view() const {
    return {block_.ptr, nx_, ny_, nz_};
  }

  double* data() { return block_.ptr; }
  const double* data() const { return block_.ptr; }

 private:
  void move_from(Buffer3& o) {
    arena_ = o.arena_;
    block_ = o.block_;
    nx_ = o.nx_;
    ny_ = o.ny_;
    nz_ = o.nz_;
    o.block_ = {};
    o.nx_ = o.ny_ = o.nz_ = 0;
  }

  util::Arena* arena_ = nullptr;  // nullptr -> aligned heap fallback
  util::ArenaBlock block_;
  int nx_ = 0, ny_ = 0, nz_ = 0;
};

/// Forwarding handle over a grid's particle list.  Like FieldView it is a
/// shallow-const span-style handle: copying the view aliases the same
/// underlying vector.
class ParticleView {
 public:
  explicit ParticleView(std::vector<Particle>& v) : v_(&v) {}

  [[nodiscard]] std::size_t size() const { return v_->size(); }
  [[nodiscard]] bool empty() const { return v_->empty(); }
  Particle& operator[](std::size_t i) const { return (*v_)[i]; }
  Particle* begin() const { return v_->data(); }
  Particle* end() const { return v_->data() + v_->size(); }
  Particle* data() const { return v_->data(); }
  void push_back(const Particle& p) const { v_->push_back(p); }
  void reserve(std::size_t n) const { v_->reserve(n); }
  void resize(std::size_t n) const { v_->resize(n); }
  void clear() const { v_->clear(); }
  void swap(std::vector<Particle>& other) const { v_->swap(other); }

 private:
  std::vector<Particle>* v_;
};

class ConstParticleView {
 public:
  explicit ConstParticleView(const std::vector<Particle>& v) : v_(&v) {}

  [[nodiscard]] std::size_t size() const { return v_->size(); }
  [[nodiscard]] bool empty() const { return v_->empty(); }
  const Particle& operator[](std::size_t i) const { return (*v_)[i]; }
  const Particle* begin() const { return v_->data(); }
  const Particle* end() const { return v_->data() + v_->size(); }
  const Particle* data() const { return v_->data(); }

 private:
  const std::vector<Particle>* v_;
};

/// Per-level storage pool: the double arena for field blocks plus a
/// capacity-preserving particle-vector pool, so a rebuilt level reuses both
/// kinds of storage from the generation it replaced.
class StorageArena {
 public:
  explicit StorageArena(util::ArenaConfig cfg = {});

  [[nodiscard]] util::Arena& doubles() { return arena_; }

  /// An empty particle vector, recycled (capacity intact) when pooling is
  /// on and one is available.
  [[nodiscard]] std::vector<Particle> acquire_particles();
  void release_particles(std::vector<Particle>&& v);

 private:
  util::Arena arena_;
  std::mutex mu_;
  std::vector<std::vector<Particle>> particle_pool_;
};

}  // namespace enzo::mesh
