#pragma once
// SetBoundaryValues (§3.2.1): the two-step ghost fill.
//
//   1. interpolate all boundary values from the grid's parent (in space and
//      in time, to the grid's current time);
//   2. overwrite with same-level (sibling) data wherever a sibling overlaps
//      the ghost region — "this ensures that all boundary values are set
//      using the highest resolution solution available."
//
// The root level has no parent: its external boundary is periodic (sibling
// copies with domain-shift images, including self-copies for a single root
// grid) or outflow (edge replication) per HierarchyParams::periodic.

#include "mesh/hierarchy.hpp"

namespace enzo::exec {
class LevelExecutor;
}

namespace enzo::mesh {

/// Apply the two-step boundary fill to every grid on `level`.  With `ex`,
/// grids fill in parallel: each task writes only its own ghost layer and
/// reads parent/sibling *active* cells, which the phase never writes.
void set_boundary_values(Hierarchy& h, int level,
                         exec::LevelExecutor* ex = nullptr);

/// Outflow (zero-gradient) fill of a root grid's external ghost zones.
void fill_outflow_ghosts(Grid& g);

}  // namespace enzo::mesh
