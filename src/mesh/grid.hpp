#pragma once
// Grid: the basic building block of SAMR (§3.4: "encapsulation: a grid
// represents the basic building block of AMR ... atomic and binary
// operations").
//
// A Grid owns a rectangular patch of cells at one refinement level:
//   * geometry — an integer IndexBox in the level's global index space plus
//     extended-precision edges/cell widths derived from it (§3.5);
//   * baryon fields with ghost zones (and an "old" copy of the previous
//     state, kept for time-centered subgrid boundary interpolation, Fig. 2);
//   * time-integrated face fluxes of the conserved fields, used by the flux
//     correction step (§3.2.1);
//   * gravity data (gravitating mass, potential, accelerations);
//   * the dark-matter particles whose positions it contains (§3.3).
//
// Storage lives in arena-backed Buffer3 blocks; every accessor returns a
// FieldView / ParticleView handle, so callers never observe whether the
// bytes came from the heap or from a per-level arena pool.  Alignment logic
// is pure integer arithmetic; only absolute positions/times are extended
// precision.  Field data is plain double.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "ext/position.hpp"
#include "mesh/box.hpp"
#include "mesh/field.hpp"
#include "mesh/field_storage.hpp"

namespace enzo::mesh {

/// Global level-index of the cell containing coordinate x on an axis with
/// `dims` cells (extended-precision floor).  Shared by
/// Grid::global_index_of and the topology point index so both use
/// bit-identical arithmetic.
std::int64_t global_cell_index(ext::pos_t x, std::int64_t dims);

/// Immutable description of a grid's place in the hierarchy.
struct GridSpec {
  int level = 0;
  IndexBox box;                   ///< active region, level index space
  Index3 level_dims{1, 1, 1};     ///< whole domain size in this level's cells
  int refine_factor = 2;
  int nghost = 3;
  bool periodic = true;           ///< domain-level boundary type
};

class Grid {
 public:
  /// `arena` may be null (tests, ad-hoc grids): buffers then use the
  /// aligned heap fallback with identical accounting.
  Grid(const GridSpec& spec, const std::vector<Field>& fields,
       std::shared_ptr<StorageArena> arena = nullptr);
  ~Grid();
  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  // ---- geometry -------------------------------------------------------------
  int level() const { return spec_.level; }
  const IndexBox& box() const { return spec_.box; }
  Grid* parent() const { return parent_; }
  void set_parent(Grid* p) { parent_ = p; }
  const GridSpec& spec() const { return spec_; }
  int refine_factor() const { return spec_.refine_factor; }
  std::uint64_t id() const { return id_; }

  /// Active cells per axis.
  int nx(int d) const { return static_cast<int>(spec_.box.extent(d)); }
  /// Ghost cells per axis (0 on degenerate axes).
  int ng(int d) const { return ng_[d]; }
  /// Total (active + ghost) cells per axis.
  int nt(int d) const { return nx(d) + 2 * ng_[d]; }

  /// Cell width along axis d (comoving code units), exact dd.
  ext::pos_t cell_width(int d) const { return dx_[d]; }
  double cell_width_d(int d) const { return ext::pos_to_double(dx_[d]); }

  /// Absolute edges of the active region.
  ext::pos_t left_edge(int d) const;
  ext::pos_t right_edge(int d) const;
  /// Center of active cell (i,j,k) — active indices, 0-based.
  ext::PosVec cell_center(int i, int j, int k) const;

  /// Global level index of the cell containing absolute position x along d
  /// (extended precision floor; this is the operation double gets wrong at
  /// depth — see ext tests).
  std::int64_t global_index_of(ext::pos_t x, int d) const;
  /// Active local index (may be outside [0,nx) if x is outside the grid).
  std::int64_t local_index_of(ext::pos_t x, int d) const {
    return global_index_of(x, d) - spec_.box.lo[d];
  }
  bool contains_position(const ext::PosVec& x) const;

  // ---- time -----------------------------------------------------------------
  ext::pos_t time() const { return time_; }
  ext::pos_t old_time() const { return old_time_; }
  void set_time(ext::pos_t t) { time_ = t; }
  void set_old_time(ext::pos_t t) { old_time_ = t; }

  // ---- fields ---------------------------------------------------------------
  const std::vector<Field>& field_list() const { return field_list_; }
  bool has_field(Field f) const { return !fields_[field_index(f)].empty(); }
  [[nodiscard]] FieldView field(Field f);
  [[nodiscard]] ConstFieldView field(Field f) const;
  [[nodiscard]] FieldView old_field(Field f);
  [[nodiscard]] ConstFieldView old_field(Field f) const;
  bool has_old_fields() const { return has_old_; }

  /// Snapshot current fields into the "old" copies and record old_time.
  void store_old_fields();

  /// Map an active index to the storage index of the field arrays.
  int sx(int i) const { return i + ng_[0]; }
  int sy(int j) const { return j + ng_[1]; }
  int sz(int k) const { return k + ng_[2]; }

  // ---- fluxes ----------------------------------------------------------------
  /// Expansion-weighted time-integrated face flux ∫F dt/a of the conserved
  /// counterpart of field f along axis d (a = 1 in non-comoving runs, so the
  /// flux-correction divide by the *comoving* cell width closes exactly);
  /// array dims are nt with +1 along d (face-centered, ghost-aligned like
  /// the field arrays so face (i,j,k) is the lower face of cell (i,j,k)).
  [[nodiscard]] FieldView flux(Field f, int d);
  [[nodiscard]] ConstFieldView flux(Field f, int d) const;
  bool has_fluxes() const { return has_fluxes_; }
  /// Allocate (if needed) and zero the flux accumulators.
  void reset_fluxes();

  /// Boundary flux registers: the time-integrated fluxes through this grid's
  /// *own boundary faces*, accumulated over all of the grid's subcycles
  /// within one parent timestep (the quantity the parent's flux correction
  /// consumes).  Stored as single face planes (thickness 1 along d, indexed
  /// like the flux arrays in the transverse directions); side 0 = low face,
  /// side 1 = high face.
  [[nodiscard]] FieldView boundary_flux(Field f, int d, int side);
  [[nodiscard]] ConstFieldView boundary_flux(Field f, int d, int side) const;
  bool has_boundary_fluxes() const { return has_bfluxes_; }
  /// Allocate (if needed) and zero; the driver calls this when a new parent
  /// timestep window begins.
  void reset_boundary_fluxes();

  // ---- gravity ---------------------------------------------------------------
  /// Total gravitating (gas + dark matter) comoving density; one ghost layer
  /// so CIC deposits near edges land somewhere before being reconciled.
  [[nodiscard]] FieldView gravitating_mass() {
    return gravitating_mass_.view();
  }
  [[nodiscard]] ConstFieldView gravitating_mass() const {
    return gravitating_mass_.view();
  }
  /// Gravitational potential with one ghost layer (boundary from parent).
  [[nodiscard]] FieldView potential() { return potential_.view(); }
  [[nodiscard]] ConstFieldView potential() const { return potential_.view(); }
  /// Cell-centered acceleration components (active region only).
  [[nodiscard]] FieldView acceleration(int d) { return accel_[d].view(); }
  [[nodiscard]] ConstFieldView acceleration(int d) const {
    return accel_[d].view();
  }
  void allocate_gravity();
  bool has_gravity() const { return !potential_.empty(); }

  // ---- particles -------------------------------------------------------------
  [[nodiscard]] ParticleView particles() { return ParticleView(particles_); }
  [[nodiscard]] ConstParticleView particles() const {
    return ConstParticleView(particles_);
  }

  // ---- bulk data motion (binary grid operations, §3.4) -----------------------
  /// Copy every allocated field from src (same level) where src's active
  /// region, shifted by `shift` cells (periodic images), overlaps this
  /// grid's total (ghost-inclusive) region.  Returns copied-cell count.
  std::int64_t copy_from_sibling(const Grid& src, const Index3& shift);

  /// As above but restricted to this grid's *active* region (rebuild copy).
  std::int64_t copy_active_from(const Grid& src, const Index3& shift);

  /// Total bytes of field storage (allocation accounting).
  std::size_t field_bytes() const;

  /// True when this grid alone covers the whole periodic domain, so its
  /// ghost zones are exactly its own wrapped data.
  bool covers_periodic_domain() const;

  /// Refresh ghost zones by self-copy with periodic shifts (only valid when
  /// covers_periodic_domain()); used between directional sweeps to keep the
  /// conservative update exact across the external periodic boundary.
  void wrap_own_ghosts();

  // ---- regrid recycling ------------------------------------------------------
  /// Prepare this grid for reuse across a rebuild (incremental regrid, same
  /// box): release auxiliary storage (fluxes, boundary fluxes, gravity)
  /// back to the arena, zero the ghost shells, and re-anchor parent/time —
  /// after which the grid is bitwise indistinguishable from one freshly
  /// built and filled by the full-rebuild path (grid id excepted: a kept
  /// grid keeps its id, which no physics or serialized byte observes).
  void reset_for_reuse(Grid* parent);

 private:
  std::int64_t copy_region_from(const Grid& src, const Index3& shift,
                                const IndexBox& target_global);
  void scrub_ghosts();

  GridSpec spec_;
  Grid* parent_ = nullptr;
  std::uint64_t id_;
  std::array<int, 3> ng_{};
  std::array<ext::pos_t, 3> dx_{};
  std::vector<Field> field_list_;
  // The arena is declared before every buffer so buffers (destroyed in
  // reverse order) always release into a live arena.
  std::shared_ptr<StorageArena> arena_;
  std::array<Buffer3, kNumFields> fields_;
  std::array<Buffer3, kNumFields> old_fields_;
  std::array<std::array<Buffer3, 3>, kNumFields> fluxes_;
  std::array<std::array<std::array<Buffer3, 2>, 3>, kNumFields> bfluxes_;
  Buffer3 gravitating_mass_;
  Buffer3 potential_;
  std::array<Buffer3, 3> accel_;
  std::vector<Particle> particles_;
  ext::pos_t time_{0.0};
  ext::pos_t old_time_{0.0};
  bool has_old_ = false;
  bool has_fluxes_ = false;
  bool has_bfluxes_ = false;
};

}  // namespace enzo::mesh
