#include "mesh/hierarchy.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "exec/executor.hpp"
#include "mesh/interpolate.hpp"
#include "mesh/topology.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/error.hpp"

namespace enzo::mesh {

namespace {
/// Pack an Index3 into a hashable key (coordinates fit easily in 21 bits at
/// any depth we can afford to store flags for).
std::uint64_t key_of(const Index3& p) {
  auto enc = [](std::int64_t v) {
    return static_cast<std::uint64_t>(v & 0x1FFFFF);
  };
  return enc(p[0]) | (enc(p[1]) << 21) | (enc(p[2]) << 42);
}
}  // namespace

Hierarchy::Hierarchy(HierarchyParams params) : params_(std::move(params)) {
  ENZO_REQUIRE(params_.refine_factor >= 2, "refine factor must be >= 2");
  for (int d = 0; d < 3; ++d)
    ENZO_REQUIRE(params_.root_dims[d] >= 1, "bad root dims");
  ENZO_REQUIRE(!params_.fields.empty(), "hierarchy needs a field list");
}

// Out of line because OverlapTopology is incomplete in the header; the move
// operations transfer the topology cache (grid addresses are stable across
// a move of the owning vectors) but each object keeps its own mutex.
Hierarchy::~Hierarchy() = default;

Hierarchy::Hierarchy(Hierarchy&& other) noexcept
    : params_(std::move(other.params_)),
      arenas_(std::move(other.arenas_)),
      levels_(std::move(other.levels_)),
      descriptors_(std::move(other.descriptors_)),
      generation_(other.generation_),
      topology_(std::move(other.topology_)),
      topology_generation_(other.topology_generation_.load()) {
  other.topology_generation_.store(kNoTopology);
}

Hierarchy& Hierarchy::operator=(Hierarchy&& other) noexcept {
  if (this != &other) {
    params_ = std::move(other.params_);
    arenas_ = std::move(other.arenas_);
    levels_ = std::move(other.levels_);
    descriptors_ = std::move(other.descriptors_);
    generation_ = other.generation_;
    topology_ = std::move(other.topology_);
    topology_generation_.store(other.topology_generation_.load());
    other.topology_generation_.store(kNoTopology);
  }
  return *this;
}

std::shared_ptr<StorageArena> Hierarchy::arena_for_level(int level) {
  ENZO_REQUIRE(level >= 0, "negative level");
  while (static_cast<int>(arenas_.size()) <= level)
    arenas_.push_back(std::make_shared<StorageArena>(util::ArenaConfig{
        params_.arena.pool, params_.arena.granularity}));
  return arenas_[level];
}

std::unique_ptr<Grid> Hierarchy::make_grid(int level, const IndexBox& box) {
  return std::make_unique<Grid>(make_spec(level, box), params_.fields,
                                arena_for_level(level));
}

const OverlapTopology& Hierarchy::topology() const {
  // Fast path: the acquire pairs with the release below, so observing our
  // generation guarantees the built topology is visible.
  if (topology_generation_.load(std::memory_order_acquire) == generation_)
    return *topology_;
  std::lock_guard<std::mutex> lock(topology_mu_);
  if (topology_generation_.load(std::memory_order_relaxed) != generation_) {
    topology_ = std::make_unique<OverlapTopology>(*this);
    topology_generation_.store(generation_, std::memory_order_release);
  }
  return *topology_;
}

std::optional<std::uint64_t> Hierarchy::topology_cache_generation() const {
  const std::uint64_t g =
      topology_generation_.load(std::memory_order_acquire);
  if (g == kNoTopology) return std::nullopt;
  return g;
}

Index3 Hierarchy::level_dims(int level) const {
  Index3 dims;
  for (int d = 0; d < 3; ++d) {
    if (params_.root_dims[d] == 1) {
      dims[d] = 1;
    } else {
      std::int64_t n = params_.root_dims[d];
      for (int l = 0; l < level; ++l) n *= params_.refine_factor;
      dims[d] = n;
    }
  }
  return dims;
}

GridSpec Hierarchy::make_spec(int level, const IndexBox& box) const {
  GridSpec s;
  s.level = level;
  s.box = box;
  s.level_dims = level_dims(level);
  s.refine_factor = params_.refine_factor;
  s.nghost = params_.nghost;
  s.periodic = params_.periodic;
  return s;
}

void Hierarchy::build_root(int tiles_per_axis) {
  ENZO_REQUIRE(!exec::in_phase(),
               "hierarchy mutation inside an executor phase");
  ENZO_REQUIRE(levels_.empty(), "root already built");
  ENZO_REQUIRE(tiles_per_axis >= 1, "bad tile count");
  ++generation_;
  levels_.emplace_back();
  const Index3 dims = level_dims(0);
  for (int d = 0; d < 3; ++d)
    ENZO_REQUIRE(dims[d] == 1 || dims[d] % tiles_per_axis == 0,
                 "root dims not divisible into tiles");
  auto tiles_on = [&](int d) { return dims[d] == 1 ? 1 : tiles_per_axis; };
  for (int tk = 0; tk < tiles_on(2); ++tk)
    for (int tj = 0; tj < tiles_on(1); ++tj)
      for (int ti = 0; ti < tiles_on(0); ++ti) {
        IndexBox box;
        const int t[3] = {ti, tj, tk};
        for (int d = 0; d < 3; ++d) {
          const std::int64_t w = dims[d] / tiles_on(d);
          box.lo[d] = t[d] * w;
          box.hi[d] = box.lo[d] + w;
        }
        levels_[0].push_back(make_grid(0, box));
      }
  descriptors_.clear();
  descriptors_.emplace_back();
  refresh_descriptors(0);
}

std::vector<Grid*> Hierarchy::grids(int level) {
  std::vector<Grid*> out;
  if (level < 0 || level >= static_cast<int>(levels_.size())) return out;
  out.reserve(levels_[level].size());
  for (auto& g : levels_[level]) out.push_back(g.get());
  return out;
}

std::vector<const Grid*> Hierarchy::grids(int level) const {
  std::vector<const Grid*> out;
  if (level < 0 || level >= static_cast<int>(levels_.size())) return out;
  out.reserve(levels_[level].size());
  for (auto& g : levels_[level]) out.push_back(g.get());
  return out;
}

std::size_t Hierarchy::num_grids(int level) const {
  if (level < 0 || level >= static_cast<int>(levels_.size())) return 0;
  return levels_[level].size();
}

std::size_t Hierarchy::total_grids() const {
  std::size_t n = 0;
  for (auto& lv : levels_) n += lv.size();
  return n;
}

std::int64_t Hierarchy::total_cells() const {
  std::int64_t n = 0;
  for (auto& lv : levels_)
    for (auto& g : lv) n += g->box().volume();
  return n;
}

Grid* Hierarchy::insert_grid(std::unique_ptr<Grid> g) {
  ENZO_REQUIRE(!exec::in_phase(),
               "hierarchy mutation inside an executor phase");
  ++generation_;
  const int level = g->level();
  ENZO_REQUIRE(level >= 0, "negative level");
  ENZO_REQUIRE(level == 0 || g->parent() != nullptr,
               "refined grid inserted without parent");
  while (static_cast<int>(levels_.size()) <= level) {
    levels_.emplace_back();
    descriptors_.emplace_back();
  }
  levels_[level].push_back(std::move(g));
  refresh_descriptors(level);
  return levels_[level].back().get();
}

void Hierarchy::refresh_descriptors(int level) {
  while (static_cast<int>(descriptors_.size()) < static_cast<int>(levels_.size()))
    descriptors_.emplace_back();
  auto& list = descriptors_[level];
  list.clear();
  for (auto& g : levels_[level])
    list.push_back({g->id(), level, g->box(), /*owner_rank=*/0});
}

const std::vector<GridDescriptor>& Hierarchy::descriptors(int level) const {
  static const std::vector<GridDescriptor> empty;
  if (level < 0 || level >= static_cast<int>(descriptors_.size())) return empty;
  return descriptors_[level];
}

void Hierarchy::rebuild(int level, const FlagFn& flag) {
  ENZO_REQUIRE(!exec::in_phase(),
               "hierarchy mutation inside an executor phase");
  // Previous-generation topology for the incremental diff (the PR-5 cache):
  // usable only when it was built for the structure this rebuild replaces.
  // The object stays alive through the rebuild — it is only dropped on the
  // next topology() query — and per-level queries below always target
  // levels that have not been swapped yet.
  const OverlapTopology* prev_topo = nullptr;
  if (params_.arena.incremental &&
      topology_generation_.load(std::memory_order_acquire) == generation_)
    prev_topo = topology_.get();
  ++generation_;
  ENZO_REQUIRE(level >= 1, "cannot rebuild the root level");
  ENZO_REQUIRE(level < static_cast<int>(levels_.size()) + 1,
               "rebuild level beyond deepest+1");
  perf::TraceScope scope("rebuild", perf::component::kRebuild, level);
  static perf::Counter& rebuilds =
      perf::Registry::global().counter("mesh.rebuilds");
  rebuilds.add(1);
  const std::size_t grids_before = total_grids();
  const int r = params_.refine_factor;

  for (int l = level; l <= params_.max_level; ++l) {
    // ---- 1. refinement test on the (possibly just-rebuilt) parent level ----
    std::vector<Index3> flags;
    for (Grid* parent : grids(l - 1)) flag(*parent, flags);

    // Nesting guarantee: any cell under a current level l+1 grid must stay
    // refined, so flag its (l-1)-level footprint with one cell of padding.
    for (const Grid* gc : grids(l + 1)) {
      IndexBox foot = gc->box();
      for (int rr = 0; rr < 2; ++rr) foot = foot.coarsened(r);
      foot = foot.grown(1);
      const Index3 pdims = level_dims(l - 1);
      for (std::int64_t k = foot.lo[2]; k < foot.hi[2]; ++k)
        for (std::int64_t j = foot.lo[1]; j < foot.hi[1]; ++j)
          for (std::int64_t i = foot.lo[0]; i < foot.hi[0]; ++i) {
            Index3 p{i, j, k};
            bool ok = true;
            for (int d = 0; d < 3; ++d) {
              if (pdims[d] == 1) {
                p[d] = 0;
              } else if (params_.periodic) {
                p[d] = ((p[d] % pdims[d]) + pdims[d]) % pdims[d];
              } else if (p[d] < 0 || p[d] >= pdims[d]) {
                ok = false;
              }
            }
            if (ok) flags.push_back(p);
          }
    }

    // ---- buffer + dedupe ----------------------------------------------------
    if (params_.flag_buffer > 0 && !flags.empty()) {
      const Index3 pdims = level_dims(l - 1);
      const int b = params_.flag_buffer;
      std::vector<Index3> grown;
      grown.reserve(flags.size() * 8);
      for (const Index3& p : flags)
        for (int dk = (pdims[2] > 1 ? -b : 0); dk <= (pdims[2] > 1 ? b : 0); ++dk)
          for (int dj = (pdims[1] > 1 ? -b : 0); dj <= (pdims[1] > 1 ? b : 0); ++dj)
            for (int di = (pdims[0] > 1 ? -b : 0); di <= (pdims[0] > 1 ? b : 0);
                 ++di) {
              Index3 q{p[0] + di, p[1] + dj, p[2] + dk};
              bool ok = true;
              for (int d = 0; d < 3; ++d) {
                if (pdims[d] == 1) continue;
                if (params_.periodic)
                  q[d] = ((q[d] % pdims[d]) + pdims[d]) % pdims[d];
                else if (q[d] < 0 || q[d] >= pdims[d])
                  ok = false;
              }
              if (ok) grown.push_back(q);
            }
      flags.swap(grown);
    }
    {
      std::unordered_set<std::uint64_t> seen;
      seen.reserve(flags.size());
      std::vector<Index3> unique;
      unique.reserve(flags.size());
      for (const Index3& p : flags)
        if (seen.insert(key_of(p)).second) unique.push_back(p);
      flags.swap(unique);
    }
    // Keep only flags actually covered by a parent grid (buffering can push
    // them off the refined region of level l-1).
    if (l - 1 > 0) {
      std::vector<Index3> covered;
      covered.reserve(flags.size());
      for (const Index3& p : flags)
        for (const Grid* parent : grids(l - 1))
          if (parent->box().contains(p)) {
            covered.push_back(p);
            break;
          }
      flags.swap(covered);
    }

    // ---- 2. cluster into rectangular regions --------------------------------
    std::vector<IndexBox> boxes = cluster_flags(flags, params_.cluster);

    // ---- 3. create the new grids, fill, and swap ----------------------------
    // Incremental regrid: before building a grid for a canonical
    // (cluster box × parent) piece, look for a previous-generation grid
    // with *exactly* that box — through the PR-5 topology point index when
    // the cache is fresh, else a box-anchored lookup — and keep it (and
    // its storage) alive instead of reallocating and refilling.  A kept
    // grid's active bytes equal what the full path would rebuild: the full
    // path's same-box self-copy restores its own data verbatim, disjoint
    // same-level neighbours contribute nothing, and the parent
    // interpolation underneath is fully overwritten.  Only auxiliary state
    // needs resetting (Grid::reset_for_reuse).
    std::vector<Grid*> old_raw;  // pre-rebuild level-l grids, in level order
    std::unordered_map<std::uint64_t, std::size_t> old_by_lo;  // lookup only
    if (l < static_cast<int>(levels_.size())) {
      old_raw.reserve(levels_[l].size());
      for (std::size_t i = 0; i < levels_[l].size(); ++i) {
        old_raw.push_back(levels_[l][i].get());
        old_by_lo.emplace(key_of(levels_[l][i]->box().lo), i);
      }
    }
    std::vector<std::unique_ptr<Grid>> fresh;
    std::vector<char> fresh_kept;
    std::size_t kept_count = 0;
    {
      perf::TraceScope arena_scope("arena", perf::component::kRebuild, l);
      for (const IndexBox& b : boxes) {
        // Subgrids must be rectangular and completely contained within a
        // single parent (§3.1): split cluster boxes along parent boundaries.
        for (Grid* parent : grids(l - 1)) {
          const IndexBox piece = b.intersect(parent->box());
          if (piece.empty()) continue;
          // Refine to level-l index space (degenerate axes stay width 1).
          IndexBox fine;
          const Index3 cdims = level_dims(l);
          const Index3 pdims = level_dims(l - 1);
          for (int d = 0; d < 3; ++d) {
            const int rd = static_cast<int>(cdims[d] / pdims[d]);
            fine.lo[d] = piece.lo[d] * rd;
            fine.hi[d] = piece.hi[d] * rd;
          }
          if (fine.volume() < params_.min_grid_cells) {
            // Too small to be worth a grid — but nesting flags guarantee any
            // such sliver has no grandchildren, so dropping it is safe.
            continue;
          }
          Grid* reuse = nullptr;
          std::size_t reuse_idx = 0;
          if (params_.arena.incremental && !old_raw.empty()) {
            Grid* cand = prev_topo != nullptr
                             ? prev_topo->grid_at(l, fine.lo)
                             : nullptr;
            if (cand == nullptr) {
              const auto it = old_by_lo.find(key_of(fine.lo));
              if (it != old_by_lo.end()) cand = old_raw[it->second];
            }
            if (cand != nullptr && cand->box() == fine) {
              const auto it = old_by_lo.find(key_of(cand->box().lo));
              ENZO_REQUIRE(it != old_by_lo.end() &&
                               old_raw[it->second] == cand,
                           "incremental regrid diff index out of sync");
              reuse = cand;
              reuse_idx = it->second;
            }
          }
          if (reuse != nullptr) {
            reuse->reset_for_reuse(parent);
            fresh.push_back(std::move(levels_[l][reuse_idx]));
            fresh_kept.push_back(1);
            ++kept_count;
          } else {
            auto g = make_grid(l, fine);
            g->set_parent(parent);
            g->set_time(parent->time());
            g->set_old_time(parent->time());
            fill_active_from_parent(*g, *parent);
            fresh.push_back(std::move(g));
            fresh_kept.push_back(0);
          }
        }
      }
    }
    static perf::Counter& kept_grids =
        perf::Registry::global().counter("arena.regrid_kept_grids");
    static perf::Counter& new_grids =
        perf::Registry::global().counter("arena.regrid_new_grids");
    kept_grids.add(kept_count);
    new_grids.add(fresh.size() - kept_count);

    // Copy overlapping data from the old grids of this level (better than
    // interpolated parent data), then migrate particles.  A kept grid
    // skips the copies (it *is* its own slice) but still serves as the
    // live source for any newly created neighbour.
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (fresh_kept[i] != 0) continue;
      for (Grid* old : old_raw) fresh[i]->copy_active_from(*old, {0, 0, 0});
    }

    // Particles: pull down from parents into new grids; push old-grid
    // particles either into the new grids or back up to the parent.  Pulls
    // are staged per destination and installed after both passes, so the
    // incremental path reproduces the full path's append order exactly —
    // [parent pulls in parent order] + [old-grid particles in old order] —
    // even when a destination is itself one of the old grids.
    auto grid_ordinal_for = [&](const Particle& p) -> std::ptrdiff_t {
      for (std::size_t i = 0; i < fresh.size(); ++i)
        if (fresh[i]->contains_position(p.x))
          return static_cast<std::ptrdiff_t>(i);
      return -1;
    };
    std::vector<std::vector<Particle>> staged(fresh.size());
    for (Grid* parent : grids(l - 1)) {
      auto pp = parent->particles();
      std::vector<Particle> keep;
      keep.reserve(pp.size());
      for (Particle& p : pp) {
        const std::ptrdiff_t i = grid_ordinal_for(p);
        if (i >= 0)
          staged[static_cast<std::size_t>(i)].push_back(p);
        else
          keep.push_back(p);
      }
      pp.swap(keep);
    }
    for (Grid* old : old_raw) {
      for (Particle& p : old->particles()) {
        const std::ptrdiff_t i = grid_ordinal_for(p);
        if (i >= 0) {
          staged[static_cast<std::size_t>(i)].push_back(p);
        } else {
          // Region no longer refined: hand the particle to the parent that
          // contains it.
          Grid* dest = nullptr;
          for (Grid* parent : grids(l - 1))
            if (parent->contains_position(p.x)) {
              dest = parent;
              break;
            }
          ENZO_REQUIRE(dest != nullptr, "particle fell outside the hierarchy");
          dest->particles().push_back(p);
        }
      }
    }
    for (std::size_t i = 0; i < fresh.size(); ++i)
      fresh[i]->particles().swap(staged[i]);

    // New grids snapshot their state for their future children's boundary
    // time interpolation.
    for (auto& g : fresh) g->store_old_fields();

    // Swap in the new level.  Children of the old grids (level l+1) are
    // re-parented when their own rebuild iteration runs next; nothing
    // touches their parent pointers in between.
    if (static_cast<int>(levels_.size()) <= l) {
      levels_.emplace_back();
      descriptors_.emplace_back();
    }
    levels_[l].swap(fresh);
    fresh.clear();
    refresh_descriptors(l);

    if (levels_[l].empty()) {
      // Nothing refined at this level: delete all deeper levels (their
      // particles must first be pushed up).
      for (int dl = static_cast<int>(levels_.size()) - 1; dl > l; --dl) {
        for (auto& g : levels_[dl])
          for (Particle& p : g->particles()) {
            Grid* dest = nullptr;
            for (Grid* parent : grids(l - 1))
              if (parent->contains_position(p.x)) {
                dest = parent;
                break;
              }
            ENZO_REQUIRE(dest != nullptr,
                         "particle fell outside the hierarchy");
            dest->particles().push_back(p);
          }
        levels_.pop_back();
        descriptors_.pop_back();
      }
      levels_.pop_back();
      descriptors_.pop_back();
      break;
    }
  }
  check_invariants();
  // Grid-churn statistics (§5: the hierarchy is rebuilt thousands of times).
  static perf::Gauge& grids_current =
      perf::Registry::global().gauge("mesh.grids_after_rebuild");
  static perf::Histogram& churn =
      perf::Registry::global().histogram("mesh.grids_per_rebuild");
  const std::size_t grids_after = total_grids();
  grids_current.set(static_cast<double>(grids_after));
  churn.observe(grids_after >= grids_before ? grids_after - grids_before
                                            : grids_before - grids_after);
}

void Hierarchy::check_invariants() const {
  for (int l = 0; l < static_cast<int>(levels_.size()); ++l) {
    const Index3 dims = level_dims(l);
    const auto& lv = levels_[l];
    ENZO_REQUIRE(l == 0 || !levels_[l - 1].empty(),
                 "level " + std::to_string(l) + " has grids but parent level is empty");
    for (std::size_t a = 0; a < lv.size(); ++a) {
      const Grid& g = *lv[a];
      ENZO_REQUIRE(g.level() == l, "grid level mismatch");
      for (int d = 0; d < 3; ++d) {
        ENZO_REQUIRE(g.box().lo[d] >= 0 && g.box().hi[d] <= dims[d],
                     "grid outside domain: " + g.box().str());
      }
      if (l > 0) {
        const Grid* parent = g.parent();
        ENZO_REQUIRE(parent != nullptr, "refined grid without parent");
        // Alignment and containment within the single parent.
        const Index3 pdims = level_dims(l - 1);
        IndexBox in_parent;
        for (int d = 0; d < 3; ++d) {
          const std::int64_t rd = dims[d] / pdims[d];
          ENZO_REQUIRE(g.box().lo[d] % rd == 0 && g.box().hi[d] % rd == 0,
                       "grid not aligned to parent cells: " + g.box().str());
          in_parent.lo[d] = g.box().lo[d] / rd;
          in_parent.hi[d] = g.box().hi[d] / rd;
        }
        ENZO_REQUIRE(parent->box().contains(in_parent),
                     "grid " + g.box().str() + " not contained in parent " +
                         parent->box().str());
        // Parent must actually live on the previous level.
        bool found = false;
        for (const auto& p : levels_[l - 1])
          if (p.get() == parent) found = true;
        ENZO_REQUIRE(found, "stale parent pointer");
      }
      // Non-overlap with same-level grids.
      for (std::size_t b = a + 1; b < lv.size(); ++b) {
        ENZO_REQUIRE(g.box().intersect(lv[b]->box()).empty(),
                     "overlapping grids at level " + std::to_string(l) + ": " +
                         g.box().str() + " and " + lv[b]->box().str());
      }
      // Particle ownership.
      for (const Particle& p : g.particles()) {
        ENZO_REQUIRE(g.contains_position(p.x),
                     "particle outside its owning grid");
      }
    }
  }
}

std::vector<std::size_t> Hierarchy::grids_per_level() const {
  std::vector<std::size_t> out;
  for (auto& lv : levels_) out.push_back(lv.size());
  return out;
}

std::vector<double> Hierarchy::work_per_level() const {
  // Work ≈ cells × number of (sub)timesteps the level takes per root step.
  std::vector<double> out;
  double steps = 1.0;
  for (auto& lv : levels_) {
    std::int64_t cells = 0;
    for (auto& g : lv) cells += g->box().volume();
    out.push_back(static_cast<double>(cells) * steps);
    steps *= params_.refine_factor;
  }
  return out;
}

}  // namespace enzo::mesh
