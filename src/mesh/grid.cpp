#include "mesh/grid.hpp"

#include <atomic>

#include "mesh/topology.hpp"
#include "util/error.hpp"

namespace enzo::mesh {

namespace {
std::uint64_t next_grid_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Grid::Grid(const GridSpec& spec, const std::vector<Field>& fields,
           std::shared_ptr<StorageArena> arena)
    : spec_(spec),
      id_(next_grid_id()),
      field_list_(fields),
      arena_(std::move(arena)) {
  ENZO_REQUIRE(!spec_.box.empty(), "grid with empty box " + spec_.box.str());
  ENZO_REQUIRE(spec_.refine_factor >= 2, "refinement factor must be >= 2");
  for (int d = 0; d < 3; ++d) {
    ENZO_REQUIRE(spec_.level_dims[d] >= spec_.box.hi[d] - 0 || true,
                 "grid exceeds level dims");
    // Degenerate axes (whole domain one cell thick) carry no ghosts.
    ng_[d] = (spec_.level_dims[d] > 1) ? spec_.nghost : 0;
    dx_[d] = ext::pos_t(1.0) / ext::pos_t(static_cast<double>(
                                  spec_.level_dims[d]));
  }
  if (arena_ != nullptr) {
    util::Arena* a = &arena_->doubles();
    for (auto& b : fields_) b.set_arena(a);
    for (auto& b : old_fields_) b.set_arena(a);
    for (auto& per_field : fluxes_)
      for (auto& b : per_field) b.set_arena(a);
    for (auto& per_field : bfluxes_)
      for (auto& per_axis : per_field)
        for (auto& b : per_axis) b.set_arena(a);
    gravitating_mass_.set_arena(a);
    potential_.set_arena(a);
    for (auto& b : accel_) b.set_arena(a);
    particles_ = arena_->acquire_particles();
  }
  for (Field f : field_list_) {
    fields_[field_index(f)].resize(nt(0), nt(1), nt(2), 0.0);
  }
}

Grid::~Grid() {
  if (arena_ != nullptr) arena_->release_particles(std::move(particles_));
}

std::size_t Grid::field_bytes() const {
  std::size_t total = 0;
  for (const auto& a : fields_) total += a.size() * sizeof(double);
  for (const auto& a : old_fields_) total += a.size() * sizeof(double);
  for (const auto& per_field : fluxes_)
    for (const auto& a : per_field) total += a.size() * sizeof(double);
  for (const auto& per_field : bfluxes_)
    for (const auto& per_axis : per_field)
      for (const auto& a : per_axis) total += a.size() * sizeof(double);
  total += gravitating_mass_.size() * sizeof(double);
  total += potential_.size() * sizeof(double);
  for (const auto& a : accel_) total += a.size() * sizeof(double);
  return total;
}

ext::pos_t Grid::left_edge(int d) const {
  return ext::pos_t(static_cast<double>(spec_.box.lo[d])) * dx_[d];
}

ext::pos_t Grid::right_edge(int d) const {
  return ext::pos_t(static_cast<double>(spec_.box.hi[d])) * dx_[d];
}

ext::PosVec Grid::cell_center(int i, int j, int k) const {
  const int idx[3] = {i, j, k};
  ext::PosVec c;
  for (int d = 0; d < 3; ++d) {
    c[d] = (ext::pos_t(static_cast<double>(spec_.box.lo[d] + idx[d])) +
            ext::pos_t(0.5)) *
           dx_[d];
  }
  return c;
}

std::int64_t global_cell_index(ext::pos_t x, std::int64_t dims) {
#ifdef ENZO_POSITION_DOUBLE
  return static_cast<std::int64_t>(
      std::floor(x * static_cast<double>(dims)));
#else
  const ext::pos_t scaled = x * ext::pos_t(static_cast<double>(dims));
  return static_cast<std::int64_t>(ext::floor(scaled).to_double());
#endif
}

std::int64_t Grid::global_index_of(ext::pos_t x, int d) const {
  return global_cell_index(x, spec_.level_dims[d]);
}

bool Grid::contains_position(const ext::PosVec& x) const {
  for (int d = 0; d < 3; ++d) {
    const std::int64_t g = global_index_of(x[d], d);
    if (g < spec_.box.lo[d] || g >= spec_.box.hi[d]) return false;
  }
  return true;
}

FieldView Grid::field(Field f) {
  Buffer3& a = fields_[field_index(f)];
  ENZO_REQUIRE(!a.empty(), std::string("field not allocated: ") +
                               std::string(field_name(f)));
  return a.view();
}
ConstFieldView Grid::field(Field f) const {
  const Buffer3& a = fields_[field_index(f)];
  ENZO_REQUIRE(!a.empty(), std::string("field not allocated: ") +
                               std::string(field_name(f)));
  return a.view();
}

FieldView Grid::old_field(Field f) {
  ENZO_REQUIRE(has_old_, "old fields not stored");
  return old_fields_[field_index(f)].view();
}
ConstFieldView Grid::old_field(Field f) const {
  ENZO_REQUIRE(has_old_, "old fields not stored");
  return old_fields_[field_index(f)].view();
}

void Grid::store_old_fields() {
  for (Field f : field_list_)
    old_fields_[field_index(f)].copy_from(fields_[field_index(f)]);
  old_time_ = time_;
  has_old_ = true;
}

FieldView Grid::flux(Field f, int d) {
  ENZO_REQUIRE(has_fluxes_, "fluxes not allocated");
  return fluxes_[field_index(f)][d].view();
}
ConstFieldView Grid::flux(Field f, int d) const {
  ENZO_REQUIRE(has_fluxes_, "fluxes not allocated");
  return fluxes_[field_index(f)][d].view();
}

void Grid::reset_fluxes() {
  for (Field f : field_list_) {
    for (int d = 0; d < 3; ++d) {
      if (spec_.level_dims[d] == 1) continue;  // no sweep on degenerate axes
      const int fx = nt(0) + (d == 0 ? 1 : 0);
      const int fy = nt(1) + (d == 1 ? 1 : 0);
      const int fz = nt(2) + (d == 2 ? 1 : 0);
      fluxes_[field_index(f)][d].resize(fx, fy, fz, 0.0);
    }
  }
  has_fluxes_ = true;
}

FieldView Grid::boundary_flux(Field f, int d, int side) {
  ENZO_REQUIRE(has_bfluxes_, "boundary fluxes not allocated");
  return bfluxes_[field_index(f)][d][side].view();
}
ConstFieldView Grid::boundary_flux(Field f, int d, int side) const {
  ENZO_REQUIRE(has_bfluxes_, "boundary fluxes not allocated");
  return bfluxes_[field_index(f)][d][side].view();
}

void Grid::reset_boundary_fluxes() {
  for (Field f : field_list_) {
    for (int d = 0; d < 3; ++d) {
      if (spec_.level_dims[d] == 1) continue;
      for (int side = 0; side < 2; ++side) {
        const int fx = d == 0 ? 1 : nt(0);
        const int fy = d == 1 ? 1 : nt(1);
        const int fz = d == 2 ? 1 : nt(2);
        bfluxes_[field_index(f)][d][side].resize(fx, fy, fz, 0.0);
      }
    }
  }
  has_bfluxes_ = true;
}

void Grid::allocate_gravity() {
  if (has_gravity()) return;
  // One ghost layer on non-degenerate axes.
  auto g = [&](int d) { return spec_.level_dims[d] > 1 ? 1 : 0; };
  gravitating_mass_.resize(nx(0) + 2 * g(0), nx(1) + 2 * g(1),
                           nx(2) + 2 * g(2), 0.0);
  potential_.resize(nx(0) + 2 * g(0), nx(1) + 2 * g(1), nx(2) + 2 * g(2),
                    0.0);
  for (int d = 0; d < 3; ++d) accel_[d].resize(nx(0), nx(1), nx(2), 0.0);
}

void Grid::reset_for_reuse(Grid* parent) {
  ENZO_REQUIRE(parent != nullptr, "reset_for_reuse needs a parent");
  parent_ = parent;
  time_ = parent->time();
  old_time_ = parent->time();
  // A freshly built grid carries no flux/gravity storage; return ours to
  // the arena so consumers cannot tell a recycled grid from a new one.
  for (auto& per_field : fluxes_)
    for (auto& b : per_field) b.release();
  for (auto& per_field : bfluxes_)
    for (auto& per_axis : per_field)
      for (auto& b : per_axis) b.release();
  has_fluxes_ = false;
  has_bfluxes_ = false;
  gravitating_mass_.release();
  potential_.release();
  for (auto& b : accel_) b.release();
  // Fresh grids are zero-filled and only their active cells are written
  // during a rebuild, so a kept grid's stale ghost shells must go back to
  // zero (cheap: surface area, not volume).
  scrub_ghosts();
  // old fields are fully overwritten by the rebuild's store_old_fields()
  // pass, exactly as a fresh grid's are — nothing to do here.
}

void Grid::scrub_ghosts() {
  for (Field f : field_list_) {
    Buffer3& b = fields_[field_index(f)];
    if (b.empty()) continue;
    FieldView a = b.view();
    const int nxa = nx(0), nya = nx(1), nza = nx(2);
    for (int k = 0; k < nt(2); ++k)
      for (int j = 0; j < nt(1); ++j) {
        const bool jk_ghost = j < ng_[1] || j >= ng_[1] + nya ||
                              k < ng_[2] || k >= ng_[2] + nza;
        for (int i = 0; i < nt(0); ++i) {
          if (jk_ghost || i < ng_[0] || i >= ng_[0] + nxa) a(i, j, k) = 0.0;
        }
      }
  }
}

std::int64_t Grid::copy_region_from(const Grid& src, const Index3& shift,
                                    const IndexBox& target_global) {
  ENZO_REQUIRE(src.level() == level(), "sibling copy across levels");
  const IndexBox overlap = target_global.intersect(src.box().shifted(shift));
  if (overlap.empty()) return 0;
  std::int64_t copied = 0;
  for (Field f : field_list_) {
    if (!src.has_field(f)) continue;
    const FieldView dst_a = field(f);
    const ConstFieldView src_a = src.field(f);
    for (std::int64_t gk = overlap.lo[2]; gk < overlap.hi[2]; ++gk)
      for (std::int64_t gj = overlap.lo[1]; gj < overlap.hi[1]; ++gj)
        for (std::int64_t gi = overlap.lo[0]; gi < overlap.hi[0]; ++gi) {
          const int di = static_cast<int>(gi - spec_.box.lo[0]) + ng_[0];
          const int dj = static_cast<int>(gj - spec_.box.lo[1]) + ng_[1];
          const int dk = static_cast<int>(gk - spec_.box.lo[2]) + ng_[2];
          const int si =
              static_cast<int>(gi - shift[0] - src.box().lo[0]) + src.ng(0);
          const int sj =
              static_cast<int>(gj - shift[1] - src.box().lo[1]) + src.ng(1);
          const int sk =
              static_cast<int>(gk - shift[2] - src.box().lo[2]) + src.ng(2);
          dst_a(di, dj, dk) = src_a(si, sj, sk);
        }
  }
  copied += overlap.volume();
  return copied;
}

bool Grid::covers_periodic_domain() const {
  if (!spec_.periodic) return false;
  for (int d = 0; d < 3; ++d)
    if (spec_.box.lo[d] != 0 || spec_.box.hi[d] != spec_.level_dims[d])
      return false;
  return true;
}

void Grid::wrap_own_ghosts() {
  ENZO_REQUIRE(covers_periodic_domain(),
               "wrap_own_ghosts on a grid that does not cover the domain");
  // All 26 periodic images (the source region is always the active box, so
  // edge/corner ghosts need the diagonal shifts).  This site used to guard
  // on `ng_[d] > 0` instead of the canonical `dims[d] > 1`; the two only
  // differ when nghost == 0, where both end up copying nothing (the shifted
  // active box cannot meet a ghostless total box), so the shared helper is
  // behaviour-preserving here.
  const auto shifts =
      periodic_image_shifts(spec_.level_dims, spec_.periodic);
  for (std::int64_t kz : shifts[2])
    for (std::int64_t ky : shifts[1])
      for (std::int64_t kx : shifts[0]) {
        if (kx == 0 && ky == 0 && kz == 0) continue;
        copy_from_sibling(*this, {kx, ky, kz});
      }
}

std::int64_t Grid::copy_from_sibling(const Grid& src, const Index3& shift) {
  IndexBox total = spec_.box;
  for (int d = 0; d < 3; ++d) {
    total.lo[d] -= ng_[d];
    total.hi[d] += ng_[d];
  }
  return copy_region_from(src, shift, total);
}

std::int64_t Grid::copy_active_from(const Grid& src, const Index3& shift) {
  return copy_region_from(src, shift, spec_.box);
}

}  // namespace enzo::mesh
