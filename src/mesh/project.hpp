#pragma once
// Projection: fine → coarse solution update, and flux correction (§3.2.1).
//
// "Taken together, these two steps represent one side of the two-way
// communication between parent and child grids."  Projection overwrites the
// coarse cells covered by a child with the conservative average of the
// child's solution; flux correction repairs the coarse cells just *outside*
// a child boundary so that mass, momentum and energy remain conserved as
// material flows across the fine/coarse interface.

#include "mesh/grid.hpp"

namespace enzo::mesh {

/// Overwrite the parent's cells covered by `child` with conservative
/// averages: density-like fields volume-averaged, specific fields
/// mass-weighted.  Returns the number of parent cells updated.
std::int64_t project_to_parent(const Grid& child, Grid& parent);

/// Replace the parent's time-integrated boundary fluxes at the child's
/// faces with the child's (area-averaged, subcycle-summed) fine fluxes and
/// correct the adjacent outside coarse cells.  Both grids must have flux
/// registers covering the same physical time window (the parent's last step).
void flux_correct_from_child(const Grid& child, Grid& parent);

}  // namespace enzo::mesh
