#include "mesh/interpolate.hpp"

#include "util/annotations.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/flops.hpp"

namespace enzo::mesh {

namespace {

ENZO_HOT double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::abs(a) < std::abs(b) ? a : b;
}

struct AxisMap {
  int rd = 1;        ///< per-axis refinement ratio child/parent
  std::int64_t wrap = 1;  ///< child-level domain cells (for periodic wrap)
};

/// Interpolate one field array at parent storage cell (psi,psj,psk) with
/// sub-cell offsets f[3] (each in (-0.5, 0.5)) using minmod-limited slopes.
ENZO_HOT double sample(ConstFieldView p, int psi, int psj, int psk,
                       const double f[3]) {
  const double v = p(psi, psj, psk);
  double out = v;
  const int idx[3] = {psi, psj, psk};
  const int n[3] = {p.nx(), p.ny(), p.nz()};
  for (int d = 0; d < 3; ++d) {
    if (f[d] == 0.0) continue;
    double slope = 0.0;
    const bool has_lo = idx[d] - 1 >= 0;
    const bool has_hi = idx[d] + 1 < n[d];
    auto at = [&](int delta) {
      switch (d) {
        case 0: return p(psi + delta, psj, psk);
        case 1: return p(psi, psj + delta, psk);
        default: return p(psi, psj, psk + delta);
      }
    };
    if (has_lo && has_hi)
      slope = minmod(at(1) - v, v - at(-1));
    else if (has_hi)
      slope = 0.0;  // one-sided: stay flat for monotonicity
    out += f[d] * slope;
  }
  return out;
}

/// Interpolate `child`'s cells within the half-open *local storage* region
/// [slo, shi) (storage indices into the child's arrays) from the parent.
/// time_weight in [0,1] blends parent old (0) → new (1) states.
ENZO_HOT void interpolate_region(Grid& child, const Grid& parent,
                                 const int slo[3], const int shi[3],
                                 double time_weight) {
  AxisMap ax[3];
  for (int d = 0; d < 3; ++d) {
    ENZO_REQUIRE(child.spec().level_dims[d] % parent.spec().level_dims[d] == 0,
                 "non-integer level refinement");
    ax[d].rd = static_cast<int>(child.spec().level_dims[d] /
                                parent.spec().level_dims[d]);
    ax[d].wrap = child.spec().level_dims[d];
  }
  const bool use_old = time_weight < 1.0 && parent.has_old_fields();

  for (Field f : child.field_list()) {
    if (!parent.has_field(f)) continue;
    const FieldView dst = child.field(f);
    const ConstFieldView pnew = parent.field(f);
    const ConstFieldView pold =
        use_old ? parent.old_field(f) : ConstFieldView{};
    const bool positive = is_density_like(f);

    for (int sk = slo[2]; sk < shi[2]; ++sk)
      for (int sj = slo[1]; sj < shi[1]; ++sj)
        for (int si = slo[0]; si < shi[0]; ++si) {
          const int s[3] = {si, sj, sk};
          int ps[3];
          double frac[3];
          bool ok = true;
          for (int d = 0; d < 3; ++d) {
            // Global child-level index, deliberately *unwrapped*: a ghost
            // index beyond the domain maps (by floor division) into the
            // parent's own ghost zones, which the parent-level boundary
            // pass has already filled with the periodic or outflow data.
            // Wrapping here instead would point at far-side cells the
            // single parent does not cover.
            const std::int64_t g = child.box().lo[d] + (s[d] - child.ng(d));
            const std::int64_t rd = ax[d].rd;
            const std::int64_t pcell =
                g >= 0 ? g / rd : -((-g + rd - 1) / rd);  // floor division
            const std::int64_t psd =
                pcell - parent.box().lo[d] + parent.ng(d);
            if (psd < 0 || psd >= parent.nt(d)) {
              ok = false;
              break;
            }
            ps[d] = static_cast<int>(psd);
            frac[d] = ax[d].rd == 1
                          ? 0.0
                          : (static_cast<double>(g - pcell * ax[d].rd) + 0.5) /
                                    ax[d].rd -
                                0.5;
          }
          ENZO_REQUIRE(ok, "child cell not covered by parent " +
                               parent.box().str() + " child " +
                               child.box().str());
          double v = sample(pnew, ps[0], ps[1], ps[2], frac);
          if (use_old) {
            const double vo = sample(pold, ps[0], ps[1], ps[2], frac);
            v = time_weight * v + (1.0 - time_weight) * vo;
          }
          if (positive && v <= 0.0)
            v = std::max(pnew(ps[0], ps[1], ps[2]), 1e-300);
          dst(si, sj, sk) = v;
        }
  }
  const std::int64_t cells = std::int64_t(shi[0] - slo[0]) *
                             (shi[1] - slo[1]) * (shi[2] - slo[2]);
  util::FlopCounter::global().add(
      "interpolation",
      util::flop_cost::kInterpolationPerCell * cells *
          child.field_list().size());
}

}  // namespace

void fill_ghosts_from_parent(Grid& child, const Grid& parent) {
  // Time weight from the parent's [old_time, time] bracket.
  double w = 1.0;
  if (parent.has_old_fields()) {
    const double span =
        ext::pos_to_double(parent.time() - parent.old_time());
    if (span > 0.0) {
      w = ext::pos_to_double(child.time() - parent.old_time()) / span;
      w = std::min(1.0, std::max(0.0, w));
    }
  }
  // Six ghost slabs (faces including edges/corners progressively).
  for (int d = 0; d < 3; ++d) {
    if (child.ng(d) == 0) continue;
    for (int side = 0; side < 2; ++side) {
      int slo[3], shi[3];
      for (int e = 0; e < 3; ++e) {
        // Along already-processed axes include ghosts; along later axes
        // restrict to active to avoid double work (corners are covered once).
        if (e < d) {
          slo[e] = 0;
          shi[e] = child.nt(e);
        } else if (e > d) {
          slo[e] = child.ng(e);
          shi[e] = child.ng(e) + child.nx(e);
        }
      }
      slo[d] = side == 0 ? 0 : child.ng(d) + child.nx(d);
      shi[d] = side == 0 ? child.ng(d) : child.nt(d);
      interpolate_region(child, parent, slo, shi, w);
    }
  }
}

void fill_active_from_parent(Grid& child, const Grid& parent) {
  int slo[3], shi[3];
  for (int d = 0; d < 3; ++d) {
    slo[d] = child.ng(d);
    shi[d] = child.ng(d) + child.nx(d);
  }
  interpolate_region(child, parent, slo, shi, /*time_weight=*/1.0);
}

}  // namespace enzo::mesh
