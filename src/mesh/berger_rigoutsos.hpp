#pragma once
// Berger–Rigoutsos point clustering (§3.2.2 step 2).
//
// "Rectangular regions are chosen which cover all of the refined regions,
// while attempting to minimize the number of unnecessarily refined points.
// This is done with an edge-detection algorithm from machine vision studies
// [Berger & Rigoutsos 1991]."
//
// The algorithm: take the bounding box of the flagged cells; if its filling
// efficiency is acceptable, emit it; otherwise split it at the best cut
// plane — preferentially a hole (zero of the flag signature Σ along an
// axis), otherwise the strongest inflection (sign change of the discrete
// Laplacian of the signature) — and recurse on the two halves.

#include <vector>

#include "mesh/box.hpp"

namespace enzo::mesh {

struct ClusterParams {
  double min_efficiency = 0.7;  ///< flagged / covered threshold to stop
  std::int64_t min_extent = 2;  ///< do not split boxes thinner than this
  int max_boxes = 100000;       ///< safety valve
};

/// Cluster flagged cell indices (any level's index space) into boxes.
/// Every flagged cell is covered by exactly one returned box; boxes do not
/// overlap.
std::vector<IndexBox> cluster_flags(const std::vector<Index3>& flags,
                                    const ClusterParams& params = {});

}  // namespace enzo::mesh
