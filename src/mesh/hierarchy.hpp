#pragma once
// The adaptive grid hierarchy (§3.1–3.2.2).
//
// A Hierarchy owns the tree of grids: a root level tiled by one or more
// grids, and an unbounded stack of refined levels ("no limit on the depth or
// complexity of the adaptive grid hierarchy").  RebuildHierarchy implements
// §3.2.2: flag cells on the parent level, cluster them with
// Berger–Rigoutsos, create the new grids (copying from overlapping old grids
// of the same level where possible, interpolating from parents otherwise),
// redistribute particles, and delete the old grids.
//
// A registry of GridDescriptors — the paper's "sterile objects" (§3.4) — is
// maintained per level: metadata-only replicas that every rank can hold so
// neighbour lookups never require probing other ranks.

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mesh/berger_rigoutsos.hpp"
#include "mesh/grid.hpp"

namespace enzo::mesh {

class OverlapTopology;  // mesh/topology.hpp

struct HierarchyParams {
  Index3 root_dims{32, 32, 32};
  int refine_factor = 2;
  /// 4 ghost zones: PPM's reconstruction needs 3, and its shock-flattening
  /// stencil one more for exact flux symmetry at periodic wraps.
  int nghost = 4;
  int max_level = 16;
  std::vector<Field> fields = hydro_field_list();
  bool periodic = true;  ///< root boundary: periodic, else outflow
  ClusterParams cluster;
  int flag_buffer = 1;   ///< cells of padding around flagged regions
  std::int64_t min_grid_cells = 8;  ///< discard degenerate slivers
  /// Storage pooling + incremental-regrid strategy (deck keys ArenaMode /
  /// BlockGranularity).
  ArenaOptions arena;
  /// Route overlap consumers through the regrid-cached OverlapTopology;
  /// off = the all-pairs reference scans (kept compiled for the
  /// equivalence tests and benches).  Per-hierarchy, not process-global.
  bool use_overlap_topology = true;
};

/// Sterile object: everything a remote rank needs to know about a grid in
/// order to address it, without holding its data (§3.4).
struct GridDescriptor {
  std::uint64_t id = 0;
  int level = 0;
  IndexBox box;
  int owner_rank = 0;
};

class Hierarchy {
 public:
  explicit Hierarchy(HierarchyParams params);
  ~Hierarchy();
  Hierarchy(Hierarchy&& other) noexcept;
  Hierarchy& operator=(Hierarchy&& other) noexcept;

  const HierarchyParams& params() const { return params_; }

  /// Create the root level as tiles_per_axis³ equal tiles (1 = single grid).
  void build_root(int tiles_per_axis = 1);

  /// Domain size in cells of the given level (degenerate axes stay 1).
  Index3 level_dims(int level) const;

  /// Deepest level that currently has grids.
  int deepest_level() const { return static_cast<int>(levels_.size()) - 1; }

  std::vector<Grid*> grids(int level);
  std::vector<const Grid*> grids(int level) const;
  std::size_t num_grids(int level) const;
  std::size_t total_grids() const;
  std::int64_t total_cells() const;

  /// Insert a grid at the given level (used by rebuild and by tests /
  /// static-refinement setup).  The grid's parent must already be set for
  /// level > 0.
  Grid* insert_grid(std::unique_ptr<Grid> g);

  /// Construct a grid backed by the level's storage arena (the factory the
  /// rebuild, problem setup, and checkpoint-read paths all share, so every
  /// grid in a hierarchy draws from the same recycled pools).  The caller
  /// still sets parent/time and hands the grid to insert_grid.
  [[nodiscard]] std::unique_ptr<Grid> make_grid(int level,
                                                const IndexBox& box);

  /// The storage arena for a level, created on first use.
  [[nodiscard]] std::shared_ptr<StorageArena> arena_for_level(int level);

  /// Per-hierarchy switch for the cached-topology fast paths (see
  /// HierarchyParams::use_overlap_topology); mutable so equivalence tests
  /// and benches can flip one hierarchy without global state.
  [[nodiscard]] bool use_topology() const {
    return params_.use_overlap_topology;
  }
  void set_use_topology(bool on) { params_.use_overlap_topology = on; }

  /// Flag callback: append the *global* (level index space) indices of the
  /// grid's active cells that require refinement.
  using FlagFn = std::function<void(const Grid&, std::vector<Index3>&)>;

  /// §3.2.2 RebuildHierarchy: rebuild the given level and all deeper ones.
  /// level must be >= 1 (the root is never rebuilt).
  void rebuild(int level, const FlagFn& flag);

  /// Verify structural invariants (containment, alignment, non-overlap,
  /// particle ownership); throws enzo::Error with a description on failure.
  void check_invariants() const;

  /// Sterile-object registry for one level.
  const std::vector<GridDescriptor>& descriptors(int level) const;

  /// Count of grids per level (Fig. 5 bottom-left panel).
  std::vector<std::size_t> grids_per_level() const;

  /// Estimate of computational work per level: cells × timestep ratio r^l
  /// (Fig. 5 bottom-right panel).
  std::vector<double> work_per_level() const;

  /// Convenience for building aligned subgrid specs.
  GridSpec make_spec(int level, const IndexBox& box) const;

  /// Monotonically increasing structure version, bumped by build_root,
  /// insert_grid, and rebuild.  Executor phases capture it alongside their
  /// grid-list snapshot and assert it unchanged afterwards, enforcing the
  /// invalidation contract: Grid* lists obtained before a phase stay valid
  /// throughout it, and the hierarchy is never mutated from inside one.
  std::uint64_t generation() const { return generation_; }

  /// The overlap-topology cache for the current structure generation,
  /// (re)built lazily on the first query after a mutation — i.e. once per
  /// rebuild.  Consumers fetch it *before* entering an executor phase (the
  /// hierarchy is frozen inside one, so the reference stays valid for the
  /// whole phase); the returned lists follow the same lifetime rule as any
  /// pre-phase Grid* snapshot.
  const OverlapTopology& topology() const;

  /// Generation the cached topology was built for, without (re)building it;
  /// nullopt when no topology has ever been built.  A value differing from
  /// generation() means the cache is stale — the auditor reports that as a
  /// hierarchy violation, since a consumer holding such a topology would
  /// read dead neighbor lists.
  std::optional<std::uint64_t> topology_cache_generation() const;

 private:
  void refresh_descriptors(int level);
  HierarchyParams params_;
  /// Per-level storage pools.  Grids hold a shared_ptr to their arena, so
  /// the member order relative to levels_ is not a lifetime hazard; pools
  /// outlive level deletion so a level that empties and later reappears
  /// reuses its blocks.
  std::vector<std::shared_ptr<StorageArena>> arenas_;
  std::vector<std::vector<std::unique_ptr<Grid>>> levels_;
  std::vector<std::vector<GridDescriptor>> descriptors_;
  std::uint64_t generation_ = 0;
  static constexpr std::uint64_t kNoTopology = ~std::uint64_t{0};
  mutable std::mutex topology_mu_;
  mutable std::unique_ptr<OverlapTopology> topology_;
  mutable std::atomic<std::uint64_t> topology_generation_{kNoTopology};
};

}  // namespace enzo::mesh
