#include "mesh/topology.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "mesh/grid.hpp"
#include "mesh/hierarchy.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace enzo::mesh {

namespace {

/// Proportional bin of coordinate v within [lo, lo+extent) split into nbins.
std::int64_t bin_axis(std::int64_t v, std::int64_t lo, std::int64_t extent,
                      std::int64_t nbins) {
  return ((v - lo) * nbins) / extent;
}

}  // namespace

std::array<std::vector<std::int64_t>, 3> periodic_image_shifts(
    const Index3& dims, bool periodic) {
  std::array<std::vector<std::int64_t>, 3> shifts;
  for (int d = 0; d < 3; ++d) {
    shifts[d] = {0};
    if (periodic && dims[d] > 1) {
      shifts[d].push_back(dims[d]);
      shifts[d].push_back(-dims[d]);
    }
  }
  return shifts;
}

OverlapTopology::OverlapTopology(const Hierarchy& h) { build(h); }

void OverlapTopology::build(const Hierarchy& h) {
  perf::TraceScope scope("topology/build", perf::component::kRebuild);
  static perf::Counter& builds =
      perf::Registry::global().counter("topology.builds");
  static perf::Counter& links_total =
      perf::Registry::global().counter("topology.links_cached");
  static perf::Gauge& links_gauge =
      perf::Registry::global().gauge("topology.sibling_links");
  static perf::Gauge& secs_gauge =
      perf::Registry::global().gauge("topology.last_build_seconds");
  util::Stopwatch wall;

  generation_ = h.generation();
  // Grid pointers only; the topology never mutates the hierarchy.
  Hierarchy& hh = const_cast<Hierarchy&>(h);
  const bool periodic = h.params().periodic;
  levels_.clear();
  levels_.resize(static_cast<std::size_t>(h.deepest_level() + 1));
  for (int l = 0; l < num_levels(); ++l) {
    LevelTopology& L = levels_[static_cast<std::size_t>(l)];
    L.grids = hh.grids(l);
    L.dims = h.level_dims(l);
    build_point_index(L);
    build_sibling_links(L, periodic);
    build_parent_groups(L, l);
  }

  build_seconds_ = wall.seconds();
  builds.add(1);
  links_total.add(total_links());
  links_gauge.set(static_cast<double>(total_links()));
  secs_gauge.set(build_seconds_);
}

void OverlapTopology::build_point_index(LevelTopology& L) {
  const std::size_t n = L.grids.size();
  L.bins = {1, 1, 1};
  L.bin_begin.assign(2, 0);
  L.bin_grid.clear();
  if (n == 0) {
    L.bbox = IndexBox{};
    return;
  }
  L.bbox = L.grids[0]->box();
  for (const Grid* g : L.grids)
    for (int d = 0; d < 3; ++d) {
      L.bbox.lo[d] = std::min(L.bbox.lo[d], g->box().lo[d]);
      L.bbox.hi[d] = std::max(L.bbox.hi[d], g->box().hi[d]);
    }
  // Cube-root sizing keeps a handful of grids per bin; bins cover the
  // *bounding box of the level's grids* (not the whole domain) so deep zoom
  // levels — tiny refined islands in a huge index space — still bin finely.
  const auto target =
      static_cast<std::int64_t>(std::cbrt(static_cast<double>(n))) + 1;
  for (int d = 0; d < 3; ++d)
    L.bins[d] = std::clamp<std::int64_t>(target, 1, L.bbox.extent(d));
  const std::size_t nbins =
      static_cast<std::size_t>(L.bins[0] * L.bins[1] * L.bins[2]);

  const auto bins_of_box = [&](const IndexBox& b, Index3& blo, Index3& bhi) {
    for (int d = 0; d < 3; ++d) {
      blo[d] = bin_axis(b.lo[d], L.bbox.lo[d], L.bbox.extent(d), L.bins[d]);
      bhi[d] = bin_axis(b.hi[d] - 1, L.bbox.lo[d], L.bbox.extent(d),
                        L.bins[d]);
    }
  };
  std::vector<std::uint32_t> count(nbins, 0);
  for (const Grid* g : L.grids) {
    Index3 blo, bhi;
    bins_of_box(g->box(), blo, bhi);
    for (std::int64_t bz = blo[2]; bz <= bhi[2]; ++bz)
      for (std::int64_t by = blo[1]; by <= bhi[1]; ++by)
        for (std::int64_t bx = blo[0]; bx <= bhi[0]; ++bx)
          ++count[static_cast<std::size_t>((bz * L.bins[1] + by) * L.bins[0] +
                                           bx)];
  }
  L.bin_begin.assign(nbins + 1, 0);
  for (std::size_t b = 0; b < nbins; ++b)
    L.bin_begin[b + 1] = L.bin_begin[b] + count[b];
  L.bin_grid.resize(L.bin_begin[nbins]);
  std::vector<std::uint32_t> cursor(nbins, 0);
  // Grids appended in level order, so each bin's candidate list preserves
  // grid order (point queries on corrupt, overlapping hierarchies then
  // match a first-hit linear scan).
  for (std::uint32_t i = 0; i < n; ++i) {
    Index3 blo, bhi;
    bins_of_box(L.grids[i]->box(), blo, bhi);
    for (std::int64_t bz = blo[2]; bz <= bhi[2]; ++bz)
      for (std::int64_t by = blo[1]; by <= bhi[1]; ++by)
        for (std::int64_t bx = blo[0]; bx <= bhi[0]; ++bx) {
          const auto b = static_cast<std::size_t>(
              (bz * L.bins[1] + by) * L.bins[0] + bx);
          L.bin_grid[L.bin_begin[b] + cursor[b]++] = i;
        }
  }
}

void OverlapTopology::build_sibling_links(LevelTopology& L, bool periodic) {
  const std::size_t n = L.grids.size();
  L.link_begin.assign(n + 1, 0);
  L.links.clear();
  if (n == 0) return;
  const auto shifts = periodic_image_shifts(L.dims, periodic);

  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> cands;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Grid* g = L.grids[i];
    // ghost: the nghost-grown box the boundary fill / exchange plan
    // intersect against.  wide: grown by at least one cell per
    // non-degenerate axis, so the links also cover the gravity potential
    // exchange (1-cell ghost layer) when nghost is zero; with the usual
    // nghost >= 1 the two boxes coincide.
    IndexBox ghost = g->box(), wide = g->box();
    for (int d = 0; d < 3; ++d) {
      const std::int64_t ng = g->ng(d);
      const std::int64_t w = std::max<std::int64_t>(
          ng, L.dims[d] > 1 ? 1 : 0);
      ghost.lo[d] -= ng;
      ghost.hi[d] += ng;
      wide.lo[d] -= w;
      wide.hi[d] += w;
    }
    // Gather candidate sources from the bins each shifted probe touches;
    // bin-level false positives are filtered by the exact intersection.
    ++epoch;
    cands.clear();
    for (std::int64_t kz : shifts[2])
      for (std::int64_t ky : shifts[1])
        for (std::int64_t kx : shifts[0]) {
          // src.shifted(s) meets wide  ⇔  src meets wide.shifted(-s)
          const IndexBox probe =
              wide.shifted({-kx, -ky, -kz}).intersect(L.bbox);
          if (probe.empty()) continue;
          Index3 blo, bhi;
          for (int d = 0; d < 3; ++d) {
            blo[d] = bin_axis(probe.lo[d], L.bbox.lo[d], L.bbox.extent(d),
                              L.bins[d]);
            bhi[d] = bin_axis(probe.hi[d] - 1, L.bbox.lo[d],
                              L.bbox.extent(d), L.bins[d]);
          }
          for (std::int64_t bz = blo[2]; bz <= bhi[2]; ++bz)
            for (std::int64_t by = blo[1]; by <= bhi[1]; ++by)
              for (std::int64_t bx = blo[0]; bx <= bhi[0]; ++bx) {
                const auto b = static_cast<std::size_t>(
                    (bz * L.bins[1] + by) * L.bins[0] + bx);
                for (std::size_t c = L.bin_begin[b]; c < L.bin_begin[b + 1];
                     ++c) {
                  const std::uint32_t j = L.bin_grid[c];
                  if (stamp[j] != epoch) {
                    stamp[j] = epoch;
                    cands.push_back(j);
                  }
                }
              }
        }
    std::sort(cands.begin(), cands.end());
    // Emit links in the historical all-pairs order: sources ascending in
    // level order, shifts {0,+D,-D} nested kz/ky/kx, self-zero skipped.
    for (const std::uint32_t j : cands) {
      const Grid* s = L.grids[j];
      for (std::int64_t kz : shifts[2])
        for (std::int64_t ky : shifts[1])
          for (std::int64_t kx : shifts[0]) {
            if (j == i && kx == 0 && ky == 0 && kz == 0) continue;
            const IndexBox sb = s->box().shifted({kx, ky, kz});
            if (wide.intersect(sb).empty()) continue;
            L.links.push_back({j, {kx, ky, kz}, ghost.intersect(sb)});
          }
    }
    L.link_begin[i + 1] = L.links.size();
  }
}

void OverlapTopology::build_parent_groups(LevelTopology& L, int level) {
  if (level == 0) return;
  // First-seen order, exactly the grouping the find_if consumers built.
  for (Grid* c : L.grids) {
    Grid* parent = c->parent();
    auto it = std::find_if(
        L.by_parent.begin(), L.by_parent.end(),
        [&](const ParentGroup& g) { return g.first == parent; });
    if (it == L.by_parent.end())
      L.by_parent.emplace_back(parent, std::vector<Grid*>{c});
    else
      it->second.push_back(c);
  }
}

const std::vector<Grid*>& OverlapTopology::level_grids(int level) const {
  static const std::vector<Grid*> empty;
  if (level < 0 || level >= num_levels()) return empty;
  return levels_[static_cast<std::size_t>(level)].grids;
}

OverlapTopology::SiblingRange OverlapTopology::siblings(
    int level, std::size_t ordinal) const {
  if (level < 0 || level >= num_levels()) return {nullptr, nullptr};
  const LevelTopology& L = levels_[static_cast<std::size_t>(level)];
  ENZO_REQUIRE(ordinal < L.grids.size(), "sibling query out of range");
  return {L.links.data() + L.link_begin[ordinal],
          L.links.data() + L.link_begin[ordinal + 1]};
}

const std::vector<ParentGroup>& OverlapTopology::children_by_parent(
    int level) const {
  static const std::vector<ParentGroup> empty;
  if (level < 0 || level >= num_levels()) return empty;
  return levels_[static_cast<std::size_t>(level)].by_parent;
}

Grid* OverlapTopology::grid_at(int level, const Index3& p) const {
  static perf::Counter& queries =
      perf::Registry::global().counter("topology.point_queries");
  static perf::Counter& hits =
      perf::Registry::global().counter("topology.point_hits");
  queries.add(1);
  if (level < 0 || level >= num_levels()) return nullptr;
  const LevelTopology& L = levels_[static_cast<std::size_t>(level)];
  if (L.grids.empty() || !L.bbox.contains(p)) return nullptr;
  Index3 b;
  for (int d = 0; d < 3; ++d)
    b[d] = bin_axis(p[d], L.bbox.lo[d], L.bbox.extent(d), L.bins[d]);
  const auto bin =
      static_cast<std::size_t>((b[2] * L.bins[1] + b[1]) * L.bins[0] + b[0]);
  for (std::size_t c = L.bin_begin[bin]; c < L.bin_begin[bin + 1]; ++c) {
    Grid* g = L.grids[L.bin_grid[c]];
    if (g->box().contains(p)) {
      hits.add(1);
      return g;
    }
  }
  return nullptr;
}

Grid* OverlapTopology::finest_owner(const ext::PosVec& x) const {
  for (int l = num_levels() - 1; l >= 0; --l) {
    const LevelTopology& L = levels_[static_cast<std::size_t>(l)];
    if (L.grids.empty()) continue;
    Index3 p;
    for (int d = 0; d < 3; ++d) p[d] = global_cell_index(x[d], L.dims[d]);
    if (Grid* g = grid_at(l, p)) return g;
  }
  return nullptr;
}

std::size_t OverlapTopology::total_links() const {
  std::size_t n = 0;
  for (const LevelTopology& L : levels_) n += L.links.size();
  return n;
}

}  // namespace enzo::mesh
