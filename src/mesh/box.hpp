#pragma once
// Integer index boxes.
//
// All grid alignment logic works in the integer index space of a refinement
// level (cell i of level l lives at global index offset+i, with the level's
// index space r× finer per level).  Keeping alignment in integers — with
// extended precision reserved for *positions* — is what makes subgrid
// containment and flux-face matching exact at 34 levels (§3.1: "the
// refinement factor is constrained to be an integer so that meshes can be
// aligned").

#include <array>
#include <cstdint>
#include <string>

namespace enzo::mesh {

using Index3 = std::array<std::int64_t, 3>;

/// Half-open integer box [lo, hi) in a level's global index space.
struct IndexBox {
  Index3 lo{0, 0, 0};
  Index3 hi{0, 0, 0};

  bool empty() const {
    return hi[0] <= lo[0] || hi[1] <= lo[1] || hi[2] <= lo[2];
  }
  std::int64_t extent(int d) const { return hi[d] - lo[d]; }
  std::int64_t volume() const {
    if (empty()) return 0;
    return extent(0) * extent(1) * extent(2);
  }
  bool contains(const Index3& p) const {
    for (int d = 0; d < 3; ++d)
      if (p[d] < lo[d] || p[d] >= hi[d]) return false;
    return true;
  }
  bool contains(const IndexBox& o) const {
    for (int d = 0; d < 3; ++d)
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    return true;
  }
  friend bool operator==(const IndexBox& a, const IndexBox& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  IndexBox intersect(const IndexBox& o) const {
    IndexBox r;
    for (int d = 0; d < 3; ++d) {
      r.lo[d] = lo[d] > o.lo[d] ? lo[d] : o.lo[d];
      r.hi[d] = hi[d] < o.hi[d] ? hi[d] : o.hi[d];
      if (r.hi[d] < r.lo[d]) r.hi[d] = r.lo[d];
    }
    return r;
  }

  IndexBox shifted(const Index3& s) const {
    return {{lo[0] + s[0], lo[1] + s[1], lo[2] + s[2]},
            {hi[0] + s[0], hi[1] + s[1], hi[2] + s[2]}};
  }

  IndexBox grown(std::int64_t g) const {
    return {{lo[0] - g, lo[1] - g, lo[2] - g},
            {hi[0] + g, hi[1] + g, hi[2] + g}};
  }

  /// Refine to the next level's index space (factor r per dimension).
  IndexBox refined(int r) const {
    return {{lo[0] * r, lo[1] * r, lo[2] * r},
            {hi[0] * r, hi[1] * r, hi[2] * r}};
  }

  /// Coarsen to the previous level (floor/ceil so the result covers *this).
  IndexBox coarsened(int r) const {
    auto fdiv = [](std::int64_t a, std::int64_t b) {
      return a >= 0 ? a / b : -((-a + b - 1) / b);
    };
    auto cdiv = [](std::int64_t a, std::int64_t b) {
      return a >= 0 ? (a + b - 1) / b : -((-a) / b);
    };
    return {{fdiv(lo[0], r), fdiv(lo[1], r), fdiv(lo[2], r)},
            {cdiv(hi[0], r), cdiv(hi[1], r), cdiv(hi[2], r)}};
  }

  std::string str() const {
    auto s = [](const Index3& v) {
      return "(" + std::to_string(v[0]) + "," + std::to_string(v[1]) + "," +
             std::to_string(v[2]) + ")";
    };
    return "[" + s(lo) + ".." + s(hi) + ")";
  }
};

}  // namespace enzo::mesh
