#pragma once
// Field registry for per-grid baryon data.
//
// A grid carries a configurable subset of these fields (pure-hydro tests use
// the first six; primordial-chemistry runs add the twelve species of §2.2).
// Velocities and energies are stored as specific quantities (per unit mass);
// species are stored as partial densities so that advection, projection and
// flux correction treat them as conserved passive scalars.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace enzo::mesh {

enum class Field : int {
  kDensity = 0,
  kVelocityX,
  kVelocityY,
  kVelocityZ,
  kTotalEnergy,     ///< specific total energy e + v²/2
  kInternalEnergy,  ///< specific internal energy (dual energy formalism)
  // --- the 12 primordial species (partial densities) -----------------------
  kHI,
  kHII,
  kHeI,
  kHeII,
  kHeIII,
  kElectron,  ///< electron *mass* density (n_e · m_e-scaled; see chemistry)
  kHM,        ///< H⁻
  kH2I,
  kH2II,
  kDI,
  kDII,
  kHDI,
  kCount
};

inline constexpr int kNumFields = static_cast<int>(Field::kCount);
inline constexpr int kFirstSpecies = static_cast<int>(Field::kHI);
inline constexpr int kNumSpecies = kNumFields - kFirstSpecies;

constexpr int field_index(Field f) { return static_cast<int>(f); }

constexpr std::string_view field_name(Field f) {
  constexpr std::array<std::string_view, kNumFields> names = {
      "density",     "velocity_x", "velocity_y", "velocity_z",
      "total_energy", "internal_energy",
      "HI",          "HII",        "HeI",        "HeII",
      "HeIII",       "electron",   "HM",         "H2I",
      "H2II",        "DI",         "DII",        "HDI"};
  return names[static_cast<std::size_t>(f)];
}

/// True for fields advected/projected as conserved densities.
constexpr bool is_density_like(Field f) {
  return f == Field::kDensity || field_index(f) >= kFirstSpecies;
}

/// True for mass-specific fields (converted to conserved via ×ρ).
constexpr bool is_specific(Field f) {
  return f == Field::kVelocityX || f == Field::kVelocityY ||
         f == Field::kVelocityZ || f == Field::kTotalEnergy ||
         f == Field::kInternalEnergy;
}

constexpr bool is_species(Field f) { return field_index(f) >= kFirstSpecies; }

/// The baseline six-field hydro set.
constexpr std::array<Field, 6> hydro_fields() {
  return {Field::kDensity,     Field::kVelocityX,   Field::kVelocityY,
          Field::kVelocityZ,   Field::kTotalEnergy, Field::kInternalEnergy};
}

/// hydro_fields() as a vector (the common field-list initializer).
inline std::vector<Field> hydro_field_list() {
  const auto a = hydro_fields();
  return {a.begin(), a.end()};
}

/// Hydro fields plus all twelve primordial species.
inline std::vector<Field> chemistry_field_list() {
  std::vector<Field> v = hydro_field_list();
  for (int i = kFirstSpecies; i < kNumFields; ++i)
    v.push_back(static_cast<Field>(i));
  return v;
}

}  // namespace enzo::mesh
