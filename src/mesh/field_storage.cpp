#include "mesh/field_storage.hpp"

#include <cstring>

#include "util/error.hpp"

namespace enzo::mesh {

void Buffer3::set_arena(util::Arena* a) {
  ENZO_REQUIRE(block_.ptr == nullptr,
               "Buffer3::set_arena on a non-empty buffer");
  arena_ = a;
}

void Buffer3::resize(int nx, int ny, int nz, double fill) {
  ENZO_REQUIRE(nx >= 0 && ny >= 0 && nz >= 0, "negative Buffer3 extent");
  const std::size_t n =
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
      static_cast<std::size_t>(nz);
  if (n > block_.capacity) {
    release();
    block_ = arena_ != nullptr ? arena_->acquire(n)
                               : util::Arena::heap_acquire(n);
  }
  nx_ = nx;
  ny_ = ny;
  nz_ = nz;
  if (n > 0) std::fill(block_.ptr, block_.ptr + n, fill);
}

void Buffer3::release() {
  if (block_.ptr != nullptr) {
    if (arena_ != nullptr)
      arena_->release(std::move(block_));
    else
      util::Arena::heap_release(std::move(block_));
  }
  nx_ = ny_ = nz_ = 0;
}

void Buffer3::copy_from(const Buffer3& o) {
  const std::size_t n = o.size();
  if (n > block_.capacity) {
    release();
    block_ = arena_ != nullptr ? arena_->acquire(n)
                               : util::Arena::heap_acquire(n);
  }
  nx_ = o.nx_;
  ny_ = o.ny_;
  nz_ = o.nz_;
  if (n > 0) std::memcpy(block_.ptr, o.block_.ptr, n * sizeof(double));
}

StorageArena::StorageArena(util::ArenaConfig cfg) : arena_(cfg) {}

std::vector<Particle> StorageArena::acquire_particles() {
  if (arena_.config().pool) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!particle_pool_.empty()) {
      std::vector<Particle> v = std::move(particle_pool_.back());
      particle_pool_.pop_back();
      return v;
    }
  }
  return {};
}

void StorageArena::release_particles(std::vector<Particle>&& v) {
  if (!arena_.config().pool || v.capacity() == 0) return;
  v.clear();
  std::lock_guard<std::mutex> lock(mu_);
  particle_pool_.push_back(std::move(v));
}

}  // namespace enzo::mesh
