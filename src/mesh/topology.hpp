#pragma once
// Regrid-cached overlap topology (§3.2, §3.4).
//
// Every SAMR sweep that touches neighbours — sibling ghost exchange,
// potential boundary exchange, particle re-homing, the auditor's ghost
// agreement pass, the distributed exchange planner — used to rediscover the
// same overlaps with an O(grids² × 27 periodic shifts) scan per call.  The
// hierarchy only changes at RebuildHierarchy, so the overlap structure is a
// pure function of the structure generation: compute it once per rebuild and
// let every consumer read the cached lists.
//
// Per level the cache holds:
//   (a) sibling neighbour lists — for each grid, the (source ordinal,
//       periodic-image shift) pairs with a nonempty intersection against the
//       grid's ghost-grown box, with that intersection precomputed.  Link
//       order reproduces the historical all-pairs scan exactly (sources in
//       level order, shifts enumerated {0, +dims, -dims} nested kz/ky/kx),
//       so routing a consumer through the cache preserves its overwrite
//       semantics bit for bit — the PR-3 determinism contract.
//   (b) parent↔child overlap pair lists grouped by parent, in first-seen
//       child order (the grouping flux projection and mass restriction
//       previously rebuilt with a linear find_if per child, per call).
//   (c) a uniform-bin spatial index over the level's bounding box supporting
//       point → finest-containing-grid queries (particle re-homing, ghost
//       owner lookup) without walking every grid of every level.
//
// Invalidation contract: a topology is valid for exactly one value of
// Hierarchy::generation().  Hierarchy::topology() rebuilds lazily on the
// first query after a mutation; the auditor flags a cache left stale at
// audit time as a hierarchy violation.  Grid* stored here follow the same
// lifetime rule as any pre-phase grid-list snapshot: valid until the next
// structure mutation.

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "ext/position.hpp"
#include "mesh/box.hpp"

namespace enzo::mesh {

class Grid;
class Hierarchy;

/// The periodic-image shifts to enumerate per axis when intersecting boxes
/// of the same level: {0}, plus ±dims[d] on axes where the domain is
/// periodic and wider than one cell.  This is THE guard — degenerate axes
/// (dims == 1) alias every image onto the same cell and must not be
/// shifted, and non-periodic domains have no images at all.  Historical
/// copies of this enumeration had drifted (grid.cpp's wrap_own_ghosts
/// guarded on `ng > 0`, which only coincides with `dims > 1` while nghost
/// is positive); with nghost == 0 both forms degenerate to no-op copies, so
/// unifying on this guard is behaviour-preserving.  The enumeration order
/// {0, +dims, -dims} is part of the determinism contract: consumers copy
/// overlaps in shift order and later copies overwrite earlier ones.
[[nodiscard]] std::array<std::vector<std::int64_t>, 3> periodic_image_shifts(
    const Index3& dims, bool periodic);

/// One cached sibling overlap: grid `src` (ordinal into the level's grid
/// list), shifted by `shift`, intersects the destination grid's
/// ghost-grown box in `overlap` (global, destination-frame indices).
/// `overlap` can be empty only when nghost == 0 (the link then exists for
/// the 1-cell potential ghost exchange, whose intersection consumers
/// compute against their own ghost width).
struct SiblingLink {
  std::uint32_t src = 0;
  Index3 shift{0, 0, 0};
  IndexBox overlap;
};

/// Children of one parent, in first-seen child order.
using ParentGroup = std::pair<Grid*, std::vector<Grid*>>;

class OverlapTopology {
 public:
  /// Build for the hierarchy's current structure (records generation()).
  explicit OverlapTopology(const Hierarchy& h);

  /// Hierarchy::generation() value this topology was built for.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  [[nodiscard]] int num_levels() const {
    return static_cast<int>(levels_.size());
  }

  /// The level's grids in hierarchy order (the ordinal space of SiblingLink
  /// and of siblings()).  Empty for out-of-range levels.
  [[nodiscard]] const std::vector<Grid*>& level_grids(int level) const;

  /// Iterable view over one grid's sibling links.
  struct SiblingRange {
    const SiblingLink* first;
    const SiblingLink* last;
    const SiblingLink* begin() const { return first; }
    const SiblingLink* end() const { return last; }
    std::size_t size() const { return static_cast<std::size_t>(last - first); }
  };
  [[nodiscard]] SiblingRange siblings(int level, std::size_t ordinal) const;

  /// This level's grids grouped by their parent (empty for level 0 and
  /// out-of-range levels).  A corrupt hierarchy may yield a nullptr parent
  /// group; consumers that require parents keep their own checks.
  [[nodiscard]] const std::vector<ParentGroup>& children_by_parent(
      int level) const;

  /// The grid of `level` whose active box contains global index p (already
  /// periodic-wrapped into the domain), or nullptr.  Grids of a level are
  /// disjoint, so the owner is unique; on a corrupt (overlapping) hierarchy
  /// this returns the first owner in grid order, matching a linear scan.
  [[nodiscard]] Grid* grid_at(int level, const Index3& p) const;

  /// The deepest grid of any level containing position x, or nullptr when x
  /// lies outside every grid (matches the deepest-first linear search used
  /// by particle re-homing, via the same index arithmetic as
  /// Grid::contains_position).
  [[nodiscard]] Grid* finest_owner(const ext::PosVec& x) const;

  /// Total sibling links cached across all levels.
  [[nodiscard]] std::size_t total_links() const;
  /// Wall seconds the build took (also published as a topology.* gauge).
  [[nodiscard]] double build_seconds() const { return build_seconds_; }

 private:
  struct LevelTopology {
    std::vector<Grid*> grids;
    Index3 dims{1, 1, 1};
    // (a) sibling links, CSR over grid ordinal.
    std::vector<std::size_t> link_begin;
    std::vector<SiblingLink> links;
    // (b) children grouped by parent.
    std::vector<ParentGroup> by_parent;
    // (c) uniform-bin point index over the grids' bounding box.
    IndexBox bbox;
    Index3 bins{1, 1, 1};
    std::vector<std::uint32_t> bin_begin;
    std::vector<std::uint32_t> bin_grid;
  };

  void build(const Hierarchy& h);
  void build_point_index(LevelTopology& L);
  void build_sibling_links(LevelTopology& L, bool periodic);
  static void build_parent_groups(LevelTopology& L, int level);

  std::uint64_t generation_ = 0;
  double build_seconds_ = 0.0;
  std::vector<LevelTopology> levels_;
};

}  // namespace enzo::mesh
