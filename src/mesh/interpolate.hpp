#pragma once
// Prolongation: coarse → fine data transfer (§3.2.1 step 1 of the two-step
// boundary procedure, and interior fill of newly created grids in §3.2.2
// step 3).
//
// Interpolation is cell-centered, piecewise linear with minmod-limited
// slopes per axis (monotone, and exactly conservative per coarse cell for
// density-like fields since the sub-cell offsets sum to zero).  Ghost-zone
// fills are additionally *time*-interpolated between the parent's stored old
// and new states, which is what gives the W-cycle its time-centered subgrid
// boundary conditions (Fig. 2).

#include "mesh/grid.hpp"

namespace enzo::mesh {

/// Fill every ghost cell of `child` from `parent` data, interpolating
/// linearly in time to `child.time()` when the parent carries an old state.
/// Ghost indices are wrapped periodically by the level dimensions before
/// being mapped into the parent, so domain-edge children work transparently.
/// Requires the child's active box (grown by its ghosts, after wrapping) to
/// be covered by the parent's total (ghost-inclusive) region.
void fill_ghosts_from_parent(Grid& child, const Grid& parent);

/// Fill the child's *active* region (interior) by interpolating the parent's
/// current state — used when a rebuilt hierarchy creates grids over regions
/// that were previously unrefined.
void fill_active_from_parent(Grid& child, const Grid& parent);

}  // namespace enzo::mesh
