#include "mesh/boundary.hpp"

#include "exec/executor.hpp"
#include "mesh/interpolate.hpp"
#include "mesh/topology.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/error.hpp"

namespace enzo::mesh {

void fill_outflow_ghosts(Grid& g) {
  for (Field f : g.field_list()) {
    const FieldView a = g.field(f);
    // Clamp each axis in turn; later axes see already-filled earlier ghosts.
    for (int d = 0; d < 3; ++d) {
      if (g.ng(d) == 0) continue;
      const int lo = g.ng(d), hi = g.ng(d) + g.nx(d) - 1;
      for (int k = 0; k < g.nt(2); ++k)
        for (int j = 0; j < g.nt(1); ++j)
          for (int i = 0; i < g.nt(0); ++i) {
            int idx[3] = {i, j, k};
            if (idx[d] >= lo && idx[d] <= hi) continue;
            int src[3] = {i, j, k};
            src[d] = idx[d] < lo ? lo : hi;
            a(i, j, k) = a(src[0], src[1], src[2]);
          }
    }
  }
}

void set_boundary_values(Hierarchy& h, int level, exec::LevelExecutor* ex) {
  static perf::Counter& ghost_cells =
      perf::Registry::global().counter("boundary.ghost_cells_filled");
  auto level_grids = h.grids(level);
  const Index3 dims = h.level_dims(level);
  const bool periodic = h.params().periodic;

  // Fetch the cached neighbor lists *before* entering the phase: the
  // hierarchy is frozen inside it, so the reference stays valid throughout.
  const OverlapTopology* topo =
      (h.use_topology() && !level_grids.empty()) ? &h.topology() : nullptr;

  // Grids fill independently: a task writes only its own ghost cells (its
  // interior is disjoint from every sibling's total region, shifted images
  // included) and reads parent/sibling active cells, which no task writes.
  exec::fallback(ex).for_each(
      {"set_boundary_values", perf::component::kBoundary, level},
      level_grids.size(),
      [&](std::size_t n) {
        Grid* g = level_grids[n];
        const std::uint64_t total =
            static_cast<std::uint64_t>(g->nt(0)) * g->nt(1) * g->nt(2);
        const std::uint64_t active =
            static_cast<std::uint64_t>(g->nx(0)) * g->nx(1) * g->nx(2);
        ghost_cells.add(total - active);
        // Step 1: parent interpolation (root has no parent).
        if (level > 0) {
          ENZO_REQUIRE(g->parent() != nullptr, "subgrid without parent in BC");
          fill_ghosts_from_parent(*g, *g->parent());
        } else if (!periodic) {
          fill_outflow_ghosts(*g);
        }
        // Step 2: sibling copies (highest-resolution data wins), including
        // periodic images.  For a single periodic root grid the self-copy
        // with nonzero shift implements the wrap.  The cached links replay
        // the all-pairs scan order exactly (sources ascending, shifts in
        // canonical nesting), so both branches fill bytes identically.
        if (topo != nullptr) {
          for (const SiblingLink& ln : topo->siblings(level, n)) {
            if (ln.overlap.empty()) continue;
            g->copy_from_sibling(*level_grids[ln.src], ln.shift);
          }
        } else {
          const auto shifts = periodic_image_shifts(dims, periodic);
          // enzo-lint: allow(topology-allpairs) reference cross-check path
          for (Grid* s : level_grids) {
            for (std::int64_t kz : shifts[2])
              for (std::int64_t ky : shifts[1])
                for (std::int64_t kx : shifts[0]) {
                  if (s == g && kx == 0 && ky == 0 && kz == 0) continue;
                  g->copy_from_sibling(*s, {kx, ky, kz});
                }
          }
        }
      },
      [&](std::size_t n) {
        const Grid* g = level_grids[n];
        return static_cast<std::uint64_t>(g->nt(0)) * g->nt(1) * g->nt(2);
      });
}

}  // namespace enzo::mesh
