#include "mesh/project.hpp"

#include <cmath>

#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace enzo::mesh {

namespace {
void axis_ratios(const Grid& child, const Grid& parent, int rd[3]) {
  for (int d = 0; d < 3; ++d) {
    ENZO_REQUIRE(child.spec().level_dims[d] % parent.spec().level_dims[d] == 0,
                 "non-integer level refinement");
    rd[d] = static_cast<int>(child.spec().level_dims[d] /
                             parent.spec().level_dims[d]);
  }
}

/// Coarsen a child box with per-axis ratios (degenerate axes have ratio 1).
IndexBox coarsen_per_axis(const IndexBox& b, const int rd[3]) {
  IndexBox r;
  for (int d = 0; d < 3; ++d) {
    r.lo[d] = b.lo[d] / rd[d];
    r.hi[d] = (b.hi[d] + rd[d] - 1) / rd[d];
  }
  return r;
}
}  // namespace

ENZO_HOT std::int64_t project_to_parent(const Grid& child, Grid& parent) {
  ENZO_REQUIRE(child.level() == parent.level() + 1,
               "projection requires a direct parent");
  int rd[3];
  axis_ratios(child, parent, rd);
  const IndexBox cover =
      coarsen_per_axis(child.box(), rd).intersect(parent.box());
  if (cover.empty()) return 0;
  const double inv_nf = 1.0 / (static_cast<double>(rd[0]) * rd[1] * rd[2]);

  // Precompute fine-cell volume averages of density first (needed for the
  // mass weighting of specific fields).
  const ConstFieldView crho = child.field(Field::kDensity);

  for (std::int64_t pk = cover.lo[2]; pk < cover.hi[2]; ++pk)
    for (std::int64_t pj = cover.lo[1]; pj < cover.hi[1]; ++pj)
      for (std::int64_t pi = cover.lo[0]; pi < cover.hi[0]; ++pi) {
        // Child storage index of the first covered fine cell.
        const int ci0 =
            static_cast<int>(pi * rd[0] - child.box().lo[0]) + child.ng(0);
        const int cj0 =
            static_cast<int>(pj * rd[1] - child.box().lo[1]) + child.ng(1);
        const int ck0 =
            static_cast<int>(pk * rd[2] - child.box().lo[2]) + child.ng(2);
        const int psi = static_cast<int>(pi - parent.box().lo[0]) + parent.ng(0);
        const int psj = static_cast<int>(pj - parent.box().lo[1]) + parent.ng(1);
        const int psk = static_cast<int>(pk - parent.box().lo[2]) + parent.ng(2);

        double rho_sum = 0.0;
        for (int ck = 0; ck < rd[2]; ++ck)
          for (int cj = 0; cj < rd[1]; ++cj)
            for (int ci = 0; ci < rd[0]; ++ci)
              rho_sum += crho(ci0 + ci, cj0 + cj, ck0 + ck);
        const double rho_avg = rho_sum * inv_nf;

        for (Field f : parent.field_list()) {
          if (!child.has_field(f)) continue;
          const auto& ca = child.field(f);
          double v;
          if (f == Field::kDensity) {
            v = rho_avg;
          } else if (is_specific(f)) {
            double wsum = 0.0;
            for (int ck = 0; ck < rd[2]; ++ck)
              for (int cj = 0; cj < rd[1]; ++cj)
                for (int ci = 0; ci < rd[0]; ++ci)
                  wsum += crho(ci0 + ci, cj0 + cj, ck0 + ck) *
                          ca(ci0 + ci, cj0 + cj, ck0 + ck);
            v = rho_sum > 0.0 ? wsum / rho_sum : 0.0;
          } else {  // density-like passive scalar
            double sum = 0.0;
            for (int ck = 0; ck < rd[2]; ++ck)
              for (int cj = 0; cj < rd[1]; ++cj)
                for (int ci = 0; ci < rd[0]; ++ci)
                  sum += ca(ci0 + ci, cj0 + cj, ck0 + ck);
            v = sum * inv_nf;
          }
          parent.field(f)(psi, psj, psk) = v;
        }
      }
  util::FlopCounter::global().add(
      "projection", util::flop_cost::kProjectionPerCell * cover.volume() *
                        parent.field_list().size() * rd[0] * rd[1] * rd[2]);
  return cover.volume();
}

void flux_correct_from_child(const Grid& child, Grid& parent) {
  // The child's *boundary registers* hold fluxes integrated over all of its
  // subcycles inside the parent's last step — the same window as the
  // parent's per-step flux arrays.
  if (!child.has_boundary_fluxes() || !parent.has_fluxes()) return;
  int rd[3];
  axis_ratios(child, parent, rd);

  // Conserved scratch per field id.
  const auto& plist = parent.field_list();

  for (int d = 0; d < 3; ++d) {
    if (parent.spec().level_dims[d] == 1) continue;
    const int e1 = (d + 1) % 3, e2 = (d + 2) % 3;
    ENZO_REQUIRE(child.box().lo[d] % rd[d] == 0 &&
                     child.box().hi[d] % rd[d] == 0,
                 "child box not aligned to parent cells");
    const IndexBox ccover = coarsen_per_axis(child.box(), rd);
    const double inv_area = 1.0 / (static_cast<double>(rd[e1]) * rd[e2]);

    for (int side = 0; side < 2; ++side) {
      const std::int64_t face_c =
          side == 0 ? child.box().lo[d] / rd[d] : child.box().hi[d] / rd[d];
      // Coarse cell just outside the child across this face.
      const std::int64_t out_c = side == 0 ? face_c - 1 : face_c;
      if (out_c < parent.box().lo[d] || out_c >= parent.box().hi[d])
        continue;  // outside this parent: documented skip (sibling's cell)

      for (std::int64_t p2 = ccover.lo[e2]; p2 < ccover.hi[e2]; ++p2)
        for (std::int64_t p1 = ccover.lo[e1]; p1 < ccover.hi[e1]; ++p1) {
          // Parent storage indices for the outside cell and the flux face.
          std::int64_t pc[3];
          pc[d] = out_c;
          pc[e1] = p1;
          pc[e2] = p2;
          int ps[3], pf[3];
          bool in_parent = true;
          for (int e = 0; e < 3; ++e) {
            const std::int64_t s = pc[e] - parent.box().lo[e];
            if (s < 0 || s >= parent.nx(e)) in_parent = false;
            ps[e] = static_cast<int>(s) + parent.ng(e);
          }
          if (!in_parent) continue;
          pf[0] = ps[0];
          pf[1] = ps[1];
          pf[2] = ps[2];
          // The face array stores the lower face of each cell: for side==0
          // the shared face is the upper face of out_c (index out_c+1); for
          // side==1 it is the lower face of out_c.
          if (side == 0) pf[d] += 1;

          // Fine flux average over the r_e1 × r_e2 fine faces on this face
          // (boundary-register planes: extent 1 along d).
          const int c1_0 =
              static_cast<int>(p1 * rd[e1] - child.box().lo[e1]) + child.ng(e1);
          const int c2_0 =
              static_cast<int>(p2 * rd[e2] - child.box().lo[e2]) + child.ng(e2);

          // Gather conserved state of the outside parent cell.
          const double rho = parent.field(Field::kDensity)(ps[0], ps[1], ps[2]);
          double cons[kNumFields];
          for (Field f : plist) {
            const double q = parent.field(f)(ps[0], ps[1], ps[2]);
            cons[field_index(f)] = is_specific(f) ? rho * q : q;
          }

          const double inv_dxp = 1.0 / parent.cell_width_d(d);
          const double sign = side == 0 ? -1.0 : 1.0;
          // Does the corrected face lie on the parent's own boundary?  Then
          // the parent's boundary register (feeding the grandparent's
          // correction) must absorb the improvement too.
          const int pside = pf[d] == parent.ng(d)
                                ? 0
                                : (pf[d] == parent.ng(d) + parent.nx(d) ? 1
                                                                        : -1);
          for (Field f : plist) {
            if (!child.has_field(f)) continue;
            const auto& cbf = child.boundary_flux(f, d, side);
            double fine = 0.0;
            for (int c2 = 0; c2 < rd[e2]; ++c2)
              for (int c1 = 0; c1 < rd[e1]; ++c1) {
                int ci[3];
                ci[d] = 0;
                ci[e1] = c1_0 + c1;
                ci[e2] = c2_0 + c2;
                fine += cbf(ci[0], ci[1], ci[2]);
              }
            fine *= inv_area;
            const FieldView pflux = parent.flux(f, d);
            const double coarse = pflux(pf[0], pf[1], pf[2]);
            cons[field_index(f)] += sign * (fine - coarse) * inv_dxp;
            // Propagate the improved flux upward for the grandparent's own
            // correction step.
            pflux(pf[0], pf[1], pf[2]) = fine;
            if (pside >= 0 && parent.has_boundary_fluxes()) {
              int pb[3];
              pb[d] = 0;
              pb[e1] = ps[e1];
              pb[e2] = ps[e2];
              parent.boundary_flux(f, d, pside)(pb[0], pb[1], pb[2]) +=
                  fine - coarse;
            }
          }

          // Scatter back, guarding against a pathological negative density.
          const double rho_new = cons[field_index(Field::kDensity)];
          if (rho_new <= 0.0) continue;
          for (Field f : plist) {
            double v = cons[field_index(f)];
            if (is_specific(f)) v /= rho_new;
            // Same positivity policy as the sweep's species update: a
            // correction on a near-zero abundance must not drive it negative
            // (interpolation would clamp any child back to ≥ 0, leaving a
            // permanent parent/child projection mismatch).
            if (is_species(f)) v = std::max(v, 0.0);
            parent.field(f)(ps[0], ps[1], ps[2]) = v;
          }
        }
    }
  }
}

}  // namespace enzo::mesh
