#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "chemistry/chemistry.hpp"
#include "exec/executor.hpp"
#include "chemistry/rates.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/constants.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace enzo::chemistry {

using mesh::Field;
using mesh::Grid;

namespace {

/// Indices into the per-cell species workspace (number densities, cm⁻³).
enum Sp {
  sHI, sHII, sHeI, sHeII, sHeIII, sE, sHM, sH2, sH2p, sDI, sDII, sHD, kNsp
};

constexpr Field kSpeciesField[kNsp] = {
    Field::kHI, Field::kHII, Field::kHeI,  Field::kHeII,
    Field::kHeIII, Field::kElectron, Field::kHM, Field::kH2I,
    Field::kH2II, Field::kDI, Field::kDII, Field::kHDI};

/// Atomic mass numbers (electron stored with A=1 by convention: its field
/// holds n_e in proton-mass units, so charge sums are direct).
constexpr double kA[kNsp] = {1, 1, 4, 4, 4, 1, 1, 2, 2, 2, 2, 3};

double charge_sum(const double n[kNsp]) {
  return n[sHII] + n[sHeII] + 2.0 * n[sHeIII] + n[sDII] + n[sH2p] - n[sHM];
}

/// Mean molecular weight from number densities.
double mu_of(const double n[kNsp]) {
  double ntot = 0, rho = 0;
  for (int s = 0; s < kNsp; ++s) {
    ntot += n[s];
    rho += n[s] * kA[s];
  }
  // Electrons carry negligible mass; their A=1 bookkeeping convention would
  // overcount, so subtract it from the mass sum.
  rho -= n[sE] * 1.0;
  return ntot > 0 ? rho / ntot : 1.0;
}

double temperature_of(double e_cgs_specific, const double n[kNsp],
                      double gamma) {
  const double mu = mu_of(n);
  return std::max((gamma - 1.0) * e_cgs_specific * mu *
                      constants::kHydrogenMass / constants::kBoltzmann,
                  1e-3);
}

/// One backward-Euler (linearized) species update: n ← (n + dt·C)/(1 + dt·D).
double bdf(double n, double c, double d, double dt) {
  const double out = (n + dt * c) / (1.0 + dt * d);
  return std::max(out, 0.0);
}

struct CellState {
  double n[kNsp];
  double e;  // specific internal energy, erg/g
};

/// One subcycle for one cell, given its pre-evaluated temperature, rate row,
/// and cooling rate Λ (the lockstep driver batches those over a whole row of
/// cells before stepping each one).  `dt_remaining` = dt_s − t for this cell.
/// Returns the dt actually taken.
ENZO_HOT double subcycle_cell(CellState& st, const Rates& r, double lambda,
                              double dt_remaining, double dt_s, double nH_tot,
                              double nHe_tot, double nD_tot, double rho_cgs,
                              const ChemistryParams& prm) {
  double* n = st.n;
  // ---- electron / H₂ / energy derivatives for subcycle control ------------
  const double edot = -lambda / rho_cgs;  // erg/g/s
  const double ne_dot =
      r.k1 * n[sHI] * n[sE] - r.k2 * n[sHII] * n[sE] +
      r.k3 * n[sHeI] * n[sE] - r.k4 * n[sHeII] * n[sE] +
      r.k5 * n[sHeII] * n[sE] - r.k6 * n[sHeIII] * n[sE];
  // A-priori H₂ rate: the sequential-implicit update can falsely
  // equilibrate H₂ against destruction channels whose reactants would be
  // exhausted within the step (e.g. the tiny D reservoir), so the H₂
  // relative change per subcycle must be bounded too.
  const double h2_dot =
      r.k8 * n[sHM] * n[sHI] + r.k10 * n[sH2p] * n[sHI] +
      r.k22 * n[sHI] * n[sHI] * n[sHI] -
      (r.k11 * n[sHII] + r.k12 * n[sE] + r.k13 * n[sHI]) * n[sH2];
  double dt_sub = dt_remaining;
  if (std::abs(ne_dot) > 0)
    dt_sub = std::min(dt_sub, prm.accuracy * (n[sE] + 1e-6 * nH_tot) /
                                  std::abs(ne_dot));
  if (std::abs(h2_dot) > 0)
    dt_sub = std::min(dt_sub, prm.accuracy * (n[sH2] + 1e-3 * nH_tot) /
                                  std::abs(h2_dot));
  if (std::abs(edot) > 0)
    dt_sub = std::min(dt_sub, prm.accuracy * st.e / std::abs(edot));
  dt_sub = std::max(dt_sub, dt_s / prm.max_subcycles);
  dt_sub = std::min(dt_sub, dt_remaining);
  {

    // ---- sequential implicit updates (production C, destruction freq D) ---
    // Helium first (decoupled from the H₂ network).
    n[sHeI] = bdf(n[sHeI], r.k4 * n[sHeII] * n[sE], r.k3 * n[sE], dt_sub);
    n[sHeII] = bdf(n[sHeII], r.k3 * n[sHeI] * n[sE] + r.k6 * n[sHeIII] * n[sE],
                   (r.k4 + r.k5) * n[sE], dt_sub);
    n[sHeIII] = bdf(n[sHeIII], r.k5 * n[sHeII] * n[sE], r.k6 * n[sE], dt_sub);

    // Hydrogen ionization balance.
    {
      const double cHI = r.k2 * n[sHII] * n[sE] +
                         2.0 * r.k12 * n[sH2] * n[sE] +
                         3.0 * r.k13 * n[sH2] * n[sHI] +
                         r.k14 * n[sHM] * n[sE] +
                         2.0 * r.k15 * n[sHM] * n[sHI] +
                         2.0 * r.k16 * n[sHM] * n[sHII] +
                         2.0 * r.k18 * n[sH2p] * n[sE] +
                         r.k19 * n[sH2p] * n[sHM] +
                         r.k11 * n[sH2] * n[sHII] +
                         r.k51 * n[sDI] * n[sHII] + r.k54 * n[sDI] * n[sH2];
      const double dHI = r.k1 * n[sE] + r.k7 * n[sE] + r.k8 * n[sHM] +
                         r.k9 * n[sHII] + r.k10 * n[sH2p] +
                         r.k13 * n[sH2] + r.k15 * n[sHM] +
                         2.0 * r.k22 * n[sHI] * n[sHI] +
                         r.k50 * n[sDII] + r.k55 * n[sHD];
      n[sHI] = bdf(n[sHI], cHI, dHI, dt_sub);
    }
    {
      const double cHII = r.k1 * n[sHI] * n[sE] + r.k10 * n[sH2p] * n[sHI] +
                          r.k50 * n[sDII] * n[sHI];
      const double dHII = r.k2 * n[sE] + r.k9 * n[sHI] + r.k11 * n[sH2] +
                          (r.k16 + r.k17) * n[sHM] + r.k51 * n[sDI] +
                          r.k53 * n[sHD];
      n[sHII] = bdf(n[sHII], cHII, dHII, dt_sub);
    }

    // Fast intermediaries: H⁻ and H₂⁺ (near equilibrium at low density —
    // the implicit update handles both regimes).
    n[sHM] = bdf(n[sHM], r.k7 * n[sHI] * n[sE],
                 r.k8 * n[sHI] + r.k14 * n[sE] + r.k15 * n[sHI] +
                     (r.k16 + r.k17) * n[sHII] + r.k19 * n[sH2p],
                 dt_sub);
    n[sH2p] = bdf(n[sH2p],
                  r.k9 * n[sHI] * n[sHII] + r.k11 * n[sH2] * n[sHII] +
                      r.k17 * n[sHM] * n[sHII],
                  r.k10 * n[sHI] + r.k18 * n[sE] + r.k19 * n[sHM], dt_sub);

    // Molecular hydrogen (incl. three-body formation, §4's 10⁹ cm⁻³ regime).
    // The deuterium-exchange reactions (k52–k55) are deliberately excluded
    // here: the D reservoir is ~4×10⁻⁵ of H by mass, so their *net* effect
    // on H₂ is negligible, while including them lets the lagged HD/D ratio
    // pin H₂ to a false equilibrium in the linearized update.  They do
    // appear in the D/HD updates below, where H₂ acts as a reservoir.
    n[sH2] = bdf(n[sH2],
                 r.k8 * n[sHM] * n[sHI] + r.k10 * n[sH2p] * n[sHI] +
                     r.k19 * n[sH2p] * n[sHM] +
                     r.k22 * n[sHI] * n[sHI] * n[sHI],
                 r.k11 * n[sHII] + r.k12 * n[sE] + r.k13 * n[sHI],
                 dt_sub);

    // Deuterium.
    n[sDI] = bdf(n[sDI],
                 r.k50 * n[sDII] * n[sHI] + r.k55 * n[sHD] * n[sHI] +
                     r.k56 * n[sDII] * n[sE],
                 r.k51 * n[sHII] + r.k54 * n[sH2] + r.k57 * n[sE], dt_sub);
    n[sDII] = bdf(n[sDII],
                  r.k51 * n[sDI] * n[sHII] + r.k53 * n[sHD] * n[sHII] +
                      r.k57 * n[sDI] * n[sE],
                  r.k50 * n[sHI] + r.k52 * n[sH2] + r.k56 * n[sE], dt_sub);
    n[sHD] = bdf(n[sHD],
                 r.k52 * n[sDII] * n[sH2] + r.k54 * n[sDI] * n[sH2],
                 r.k53 * n[sHII] + r.k55 * n[sHI], dt_sub);

    // ---- conservation repairs ----------------------------------------------
    // Hydrogen nuclei.
    {
      const double sum =
          n[sHI] + n[sHII] + n[sHM] + 2.0 * (n[sH2] + n[sH2p]) + n[sHD];
      if (sum > 0) {
        const double f = nH_tot / sum;
        n[sHI] *= f;
        n[sHII] *= f;
        n[sHM] *= f;
        n[sH2] *= f;
        n[sH2p] *= f;
      }
    }
    // Helium nuclei.
    {
      const double sum = n[sHeI] + n[sHeII] + n[sHeIII];
      if (sum > 0) {
        const double f = nHe_tot / sum;
        n[sHeI] *= f;
        n[sHeII] *= f;
        n[sHeIII] *= f;
      }
    }
    // Deuterium nuclei.
    {
      const double sum = n[sDI] + n[sDII] + n[sHD];
      if (sum > 0) {
        const double f = nD_tot / sum;
        n[sDI] *= f;
        n[sDII] *= f;
        n[sHD] *= f;
      }
    }
    // Electrons by charge conservation.
    n[sE] = std::max(charge_sum(n), 1e-20 * nH_tot);

    // ---- energy -----------------------------------------------------------
    if (prm.cooling && st.e > 0.0) {
      // Semi-implicit: exact exponential decay of the instantaneous rate.
      const double k = lambda / (rho_cgs * st.e);  // 1/s (signed)
      if (k * dt_sub > 1e-8)
        st.e *= std::exp(-k * dt_sub);
      else
        st.e -= dt_sub * lambda / rho_cgs;
      // Temperature floor.
      const double mu = mu_of(n);
      const double e_floor = prm.temperature_floor * constants::kBoltzmann /
                             ((prm.gamma - 1.0) * mu *
                              constants::kHydrogenMass);
      st.e = std::max(st.e, e_floor);
    }
  }
  return dt_sub;
}

/// Per-thread workspace for the row-lockstep solver: the row's cell states
/// plus the SoA lanes that feed RateBatch / cooling_rate_batch.  Lives in a
/// thread_local so capacity is reused across rows and steps.
struct RowScratch {
  std::vector<CellState> st;
  std::vector<double> t, e0, rho_cgs;   // per-cell time, initial e, density
  std::vector<double> nH_tot, nHe_tot, nD_tot;  // conserved nuclei sums
  std::vector<int> cycles;
  std::vector<int> active, next_active;  // cells still integrating
  // Lockstep lanes, indexed by position in `active`.
  std::vector<double> T, lambda;
  std::vector<double> nHI, nHII, nHeI, nHeII, nHeIII, ne, nH2, nHD;
  RateBatch rates;

  void reshape(int nx) {
    const auto un = static_cast<std::size_t>(nx);
    st.resize(un);
    t.resize(un);
    e0.resize(un);
    rho_cgs.resize(un);
    nH_tot.resize(un);
    nHe_tot.resize(un);
    nD_tot.resize(un);
    cycles.resize(un);
    active.reserve(un);
    next_active.reserve(un);
    T.resize(un);
    lambda.resize(un);
    nHI.resize(un);
    nHII.resize(un);
    nHeI.resize(un);
    nHeII.resize(un);
    nHeIII.resize(un);
    ne.resize(un);
    nH2.resize(un);
    nHD.resize(un);
  }
};

/// Advance every cell of one gathered row by dt_s seconds in lockstep rounds:
/// gather the temperatures of the still-active cells, evaluate all reaction
/// rates and cooling terms for the whole row at once (batched exp/pow lanes),
/// then take one scalar subcycle per cell.  Per-cell numerics are identical
/// to the historical cell-at-a-time loop — only the evaluation order across
/// cells changes, and each cell's subcycle sequence is untouched.
int advance_row(RowScratch& ws, int nx, double dt_s,
                const ChemistryParams& prm, double t_cmb) {
  ws.active.clear();
  for (int i = 0; i < nx; ++i) {
    ws.t[i] = 0.0;
    ws.cycles[i] = 0;
    const double* n = ws.st[i].n;
    ws.nH_tot[i] =
        n[sHI] + n[sHII] + n[sHM] + 2.0 * (n[sH2] + n[sH2p]) + n[sHD];
    ws.nHe_tot[i] = n[sHeI] + n[sHeII] + n[sHeIII];
    ws.nD_tot[i] = n[sDI] + n[sDII] + n[sHD];
    if (ws.t[i] < dt_s && prm.max_subcycles > 0) ws.active.push_back(i);
  }
  int total = 0;
  while (!ws.active.empty()) {
    const int m = static_cast<int>(ws.active.size());
    for (int a = 0; a < m; ++a) {
      const CellState& st = ws.st[ws.active[a]];
      ws.T[a] = temperature_of(st.e, st.n, prm.gamma);
    }
    ws.rates.compute(m, ws.T.data());
    if (prm.cooling) {
      for (int a = 0; a < m; ++a) {
        const double* n = ws.st[ws.active[a]].n;
        ws.nHI[a] = n[sHI];
        ws.nHII[a] = n[sHII];
        ws.nHeI[a] = n[sHeI];
        ws.nHeII[a] = n[sHeII];
        ws.nHeIII[a] = n[sHeIII];
        ws.ne[a] = n[sE];
        ws.nH2[a] = n[sH2];
        ws.nHD[a] = n[sHD];
      }
      const CoolingRowInput cri{t_cmb,          ws.T.data(),
                                ws.nHI.data(),  ws.nHII.data(),
                                ws.nHeI.data(), ws.nHeII.data(),
                                ws.nHeIII.data(), ws.ne.data(),
                                ws.nH2.data(),  ws.nHD.data()};
      cooling_rate_batch(m, cri, ws.lambda.data());
    } else {
      std::fill(ws.lambda.begin(), ws.lambda.begin() + m, 0.0);
    }
    ws.next_active.clear();
    for (int a = 0; a < m; ++a) {
      const int i = ws.active[a];
      ++ws.cycles[i];
      ++total;
      const double dt_sub = subcycle_cell(
          ws.st[i], ws.rates.row(a), ws.lambda[a], dt_s - ws.t[i], dt_s,
          ws.nH_tot[i], ws.nHe_tot[i], ws.nD_tot[i], ws.rho_cgs[i], prm);
      ws.t[i] += dt_sub;
      if (ws.t[i] < dt_s && ws.cycles[i] < prm.max_subcycles)
        ws.next_active.push_back(i);
    }
    std::swap(ws.active, ws.next_active);
  }
  return total;
}

}  // namespace

ENZO_UNITS_BOUNDARY ChemUnits ChemUnits::from(
    const cosmology::CodeUnits& u, double a) {
  ChemUnits c;
  c.rho_cgs = u.density_cgs / (a * a * a);
  c.n_factor = c.rho_cgs / constants::kHydrogenMass;
  c.e_cgs = u.velocity_cgs() * u.velocity_cgs();
  c.time_s = u.time_s;
  c.t_cmb = constants::kTcmb0 / a;
  return c;
}

void solve_chemistry_step(Grid& g, double dt, const ChemistryParams& params,
                          const ChemUnits& units, exec::LevelExecutor* ex) {
  ENZO_REQUIRE(g.has_field(Field::kH2I), "chemistry fields not allocated");
  perf::TraceScope scope("network", perf::component::kChemistry, g.level());
  const double dt_s = dt * units.time_s;
  const mesh::ConstFieldView rho = g.field(Field::kDensity);
  const mesh::FieldView eint = g.field(Field::kInternalEnergy);
  const mesh::FieldView etot = g.field(Field::kTotalEnergy);
  // Species views hoisted out of the cell loops (the by-name lookup is a map
  // probe; twelve of them per cell dominated the gather cost).
  std::vector<mesh::FieldView> species;
  species.reserve(kNsp);
  for (const Field f : kSpeciesField) species.push_back(g.field(f));
  // Cells are independent; rows of cells are chunked through the executor
  // (replacing the old OpenMP pragma).  Each row is gathered into an SoA
  // workspace and advanced in lockstep so the rate/cooling transcendentals
  // run over whole-row lanes; per-cell subcycle numerics are unchanged, so
  // results do not depend on which thread handles a row.  The subcycle tally
  // is an integer sum — commutative, so the atomic accumulation stays
  // deterministic at any thread count.
  std::atomic<std::int64_t> subcycles{0};
  const int ni = g.nx(0);
  const auto nj = static_cast<std::size_t>(g.nx(1));
  const auto nk = static_cast<std::size_t>(g.nx(2));
  exec::maybe_parallel_for(
      ex, nk * nj, 1, [&](std::size_t row_begin, std::size_t row_end) {
    thread_local RowScratch ws;
    ws.reshape(ni);
    std::int64_t local_subcycles = 0;
    for (std::size_t row = row_begin; row < row_end; ++row) {
      const int k = static_cast<int>(row / nj);
      const int j = static_cast<int>(row % nj);
      const int sj = g.sy(j), sk = g.sz(k);
      for (int i = 0; i < ni; ++i) {
        const int si = g.sx(i);
        CellState& st = ws.st[i];
        for (int s = 0; s < kNsp; ++s)
          st.n[s] = std::max(species[s](si, sj, sk), 0.0) *
                    units.n_factor / kA[s];
        st.e = eint(si, sj, sk) * units.e_cgs;
        ws.e0[i] = st.e;
        ws.rho_cgs[i] = rho(si, sj, sk) * units.rho_cgs;
      }
      local_subcycles += advance_row(ws, ni, dt_s, params, units.t_cmb);
      for (int i = 0; i < ni; ++i) {
        const int si = g.sx(i);
        const CellState& st = ws.st[i];
        for (int s = 0; s < kNsp; ++s)
          species[s](si, sj, sk) = st.n[s] * kA[s] / units.n_factor;
        const double de_code = (st.e - ws.e0[i]) / units.e_cgs;
        eint(si, sj, sk) += de_code;
        etot(si, sj, sk) += de_code;
      }
    }
    subcycles.fetch_add(local_subcycles, std::memory_order_relaxed);
  });
  static perf::Counter& subcycle_counter =
      perf::Registry::global().counter("chemistry.subcycles");
  const auto total_subcycles =
      static_cast<std::uint64_t>(subcycles.load(std::memory_order_relaxed));
  subcycle_counter.add(total_subcycles);
  // The measured subcycle count replaces the old fixed ×10 estimate.
  util::FlopCounter::global().add(
      "chemistry",
      util::flop_cost::kChemistryPerCellPerSubcycle * total_subcycles);
}

double cell_mu(const Grid& g, int si, int sj, int sk) {
  double n[kNsp];
  for (int s = 0; s < kNsp; ++s)
    n[s] = std::max(g.field(kSpeciesField[s])(si, sj, sk), 0.0) / kA[s];
  return mu_of(n);
}

double cell_temperature(const Grid& g, int si, int sj, int sk,
                        const ChemistryParams& params,
                        const ChemUnits& units) {
  double n[kNsp];
  for (int s = 0; s < kNsp; ++s)
    n[s] = std::max(g.field(kSpeciesField[s])(si, sj, sk), 0.0) *
           units.n_factor / kA[s];
  const double e = g.field(Field::kInternalEnergy)(si, sj, sk) * units.e_cgs;
  return temperature_of(e, n, params.gamma);
}

void initialize_primordial_composition(Grid& g, const ChemistryParams& params,
                                       double x_e, double f_h2) {
  const mesh::ConstFieldView rho = g.field(Field::kDensity);
  const double X = params.hydrogen_fraction;
  const double Y = 1.0 - X;
  const double fD = params.deuterium_fraction;
  for (int k = 0; k < g.nt(2); ++k)
    for (int j = 0; j < g.nt(1); ++j)
      for (int i = 0; i < g.nt(0); ++i) {
        const double r = rho(i, j, k);
        const double rH = X * r;
        g.field(Field::kH2I)(i, j, k) = f_h2 * rH;
        g.field(Field::kHII)(i, j, k) = x_e * rH;
        g.field(Field::kHI)(i, j, k) = (1.0 - x_e - f_h2) * rH;
        g.field(Field::kHM)(i, j, k) = 1e-12 * rH;
        g.field(Field::kH2II)(i, j, k) = 1e-12 * rH;
        g.field(Field::kHeI)(i, j, k) = Y * r;
        g.field(Field::kHeII)(i, j, k) = 1e-12 * Y * r;
        g.field(Field::kHeIII)(i, j, k) = 1e-14 * Y * r;
        g.field(Field::kDI)(i, j, k) = (1.0 - x_e) * fD * rH;
        g.field(Field::kDII)(i, j, k) = x_e * fD * rH;
        g.field(Field::kHDI)(i, j, k) = 1e-8 * fD * rH;
        // Electron field in proton-mass units = n_e · m_H.
        g.field(Field::kElectron)(i, j, k) =
            x_e * rH + 1e-12 * Y * r / 4.0;
      }
}

double min_cooling_time(const Grid& g, const ChemistryParams& params,
                        const ChemUnits& units) {
  double tmin = std::numeric_limits<double>::max();
  for (int k = 0; k < g.nx(2); ++k)
    for (int j = 0; j < g.nx(1); ++j)
      for (int i = 0; i < g.nx(0); ++i) {
        const int si = g.sx(i), sj = g.sy(j), sk = g.sz(k);
        double n[kNsp];
        for (int s = 0; s < kNsp; ++s)
          n[s] = std::max(g.field(kSpeciesField[s])(si, sj, sk), 0.0) *
                 units.n_factor / kA[s];
        const double e =
            g.field(Field::kInternalEnergy)(si, sj, sk) * units.e_cgs;
        const double T = temperature_of(e, n, params.gamma);
        CoolingInput ci{T, units.t_cmb, n[sHI], n[sHII], n[sHeI], n[sHeII],
                        n[sHeIII], n[sE], n[sH2], n[sHD]};
        const double lambda = cooling_rate(ci);
        if (lambda <= 0) continue;
        const double rho_cgs =
            g.field(Field::kDensity)(si, sj, sk) * units.rho_cgs;
        const double tc = rho_cgs * e / lambda / units.time_s;
        tmin = std::min(tmin, tc);
      }
  return tmin;
}

}  // namespace enzo::chemistry
