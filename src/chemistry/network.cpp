#include <algorithm>
#include <atomic>
#include <cmath>

#include "chemistry/chemistry.hpp"
#include "exec/executor.hpp"
#include "chemistry/rates.hpp"
#include "perf/metrics.hpp"
#include "perf/trace.hpp"
#include "util/constants.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace enzo::chemistry {

using mesh::Field;
using mesh::Grid;

namespace {

/// Indices into the per-cell species workspace (number densities, cm⁻³).
enum Sp {
  sHI, sHII, sHeI, sHeII, sHeIII, sE, sHM, sH2, sH2p, sDI, sDII, sHD, kNsp
};

constexpr Field kSpeciesField[kNsp] = {
    Field::kHI, Field::kHII, Field::kHeI,  Field::kHeII,
    Field::kHeIII, Field::kElectron, Field::kHM, Field::kH2I,
    Field::kH2II, Field::kDI, Field::kDII, Field::kHDI};

/// Atomic mass numbers (electron stored with A=1 by convention: its field
/// holds n_e in proton-mass units, so charge sums are direct).
constexpr double kA[kNsp] = {1, 1, 4, 4, 4, 1, 1, 2, 2, 2, 2, 3};

double charge_sum(const double n[kNsp]) {
  return n[sHII] + n[sHeII] + 2.0 * n[sHeIII] + n[sDII] + n[sH2p] - n[sHM];
}

/// Mean molecular weight from number densities.
double mu_of(const double n[kNsp]) {
  double ntot = 0, rho = 0;
  for (int s = 0; s < kNsp; ++s) {
    ntot += n[s];
    rho += n[s] * kA[s];
  }
  // Electrons carry negligible mass; their A=1 bookkeeping convention would
  // overcount, so subtract it from the mass sum.
  rho -= n[sE] * 1.0;
  return ntot > 0 ? rho / ntot : 1.0;
}

double temperature_of(double e_cgs_specific, const double n[kNsp],
                      double gamma) {
  const double mu = mu_of(n);
  return std::max((gamma - 1.0) * e_cgs_specific * mu *
                      constants::kHydrogenMass / constants::kBoltzmann,
                  1e-3);
}

/// One backward-Euler (linearized) species update: n ← (n + dt·C)/(1 + dt·D).
double bdf(double n, double c, double d, double dt) {
  const double out = (n + dt * c) / (1.0 + dt * d);
  return std::max(out, 0.0);
}

struct CellState {
  double n[kNsp];
  double e;  // specific internal energy, erg/g
};

/// Advance one cell by dt_s seconds; returns the subcycle count taken.
ENZO_HOT int advance_cell(CellState& st, double dt_s, double rho_cgs,
                          const ChemistryParams& prm, double t_cmb) {
  double t = 0.0;
  int cycles = 0;
  double* n = st.n;

  // Conserved nuclei sums for renormalization.
  const double nH_tot =
      n[sHI] + n[sHII] + n[sHM] + 2.0 * (n[sH2] + n[sH2p]) + n[sHD];
  const double nHe_tot = n[sHeI] + n[sHeII] + n[sHeIII];
  const double nD_tot = n[sDI] + n[sDII] + n[sHD];

  while (t < dt_s && cycles < prm.max_subcycles) {
    ++cycles;
    const double T = temperature_of(st.e, n, prm.gamma);
    const Rates r = compute_rates(T);

    // ---- cooling rate and electron derivative for subcycle control --------
    CoolingInput ci{T, t_cmb, n[sHI], n[sHII], n[sHeI], n[sHeII],
                    n[sHeIII], n[sE], n[sH2], n[sHD]};
    const double lambda = prm.cooling ? cooling_rate(ci) : 0.0;
    const double edot = -lambda / rho_cgs;  // erg/g/s
    const double ne_dot =
        r.k1 * n[sHI] * n[sE] - r.k2 * n[sHII] * n[sE] +
        r.k3 * n[sHeI] * n[sE] - r.k4 * n[sHeII] * n[sE] +
        r.k5 * n[sHeII] * n[sE] - r.k6 * n[sHeIII] * n[sE];
    // A-priori H₂ rate: the sequential-implicit update can falsely
    // equilibrate H₂ against destruction channels whose reactants would be
    // exhausted within the step (e.g. the tiny D reservoir), so the H₂
    // relative change per subcycle must be bounded too.
    const double h2_dot =
        r.k8 * n[sHM] * n[sHI] + r.k10 * n[sH2p] * n[sHI] +
        r.k22 * n[sHI] * n[sHI] * n[sHI] -
        (r.k11 * n[sHII] + r.k12 * n[sE] + r.k13 * n[sHI]) * n[sH2];
    double dt_sub = dt_s - t;
    if (std::abs(ne_dot) > 0)
      dt_sub = std::min(dt_sub, prm.accuracy * (n[sE] + 1e-6 * nH_tot) /
                                    std::abs(ne_dot));
    if (std::abs(h2_dot) > 0)
      dt_sub = std::min(dt_sub, prm.accuracy * (n[sH2] + 1e-3 * nH_tot) /
                                    std::abs(h2_dot));
    if (std::abs(edot) > 0)
      dt_sub = std::min(dt_sub, prm.accuracy * st.e / std::abs(edot));
    dt_sub = std::max(dt_sub, dt_s / prm.max_subcycles);
    dt_sub = std::min(dt_sub, dt_s - t);

    // ---- sequential implicit updates (production C, destruction freq D) ---
    // Helium first (decoupled from the H₂ network).
    n[sHeI] = bdf(n[sHeI], r.k4 * n[sHeII] * n[sE], r.k3 * n[sE], dt_sub);
    n[sHeII] = bdf(n[sHeII], r.k3 * n[sHeI] * n[sE] + r.k6 * n[sHeIII] * n[sE],
                   (r.k4 + r.k5) * n[sE], dt_sub);
    n[sHeIII] = bdf(n[sHeIII], r.k5 * n[sHeII] * n[sE], r.k6 * n[sE], dt_sub);

    // Hydrogen ionization balance.
    {
      const double cHI = r.k2 * n[sHII] * n[sE] +
                         2.0 * r.k12 * n[sH2] * n[sE] +
                         3.0 * r.k13 * n[sH2] * n[sHI] +
                         r.k14 * n[sHM] * n[sE] +
                         2.0 * r.k15 * n[sHM] * n[sHI] +
                         2.0 * r.k16 * n[sHM] * n[sHII] +
                         2.0 * r.k18 * n[sH2p] * n[sE] +
                         r.k19 * n[sH2p] * n[sHM] +
                         r.k11 * n[sH2] * n[sHII] +
                         r.k51 * n[sDI] * n[sHII] + r.k54 * n[sDI] * n[sH2];
      const double dHI = r.k1 * n[sE] + r.k7 * n[sE] + r.k8 * n[sHM] +
                         r.k9 * n[sHII] + r.k10 * n[sH2p] +
                         r.k13 * n[sH2] + r.k15 * n[sHM] +
                         2.0 * r.k22 * n[sHI] * n[sHI] +
                         r.k50 * n[sDII] + r.k55 * n[sHD];
      n[sHI] = bdf(n[sHI], cHI, dHI, dt_sub);
    }
    {
      const double cHII = r.k1 * n[sHI] * n[sE] + r.k10 * n[sH2p] * n[sHI] +
                          r.k50 * n[sDII] * n[sHI];
      const double dHII = r.k2 * n[sE] + r.k9 * n[sHI] + r.k11 * n[sH2] +
                          (r.k16 + r.k17) * n[sHM] + r.k51 * n[sDI] +
                          r.k53 * n[sHD];
      n[sHII] = bdf(n[sHII], cHII, dHII, dt_sub);
    }

    // Fast intermediaries: H⁻ and H₂⁺ (near equilibrium at low density —
    // the implicit update handles both regimes).
    n[sHM] = bdf(n[sHM], r.k7 * n[sHI] * n[sE],
                 r.k8 * n[sHI] + r.k14 * n[sE] + r.k15 * n[sHI] +
                     (r.k16 + r.k17) * n[sHII] + r.k19 * n[sH2p],
                 dt_sub);
    n[sH2p] = bdf(n[sH2p],
                  r.k9 * n[sHI] * n[sHII] + r.k11 * n[sH2] * n[sHII] +
                      r.k17 * n[sHM] * n[sHII],
                  r.k10 * n[sHI] + r.k18 * n[sE] + r.k19 * n[sHM], dt_sub);

    // Molecular hydrogen (incl. three-body formation, §4's 10⁹ cm⁻³ regime).
    // The deuterium-exchange reactions (k52–k55) are deliberately excluded
    // here: the D reservoir is ~4×10⁻⁵ of H by mass, so their *net* effect
    // on H₂ is negligible, while including them lets the lagged HD/D ratio
    // pin H₂ to a false equilibrium in the linearized update.  They do
    // appear in the D/HD updates below, where H₂ acts as a reservoir.
    n[sH2] = bdf(n[sH2],
                 r.k8 * n[sHM] * n[sHI] + r.k10 * n[sH2p] * n[sHI] +
                     r.k19 * n[sH2p] * n[sHM] +
                     r.k22 * n[sHI] * n[sHI] * n[sHI],
                 r.k11 * n[sHII] + r.k12 * n[sE] + r.k13 * n[sHI],
                 dt_sub);

    // Deuterium.
    n[sDI] = bdf(n[sDI],
                 r.k50 * n[sDII] * n[sHI] + r.k55 * n[sHD] * n[sHI] +
                     r.k56 * n[sDII] * n[sE],
                 r.k51 * n[sHII] + r.k54 * n[sH2] + r.k57 * n[sE], dt_sub);
    n[sDII] = bdf(n[sDII],
                  r.k51 * n[sDI] * n[sHII] + r.k53 * n[sHD] * n[sHII] +
                      r.k57 * n[sDI] * n[sE],
                  r.k50 * n[sHI] + r.k52 * n[sH2] + r.k56 * n[sE], dt_sub);
    n[sHD] = bdf(n[sHD],
                 r.k52 * n[sDII] * n[sH2] + r.k54 * n[sDI] * n[sH2],
                 r.k53 * n[sHII] + r.k55 * n[sHI], dt_sub);

    // ---- conservation repairs ----------------------------------------------
    // Hydrogen nuclei.
    {
      const double sum =
          n[sHI] + n[sHII] + n[sHM] + 2.0 * (n[sH2] + n[sH2p]) + n[sHD];
      if (sum > 0) {
        const double f = nH_tot / sum;
        n[sHI] *= f;
        n[sHII] *= f;
        n[sHM] *= f;
        n[sH2] *= f;
        n[sH2p] *= f;
      }
    }
    // Helium nuclei.
    {
      const double sum = n[sHeI] + n[sHeII] + n[sHeIII];
      if (sum > 0) {
        const double f = nHe_tot / sum;
        n[sHeI] *= f;
        n[sHeII] *= f;
        n[sHeIII] *= f;
      }
    }
    // Deuterium nuclei.
    {
      const double sum = n[sDI] + n[sDII] + n[sHD];
      if (sum > 0) {
        const double f = nD_tot / sum;
        n[sDI] *= f;
        n[sDII] *= f;
        n[sHD] *= f;
      }
    }
    // Electrons by charge conservation.
    n[sE] = std::max(charge_sum(n), 1e-20 * nH_tot);

    // ---- energy -----------------------------------------------------------
    if (prm.cooling && st.e > 0.0) {
      // Semi-implicit: exact exponential decay of the instantaneous rate.
      const double k = lambda / (rho_cgs * st.e);  // 1/s (signed)
      if (k * dt_sub > 1e-8)
        st.e *= std::exp(-k * dt_sub);
      else
        st.e -= dt_sub * lambda / rho_cgs;
      // Temperature floor.
      const double mu = mu_of(n);
      const double e_floor = prm.temperature_floor * constants::kBoltzmann /
                             ((prm.gamma - 1.0) * mu *
                              constants::kHydrogenMass);
      st.e = std::max(st.e, e_floor);
    }
    t += dt_sub;
  }
  return cycles;
}

}  // namespace

ENZO_UNITS_BOUNDARY ChemUnits ChemUnits::from(
    const cosmology::CodeUnits& u, double a) {
  ChemUnits c;
  c.rho_cgs = u.density_cgs / (a * a * a);
  c.n_factor = c.rho_cgs / constants::kHydrogenMass;
  c.e_cgs = u.velocity_cgs() * u.velocity_cgs();
  c.time_s = u.time_s;
  c.t_cmb = constants::kTcmb0 / a;
  return c;
}

void solve_chemistry_step(Grid& g, double dt, const ChemistryParams& params,
                          const ChemUnits& units, exec::LevelExecutor* ex) {
  ENZO_REQUIRE(g.has_field(Field::kH2I), "chemistry fields not allocated");
  perf::TraceScope scope("network", perf::component::kChemistry, g.level());
  const double dt_s = dt * units.time_s;
  const mesh::ConstFieldView rho = g.field(Field::kDensity);
  const mesh::FieldView eint = g.field(Field::kInternalEnergy);
  const mesh::FieldView etot = g.field(Field::kTotalEnergy);
  // Cells are independent; rows of cells are chunked through the executor
  // (replacing the old OpenMP pragma).  The subcycle tally is an integer sum
  // — commutative, so the atomic accumulation stays deterministic at any
  // thread count.
  std::atomic<std::int64_t> subcycles{0};
  const auto nj = static_cast<std::size_t>(g.nx(1));
  const auto nk = static_cast<std::size_t>(g.nx(2));
  exec::maybe_parallel_for(
      ex, nk * nj, 1, [&](std::size_t row_begin, std::size_t row_end) {
    std::int64_t local_subcycles = 0;
    for (std::size_t row = row_begin; row < row_end; ++row) {
      const int k = static_cast<int>(row / nj);
      const int j = static_cast<int>(row % nj);
      for (int i = 0; i < g.nx(0); ++i) {
        const int si = g.sx(i), sj = g.sy(j), sk = g.sz(k);
        CellState st;
        for (int s = 0; s < kNsp; ++s)
          st.n[s] = std::max(g.field(kSpeciesField[s])(si, sj, sk), 0.0) *
                    units.n_factor / kA[s];
        st.e = eint(si, sj, sk) * units.e_cgs;
        const double rho_cgs = rho(si, sj, sk) * units.rho_cgs;
        const double e_before = st.e;
        local_subcycles +=
            advance_cell(st, dt_s, rho_cgs, params, units.t_cmb);
        for (int s = 0; s < kNsp; ++s)
          g.field(kSpeciesField[s])(si, sj, sk) =
              st.n[s] * kA[s] / units.n_factor;
        const double de_code = (st.e - e_before) / units.e_cgs;
        eint(si, sj, sk) += de_code;
        etot(si, sj, sk) += de_code;
      }
    }
    subcycles.fetch_add(local_subcycles, std::memory_order_relaxed);
  });
  static perf::Counter& subcycle_counter =
      perf::Registry::global().counter("chemistry.subcycles");
  const auto total_subcycles =
      static_cast<std::uint64_t>(subcycles.load(std::memory_order_relaxed));
  subcycle_counter.add(total_subcycles);
  // The measured subcycle count replaces the old fixed ×10 estimate.
  util::FlopCounter::global().add(
      "chemistry",
      util::flop_cost::kChemistryPerCellPerSubcycle * total_subcycles);
}

double cell_mu(const Grid& g, int si, int sj, int sk) {
  double n[kNsp];
  for (int s = 0; s < kNsp; ++s)
    n[s] = std::max(g.field(kSpeciesField[s])(si, sj, sk), 0.0) / kA[s];
  return mu_of(n);
}

double cell_temperature(const Grid& g, int si, int sj, int sk,
                        const ChemistryParams& params,
                        const ChemUnits& units) {
  double n[kNsp];
  for (int s = 0; s < kNsp; ++s)
    n[s] = std::max(g.field(kSpeciesField[s])(si, sj, sk), 0.0) *
           units.n_factor / kA[s];
  const double e = g.field(Field::kInternalEnergy)(si, sj, sk) * units.e_cgs;
  return temperature_of(e, n, params.gamma);
}

void initialize_primordial_composition(Grid& g, const ChemistryParams& params,
                                       double x_e, double f_h2) {
  const mesh::ConstFieldView rho = g.field(Field::kDensity);
  const double X = params.hydrogen_fraction;
  const double Y = 1.0 - X;
  const double fD = params.deuterium_fraction;
  for (int k = 0; k < g.nt(2); ++k)
    for (int j = 0; j < g.nt(1); ++j)
      for (int i = 0; i < g.nt(0); ++i) {
        const double r = rho(i, j, k);
        const double rH = X * r;
        g.field(Field::kH2I)(i, j, k) = f_h2 * rH;
        g.field(Field::kHII)(i, j, k) = x_e * rH;
        g.field(Field::kHI)(i, j, k) = (1.0 - x_e - f_h2) * rH;
        g.field(Field::kHM)(i, j, k) = 1e-12 * rH;
        g.field(Field::kH2II)(i, j, k) = 1e-12 * rH;
        g.field(Field::kHeI)(i, j, k) = Y * r;
        g.field(Field::kHeII)(i, j, k) = 1e-12 * Y * r;
        g.field(Field::kHeIII)(i, j, k) = 1e-14 * Y * r;
        g.field(Field::kDI)(i, j, k) = (1.0 - x_e) * fD * rH;
        g.field(Field::kDII)(i, j, k) = x_e * fD * rH;
        g.field(Field::kHDI)(i, j, k) = 1e-8 * fD * rH;
        // Electron field in proton-mass units = n_e · m_H.
        g.field(Field::kElectron)(i, j, k) =
            x_e * rH + 1e-12 * Y * r / 4.0;
      }
}

double min_cooling_time(const Grid& g, const ChemistryParams& params,
                        const ChemUnits& units) {
  double tmin = std::numeric_limits<double>::max();
  for (int k = 0; k < g.nx(2); ++k)
    for (int j = 0; j < g.nx(1); ++j)
      for (int i = 0; i < g.nx(0); ++i) {
        const int si = g.sx(i), sj = g.sy(j), sk = g.sz(k);
        double n[kNsp];
        for (int s = 0; s < kNsp; ++s)
          n[s] = std::max(g.field(kSpeciesField[s])(si, sj, sk), 0.0) *
                 units.n_factor / kA[s];
        const double e =
            g.field(Field::kInternalEnergy)(si, sj, sk) * units.e_cgs;
        const double T = temperature_of(e, n, params.gamma);
        CoolingInput ci{T, units.t_cmb, n[sHI], n[sHII], n[sHeI], n[sHeII],
                        n[sHeIII], n[sE], n[sH2], n[sHD]};
        const double lambda = cooling_rate(ci);
        if (lambda <= 0) continue;
        const double rho_cgs =
            g.field(Field::kDensity)(si, sj, sk) * units.rho_cgs;
        const double tc = rho_cgs * e / lambda / units.time_s;
        tmin = std::min(tmin, tc);
      }
  return tmin;
}

}  // namespace enzo::chemistry
