#pragma once
// Reaction-rate and cooling-rate coefficients for the 12-species primordial
// network (§2.2): H, H⁺, He, He⁺, He⁺⁺, e⁻, H⁻, H₂, H₂⁺, D, D⁺, HD.
//
// The rate *forms* follow the compilation used by the paper (Abel, Anninos,
// Zhang & Norman 1997; Anninos et al. 1997), with the atomic
// ionization/recombination fits of Cen (1992) / Hui & Gnedin (1997), the
// three-body H₂ formation of Palla, Salpeter & Stahler (1983), and the H₂
// cooling function of Galli & Palla (1998).  Coefficients were re-entered
// from the literature; EXPERIMENTS.md compares profile *shapes*, which are
// insensitive to few-percent rate differences.
//
// All rates are cgs: two-body in cm³ s⁻¹, three-body in cm⁶ s⁻¹, cooling in
// erg cm³ s⁻¹ (multiply by the two number densities involved).

#include <vector>

namespace enzo::chemistry {

/// Two-body/three-body rate coefficients at one temperature.
struct Rates {
  // -- hydrogen/helium ionization & recombination --------------------------
  double k1;  ///< H  + e  → H⁺  + 2e
  double k2;  ///< H⁺ + e  → H   + γ
  double k3;  ///< He + e  → He⁺ + 2e
  double k4;  ///< He⁺+ e  → He  + γ  (incl. dielectronic)
  double k5;  ///< He⁺+ e  → He⁺⁺+ 2e
  double k6;  ///< He⁺⁺+e  → He⁺ + γ
  // -- H₂ chemistry ---------------------------------------------------------
  double k7;   ///< H  + e  → H⁻  + γ
  double k8;   ///< H⁻ + H  → H₂  + e
  double k9;   ///< H  + H⁺ → H₂⁺ + γ
  double k10;  ///< H₂⁺+ H  → H₂  + H⁺
  double k11;  ///< H₂ + H⁺ → H₂⁺ + H
  double k12;  ///< H₂ + e  → 2H  + e
  double k13;  ///< H₂ + H  → 3H
  double k14;  ///< H⁻ + e  → H   + 2e
  double k15;  ///< H⁻ + H  → 2H  + e
  double k16;  ///< H⁻ + H⁺ → 2H
  double k17;  ///< H⁻ + H⁺ → H₂⁺ + e
  double k18;  ///< H₂⁺+ e  → 2H
  double k19;  ///< H₂⁺+ H⁻ → H₂ + H
  double k22;  ///< 3H → H₂ + H   (three-body; cm⁶/s)
  // -- deuterium -------------------------------------------------------------
  double k50;  ///< D⁺ + H  → D  + H⁺  (charge exchange)
  double k51;  ///< D  + H⁺ → D⁺ + H
  double k52;  ///< D⁺ + H₂ → HD + H⁺
  double k53;  ///< HD + H⁺ → H₂ + D⁺
  double k54;  ///< D  + H₂* → HD + H (neutral exchange, slow)
  double k55;  ///< HD + H  → H₂ + D
  double k56;  ///< D⁺ + e  → D  + γ
  double k57;  ///< D  + e  → D⁺ + 2e
};

/// Evaluate the full rate set at gas temperature T (Kelvin).
Rates compute_rates(double T);

/// Row-at-a-time rate evaluation: one SoA lane per coefficient, evaluated
/// over a batch of temperatures so the shared subexpressions (T clamps,
/// sqrt/log lanes, the recombination suppression factor) are hoisted into
/// dense loops and each `exp`/`pow` fit runs over a contiguous lane instead
/// of refilling a 27-field struct per cell.  Per-element math matches
/// compute_rates exactly — the scalar API is the n = 1 case of this one.
class RateBatch {
 public:
  /// Fill every lane for temperatures T[0..n).  Reuses capacity.
  void compute(int n, const double* T);

  /// Gather cell i's coefficients back into the scalar struct (cheap strided
  /// loads; the transcendental work stays in the batched lanes).
  [[nodiscard]] Rates row(int i) const;

  [[nodiscard]] int size() const { return n_; }

 private:
  [[nodiscard]] double* lane(int idx) { return store_.data() + idx * stride_; }
  [[nodiscard]] const double* lane(int idx) const {
    return store_.data() + idx * stride_;
  }

  std::vector<double> store_;
  int n_ = 0;
  int stride_ = 0;  // padded lane length
};

/// Cooling/heating terms (erg cm⁻³ s⁻¹ once multiplied by densities inside):
struct CoolingInput {
  double T;        ///< gas temperature (K)
  double T_cmb;    ///< CMB temperature at this redshift (K)
  double n_HI, n_HII, n_HeI, n_HeII, n_HeIII, n_e, n_H2, n_HD;
};

/// Total volumetric cooling rate Λ (erg cm⁻³ s⁻¹); positive = energy loss.
/// Includes H/He line & ionization cooling, recombination, bremsstrahlung,
/// H₂ ro-vibrational (Galli & Palla 1998 low-density limit with an LTE/
/// critical-density cap), HD, and Compton scattering off the CMB (which
/// heats when T < T_cmb).
double cooling_rate(const CoolingInput& in);

/// SoA lanes for a row of cooling evaluations (same terms as cooling_rate;
/// the scalar API is the n = 1 case).  The CMB temperature is shared by the
/// whole row, so its Compton prefactor is hoisted out of the loop.
struct CoolingRowInput {
  double T_cmb;
  const double* T;
  const double *n_HI, *n_HII, *n_HeI, *n_HeII, *n_HeIII, *n_e, *n_H2, *n_HD;
};

/// lambda[0..n) ← Λ per cell.
void cooling_rate_batch(int n, const CoolingRowInput& in, double* lambda);

/// The H₂ contribution alone (diagnostics / Fig. 4 reasoning).
double h2_cooling_rate(double T, double n_H2, double n_H);

}  // namespace enzo::chemistry
