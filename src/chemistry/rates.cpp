#include "chemistry/rates.hpp"

#include <algorithm>
#include <cmath>

#include "util/annotations.hpp"
namespace enzo::chemistry {

namespace {
double clamp_T(double T) { return std::min(std::max(T, 1.0), 1e9); }
}  // namespace

ENZO_HOT Rates compute_rates(double T_in) {
  const double T = clamp_T(T_in);
  const double Tev = T * 8.617385e-5;  // K → eV
  const double lnTe = std::log(Tev);
  const double sqrtT = std::sqrt(T);
  const double T5 = std::sqrt(T / 1e5);
  Rates r{};

  // k1: H + e → H⁺ + 2e.  Janev et al. (1987) fit as used by Abel+97.
  {
    const double c[9] = {-32.71396786, 13.5365560, -5.73932875, 1.56315498,
                         -0.28770560, 3.48255977e-2, -2.63197617e-3,
                         1.11954395e-4, -2.03914985e-6};
    double s = 0, p = 1;
    for (int i = 0; i < 9; ++i) {
      s += c[i] * p;
      p *= lnTe;
    }
    r.k1 = std::exp(s);
  }
  // k2: H⁺ + e → H (case A, Cen 1992 form).
  r.k2 = 8.4e-11 / sqrtT * std::pow(T / 1e3, -0.2) /
         (1.0 + std::pow(T / 1e6, 0.7));
  // k3 / k5: He, He⁺ collisional ionization (Cen 1992).
  r.k3 = 2.38e-11 * sqrtT * std::exp(-285335.4 / T) / (1.0 + T5);
  r.k5 = 5.68e-12 * sqrtT * std::exp(-631515.0 / T) / (1.0 + T5);
  // k4: He⁺ recombination, radiative + dielectronic (Cen 1992).
  r.k4 = 1.5e-10 * std::pow(T, -0.6353) +
         1.9e-3 * std::pow(T, -1.5) * std::exp(-470000.0 / T) *
             (1.0 + 0.3 * std::exp(-94000.0 / T));
  // k6: He⁺⁺ recombination (hydrogenic, Z=2).
  r.k6 = 3.36e-10 / sqrtT * std::pow(T / 1e3, -0.2) /
         (1.0 + std::pow(T / 1e6, 0.7));

  // k7: radiative attachment H + e → H⁻ (Abel+97 fit).
  r.k7 = 6.775e-15 * std::pow(Tev, 0.8779);
  // k8: associative detachment H⁻ + H → H₂ + e (weak T dependence).
  r.k8 = 1.43e-9;
  // k9: radiative association H + H⁺ → H₂⁺ (Abel+97 piecewise fit).
  if (T < 6700.0)
    r.k9 = 1.85e-23 * std::pow(T, 1.8);
  else
    r.k9 = 5.81e-16 * std::pow(T / 56200.0,
                               -0.6657 * std::log10(T / 56200.0));
  // k10: charge transfer H₂⁺ + H → H₂ + H⁺.
  r.k10 = 6.0e-10;
  // k11: H₂ + H⁺ → H₂⁺ + H (endothermic by ~1.83 eV).
  r.k11 = 2.4e-9 * std::exp(-21237.15 / T);
  // k12: electron-impact dissociation H₂ + e → 2H + e.
  r.k12 = 4.38e-10 * std::exp(-102000.0 / T) * std::pow(T, 0.35);
  // k13: collisional dissociation H₂ + H → 3H (Dove & Mandy form).
  r.k13 = 1.067e-10 * std::pow(Tev, 2.012) * std::exp(-4.463 / Tev) /
          std::pow(1.0 + 0.2472 * Tev, 3.512);
  // k14: collisional detachment H⁻ + e → H + 2e (threshold 0.755 eV).
  r.k14 = 4.38e-10 * std::exp(-8750.0 / T) * std::pow(T, 0.35) * 0.1 +
          1.0e-11 * sqrtT * std::exp(-8750.0 / T);
  // k15: H⁻ + H → 2H + e.
  r.k15 = 5.3e-20 * T * T * std::exp(-8750.0 / T) + 1.0e-12;
  // k16: mutual neutralization H⁻ + H⁺ → 2H (strong at low T).
  r.k16 = 7.0e-8 * std::pow(T / 100.0, -0.35);
  // k17: H⁻ + H⁺ → H₂⁺ + e.
  r.k17 = (T < 1e4) ? 1.0e-8 * std::pow(T, -0.4)
                    : 4.0e-4 * std::pow(T, -1.4) * std::exp(-15100.0 / T);
  // k18: dissociative recombination H₂⁺ + e → 2H.
  r.k18 = 1.0e-8 * std::pow(std::max(T, 10.0) / 1000.0, -0.5) * 0.2;
  // k19: H₂⁺ + H⁻ → H₂ + H.
  r.k19 = 5.0e-7 * std::sqrt(100.0 / T);
  // k22: three-body H₂ formation 3H → H₂ + H (Palla, Salpeter & Stahler 83).
  r.k22 = 5.5e-29 / T;

  // Deuterium: charge exchange nearly thermoneutral (ΔE/k = 43 K).
  r.k50 = 1.0e-9;                                   // D⁺ + H → D + H⁺
  r.k51 = 1.0e-9 * std::exp(-43.0 / T);             // D + H⁺ → D⁺ + H
  r.k52 = 2.1e-9;                                   // D⁺ + H₂ → HD + H⁺
  r.k53 = 1.0e-9 * std::exp(-464.0 / T);            // HD + H⁺ → H₂ + D⁺
  r.k54 = 7.5e-11 * std::exp(-3820.0 / T);          // D + H₂ → HD + H
  r.k55 = 7.5e-11 * std::exp(-4240.0 / T);          // HD + H → H₂ + D
  r.k56 = r.k2;                                     // D⁺ recombination ≈ H⁺
  r.k57 = r.k1;                                     // D ionization ≈ H
  return r;
}

ENZO_HOT double h2_cooling_rate(double T_in, double n_H2, double n_H) {
  // Galli & Palla (1998) low-density (n→0) H₂ cooling function, valid for
  // 13 K < T < 10⁵ K, blended with an LTE cap via a critical density so the
  // cooling time stops dropping at n ≳ n_cr (the quasi-hydrostatic phase of
  // §4 depends on this saturation).
  const double T = std::min(std::max(T_in, 13.0), 1e5);
  const double lt = std::log10(T);
  const double log_lambda = -103.0 + 97.59 * lt - 48.05 * lt * lt +
                            10.80 * lt * lt * lt - 0.9032 * lt * lt * lt * lt;
  const double lambda_low = std::pow(10.0, log_lambda);  // erg cm³/s
  // Critical density above which level populations reach LTE (~10⁴ cm⁻³,
  // weakly T-dependent).
  const double n_cr = 1.0e4 * std::sqrt(T / 1000.0);
  return n_H2 * n_H * lambda_low / (1.0 + n_H / n_cr);
}

ENZO_HOT double cooling_rate(const CoolingInput& in) {
  const double T = clamp_T(in.T);
  const double sqrtT = std::sqrt(T);
  const double T5 = std::sqrt(T / 1e5);
  double cool = 0.0;

  // Collisional excitation (line) cooling: H (Lyα) and He⁺ (Cen 1992).
  cool += 7.50e-19 * std::exp(-118348.0 / T) / (1.0 + T5) * in.n_e * in.n_HI;
  cool += 5.54e-17 * std::pow(T, -0.397) * std::exp(-473638.0 / T) /
          (1.0 + T5) * in.n_e * in.n_HeII;
  // Collisional ionization cooling.
  cool += 1.27e-21 * sqrtT * std::exp(-157809.1 / T) / (1.0 + T5) * in.n_e *
          in.n_HI;
  cool += 9.38e-22 * sqrtT * std::exp(-285335.4 / T) / (1.0 + T5) * in.n_e *
          in.n_HeI;
  cool += 4.95e-22 * sqrtT * std::exp(-631515.0 / T) / (1.0 + T5) * in.n_e *
          in.n_HeII;
  // Recombination cooling.
  cool += 8.70e-27 * sqrtT * std::pow(T / 1e3, -0.2) /
          (1.0 + std::pow(T / 1e6, 0.7)) * in.n_e * in.n_HII;
  cool += 1.55e-26 * std::pow(T, 0.3647) * in.n_e * in.n_HeII;
  cool += 3.48e-26 * sqrtT * std::pow(T / 1e3, -0.2) /
          (1.0 + std::pow(T / 1e6, 0.7)) * in.n_e * in.n_HeIII;
  // Bremsstrahlung (free-free), Gaunt ≈ 1.3.
  cool += 1.42e-27 * 1.3 * sqrtT * in.n_e *
          (in.n_HII + in.n_HeII + 4.0 * in.n_HeIII);
  // H₂ ro-vibrational cooling, net of the CMB radiation bath (the lines
  // thermalize with the CMB, so the gas cannot radiatively cool below
  // T_cmb — at z≈19 that floor is ~55 K).
  const double n_H_tot = in.n_HI + in.n_HII;
  cool += std::max(h2_cooling_rate(T, in.n_H2, n_H_tot) -
                       h2_cooling_rate(in.T_cmb, in.n_H2, n_H_tot),
                   0.0);
  // HD cooling (simple low-T fit; subdominant to H₂ above ~150 K), with the
  // same CMB radiative floor.
  auto hd_rate = [&](double temp) {
    if (temp >= 2e4 || temp <= 0.0) return 0.0;
    return 2.7e-26 * std::pow(temp / 100.0, 1.4) * std::exp(-128.0 / temp) *
           in.n_HD * n_H_tot / (1.0 + n_H_tot / 1e6);
  };
  cool += std::max(hd_rate(T) - hd_rate(in.T_cmb), 0.0);
  // Compton heating/cooling against the CMB (§2.2).
  const double a4 = std::pow(in.T_cmb / 2.725, 4.0);
  cool += 5.65e-36 * a4 * (T - in.T_cmb) * in.n_e;
  return cool;
}

}  // namespace enzo::chemistry
