#include "chemistry/rates.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/annotations.hpp"
namespace enzo::chemistry {

namespace {
double clamp_T(double T) { return std::min(std::max(T, 1.0), 1e9); }

// Lane layout inside RateBatch::store_.  The first block holds the shared
// subexpressions every fit reuses (clamped T, eV temperature, its log, the
// two square roots, and the Cen-1992 recombination suppression pair); the
// rest is one lane per temperature-dependent coefficient.  Constant
// coefficients (k8, k10, k50, k52) and the deuterium aliases (k56 = k2,
// k57 = k1) have no lane — row() supplies them directly.
enum Lane : int {
  lTc = 0,  // clamped temperature (K)
  lTev,     // T in eV
  lLnTe,    // log(Tev)
  lSqrtT,   // sqrt(T)
  lT5,      // sqrt(T / 1e5)
  lPA,      // pow(T/1e3, -0.2)   (shared by k2, k6)
  lPB,      // pow(T/1e6,  0.7)   (shared by k2, k6)
  lK1,
  lK2,
  lK3,
  lK4,
  lK5,
  lK6,
  lK7,
  lK9,
  lK11,
  lK12,
  lK13,
  lK14,
  lK15,
  lK16,
  lK17,
  lK18,
  lK19,
  lK22,
  lK51,
  lK53,
  lK54,
  lK55,
  kNumLanes,
};

// Lanes are padded to a multiple of 8 doubles (one cache line) so every lane
// starts 64-byte aligned relative to the block and strided lane arithmetic
// never splits a vector register across two lanes.
constexpr int kLanePad = 8;
int padded(int n) { return (n + (kLanePad - 1)) & ~(kLanePad - 1); }
}  // namespace

// Per-element math below must match the historical scalar compute_rates
// expression-for-expression: the scalar API now delegates to this batch at
// n = 1, and the chemistry regression tests pin the values.
ENZO_HOT void RateBatch::compute(int n, const double* T) {
  n_ = n;
  stride_ = padded(n);
  const std::size_t need =
      static_cast<std::size_t>(stride_) * static_cast<std::size_t>(kNumLanes);
  if (store_.size() < need) {
    // enzo-lint: allow(hotpath-heap-alloc) amortized scratch growth
    store_.resize(need);
  }

  double* __restrict Tc = lane(lTc);
  double* __restrict Tev = lane(lTev);
  double* __restrict lnTe = lane(lLnTe);
  double* __restrict sqrtT = lane(lSqrtT);
  double* __restrict T5 = lane(lT5);
  double* __restrict pA = lane(lPA);
  double* __restrict pB = lane(lPB);

  for (int i = 0; i < n; ++i) Tc[i] = clamp_T(T[i]);
  for (int i = 0; i < n; ++i) Tev[i] = Tc[i] * 8.617385e-5;  // K → eV
  // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
  for (int i = 0; i < n; ++i) lnTe[i] = std::log(Tev[i]);
  for (int i = 0; i < n; ++i) sqrtT[i] = std::sqrt(Tc[i]);
  for (int i = 0; i < n; ++i) T5[i] = std::sqrt(Tc[i] / 1e5);
  // Cen (1992) recombination suppression pair, shared by k2 and k6.
  // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
  for (int i = 0; i < n; ++i) pA[i] = std::pow(Tc[i] / 1e3, -0.2);
  // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
  for (int i = 0; i < n; ++i) pB[i] = std::pow(Tc[i] / 1e6, 0.7);

  // k1: H + e → H⁺ + 2e.  Janev et al. (1987) fit as used by Abel+97.
  {
    static constexpr double c[9] = {-32.71396786, 13.5365560, -5.73932875,
                                    1.56315498, -0.28770560, 3.48255977e-2,
                                    -2.63197617e-3, 1.11954395e-4,
                                    -2.03914985e-6};
    double* __restrict k1 = lane(lK1);
    for (int i = 0; i < n; ++i) {
      double s = 0, p = 1;
      for (int j = 0; j < 9; ++j) {
        s += c[j] * p;
        p *= lnTe[i];
      }
      k1[i] = s;
    }
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i) k1[i] = std::exp(k1[i]);
  }
  {
    // k2: H⁺ + e → H (case A, Cen 1992 form); k6: He⁺⁺ recombination is the
    // same fit scaled for Z = 2.  Both reuse the pA/pB lanes.
    double* __restrict k2 = lane(lK2);
    double* __restrict k6 = lane(lK6);
    for (int i = 0; i < n; ++i)
      k2[i] = 8.4e-11 / sqrtT[i] * pA[i] / (1.0 + pB[i]);
    for (int i = 0; i < n; ++i)
      k6[i] = 3.36e-10 / sqrtT[i] * pA[i] / (1.0 + pB[i]);
  }
  {
    // k3 / k5: He, He⁺ collisional ionization (Cen 1992).
    double* __restrict k3 = lane(lK3);
    double* __restrict k5 = lane(lK5);
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k3[i] = 2.38e-11 * sqrtT[i] * std::exp(-285335.4 / Tc[i]) / (1.0 + T5[i]);
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k5[i] = 5.68e-12 * sqrtT[i] * std::exp(-631515.0 / Tc[i]) / (1.0 + T5[i]);
  }
  {
    // k4: He⁺ recombination, radiative + dielectronic (Cen 1992).
    double* __restrict k4 = lane(lK4);
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k4[i] = 1.5e-10 * std::pow(Tc[i], -0.6353) +
              1.9e-3 * std::pow(Tc[i], -1.5) * std::exp(-470000.0 / Tc[i]) *
                  (1.0 + 0.3 * std::exp(-94000.0 / Tc[i]));
  }
  {
    double* __restrict k7 = lane(lK7);
    // k7: radiative attachment H + e → H⁻ (Abel+97 fit).
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i) k7[i] = 6.775e-15 * std::pow(Tev[i], 0.8779);
  }
  {
    // k9: radiative association H + H⁺ → H₂⁺ (Abel+97 piecewise fit).  The
    // branch stays — the two sides have different fit families.
    double* __restrict k9 = lane(lK9);
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i) {
      const double t = Tc[i];
      k9[i] = (t < 6700.0)
                  ? 1.85e-23 * std::pow(t, 1.8)
                  : 5.81e-16 * std::pow(t / 56200.0,
                                        -0.6657 * std::log10(t / 56200.0));
    }
  }
  {
    double* __restrict k11 = lane(lK11);
    double* __restrict k12 = lane(lK12);
    double* __restrict k13 = lane(lK13);
    double* __restrict k14 = lane(lK14);
    double* __restrict k15 = lane(lK15);
    // k11: H₂ + H⁺ → H₂⁺ + H (endothermic by ~1.83 eV).
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i) k11[i] = 2.4e-9 * std::exp(-21237.15 / Tc[i]);
    // k12: electron-impact dissociation H₂ + e → 2H + e.
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k12[i] = 4.38e-10 * std::exp(-102000.0 / Tc[i]) * std::pow(Tc[i], 0.35);
    // k13: collisional dissociation H₂ + H → 3H (Dove & Mandy form).
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k13[i] = 1.067e-10 * std::pow(Tev[i], 2.012) *
               std::exp(-4.463 / Tev[i]) /
               std::pow(1.0 + 0.2472 * Tev[i], 3.512);
    // k14: collisional detachment H⁻ + e → H + 2e (threshold 0.755 eV).
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k14[i] = 4.38e-10 * std::exp(-8750.0 / Tc[i]) * std::pow(Tc[i], 0.35) *
                   0.1 +
               1.0e-11 * sqrtT[i] * std::exp(-8750.0 / Tc[i]);
    // k15: H⁻ + H → 2H + e.
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k15[i] = 5.3e-20 * Tc[i] * Tc[i] * std::exp(-8750.0 / Tc[i]) + 1.0e-12;
  }
  {
    double* __restrict k16 = lane(lK16);
    double* __restrict k17 = lane(lK17);
    double* __restrict k18 = lane(lK18);
    double* __restrict k19 = lane(lK19);
    double* __restrict k22 = lane(lK22);
    // k16: mutual neutralization H⁻ + H⁺ → 2H (strong at low T).
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k16[i] = 7.0e-8 * std::pow(Tc[i] / 100.0, -0.35);
    // k17: H⁻ + H⁺ → H₂⁺ + e.
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k17[i] = (Tc[i] < 1e4)
                   ? 1.0e-8 * std::pow(Tc[i], -0.4)
                   : 4.0e-4 * std::pow(Tc[i], -1.4) *
                         std::exp(-15100.0 / Tc[i]);
    // k18: dissociative recombination H₂⁺ + e → 2H.
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k18[i] = 1.0e-8 * std::pow(std::max(Tc[i], 10.0) / 1000.0, -0.5) * 0.2;
    // k19: H₂⁺ + H⁻ → H₂ + H.
    for (int i = 0; i < n; ++i) k19[i] = 5.0e-7 * std::sqrt(100.0 / Tc[i]);
    // k22: three-body H₂ formation 3H → H₂ + H (Palla, Salpeter & Stahler 83).
    for (int i = 0; i < n; ++i) k22[i] = 5.5e-29 / Tc[i];
  }
  {
    // Deuterium: charge exchange nearly thermoneutral (ΔE/k = 43 K).
    double* __restrict k51 = lane(lK51);
    double* __restrict k53 = lane(lK53);
    double* __restrict k54 = lane(lK54);
    double* __restrict k55 = lane(lK55);
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k51[i] = 1.0e-9 * std::exp(-43.0 / Tc[i]);  // D + H⁺ → D⁺ + H
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k53[i] = 1.0e-9 * std::exp(-464.0 / Tc[i]);  // HD + H⁺ → H₂ + D⁺
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k54[i] = 7.5e-11 * std::exp(-3820.0 / Tc[i]);  // D + H₂ → HD + H
    // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
    for (int i = 0; i < n; ++i)
      k55[i] = 7.5e-11 * std::exp(-4240.0 / Tc[i]);  // HD + H → H₂ + D
  }
}

Rates RateBatch::row(int i) const {
  Rates r{};
  r.k1 = lane(lK1)[i];
  r.k2 = lane(lK2)[i];
  r.k3 = lane(lK3)[i];
  r.k4 = lane(lK4)[i];
  r.k5 = lane(lK5)[i];
  r.k6 = lane(lK6)[i];
  r.k7 = lane(lK7)[i];
  r.k8 = 1.43e-9;  // associative detachment H⁻ + H → H₂ + e (T-independent)
  r.k9 = lane(lK9)[i];
  r.k10 = 6.0e-10;  // charge transfer H₂⁺ + H → H₂ + H⁺
  r.k11 = lane(lK11)[i];
  r.k12 = lane(lK12)[i];
  r.k13 = lane(lK13)[i];
  r.k14 = lane(lK14)[i];
  r.k15 = lane(lK15)[i];
  r.k16 = lane(lK16)[i];
  r.k17 = lane(lK17)[i];
  r.k18 = lane(lK18)[i];
  r.k19 = lane(lK19)[i];
  r.k22 = lane(lK22)[i];
  r.k50 = 1.0e-9;  // D⁺ + H → D + H⁺ (charge exchange)
  r.k51 = lane(lK51)[i];
  r.k52 = 2.1e-9;  // D⁺ + H₂ → HD + H⁺
  r.k53 = lane(lK53)[i];
  r.k54 = lane(lK54)[i];
  r.k55 = lane(lK55)[i];
  r.k56 = r.k2;  // D⁺ recombination ≈ H⁺
  r.k57 = r.k1;  // D ionization ≈ H
  return r;
}

ENZO_HOT Rates compute_rates(double T_in) {
  // The scalar API is the n = 1 case of the batch, so the two paths cannot
  // drift apart (the row-lockstep network solver relies on this).
  thread_local RateBatch batch;
  batch.compute(1, &T_in);
  return batch.row(0);
}

ENZO_HOT double h2_cooling_rate(double T_in, double n_H2, double n_H) {
  // Galli & Palla (1998) low-density (n→0) H₂ cooling function, valid for
  // 13 K < T < 10⁵ K, blended with an LTE cap via a critical density so the
  // cooling time stops dropping at n ≳ n_cr (the quasi-hydrostatic phase of
  // §4 depends on this saturation).
  const double T = std::min(std::max(T_in, 13.0), 1e5);
  const double lt = std::log10(T);
  const double log_lambda = -103.0 + 97.59 * lt - 48.05 * lt * lt +
                            10.80 * lt * lt * lt - 0.9032 * lt * lt * lt * lt;
  const double lambda_low = std::pow(10.0, log_lambda);  // erg cm³/s
  // Critical density above which level populations reach LTE (~10⁴ cm⁻³,
  // weakly T-dependent).
  const double n_cr = 1.0e4 * std::sqrt(T / 1000.0);
  return n_H2 * n_H * lambda_low / (1.0 + n_H / n_cr);
}

namespace {
// One cell's cooling terms.  `a4` is the Compton prefactor (T_cmb/2.725)⁴,
// hoisted by the batch entry points because T_cmb is shared by a whole row.
ENZO_HOT double cooling_cell(double T_in, double T_cmb, double a4,
                             double n_HI, double n_HII, double n_HeI,
                             double n_HeII, double n_HeIII, double n_e,
                             double n_H2, double n_HD) {
  const double T = clamp_T(T_in);
  const double sqrtT = std::sqrt(T);
  const double T5 = std::sqrt(T / 1e5);
  double cool = 0.0;

  // Collisional excitation (line) cooling: H (Lyα) and He⁺ (Cen 1992).
  cool += 7.50e-19 * std::exp(-118348.0 / T) / (1.0 + T5) * n_e * n_HI;
  cool += 5.54e-17 * std::pow(T, -0.397) * std::exp(-473638.0 / T) /
          (1.0 + T5) * n_e * n_HeII;
  // Collisional ionization cooling.
  cool += 1.27e-21 * sqrtT * std::exp(-157809.1 / T) / (1.0 + T5) * n_e * n_HI;
  cool += 9.38e-22 * sqrtT * std::exp(-285335.4 / T) / (1.0 + T5) * n_e * n_HeI;
  cool +=
      4.95e-22 * sqrtT * std::exp(-631515.0 / T) / (1.0 + T5) * n_e * n_HeII;
  // Recombination cooling.
  cool += 8.70e-27 * sqrtT * std::pow(T / 1e3, -0.2) /
          (1.0 + std::pow(T / 1e6, 0.7)) * n_e * n_HII;
  cool += 1.55e-26 * std::pow(T, 0.3647) * n_e * n_HeII;
  cool += 3.48e-26 * sqrtT * std::pow(T / 1e3, -0.2) /
          (1.0 + std::pow(T / 1e6, 0.7)) * n_e * n_HeIII;
  // Bremsstrahlung (free-free), Gaunt ≈ 1.3.
  cool += 1.42e-27 * 1.3 * sqrtT * n_e * (n_HII + n_HeII + 4.0 * n_HeIII);
  // H₂ ro-vibrational cooling, net of the CMB radiation bath (the lines
  // thermalize with the CMB, so the gas cannot radiatively cool below
  // T_cmb — at z≈19 that floor is ~55 K).
  const double n_H_tot = n_HI + n_HII;
  cool += std::max(h2_cooling_rate(T, n_H2, n_H_tot) -
                       h2_cooling_rate(T_cmb, n_H2, n_H_tot),
                   0.0);
  // HD cooling (simple low-T fit; subdominant to H₂ above ~150 K), with the
  // same CMB radiative floor.
  auto hd_rate = [&](double temp) {
    if (temp >= 2e4 || temp <= 0.0) return 0.0;
    return 2.7e-26 * std::pow(temp / 100.0, 1.4) * std::exp(-128.0 / temp) *
           n_HD * n_H_tot / (1.0 + n_H_tot / 1e6);
  };
  cool += std::max(hd_rate(T) - hd_rate(T_cmb), 0.0);
  // Compton heating/cooling against the CMB (§2.2).
  cool += 5.65e-36 * a4 * (T - T_cmb) * n_e;
  return cool;
}
}  // namespace

ENZO_HOT double cooling_rate(const CoolingInput& in) {
  const double a4 = std::pow(in.T_cmb / 2.725, 4.0);
  return cooling_cell(in.T, in.T_cmb, a4, in.n_HI, in.n_HII, in.n_HeI,
                      in.n_HeII, in.n_HeIII, in.n_e, in.n_H2, in.n_HD);
}

ENZO_HOT void cooling_rate_batch(int n, const CoolingRowInput& in,
                                 double* lambda) {
  const double a4 = std::pow(in.T_cmb / 2.725, 4.0);
  for (int i = 0; i < n; ++i)
    lambda[i] = cooling_cell(in.T[i], in.T_cmb, a4, in.n_HI[i], in.n_HII[i],
                             in.n_HeI[i], in.n_HeII[i], in.n_HeIII[i],
                             in.n_e[i], in.n_H2[i], in.n_HD[i]);
}

}  // namespace enzo::chemistry
