#pragma once
// Non-equilibrium 12-species primordial chemistry + radiative cooling
// (§2.2, §3.3).
//
// "Because the cosmological background density of baryons is small, chemical
// reactions in the smooth background gas occur on long timescales ...
// chemical equilibrium is rarely an appropriate assumption.  We solve the
// time dependent chemical reaction network involving twelve species ...
// Because the equations are stiff, we use a backward finite-difference
// technique for stability, sub-cycling within a fluid timestep for
// additional accuracy" (Anninos et al. 1997).
//
// Per cell: species number densities are advanced with a sequential
// (Gauss–Seidel-ordered) backward-Euler update n ← (n + Δt·C)/(1 + Δt·D),
// electrons closed by charge conservation, nuclei sums re-normalized, and
// the internal energy integrated semi-implicitly against the cooling
// function — all sub-cycled on the electron/energy timescale.

#include "cosmology/units.hpp"
#include "mesh/grid.hpp"

namespace enzo::exec {
class LevelExecutor;
}

namespace enzo::chemistry {

struct ChemistryParams {
  double gamma = 5.0 / 3.0;
  bool cooling = true;
  /// Max fractional change of e⁻/H₂/energy per subcycle.
  double accuracy = 0.1;
  int max_subcycles = 20000;
  double temperature_floor = 1.0;  ///< K
  double hydrogen_fraction = 0.76;  ///< by mass (§2.2: 76 % H, 24 % He)
  double deuterium_fraction = 4.3e-5;  ///< D/H by mass (2 × [D/H]number)
};

/// Conversions from code units to the cgs quantities the rate fits need,
/// at one scale factor.
struct ChemUnits {
  double n_factor = 1.0;  ///< n_X [cm⁻³] = ρ_X,code × n_factor / A_X
  double rho_cgs = 1.0;   ///< proper g/cm³ per code density
  double e_cgs = 1.0;     ///< erg/g per code specific energy
  double time_s = 1.0;    ///< seconds per code time
  double t_cmb = 2.725;   ///< CMB temperature now (K)

  static ChemUnits from(const cosmology::CodeUnits& u, double a);
};

/// Advance every active cell's species and internal energy by dt (code
/// units), sub-cycling internally.  Total energy is adjusted by the internal
/// energy change.  Requires the chemistry fields to be allocated.  `ex`
/// (optional) chunks the independent cell updates via the executor's nested
/// parallel_for; nullptr runs them inline.
void solve_chemistry_step(mesh::Grid& g, double dt,
                          const ChemistryParams& params,
                          const ChemUnits& units,
                          exec::LevelExecutor* ex = nullptr);

/// Gas temperature (K) of one cell from its internal energy + composition.
double cell_temperature(const mesh::Grid& g, int si, int sj, int sk,
                        const ChemistryParams& params,
                        const ChemUnits& units);

/// Mean molecular weight of one cell (dimensionless).
double cell_mu(const mesh::Grid& g, int si, int sj, int sk);

/// Initialize the species fields to a near-neutral primordial composition:
/// ionization fraction x_e, H₂ fraction f_H2 (relative to total H mass),
/// hydrogen/helium split from params.  Overwrites the 12 species fields from
/// the density field.
void initialize_primordial_composition(mesh::Grid& g,
                                       const ChemistryParams& params,
                                       double x_e, double f_h2);

/// Shortest cooling time over a grid's active cells (code units) —
/// diagnostic used by the Fig. 4 discussion and by timestep reporting.
double min_cooling_time(const mesh::Grid& g, const ChemistryParams& params,
                        const ChemUnits& units);

}  // namespace enzo::chemistry
