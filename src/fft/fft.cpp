#include "fft/fft.hpp"

#include <cmath>
#include <memory>

#include "util/constants.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"

namespace enzo::fft {

namespace detail {

// Twiddle/bit-reversal tables are cached per transform length; root grids
// use a handful of sizes per run so this is a clean win.  Entries are
// heap-allocated individually: the cache vector may reallocate when a new
// length is planned, and references returned earlier must survive that.
const Plan& plan_for(int n) {
  thread_local std::vector<std::unique_ptr<Plan>> cache;
  for (const auto& p : cache)
    if (p->n == n) return *p;
  auto p = std::make_unique<Plan>();
  p->n = n;
  p->bitrev.resize(n);
  int log2n = 0;
  while ((1 << log2n) < n) ++log2n;
  for (int i = 0; i < n; ++i) {
    int r = 0;
    for (int b = 0; b < log2n; ++b)
      if (i & (1 << b)) r |= 1 << (log2n - 1 - b);
    p->bitrev[i] = r;
  }
  p->w.resize(n / 2);
  for (int k = 0; k < n / 2; ++k) {
    const double ang = -constants::kTwoPi * k / n;
    p->w[k] = cplx(std::cos(ang), std::sin(ang));
  }
  cache.push_back(std::move(p));
  return *cache.back();
}

}  // namespace detail

void fft_inplace(cplx* data, int n, bool inverse) {
  ENZO_REQUIRE(is_pow2(n), "fft length must be a power of two");
  if (n == 1) return;
  const detail::Plan& p = detail::plan_for(n);
  for (int i = 0; i < n; ++i) {
    const int j = p.bitrev[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const int half = len >> 1;
    const int step = n / len;
    for (int i = 0; i < n; i += len) {
      for (int k = 0; k < half; ++k) {
        cplx w = p.w[k * step];
        if (inverse) w = std::conj(w);
        const cplx u = data[i + k];
        const cplx t = w * data[i + k + half];
        data[i + k] = u + t;
        data[i + k + half] = u - t;
      }
    }
  }
}

void fft(std::vector<cplx>& v, bool inverse) {
  fft_inplace(v.data(), static_cast<int>(v.size()), inverse);
  if (inverse) {
    const double norm = 1.0 / static_cast<double>(v.size());
    for (cplx& c : v) c *= norm;
  }
}

void fft3(util::Array3<cplx>& a, bool inverse) {
  const int nx = a.nx(), ny = a.ny(), nz = a.nz();
  int log2_total = 0;
  for (int n : {nx, ny, nz}) {
    ENZO_REQUIRE(n == 1 || is_pow2(n), "fft3 extents must be powers of two");
    while ((1 << log2_total) < n && n > 1) ++log2_total;
  }

  std::vector<cplx> pencil;
  // x pencils (stride 1).
  if (nx > 1) {
    for (int k = 0; k < nz; ++k)
      for (int j = 0; j < ny; ++j) fft_inplace(&a(0, j, k), nx, inverse);
  }
  // y pencils.
  if (ny > 1) {
    pencil.resize(ny);
    for (int k = 0; k < nz; ++k)
      for (int i = 0; i < nx; ++i) {
        for (int j = 0; j < ny; ++j) pencil[j] = a(i, j, k);
        fft_inplace(pencil.data(), ny, inverse);
        for (int j = 0; j < ny; ++j) a(i, j, k) = pencil[j];
      }
  }
  // z pencils.
  if (nz > 1) {
    pencil.resize(nz);
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        for (int k = 0; k < nz; ++k) pencil[k] = a(i, j, k);
        fft_inplace(pencil.data(), nz, inverse);
        for (int k = 0; k < nz; ++k) a(i, j, k) = pencil[k];
      }
  }
  if (inverse) {
    const double norm =
        1.0 / (static_cast<double>(nx) * static_cast<double>(ny) * nz);
    for (cplx& c : a) c *= norm;
  }
  int log2n = 0;
  for (std::size_t t = a.size(); t > 1; t >>= 1) ++log2n;
  util::FlopCounter::global().add(
      "fft", util::flop_cost::kFftPerPointLog2 * a.size() * log2n);
}

util::Array3<cplx> fft3_real(const util::Array3<double>& a) {
  util::Array3<cplx> out(a.nx(), a.ny(), a.nz());
  for (std::size_t n = 0; n < a.size(); ++n) out.data()[n] = a.data()[n];
  fft3(out, /*inverse=*/false);
  return out;
}

util::Array3<double> ifft3_real(const util::Array3<cplx>& spec) {
  util::Array3<cplx> tmp = spec;
  fft3(tmp, /*inverse=*/true);
  util::Array3<double> out(spec.nx(), spec.ny(), spec.nz());
  for (std::size_t n = 0; n < out.size(); ++n) out.data()[n] = tmp.data()[n].real();
  return out;
}

}  // namespace enzo::fft
