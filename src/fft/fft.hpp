#pragma once
// Radix-2 FFT used by the root-grid Poisson solver and the Gaussian random
// field initial-condition generator.
//
// The paper solves Poisson's equation on the (periodic) root grid with an
// FFT (§3.3).  Root-grid sizes in cosmology are powers of two, so an
// iterative radix-2 Cooley–Tukey transform is all that is required; we
// implement it from scratch (no external FFT dependency) with a precomputed
// bit-reversal permutation and twiddle tables per size.

#include <complex>
#include <vector>

#include "util/array3.hpp"

namespace enzo::fft {

using cplx = std::complex<double>;

/// True if n is a positive power of two.
constexpr bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

/// In-place complex FFT of length n (power of two).  inverse=true applies the
/// conjugate transform *without* the 1/n normalization; callers normalize.
void fft_inplace(cplx* data, int n, bool inverse);

/// Convenience: forward/inverse transform of a vector (inverse normalizes).
void fft(std::vector<cplx>& v, bool inverse);

/// 3-d in-place complex FFT on an Array3 (each extent a power of two;
/// extents of 1 are skipped, so 1-d/2-d arrays work transparently).
/// inverse=true applies the conjugate transform and divides by nx*ny*nz.
void fft3(util::Array3<cplx>& a, bool inverse);

/// Forward transform of a real field into a full complex spectrum.
util::Array3<cplx> fft3_real(const util::Array3<double>& a);

/// Inverse transform of a spectrum back to its real part.
util::Array3<double> ifft3_real(const util::Array3<cplx>& spec);

/// Wavenumber index helper: FFT bin m of size n maps to signed frequency
/// m <= n/2 ? m : m - n (units of fundamental 2*pi/L handled by caller).
constexpr int freq_index(int m, int n) { return m <= n / 2 ? m : m - n; }

}  // namespace enzo::fft
