#pragma once
// Radix-2 FFT used by the root-grid Poisson solver and the Gaussian random
// field initial-condition generator.
//
// The paper solves Poisson's equation on the (periodic) root grid with an
// FFT (§3.3).  Root-grid sizes in cosmology are powers of two, so an
// iterative radix-2 Cooley–Tukey transform is all that is required; we
// implement it from scratch (no external FFT dependency) with a precomputed
// bit-reversal permutation and twiddle tables per size.

#include <complex>
#include <vector>

#include "util/array3.hpp"

namespace enzo::fft {

using cplx = std::complex<double>;

/// True if n is a positive power of two.
constexpr bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

namespace detail {

/// Twiddle/bit-reversal tables for one transform length.
struct Plan {
  int n = 0;
  std::vector<int> bitrev;
  std::vector<cplx> w;  // forward twiddles e^{-2 pi i k / n}, k < n/2
};

/// Per-thread plan cache keyed by length.  Returned references stay valid
/// for the thread's lifetime even as more lengths are planned: entries are
/// individually heap-allocated, so growing the cache never moves a Plan (a
/// previous version stored Plans inline in the vector and handed out
/// references that dangled on reallocation).  Exposed for the regression
/// test; solver code calls it through fft_inplace.
const Plan& plan_for(int n);

}  // namespace detail

/// In-place complex FFT of length n (power of two).  inverse=true applies the
/// conjugate transform *without* the 1/n normalization; callers normalize.
void fft_inplace(cplx* data, int n, bool inverse);

/// Convenience: forward/inverse transform of a vector (inverse normalizes).
void fft(std::vector<cplx>& v, bool inverse);

/// 3-d in-place complex FFT on an Array3 (each extent a power of two;
/// extents of 1 are skipped, so 1-d/2-d arrays work transparently).
/// inverse=true applies the conjugate transform and divides by nx*ny*nz.
void fft3(util::Array3<cplx>& a, bool inverse);

/// Forward transform of a real field into a full complex spectrum.
util::Array3<cplx> fft3_real(const util::Array3<double>& a);

/// Inverse transform of a spectrum back to its real part.
util::Array3<double> ifft3_real(const util::Array3<cplx>& spec);

/// Wavenumber index helper: FFT bin m of size n maps to signed frequency
/// m <= n/2 ? m : m - n (units of fundamental 2*pi/L handled by caller).
constexpr int freq_index(int m, int n) { return m <= n / 2 ? m : m - n; }

}  // namespace enzo::fft
