#include "perf/diagnostics.hpp"

#include "perf/json.hpp"

namespace enzo::perf {

std::string step_record_json(const StepRecord& rec) {
  std::string s = "{";
  s += "\"step\":" + std::to_string(rec.step);
  s += ",\"t\":" + json_number(rec.t);
  s += ",\"dt\":" + json_number(rec.dt);
  s += ",\"dt_limiter\":\"" + json_escape(rec.dt_limiter) + "\"";
  s += ",\"a\":" + json_number(rec.a);
  s += ",\"z\":" + json_number(rec.z);
  s += ",\"levels\":[";
  for (std::size_t i = 0; i < rec.levels.size(); ++i) {
    if (i) s += ",";
    const LevelStat& l = rec.levels[i];
    s += "{\"level\":" + std::to_string(l.level) +
         ",\"grids\":" + std::to_string(l.grids) +
         ",\"cells\":" + std::to_string(l.cells) + "}";
  }
  s += "]";
  s += ",\"mass_total\":" + json_number(rec.mass_total);
  s += ",\"mass_residual\":" + json_number(rec.mass_residual);
  s += ",\"energy_total\":" + json_number(rec.energy_total);
  s += ",\"energy_residual\":" + json_number(rec.energy_residual);
  s += ",\"peak_bytes\":" + std::to_string(rec.peak_bytes);
  s += ",\"flops\":" + std::to_string(rec.flops);
  s += ",\"wall_seconds\":" + json_number(rec.wall_seconds);
  s += "}";
  return s;
}

bool parse_step_record(const std::string& line, StepRecord* out) {
  JsonValue doc;
  if (!json_parse(line, &doc) || !doc.is_object()) return false;
  auto num = [&](const char* key, double* dst) {
    const JsonValue* v = doc.find(key);
    if (v == nullptr || !v->is_number()) return false;
    *dst = v->number();
    return true;
  };
  double step = 0, peak = 0, flops = 0;
  if (!num("step", &step) || !num("t", &out->t) || !num("dt", &out->dt) ||
      !num("a", &out->a) || !num("z", &out->z) ||
      !num("mass_total", &out->mass_total) ||
      !num("mass_residual", &out->mass_residual) ||
      !num("energy_total", &out->energy_total) ||
      !num("energy_residual", &out->energy_residual) ||
      !num("peak_bytes", &peak) || !num("flops", &flops) ||
      !num("wall_seconds", &out->wall_seconds))
    return false;
  out->step = static_cast<std::int64_t>(step);
  out->peak_bytes = static_cast<std::uint64_t>(peak);
  out->flops = static_cast<std::uint64_t>(flops);
  const JsonValue* lim = doc.find("dt_limiter");
  if (lim == nullptr || !lim->is_string()) return false;
  out->dt_limiter = lim->str();
  const JsonValue* levels = doc.find("levels");
  if (levels == nullptr || !levels->is_array()) return false;
  out->levels.clear();
  for (const JsonValue& lv : levels->array()) {
    const JsonValue* level = lv.find("level");
    const JsonValue* grids = lv.find("grids");
    const JsonValue* cells = lv.find("cells");
    if (level == nullptr || grids == nullptr || cells == nullptr) return false;
    out->levels.push_back({static_cast<int>(level->number()),
                           static_cast<std::uint64_t>(grids->number()),
                           static_cast<std::uint64_t>(cells->number())});
  }
  return true;
}

DiagnosticsSink::DiagnosticsSink(const std::string& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "w");
}

DiagnosticsSink::~DiagnosticsSink() {
  if (f_ != nullptr) std::fclose(f_);
}

void DiagnosticsSink::write(const StepRecord& rec) {
  if (f_ == nullptr) return;
  const std::string line = step_record_json(rec);
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fputc('\n', f_);
  std::fflush(f_);
  ++records_;
}

}  // namespace enzo::perf
