#pragma once
// Per-step simulation diagnostics: one machine-readable JSONL record per
// root-level step.
//
// The paper's §4–§5 narrative tracks the run through redshift, timestep,
// per-level grid/cell populations, and the memory/flop churn of the rebuild
// cycle; DiagnosticsSink captures exactly that as one JSON object per line
// so post-processing needs no log scraping.  The driver fills a StepRecord
// after each root step (Simulation::advance_root_step) and write() appends
// it.  The schema is stable and round-trippable (see parse_json_line),
// which the perf tests and tools/check_trace verify.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace enzo::perf {

struct LevelStat {
  int level = 0;
  std::uint64_t grids = 0;
  std::uint64_t cells = 0;
};

/// Snapshot of the simulation after one root-level step.
struct StepRecord {
  std::int64_t step = 0;     ///< root steps taken so far
  double t = 0.0;            ///< code time after the step
  double dt = 0.0;           ///< the root timestep just taken
  std::string dt_limiter;    ///< which limiter set dt (hydro::dt_limiter_name)
  double a = 1.0;            ///< scale factor (1 for non-comoving)
  double z = 0.0;            ///< redshift (0 for non-comoving)
  std::vector<LevelStat> levels;        ///< grids/cells per level
  double mass_total = 0.0;              ///< root-level gas mass (code units)
  double mass_residual = 0.0;           ///< (mass - mass₀) / mass₀
  double energy_total = 0.0;            ///< root-level total gas energy
  double energy_residual = 0.0;         ///< (E - E₀) / |E₀|
  std::uint64_t peak_bytes = 0;         ///< AllocStats peak grid memory
  std::uint64_t flops = 0;              ///< cumulative FlopCounter total
  double wall_seconds = 0.0;            ///< wall time of this root step
};

/// Serialize one record as a single-line JSON object.
std::string step_record_json(const StepRecord& rec);

/// Parse a JSONL line produced by step_record_json; false on malformed
/// input or missing schema fields.
bool parse_step_record(const std::string& line, StepRecord* out);

/// Append-only JSONL writer.  Thread-compatible (the driver emits from the
/// root step loop only).
class DiagnosticsSink {
 public:
  explicit DiagnosticsSink(const std::string& path);
  ~DiagnosticsSink();
  DiagnosticsSink(const DiagnosticsSink&) = delete;
  DiagnosticsSink& operator=(const DiagnosticsSink&) = delete;

  bool ok() const { return f_ != nullptr; }
  const std::string& path() const { return path_; }
  std::int64_t records_written() const { return records_; }

  void write(const StepRecord& rec);

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  std::int64_t records_ = 0;
};

}  // namespace enzo::perf
