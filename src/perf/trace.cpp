#include "perf/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "perf/json.hpp"

namespace enzo::perf {

namespace {

thread_local TraceScope* t_scope_top = nullptr;

int this_thread_tid() {
  static std::atomic<int> next{0};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::accumulate(const std::string& path, const std::string& comp,
                               int level, double total_seconds,
                               double self_seconds, std::uint64_t calls) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[path];
  if (n.path.empty()) {
    n.path = path;
    n.component = comp;
    n.level = level;
  }
  n.calls += calls;
  n.total_seconds += total_seconds;
  n.self_seconds += self_seconds;
}

std::vector<TraceRecorder::Node> TraceRecorder::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Node> out;
  out.reserve(nodes_.size());
  for (auto& [k, v] : nodes_) out.push_back(v);
  return out;
}

double TraceRecorder::path_seconds(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(path);
  return it == nodes_.end() ? 0.0 : it->second.total_seconds;
}

std::uint64_t TraceRecorder::path_calls(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(path);
  return it == nodes_.end() ? 0 : it->second.calls;
}

std::vector<TraceRecorder::ComponentRow> TraceRecorder::component_table()
    const {
  std::map<std::string, double> by_comp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [k, n] : nodes_) by_comp[n.component] += n.self_seconds;
  }
  double total = 0.0;
  for (auto& [k, v] : by_comp) total += v;
  std::vector<ComponentRow> rows;
  rows.reserve(by_comp.size());
  for (auto& [k, v] : by_comp)
    rows.push_back({k, v, total > 0 ? v / total : 0.0});
  std::sort(rows.begin(), rows.end(),
            [](const ComponentRow& a, const ComponentRow& b) {
              return a.seconds > b.seconds;
            });
  return rows;
}

double TraceRecorder::component_seconds(const std::string& comp) const {
  std::lock_guard<std::mutex> lock(mu_);
  double t = 0.0;
  for (auto& [k, n] : nodes_)
    if (n.component == comp) t += n.self_seconds;
  return t;
}

double TraceRecorder::total_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double t = 0.0;
  for (auto& [k, n] : nodes_) t += n.self_seconds;
  return t;
}

std::string TraceRecorder::component_report() const {
  std::string s;
  s += "component                     usage      seconds\n";
  s += "-------------------------------------------------\n";
  char buf[160];
  double total = 0.0;
  for (const ComponentRow& r : component_table()) {
    std::snprintf(buf, sizeof(buf), "%-28s %5.1f %%   %9.3f\n", r.name.c_str(),
                  100.0 * r.fraction, r.seconds);
    s += buf;
    total += r.seconds;
  }
  std::snprintf(buf, sizeof(buf), "%-28s           %9.3f\n", "total", total);
  s += buf;
  return s;
}

void TraceRecorder::enable_events(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  events_on_ = on;
  if (on) events_.reserve(std::min<std::size_t>(max_events_, 1u << 16));
}

bool TraceRecorder::events_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_on_;
}

void TraceRecorder::record_event(const std::string& name,
                                 const std::string& path,
                                 const std::string& comp, int level,
                                 double ts_us, double dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!events_on_) return;
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, path, comp, level, ts_us, dur_us,
                     this_thread_tid()});
}

std::uint64_t TraceRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t TraceRecorder::events_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceRecorder::chrome_trace_json() const {
  std::vector<Event> evs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    evs = events_;
  }
  std::sort(evs.begin(), evs.end(),
            [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });
  std::string s = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : evs) {
    if (!first) s += ",";
    first = false;
    s += "{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
         json_escape(e.component) + "\",\"ph\":\"X\",\"ts\":" +
         json_number(e.ts_us) + ",\"dur\":" + json_number(e.dur_us) +
         ",\"pid\":0,\"tid\":" + std::to_string(e.tid) +
         ",\"args\":{\"path\":\"" + json_escape(e.path) +
         "\",\"level\":" + std::to_string(e.level) + "}}";
  }
  s += "],\"displayTimeUnit\":\"ms\"}";
  return s;
}

bool TraceRecorder::write_chrome_trace(const std::string& file_path) const {
  std::FILE* f = std::fopen(file_path.c_str(), "w");
  if (!f) return false;
  const std::string doc = chrome_trace_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void TraceRecorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
  events_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder instance;
  return instance;
}

// ---- TraceScope -------------------------------------------------------------

TraceScope::TraceScope(std::string name, const char* comp, int level,
                       TraceRecorder* rec)
    : rec_(rec), name_(std::move(name)), parent_(t_scope_top) {
  if (parent_ != nullptr && parent_->rec_ == rec_) {
    path_ = parent_->path_ + "/" + name_;
    component_ = comp != nullptr ? comp : parent_->component_;
    level_ = level >= 0 ? level : parent_->level_;
  } else {
    path_ = name_;
    component_ = comp != nullptr ? comp : component::kOther;
    level_ = level;
  }
  t_scope_top = this;
  start_ = std::chrono::steady_clock::now();
}

TraceScope::~TraceScope() {
  const auto end = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(end - start_).count();
  t_scope_top = parent_;
  if (parent_ != nullptr && parent_->rec_ == rec_)
    parent_->child_seconds_ += elapsed;
  const double self = std::max(elapsed - child_seconds_, 0.0);
  rec_->accumulate(path_, component_, level_, elapsed, self, 1);
  if (rec_->events_enabled()) {
    const double end_us = rec_->now_us();
    const double dur_us = elapsed * 1e6;
    rec_->record_event(name_, path_, component_, level_,
                       std::max(end_us - dur_us, 0.0), dur_us);
  }
}

}  // namespace enzo::perf
