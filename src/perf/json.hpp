#pragma once
// Minimal JSON support for the telemetry subsystem: an escaping writer used
// by the trace/diagnostics exporters, and a small recursive-descent parser
// used by the round-trip tests and the dependency-free trace self-check
// (tools/check_trace.cpp).  Deliberately tiny: objects, arrays, strings,
// doubles, bools, null — everything the trace_event and JSONL schemas need,
// and nothing more.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace enzo::perf {

/// Escape a string for embedding in a JSON document (adds no quotes).
std::string json_escape(const std::string& s);

/// Format a double the way JSON expects (no inf/nan; shortest round-trip).
std::string json_number(double v);

class JsonParser;

/// Parsed JSON value.  Numbers are stored as double (adequate for telemetry
/// payloads; 2^53 exceeds any counter this code emits per run segment).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  double number() const { return num_; }
  bool boolean() const { return num_ != 0.0; }
  const std::string& str() const { return str_; }
  const std::vector<JsonValue>& array() const { return arr_; }
  const std::map<std::string, JsonValue>& object() const { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  friend class JsonParser;

 private:
  Kind kind_ = Kind::kNull;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Parse a complete JSON document.  Returns false (with a position/message
/// in *error when non-null) on malformed input or trailing garbage.
bool json_parse(const std::string& text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace enzo::perf
