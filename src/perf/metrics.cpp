#include "perf/metrics.hpp"

#include "perf/json.hpp"

namespace enzo::perf {

int Histogram::bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  int b = 1;
  while (v > 1 && b < kBuckets - 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

std::uint64_t Histogram::bucket_lo(int i) {
  if (i <= 0) return 0;
  return std::uint64_t{1} << (i - 1);
}

void Histogram::observe(std::uint64_t v) {
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::register_source(const std::string& name, SourceFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_[name] = std::move(fn);
}

std::vector<Registry::Sample> Registry::snapshot() const {
  std::vector<Sample> out;
  std::vector<SourceFn> srcs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_)
      out.push_back({name, "counter", static_cast<double>(c->value())});
    for (auto& [name, g] : gauges_) out.push_back({name, "gauge", g->value()});
    for (auto& [name, h] : histograms_) {
      out.push_back(
          {name + ".count", "histogram", static_cast<double>(h->count())});
      out.push_back({name + ".sum", "histogram",
                     static_cast<double>(h->sum())});
    }
    srcs.reserve(sources_.size());
    for (auto& [name, fn] : sources_) srcs.push_back(fn);
  }
  // Poll sources outside the lock: a source may itself consult the registry.
  for (auto& fn : srcs) {
    auto rows = fn();
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

std::string Registry::json() const {
  std::string s = "{";
  bool first = true;
  for (const Sample& smp : snapshot()) {
    if (!first) s += ",";
    first = false;
    s += "\"" + json_escape(smp.name) + "\":" + json_number(smp.value);
  }
  // Non-empty histogram buckets, keyed by lower bound.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, h] : histograms_) {
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      s += ",\"" + json_escape(name) + ".bucket." +
           std::to_string(Histogram::bucket_lo(i)) +
           "\":" + std::to_string(n);
    }
  }
  s += "}";
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace enzo::perf
