#pragma once
// Metrics registry: named counters, gauges, and log-scale histograms behind
// one process-wide Registry.
//
// Solvers record the churn statistics §5 of the paper reports alongside the
// timing table — cells updated, ghost cells filled, chemistry subcycles,
// hierarchy rebuilds and the grids they create, transport bytes — and the
// legacy singletons (util::FlopCounter, util::AllocStats) publish into the
// same snapshot as registered *sources*, so one Registry::global().snapshot()
// captures everything a bench or diagnostics record needs.
//
// Lookup by name takes a mutex; instruments themselves are lock-free atomics
// with stable addresses, so hot paths should cache the reference:
//
//   static perf::Counter& c = perf::Registry::global().counter("hydro.cells");
//   c.add(n);

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace enzo::perf {

/// Monotonically increasing count (resettable between run segments).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t pack(double v) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double unpack(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Log₂-scale histogram of non-negative integer samples.  Bucket 0 holds
/// exact zeros; bucket i (1 ≤ i < kBuckets-1) holds [2^(i-1), 2^i); the last
/// bucket absorbs everything at or beyond 2^(kBuckets-2) (overflow).
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void observe(std::uint64_t v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  /// Bucket index a value lands in (exposed for tests).
  static int bucket_of(std::uint64_t v);
  /// Inclusive lower bound of bucket i (0 for the zeros bucket).
  static std::uint64_t bucket_lo(int i);
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

class Registry {
 public:
  /// Find-or-create; returned references stay valid for the registry's
  /// lifetime (instruments are never destroyed, only reset).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One snapshot row.  Histograms expand to `<name>.count` / `<name>.sum`
  /// rows plus per-bucket rows in the JSON export.
  struct Sample {
    std::string name;
    std::string kind;  ///< "counter" | "gauge" | "histogram" | "source"
    double value = 0.0;
  };
  /// External read-only providers (flops, allocation stats, …) polled at
  /// snapshot time.  Re-registering a name replaces the provider.
  using SourceFn = std::function<std::vector<Sample>()>;
  void register_source(const std::string& name, SourceFn fn);

  /// Flat snapshot of every instrument and source.
  std::vector<Sample> snapshot() const;
  /// Snapshot as a JSON object {name: value, ...} (histograms expanded;
  /// bucket rows included only for non-empty buckets).
  std::string json() const;

  /// Reset all owned instruments (sources are external and not touched).
  void reset();

  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, SourceFn> sources_;
};

}  // namespace enzo::perf
