#include "perf/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace enzo::perf {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "json error at byte %zu: %s", pos_, msg);
      *error_ = buf;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word, JsonValue* out, JsonValue::Kind k,
               double num) {
    for (const char* p = word; *p; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return fail("bad literal");
    out->kind_ = k;
    out->num_ = num;
    return true;
  }

  bool string_body(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_];
      if (c == '\\') {
        if (++pos_ >= s_.size()) return fail("bad escape");
        switch (s_[pos_]) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[++pos_];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad hex digit");
            }
            // UTF-8 encode (surrogate pairs unsupported; telemetry is ASCII).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("control character in string");
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool value(JsonValue* out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == 'n') return literal("null", out, JsonValue::Kind::kNull, 0);
    if (c == 't') return literal("true", out, JsonValue::Kind::kBool, 1);
    if (c == 'f') return literal("false", out, JsonValue::Kind::kBool, 0);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return string_body(&out->str_);
    }
    if (c == '[') {
      out->kind_ = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        out->arr_.emplace_back();
        if (!value(&out->arr_.back())) return false;
        skip_ws();
        if (pos_ >= s_.size()) return fail("unterminated array");
        if (s_[pos_] == ',') {
          ++pos_;
          skip_ws();
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      out->kind_ = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != '"')
          return fail("expected member name");
        std::string key;
        if (!string_body(&key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
        ++pos_;
        skip_ws();
        if (!value(&out->obj_[key])) return false;
        skip_ws();
        if (pos_ >= s_.size()) return fail("unterminated object");
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    // Number.
    {
      const char* start = s_.c_str() + pos_;
      char* end = nullptr;
      const double v = std::strtod(start, &end);
      if (end == start) return fail("unexpected character");
      pos_ += static_cast<std::size_t>(end - start);
      out->kind_ = JsonValue::Kind::kNumber;
      out->num_ = v;
      return true;
    }
  }

  const std::string& s_;
  std::string* error_;
  std::size_t pos_ = 0;
};

bool json_parse(const std::string& text, JsonValue* out, std::string* error) {
  JsonParser p(text, error);
  return p.parse(out);
}

}  // namespace enzo::perf
