#pragma once
// Hierarchical trace recorder: the timing half of the telemetry subsystem.
//
// RAII TraceScopes nest (e.g. evolve_level/L2/hydro/ppm_sweep_x) and
// accumulate, per unique path, call counts plus total and *self* wall time
// (elapsed minus time spent in direct child scopes).  Each scope carries a
// science-component attribution and an optional refinement level, so the
// recorder can answer both questions the paper's §5 tables pose —
// fraction-of-time per component, and time per (phase, level) — from one
// measurement pass.  Optionally every scope is also captured as a Chrome
// trace_event, exportable as JSON loadable in chrome://tracing / Perfetto.
//
// Thread-safety: scope entry/exit touches only a thread-local stack; the
// shared aggregation maps are mutex-protected on scope exit.  Scopes opened
// inside OpenMP regions nest under whatever scope their thread opened last
// (worker threads start a fresh root).

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace enzo::perf {

/// Canonical component names, shared with util::ComponentTimers so the
/// paper-style table keys stay stable across the compatibility shim.
namespace component {
inline constexpr const char* kHydro = "hydrodynamics";
inline constexpr const char* kGravity = "Poisson solver";
inline constexpr const char* kChemistry = "chemistry & cooling";
inline constexpr const char* kNbody = "N-body";
inline constexpr const char* kRebuild = "hierarchy rebuild";
inline constexpr const char* kBoundary = "boundary conditions";
inline constexpr const char* kIo = "checkpoint I/O";
inline constexpr const char* kOther = "other overhead";
}  // namespace component

class TraceRecorder {
 public:
  TraceRecorder();

  /// Aggregated accounting for one unique scope path.
  struct Node {
    std::string path;       ///< slash-joined scope names, e.g. "a/b/c"
    std::string component;  ///< component attribution of the self time
    int level = -1;         ///< refinement level, -1 when not level-tagged
    std::uint64_t calls = 0;
    double total_seconds = 0.0;  ///< inclusive (children counted)
    double self_seconds = 0.0;   ///< exclusive (children subtracted)
  };

  /// Direct accumulation (used by TraceScope on exit and by the
  /// ComponentTimers compatibility shim, which reports self == total).
  void accumulate(const std::string& path, const std::string& comp, int level,
                  double total_seconds, double self_seconds,
                  std::uint64_t calls = 1);

  std::vector<Node> nodes() const;
  /// Inclusive seconds of one exact path (0 when never entered).
  double path_seconds(const std::string& path) const;
  /// Calls of one exact path.
  std::uint64_t path_calls(const std::string& path) const;

  // ---- paper-style component table ----------------------------------------
  struct ComponentRow {
    std::string name;
    double seconds;   ///< summed self time attributed to the component
    double fraction;  ///< seconds / total of all components
  };
  /// Rows descending by time; fractions sum to 1 (± fp rounding) because
  /// they partition the self-time total exactly.
  std::vector<ComponentRow> component_table() const;
  double component_seconds(const std::string& comp) const;
  /// Sum of all self time == total instrumented wall time.
  double total_seconds() const;
  /// Render the "component | usage | seconds" table.
  std::string component_report() const;

  // ---- Chrome trace_event capture -----------------------------------------
  /// Event capture is off by default (aggregation alone is cheap enough to
  /// leave always-on); enable before the run when --trace-out is requested.
  void enable_events(bool on);
  bool events_enabled() const;
  /// Record one complete ("ph":"X") event; ts/dur in microseconds relative
  /// to the recorder epoch.  Drops (and counts) events beyond the cap.
  void record_event(const std::string& name, const std::string& path,
                    const std::string& comp, int level, double ts_us,
                    double dur_us);
  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

  /// The trace_event JSON document (events sorted by ts so timestamps are
  /// monotonic, as the viewers expect).
  std::string chrome_trace_json() const;
  /// Write chrome_trace_json() to a file; false on I/O failure.
  bool write_chrome_trace(const std::string& file_path) const;

  /// Microseconds since the recorder epoch (steady clock).
  double now_us() const;

  void reset();

  /// Process-wide recorder used by all instrumentation.
  static TraceRecorder& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Node> nodes_;
  struct Event {
    std::string name;
    std::string path;
    std::string component;
    int level;
    double ts_us;
    double dur_us;
    int tid;
  };
  std::vector<Event> events_;
  bool events_on_ = false;
  std::size_t max_events_ = 1u << 20;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII scope.  `name` is one path segment (slashes allowed for pre-joined
/// names); `comp` attributes the scope's self time to a component table row
/// (nullptr inherits the enclosing scope's component, component::kOther at
/// the root); `level` tags the refinement level (-1 inherits).
class TraceScope {
 public:
  explicit TraceScope(std::string name, const char* comp = nullptr,
                      int level = -1,
                      TraceRecorder* rec = &TraceRecorder::global());
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* rec_;
  std::string name_;
  std::string path_;
  std::string component_;
  int level_;
  double child_seconds_ = 0.0;
  TraceScope* parent_;  ///< enclosing scope on this thread
  std::chrono::steady_clock::time_point start_;
};

}  // namespace enzo::perf
