#include "perf/log.hpp"

#include <cstdlib>
#include <vector>

namespace enzo::perf {

const char* log_level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

LogLevel log_level_from(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void StructuredLog::set_min_level(LogLevel lvl) {
  std::lock_guard<std::mutex> lock(mu_);
  min_ = lvl;
}

LogLevel StructuredLog::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

void StructuredLog::set_stream(std::FILE* f) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ = f;
}

void StructuredLog::log(LogLevel lvl, const std::string& component,
                        const std::string& message) {
  if (!enabled(lvl)) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* out = out_ != nullptr ? out_ : stderr;
  std::fprintf(out, "[%s] %s: %s\n", log_level_name(lvl), component.c_str(),
               message.c_str());
  std::fflush(out);
}

void StructuredLog::logf(LogLevel lvl, const char* component, const char* fmt,
                         ...) {
  if (!enabled(lvl)) return;
  std::va_list ap;
  va_start(ap, fmt);
  std::va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::vector<char> buf(static_cast<std::size_t>(n > 0 ? n : 0) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
  va_end(ap2);
  log(lvl, component, buf.data());
}

StructuredLog& StructuredLog::global() {
  static StructuredLog* instance = [] {
    auto* log = new StructuredLog();
    if (const char* lvl = std::getenv("ENZO_LOG_LEVEL"))
      log->set_min_level(log_level_from(lvl));
    else if (std::getenv("ENZO_DEBUG_LEVELS") != nullptr)
      log->set_min_level(LogLevel::kDebug);
    return log;
  }();
  return *instance;
}

}  // namespace enzo::perf
