#pragma once
// Structured, leveled logging replacing ad-hoc fprintf diagnostics.
//
// One line per event: "[level] component: message".  The global minimum
// level comes from ENZO_LOG_LEVEL (debug|info|warn|error|off; default info);
// the legacy ENZO_DEBUG_LEVELS variable also switches the global log to
// debug so existing workflows keep working.  Check `enabled()` before
// formatting expensive debug payloads.

#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>

namespace enzo::perf {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel lvl);
/// Parse "debug"/"info"/"warn"/"error"/"off"; defaults to kInfo.
LogLevel log_level_from(const std::string& name);

class StructuredLog {
 public:
  void set_min_level(LogLevel lvl);
  LogLevel min_level() const;
  bool enabled(LogLevel lvl) const { return lvl >= min_level(); }

  /// Redirect output (default stderr); pass nullptr to restore stderr.
  void set_stream(std::FILE* f);

  void log(LogLevel lvl, const std::string& component,
           const std::string& message);
  void logf(LogLevel lvl, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

  /// Process-wide log, level initialized from the environment.
  static StructuredLog& global();

 private:
  mutable std::mutex mu_;
  LogLevel min_ = LogLevel::kInfo;
  std::FILE* out_ = nullptr;  ///< nullptr means stderr
};

}  // namespace enzo::perf
