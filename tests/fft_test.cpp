// FFT substrate tests: round trips, agreement with a brute-force DFT,
// Parseval's theorem, and linearity — the properties the Poisson solver and
// the Gaussian-random-field generator rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <thread>
#include <vector>

#include "fft/fft.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ef = enzo::fft;
using ef::cplx;

namespace {
std::vector<cplx> brute_dft(const std::vector<cplx>& in, bool inverse) {
  const int n = static_cast<int>(in.size());
  std::vector<cplx> out(n);
  const double sgn = inverse ? 1.0 : -1.0;
  for (int k = 0; k < n; ++k) {
    cplx acc = 0;
    for (int j = 0; j < n; ++j) {
      const double ang = sgn * 2.0 * M_PI * k * j / n;
      acc += in[j] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}
}  // namespace

TEST(Fft, IsPow2) {
  EXPECT_TRUE(ef::is_pow2(1));
  EXPECT_TRUE(ef::is_pow2(64));
  EXPECT_FALSE(ef::is_pow2(0));
  EXPECT_FALSE(ef::is_pow2(3));
  EXPECT_FALSE(ef::is_pow2(-4));
  EXPECT_FALSE(ef::is_pow2(48));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cplx> v(6);
  EXPECT_THROW(ef::fft(v, false), enzo::Error);
}

TEST(Fft, DeltaFunctionTransformsToConstant) {
  std::vector<cplx> v(8, 0.0);
  v[0] = 1.0;
  ef::fft(v, false);
  for (const cplx& c : v) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleModeLandsInSingleBin) {
  const int n = 32;
  std::vector<cplx> v(n);
  for (int j = 0; j < n; ++j)
    v[j] = std::cos(2.0 * M_PI * 3.0 * j / n);
  ef::fft(v, false);
  for (int k = 0; k < n; ++k) {
    const double expected = (k == 3 || k == n - 3) ? n / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(v[k]), expected, 1e-9) << "bin " << k;
  }
}

class FftRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FftRoundTrip, ForwardInverseIsIdentity) {
  const int n = GetParam();
  enzo::util::Rng rng(99 + n);
  std::vector<cplx> v(n), orig;
  for (cplx& c : v) c = cplx(rng.gaussian(), rng.gaussian());
  orig = v;
  ef::fft(v, false);
  ef::fft(v, true);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST_P(FftRoundTrip, MatchesBruteForceDft) {
  const int n = GetParam();
  if (n > 256) GTEST_SKIP() << "brute force too slow";
  enzo::util::Rng rng(5 + n);
  std::vector<cplx> v(n);
  for (cplx& c : v) c = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  auto ref = brute_dft(v, false);
  ef::fft(v, false);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(v[i].real(), ref[i].real(), 1e-9 * n);
    EXPECT_NEAR(v[i].imag(), ref[i].imag(), 1e-9 * n);
  }
}

TEST_P(FftRoundTrip, Parseval) {
  const int n = GetParam();
  enzo::util::Rng rng(17 + n);
  std::vector<cplx> v(n);
  double sum_x = 0;
  for (cplx& c : v) {
    c = cplx(rng.gaussian(), 0.0);
    sum_x += std::norm(c);
  }
  ef::fft(v, false);
  double sum_k = 0;
  for (const cplx& c : v) sum_k += std::norm(c);
  EXPECT_NEAR(sum_k / n, sum_x, 1e-8 * sum_x);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Fft3, RoundTrip3d) {
  enzo::util::Rng rng(31);
  enzo::util::Array3<cplx> a(8, 4, 16);
  enzo::util::Array3<cplx> orig(8, 4, 16);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = cplx(rng.gaussian(), rng.gaussian());
    orig.data()[i] = a.data()[i];
  }
  ef::fft3(a, false);
  ef::fft3(a, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i].real(), orig.data()[i].real(), 1e-10);
    EXPECT_NEAR(a.data()[i].imag(), orig.data()[i].imag(), 1e-10);
  }
}

TEST(Fft3, DegenerateDimensionsActAs1d) {
  // nz == ny == 1: fft3 must match the 1-d transform.
  const int n = 16;
  enzo::util::Rng rng(77);
  enzo::util::Array3<cplx> a(n, 1, 1);
  std::vector<cplx> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = cplx(rng.uniform(-1, 1), 0.0);
    a(i, 0, 0) = v[i];
  }
  ef::fft3(a, false);
  ef::fft_inplace(v.data(), n, false);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(a(i, 0, 0).real(), v[i].real(), 1e-10);
    EXPECT_NEAR(a(i, 0, 0).imag(), v[i].imag(), 1e-10);
  }
}

TEST(Fft3, PlaneWaveSeparates) {
  const int n = 8;
  enzo::util::Array3<cplx> a(n, n, n);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) {
        const double phase = 2.0 * M_PI * (2.0 * i + 1.0 * j + 3.0 * k) / n;
        a(i, j, k) = cplx(std::cos(phase), std::sin(phase));
      }
  ef::fft3(a, false);
  const double total = n * n * n;
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) {
        const double expected = (i == 2 && j == 1 && k == 3) ? total : 0.0;
        EXPECT_NEAR(std::abs(a(i, j, k)), expected, 1e-8);
      }
}

TEST(Fft3, RealTransformsRoundTrip) {
  enzo::util::Rng rng(3);
  enzo::util::Array3<double> f(8, 8, 8);
  for (auto& v : f) v = rng.gaussian();
  auto spec = ef::fft3_real(f);
  auto back = ef::ifft3_real(spec);
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_NEAR(back.data()[i], f.data()[i], 1e-10);
}

TEST(Fft, FreqIndex) {
  EXPECT_EQ(ef::freq_index(0, 8), 0);
  EXPECT_EQ(ef::freq_index(3, 8), 3);
  EXPECT_EQ(ef::freq_index(4, 8), 4);   // Nyquist kept positive
  EXPECT_EQ(ef::freq_index(5, 8), -3);
  EXPECT_EQ(ef::freq_index(7, 8), -1);
}

TEST(Fft, LinearityProperty) {
  const int n = 64;
  enzo::util::Rng rng(12);
  std::vector<cplx> a(n), b(n), sum(n);
  for (int i = 0; i < n; ++i) {
    a[i] = cplx(rng.gaussian(), rng.gaussian());
    b[i] = cplx(rng.gaussian(), rng.gaussian());
    sum[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  ef::fft(a, false);
  ef::fft(b, false);
  ef::fft(sum, false);
  for (int i = 0; i < n; ++i) {
    const cplx expect = 2.0 * a[i] + 3.0 * b[i];
    EXPECT_NEAR(sum[i].real(), expect.real(), 1e-8);
    EXPECT_NEAR(sum[i].imag(), expect.imag(), 1e-8);
  }
}

// ---- plan-cache lifetime -----------------------------------------------------

// Regression: plan_for used to return references into a thread_local
// std::vector<Plan>; planning additional lengths reallocated the vector and
// left previously returned references dangling (asan catches the stale read
// directly; without asan the corrupted twiddles break the round trip).
TEST(FftPlanCache, ReferencesSurviveCacheGrowth) {
  // New thread → fresh thread_local cache, so the test controls exactly
  // which lengths have been planned.
  std::thread([] {
    const ef::detail::Plan& p8 = ef::detail::plan_for(8);
    EXPECT_EQ(p8.n, 8);
    ASSERT_EQ(p8.bitrev.size(), 8u);
    ASSERT_EQ(p8.w.size(), 4u);
    const std::vector<int> bitrev8 = p8.bitrev;
    const std::vector<cplx> w8 = p8.w;
    // Plan enough distinct lengths to force several cache reallocations
    // while the p8 reference is still live.
    for (int n = 16; n <= 2048; n <<= 1) {
      const ef::detail::Plan& pn = ef::detail::plan_for(n);
      EXPECT_EQ(pn.n, n);
      // Interleave a transform of an already-planned length: fft_inplace
      // re-fetches its plan, and the held reference must still be intact.
      enzo::util::Rng rng(static_cast<std::uint64_t>(n));
      std::vector<cplx> v(8);
      for (cplx& c : v) c = cplx(rng.gaussian(), rng.gaussian());
      const std::vector<cplx> orig = v;
      ef::fft(v, false);
      ef::fft(v, true);
      for (int i = 0; i < 8; ++i) {
        EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-12);
        EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-12);
      }
      EXPECT_EQ(p8.n, 8);
      EXPECT_EQ(p8.bitrev, bitrev8);
      ASSERT_EQ(p8.w.size(), w8.size());
      for (std::size_t k = 0; k < w8.size(); ++k) {
        EXPECT_EQ(p8.w[k].real(), w8[k].real());
        EXPECT_EQ(p8.w[k].imag(), w8[k].imag());
      }
    }
    // Re-planning a known length returns the same object, not a copy.
    EXPECT_EQ(&ef::detail::plan_for(8), &p8);
  }).join();
}
