// Additional coverage: unique-counting of AMR data in the analysis layer,
// hydro convergence order on smooth flows, and a parameterized collisional-
// ionization-equilibrium temperature sweep for the chemistry network.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/analysis.hpp"
#include "chemistry/chemistry.hpp"
#include "chemistry/rates.hpp"
#include "hydro/hydro.hpp"
#include "mesh/boundary.hpp"
#include "mesh/hierarchy.hpp"
#include "util/constants.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;
namespace cn = enzo::constants;

TEST(Coverage, RadialProfileCountsEachLocationOnceAcrossLevels) {
  // Uniform density on a two-level hierarchy: the profile must be exactly
  // uniform and the enclosed mass must equal density × sphere volume — any
  // double counting of coarse cells under the child would break both.
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 1;
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* root = h.grids(0)[0];
  for (Field f : root->field_list())
    root->field(f).fill(f == Field::kDensity ? 3.0 : 0.5);
  root->store_old_fields();
  auto child = std::make_unique<Grid>(
      h.make_spec(1, {{10, 10, 10}, {22, 22, 22}}), p.fields);
  child->set_parent(root);
  for (Field f : child->field_list())
    child->field(f).fill(f == Field::kDensity ? 3.0 : 0.5);
  h.insert_grid(std::move(child));

  analysis::ProfileOptions opt;
  opt.nbins = 10;
  opt.r_min = 0.04;
  opt.r_max = 0.45;
  hydro::HydroParams hp;
  chemistry::ChemUnits units;
  ext::PosVec c{ext::pos_t(0.5), ext::pos_t(0.5), ext::pos_t(0.5)};
  const auto prof = analysis::radial_profile(h, c, opt, hp, units);
  for (int b = 0; b < opt.nbins; ++b) {
    if (prof.cell_count[b] == 0) continue;
    EXPECT_NEAR(prof.gas_density[b], 3.0, 1e-12) << "bin " << b;
  }
  // Enclosed mass at the largest populated radius ≈ 3 × (4/3)π r³ (cell
  // quantization tolerance).
  int blast = opt.nbins - 1;
  while (blast > 0 && prof.cell_count[blast] == 0) --blast;
  const double r = prof.r[blast];
  const double expected = 3.0 * 4.0 / 3.0 * M_PI * r * r * r;
  EXPECT_NEAR(prof.enclosed_gas_mass[blast], expected, 0.15 * expected);
}

TEST(Coverage, SliceOnTwoLevelsReadsChildInsideParentOutside) {
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 1;
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* root = h.grids(0)[0];
  for (Field f : root->field_list()) root->field(f).fill(1.0);
  root->store_old_fields();
  auto child = std::make_unique<Grid>(
      h.make_spec(1, {{12, 12, 12}, {20, 20, 20}}), p.fields);
  child->set_parent(root);
  for (Field f : child->field_list()) child->field(f).fill(100.0);
  h.insert_grid(std::move(child));
  const auto s = analysis::density_slice(h, 2, ext::pos_t(0.5), {0.5, 0.5},
                                         0.5, 64);
  // Center pixel = child (log10 100 = 2), corner = root (0).
  EXPECT_NEAR(s.log10_density[static_cast<std::size_t>(32) * 64 + 32], 2.0,
              1e-9);
  EXPECT_NEAR(s.log10_density[0], 0.0, 1e-9);
  EXPECT_EQ(s.finest_level_touched, 1);
}

namespace {
/// L1 error of a small-amplitude acoustic wave after one crossing time.
double acoustic_error(int n) {
  mesh::HierarchyParams p;
  p.root_dims = {n, 1, 1};
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  const double gamma = 5.0 / 3.0;
  const double rho0 = 1.0, p0 = 1.0 / gamma;  // c_s = 1
  const double eps = 1e-4;
  auto init = [&](int i) {
    return eps * std::sin(2.0 * M_PI * (i + 0.5) / n);
  };
  for (int i = 0; i < n; ++i) {
    const double d = init(i);
    g->field(Field::kDensity)(g->sx(i), 0, 0) = rho0 * (1.0 + d);
    g->field(Field::kVelocityX)(g->sx(i), 0, 0) = d;  // right-moving mode
    g->field(Field::kVelocityY)(g->sx(i), 0, 0) = 0;
    g->field(Field::kVelocityZ)(g->sx(i), 0, 0) = 0;
    const double pr = p0 * (1.0 + gamma * d);
    const double ei = pr / ((gamma - 1.0) * rho0 * (1.0 + d));
    g->field(Field::kInternalEnergy)(g->sx(i), 0, 0) = ei;
    g->field(Field::kTotalEnergy)(g->sx(i), 0, 0) = ei + 0.5 * d * d;
  }
  hydro::HydroParams hp;
  hp.flattening = false;  // smooth flow
  auto exp = cosmology::Expansion::statics();
  double t = 0;
  const double t_end = 1.0;  // one crossing at c_s = 1
  while (t < t_end) {
    mesh::set_boundary_values(h, 0);
    double dt = std::min(hydro::compute_timestep(*g, hp, exp), t_end - t);
    hydro::solve_hydro_step(*g, dt, hp, exp);
    t += dt;
  }
  // The wave returns to its initial phase (speed 1, period 1).
  double l1 = 0;
  for (int i = 0; i < n; ++i)
    l1 += std::abs(g->field(Field::kDensity)(g->sx(i), 0, 0) -
                   rho0 * (1.0 + init(i)));
  return l1 / n / eps;
}
}  // namespace

TEST(Coverage, AcousticWaveConvergesAtHighOrder) {
  const double e32 = acoustic_error(32);
  const double e64 = acoustic_error(64);
  // PPM on smooth flow: better than 2nd order between these resolutions.
  EXPECT_LT(e64, e32 / 3.5);
  EXPECT_LT(e64, 0.02);  // small absolute phase/diffusion error
}

class CieSweep : public ::testing::TestWithParam<double> {};

TEST_P(CieSweep, NetworkRelaxesToRateRatioEquilibrium) {
  const double T = GetParam();
  mesh::HierarchyParams p;
  p.root_dims = {4, 4, 4};
  p.fields = mesh::chemistry_field_list();
  mesh::Hierarchy h(p);
  h.build_root();
  Grid* g = h.grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  g->field(Field::kDensity).fill(1.0);
  chemistry::ChemistryParams prm;
  prm.cooling = false;
  prm.hydrogen_fraction = 1.0;
  chemistry::initialize_primordial_composition(*g, prm, 0.5, 0.0);
  chemistry::ChemUnits u;
  u.n_factor = 100.0;
  u.rho_cgs = 100.0 * cn::kHydrogenMass;
  u.e_cgs = cn::kBoltzmann / cn::kHydrogenMass;
  u.time_s = 1.0;
  auto pin = [&] {
    for (int k = 0; k < g->nt(2); ++k)
      for (int j = 0; j < g->nt(1); ++j)
        for (int i = 0; i < g->nt(0); ++i) {
          const double mu = chemistry::cell_mu(*g, i, j, k);
          g->field(Field::kInternalEnergy)(i, j, k) =
              T / ((prm.gamma - 1.0) * mu);
        }
  };
  for (int it = 0; it < 40; ++it) {
    pin();
    chemistry::solve_chemistry_step(*g, 5e12, prm, u);
  }
  const auto r = chemistry::compute_rates(T);
  const int si = g->sx(1), sj = g->sy(1), sk = g->sz(1);
  const double x = g->field(Field::kHII)(si, sj, sk) /
                   (g->field(Field::kHII)(si, sj, sk) +
                    g->field(Field::kHI)(si, sj, sk));
  const double x_eq = r.k1 / (r.k1 + r.k2);
  EXPECT_NEAR(x, x_eq, 0.05 + 0.05 * x_eq) << "T=" << T;
}

INSTANTIATE_TEST_SUITE_P(Temperatures, CieSweep,
                         ::testing::Values(1.2e4, 1.6e4, 2e4, 3e4, 5e4));
