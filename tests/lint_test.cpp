// enzo-lint rule tests: one true-positive and one negative fixture per rule,
// suppression-directive and baseline semantics, and a whole-repo smoke run
// (every finding in src/ must be covered by the shipped baseline).
//
// Fixtures are C++ source held in raw strings; the `rel` path passed to the
// linter drives the built-in allowlists, so a fixture can masquerade as any
// repo file (e.g. src/perf/log.cpp to exercise the printf allowlist).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

using namespace enzo::lint;

namespace {

std::vector<Finding> lint_src(const std::string& rel, const std::string& text) {
  SourceFile f;
  f.path = rel;
  f.rel = rel;
  lex(text, &f);
  return run_rules(f);
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& fi) { return fi.rule == rule; }));
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LintLexer, StripsCommentsStringsAndPreprocessor) {
  SourceFile f;
  lex("#include <cstdio>\n"
      "// printf in a comment\n"
      "/* assert(1) in a block comment */\n"
      "const char* s = \"printf inside a string\";\n",
      &f);
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "printf");
    EXPECT_NE(t.text, "assert");
    EXPECT_NE(t.text, "include");
  }
}

TEST(LintLexer, ParsesAllowDirectives) {
  SourceFile f;
  lex("int a;\n"
      "int b;  // enzo-lint: allow(banned-assert) reason here\n"
      "// enzo-lint: allow-file(banned-printf) logging shim\n",
      &f);
  ASSERT_TRUE(f.allows.count(2));
  EXPECT_TRUE(f.allows.at(2).count("banned-assert"));
  ASSERT_TRUE(f.allows.count(0));  // line 0 = file-wide
  EXPECT_TRUE(f.allows.at(0).count("banned-printf"));
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

TEST(LintRules, UnorderedIterationFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void emit(std::unordered_map<int, double>& m, Writer& w) {
      for (const auto& kv : m) w.write(kv.second);
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "determinism-unordered-iteration"), 1);
}

TEST(LintRules, OrderedIterationNotFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void emit(std::map<int, double>& m, std::unordered_map<int, double>& lut,
              Writer& w) {
      for (const auto& kv : m) w.write(kv.second + lut.at(kv.first));
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "determinism-unordered-iteration"), 0);
}

TEST(LintRules, GridFpAccumulationFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    double total_mass(const Hierarchy& h) {
      double sum = 0.0;
      for (const Grid* g : h.grids(0)) {
        sum += g->mass();
      }
      return sum;
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "determinism-grid-fp-accumulation"), 1);
}

TEST(LintRules, PerGridAccumulatorNotFlagged) {
  // The accumulator lives inside the grid loop: per-grid arithmetic is
  // deterministic regardless of task order.
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void per_grid(const Hierarchy& h) {
      for (const Grid* g : h.grids(0)) {
        double cell_sum = 0.0;
        cell_sum += g->mass();
        publish(g, cell_sum);
      }
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "determinism-grid-fp-accumulation"), 0);
}

TEST(LintRules, NondeterministicSourceFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    int seed_from_entropy() {
      std::random_device rd;
      return static_cast<int>(rd());
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "determinism-nondeterministic-source"), 1);
}

TEST(LintRules, MemberNamedTimeNotFlagged) {
  // `double time() const` is an accessor, not ::time().
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    class Clocked {
     public:
      double time() const { return t_; }
     private:
      double t_ = 0.0;
    };
  )cpp");
  EXPECT_EQ(count_rule(fs, "determinism-nondeterministic-source"), 0);
}

TEST(LintRules, PerfTelemetryAllowlisted) {
  const auto fs = lint_src("src/perf/metrics.cpp", R"cpp(
    double wall_now() {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "determinism-nondeterministic-source"), 0);
}

// ---------------------------------------------------------------------------
// Hot-path rules
// ---------------------------------------------------------------------------

TEST(LintRules, HotPathAllocationFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    ENZO_HOT void kernel(std::vector<double>& out) {
      std::vector<double> tmp(10, 0.0);
      out.push_back(tmp[0]);
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "hotpath-heap-alloc"), 2);
}

TEST(LintRules, ColdAllocationNotFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void setup(std::vector<double>& out) {
      std::vector<double> tmp(10, 0.0);
      out.push_back(tmp[0]);
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "hotpath-heap-alloc"), 0);
}

TEST(LintRules, HotPathCapacityReuseNotFlagged) {
  // assign() reuses capacity — the sanctioned hot-path idiom.
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    ENZO_HOT void kernel(std::vector<double>& scratch, int n) {
      scratch.assign(n, 0.0);
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "hotpath-heap-alloc"), 0);
}

TEST(LintRules, HotPathLockFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    ENZO_HOT void kernel(std::mutex& m, double* x) {
      std::lock_guard<std::mutex> hold(m);
      *x += 1.0;
    }
  )cpp");
  EXPECT_GE(count_rule(fs, "hotpath-lock"), 1);
}

TEST(LintRules, ColdLockNotFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void registry_update(std::mutex& m, double* x) {
      std::lock_guard<std::mutex> hold(m);
      *x += 1.0;
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "hotpath-lock"), 0);
}

TEST(LintRules, HotPathTranscendentalInLoopFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    ENZO_HOT void kernel(int n, const double* t, double* k) {
      for (int i = 0; i < n; ++i) {
        k[i] = std::exp(-1.0 / t[i]) * std::pow(t[i], 0.5);
      }
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "hotpath-transcendental"), 2);
}

TEST(LintRules, HotPathTranscendentalOutsideLoopNotFlagged) {
  // A one-off hoisted evaluation before the loop is the sanctioned shape.
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    ENZO_HOT void kernel(int n, double t0, double* k) {
      const double k0 = std::exp(-1.0 / t0);
      for (int i = 0; i < n; ++i) k[i] = k0 * i;
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "hotpath-transcendental"), 0);
}

TEST(LintRules, HotPathTranscendentalLoopHeaderAllowCoversBody) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    ENZO_HOT void kernel(int n, const double* t, double* k) {
      // enzo-lint: allow(hotpath-transcendental) batched lane evaluation
      for (int i = 0; i < n; ++i) {
        k[i] = std::exp(-1.0 / t[i]);
      }
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "hotpath-transcendental"), 0);
}

TEST(LintRules, ColdTranscendentalNotFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void table_build(int n, const double* t, double* k) {
      for (int i = 0; i < n; ++i) k[i] = std::pow(t[i], 0.5);
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "hotpath-transcendental"), 0);
}

// ---------------------------------------------------------------------------
// Topology routing
// ---------------------------------------------------------------------------

TEST(LintRules, NestedGridScanFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void exchange(Hierarchy& h, int level) {
      for (Grid* g : h.grids(level)) {
        for (Grid* s : h.grids(level)) {
          copy_overlap(g, s);
        }
      }
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "topology-allpairs"), 1);
}

TEST(LintRules, SingleGridSweepNotFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void sweep(Hierarchy& h, int level) {
      for (Grid* g : h.grids(level)) advance(g);
      for (Grid* g : h.grids(level)) finish(g);
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "topology-allpairs"), 0);
}

TEST(LintRules, TopologyBuilderAllowlisted) {
  const auto fs = lint_src("src/mesh/topology.cpp", R"cpp(
    void build(Hierarchy& h, int level) {
      for (Grid* g : h.grids(level))
        for (Grid* s : h.grids(level)) link(g, s);
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "topology-allpairs"), 0);
}

// ---------------------------------------------------------------------------
// Unit frames
// ---------------------------------------------------------------------------

TEST(LintRules, UntaggedUnitBoundaryFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    double sound_speed_cgs(const cosmology::CodeUnits& u, double cs_code) {
      return cs_code * u.velocity_cgs();
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "units-untagged-boundary"), 1);
}

TEST(LintRules, TaggedUnitBoundaryNotFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    ENZO_UNITS_BOUNDARY double sound_speed_cgs(const cosmology::CodeUnits& u,
                                               double cs_code) {
      return cs_code * u.velocity_cgs();
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "units-untagged-boundary"), 0);
}

TEST(LintRules, ComovingTagWithConversionFlagged) {
  // A function claiming to stay in the comoving frame must not convert.
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    ENZO_UNITS_COMOVING double rho_code(const cosmology::CodeUnits& u,
                                        double rho, double a) {
      return u.proper_density(rho, a);
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "units-untagged-boundary"), 1);
}

// ---------------------------------------------------------------------------
// Banned APIs
// ---------------------------------------------------------------------------

TEST(LintRules, PrintfFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void report(int n) { printf("%d\n", n); }
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-printf"), 1);
}

TEST(LintRules, StructuredLogBackendAllowlisted) {
  const auto fs = lint_src("src/perf/log.cpp", R"cpp(
    void sink(const char* line) { fprintf(stderr, "%s\n", line); }
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-printf"), 0);
}

TEST(LintRules, RawAssertFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void check(int n) { assert(n > 0); }
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-assert"), 1);
}

TEST(LintRules, EnzoRequireNotFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void check(int n) { ENZO_REQUIRE(n > 0, "n must be positive"); }
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-assert"), 0);
}

TEST(LintRules, PiLiteralFlagged) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    double circumference(double r) { return 2.0 * M_PI * r; }
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-pi-literal"), 1);
}

TEST(LintRules, ConstantsHeaderMayDefinePi) {
  const auto fs = lint_src("src/util/constants.hpp", R"cpp(
    inline constexpr double kPi = M_PI;
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-pi-literal"), 0);
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAllow) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void report(int n) {
      printf("%d\n", n);  // enzo-lint: allow(banned-printf) boot banner
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-printf"), 0);
}

TEST(LintSuppression, PreviousLineAllow) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void report(int n) {
      // enzo-lint: allow(banned-printf) boot banner
      printf("%d\n", n);
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-printf"), 0);
}

TEST(LintSuppression, AllowFileCoversWholeFile) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    // enzo-lint: allow-file(banned-printf) CLI frontend
    void a(int n) { printf("%d\n", n); }
    void b(int n) { printf("%d\n", n); }
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-printf"), 0);
}

TEST(LintSuppression, AllowIsRuleSpecific) {
  const auto fs = lint_src("src/x/a.cpp", R"cpp(
    void report(int n) {
      printf("%d\n", n);  // enzo-lint: allow(banned-assert) wrong rule
    }
  )cpp");
  EXPECT_EQ(count_rule(fs, "banned-printf"), 1);
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(LintBaseline, RoundTripSuppressesExactlyOnce) {
  const std::string src = R"cpp(
    void report(int n) {
      printf("%d\n", n);
    }
  )cpp";
  const auto fs = lint_src("src/x/a.cpp", src);
  ASSERT_EQ(count_rule(fs, "banned-printf"), 1);

  Baseline bl;
  std::istringstream text(to_baseline(fs));
  std::string line;
  while (std::getline(text, line))
    if (!line.empty() && line[0] != '#') bl.entries.insert(line);

  std::size_t suppressed = 0;
  EXPECT_TRUE(bl.filter(fs, &suppressed).empty());
  EXPECT_EQ(suppressed, 1u);

  // A second occurrence of the same normalized line exceeds the budget.
  const auto twice = lint_src("src/x/a.cpp", R"cpp(
    void a(int n) {
      printf("%d\n", n);
    }
    void b(int n) {
      printf("%d\n", n);
    }
  )cpp");
  ASSERT_EQ(count_rule(twice, "banned-printf"), 2);
  EXPECT_EQ(bl.filter(twice, &suppressed).size(), 1u);
  EXPECT_EQ(suppressed, 1u);
}

TEST(LintBaseline, KeyIsLineNumberIndependent) {
  const auto a = lint_src("src/x/a.cpp",
                          "void f(int n) { printf(\"%d\", n); }\n");
  const auto b = lint_src("src/x/a.cpp",
                          "\n\n\nvoid f(int n) { printf(\"%d\", n); }\n");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0].line, b[0].line);
  EXPECT_EQ(baseline_key(a[0]), baseline_key(b[0]));
}

// ---------------------------------------------------------------------------
// Catalog and whole-repo smoke
// ---------------------------------------------------------------------------

TEST(LintCatalog, ElevenRulesRegistered) {
  EXPECT_EQ(rule_catalog().size(), 11u);
}

TEST(LintSmoke, RepoSourcesCleanModuloBaseline) {
#ifndef ENZO_SOURCE_DIR
  GTEST_SKIP() << "ENZO_SOURCE_DIR not defined";
#else
  namespace fs = std::filesystem;
  const fs::path root(ENZO_SOURCE_DIR);
  ASSERT_TRUE(fs::exists(root / "src"));

  std::vector<Finding> all;
  for (fs::recursive_directory_iterator it(root / "src"), end; it != end;
       ++it) {
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    if (p.extension() != ".cpp" && p.extension() != ".hpp" &&
        p.extension() != ".h")
      continue;
    SourceFile f;
    ASSERT_TRUE(load_file(p.string(), relativize(p.string(), root.string()),
                          &f))
        << p;
    for (Finding& fi : run_rules(f)) all.push_back(std::move(fi));
  }

  Baseline bl;
  std::string err;
  ASSERT_TRUE(
      bl.load((root / "tools/enzo_lint/baseline.txt").string(), &err))
      << err;
  std::size_t suppressed = 0;
  const auto fresh = bl.filter(all, &suppressed);
  for (const Finding& fi : fresh)
    ADD_FAILURE() << fi.rel << ":" << fi.line << ": [" << fi.rule << "] "
                  << fi.message;
  EXPECT_TRUE(fresh.empty());
#endif
}
