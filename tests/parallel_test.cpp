// Parallel-layer tests (§3.4 machinery): transport semantics, sterile-object
// lookups, LPT load balancing vs round-robin on SAMR-like skewed loads,
// pipelined send ordering wait-time reduction, and the distributed halo
// exchange against the serial reference (with probe-count accounting).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "mesh/hierarchy.hpp"
#include "parallel/comm.hpp"
#include "parallel/distributed.hpp"
#include "parallel/load_balance.hpp"
#include "parallel/pipeline.hpp"
#include "parallel/sterile.hpp"
#include "util/rng.hpp"

using namespace enzo;
using namespace enzo::parallel;

// ---- transport -------------------------------------------------------------------

TEST(Transport, SendReceiveRoundTrip) {
  Transport t(2);
  run_ranks(t, [&](int rank) {
    if (rank == 0) {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.tag = 7;
      m.object_id = 42;
      m.payload = {1.0, 2.0, 3.0};
      t.send(std::move(m));
    } else {
      Message m = t.receive(1, 0, 7, 42);
      EXPECT_EQ(m.payload.size(), 3u);
      EXPECT_DOUBLE_EQ(m.payload[1], 2.0);
    }
  });
  EXPECT_EQ(t.stats().sends, 1u);
  EXPECT_EQ(t.stats().receives, 1u);
  EXPECT_EQ(t.stats().probes, 0u);
}

TEST(Transport, AnySourceCountsAsProbe) {
  Transport t(2);
  run_ranks(t, [&](int rank) {
    if (rank == 0) {
      Message m;
      m.src = 0;
      m.dst = 1;
      m.tag = 1;
      m.object_id = 5;
      t.send(std::move(m));
    } else {
      (void)t.receive(1, /*src=*/-1, 1, 5);
    }
  });
  EXPECT_EQ(t.stats().probes, 1u);
}

TEST(Transport, MatchingIsByTagAndObject) {
  Transport t(1);
  Message a;
  a.src = 0;
  a.dst = 0;
  a.tag = 1;
  a.object_id = 10;
  a.payload = {1.0};
  Message b = a;
  b.tag = 2;
  b.payload = {2.0};
  t.send(std::move(a));
  t.send(std::move(b));
  // Receive out of order: tag 2 first.
  Message m2 = t.receive(0, 0, 2, 10);
  EXPECT_DOUBLE_EQ(m2.payload[0], 2.0);
  Message m1 = t.receive(0, 0, 1, 10);
  EXPECT_DOUBLE_EQ(m1.payload[0], 1.0);
  EXPECT_FALSE(t.try_receive(0, 0, 1, 10).has_value());
}

TEST(Transport, BarrierSynchronizesRanks) {
  const int n = 4;
  Transport t(n);
  std::atomic<int> before{0}, after{0};
  run_ranks(t, [&](int) {
    before.fetch_add(1);
    t.barrier();
    // Everyone must have incremented before anyone proceeds.
    EXPECT_EQ(before.load(), n);
    after.fetch_add(1);
    t.barrier();
    EXPECT_EQ(after.load(), n);
  });
}

// ---- sterile objects ---------------------------------------------------------------

TEST(Sterile, MirrorsHierarchyAndFindsOverlaps) {
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  mesh::Hierarchy h(p);
  h.build_root(2);  // 8 tiles
  SterileStore store;
  store.mirror(h, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(store.size(), 8u);
  // A region overlapping the low corner tile plus its +x neighbour.
  mesh::IndexBox probe{{6, 0, 0}, {10, 4, 4}};
  auto hits = store.find_overlaps(0, probe, h.level_dims(0), true);
  EXPECT_EQ(hits.size(), 2u);
  // Ownership lookup is local (no transport involved).
  EXPECT_EQ(store.owner_of(hits[0].id), hits[0].owner_rank);
  EXPECT_GE(store.lookups(), 2u);
}

TEST(Sterile, PeriodicImagesAreFound) {
  mesh::HierarchyParams p;
  p.root_dims = {8, 8, 8};
  mesh::Hierarchy h(p);
  h.build_root(2);
  SterileStore store;
  store.mirror(h, std::vector<int>(8, 0));
  // Ghost region hanging off the domain's low-x face overlaps the
  // wrapped high-x tiles.
  mesh::IndexBox ghost{{-2, 0, 0}, {0, 4, 4}};
  auto hits = store.find_overlaps(0, ghost, h.level_dims(0), true);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].box.lo[0], 4);
}

// ---- load balance -------------------------------------------------------------------

TEST(LoadBalance, LptBeatsRoundRobinOnSkewedLoads) {
  // SAMR-like: a few huge grids plus many small ones (§3.4: "small regions
  // of the original grid eventually dominate the computational
  // requirements").
  util::Rng rng(5);
  std::vector<double> w;
  for (int i = 0; i < 6; ++i) w.push_back(1000.0 + 100.0 * rng.uniform());
  for (int i = 0; i < 200; ++i) w.push_back(1.0 + 5.0 * rng.uniform());
  const auto lpt = balance_lpt(w, 8);
  const auto rr = balance_round_robin(w, 8);
  // Indivisible grids put a floor at the heaviest grid ("load balancing
  // becomes a serious headache"): LPT must sit near the lower bound
  // max(avg, w_max) while round-robin lands far above it.
  const double wmax = *std::max_element(w.begin(), w.end());
  const double lower = std::max(lpt.avg_load, wmax);
  EXPECT_LE(lpt.max_load, 1.34 * lower);
  EXPECT_LT(lpt.max_load, rr.max_load);
  // Every grid assigned to a valid rank.
  for (int o : lpt.owner) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 8);
  }
}

TEST(LoadBalance, SingleRankTakesAll) {
  const auto r = balance_lpt({3, 1, 2}, 1);
  EXPECT_DOUBLE_EQ(r.max_load, 6.0);
  EXPECT_DOUBLE_EQ(r.imbalance(), 0.0);
}

TEST(LoadBalance, LptWithinFourThirdsOfOptimal) {
  // Classic LPT bound: max load <= (4/3 - 1/3m) OPT.
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> w;
    const int n = 5 + static_cast<int>(rng.uniform(0, 50));
    double total = 0, wmax = 0;
    for (int i = 0; i < n; ++i) {
      w.push_back(std::pow(10.0, rng.uniform(0, 3)));
      total += w.back();
      wmax = std::max(wmax, w.back());
    }
    const int m = 4;
    const auto r = balance_lpt(w, m);
    const double opt_lower = std::max(total / m, wmax);
    EXPECT_LE(r.max_load, (4.0 / 3.0) * opt_lower + 1e-9);
  }
}

// ---- pipeline ---------------------------------------------------------------------

TEST(Pipeline, NeedOrderSortsSends) {
  std::vector<SendTask> tasks = {{0, 100, 2}, {1, 100, 0}, {2, 100, 1}};
  const auto order = pipeline_order(tasks);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(Pipeline, OrderedSendsReduceWait) {
  // Many equal-size messages whose need order is the reverse of creation
  // order: the naive schedule forces the receiver to wait for the last
  // send; the pipelined schedule overlaps everything after the first.
  std::vector<SendTask> tasks;
  const int n = 32;
  for (int i = 0; i < n; ++i) tasks.push_back({i % 4, 1e6, n - 1 - i});
  const double bw = 1e8, lat = 1e-5, proc = 1e-2;
  const double naive = simulated_wait(tasks, naive_order(tasks.size()), bw,
                                      lat, proc);
  const double piped = simulated_wait(tasks, pipeline_order(tasks), bw, lat,
                                      proc);
  EXPECT_LT(piped, 0.5 * naive);  // "a large decrease in wait times"
}

TEST(Pipeline, AlreadyOrderedGainsNothing) {
  std::vector<SendTask> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back({0, 1e6, i});
  const double naive = simulated_wait(tasks, naive_order(tasks.size()), 1e8,
                                      1e-5, 1e-2);
  const double piped =
      simulated_wait(tasks, pipeline_order(tasks), 1e8, 1e-5, 1e-2);
  EXPECT_DOUBLE_EQ(naive, piped);
}

// ---- distributed demo --------------------------------------------------------------

TEST(Distributed, MatchesSerialBitForBit) {
  const int n = 16;
  util::Array3<double> field(n, n, n);
  util::Rng rng(9);
  for (auto& v : field) v = rng.uniform(-1, 1);
  const auto serial = serial_jacobi(field, 3);
  DistributedRunInfo info;
  const auto dist = distributed_jacobi(field, 2, 3, /*use_sterile=*/true,
                                       &info);
  EXPECT_EQ(info.nranks, 8);
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_DOUBLE_EQ(dist.data()[i], serial.data()[i]);
  EXPECT_EQ(info.stats.probes, 0u);  // sterile metadata: direct sends only
  EXPECT_EQ(info.stats.sends, 8u * 6u * 3u);
}

TEST(Distributed, WithoutSterileMetadataEveryReceiveProbes) {
  const int n = 8;
  util::Array3<double> field(n, n, n);
  util::Rng rng(10);
  for (auto& v : field) v = rng.uniform(-1, 1);
  DistributedRunInfo info;
  const auto dist = distributed_jacobi(field, 2, 2, /*use_sterile=*/false,
                                       &info);
  // Still correct...
  const auto serial = serial_jacobi(field, 2);
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(dist.data()[i], serial.data()[i], 1e-14);
  // ...but every receive needed an any-source probe (§3.4: the problem the
  // sterile objects solve).
  EXPECT_EQ(info.stats.probes, info.stats.receives);
  EXPECT_GT(info.stats.probes, 0u);
}

TEST(Distributed, SingleRankDegenerates) {
  const int n = 8;
  util::Array3<double> field(n, n, n);
  util::Rng rng(11);
  for (auto& v : field) v = rng.uniform(0, 1);
  const auto serial = serial_jacobi(field, 2);
  const auto dist = distributed_jacobi(field, 1, 2, true);
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_DOUBLE_EQ(dist.data()[i], serial.data()[i]);
}

// ---- distributed SAMR boundary exchange -------------------------------------

#include "mesh/boundary.hpp"
#include "parallel/distributed_hierarchy.hpp"

namespace {
mesh::Hierarchy tiled_random_level(int n, int tiles, unsigned seed) {
  mesh::HierarchyParams p;
  p.root_dims = {n, n, n};
  mesh::Hierarchy h(p);
  h.build_root(tiles);
  util::Rng rng(seed);
  for (mesh::Grid* g : h.grids(0))
    for (mesh::Field f : g->field_list())
      for (int k = 0; k < g->nx(2); ++k)
        for (int j = 0; j < g->nx(1); ++j)
          for (int i = 0; i < g->nx(0); ++i)
            g->field(f)(g->sx(i), g->sy(j), g->sz(k)) = rng.uniform(-1, 1);
  return h;
}
}  // namespace

TEST(DistributedHierarchy, PlanCoversAllGhosts) {
  mesh::Hierarchy h = tiled_random_level(8, 2, 41);
  const auto plan = plan_sibling_exchange(h, 0);
  EXPECT_FALSE(plan.empty());
  // Total transferred cells per destination tile must cover its whole ghost
  // shell (ghost cells may be covered multiple times by periodic images,
  // never zero).
  for (const mesh::Grid* g : h.grids(0)) {
    std::int64_t ghost_cells = 1;
    for (int d = 0; d < 3; ++d) ghost_cells *= g->nt(d);
    ghost_cells -= g->box().volume();
    std::int64_t covered = 0;
    for (const auto& b : plan)
      if (b.dst_id == g->id()) covered += b.region.volume();
    EXPECT_GE(covered, ghost_cells);
  }
}

TEST(DistributedHierarchy, ExchangeMatchesSerialBitForBit) {
  // Reference: the serial boundary pass on an identical hierarchy.
  mesh::Hierarchy serial = tiled_random_level(8, 2, 42);
  mesh::Hierarchy dist = tiled_random_level(8, 2, 42);
  mesh::set_boundary_values(serial, 0);

  std::vector<int> owner;
  for (std::size_t i = 0; i < dist.grids(0).size(); ++i)
    owner.push_back(static_cast<int>(i) % 4);
  const CommStats stats = distributed_sibling_exchange(dist, 0, owner, 4);

  const auto gs = serial.grids(0);
  const auto gd = dist.grids(0);
  ASSERT_EQ(gs.size(), gd.size());
  for (std::size_t n = 0; n < gs.size(); ++n)
    for (mesh::Field f : gs[n]->field_list()) {
      const auto& a = gs[n]->field(f);
      const auto& b = gd[n]->field(f);
      for (std::size_t c = 0; c < a.size(); ++c)
        ASSERT_EQ(a.data()[c], b.data()[c])
            << field_name(f) << " grid " << n << " cell " << c;
    }
  // §3.4: sterile metadata → direct sends only, zero probes.
  EXPECT_EQ(stats.probes, 0u);
  EXPECT_GT(stats.sends, 0u);
  EXPECT_EQ(stats.sends, stats.receives);
}

TEST(DistributedHierarchy, SingleRankOwnsEverything) {
  mesh::Hierarchy serial = tiled_random_level(8, 2, 43);
  mesh::Hierarchy dist = tiled_random_level(8, 2, 43);
  mesh::set_boundary_values(serial, 0);
  std::vector<int> owner(dist.grids(0).size(), 0);
  distributed_sibling_exchange(dist, 0, owner, 1);
  const auto gs = serial.grids(0);
  const auto gd = dist.grids(0);
  for (std::size_t n = 0; n < gs.size(); ++n) {
    const auto& a = gs[n]->field(mesh::Field::kDensity);
    const auto& b = gd[n]->field(mesh::Field::kDensity);
    for (std::size_t c = 0; c < a.size(); ++c)
      ASSERT_EQ(a.data()[c], b.data()[c]);
  }
}

// ---- dynamic load balancing (ref [22]) ---------------------------------------

#include "parallel/dynamic_balance.hpp"

TEST(DynamicBalance, KeepsSurvivorsInPlaceWhenBalanced) {
  DynamicBalancer bal(4, 0.5);
  std::vector<GridLoad> grids;
  for (std::uint64_t i = 0; i < 8; ++i) grids.push_back({i, 1.0, 100.0});
  const auto r1 = bal.rebalance(grids);
  EXPECT_LE(r1.imbalance, 0.01);
  EXPECT_EQ(r1.migrated_bytes, 0.0);  // first placement migrates nothing
  // Same grids again: identical assignment, zero migration.
  const auto r2 = bal.rebalance(grids);
  EXPECT_EQ(r2.migrations, 0);
  for (const auto& [id, rank] : r2.owner)
    EXPECT_EQ(rank, r1.owner.at(id));
}

TEST(DynamicBalance, NewGridsGoToLeastLoadedRanks) {
  DynamicBalancer bal(2, 0.5);
  // Rank imbalance seeded by two old heavy grids on (arbitrary) ranks.
  std::vector<GridLoad> first = {{1, 10.0, 1e6}, {2, 10.0, 1e6}};
  bal.rebalance(first);
  // Add light newcomers: they must spread, not pile onto one rank.
  std::vector<GridLoad> second = first;
  for (std::uint64_t i = 10; i < 18; ++i) second.push_back({i, 1.0, 1e4});
  const auto r = bal.rebalance(second);
  EXPECT_LE(r.imbalance, 0.15);
  EXPECT_EQ(r.migrations, 0);  // balance achievable without moving old data
}

TEST(DynamicBalance, MigratesOnlyWhenThresholdExceeded) {
  DynamicBalancer bal(2, 0.15);
  // Step 1: balanced.
  std::vector<GridLoad> grids;
  for (std::uint64_t i = 0; i < 4; ++i) grids.push_back({i, 5.0, 1e5});
  auto r = bal.rebalance(grids);
  const auto owner0 = r.owner;
  // Step 2: the grids on one rank grow heavy (deep refinement region).
  std::vector<GridLoad> grown;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const double w = owner0.at(i) == 0 ? 20.0 : 5.0;
    grown.push_back({i, w, 1e5});
  }
  r = bal.rebalance(grown);
  EXPECT_GT(r.migrations, 0);          // had to move something
  EXPECT_GT(r.migrated_bytes, 0.0);
  EXPECT_LT(r.imbalance, 0.6);         // materially improved vs ~1.0 static
  EXPECT_GT(bal.total_migrated_bytes(), 0.0);
}

TEST(DynamicBalance, MonolithicGridHitsFloorWithoutThrashing) {
  DynamicBalancer bal(4, 0.1);
  // One grid dominates: no migration can fix it; the balancer must not spin.
  std::vector<GridLoad> grids = {{1, 100.0, 1e6}};
  for (std::uint64_t i = 2; i < 10; ++i) grids.push_back({i, 1.0, 1e4});
  const auto r1 = bal.rebalance(grids);
  const auto r2 = bal.rebalance(grids);
  EXPECT_EQ(r2.migrations, 0);  // stable assignment on repeat
  EXPECT_GT(r2.imbalance, 1.0);  // the documented §3.4 floor
  (void)r1;
}
