// Cosmology substrate tests: FRW background against Einstein–de Sitter
// closed forms, power-spectrum normalization, Gaussian-random-field
// statistics, and the nested-mode consistency property that the paper's
// restart-with-static-subgrids trick depends on (§4).

#include <gtest/gtest.h>

#include <cmath>

#include "cosmology/frw.hpp"
#include "cosmology/grf.hpp"
#include "cosmology/power_spectrum.hpp"
#include "cosmology/units.hpp"
#include "fft/fft.hpp"
#include "util/constants.hpp"

namespace ec = enzo::cosmology;
namespace cn = enzo::constants;

namespace {
ec::Frw eds() {
  ec::FrwParameters p;
  p.hubble = 0.5;
  p.omega_matter = 1.0;
  p.omega_lambda = 0.0;
  return ec::Frw(p);
}
}  // namespace

TEST(Frw, EdsTimeOfA) {
  // Einstein–de Sitter: t(a) = (2 / 3H0) a^{3/2}.
  ec::Frw f = eds();
  const double h0 = f.hubble0();
  for (double a : {0.01, 0.05, 0.25, 1.0}) {
    const double expected = 2.0 / (3.0 * h0) * std::pow(a, 1.5);
    EXPECT_NEAR(f.time_of_a(a) / expected, 1.0, 1e-6) << "a=" << a;
  }
}

TEST(Frw, AOfTimeInverts) {
  ec::Frw f = eds();
  for (double a : {0.02, 0.047, 0.3, 0.9}) {
    const double t = f.time_of_a(a);
    EXPECT_NEAR(f.a_of_time(t), a, 1e-8 * a);
  }
}

TEST(Frw, EdsGrowthFactorIsA) {
  ec::Frw f = eds();
  for (double a : {0.05, 0.2, 0.5}) {
    EXPECT_NEAR(f.growth_factor(a) / a, 1.0, 1e-3) << "a=" << a;
    EXPECT_NEAR(f.growth_rate(a), 1.0, 1e-3);
  }
}

TEST(Frw, LambdaCdmSlowerGrowth) {
  ec::FrwParameters p;
  p.hubble = 0.7;
  p.omega_matter = 0.3;
  p.omega_lambda = 0.7;
  ec::Frw f(p);
  // Growth is suppressed relative to EdS at late times: D(0.5) > 0.5.
  EXPECT_GT(f.growth_factor(0.5), 0.5);
  // f = dlnD/dlna ≈ Ω_m(a)^0.55 today ≈ 0.51.
  EXPECT_NEAR(f.growth_rate(1.0), std::pow(0.3, 0.55), 0.03);
}

TEST(Frw, HubbleAndDensities) {
  ec::Frw f = eds();
  EXPECT_NEAR(f.big_e(1.0), 1.0, 1e-12);
  EXPECT_NEAR(f.big_e(0.25), std::pow(0.25, -1.5), 1e-9);
  // Comoving matter density for Ω_m=1, h=0.5: ρ_crit0 h².
  EXPECT_NEAR(f.comoving_matter_density(),
              cn::kRhoCrit0 * 0.25, 1e-6 * cn::kRhoCrit0);
  EXPECT_NEAR(f.mean_matter_density(0.5) / f.comoving_matter_density(), 8.0,
              1e-9);
}

TEST(Frw, CmbTemperatureScales) {
  EXPECT_NEAR(ec::Frw::cmb_temperature(1.0), 2.725, 1e-12);
  EXPECT_NEAR(ec::Frw::cmb_temperature(1.0 / 20.0), 2.725 * 20.0, 1e-9);
}

TEST(PowerSpectrum, Sigma8Normalization) {
  ec::Frw f = eds();
  ec::PowerSpectrum ps(f);
  EXPECT_NEAR(ps.sigma(8.0 / 0.5), f.params().sigma8, 1e-6);
}

TEST(PowerSpectrum, TransferLimits) {
  ec::Frw f = eds();
  ec::PowerSpectrum ps(f);
  EXPECT_NEAR(ps.transfer(1e-8), 1.0, 1e-4);     // large scales untouched
  EXPECT_LT(ps.transfer(100.0), 1e-3);            // strong small-scale damping
  // Monotonic decline.
  double prev = 2.0;
  for (double k = 1e-4; k < 1e3; k *= 3.0) {
    const double t = ps.transfer(k);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(PowerSpectrum, SmallScaleLogDivergence) {
  // §2.1: rms fluctuations diverge logarithmically toward small mass scales —
  // i.e. σ(R) keeps growing (slowly) as R shrinks.
  ec::Frw f = eds();
  ec::PowerSpectrum ps(f);
  const double s1 = ps.sigma(1.0);
  const double s01 = ps.sigma(0.1);
  const double s001 = ps.sigma(0.01);
  EXPECT_GT(s01, s1);
  EXPECT_GT(s001, s01);
  // ... but much slower than a power law: ratio of ratios near 1.
  EXPECT_LT(s001 / s01, 2.0 * s01 / s1);
}

TEST(PowerSpectrum, ZeroAndNegativeK) {
  ec::Frw f = eds();
  ec::PowerSpectrum ps(f);
  EXPECT_DOUBLE_EQ(ps(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ps(-1.0), 0.0);
}

TEST(CodeUnits, CosmologicalConsistency) {
  ec::Frw f = eds();
  const double box = 256.0 * cn::kKpc;  // the paper's box
  ec::CodeUnits u = ec::CodeUnits::cosmological(f, box);
  EXPECT_TRUE(u.comoving);
  EXPECT_DOUBLE_EQ(u.grav_const_code, 1.0);
  // t_unit = 1/sqrt(4πG ρ̄): check the defining identity.
  EXPECT_NEAR(4.0 * M_PI * cn::kGravity * u.density_cgs * u.time_s * u.time_s,
              1.0, 1e-12);
  // Proper density at a: comoving / a³.
  EXPECT_NEAR(u.proper_density(1.0, 0.5), u.density_cgs * 8.0, 1e-6);
  // Mass unit is density × volume.
  EXPECT_NEAR(u.mass_g(), u.density_cgs * box * box * box, 1e-3 * u.mass_g());
}

TEST(CodeUnits, TemperatureFactor) {
  ec::CodeUnits u = ec::CodeUnits::simple();
  u.length_cm = 1e21;
  u.time_s = 1e13;
  // T = tf * (γ-1) μ e_code; for e s.t. (γ-1) μ e v² = kT/m_H it's an identity.
  const double v = u.velocity_cgs();
  EXPECT_NEAR(u.temperature_factor(),
              cn::kHydrogenMass * v * v / cn::kBoltzmann, 1e-6);
}

// ---- Gaussian random field ---------------------------------------------------

TEST(Grf, FieldHasZeroMeanAndExpectedVariance) {
  ec::Frw f = eds();
  ec::PowerSpectrum ps(f);
  const double box = 4.0 * cn::kMpc;  // large enough for decent power
  ec::InitialConditionsGenerator gen(f, ps, box, 2024);
  const int n = 32;
  auto out = gen.realize(n, {0, 0, 0}, 1.0);
  double mean = out.delta.sum() / out.delta.size();
  EXPECT_NEAR(mean, 0.0, 1e-10);
  double var = 0;
  for (double d : out.delta) var += d * d;
  var /= out.delta.size();
  const double expected = gen.expected_sigma(n);
  // One realization of ~32³ modes: few-percent accuracy expected.
  EXPECT_NEAR(std::sqrt(var) / expected, 1.0, 0.10);
}

TEST(Grf, DeterministicAcrossCalls) {
  ec::Frw f = eds();
  ec::PowerSpectrum ps(f);
  ec::InitialConditionsGenerator gen(f, ps, cn::kMpc, 7);
  auto a = gen.realize(16, {0, 0, 0}, 1.0);
  auto b = gen.realize(16, {0, 0, 0}, 1.0);
  for (std::size_t i = 0; i < a.delta.size(); ++i)
    EXPECT_DOUBLE_EQ(a.delta.data()[i], b.delta.data()[i]);
}

TEST(Grf, SeedChangesField) {
  ec::Frw f = eds();
  ec::PowerSpectrum ps(f);
  ec::InitialConditionsGenerator g1(f, ps, cn::kMpc, 7);
  ec::InitialConditionsGenerator g2(f, ps, cn::kMpc, 8);
  auto a = g1.realize(16, {0, 0, 0}, 1.0);
  auto b = g2.realize(16, {0, 0, 0}, 1.0);
  double diff = 0;
  for (std::size_t i = 0; i < a.delta.size(); ++i)
    diff += std::abs(a.delta.data()[i] - b.delta.data()[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(Grf, ModeConsistencyAcrossResolutions) {
  // The §4 restart trick: a higher-resolution realization of the same box
  // must contain the same large-scale modes.  Realize at 16 and 32; the
  // shared low-k spectral coefficients must match, so the 32³ field averaged
  // down to 16³ correlates strongly with the 16³ field.
  ec::Frw f = eds();
  ec::PowerSpectrum ps(f);
  ec::InitialConditionsGenerator gen(f, ps, 4.0 * cn::kMpc, 99);
  auto lo = gen.realize(16, {0, 0, 0}, 1.0);
  auto hi = gen.realize(32, {0, 0, 0}, 1.0);
  // Exact invariant: the Fourier coefficients of every mode representable at
  // both resolutions (|f| < 8, excluding Nyquist planes) agree.
  auto lo_k = enzo::fft::fft3_real(lo.delta);
  auto hi_k = enzo::fft::fft3_real(hi.delta);
  const double n_lo = 16.0 * 16 * 16, n_hi = 32.0 * 32 * 32;
  int checked = 0;
  for (int kz = 0; kz < 16; ++kz)
    for (int ky = 0; ky < 16; ++ky)
      for (int kx = 0; kx < 16; ++kx) {
        const int fx = enzo::fft::freq_index(kx, 16);
        const int fy = enzo::fft::freq_index(ky, 16);
        const int fz = enzo::fft::freq_index(kz, 16);
        if (std::abs(fx) >= 8 || std::abs(fy) >= 8 || std::abs(fz) >= 8)
          continue;
        const auto cl = lo_k(kx, ky, kz) / n_lo;
        const auto ch = hi_k((fx + 32) % 32, (fy + 32) % 32, (fz + 32) % 32) /
                        n_hi;
        EXPECT_NEAR(cl.real(), ch.real(), 1e-10 + 1e-6 * std::abs(cl));
        EXPECT_NEAR(cl.imag(), ch.imag(), 1e-10 + 1e-6 * std::abs(cl));
        ++checked;
      }
  EXPECT_GT(checked, 3000);
  // And the real-space fields are strongly (not perfectly — extra small-scale
  // power) correlated after averaging down.
  enzo::util::Array3<double> down(16, 16, 16, 0.0);
  for (int k = 0; k < 32; ++k)
    for (int j = 0; j < 32; ++j)
      for (int i = 0; i < 32; ++i)
        down(i / 2, j / 2, k / 2) += hi.delta(i, j, k) / 8.0;
  double num = 0, d1 = 0, d2 = 0;
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i) {
        num += down(i, j, k) * lo.delta(i, j, k);
        d1 += down(i, j, k) * down(i, j, k);
        d2 += lo.delta(i, j, k) * lo.delta(i, j, k);
      }
  EXPECT_GT(num / std::sqrt(d1 * d2), 0.8);
}

TEST(Grf, DisplacementDivergenceIsMinusDelta) {
  // δ = −∇·ψ at D = 1 (linear theory), tested spectrally via finite
  // differences on the realized fields.
  ec::Frw f = eds();
  ec::PowerSpectrum ps(f);
  const int n = 16;
  ec::InitialConditionsGenerator gen(f, ps, 8.0 * cn::kMpc, 13);
  auto out = gen.realize(n, {0, 0, 0}, 1.0);
  const double dx = 1.0 / n;  // code units
  double err = 0, norm = 0;
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) {
        auto P = [&](const enzo::util::Array3<double>& a, int ii, int jj,
                     int kk) {
          return a((ii + n) % n, (jj + n) % n, (kk + n) % n);
        };
        const double div =
            (P(out.psi[0], i + 1, j, k) - P(out.psi[0], i - 1, j, k) +
             P(out.psi[1], i, j + 1, k) - P(out.psi[1], i, j - 1, k) +
             P(out.psi[2], i, j, k + 1) - P(out.psi[2], i, j, k - 1)) /
            (2 * dx);
        err += std::pow(div + out.delta(i, j, k), 2);
        norm += std::pow(out.delta(i, j, k), 2);
      }
  // Central differences under-resolve the highest modes; demand the bulk.
  EXPECT_LT(std::sqrt(err / norm), 0.5);
}

TEST(Zeldovich, VelocityFactorEds) {
  // EdS: D = a, f = 1 → factor = a² H(a) t_unit.
  ec::Frw f = eds();
  ec::CodeUnits u = ec::CodeUnits::cosmological(f, 10 * cn::kMpc);
  const double a = 0.05;
  const double expected = a * a * f.hubble(a) * u.time_s;
  EXPECT_NEAR(ec::zeldovich_velocity_factor(f, u, a) / expected, 1.0, 5e-3);
}
