// Stress and failure-injection tests: randomized rebuild cycling with
// invariants checked each generation, exact preservation of constant states
// through arbitrary hierarchy churn, guard rails (substep limits, malformed
// inputs), and precision-policy edge cases.

#include <gtest/gtest.h>

#include <cmath>

#include "core/setup.hpp"
#include "core/simulation.hpp"
#include "cosmology/grf.hpp"
#include "cosmology/power_spectrum.hpp"
#include "ext/dd.hpp"
#include "mesh/boundary.hpp"
#include "mesh/hierarchy.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

using namespace enzo;
using mesh::Field;
using mesh::Grid;

TEST(Stress, RandomRebuildCyclesKeepInvariantsAndConstants) {
  // A constant state must survive ANY sequence of refinements exactly:
  // interpolation of a constant is the constant, projection of a constant
  // is the constant, flux correction of zero-velocity gas is zero.
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  p.max_level = 3;
  mesh::Hierarchy h(p);
  h.build_root();
  for (Grid* g : h.grids(0)) {
    for (Field f : g->field_list())
      g->field(f).fill(f == Field::kDensity ? 2.5 : 1.25);
    g->store_old_fields();
  }
  util::Rng rng(2024);
  for (int cycle = 0; cycle < 12; ++cycle) {
    // Random blobs of flags, sometimes nothing (derefinement path).
    const int nblobs = static_cast<int>(rng.uniform(0, 3.999));
    std::vector<std::array<double, 4>> blobs;
    for (int b = 0; b < nblobs; ++b)
      blobs.push_back({rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                       rng.uniform(0.1, 0.9), rng.uniform(0.03, 0.2)});
    h.rebuild(1, [&](const Grid& g, std::vector<mesh::Index3>& flags) {
      const auto dims = g.spec().level_dims;
      for (std::int64_t k = g.box().lo[2]; k < g.box().hi[2]; ++k)
        for (std::int64_t j = g.box().lo[1]; j < g.box().hi[1]; ++j)
          for (std::int64_t i = g.box().lo[0]; i < g.box().hi[0]; ++i)
            for (const auto& b : blobs) {
              const double x = (i + 0.5) / dims[0] - b[0];
              const double y = (j + 0.5) / dims[1] - b[1];
              const double z = (k + 0.5) / dims[2] - b[2];
              if (x * x + y * y + z * z < b[3] * b[3]) {
                flags.push_back({i, j, k});
                break;
              }
            }
    });
    h.check_invariants();
    for (int l = 0; l <= h.deepest_level(); ++l) {
      mesh::set_boundary_values(h, l);
      for (Grid* g : h.grids(l)) {
        for (const double v : g->field(Field::kDensity))
          ASSERT_DOUBLE_EQ(v, 2.5) << "cycle " << cycle << " level " << l;
        for (const double v : g->field(Field::kTotalEnergy))
          ASSERT_DOUBLE_EQ(v, 1.25);
        g->store_old_fields();
      }
    }
  }
}

TEST(Stress, DeepHierarchyEvolvesWithExactTimeLanding) {
  // Four pinned levels; after a root step every level's clock must equal the
  // root's clock *exactly* in extended precision.
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {8, 8, 8};
  cfg.hierarchy.max_level = 4;
  cfg.trace_wcycle = true;
  cfg.rebuild_interval = 1 << 20;
  core::Simulation sim(cfg);
  sim.add_static_region(1, {{4, 4, 4}, {12, 12, 12}});
  sim.add_static_region(2, {{12, 12, 12}, {20, 20, 20}});
  sim.add_static_region(3, {{28, 28, 28}, {36, 36, 36}});
  sim.add_static_region(4, {{60, 60, 60}, {68, 68, 68}});
  sim.initialize(core::uniform_setup(1.0, 1.0));
  ASSERT_EQ(sim.hierarchy().deepest_level(), 4);
  sim.advance_root_step();
  const ext::pos_t t0 = sim.hierarchy().grids(0)[0]->time();
  for (int l = 1; l <= 4; ++l)
    for (Grid* g : sim.hierarchy().grids(l))
      EXPECT_TRUE(g->time() == t0) << "level " << l;
  // W-cycle bookkeeping: level l took 2^l substeps of the root step.
  int steps[5] = {0, 0, 0, 0, 0};
  for (const auto& e : sim.trace()) ++steps[e.level];
  for (int l = 0; l <= 4; ++l) EXPECT_EQ(steps[l], 1 << l) << "level " << l;
}

TEST(Stress, SubstepGuardFires) {
  // A pathological CFL mismatch must hit the max_substeps guard rather than
  // loop forever: force it by shrinking the limit.
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {8, 8, 8};
  cfg.hierarchy.max_level = 1;
  cfg.rebuild_interval = 1 << 20;
  cfg.max_substeps_per_level = 1;  // a 2:1 CFL ratio needs 2
  core::Simulation sim(cfg);
  sim.add_static_region(1, {{4, 4, 4}, {12, 12, 12}});
  sim.initialize(core::uniform_setup(1.0, 1.0));
  EXPECT_THROW(sim.advance_root_step(), enzo::Error);
}

TEST(Stress, GrfRejectsInvalidLattices) {
  cosmology::FrwParameters fp;
  cosmology::Frw frw(fp);
  cosmology::PowerSpectrum ps(frw);
  cosmology::InitialConditionsGenerator gen(frw, ps, constants::kMpc, 1);
  EXPECT_THROW(gen.realize(12, {0, 0, 0}, 1.0), enzo::Error);   // not pow2
  EXPECT_THROW(gen.realize(16, {0, 0, 0}, 2.0), enzo::Error);   // width > 1
  EXPECT_THROW(gen.realize(16, {0, 0, 0}, 0.0), enzo::Error);   // width 0
}

TEST(Stress, DdStringParsingRejectsGarbage) {
  EXPECT_THROW(ext::dd_from_string("not-a-number"), enzo::Error);
  EXPECT_THROW(ext::dd_from_string(""), enzo::Error);
  EXPECT_THROW(ext::dd_from_string("1.5e"), enzo::Error);
  // But valid forms parse.
  EXPECT_NEAR(ext::dd_from_string("42").to_double(), 42.0, 1e-30);
  EXPECT_NEAR(ext::dd_from_string("+0.5e2").to_double(), 50.0, 1e-28);
}

TEST(Stress, HierarchyRejectsStructuralAbuse) {
  mesh::HierarchyParams p;
  p.root_dims = {8, 8, 8};
  mesh::Hierarchy h(p);
  h.build_root();
  // Refined grid without a parent.
  auto orphan = std::make_unique<Grid>(
      h.make_spec(1, {{4, 4, 4}, {8, 8, 8}}), p.fields);
  EXPECT_THROW(h.insert_grid(std::move(orphan)), enzo::Error);
  // Misaligned child (odd box bounds at refinement factor 2).
  Grid* root = h.grids(0)[0];
  auto bad = std::make_unique<Grid>(
      h.make_spec(1, {{5, 4, 4}, {9, 8, 8}}), p.fields);
  bad->set_parent(root);
  h.insert_grid(std::move(bad));
  EXPECT_THROW(h.check_invariants(), enzo::Error);
}

TEST(Stress, RebuildIntervalSkipsRebuilds) {
  core::SimulationConfig cfg;
  cfg.hierarchy.root_dims = {16, 16, 16};
  cfg.hierarchy.max_level = 1;
  cfg.refinement.overdensity_threshold = 2.0;
  cfg.rebuild_interval = 3;
  core::Simulation sim(cfg);
  sim.build_root();
  Grid* g = sim.hierarchy().grids(0)[0];
  for (Field f : g->field_list()) g->field(f).fill(0.0);
  const auto rho = g->field(Field::kDensity);
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i) {
        const double x = (i + 0.5) / 16 - 0.5, y = (j + 0.5) / 16 - 0.5,
                     z = (k + 0.5) / 16 - 0.5;
        rho(g->sx(i), g->sy(j), g->sz(k)) =
            1.0 + 4.0 * std::exp(-(x * x + y * y + z * z) / 0.02);
      }
  g->field(Field::kInternalEnergy).fill(1.0);
  g->field(Field::kTotalEnergy).fill(1.0);
  sim.finalize_setup();
  // With interval 3 the level-1 set stays fixed for steps 1 and 2.
  const auto ids_before = [&] {
    std::vector<std::uint64_t> ids;
    for (Grid* c : sim.hierarchy().grids(1)) ids.push_back(c->id());
    return ids;
  }();
  sim.advance_root_step();
  std::vector<std::uint64_t> ids_after;
  for (Grid* c : sim.hierarchy().grids(1)) ids_after.push_back(c->id());
  EXPECT_EQ(ids_before, ids_after);  // no rebuild yet
  sim.advance_root_step();
  sim.advance_root_step();  // third step triggers the rebuild
  std::vector<std::uint64_t> ids_final;
  for (Grid* c : sim.hierarchy().grids(1)) ids_final.push_back(c->id());
  EXPECT_NE(ids_before, ids_final);
  sim.hierarchy().check_invariants();
}
