// Unit tests for the util module: Array3, timers, RNG, flop and allocation
// accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "util/alloc_stats.hpp"
#include "util/array3.hpp"
#include "util/error.hpp"
#include "util/flops.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace eu = enzo::util;

TEST(Array3, IndexingIsXFastest) {
  eu::Array3<double> a(4, 3, 2);
  EXPECT_EQ(a.index(1, 0, 0), 1u);
  EXPECT_EQ(a.index(0, 1, 0), 4u);
  EXPECT_EQ(a.index(0, 0, 1), 12u);
  EXPECT_EQ(a.size(), 24u);
}

TEST(Array3, FillSumMinMax) {
  eu::Array3<double> a(3, 3, 3, 2.0);
  EXPECT_DOUBLE_EQ(a.sum(), 54.0);
  a(1, 1, 1) = -5.0;
  a(2, 2, 2) = 9.0;
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Array3, AddWithScale) {
  eu::Array3<double> a(2, 2, 1, 1.0), b(2, 2, 1, 3.0);
  a.add(b, 0.5);
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 2; ++i) EXPECT_DOUBLE_EQ(a(i, j, 0), 2.5);
}

TEST(Array3, ShapeMismatchThrows) {
  eu::Array3<double> a(2, 2, 2), b(2, 2, 1);
  EXPECT_THROW(a.add(b), enzo::Error);
}

TEST(Array3, AtBoundsCheck) {
  eu::Array3<double> a(2, 2, 2);
  EXPECT_NO_THROW(a.at(1, 1, 1));
  EXPECT_THROW(a.at(2, 0, 0), enzo::Error);
  EXPECT_THROW(a.at(0, -1, 0), enzo::Error);
}

TEST(Array3, NegativeIndexCannotAliasValidCell) {
  // (2,-1,1) flattens to offset 2 + 4*(-1 + 4*1) = 14, which is inside the
  // allocation: a purely offset-based check would silently alias cell 14.
  // The checked accessor must reject each coordinate on its own sign.
  eu::Array3<double> a(4, 4, 4);
  EXPECT_EQ(a.index(2, -1, 1), 14u);
  EXPECT_FALSE(a.contains(2, -1, 1));
  EXPECT_THROW(a.at(2, -1, 1), enzo::Error);
  EXPECT_THROW(a.at(-2, 1, 1), enzo::Error);
  EXPECT_THROW(a.at(1, 1, -1), enzo::Error);
}

TEST(Array3, DegenerateDimensionsWork) {
  eu::Array3<double> line(8, 1, 1, 1.0);
  EXPECT_EQ(line.size(), 8u);
  eu::Array3<double> plane(4, 4, 1, 1.0);
  EXPECT_EQ(plane.size(), 16u);
}

TEST(Rng, Deterministic) {
  eu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  eu::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  eu::Rng r(123);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, DifferentSeedsDiffer) {
  eu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(ComponentTimers, AccumulateAndFractions) {
  eu::ComponentTimers t;
  t.add("hydro", 3.0);
  t.add("gravity", 1.0);
  t.add("hydro", 1.0);
  EXPECT_DOUBLE_EQ(t.seconds("hydro"), 4.0);
  EXPECT_DOUBLE_EQ(t.total(), 5.0);
  auto rows = t.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "hydro");
  EXPECT_DOUBLE_EQ(rows[0].fraction, 0.8);
}

TEST(ComponentTimers, ScopedTimerAddsTime) {
  eu::ComponentTimers t;
  {
    eu::ScopedTimer s(t, "x");
    volatile double acc = 0;
    for (int i = 0; i < 100000; ++i) acc = acc + 1.0;
  }
  EXPECT_GT(t.seconds("x"), 0.0);
}

TEST(ComponentTimers, ReportContainsNames) {
  eu::ComponentTimers t;
  t.add(eu::ComponentTimers::kHydro, 2.0);
  const std::string rep = t.report();
  EXPECT_NE(rep.find("hydrodynamics"), std::string::npos);
}

TEST(FlopCounter, AccumulatesPerComponent) {
  eu::FlopCounter c;
  c.add("hydro", 100);
  c.add("hydro", 50);
  c.add("fft", 10);
  EXPECT_EQ(c.component("hydro"), 150u);
  EXPECT_EQ(c.total(), 160u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(AllocStats, TracksPeakAndLive) {
  eu::AllocStats s;
  s.on_alloc(100);
  s.on_alloc(200);
  EXPECT_EQ(s.live_bytes(), 300u);
  EXPECT_EQ(s.peak_bytes(), 300u);
  s.on_free(200);
  EXPECT_EQ(s.live_bytes(), 100u);
  EXPECT_EQ(s.peak_bytes(), 300u);
  s.on_alloc(50);
  EXPECT_EQ(s.allocations(), 3u);
  EXPECT_EQ(s.frees(), 1u);
  EXPECT_EQ(s.total_bytes(), 350u);
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    ENZO_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const enzo::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}
