// Restart determinism: the §4 workflow demands that an interrupted and
// resumed run is indistinguishable from an uninterrupted one.  The
// cosmology_box deck (gravity + particles + AMR) is run N steps straight
// through, then again as checkpoint-at-2 / fresh-process restart / continue —
// the per-step diagnostics records of the overlapping steps and the audit
// conservation sums must match byte for byte.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/auditor.hpp"
#include "core/parameter_file.hpp"
#include "core/simulation.hpp"
#include "io/checkpoint.hpp"
#include "io/checkpoint_writer.hpp"
#include "perf/diagnostics.hpp"

using namespace enzo;

namespace {

constexpr int kTotalSteps = 4;
constexpr int kCheckpointStep = 2;

core::ParameterDeck box_deck() {
  const std::string deck_path =
      std::string(ENZO_SOURCE_DIR) + "/decks/cosmology_box.enzo";
  return core::parse_parameter_file(deck_path);
}

std::vector<std::string> normalized_records(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    perf::StepRecord rec;
    EXPECT_TRUE(perf::parse_step_record(line, &rec)) << "bad record: " << line;
    rec.wall_seconds = 0.0;
    rec.peak_bytes = 0;
    rec.flops = 0;
    out.push_back(perf::step_record_json(rec));
  }
  return out;
}

struct RunResult {
  std::vector<std::string> records;
  double audit_mass = 0.0;
  double audit_energy = 0.0;
};

}  // namespace

TEST(CheckpointRestartTest, ResumedRunIsByteIdenticalToUninterrupted) {
  const std::string dir = ::testing::TempDir();
  const std::string ckpt_dir = dir + "ckpt_restart_det";
  std::filesystem::remove_all(ckpt_dir);

  // Reference: kTotalSteps straight through.
  RunResult ref;
  {
    const std::string diag = dir + "restart_det_ref.jsonl";
    core::ParameterDeck deck = box_deck();
    core::Simulation sim(deck.config);
    core::setup_from_deck(sim, deck);
    perf::DiagnosticsSink sink(diag);
    ASSERT_TRUE(sink.ok());
    sim.set_diagnostics_sink(&sink);
    for (int s = 0; s < kTotalSteps; ++s) sim.advance_root_step();
    sim.set_diagnostics_sink(nullptr);
    const analysis::AuditReport& rep = sim.run_audit();
    ref.records = normalized_records(diag);
    ref.audit_mass = rep.mass_total;
    ref.audit_energy = rep.energy_total;
    std::remove(diag.c_str());
  }
  ASSERT_EQ(ref.records.size(), static_cast<std::size_t>(kTotalSteps));

  // Interrupted: run to kCheckpointStep with the periodic writer (compressed
  // sections, executor-parallel encode), then stop — simulating the job
  // dying after its last completed checkpoint.  Like the reference (and like
  // production), this run logs diagnostics; the conservation baselines taken
  // at its first record must travel through the checkpoint.
  {
    const std::string diag = dir + "restart_det_first.jsonl";
    core::ParameterDeck deck = box_deck();
    core::Simulation sim(deck.config);
    core::setup_from_deck(sim, deck);
    perf::DiagnosticsSink sink(diag);
    ASSERT_TRUE(sink.ok());
    sim.set_diagnostics_sink(&sink);
    io::CheckpointWriter::Options wopts;
    wopts.dir = ckpt_dir;
    wopts.executor = &sim.executor();
    io::CheckpointWriter writer(wopts);
    for (int s = 0; s < kCheckpointStep; ++s) {
      sim.advance_root_step();
      writer.checkpoint(sim);
    }
    writer.wait();
    ASSERT_TRUE(writer.ok()) << writer.last_error();
    sim.set_diagnostics_sink(nullptr);
    // The pre-interruption records must already match the reference.
    const auto first = normalized_records(diag);
    ASSERT_EQ(first.size(), static_cast<std::size_t>(kCheckpointStep));
    for (std::size_t i = 0; i < first.size(); ++i)
      EXPECT_EQ(first[i], ref.records[i]) << "pre-restart step " << i + 1;
    std::remove(diag.c_str());
  }

  // Resumed: a fresh Simulation (fresh process in production), sink attached
  // *before* the restore so the reinstated conservation baselines stick, then
  // the remaining steps.
  RunResult resumed;
  {
    const std::string diag = dir + "restart_det_resume.jsonl";
    core::ParameterDeck deck = box_deck();
    core::Simulation sim(deck.config);
    perf::DiagnosticsSink sink(diag);
    ASSERT_TRUE(sink.ok());
    sim.set_diagnostics_sink(&sink);
    core::configure_from_deck(sim, deck);
    const io::RestoreResult res = io::restore_latest_checkpoint(sim, ckpt_dir);
    EXPECT_EQ(res.skipped, 0);
    ASSERT_EQ(sim.root_steps_taken(), kCheckpointStep);
    for (int s = kCheckpointStep; s < kTotalSteps; ++s)
      sim.advance_root_step();
    sim.set_diagnostics_sink(nullptr);
    const analysis::AuditReport& rep = sim.run_audit();
    resumed.records = normalized_records(diag);
    resumed.audit_mass = rep.mass_total;
    resumed.audit_energy = rep.energy_total;
    std::remove(diag.c_str());
  }

  // The resumed run wrote records for steps kCheckpointStep+1..kTotalSteps;
  // they must equal the reference's records for the same steps, byte for
  // byte — including the conservation residuals, which depend on the
  // *original* t=0 baselines travelling through the checkpoint.
  ASSERT_EQ(resumed.records.size(),
            static_cast<std::size_t>(kTotalSteps - kCheckpointStep));
  for (std::size_t i = 0; i < resumed.records.size(); ++i)
    EXPECT_EQ(resumed.records[i],
              ref.records[static_cast<std::size_t>(kCheckpointStep) + i])
        << "step " << kCheckpointStep + i;

  // Audit conservation sums of the final states must agree bitwise.
  EXPECT_EQ(resumed.audit_mass, ref.audit_mass);
  EXPECT_EQ(resumed.audit_energy, ref.audit_energy);
  std::filesystem::remove_all(ckpt_dir);
}
