// LevelExecutor engine tests: completeness and ordering of both backends,
// exception propagation with pool reuse, work stealing under skewed costs,
// nested parallel_for, bit-identical ordered reductions, and the hierarchy
// invalidation contract (no rebuild inside a phase).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "mesh/field.hpp"
#include "mesh/hierarchy.hpp"
#include "util/error.hpp"

using namespace enzo;
using exec::Backend;
using exec::LevelExecutor;
using exec::Phase;
using exec::SerialExecutor;
using exec::ThreadPoolExecutor;

namespace {
constexpr Phase kPhase{"test_phase", nullptr, 0};
}  // namespace

TEST(SerialExecutorTest, RunsAllIndicesInOrder) {
  SerialExecutor ex;
  std::vector<std::size_t> order;
  ex.for_each(kPhase, 8, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(SerialExecutorTest, CostFunctionDoesNotAffectOrder) {
  SerialExecutor ex;
  std::vector<std::size_t> order;
  ex.for_each(
      kPhase, 4, [&](std::size_t i) { order.push_back(i); },
      [](std::size_t i) { return 100u - i; });
  ASSERT_EQ(order.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(order[i], i);
}

TEST(SerialExecutorTest, EmptyPhaseIsANoop) {
  SerialExecutor ex;
  ex.for_each(kPhase, 0,
              [&](std::size_t) { FAIL() << "task ran for empty phase"; });
  EXPECT_FALSE(exec::in_phase());
}

TEST(SerialExecutorTest, ExceptionPropagates) {
  SerialExecutor ex;
  EXPECT_THROW(ex.for_each(kPhase, 4,
                           [&](std::size_t i) {
                             if (i == 2) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  EXPECT_FALSE(exec::in_phase());
}

TEST(ThreadPoolExecutorTest, RunsEveryIndexExactlyOnce) {
  ThreadPoolExecutor ex(4);
  EXPECT_EQ(ex.backend(), Backend::kThreadPool);
  EXPECT_GE(ex.threads(), 1);
  std::vector<std::atomic<int>> hits(64);
  ex.for_each(kPhase, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GE(ex.tasks_run(), 64u);
}

TEST(ThreadPoolExecutorTest, EmptyPhaseIsANoop) {
  ThreadPoolExecutor ex(4);
  ex.for_each(kPhase, 0,
              [&](std::size_t) { FAIL() << "task ran for empty phase"; });
  EXPECT_EQ(ex.tasks_run(), 0u);
}

TEST(ThreadPoolExecutorTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPoolExecutor ex(4);
  EXPECT_THROW(ex.for_each(kPhase, 32,
                           [&](std::size_t i) {
                             if (i == 7) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  EXPECT_FALSE(exec::in_phase());
  // The pool must drain the failed phase completely and accept new work.
  std::atomic<int> ran{0};
  ex.for_each(kPhase, 16, [&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolExecutorTest, StealsUnderSkewedCosts) {
  ThreadPoolExecutor ex(2);
  if (ex.threads() < 2) GTEST_SKIP() << "no worker lane available";
  // Task 0 is by far the most expensive: the seeding puts it first on the
  // caller's queue, so while the caller sits in it the worker lane must
  // steal the caller's remaining tasks to finish the phase.
  std::atomic<int> ran{0};
  ex.for_each(
      kPhase, 16,
      [&](std::size_t i) {
        if (i == 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ran++;
      },
      [](std::size_t i) { return i == 0 ? 1000000u : 1u; });
  EXPECT_EQ(ran.load(), 16);
  EXPECT_GT(ex.steals(), 0u);
}

TEST(ThreadPoolExecutorTest, ParallelForCoversRangeOnce) {
  ThreadPoolExecutor ex(4);
  std::vector<std::atomic<int>> hits(1000);
  ex.parallel_for(hits.size(), 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolExecutorTest, NestedParallelForInsideTask) {
  // The step_grids pattern: a per-grid task runs an intra-grid
  // parallel_for on the same pool (leaf drain, no deadlock).
  ThreadPoolExecutor ex(4);
  std::atomic<std::int64_t> sum{0};
  ex.for_each(kPhase, 3, [&](std::size_t) {
    ex.parallel_for(100, 1, [&](std::size_t b, std::size_t e) {
      std::int64_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<std::int64_t>(i);
      sum += local;
    });
  });
  EXPECT_EQ(sum.load(), 3 * (99 * 100 / 2));
}

TEST(ExecutorTest, ReduceOrderedIsBitIdenticalAcrossBackends) {
  // Left-to-right FP sums depend on combining order; reduce_ordered promises
  // the serial order at any thread count.
  auto map = [](std::size_t i) {
    return std::sin(static_cast<double>(i) * 0.7) * 1e-3 +
           1.0 / (static_cast<double>(i) + 1.0);
  };
  auto fold = [](double acc, double v) { return acc + v; };
  SerialExecutor serial;
  const double want = serial.reduce_ordered(kPhase, 257, 0.0, map, fold);
  ThreadPoolExecutor pool(4);
  for (int rep = 0; rep < 4; ++rep) {
    const double got = pool.reduce_ordered(kPhase, 257, 0.0, map, fold);
    EXPECT_EQ(want, got);  // bitwise, not approximate
  }
}

TEST(ExecutorTest, MakeExecutorRespectsBackend) {
  exec::ExecConfig cfg;
  cfg.backend = Backend::kSerial;
  EXPECT_EQ(exec::make_executor(cfg)->backend(), Backend::kSerial);
  cfg.backend = Backend::kThreadPool;
  cfg.threads = 3;
  auto ex = exec::make_executor(cfg);
  EXPECT_EQ(ex->backend(), Backend::kThreadPool);
  EXPECT_EQ(ex->threads(), 3);
}

TEST(ExecutorTest, BackendNamesRoundTrip) {
  EXPECT_EQ(exec::backend_from_string("serial"), Backend::kSerial);
  EXPECT_EQ(exec::backend_from_string("threadpool"), Backend::kThreadPool);
  EXPECT_THROW(exec::backend_from_string("gpu"), enzo::Error);
  EXPECT_STREQ(exec::backend_name(Backend::kSerial), "serial");
  EXPECT_STREQ(exec::backend_name(Backend::kThreadPool), "threadpool");
}

TEST(ExecutorHierarchyContract, RebuildInsidePhaseThrows) {
  mesh::HierarchyParams p;
  p.root_dims = {8, 8, 8};
  p.max_level = 1;
  mesh::Hierarchy h(p);
  h.build_root();
  SerialExecutor ex;
  EXPECT_THROW(
      ex.for_each(kPhase, 1,
                  [&](std::size_t) {
                    h.rebuild(1, [](const mesh::Grid&,
                                    std::vector<mesh::Index3>&) {});
                  }),
      enzo::Error);
  // Outside a phase the same rebuild is legal.
  h.rebuild(1, [](const mesh::Grid&, std::vector<mesh::Index3>&) {});
}

TEST(ExecutorHierarchyContract, GenerationCountsMutations) {
  mesh::HierarchyParams p;
  p.root_dims = {8, 8, 8};
  p.max_level = 1;
  mesh::Hierarchy h(p);
  const std::uint64_t g0 = h.generation();
  h.build_root();
  EXPECT_GT(h.generation(), g0);
  const std::uint64_t g1 = h.generation();
  h.rebuild(1, [](const mesh::Grid&, std::vector<mesh::Index3>&) {});
  EXPECT_GT(h.generation(), g1);
}
