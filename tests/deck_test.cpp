// Parameter-deck tests: parsing, validation (unknown keys, malformed
// values, line numbers), problem dispatch, and render round trips.

#include <gtest/gtest.h>

#include <sstream>

#include "core/parameter_file.hpp"
#include "util/constants.hpp"

using namespace enzo;
using core::ParameterDeck;
using core::ProblemType;

namespace {
ParameterDeck parse(const std::string& text) {
  std::istringstream in(text);
  return core::parse_parameter_deck(in);
}
}  // namespace

TEST(Deck, ParsesFullCollapseDeck) {
  const auto d = parse(R"(
# comment line
ProblemType            = CollapseCloud
TopGridDimensions      = 16 16 16
RefineBy               = 2
MaximumRefinementLevel = 4   # trailing comment
RefineByJeansLength    = 8
ChemistryEnabled       = 1
GravityEnabled         = true
BoxSizeParsec          = 4.0
CloudOverdensity       = 12.5
StopSteps              = 7
)");
  EXPECT_EQ(d.problem, ProblemType::kCollapseCloud);
  EXPECT_EQ(d.config.hierarchy.root_dims, (mesh::Index3{16, 16, 16}));
  EXPECT_EQ(d.config.hierarchy.max_level, 4);
  EXPECT_DOUBLE_EQ(d.config.refinement.jeans_number, 8.0);
  EXPECT_TRUE(d.config.enable_chemistry);
  EXPECT_TRUE(d.config.enable_gravity);
  // ChemistryEnabled also switches on the full field list.
  EXPECT_EQ(d.config.hierarchy.fields.size(),
            mesh::chemistry_field_list().size());
  EXPECT_NEAR(d.collapse.box_proper_cm, 4.0 * constants::kParsec, 1e6);
  EXPECT_DOUBLE_EQ(d.collapse.overdensity, 12.5);
  EXPECT_EQ(d.stop_steps, 7);
}

TEST(Deck, OneDimensionalDims) {
  const auto d = parse("TopGridDimensions = 128\n");
  EXPECT_EQ(d.config.hierarchy.root_dims, (mesh::Index3{128, 1, 1}));
}

TEST(Deck, UnknownKeyReportsLineNumber) {
  try {
    parse("Gamma = 1.4\nNotAKey = 3\n");
    FAIL() << "should have thrown";
  } catch (const enzo::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos);
    EXPECT_NE(msg.find("NotAKey"), std::string::npos);
  }
}

TEST(Deck, MalformedValuesRejected) {
  EXPECT_THROW(parse("Gamma = abc\n"), enzo::Error);
  EXPECT_THROW(parse("MaximumRefinementLevel = 2.5\n"), enzo::Error);
  EXPECT_THROW(parse("ChemistryEnabled = maybe\n"), enzo::Error);
  EXPECT_THROW(parse("Gamma 1.4\n"), enzo::Error);       // missing '='
  EXPECT_THROW(parse("= 3\n"), enzo::Error);             // empty key
  EXPECT_THROW(parse("Gamma =\n"), enzo::Error);         // empty value
  EXPECT_THROW(parse("TopGridDimensions = 8 8 8 8\n"), enzo::Error);
  EXPECT_THROW(parse("ProblemType = FirstStar\n"), enzo::Error);
  EXPECT_THROW(parse("HydroMethod = MUSCL\n"), enzo::Error);
}

TEST(Deck, CosmologyKeysMapThrough) {
  const auto d = parse(R"(
ProblemType         = Cosmology
ComovingCoordinates = 1
HubbleConstantNow   = 0.5
OmegaMatterNow      = 1.0
OmegaBaryonNow      = 0.06
Sigma8              = 0.7
InitialRedshift     = 30
ComovingBoxSizeMpc  = 2.0
RandomSeed          = 99
NestedStaticLevels  = 2
)");
  EXPECT_TRUE(d.config.comoving);
  EXPECT_DOUBLE_EQ(d.config.frw.sigma8, 0.7);
  EXPECT_NEAR(d.cosmology.box_comoving_cm, 2.0 * constants::kMpc, 1e10);
  EXPECT_EQ(d.cosmology.seed, 99u);
  EXPECT_EQ(d.cosmology.nested_static_levels, 2);
}

TEST(Deck, SetupDispatchesSod) {
  auto d = parse(R"(
ProblemType       = SodTube
TopGridDimensions = 64
Gamma             = 1.4
)");
  core::Simulation sim(d.config);
  core::setup_from_deck(sim, d);
  EXPECT_EQ(sim.hierarchy().total_cells(), 64);
  EXPECT_FALSE(sim.config().hierarchy.periodic);
  // The diaphragm is set up.
  mesh::Grid* g = sim.hierarchy().grids(0)[0];
  EXPECT_DOUBLE_EQ(g->field(mesh::Field::kDensity)(g->sx(10), 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g->field(mesh::Field::kDensity)(g->sx(50), 0, 0), 0.125);
}

TEST(Deck, SetupDispatchesUniformAndRuns) {
  auto d = parse(R"(
ProblemType           = Uniform
TopGridDimensions     = 8 8 8
UniformDensity        = 2.5
UniformInternalEnergy = 0.7
StopSteps             = 2
)");
  core::Simulation sim(d.config);
  core::setup_from_deck(sim, d);
  for (int s = 0; s < d.stop_steps; ++s) sim.advance_root_step();
  mesh::Grid* g = sim.hierarchy().grids(0)[0];
  EXPECT_NEAR(g->field(mesh::Field::kDensity)(g->sx(3), g->sy(3), g->sz(3)),
              2.5, 1e-12);
}

TEST(Deck, RenderRoundTrips) {
  const auto d = parse(R"(
ProblemType            = CollapseCloud
TopGridDimensions      = 16 16 16
MaximumRefinementLevel = 3
RefineByJeansLength    = 4
ChemistryEnabled       = 1
GravityEnabled         = 1
HydroMethod            = Zeus
Gamma                  = 1.4
StopSteps              = 5
)");
  const std::string text = core::render_deck(d);
  std::istringstream in(text);
  const auto d2 = core::parse_parameter_deck(in);
  EXPECT_EQ(d2.problem, d.problem);
  EXPECT_EQ(d2.config.hierarchy.max_level, d.config.hierarchy.max_level);
  EXPECT_EQ(d2.config.hydro.solver, d.config.hydro.solver);
  EXPECT_DOUBLE_EQ(d2.config.hydro.gamma, d.config.hydro.gamma);
  EXPECT_EQ(d2.stop_steps, d.stop_steps);
}

TEST(Deck, ArenaKeysMapThroughAndRoundTrip) {
  const auto d = parse(R"(
ArenaMode        = 0
BlockGranularity = 512
UseOverlapTopology = 0
)");
  EXPECT_FALSE(d.config.hierarchy.arena.pool);
  EXPECT_FALSE(d.config.hierarchy.arena.incremental);
  EXPECT_EQ(d.config.hierarchy.arena.granularity, 512);
  EXPECT_FALSE(d.config.hierarchy.use_overlap_topology);

  // Defaults: arena on, overlap topology on — and those defaults stay
  // implicit in a rendered deck.
  const auto def = parse("Gamma = 1.4\n");
  EXPECT_TRUE(def.config.hierarchy.arena.pool);
  EXPECT_TRUE(def.config.hierarchy.arena.incremental);
  EXPECT_TRUE(def.config.hierarchy.use_overlap_topology);
  const std::string def_text = core::render_deck(def);
  EXPECT_EQ(def_text.find("ArenaMode"), std::string::npos);
  EXPECT_EQ(def_text.find("UseOverlapTopology"), std::string::npos);

  // Non-default settings survive a render → parse round trip (restart path).
  std::istringstream in(core::render_deck(d));
  const auto d2 = core::parse_parameter_deck(in);
  EXPECT_FALSE(d2.config.hierarchy.arena.pool);
  EXPECT_FALSE(d2.config.hierarchy.arena.incremental);
  EXPECT_EQ(d2.config.hierarchy.arena.granularity, 512);
  EXPECT_FALSE(d2.config.hierarchy.use_overlap_topology);

  EXPECT_THROW(parse("BlockGranularity = 0\n"), enzo::Error);
}

TEST(Deck, CheckedInDecksParse) {
  for (const char* path : {"decks/first_star.enzo", "decks/sod.enzo",
                           "decks/cosmology_box.enzo"}) {
    // Tests run from the build tree; reach the repo root via the source dir
    // baked in by CMake.
    const std::string full = std::string(ENZO_SOURCE_DIR) + "/" + path;
    EXPECT_NO_THROW({ auto d = core::parse_parameter_file(full); (void)d; })
        << path;
  }
}
