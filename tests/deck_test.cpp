// Parameter-deck tests: parsing, validation (unknown keys, malformed
// values, line numbers), problem dispatch, and render round trips —
// including the shipped-deck suite that proves every key in every
// decks/*.enzo is parsed, rendered, and re-parsed losslessly.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "core/parameter_file.hpp"
#include "util/constants.hpp"

using namespace enzo;
using core::ParameterDeck;

namespace {
ParameterDeck parse(const std::string& text) {
  std::istringstream in(text);
  return core::parse_parameter_deck(in);
}

/// All shipped decks, sorted (tests run from the build tree; the source dir
/// is baked in by CMake).
std::vector<std::filesystem::path> shipped_decks() {
  std::vector<std::filesystem::path> out;
  for (const auto& e : std::filesystem::directory_iterator(
           std::string(ENZO_SOURCE_DIR) + "/decks"))
    if (e.path().extension() == ".enzo") out.push_back(e.path());
  std::sort(out.begin(), out.end());
  EXPECT_GE(out.size(), 7u) << "shipped decks went missing";
  return out;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}
}  // namespace

TEST(Deck, ParsesFullCollapseDeck) {
  const auto d = parse(R"(
# comment line
ProblemType            = CollapseCloud
TopGridDimensions      = 16 16 16
RefineBy               = 2
MaximumRefinementLevel = 4   # trailing comment
RefineByJeansLength    = 8
ChemistryEnabled       = 1
GravityEnabled         = true
BoxSizeParsec          = 4.0
CloudOverdensity       = 12.5
StopSteps              = 7
)");
  EXPECT_EQ(d.problem, "CollapseCloud");
  EXPECT_EQ(d.config.hierarchy.root_dims, (mesh::Index3{16, 16, 16}));
  EXPECT_EQ(d.config.hierarchy.max_level, 4);
  EXPECT_DOUBLE_EQ(d.config.refinement.jeans_number, 8.0);
  EXPECT_TRUE(d.config.enable_chemistry);
  EXPECT_TRUE(d.config.enable_gravity);
  // ChemistryEnabled also switches on the full field list.
  EXPECT_EQ(d.config.hierarchy.fields.size(),
            mesh::chemistry_field_list().size());
  EXPECT_NEAR(d.collapse.box_proper_cm, 4.0 * constants::kParsec, 1e6);
  EXPECT_DOUBLE_EQ(d.collapse.overdensity, 12.5);
  EXPECT_EQ(d.stop_steps, 7);
}

TEST(Deck, OneDimensionalDims) {
  const auto d = parse("TopGridDimensions = 128\n");
  EXPECT_EQ(d.config.hierarchy.root_dims, (mesh::Index3{128, 1, 1}));
}

TEST(Deck, UnknownKeyReportsLineNumber) {
  try {
    parse("Gamma = 1.4\nNotAKey = 3\n");
    FAIL() << "should have thrown";
  } catch (const enzo::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos);
    EXPECT_NE(msg.find("NotAKey"), std::string::npos);
  }
}

TEST(Deck, MalformedValuesRejected) {
  EXPECT_THROW(parse("Gamma = abc\n"), enzo::Error);
  EXPECT_THROW(parse("MaximumRefinementLevel = 2.5\n"), enzo::Error);
  EXPECT_THROW(parse("ChemistryEnabled = maybe\n"), enzo::Error);
  EXPECT_THROW(parse("Gamma 1.4\n"), enzo::Error);       // missing '='
  EXPECT_THROW(parse("= 3\n"), enzo::Error);             // empty key
  EXPECT_THROW(parse("Gamma =\n"), enzo::Error);         // empty value
  EXPECT_THROW(parse("TopGridDimensions = 8 8 8 8\n"), enzo::Error);
  EXPECT_THROW(parse("ProblemType = FirstStar\n"), enzo::Error);
  EXPECT_THROW(parse("HydroMethod = MUSCL\n"), enzo::Error);
}

TEST(Deck, CosmologyKeysMapThrough) {
  const auto d = parse(R"(
ProblemType         = Cosmology
ComovingCoordinates = 1
HubbleConstantNow   = 0.5
OmegaMatterNow      = 1.0
OmegaBaryonNow      = 0.06
Sigma8              = 0.7
InitialRedshift     = 30
ComovingBoxSizeMpc  = 2.0
RandomSeed          = 99
NestedStaticLevels  = 2
)");
  EXPECT_TRUE(d.config.comoving);
  EXPECT_DOUBLE_EQ(d.config.frw.sigma8, 0.7);
  EXPECT_NEAR(d.cosmology.box_comoving_cm, 2.0 * constants::kMpc, 1e10);
  EXPECT_EQ(d.cosmology.seed, 99u);
  EXPECT_EQ(d.cosmology.nested_static_levels, 2);
}

TEST(Deck, SetupDispatchesSod) {
  auto d = parse(R"(
ProblemType       = SodTube
TopGridDimensions = 64
Gamma             = 1.4
)");
  core::Simulation sim(d.config);
  core::setup_from_deck(sim, d);
  EXPECT_EQ(sim.hierarchy().total_cells(), 64);
  EXPECT_FALSE(sim.config().hierarchy.periodic);
  // The diaphragm is set up.
  mesh::Grid* g = sim.hierarchy().grids(0)[0];
  EXPECT_DOUBLE_EQ(g->field(mesh::Field::kDensity)(g->sx(10), 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g->field(mesh::Field::kDensity)(g->sx(50), 0, 0), 0.125);
}

TEST(Deck, SetupDispatchesUniformAndRuns) {
  auto d = parse(R"(
ProblemType           = Uniform
TopGridDimensions     = 8 8 8
UniformDensity        = 2.5
UniformInternalEnergy = 0.7
StopSteps             = 2
)");
  core::Simulation sim(d.config);
  core::setup_from_deck(sim, d);
  for (int s = 0; s < d.stop_steps; ++s) sim.advance_root_step();
  mesh::Grid* g = sim.hierarchy().grids(0)[0];
  EXPECT_NEAR(g->field(mesh::Field::kDensity)(g->sx(3), g->sy(3), g->sz(3)),
              2.5, 1e-12);
}

TEST(Deck, RenderRoundTrips) {
  const auto d = parse(R"(
ProblemType            = CollapseCloud
TopGridDimensions      = 16 16 16
MaximumRefinementLevel = 3
RefineByJeansLength    = 4
ChemistryEnabled       = 1
GravityEnabled         = 1
HydroMethod            = Zeus
Gamma                  = 1.4
StopSteps              = 5
)");
  const std::string text = core::render_deck(d);
  std::istringstream in(text);
  const auto d2 = core::parse_parameter_deck(in);
  EXPECT_EQ(d2.problem, d.problem);
  EXPECT_EQ(d2.config.hierarchy.max_level, d.config.hierarchy.max_level);
  EXPECT_EQ(d2.config.hydro.solver, d.config.hydro.solver);
  EXPECT_DOUBLE_EQ(d2.config.hydro.gamma, d.config.hydro.gamma);
  EXPECT_EQ(d2.stop_steps, d.stop_steps);
}

TEST(Deck, ArenaKeysMapThroughAndRoundTrip) {
  const auto d = parse(R"(
ArenaMode        = 0
BlockGranularity = 512
UseOverlapTopology = 0
)");
  EXPECT_FALSE(d.config.hierarchy.arena.pool);
  EXPECT_FALSE(d.config.hierarchy.arena.incremental);
  EXPECT_EQ(d.config.hierarchy.arena.granularity, 512);
  EXPECT_FALSE(d.config.hierarchy.use_overlap_topology);

  // Defaults: arena on, overlap topology on — and those defaults stay
  // implicit in a rendered deck.
  const auto def = parse("Gamma = 1.4\n");
  EXPECT_TRUE(def.config.hierarchy.arena.pool);
  EXPECT_TRUE(def.config.hierarchy.arena.incremental);
  EXPECT_TRUE(def.config.hierarchy.use_overlap_topology);
  const std::string def_text = core::render_deck(def);
  EXPECT_EQ(def_text.find("ArenaMode"), std::string::npos);
  EXPECT_EQ(def_text.find("UseOverlapTopology"), std::string::npos);

  // Non-default settings survive a render → parse round trip (restart path).
  std::istringstream in(core::render_deck(d));
  const auto d2 = core::parse_parameter_deck(in);
  EXPECT_FALSE(d2.config.hierarchy.arena.pool);
  EXPECT_FALSE(d2.config.hierarchy.arena.incremental);
  EXPECT_EQ(d2.config.hierarchy.arena.granularity, 512);
  EXPECT_FALSE(d2.config.hierarchy.use_overlap_topology);

  EXPECT_THROW(parse("BlockGranularity = 0\n"), enzo::Error);
}

TEST(Deck, UnknownProblemTypeListsRegisteredNames) {
  // The error text is derived from the problem registry, so it names the
  // problems that actually exist (satellite of ISSUE 10).
  try {
    parse("ProblemType = FirstStar\n");
    FAIL() << "should have thrown";
  } catch (const enzo::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("FirstStar"), std::string::npos);
    for (const char* name : {"SodTube", "SedovBlast", "ZeldovichPancake",
                             "CollapseCloud", "Cosmology", "Uniform"})
      EXPECT_NE(msg.find(name), std::string::npos) << name;
  }
}

TEST(Deck, ShippedDecksRenderRoundTrip) {
  // parse → render → parse → render must be a fixed point for every shipped
  // deck: the renderer emits every live key with round-trip float precision.
  for (const auto& path : shipped_decks()) {
    const auto d1 = core::parse_parameter_file(path.string());
    const std::string r1 = core::render_deck(d1);
    const auto d2 = parse(r1);
    EXPECT_EQ(core::render_deck(d2), r1) << path;
    EXPECT_EQ(d2.problem, d1.problem) << path;
  }
}

TEST(Deck, EveryShippedKeyIsLive) {
  // Removing any key line from a shipped deck must change the rendered
  // config — otherwise the key is either silently dropped by the renderer
  // (a lossy parse/render pair) or redundantly restates a default.
  // Intentional restatements are allowlisted and verified to actually BE
  // redundant, so the allowlist cannot rot either.
  const std::map<std::string, std::set<std::string>> redundant = {
      {"sod.enzo", {"HydroMethod"}},
      {"first_star.enzo", {"HydroMethod"}},
      {"sedov.enzo", {"TopGridDimensions"}},  // 32^3 is also the default
      {"cosmology_box.enzo",
       {"HubbleConstantNow", "OmegaMatterNow", "OmegaBaryonNow",
        "OmegaLambdaNow", "Sigma8", "RandomSeed", "StopSteps"}},
  };
  for (const auto& path : shipped_decks()) {
    const std::string text = slurp(path);
    const std::string base = core::render_deck(parse(text));
    const auto allow_it = redundant.find(path.filename().string());
    const std::set<std::string> allow = allow_it == redundant.end()
                                            ? std::set<std::string>{}
                                            : allow_it->second;
    std::istringstream lines(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(lines, line)) {
      ++line_no;
      const auto hash = line.find('#');
      const std::string body =
          hash == std::string::npos ? line : line.substr(0, hash);
      const auto eq = body.find('=');
      if (eq == std::string::npos) continue;
      std::string key = body.substr(0, eq);
      key.erase(0, key.find_first_not_of(" \t"));
      key.erase(key.find_last_not_of(" \t") + 1);
      // Re-parse the deck with this one line removed.
      std::istringstream all(text);
      std::ostringstream rest;
      std::string l2;
      std::size_t n2 = 0;
      while (std::getline(all, l2))
        if (++n2 != line_no) rest << l2 << "\n";
      const std::string without = core::render_deck(parse(rest.str()));
      if (allow.count(key)) {
        EXPECT_EQ(without, base)
            << path << ": '" << key << "' is allowlisted as redundant but "
            << "actually changes the config — drop it from the allowlist";
      } else {
        EXPECT_NE(without, base)
            << path << ": key '" << key << "' has no effect on the rendered "
            << "config — it is silently ignored or restates a default";
      }
    }
  }
}
