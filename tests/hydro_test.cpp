// Hydrodynamics tests: the two-shock Riemann solver against exact star
// values, Sod shock tube integration vs the exact solution (both PPM and
// ZEUS), exact conservation on periodic domains, passive-scalar advection,
// expansion source terms against closed forms, and timestep constraints.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "cosmology/units.hpp"
#include "hydro/hydro.hpp"
#include "hydro/pencil.hpp"
#include "hydro/riemann.hpp"
#include "mesh/boundary.hpp"
#include "mesh/hierarchy.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace enzo;
using mesh::Field;

namespace {

// ---- exact Riemann reference (Toro) for test comparison ---------------------
struct ExactRiemann {
  double rho_l, u_l, p_l, rho_r, u_r, p_r, gamma;
  double pstar = 0, ustar = 0;

  void solve() {
    const double cl = std::sqrt(gamma * p_l / rho_l);
    const double cr = std::sqrt(gamma * p_r / rho_r);
    auto f_side = [&](double p, double ps, double rhos, double cs) {
      if (p > ps) {  // shock
        const double a = 2.0 / ((gamma + 1) * rhos);
        const double b = (gamma - 1) / (gamma + 1) * ps;
        return (p - ps) * std::sqrt(a / (p + b));
      }
      // rarefaction
      return 2.0 * cs / (gamma - 1) *
             (std::pow(p / ps, (gamma - 1) / (2 * gamma)) - 1.0);
    };
    double p = 0.5 * (p_l + p_r);
    for (int it = 0; it < 200; ++it) {
      const double f =
          f_side(p, p_l, rho_l, cl) + f_side(p, p_r, rho_r, cr) + (u_r - u_l);
      const double dp = 1e-7 * p;
      const double fp = (f_side(p + dp, p_l, rho_l, cl) +
                         f_side(p + dp, p_r, rho_r, cr) + (u_r - u_l) - f) /
                        dp;
      const double step = f / fp;
      p = std::max(p - step, 1e-12);
      if (std::abs(step) < 1e-12 * p) break;
    }
    pstar = p;
    ustar = 0.5 * (u_l + u_r) +
            0.5 * (f_side(p, p_r, rho_r, cr) - f_side(p, p_l, rho_l, cl));
  }

  /// Sample the exact similarity solution at ξ = x/t.
  void sample(double xi, double& rho, double& u, double& p) const {
    const double cl = std::sqrt(gamma * p_l / rho_l);
    const double cr = std::sqrt(gamma * p_r / rho_r);
    const double g = gamma;
    if (xi <= ustar) {  // left of contact
      if (pstar > p_l) {
        const double sl =
            u_l - cl * std::sqrt((g + 1) / (2 * g) * pstar / p_l +
                                 (g - 1) / (2 * g));
        if (xi < sl) {
          rho = rho_l; u = u_l; p = p_l;
        } else {
          rho = rho_l * ((pstar / p_l + (g - 1) / (g + 1)) /
                         ((g - 1) / (g + 1) * pstar / p_l + 1));
          u = ustar; p = pstar;
        }
      } else {
        const double rho_s = rho_l * std::pow(pstar / p_l, 1 / g);
        const double cs = std::sqrt(g * pstar / rho_s);
        if (xi < u_l - cl) {
          rho = rho_l; u = u_l; p = p_l;
        } else if (xi > ustar - cs) {
          rho = rho_s; u = ustar; p = pstar;
        } else {
          u = 2 / (g + 1) * (cl + (g - 1) / 2 * u_l + xi);
          const double c = u - xi;
          rho = rho_l * std::pow(c / cl, 2 / (g - 1));
          p = p_l * std::pow(c / cl, 2 * g / (g - 1));
        }
      }
    } else {
      if (pstar > p_r) {
        const double sr =
            u_r + cr * std::sqrt((g + 1) / (2 * g) * pstar / p_r +
                                 (g - 1) / (2 * g));
        if (xi > sr) {
          rho = rho_r; u = u_r; p = p_r;
        } else {
          rho = rho_r * ((pstar / p_r + (g - 1) / (g + 1)) /
                         ((g - 1) / (g + 1) * pstar / p_r + 1));
          u = ustar; p = pstar;
        }
      } else {
        const double rho_s = rho_r * std::pow(pstar / p_r, 1 / g);
        const double cs = std::sqrt(g * pstar / rho_s);
        if (xi > u_r + cr) {
          rho = rho_r; u = u_r; p = p_r;
        } else if (xi < ustar + cs) {
          rho = rho_s; u = ustar; p = pstar;
        } else {
          u = 2 / (g + 1) * (-cr + (g - 1) / 2 * u_r + xi);
          const double c = xi - u;
          rho = rho_r * std::pow(c / cr, 2 / (g - 1));
          p = p_r * std::pow(c / cr, 2 * g / (g - 1));
        }
      }
    }
  }
};

/// Build a 1-d tube hierarchy (n×1×1, outflow).
mesh::Hierarchy make_tube(int n) {
  mesh::HierarchyParams p;
  p.root_dims = {n, 1, 1};
  p.periodic = false;
  mesh::Hierarchy h(p);
  h.build_root();
  return h;
}

void init_sod(mesh::Grid& g, double gamma) {
  const auto rho = g.field(Field::kDensity);
  const auto vx = g.field(Field::kVelocityX);
  const auto et = g.field(Field::kTotalEnergy);
  const auto ei = g.field(Field::kInternalEnergy);
  g.field(Field::kVelocityY).fill(0.0);
  g.field(Field::kVelocityZ).fill(0.0);
  for (int i = 0; i < g.nx(0); ++i) {
    const double x = (i + 0.5) / g.nx(0);
    const double r = x < 0.5 ? 1.0 : 0.125;
    const double p = x < 0.5 ? 1.0 : 0.1;
    rho(g.sx(i), 0, 0) = r;
    vx(g.sx(i), 0, 0) = 0.0;
    ei(g.sx(i), 0, 0) = p / ((gamma - 1) * r);
    et(g.sx(i), 0, 0) = ei(g.sx(i), 0, 0);
  }
}

double run_to_time(mesh::Hierarchy& h, const hydro::HydroParams& hp,
                   double t_end) {
  auto exp = cosmology::Expansion::statics();
  double t = 0;
  mesh::Grid* g = h.grids(0)[0];
  while (t < t_end) {
    mesh::set_boundary_values(h, 0);
    double dt = hydro::compute_timestep(*g, hp, exp);
    dt = std::min(dt, t_end - t);
    hydro::solve_hydro_step(*g, dt, hp, exp);
    t += dt;
  }
  return t;
}

}  // namespace

// ---- Riemann solver -----------------------------------------------------------

TEST(Riemann, SodStarState) {
  hydro::RiemannInput in{1.0, 0.0, 1.0, 0.125, 0.0, 0.1};
  const auto st = hydro::riemann_two_shock(in, 1.4);
  // Exact: p* = 0.30313, u* = 0.92745 (two-shock approximation is close).
  EXPECT_NEAR(st.pstar, 0.30313, 0.31 * 0.05);
  EXPECT_NEAR(st.ustar, 0.92745, 0.93 * 0.05);
}

TEST(Riemann, SymmetricProblemHasZeroVelocity) {
  hydro::RiemannInput in{1.0, -1.0, 1.0, 1.0, 1.0, 1.0};
  const auto st = hydro::riemann_two_shock(in, 5.0 / 3.0);
  EXPECT_NEAR(st.ustar, 0.0, 1e-10);
  EXPECT_LT(st.pstar, 1.0);  // receding flow rarefies
}

TEST(Riemann, CollidingFlowsCompress) {
  hydro::RiemannInput in{1.0, 2.0, 1.0, 1.0, -2.0, 1.0};
  const auto st = hydro::riemann_two_shock(in, 5.0 / 3.0);
  EXPECT_NEAR(st.ustar, 0.0, 1e-10);
  EXPECT_GT(st.pstar, 1.0);
  EXPECT_GT(st.rho, 1.0);
}

TEST(Riemann, UniformStateIsExact) {
  hydro::RiemannInput in{2.0, 0.7, 3.0, 2.0, 0.7, 3.0};
  const auto st = hydro::riemann_two_shock(in, 1.4);
  EXPECT_NEAR(st.rho, 2.0, 1e-9);
  EXPECT_NEAR(st.u, 0.7, 1e-9);
  EXPECT_NEAR(st.p, 3.0, 1e-9);
}

TEST(Riemann, SupersonicAdvectionTakesUpwindState) {
  hydro::RiemannInput in{1.0, 10.0, 1.0, 0.5, 10.0, 0.5};
  const auto st = hydro::riemann_two_shock(in, 1.4);
  // Everything moves right at Mach >> 1: face state is the left state.
  EXPECT_NEAR(st.rho, 1.0, 1e-6);
  EXPECT_NEAR(st.u, 10.0, 1e-6);
  EXPECT_TRUE(st.left_of_contact);
}

TEST(Riemann, StrongRarefactionStaysPositive) {
  hydro::RiemannInput in{1.0, -5.0, 1.0, 1.0, 5.0, 1.0};
  const auto st = hydro::riemann_two_shock(in, 5.0 / 3.0);
  EXPECT_GT(st.pstar, 0.0);
  EXPECT_GT(st.rho, 0.0);
}

class RiemannVsExact
    : public ::testing::TestWithParam<std::array<double, 6>> {};

TEST_P(RiemannVsExact, StarValuesWithinTwoShockTolerance) {
  const auto v = GetParam();
  const double gamma = 1.4;
  hydro::RiemannInput in{v[0], v[1], v[2], v[3], v[4], v[5]};
  const auto st = hydro::riemann_two_shock(in, gamma);
  ExactRiemann ex{v[0], v[1], v[2], v[3], v[4], v[5], gamma};
  ex.solve();
  // Two-shock approximation errs only when strong rarefactions occur.
  EXPECT_NEAR(st.pstar, ex.pstar, 0.12 * ex.pstar + 1e-8);
  const double cscale = std::sqrt(gamma * std::max(v[2], v[5]));
  EXPECT_NEAR(st.ustar, ex.ustar, 0.08 * cscale);
}

INSTANTIATE_TEST_SUITE_P(
    Problems, RiemannVsExact,
    ::testing::Values(std::array<double, 6>{1, 0, 1, 0.125, 0, 0.1},
                      std::array<double, 6>{1, 0.75, 1, 0.125, 0, 0.1},
                      std::array<double, 6>{1, -0.5, 2.0, 2.0, 0.5, 1.0},
                      std::array<double, 6>{5.0, 0, 50.0, 1.0, 0, 0.5},
                      std::array<double, 6>{1, 1.0, 1.0, 1.0, -1.0, 1.0}));

// ---- Sod integration ------------------------------------------------------------

class SodTube : public ::testing::TestWithParam<hydro::Solver> {};

TEST_P(SodTube, MatchesExactSolution) {
  const int n = 128;
  mesh::Hierarchy h = make_tube(n);
  hydro::HydroParams hp;
  hp.solver = GetParam();
  hp.gamma = 1.4;
  hp.cfl = 0.4;
  mesh::Grid* g = h.grids(0)[0];
  init_sod(*g, hp.gamma);
  const double t_end = 0.15;
  run_to_time(h, hp, t_end);

  ExactRiemann ex{1.0, 0.0, 1.0, 0.125, 0.0, 0.1, 1.4};
  ex.solve();
  double l1 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) / n;
    double rho, u, p;
    ex.sample((x - 0.5) / t_end, rho, u, p);
    l1 += std::abs(g->field(Field::kDensity)(g->sx(i), 0, 0) - rho);
  }
  l1 /= n;
  // PPM resolves the tube sharply; ZEUS (donor cell) is diffusive.
  const double tol = GetParam() == hydro::Solver::kPpm ? 0.01 : 0.035;
  EXPECT_LT(l1, tol);
  // Post-shock plateau density.
  double rho_sh, u_sh, p_sh;
  ex.sample((0.75 - 0.5) / t_end, rho_sh, u_sh, p_sh);
  EXPECT_NEAR(g->field(Field::kDensity)(g->sx(3 * n / 4), 0, 0), rho_sh,
              0.12 * rho_sh);
}

TEST_P(SodTube, PositivityMaintained) {
  const int n = 64;
  mesh::Hierarchy h = make_tube(n);
  hydro::HydroParams hp;
  hp.solver = GetParam();
  hp.gamma = 1.4;
  mesh::Grid* g = h.grids(0)[0];
  init_sod(*g, hp.gamma);
  run_to_time(h, hp, 0.2);
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(g->field(Field::kDensity)(g->sx(i), 0, 0), 0.0);
    EXPECT_GT(g->field(Field::kInternalEnergy)(g->sx(i), 0, 0), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Solvers, SodTube,
                         ::testing::Values(hydro::Solver::kPpm,
                                           hydro::Solver::kZeus));

// ---- conservation -----------------------------------------------------------------

TEST(Hydro, PeriodicBoxConservesMassMomentumEnergy) {
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  util::Rng rng(3);
  auto set = [&](Field f, std::function<double()> gen) {
    const auto a = g->field(f);
    for (int k = 0; k < g->nx(2); ++k)
      for (int j = 0; j < g->nx(1); ++j)
        for (int i = 0; i < g->nx(0); ++i) a(g->sx(i), g->sy(j), g->sz(k)) = gen();
  };
  set(Field::kDensity, [&] { return 1.0 + 0.3 * rng.uniform(); });
  set(Field::kVelocityX, [&] { return 0.2 * rng.uniform(-1, 1); });
  set(Field::kVelocityY, [&] { return 0.2 * rng.uniform(-1, 1); });
  set(Field::kVelocityZ, [&] { return 0.2 * rng.uniform(-1, 1); });
  set(Field::kInternalEnergy, [&] { return 1.0 + 0.1 * rng.uniform(); });
  // etot = eint + v²/2.
  for (int k = 0; k < g->nx(2); ++k)
    for (int j = 0; j < g->nx(1); ++j)
      for (int i = 0; i < g->nx(0); ++i) {
        const int si = g->sx(i), sj = g->sy(j), sk = g->sz(k);
        const double v2 =
            std::pow(g->field(Field::kVelocityX)(si, sj, sk), 2) +
            std::pow(g->field(Field::kVelocityY)(si, sj, sk), 2) +
            std::pow(g->field(Field::kVelocityZ)(si, sj, sk), 2);
        g->field(Field::kTotalEnergy)(si, sj, sk) =
            g->field(Field::kInternalEnergy)(si, sj, sk) + 0.5 * v2;
      }

  auto totals = [&] {
    double m = 0, px = 0, e = 0;
    for (int k = 0; k < g->nx(2); ++k)
      for (int j = 0; j < g->nx(1); ++j)
        for (int i = 0; i < g->nx(0); ++i) {
          const int si = g->sx(i), sj = g->sy(j), sk = g->sz(k);
          const double r = g->field(Field::kDensity)(si, sj, sk);
          m += r;
          px += r * g->field(Field::kVelocityX)(si, sj, sk);
          e += r * g->field(Field::kTotalEnergy)(si, sj, sk);
        }
    return std::array<double, 3>{m, px, e};
  };
  const auto before = totals();
  hydro::HydroParams hp;
  auto exp = cosmology::Expansion::statics();
  for (int step = 0; step < 5; ++step) {
    mesh::set_boundary_values(h, 0);
    const double dt = hydro::compute_timestep(*g, hp, exp);
    hydro::solve_hydro_step(*g, dt, hp, exp);
  }
  const auto after = totals();
  EXPECT_NEAR(after[0], before[0], 1e-11 * std::abs(before[0]));
  EXPECT_NEAR(after[1], before[1], 1e-11 * (std::abs(before[1]) + 1));
  EXPECT_NEAR(after[2], before[2], 1e-11 * std::abs(before[2]));
}

TEST(Hydro, UniformStateIsFixedPoint) {
  mesh::HierarchyParams p;
  p.root_dims = {8, 8, 8};
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  g->field(Field::kDensity).fill(2.0);
  g->field(Field::kVelocityX).fill(0.5);
  g->field(Field::kVelocityY).fill(-0.25);
  g->field(Field::kVelocityZ).fill(0.1);
  g->field(Field::kInternalEnergy).fill(3.0);
  g->field(Field::kTotalEnergy)
      .fill(3.0 + 0.5 * (0.25 + 0.0625 + 0.01));
  hydro::HydroParams hp;
  auto exp = cosmology::Expansion::statics();
  for (int step = 0; step < 3; ++step) {
    mesh::set_boundary_values(h, 0);
    hydro::solve_hydro_step(*g, 0.01, hp, exp);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(g->field(Field::kDensity)(g->sx(i), g->sy(i), g->sz(i)), 2.0,
                1e-12);
    EXPECT_NEAR(g->field(Field::kVelocityX)(g->sx(i), g->sy(i), g->sz(i)), 0.5,
                1e-12);
    EXPECT_NEAR(g->field(Field::kInternalEnergy)(g->sx(i), g->sy(i), g->sz(i)),
                3.0, 1e-12);
  }
}

TEST(Hydro, PassiveScalarAdvectsWithFlow) {
  // A species blob in uniform flow must advect at the flow speed and remain
  // bounded in [0, rho].
  mesh::HierarchyParams p;
  p.root_dims = {64, 1, 1};
  p.fields = mesh::chemistry_field_list();
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  g->field(Field::kDensity).fill(1.0);
  g->field(Field::kVelocityX).fill(1.0);
  g->field(Field::kVelocityY).fill(0.0);
  g->field(Field::kVelocityZ).fill(0.0);
  g->field(Field::kInternalEnergy).fill(100.0);  // smooth: high sound speed
  g->field(Field::kTotalEnergy).fill(100.5);
  for (int f = mesh::kFirstSpecies; f < mesh::kNumFields; ++f)
    g->field(static_cast<Field>(f)).fill(0.0);
  const auto hi = g->field(Field::kHI);
  for (int i = 0; i < 64; ++i) {
    const double x = (i + 0.5) / 64;
    hi(g->sx(i), 0, 0) = std::exp(-std::pow((x - 0.25) / 0.05, 2));
  }
  const double mass0 = [&] {
    double m = 0;
    for (int i = 0; i < 64; ++i) m += hi(g->sx(i), 0, 0);
    return m;
  }();
  hydro::HydroParams hp;
  auto exp = cosmology::Expansion::statics();
  double t = 0;
  while (t < 0.25) {  // advect by a quarter box
    mesh::set_boundary_values(h, 0);
    double dt = std::min(hydro::compute_timestep(*g, hp, exp), 0.25 - t);
    hydro::solve_hydro_step(*g, dt, hp, exp);
    t += dt;
  }
  // Peak should now be near x = 0.5.
  int imax = 0;
  for (int i = 0; i < 64; ++i)
    if (hi(g->sx(i), 0, 0) > hi(g->sx(imax), 0, 0)) imax = i;
  EXPECT_NEAR((imax + 0.5) / 64.0, 0.5, 0.05);
  double mass1 = 0;
  for (int i = 0; i < 64; ++i) {
    mass1 += hi(g->sx(i), 0, 0);
    EXPECT_GE(hi(g->sx(i), 0, 0), 0.0);
    EXPECT_LE(hi(g->sx(i), 0, 0), 1.0 + 1e-9);
  }
  EXPECT_NEAR(mass1, mass0, 1e-9 * mass0);
}

// ---- expansion sources ---------------------------------------------------------

TEST(Hydro, ExpansionCoolsUniformGasAdiabatically) {
  // Uniform comoving gas, no peculiar flow: e ∝ a^{-3(γ-1)} = a^{-2}.
  mesh::HierarchyParams p;
  p.root_dims = {8, 8, 8};
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  g->field(Field::kDensity).fill(1.0);
  g->field(Field::kVelocityX).fill(0.0);
  g->field(Field::kVelocityY).fill(0.0);
  g->field(Field::kVelocityZ).fill(0.0);
  g->field(Field::kInternalEnergy).fill(1.0);
  g->field(Field::kTotalEnergy).fill(1.0);
  hydro::HydroParams hp;
  // March a ∝ exp(H t) (constant H in code time for the test): after time T,
  // e should be e0 * exp(-2 H T).
  const double H = 0.1, dt = 0.01;
  double a = 1.0;
  for (int step = 0; step < 100; ++step) {
    mesh::set_boundary_values(h, 0);
    cosmology::Expansion exp{a * std::exp(0.5 * H * dt), H};
    hydro::solve_hydro_step(*g, dt, hp, exp);
    a *= std::exp(H * dt);
  }
  const double expected = std::exp(-2.0 * H * 1.0);
  EXPECT_NEAR(g->field(Field::kInternalEnergy)(g->sx(4), g->sy(4), g->sz(4)),
              expected, 2e-4);
  // Density (comoving) unchanged.
  EXPECT_NEAR(g->field(Field::kDensity)(g->sx(4), g->sy(4), g->sz(4)), 1.0,
              1e-10);
}

TEST(Hydro, HubbleDragDecaysPeculiarVelocity) {
  mesh::HierarchyParams p;
  p.root_dims = {8, 8, 8};
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  g->field(Field::kDensity).fill(1.0);
  g->field(Field::kVelocityX).fill(0.3);
  g->field(Field::kVelocityY).fill(0.0);
  g->field(Field::kVelocityZ).fill(0.0);
  g->field(Field::kInternalEnergy).fill(1000.0);  // suppress dynamics
  g->field(Field::kTotalEnergy).fill(1000.0 + 0.5 * 0.09);
  hydro::HydroParams hp;
  const double H = 0.05, dt = 0.01;
  for (int step = 0; step < 100; ++step) {
    mesh::set_boundary_values(h, 0);
    cosmology::Expansion exp{1.0, H};
    hydro::solve_hydro_step(*g, dt, hp, exp);
  }
  EXPECT_NEAR(g->field(Field::kVelocityX)(g->sx(4), g->sy(4), g->sz(4)),
              0.3 * std::exp(-H * 1.0), 3e-5);
}

// ---- gravity source / timestep ----------------------------------------------------

TEST(Hydro, GravityKickUpdatesVelocityAndEnergy) {
  mesh::HierarchyParams p;
  p.root_dims = {4, 4, 4};
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  g->field(Field::kDensity).fill(1.0);
  g->field(Field::kVelocityX).fill(0.0);
  g->field(Field::kVelocityY).fill(0.0);
  g->field(Field::kVelocityZ).fill(0.0);
  g->field(Field::kInternalEnergy).fill(1.0);
  g->field(Field::kTotalEnergy).fill(1.0);
  g->allocate_gravity();
  g->acceleration(0).fill(2.0);
  hydro::HydroParams hp;
  hydro::apply_gravity_sources(*g, 0.5, hp);
  EXPECT_NEAR(g->field(Field::kVelocityX)(g->sx(1), g->sy(1), g->sz(1)), 1.0,
              1e-12);
  EXPECT_NEAR(g->field(Field::kTotalEnergy)(g->sx(1), g->sy(1), g->sz(1)),
              1.0 + 0.5, 1e-12);
}

TEST(Hydro, TimestepScalesWithResolutionAndSoundSpeed) {
  mesh::HierarchyParams p;
  p.root_dims = {16, 16, 16};
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  g->field(Field::kDensity).fill(1.0);
  g->field(Field::kVelocityX).fill(0.0);
  g->field(Field::kVelocityY).fill(0.0);
  g->field(Field::kVelocityZ).fill(0.0);
  g->field(Field::kInternalEnergy).fill(0.9);
  g->field(Field::kTotalEnergy).fill(0.9);
  hydro::HydroParams hp;
  auto exp = cosmology::Expansion::statics();
  const double c = std::sqrt(hp.gamma * (hp.gamma - 1) * 0.9);
  const double expected = hp.cfl * (1.0 / 16) / c;
  EXPECT_NEAR(hydro::compute_timestep(*g, hp, exp), expected, 1e-12);
  // Doubling sound speed halves dt; expansion limiter kicks in when tight.
  cosmology::Expansion fast{1.0, 1e6};
  EXPECT_NEAR(hydro::compute_timestep(*g, hp, fast),
              hp.max_expansion / 1e6, 1e-15);
}

TEST(Hydro, FluxRegistersAreFilled) {
  mesh::HierarchyParams p;
  p.root_dims = {8, 8, 8};
  mesh::Hierarchy h(p);
  h.build_root();
  mesh::Grid* g = h.grids(0)[0];
  util::Rng rng(8);
  for (Field f : g->field_list()) {
    const auto a = g->field(f);
    for (auto& v : a)
      v = (f == Field::kDensity || f == Field::kInternalEnergy ||
           f == Field::kTotalEnergy)
              ? 1.0 + rng.uniform()
              : 0.3 * rng.uniform(-1, 1);
  }
  mesh::set_boundary_values(h, 0);
  hydro::HydroParams hp;
  hydro::solve_hydro_step(*g, 0.005, hp, cosmology::Expansion::statics());
  ASSERT_TRUE(g->has_fluxes());
  // Mass flux at some interior face should be nonzero and finite.
  const auto fx = g->flux(Field::kDensity, 0);
  double sum = 0;
  for (const double v : fx) {
    ASSERT_TRUE(std::isfinite(v));
    sum += std::abs(v);
  }
  EXPECT_GT(sum, 0.0);
}

// ---- SoA pencil workspace ---------------------------------------------------

TEST(Pencil, ResetRejectsDegenerateExtent) {
  hydro::Pencil pc;
  // 3 ghosts per side need at least 7 cells for one active cell; a
  // minimum-size box that cannot fit the stencil must fail loudly instead of
  // producing an empty face range that silently skips the update.
  EXPECT_THROW(pc.reset(6, 3, 0), enzo::Error);
  EXPECT_THROW(pc.reset(4, 2, 0), enzo::Error);
  EXPECT_THROW(pc.reset(2, 3, 1), enzo::Error);
  EXPECT_NO_THROW(pc.reset(7, 3, 0));
  EXPECT_EQ(pc.n, 7);
}

TEST(Pencil, ResetReleasesCapacityWhenScalarCountShrinks) {
  hydro::Pencil pc;
  // A chemistry deck (12 passive species) followed by a pure-hydro deck in
  // the same process: the workspace must drop back to the smaller size class
  // instead of pinning the larger block in thread-local scratch for the rest
  // of the run.
  pc.reset(512, 3, 12);
  const std::size_t cap_chem = pc.capacity_doubles();
  pc.reset(512, 3, 0);
  const std::size_t cap_hydro = pc.capacity_doubles();
  EXPECT_LT(cap_hydro, cap_chem);
  // Growing again reacquires at least the old class.
  pc.reset(512, 3, 12);
  EXPECT_GE(pc.capacity_doubles(), cap_chem);
}

TEST(Pencil, GatherScatterRoundTripIsExact) {
  // gather → scatter with untouched lanes must reproduce the grid fields
  // bit-for-bit on every axis (eint >= 0 so the gather-side floor is a
  // no-op), passive scalars included.
  const int nx = 12, ny = 10, nz = 8, ng = 3, nscal = 2;
  const int dims[3] = {nx, ny, nz};
  const std::size_t ncell = static_cast<std::size_t>(nx) * ny * nz;
  util::Rng rng(42);
  auto make = [&](bool positive) {
    std::vector<double> v(ncell);
    for (auto& x : v)
      x = positive ? 0.5 + rng.uniform() : 0.3 * rng.uniform(-1, 1);
    return v;
  };
  std::vector<double> rho = make(true), vu = make(false), v1 = make(false),
                      v2 = make(false), etot = make(true), eint = make(true),
                      s0 = make(true), s1 = make(true);
  const std::vector<double> ref[8] = {rho, vu, v1, v2, etot, eint, s0, s1};
  double* species[nscal] = {s0.data(), s1.data()};
  const hydro::PencilFields pf{rho.data(),  vu.data(),   v1.data(),
                               v2.data(),   etot.data(), eint.data(),
                               species};
  hydro::Pencil pc;
  for (int axis = 0; axis < 3; ++axis) {
    const int t1 = (axis + 1) % 3, t2 = (axis + 2) % 3;
    pc.reset(dims[axis], ng, nscal);
    for (int j2 = 0; j2 < dims[t2]; ++j2)
      for (int j1 = 0; j1 < dims[t1]; ++j1) {
        const hydro::PencilMap pm =
            hydro::pencil_map(axis, nx, ny, nz, j1, j2);
        hydro::gather_pencil(pc, pf, pm, 5.0 / 3.0, 1e-20);
        hydro::scatter_pencil(pc, pf, pm);
      }
    const std::vector<double>* now[8] = {&rho, &vu, &v1, &v2,
                                         &etot, &eint, &s0, &s1};
    for (int q = 0; q < 8; ++q)
      EXPECT_EQ(*now[q], ref[q]) << "axis " << axis << " field " << q;
  }
}

// ---- Riemann robustness and batch/scalar agreement --------------------------

TEST(Riemann, NearVacuumInputsStayFiniteAndPositive) {
  const double gamma = 5.0 / 3.0;
  const hydro::RiemannInput cases[] = {
      // Both sides at the vacuum floor: the Newton denominators must not
      // underflow to 0/0.
      {1e-300, 0.0, 1e-300, 1e-300, 0.0, 1e-300},
      // Strong symmetric expansion out of near-vacuum gas.
      {1e-250, -1.0, 1e-260, 1e-250, 1.0, 1e-260},
      // Receding rarefaction in cold dense gas (the classic 1-2-3 problem).
      {1.0, -2.0, 0.4, 1.0, 2.0, 0.4},
      {1.0, -10.0, 1e-12, 1.0, 10.0, 1e-12},
      // Extreme one-sided contrast.
      {1e-30, 0.0, 1e-30, 1.0, 0.0, 1.0},
      {1e-300, 5.0, 1e-290, 1e3, -5.0, 1e5},
  };
  for (const auto& in : cases) {
    const hydro::RiemannState s = hydro::riemann_two_shock(in, gamma);
    EXPECT_TRUE(std::isfinite(s.rho) && std::isfinite(s.u) &&
                std::isfinite(s.p) && std::isfinite(s.pstar) &&
                std::isfinite(s.ustar))
        << "rho_l=" << in.rho_l << " p_l=" << in.p_l;
    EXPECT_GT(s.rho, 0.0);
    EXPECT_GT(s.p, 0.0);
    EXPECT_GE(s.pstar, 0.0);
  }
}

TEST(Riemann, BatchMatchesScalarBitwise) {
  const int n = 64;
  util::Rng rng(7);
  std::vector<double> rl(n), ul(n), pl(n), rr(n), ur(n), pr(n);
  for (int f = 0; f < n; ++f) {
    // Mix of ordinary states and pathological magnitudes.
    const double scale = std::pow(10.0, rng.uniform(-20, 2));
    rl[f] = scale * (0.1 + rng.uniform());
    rr[f] = scale * (0.1 + rng.uniform());
    pl[f] = scale * (0.1 + rng.uniform());
    pr[f] = scale * (0.1 + rng.uniform());
    ul[f] = rng.uniform(-3, 3);
    ur[f] = rng.uniform(-3, 3);
  }
  std::vector<double> rho(n), u(n), p(n), pstar(n), ustar(n), cl(n), cr(n),
      wl(n), wr(n);
  const hydro::RiemannBatch b{rl.data(), ul.data(),    pl.data(),
                              rr.data(), ur.data(),    pr.data(),
                              rho.data(), u.data(),    p.data(),
                              pstar.data(), ustar.data(), cl.data(),
                              cr.data(),  wl.data(),   wr.data()};
  hydro::riemann_two_shock_batch(0, n - 1, b, 1.4);
  for (int f = 0; f < n; ++f) {
    const hydro::RiemannInput in{rl[f], ul[f], pl[f], rr[f], ur[f], pr[f]};
    const hydro::RiemannState s = hydro::riemann_two_shock(in, 1.4);
    EXPECT_EQ(rho[f], s.rho) << "face " << f;
    EXPECT_EQ(u[f], s.u) << "face " << f;
    EXPECT_EQ(p[f], s.p) << "face " << f;
    EXPECT_EQ(pstar[f], s.pstar) << "face " << f;
    EXPECT_EQ(ustar[f], s.ustar) << "face " << f;
  }
}
